#include "irmc/sc.hpp"

#include <algorithm>

#include "irmc/rc.hpp"
#include "obs/trace.hpp"
#include "runtime/parallel.hpp"
#include "sim/world.hpp"

namespace spider {

using irmc::MsgType;

namespace {
Position kth_highest(std::vector<Position> vals, std::size_t k) {
  std::sort(vals.rbegin(), vals.rend());
  return vals[std::min(k, vals.size() - 1)];
}

}  // namespace

// ------------------------------------------------------------------ sender

ScSender::ScSender(ComponentHost& host, IrmcConfig cfg)
    : Component(host, cfg.channel_tag), cfg_(std::move(cfg)) {
  for (std::uint32_t i = 0; i < cfg_.ns(); ++i) {
    if (cfg_.senders[i] == self()) my_index_ = i;
  }
  progress_timer_ = set_timer(cfg_.progress_interval, [this] { on_progress_timer(); });
  if (cfg_.announce_window) {
    announce_timer_ = set_timer(cfg_.window_announce_interval, [this] { on_announce_timer(); });
  }
}

ScSender::~ScSender() {
  if (progress_timer_ != EventQueue::kInvalidEvent) cancel_timer(progress_timer_);
  if (announce_timer_ != EventQueue::kInvalidEvent) cancel_timer(announce_timer_);
}

void ScSender::send_move(Subchannel sc, Position p) {
  irmc::MoveMsg mv{sc, p};
  Bytes body = mv.encode();
  Bytes auth = auth_bytes(body);  // shared by all per-receiver MACs
  for (NodeId r : cfg_.receivers) {
    host().charge_mac();
    send_framed(r, body, crypto().mac(self(), r, auth));
  }
}

void ScSender::on_announce_timer() {
  announce_timer_ = set_timer(cfg_.window_announce_interval, [this] { on_announce_timer(); });
  for (const auto& [sc, p] : own_move_) send_move(sc, p);
}

Position ScSender::win_lo(Subchannel sc) const {
  auto it = awin_.find(sc);
  return it == awin_.end() ? 1 : it->second;
}

Position ScSender::window_start(Subchannel sc) const { return win_lo(sc); }

std::optional<std::uint32_t> ScSender::sender_index(NodeId node) const {
  for (std::uint32_t i = 0; i < cfg_.ns(); ++i) {
    if (cfg_.senders[i] == node) return i;
  }
  return std::nullopt;
}

std::optional<std::uint32_t> ScSender::receiver_index(NodeId node) const {
  for (std::uint32_t i = 0; i < cfg_.nr(); ++i) {
    if (cfg_.receivers[i] == node) return i;
  }
  return std::nullopt;
}

void ScSender::send(Subchannel sc, Position p, Bytes m, SendCallback done) {
  Position lo = win_lo(sc);
  if (p < lo) {
    if (done) done(true, lo);
    return;
  }
  if (p <= lo + cfg_.capacity - 1) {
    start_transmit(sc, p, std::move(m));
    if (done) done(false, lo);
    return;
  }
  queued_[sc].emplace(p, Queued{std::move(m), std::move(done)});
}

void ScSender::start_transmit(Subchannel sc, Position p, Bytes m) {
  if (auto* t = host().tracer()) {
    t->instant(host().now(), host().id(), "irmc", "sc-send", "sc", sc, "pos", p);
  }
  Payload payload(std::move(m));
  host().charge_hash(payload.size());
  irmc::SigShareMsg share{sc, p, payload.digest()};
  Bytes body = share.encode();
  host().charge_sign();
  Bytes sig = crypto().sign(self(), auth_bytes(body));

  payloads_[sc][p] = std::move(payload);
  shares_[sc][p].shares[my_index_] = {digest_prefix(share.digest), sig};

  // Distribute the share within the sender group (intra-region traffic):
  // one frame, shared by every group member.
  Payload wire = wire_frame(body, sig);
  for (std::uint32_t i = 0; i < cfg_.ns(); ++i) {
    if (i == my_index_) continue;
    send_wire(cfg_.senders[i], wire);
  }
  try_certificate(sc, p);
}

void ScSender::try_certificate(Subchannel sc, Position p) {
  if (certificates_[sc].count(p)) return;
  auto pit = payloads_[sc].find(p);
  if (pit == payloads_[sc].end()) return;

  // Memoized: start_transmit already hashed this payload.
  irmc::SigShareMsg my_share{sc, p, pit->second.digest()};
  std::uint64_t want = digest_prefix(my_share.digest);

  auto sit = shares_[sc].find(p);
  if (sit == shares_[sc].end()) return;
  std::vector<std::pair<std::uint32_t, Bytes>> matching;
  for (const auto& [idx, entry] : sit->second.shares) {
    if (entry.first == want) matching.emplace_back(idx, entry.second);
    if (matching.size() == cfg_.fs + 1) break;
  }
  if (matching.size() < cfg_.fs + 1) return;

  irmc::CertificateMsg cert{sc, p, pit->second.to_bytes(), std::move(matching)};
  Bytes body = cert.encode();
  // The collector signs the certificate (paper Fig. 19, L. 23 signs; we
  // follow the paper text: "sends it in a signed Certificate message").
  host().charge_sign();
  Bytes sig = crypto().sign(self(), auth_bytes(body));
  certificates_[sc][p] = wire_frame(body, sig);

  for (std::uint32_t ri = 0; ri < cfg_.nr(); ++ri) {
    auto cit = collector_[sc].find(ri);
    std::uint32_t chosen = cit != collector_[sc].end() ? cit->second : ri % cfg_.ns();
    if (chosen == my_index_) send_certificate_to(ri, sc, p);
  }
}

void ScSender::send_certificate_to(std::uint32_t receiver_idx, Subchannel sc, Position p) {
  auto cit = certificates_[sc].find(p);
  if (cit == certificates_[sc].end()) return;
  send_wire(cfg_.receivers[receiver_idx], cit->second);
}

void ScSender::on_progress_timer() {
  progress_timer_ = set_timer(cfg_.progress_interval, [this] { on_progress_timer(); });
  irmc::ProgressMsg pm;
  for (const auto& [sc, certs] : certificates_) {
    Position lo = win_lo(sc);
    Position p = 0;
    for (Position q = lo;; ++q) {
      if (!certs.count(q)) break;
      p = q;
    }
    if (p != 0) pm.progress.emplace_back(sc, p);
  }
  if (pm.progress.empty()) return;
  Bytes body = pm.encode();
  Bytes auth = auth_bytes(body);
  for (NodeId r : cfg_.receivers) {
    host().charge_mac();
    send_framed(r, body, crypto().mac(self(), r, auth));
  }
}

void ScSender::move_window(Subchannel sc, Position p) {
  Position& cur = own_move_[sc];
  if (p <= cur) return;
  cur = p;
  send_move(sc, p);
}

void ScSender::recompute_window(Subchannel sc) {
  std::vector<Position> vals;
  for (std::uint32_t i = 0; i < cfg_.nr(); ++i) {
    auto it = rwin_.find({i, sc});
    vals.push_back(it == rwin_.end() ? 1 : it->second);
  }
  Position lo = kth_highest(std::move(vals), cfg_.fr);
  Position& cur = awin_[sc];
  if (lo > cur) {
    cur = lo;
    // Garbage-collect per-position state below the window.
    auto gc = [&](auto& by_sc) {
      auto it = by_sc.find(sc);
      if (it == by_sc.end()) return;
      it->second.erase(it->second.begin(), it->second.lower_bound(lo));
    };
    gc(payloads_);
    gc(shares_);
    gc(certificates_);
    flush_queue(sc);
  }
}

void ScSender::flush_queue(Subchannel sc) {
  auto qit = queued_.find(sc);
  if (qit == queued_.end()) return;
  Position lo = win_lo(sc);
  Position hi = lo + cfg_.capacity - 1;
  auto& q = qit->second;
  for (auto it = q.begin(); it != q.end();) {
    if (it->first < lo) {
      if (it->second.cb) it->second.cb(true, lo);
      it = q.erase(it);
    } else if (it->first <= hi) {
      start_transmit(sc, it->first, std::move(it->second.m));
      if (it->second.cb) it->second.cb(false, lo);
      it = q.erase(it);
    } else {
      break;
    }
  }
  if (q.empty()) queued_.erase(qit);
}

void ScSender::on_message(NodeId from, Reader& r) {
  BytesView all = r.raw(r.remaining());
  if (all.empty()) return;
  auto type = static_cast<MsgType>(all[0]);

  if (type == MsgType::SigShare) {
    std::optional<std::uint32_t> idx = sender_index(from);
    if (!idx) return;
    std::size_t sig_len = crypto().signature_size();
    if (all.size() <= sig_len) return;
    BytesView body = all.subspan(0, all.size() - sig_len);
    BytesView sig = all.subspan(all.size() - sig_len);
    host().charge_verify();
    if (!host().check_auth_frame(from, Component::tag(), body, sig, /*is_sig=*/true)) return;

    Reader br(body);
    br.u8();
    irmc::SigShareMsg share = irmc::SigShareMsg::decode(br);
    Position lo = win_lo(share.sc);
    if (share.p < lo || share.p > lo + 2 * cfg_.capacity - 1) return;
    auto& slot = shares_[share.sc][share.p].shares;
    if (!slot.count(*idx)) {
      slot[*idx] = {digest_prefix(share.digest), to_bytes(sig)};
      try_certificate(share.sc, share.p);
    }
  } else if (type == MsgType::Move) {
    std::optional<std::uint32_t> idx = receiver_index(from);
    if (!idx) return;
    std::size_t mac_len = crypto().mac_size();
    if (all.size() <= mac_len) return;
    BytesView body = all.subspan(0, all.size() - mac_len);
    BytesView tag = all.subspan(all.size() - mac_len);
    host().charge_mac();
    if (!host().check_auth_frame(from, Component::tag(), body, tag, /*is_sig=*/false)) return;

    Reader br(body);
    br.u8();
    irmc::MoveMsg mv = irmc::MoveMsg::decode(br);
    Position& cur = rwin_[{*idx, mv.sc}];
    if (mv.p <= cur) return;
    cur = mv.p;
    recompute_window(mv.sc);
  } else if (type == MsgType::Select) {
    std::optional<std::uint32_t> idx = receiver_index(from);
    if (!idx) return;
    std::size_t mac_len = crypto().mac_size();
    if (all.size() <= mac_len) return;
    BytesView body = all.subspan(0, all.size() - mac_len);
    BytesView tag = all.subspan(all.size() - mac_len);
    host().charge_mac();
    if (!host().check_auth_frame(from, Component::tag(), body, tag, /*is_sig=*/false)) return;

    Reader br(body);
    br.u8();
    irmc::SelectMsg sel = irmc::SelectMsg::decode(br);
    collector_[sel.sc][*idx] = sel.collector;
    if (sel.collector == my_index_) {
      // Queued certificates for this subchannel go out to the new selector.
      auto cit = certificates_.find(sel.sc);
      if (cit != certificates_.end()) {
        for (const auto& [p, wire] : cit->second) send_wire(cfg_.receivers[*idx], wire);
      }
    }
  }
}

// ---------------------------------------------------------------- receiver

ScReceiver::ScReceiver(ComponentHost& host, IrmcConfig cfg)
    : Component(host, cfg.channel_tag), cfg_(std::move(cfg)) {
  for (std::uint32_t i = 0; i < cfg_.nr(); ++i) {
    if (cfg_.receivers[i] == self()) my_index_ = i;
  }
}

ScReceiver::~ScReceiver() {
  for (auto& [sc, timer] : gap_timers_) cancel_timer(timer);
}

Position ScReceiver::win_lo(Subchannel sc) const {
  auto it = awin_.find(sc);
  return it == awin_.end() ? 1 : it->second;
}

Position ScReceiver::window_start(Subchannel sc) const { return win_lo(sc); }

std::uint32_t ScReceiver::collector(Subchannel sc) const {
  auto it = collector_.find(sc);
  return it == collector_.end() ? my_index_ % cfg_.ns() : it->second;
}

std::optional<std::uint32_t> ScReceiver::sender_index(NodeId node) const {
  for (std::uint32_t i = 0; i < cfg_.ns(); ++i) {
    if (cfg_.senders[i] == node) return i;
  }
  return std::nullopt;
}

void ScReceiver::receive(Subchannel sc, Position p, ReceiveCallback cb) {
  Position lo = win_lo(sc);
  if (p < lo) {
    cb(RecvResult{true, lo, {}});
    return;
  }
  auto rit = ready_.find(sc);
  if (rit != ready_.end()) {
    auto mit = rit->second.find(p);
    if (mit != rit->second.end()) {
      cb(RecvResult{false, 0, mit->second});
      return;
    }
  }
  pending_[sc][p].push_back(std::move(cb));
}

void ScReceiver::move_window(Subchannel sc, Position p) { internal_move(sc, p); }

void ScReceiver::internal_move(Subchannel sc, Position p) {
  Position& cur = awin_[sc];
  if (p <= cur) return;
  cur = p;

  auto rit = ready_.find(sc);
  if (rit != ready_.end()) {
    rit->second.erase(rit->second.begin(), rit->second.lower_bound(p));
  }
  auto pit = pending_.find(sc);
  if (pit != pending_.end()) {
    auto& by_pos = pit->second;
    for (auto it = by_pos.begin(); it != by_pos.end() && it->first < p;) {
      for (ReceiveCallback& cb : it->second) cb(RecvResult{true, p, {}});
      it = by_pos.erase(it);
    }
  }

  irmc::MoveMsg mv{sc, p};
  Bytes body = mv.encode();
  Bytes auth = auth_bytes(body);
  for (NodeId s : cfg_.senders) {
    host().charge_mac();
    send_framed(s, body, crypto().mac(self(), s, auth));
  }
}

void ScReceiver::deliver_ready(Subchannel sc, Position p) {
  auto pit = pending_.find(sc);
  if (pit == pending_.end()) return;
  auto cb_it = pit->second.find(p);
  if (cb_it == pit->second.end()) return;
  if (auto* t = host().tracer()) {
    t->instant(host().now(), host().id(), "irmc", "sc-deliver", "sc", sc, "pos", p);
  }
  std::vector<ReceiveCallback> cbs = std::move(cb_it->second);
  pit->second.erase(cb_it);
  const Payload& msg = ready_[sc][p];
  for (ReceiveCallback& cb : cbs) cb(RecvResult{false, 0, msg});
}

bool ScReceiver::has_gap(Subchannel sc) const {
  auto pmit = pm_.find(sc);
  if (pmit == pm_.end()) return false;
  Position lo = win_lo(sc);
  Position hi = std::min(pmit->second, lo + cfg_.capacity - 1);
  auto rit = ready_.find(sc);
  for (Position p = lo; p <= hi; ++p) {
    if (rit == ready_.end() || !rit->second.count(p)) return true;
  }
  return false;
}

void ScReceiver::arm_gap_timer(Subchannel sc) {
  if (gap_timers_.count(sc)) return;
  gap_timers_[sc] = set_timer(cfg_.collector_timeout, [this, sc] { on_gap_timer(sc); });
}

void ScReceiver::on_gap_timer(Subchannel sc) {
  gap_timers_.erase(sc);
  if (!has_gap(sc)) return;
  // Collector failed to provide certificates other senders claim to have:
  // switch to the next sender (paper Fig. 20, L. 30-35).
  std::uint32_t next = (collector(sc) + 1) % cfg_.ns();
  collector_[sc] = next;
  irmc::SelectMsg sel{sc, next};
  Bytes body = sel.encode();
  Bytes auth = auth_bytes(body);
  for (NodeId s : cfg_.senders) {
    host().charge_mac();
    send_framed(s, body, crypto().mac(self(), s, auth));
  }
  arm_gap_timer(sc);
}

void ScReceiver::on_message(NodeId from, Reader& r) {
  BytesView all = r.raw(r.remaining());
  if (all.empty()) return;
  std::optional<std::uint32_t> idx = sender_index(from);
  if (!idx) return;
  auto type = static_cast<MsgType>(all[0]);

  if (type == MsgType::Certificate) {
    std::size_t sig_len = crypto().signature_size();
    if (all.size() <= sig_len) return;
    BytesView body = all.subspan(0, all.size() - sig_len);
    BytesView sig = all.subspan(all.size() - sig_len);
    host().charge_verify();
    if (!host().check_auth_frame(from, Component::tag(), body, sig, /*is_sig=*/true)) return;

    Reader br(body);
    br.u8();
    irmc::CertificateMsgView cert = irmc::CertificateMsgView::decode(br);
    note_subchannel(cert.sc);
    Position lo = win_lo(cert.sc);
    if (cert.p < lo || cert.p > lo + 2 * cfg_.capacity - 1) return;
    if (ready_[cert.sc].count(cert.p)) return;

    // Verify fs+1 share signatures from distinct senders over the
    // reconstructed SigShare bytes.
    if (cert.shares.size() != cfg_.fs + 1) return;
    host().charge_hash(cert.payload.size());
    irmc::SigShareMsg expect{cert.sc, cert.p, host().hash_cached(cert.payload)};
    Bytes share_auth = auth_bytes(expect.encode());
    // Scatter: collect the shares the sequential loop would reach (those
    // passing the index/duplicate screens, which don't depend on verdicts)
    // and check their signatures in parallel; then replay the original loop
    // with the precomputed verdicts so charges and early-exit points stay
    // bit-identical. A verdict computed past an early exit is wall-clock
    // waste only — it never influences modeled time or state.
    std::vector<runtime::SigCheck> checks;
    checks.reserve(cert.shares.size());
    {
      std::set<std::uint32_t> screen;
      for (const auto& [sidx, ssig] : cert.shares) {
        if (sidx >= cfg_.ns() || screen.count(sidx)) break;
        screen.insert(sidx);
        checks.push_back({cfg_.senders[sidx], share_auth, ssig});
      }
    }
    std::vector<char> verdicts = runtime::verify_sigs(host().world(), checks);
    std::set<std::uint32_t> seen;
    std::size_t vi = 0;
    for (const auto& [sidx, ssig] : cert.shares) {
      if (sidx >= cfg_.ns() || seen.count(sidx)) return;
      host().charge_verify();
      if (!verdicts[vi++]) return;
      seen.insert(sidx);
    }

    ready_[cert.sc][cert.p] = host().capture(cert.payload);
    deliver_ready(cert.sc, cert.p);
    if (!has_gap(cert.sc)) {
      auto tit = gap_timers_.find(cert.sc);
      if (tit != gap_timers_.end()) {
        cancel_timer(tit->second);
        gap_timers_.erase(tit);
      }
    }
  } else if (type == MsgType::Move || type == MsgType::Progress) {
    std::size_t mac_len = crypto().mac_size();
    if (all.size() <= mac_len) return;
    BytesView body = all.subspan(0, all.size() - mac_len);
    BytesView tag = all.subspan(all.size() - mac_len);
    host().charge_mac();
    if (!host().check_auth_frame(from, Component::tag(), body, tag, /*is_sig=*/false)) return;

    Reader br(body);
    br.u8();
    if (type == MsgType::Move) {
      irmc::MoveMsg mv = irmc::MoveMsg::decode(br);
      note_subchannel(mv.sc);
      Position& cur = smoves_[{*idx, mv.sc}];
      if (mv.p <= cur) return;
      cur = mv.p;
      std::vector<Position> vals;
      for (std::uint32_t i = 0; i < cfg_.ns(); ++i) {
        auto it = smoves_.find({i, mv.sc});
        vals.push_back(it == smoves_.end() ? 1 : it->second);
      }
      Position nw = kth_highest(std::move(vals), cfg_.fs);
      if (win_lo(mv.sc) < nw) internal_move(mv.sc, nw);
    } else {
      irmc::ProgressMsg pmsg = irmc::ProgressMsg::decode(br);
      for (const auto& [sc, p] : pmsg.progress) {
        Position& pe = pe_[{*idx, sc}];
        pe = std::max(pe, p);
        std::vector<Position> vals;
        for (std::uint32_t i = 0; i < cfg_.ns(); ++i) {
          auto it = pe_.find({i, sc});
          vals.push_back(it == pe_.end() ? 0 : it->second);
        }
        pm_[sc] = kth_highest(std::move(vals), cfg_.fs);
        if (has_gap(sc)) arm_gap_timer(sc);
      }
    }
  }
}

// ------------------------------------------------------------------ factory

std::unique_ptr<IrmcSenderEndpoint> make_irmc_sender(IrmcKind kind, ComponentHost& host,
                                                     IrmcConfig cfg) {
  if (kind == IrmcKind::ReceiverCollect) return std::make_unique<RcSender>(host, std::move(cfg));
  return std::make_unique<ScSender>(host, std::move(cfg));
}

std::unique_ptr<IrmcReceiverEndpoint> make_irmc_receiver(IrmcKind kind, ComponentHost& host,
                                                         IrmcConfig cfg) {
  if (kind == IrmcKind::ReceiverCollect) return std::make_unique<RcReceiver>(host, std::move(cfg));
  return std::make_unique<ScReceiver>(host, std::move(cfg));
}

}  // namespace spider
