#include "irmc/rc.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "sim/world.hpp"

namespace spider {

using irmc::MsgType;

namespace {
/// k+1-highest value of `vals` padded with `def` to `total` entries.
Position kth_highest(std::vector<Position> vals, std::size_t total, std::size_t k, Position def) {
  while (vals.size() < total) vals.push_back(def);
  std::sort(vals.rbegin(), vals.rend());
  return vals[std::min(k, vals.size() - 1)];
}
}  // namespace

// ------------------------------------------------------------------ sender

RcSender::RcSender(ComponentHost& host, IrmcConfig cfg)
    : Component(host, cfg.channel_tag), cfg_(std::move(cfg)) {
  if (cfg_.announce_window) {
    announce_timer_ = set_timer(cfg_.window_announce_interval, [this] { on_announce_timer(); });
  }
}

RcSender::~RcSender() {
  if (announce_timer_ != EventQueue::kInvalidEvent) cancel_timer(announce_timer_);
}

void RcSender::send_move(Subchannel sc, Position p) {
  irmc::MoveMsg mv{sc, p};
  Bytes body = mv.encode();
  Bytes auth = auth_bytes(body);  // shared by all per-receiver MACs
  for (NodeId r : cfg_.receivers) {
    host().charge_mac();
    send_framed(r, body, crypto().mac(self(), r, auth));
  }
}

void RcSender::on_announce_timer() {
  announce_timer_ = set_timer(cfg_.window_announce_interval, [this] { on_announce_timer(); });
  for (const auto& [sc, p] : own_move_) send_move(sc, p);
}

Position RcSender::win_lo(Subchannel sc) const {
  auto it = awin_.find(sc);
  return it == awin_.end() ? 1 : it->second;
}

Position RcSender::window_start(Subchannel sc) const { return win_lo(sc); }

std::optional<std::uint32_t> RcSender::receiver_index(NodeId node) const {
  for (std::uint32_t i = 0; i < cfg_.nr(); ++i) {
    if (cfg_.receivers[i] == node) return i;
  }
  return std::nullopt;
}

void RcSender::transmit(Subchannel sc, Position p, const Bytes& m) {
  if (auto* t = host().tracer()) {
    t->instant(host().now(), host().id(), "irmc", "rc-send", "sc", sc, "pos", p);
  }
  irmc::SendMsg msg{sc, p, m};
  Bytes body = msg.encode();
  // One signature, shared by all receivers (paper A.8).
  host().charge_sign();
  host().charge_hash(body.size());
  Bytes sig = crypto().sign(self(), auth_bytes(body));
  // Serialize the frame once; every receiver, retained retransmission copy
  // and future replay shares this one buffer.
  Payload wire = wire_frame(body, sig);
  for (NodeId r : cfg_.receivers) send_wire(r, wire);
  sent_[sc][p] = std::move(wire);
}

void RcSender::send(Subchannel sc, Position p, Bytes m, SendCallback done) {
  Position lo = win_lo(sc);
  if (p < lo) {
    if (done) done(/*too_old=*/true, lo);
    return;
  }
  if (p <= lo + cfg_.capacity - 1) {
    transmit(sc, p, m);
    if (done) done(false, lo);
    return;
  }
  queued_[sc].emplace(p, Queued{std::move(m), std::move(done)});
}

void RcSender::move_window(Subchannel sc, Position p) {
  Position& cur = own_move_[sc];
  if (p <= cur) return;
  cur = p;
  send_move(sc, p);
}

void RcSender::recompute_window(Subchannel sc) {
  std::vector<Position> vals;
  for (std::uint32_t i = 0; i < cfg_.nr(); ++i) {
    auto it = rwin_.find({i, sc});
    vals.push_back(it == rwin_.end() ? 1 : it->second);
  }
  // fr+1 highest requested start: at least one correct receiver allowed it.
  Position lo = kth_highest(std::move(vals), cfg_.nr(), cfg_.fr, 1);
  Position& cur = awin_[sc];
  if (lo > cur) {
    cur = lo;
    auto sit = sent_.find(sc);
    if (sit != sent_.end()) {
      sit->second.erase(sit->second.begin(), sit->second.lower_bound(lo));
    }
    flush_queue(sc);
  }
}

void RcSender::flush_queue(Subchannel sc) {
  auto qit = queued_.find(sc);
  if (qit == queued_.end()) return;
  Position lo = win_lo(sc);
  Position hi = lo + cfg_.capacity - 1;
  auto& q = qit->second;
  for (auto it = q.begin(); it != q.end();) {
    if (it->first < lo) {
      if (it->second.cb) it->second.cb(true, lo);
      it = q.erase(it);
    } else if (it->first <= hi) {
      transmit(sc, it->first, it->second.m);
      if (it->second.cb) it->second.cb(false, lo);
      it = q.erase(it);
    } else {
      break;  // multimap is position-ordered
    }
  }
  if (q.empty()) queued_.erase(qit);
}

void RcSender::on_message(NodeId from, Reader& r) {
  BytesView all = r.raw(r.remaining());
  if (all.empty()) return;
  auto type = static_cast<MsgType>(all[0]);
  if (type != MsgType::Move && type != MsgType::Nack) return;
  std::optional<std::uint32_t> idx = receiver_index(from);
  if (!idx) return;
  std::size_t mac_len = crypto().mac_size();
  if (all.size() <= mac_len) return;
  BytesView body = all.subspan(0, all.size() - mac_len);
  BytesView tag = all.subspan(all.size() - mac_len);
  host().charge_mac();
  if (!host().check_auth_frame(from, Component::tag(), body, tag, /*is_sig=*/false)) return;

  Reader br(body);
  br.u8();
  irmc::MoveMsg mv = irmc::MoveMsg::decode(br);
  if (type == MsgType::Nack) {
    // Receiver missed transmissions (e.g. it was unreachable): replay the
    // retained wires from the requested position on. First tell it where
    // the window stands, for two chaos-found livelocks (Byzantine sweep
    // seeds 103 / 154):
    //   - our own Move request may have been lost (sent into a partition)
    //     and move_window() dedups repeats, so the receiver would keep
    //     rejecting the replayed Sends as beyond its storage horizon;
    //   - a receiver that crashed and restarted empty nacks position 1,
    //     which fr+1 receivers (itself included, before the crash) already
    //     moved the window past — it must learn the granted window start
    //     so its TooOld path can recover through a checkpoint instead of
    //     waiting forever for garbage-collected content.
    // The window only moves at the receiver once fs+1 senders state it
    // (>= 1 correct), and execution below the new start resumes only after
    // an f+1-signed checkpoint is adopted, so a Byzantine sender cannot
    // use this to skip live content. FIFO links deliver the Move before
    // the replayed Sends.
    Position floor = win_lo(mv.sc);
    auto own = own_move_.find(mv.sc);
    if (own != own_move_.end()) floor = std::max(floor, own->second);
    irmc::MoveMsg remv{mv.sc, floor};
    Bytes rbody = remv.encode();
    host().charge_mac();
    send_framed(from, rbody, crypto().mac(self(), from, auth_bytes(rbody)));

    auto sit = sent_.find(mv.sc);
    if (sit == sent_.end()) return;
    int budget = 64;  // bounded replay per NACK; the receiver re-nacks if needed
    for (auto it = sit->second.lower_bound(mv.p); it != sit->second.end() && budget > 0;
         ++it, --budget) {
      send_wire(from, it->second);
    }
    return;
  }
  Position& cur = rwin_[{*idx, mv.sc}];
  if (mv.p <= cur) return;  // only accept forward moves
  cur = mv.p;
  recompute_window(mv.sc);
}

// ---------------------------------------------------------------- receiver

RcReceiver::RcReceiver(ComponentHost& host, IrmcConfig cfg)
    : Component(host, cfg.channel_tag), cfg_(std::move(cfg)) {}

RcReceiver::~RcReceiver() {
  if (nack_timer_ != EventQueue::kInvalidEvent) cancel_timer(nack_timer_);
}

void RcReceiver::arm_nack_timer() {
  if (nack_timer_ != EventQueue::kInvalidEvent) return;
  nack_timer_ = set_timer(cfg_.window_announce_interval + cfg_.collector_timeout,
                          [this] { on_nack_timer(); });
}

void RcReceiver::on_nack_timer() {
  nack_timer_ = EventQueue::kInvalidEvent;
  bool still_pending = false;
  std::map<Subchannel, Position> stalled_now;
  for (const auto& [sc, by_pos] : pending_) {
    if (by_pos.empty()) continue;
    Position want = by_pos.begin()->first;
    if (want < win_lo(sc)) continue;  // TooOld will fire instead
    still_pending = true;
    stalled_now[sc] = want;
    // Only nack when the subchannel made NO progress during a full timer
    // period: steady-state traffic must not trigger retransmissions.
    auto prev = last_stalled_.find(sc);
    if (prev == last_stalled_.end() || prev->second != want) continue;
    irmc::MoveMsg nack{sc, want};
    Writer w(1 + 8 + 8);
    w.u8(static_cast<std::uint8_t>(MsgType::Nack));
    w.u64(nack.sc);
    w.u64(nack.p);
    Bytes body = std::move(w).take();
    Bytes auth = auth_bytes(body);
    for (NodeId s : cfg_.senders) {
      host().charge_mac();
      send_framed(s, body, crypto().mac(self(), s, auth));
    }
  }
  last_stalled_ = std::move(stalled_now);
  if (still_pending) arm_nack_timer();
}

Position RcReceiver::win_lo(Subchannel sc) const {
  auto it = awin_.find(sc);
  return it == awin_.end() ? 1 : it->second;
}

Position RcReceiver::window_start(Subchannel sc) const { return win_lo(sc); }

std::optional<std::uint32_t> RcReceiver::sender_index(NodeId node) const {
  for (std::uint32_t i = 0; i < cfg_.ns(); ++i) {
    if (cfg_.senders[i] == node) return i;
  }
  return std::nullopt;
}

void RcReceiver::receive(Subchannel sc, Position p, ReceiveCallback cb) {
  Position lo = win_lo(sc);
  if (p < lo) {
    cb(RecvResult{true, lo, {}});
    return;
  }
  auto rit = ready_.find(sc);
  if (rit != ready_.end()) {
    auto mit = rit->second.find(p);
    if (mit != rit->second.end()) {
      cb(RecvResult{false, 0, mit->second});
      return;
    }
  }
  pending_[sc][p].push_back(std::move(cb));
  arm_nack_timer();
}

void RcReceiver::move_window(Subchannel sc, Position p) {
  internal_move(sc, p);
}

void RcReceiver::internal_move(Subchannel sc, Position p) {
  Position& cur = awin_[sc];
  if (p <= cur) return;
  cur = p;

  // Garbage-collect stored state below the window.
  auto sit = slots_.find(sc);
  if (sit != slots_.end()) {
    sit->second.erase(sit->second.begin(), sit->second.lower_bound(p));
  }
  auto rit = ready_.find(sc);
  if (rit != ready_.end()) {
    rit->second.erase(rit->second.begin(), rit->second.lower_bound(p));
  }

  // Abort superseded receive() calls with TooOld (paper Fig. 14).
  auto pit = pending_.find(sc);
  if (pit != pending_.end()) {
    auto& by_pos = pit->second;
    for (auto it = by_pos.begin(); it != by_pos.end() && it->first < p;) {
      for (ReceiveCallback& cb : it->second) cb(RecvResult{true, p, {}});
      it = by_pos.erase(it);
    }
  }

  // Tell the senders.
  irmc::MoveMsg mv{sc, p};
  Bytes body = mv.encode();
  Bytes auth = auth_bytes(body);
  for (NodeId s : cfg_.senders) {
    host().charge_mac();
    send_framed(s, body, crypto().mac(self(), s, auth));
  }
}

void RcReceiver::try_deliver(Subchannel sc, Position p) {
  auto sit = slots_.find(sc);
  if (sit == slots_.end()) return;
  auto slot_it = sit->second.find(p);
  if (slot_it == sit->second.end()) return;

  for (auto& [digest, cand] : slot_it->second.candidates) {
    if (cand.second.size() >= cfg_.fs + 1) {
      ready_[sc][p] = cand.first;
      if (auto* t = host().tracer()) {
        t->instant(host().now(), host().id(), "irmc", "rc-deliver", "sc", sc,
                   "pos", p);
      }
      auto pit = pending_.find(sc);
      if (pit != pending_.end()) {
        auto cb_it = pit->second.find(p);
        if (cb_it != pit->second.end()) {
          std::vector<ReceiveCallback> cbs = std::move(cb_it->second);
          pit->second.erase(cb_it);
          for (ReceiveCallback& cb : cbs) cb(RecvResult{false, 0, ready_[sc][p]});
        }
      }
      return;
    }
  }
}

void RcReceiver::on_message(NodeId from, Reader& r) {
  BytesView all = r.raw(r.remaining());
  if (all.empty()) return;
  std::optional<std::uint32_t> idx = sender_index(from);
  if (!idx) return;

  auto type = static_cast<MsgType>(all[0]);
  if (type == MsgType::Send) {
    std::size_t sig_len = crypto().signature_size();
    if (all.size() <= sig_len) return;
    BytesView body = all.subspan(0, all.size() - sig_len);
    BytesView sig = all.subspan(all.size() - sig_len);
    host().charge_verify();
    if (!host().check_auth_frame(from, Component::tag(), body, sig, /*is_sig=*/true)) return;

    Reader br(body);
    br.u8();
    irmc::SendMsgView msg = irmc::SendMsgView::decode(br);
    note_subchannel(msg.sc);
    Position lo = win_lo(msg.sc);
    // Store only within a bounded horizon (window + one extra window of
    // slack for senders running ahead of this receiver).
    if (msg.p < lo || msg.p > lo + 2 * cfg_.capacity - 1) return;

    host().charge_hash(msg.payload.size());
    std::uint64_t key = digest_prefix(host().hash_cached(msg.payload));
    auto& cand = slots_[msg.sc][msg.p].candidates[key];
    if (cand.second.empty()) cand.first = host().capture(msg.payload);
    cand.second.insert(*idx);
    try_deliver(msg.sc, msg.p);
  } else if (type == MsgType::Move) {
    std::size_t mac_len = crypto().mac_size();
    if (all.size() <= mac_len) return;
    BytesView body = all.subspan(0, all.size() - mac_len);
    BytesView tag = all.subspan(all.size() - mac_len);
    host().charge_mac();
    if (!host().check_auth_frame(from, Component::tag(), body, tag, /*is_sig=*/false)) return;

    Reader br(body);
    br.u8();
    irmc::MoveMsg mv = irmc::MoveMsg::decode(br);
    note_subchannel(mv.sc);

    if (win_lo(mv.sc) > mv.p) {
      // The sender requested a window we already moved past — it is behind
      // on window state (e.g. a crash-recovered sender endpoint that lost
      // its view of the channel). Grant it our current window start so it
      // can flush sends queued behind the stale window.
      irmc::MoveMsg grant{mv.sc, win_lo(mv.sc)};
      Bytes gbody = grant.encode();
      host().charge_mac();
      send_framed(from, gbody, crypto().mac(self(), from, auth_bytes(gbody)));
    }

    Position& cur = smoves_[{*idx, mv.sc}];
    if (mv.p <= cur) return;
    cur = mv.p;

    // fs+1-highest sender request forces our window forward (A.19).
    std::vector<Position> vals;
    for (std::uint32_t i = 0; i < cfg_.ns(); ++i) {
      auto it = smoves_.find({i, mv.sc});
      vals.push_back(it == smoves_.end() ? 1 : it->second);
    }
    std::sort(vals.rbegin(), vals.rend());
    Position nw = vals[std::min<std::size_t>(cfg_.fs, vals.size() - 1)];
    if (win_lo(mv.sc) < nw) internal_move(mv.sc, nw);
  }
}

}  // namespace spider
