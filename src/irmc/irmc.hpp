// Inter-Regional Message Channels (IRMC) — paper §3.2, §4, Appendix A.5.
//
// An IRMC forwards messages from a group of sender replicas to a group of
// receiver replicas in another region. Subchannels are independent bounded
// FIFO queues addressed by (subchannel, position); a message is delivered
// only after fs+1 senders submitted identical content for the same
// position, so no message forged by up to fs faulty senders can pass.
// Window-based flow control is built in (move_window).
//
// The paper's blocking send()/receive() calls are expressed as callbacks:
//   - send(): the callback fires when the call "returns" in paper terms —
//     immediately when the position is inside (sent) or below (dropped as
//     too old) the window, deferred while the position is above the window.
//   - receive(): the callback fires with the message, or with TooOld when
//     the window has moved past the requested position.
#pragma once

#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "sim/component.hpp"

namespace spider {

struct IrmcConfig {
  std::vector<NodeId> senders;
  std::vector<NodeId> receivers;
  std::uint32_t fs = 1;        // Byzantine senders tolerated
  std::uint32_t fr = 1;        // Byzantine receivers tolerated
  Position capacity = 16;      // per-subchannel window capacity (>= 1)
  std::uint32_t channel_tag = tags::kIrmc;  // component tag for this channel

  // IRMC-SC parameters.
  Duration progress_interval = 50 * kMillisecond;
  Duration collector_timeout = 300 * kMillisecond;

  // Window announcement heartbeat: senders periodically re-announce their
  // requested window starts so that receivers that were unreachable (and
  // missed Move messages) learn that they fell behind. Models the
  // retransmission behaviour of the reliable links the paper assumes.
  bool announce_window = false;
  Duration window_announce_interval = 200 * kMillisecond;

  [[nodiscard]] std::uint32_t ns() const { return static_cast<std::uint32_t>(senders.size()); }
  [[nodiscard]] std::uint32_t nr() const { return static_cast<std::uint32_t>(receivers.size()); }
};

/// Result of a receive(): either a delivered message or a TooOld exception
/// carrying the new window start (paper Fig. 14). The message is a
/// refcounted Payload sharing the receiver's stored buffer — delivery
/// copies nothing; call message.to_bytes() for an owned copy.
struct RecvResult {
  bool too_old = false;
  Position window_start = 0;  // set when too_old
  Payload message;            // set otherwise
};

class IrmcSenderEndpoint {
 public:
  /// (too_old, window_start): too_old=true means the message was discarded
  /// because the window had already advanced past the position.
  using SendCallback = std::function<void(bool too_old, Position window_start)>;

  virtual ~IrmcSenderEndpoint() = default;

  virtual void send(Subchannel sc, Position p, Bytes m, SendCallback done = {}) = 0;
  /// Ask the receiver side to move the subchannel window forward.
  virtual void move_window(Subchannel sc, Position p) = 0;
  /// Current active-window lower bound (as agreed by fr+1 receivers).
  virtual Position window_start(Subchannel sc) const = 0;
};

class IrmcReceiverEndpoint {
 public:
  using ReceiveCallback = std::function<void(RecvResult)>;

  virtual ~IrmcReceiverEndpoint() = default;

  virtual void receive(Subchannel sc, Position p, ReceiveCallback cb) = 0;
  virtual void move_window(Subchannel sc, Position p) = 0;
  virtual Position window_start(Subchannel sc) const = 0;

  /// Invoked the first time traffic for an unknown subchannel arrives.
  /// Spider's agreement replicas use this to start per-client pull loops
  /// for dynamically appearing client subchannels.
  std::function<void(Subchannel)> on_new_subchannel;

 protected:
  /// Implementations call this on every inbound subchannel reference.
  void note_subchannel(Subchannel sc) {
    if (seen_subchannels_.insert(sc).second && on_new_subchannel) on_new_subchannel(sc);
  }

 private:
  std::set<Subchannel> seen_subchannels_;
};

enum class IrmcKind : std::uint8_t {
  ReceiverCollect,  // IRMC-RC: each sender forwards signed Sends directly
  SenderCollect,    // IRMC-SC: senders assemble certificates (collectors)
};

std::unique_ptr<IrmcSenderEndpoint> make_irmc_sender(IrmcKind kind, ComponentHost& host,
                                                     IrmcConfig cfg);
std::unique_ptr<IrmcReceiverEndpoint> make_irmc_receiver(IrmcKind kind, ComponentHost& host,
                                                         IrmcConfig cfg);

}  // namespace spider
