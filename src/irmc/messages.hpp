// IRMC wire messages (paper Appendix A.8 / A.9).
#pragma once

#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/serde.hpp"
#include "crypto/sha256.hpp"

namespace spider::irmc {

enum class MsgType : std::uint8_t {
  Send = 1,         // RC: <Send, m, sc, p> signed by sender
  Move = 2,         // both: <Move, sc, p> MAC'd, either direction
  SigShare = 3,     // SC: <SigShare, h(m), sc, p> signed, sender-group internal
  Certificate = 4,  // SC: <Certificate, m, sc, p, shares> MAC'd by collector
  Progress = 5,     // SC: <Progress, {sc: p}> MAC'd, sender -> receivers
  Select = 6,       // SC: <Select, sc, collector> MAC'd, receiver -> senders
  Nack = 7,         // RC: <Nack, sc, p> MAC'd, receiver asks for retransmission
};

struct SendMsg {
  Subchannel sc = 0;
  Position p = 0;
  Bytes payload;

  Bytes encode() const;
  static SendMsg decode(Reader& r);
};

/// Zero-copy decode of a SendMsg: `payload` stays a view into the wire
/// buffer (valid only while the buffer lives — capture() it to retain).
struct SendMsgView {
  Subchannel sc = 0;
  Position p = 0;
  BytesView payload;

  static SendMsgView decode(Reader& r);
};

struct MoveMsg {
  Subchannel sc = 0;
  Position p = 0;

  Bytes encode() const;
  static MoveMsg decode(Reader& r);
};

struct SigShareMsg {
  Subchannel sc = 0;
  Position p = 0;
  Sha256Digest digest{};

  Bytes encode() const;
  static SigShareMsg decode(Reader& r);
};

struct CertificateMsg {
  Subchannel sc = 0;
  Position p = 0;
  Bytes payload;
  /// fs+1 (sender index, signature over that sender's SigShare bytes).
  std::vector<std::pair<std::uint32_t, Bytes>> shares;

  Bytes encode() const;
  static CertificateMsg decode(Reader& r);
};

/// Zero-copy decode of a CertificateMsg: payload and share signatures stay
/// views into the wire buffer.
struct CertificateMsgView {
  Subchannel sc = 0;
  Position p = 0;
  BytesView payload;
  std::vector<std::pair<std::uint32_t, BytesView>> shares;

  static CertificateMsgView decode(Reader& r);
};

struct ProgressMsg {
  std::vector<std::pair<Subchannel, Position>> progress;

  Bytes encode() const;
  static ProgressMsg decode(Reader& r);
};

struct SelectMsg {
  Subchannel sc = 0;
  std::uint32_t collector = 0;  // sender index chosen as collector

  Bytes encode() const;
  static SelectMsg decode(Reader& r);
};

}  // namespace spider::irmc
