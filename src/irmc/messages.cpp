#include "irmc/messages.hpp"

namespace spider::irmc {

namespace {
void put_digest(Writer& w, const Sha256Digest& d) { w.raw(BytesView(d.data(), d.size())); }

Sha256Digest get_digest(Reader& r) {
  BytesView v = r.raw(32);
  Sha256Digest d;
  std::copy(v.begin(), v.end(), d.begin());
  return d;
}
}  // namespace

Bytes SendMsg::encode() const {
  Writer w(1 + 8 + 8 + 4 + payload.size());
  w.u8(static_cast<std::uint8_t>(MsgType::Send));
  w.u64(sc);
  w.u64(p);
  w.bytes(payload);
  return std::move(w).take();
}

SendMsg SendMsg::decode(Reader& r) {
  SendMsg m;
  m.sc = r.u64();
  m.p = r.u64();
  m.payload = r.bytes();
  return m;
}

SendMsgView SendMsgView::decode(Reader& r) {
  SendMsgView m;
  m.sc = r.u64();
  m.p = r.u64();
  m.payload = r.bytes_view();
  return m;
}

Bytes MoveMsg::encode() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::Move));
  w.u64(sc);
  w.u64(p);
  return std::move(w).take();
}

MoveMsg MoveMsg::decode(Reader& r) {
  MoveMsg m;
  m.sc = r.u64();
  m.p = r.u64();
  return m;
}

Bytes SigShareMsg::encode() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::SigShare));
  w.u64(sc);
  w.u64(p);
  put_digest(w, digest);
  return std::move(w).take();
}

SigShareMsg SigShareMsg::decode(Reader& r) {
  SigShareMsg m;
  m.sc = r.u64();
  m.p = r.u64();
  m.digest = get_digest(r);
  return m;
}

Bytes CertificateMsg::encode() const {
  std::size_t hint = 1 + 8 + 8 + 4 + payload.size() + 4;
  for (const auto& [idx, sig] : shares) hint += 4 + 4 + sig.size();
  Writer w(hint);
  w.u8(static_cast<std::uint8_t>(MsgType::Certificate));
  w.u64(sc);
  w.u64(p);
  w.bytes(payload);
  w.u32(static_cast<std::uint32_t>(shares.size()));
  for (const auto& [idx, sig] : shares) {
    w.u32(idx);
    w.bytes(sig);
  }
  return std::move(w).take();
}

CertificateMsg CertificateMsg::decode(Reader& r) {
  CertificateMsg m;
  m.sc = r.u64();
  m.p = r.u64();
  m.payload = r.bytes();
  std::uint32_t n = r.u32();
  m.shares.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint32_t idx = r.u32();
    m.shares.emplace_back(idx, r.bytes());
  }
  return m;
}

CertificateMsgView CertificateMsgView::decode(Reader& r) {
  CertificateMsgView m;
  m.sc = r.u64();
  m.p = r.u64();
  m.payload = r.bytes_view();
  std::uint32_t n = r.u32();
  m.shares.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint32_t idx = r.u32();
    m.shares.emplace_back(idx, r.bytes_view());
  }
  return m;
}

Bytes ProgressMsg::encode() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::Progress));
  w.u32(static_cast<std::uint32_t>(progress.size()));
  for (const auto& [sc, p] : progress) {
    w.u64(sc);
    w.u64(p);
  }
  return std::move(w).take();
}

ProgressMsg ProgressMsg::decode(Reader& r) {
  ProgressMsg m;
  std::uint32_t n = r.u32();
  m.progress.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    Subchannel sc = r.u64();
    Position p = r.u64();
    m.progress.emplace_back(sc, p);
  }
  return m;
}

Bytes SelectMsg::encode() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::Select));
  w.u64(sc);
  w.u32(collector);
  return std::move(w).take();
}

SelectMsg SelectMsg::decode(Reader& r) {
  SelectMsg m;
  m.sc = r.u64();
  m.collector = r.u32();
  return m;
}

}  // namespace spider::irmc
