// IRMC-SC: sender-side collection (paper §4, Fig. 19/20).
//
// Senders exchange signed hashes (SigShares) inside their region, assemble
// certificates of fs+1 shares, and a per-receiver collector forwards a
// single Certificate message across the wide-area link. Receivers monitor
// collector liveness via Progress messages and switch collectors (Select)
// on timeout. Minimizes WAN traffic at the cost of extra sender CPU.
#pragma once

#include <map>
#include <optional>
#include <set>

#include "irmc/irmc.hpp"
#include "irmc/messages.hpp"

namespace spider {

class ScSender : public Component, public IrmcSenderEndpoint {
 public:
  ScSender(ComponentHost& host, IrmcConfig cfg);
  ~ScSender() override;

  void send(Subchannel sc, Position p, Bytes m, SendCallback done) override;
  void move_window(Subchannel sc, Position p) override;
  Position window_start(Subchannel sc) const override;

  void on_message(NodeId from, Reader& r) override;

 private:
  struct Queued {
    Bytes m;
    SendCallback cb;
  };
  struct SlotShares {
    // sender index -> (digest key, signature over that sender's SigShare)
    std::map<std::uint32_t, std::pair<std::uint64_t, Bytes>> shares;
  };

  [[nodiscard]] Position win_lo(Subchannel sc) const;
  [[nodiscard]] std::uint32_t my_sender_index() const { return my_index_; }
  std::optional<std::uint32_t> sender_index(NodeId node) const;
  std::optional<std::uint32_t> receiver_index(NodeId node) const;

  void start_transmit(Subchannel sc, Position p, Bytes m);
  void try_certificate(Subchannel sc, Position p);
  void send_certificate_to(std::uint32_t receiver_idx, Subchannel sc, Position p);
  void recompute_window(Subchannel sc);
  void flush_queue(Subchannel sc);
  void on_progress_timer();

  IrmcConfig cfg_;
  std::uint32_t my_index_ = 0;
  std::map<Subchannel, Position> awin_;
  std::map<std::pair<std::uint32_t, Subchannel>, Position> rwin_;
  std::map<Subchannel, std::multimap<Position, Queued>> queued_;
  std::map<Subchannel, Position> own_move_;

  // Own payload copies; Payload so the per-share digest re-check in
  // try_certificate reuses one memoized hash instead of re-hashing.
  std::map<Subchannel, std::map<Position, Payload>> payloads_;
  std::map<Subchannel, std::map<Position, SlotShares>> shares_;
  // Full signed wire frames; collector sends share one buffer.
  std::map<Subchannel, std::map<Position, Payload>> certificates_;
  // receiver index -> collector sender index chosen by that receiver.
  std::map<Subchannel, std::map<std::uint32_t, std::uint32_t>> collector_;
  EventQueue::EventId progress_timer_ = EventQueue::kInvalidEvent;
  EventQueue::EventId announce_timer_ = EventQueue::kInvalidEvent;
  void send_move(Subchannel sc, Position p);
  void on_announce_timer();
};

class ScReceiver : public Component, public IrmcReceiverEndpoint {
 public:
  ScReceiver(ComponentHost& host, IrmcConfig cfg);
  ~ScReceiver() override;

  void receive(Subchannel sc, Position p, ReceiveCallback cb) override;
  void move_window(Subchannel sc, Position p) override;
  Position window_start(Subchannel sc) const override;

  void on_message(NodeId from, Reader& r) override;

  /// Collector currently selected for a subchannel (test introspection).
  [[nodiscard]] std::uint32_t collector(Subchannel sc) const;

 private:
  [[nodiscard]] Position win_lo(Subchannel sc) const;
  [[nodiscard]] std::uint32_t my_receiver_index() const { return my_index_; }
  std::optional<std::uint32_t> sender_index(NodeId node) const;
  void internal_move(Subchannel sc, Position p);
  void deliver_ready(Subchannel sc, Position p);
  [[nodiscard]] bool has_gap(Subchannel sc) const;
  void arm_gap_timer(Subchannel sc);
  void on_gap_timer(Subchannel sc);

  IrmcConfig cfg_;
  std::uint32_t my_index_ = 0;
  std::map<Subchannel, Position> awin_;
  std::map<Subchannel, std::map<Position, Payload>> ready_;
  std::map<Subchannel, std::map<Position, std::vector<ReceiveCallback>>> pending_;
  std::map<std::pair<std::uint32_t, Subchannel>, Position> smoves_;

  std::map<std::pair<std::uint32_t, Subchannel>, Position> pe_;  // per-sender progress
  std::map<Subchannel, Position> pm_;                            // merged fs+1-highest
  std::map<Subchannel, std::uint32_t> collector_;
  std::map<Subchannel, EventQueue::EventId> gap_timers_;
};

}  // namespace spider
