// IRMC-RC: receiver-side collection (paper §4, Fig. 18).
//
// Every sender endpoint forwards its own signed <Send, m, sc, p> to every
// receiver endpoint; each receiver collects fs+1 matching Sends before
// delivering. Simple and CPU-cheap for senders, but transfers the payload
// |senders| x |receivers| times across the wide-area link.
#pragma once

#include <map>
#include <optional>
#include <set>

#include "irmc/irmc.hpp"
#include "irmc/messages.hpp"

namespace spider {

class RcSender : public Component, public IrmcSenderEndpoint {
 public:
  RcSender(ComponentHost& host, IrmcConfig cfg);
  ~RcSender() override;

  void send(Subchannel sc, Position p, Bytes m, SendCallback done) override;
  void move_window(Subchannel sc, Position p) override;
  Position window_start(Subchannel sc) const override;

  void on_message(NodeId from, Reader& r) override;

 private:
  struct Queued {
    Bytes m;
    SendCallback cb;
  };

  [[nodiscard]] Position win_lo(Subchannel sc) const;
  void recompute_window(Subchannel sc);
  void transmit(Subchannel sc, Position p, const Bytes& m);
  void flush_queue(Subchannel sc);
  std::optional<std::uint32_t> receiver_index(NodeId node) const;

  IrmcConfig cfg_;
  std::map<Subchannel, Position> awin_;  // active window lower bound (default 1)
  // Window positions requested by each receiver.
  std::map<std::pair<std::uint32_t, Subchannel>, Position> rwin_;
  // Sends blocked above the window.
  std::map<Subchannel, std::multimap<Position, Queued>> queued_;
  // Transmitted wire frames (tagged + signed) retained within the window
  // for retransmission (models the paper's reliable point-to-point links).
  // Payloads: the original multicast and every replay share one buffer.
  std::map<Subchannel, std::map<Position, Payload>> sent_;
  std::map<Subchannel, Position> own_move_;  // dedup of our own Move broadcasts
  EventQueue::EventId announce_timer_ = EventQueue::kInvalidEvent;
  void send_move(Subchannel sc, Position p);
  void on_announce_timer();
};

class RcReceiver : public Component, public IrmcReceiverEndpoint {
 public:
  RcReceiver(ComponentHost& host, IrmcConfig cfg);

  void receive(Subchannel sc, Position p, ReceiveCallback cb) override;
  void move_window(Subchannel sc, Position p) override;
  Position window_start(Subchannel sc) const override;

  void on_message(NodeId from, Reader& r) override;

 private:
  struct Slot {
    // candidate digest -> (payload, sender indices that vouched). The
    // payload is a zero-copy slice of the first vouching Send's wire.
    std::map<std::uint64_t, std::pair<Payload, std::set<std::uint32_t>>> candidates;
  };

  [[nodiscard]] Position win_lo(Subchannel sc) const;
  void internal_move(Subchannel sc, Position p);
  void try_deliver(Subchannel sc, Position p);
  std::optional<std::uint32_t> sender_index(NodeId node) const;

  IrmcConfig cfg_;
  std::map<Subchannel, Position> awin_;
  std::map<Subchannel, std::map<Position, Slot>> slots_;
  std::map<Subchannel, std::map<Position, Payload>> ready_;  // fs+1 quorum reached
  std::map<Subchannel, std::map<Position, std::vector<ReceiveCallback>>> pending_;
  // Window positions requested by each sender (fs+1 rule forces our window).
  std::map<std::pair<std::uint32_t, Subchannel>, Position> smoves_;
  EventQueue::EventId nack_timer_ = EventQueue::kInvalidEvent;
  // Stall detection: (sc -> position pending at the previous timer tick).
  std::map<Subchannel, Position> last_stalled_;
  void arm_nack_timer();
  void on_nack_timer();

 public:
  ~RcReceiver() override;
};

}  // namespace spider
