// Bridges the virtual-time event queue and the wall clock.
//
// The sim's protocol stack runs entirely on World's discrete-event queue:
// modeled CPU costs (signing, verification, per-message processing) are
// charged as virtual-time delays, and every timer is a queue event. On the
// socket backend messages travel over real fds instead of scheduled
// delivery events, so someone has to (a) advance the virtual clock and
// (b) pump the reactor. RealtimeDriver does both: it anchors a base pair
// (virtual time, wall time) at each run_until call and then interleaves
//
//   virtual-now = base_virtual + wall-microseconds-elapsed
//   queue.run_until(min(virtual-now, target))   // due protocol work
//   transport.poll(until next event or target)  // socket readiness
//
// so one virtual microsecond == one wall microsecond for the duration of
// the call. Modeled CPU costs therefore still bound throughput ("modeled
// CPU, real wire"), which is what makes an open-loop saturation knee
// findable on a loopback deployment.
//
// Installing the driver hooks World::run_until/run_for via
// World::set_run_driver, so existing harnesses (OpenLoopRunner,
// SpiderSystem warm-up loops) drive a socket-backed deployment unmodified.
#pragma once

#include <chrono>
#include <functional>

#include "common/time.hpp"
#include "net/loopback_transport.hpp"
#include "sim/world.hpp"

namespace spider::net {

class RealtimeDriver {
 public:
  /// Installs itself as `world`'s run driver. Both references must outlive
  /// the driver; the destructor restores pure discrete-event execution.
  RealtimeDriver(World& world, LoopbackTransport& transport);
  ~RealtimeDriver();

  RealtimeDriver(const RealtimeDriver&) = delete;
  RealtimeDriver& operator=(const RealtimeDriver&) = delete;

  /// Advances the world to virtual time `target` (the World::run_until
  /// path), pumping the reactor while waiting for virtual time to elapse.
  void run_until_virtual(Time target);

  /// Pumps until `pred()` holds, or `wall_budget` elapses (returns false).
  /// The virtual clock advances with the wall clock exactly as in
  /// run_until_virtual. For tests: "run until this reply arrived".
  bool run_until(const std::function<bool()>& pred,
                 std::chrono::milliseconds wall_budget);

 private:
  using Clock = std::chrono::steady_clock;

  World& world_;
  LoopbackTransport& transport_;
};

}  // namespace spider::net
