#include "net/tcp_framer.hpp"

#include <cstring>

namespace spider::net {

namespace {
std::uint32_t read_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}
}  // namespace

Bytes frame_prologue(NodeId from, std::size_t payload_size, std::size_t max_frame) {
  if (payload_size + 4 > max_frame) {
    throw SerdeError("tcp frame payload exceeds max frame size");
  }
  Writer w(8);
  w.u32(static_cast<std::uint32_t>(payload_size + 4));
  w.u32(from);
  return std::move(w).take();
}

void FrameDecoder::feed(BytesView data) {
  // Compact the consumed prefix before growing the buffer, so steady-state
  // memory stays bounded by one frame regardless of how long the stream
  // runs.
  if (pos_ > 0) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  // Validate the declared length as soon as the header is complete — before
  // buffering the body — so a hostile 4-byte header can never make us
  // allocate max_frame bytes of garbage, let alone more.
  buf_.insert(buf_.end(), data.begin(), data.end());
  if (buf_.size() >= 4) {
    const std::uint32_t len = read_le32(buf_.data());
    if (len < 4) throw SerdeError("tcp frame declares length < header");
    if (len > max_frame_) throw SerdeError("tcp frame declares oversized length");
  }
}

std::optional<Frame> FrameDecoder::next() {
  const std::size_t avail = buf_.size() - pos_;
  if (avail < 4) return std::nullopt;
  const std::uint32_t len = read_le32(buf_.data() + pos_);
  // feed() validated the *first* header; frames after it are validated
  // here, when their header surfaces at the front of the buffer.
  if (len < 4) throw SerdeError("tcp frame declares length < header");
  if (len > max_frame_) throw SerdeError("tcp frame declares oversized length");
  if (avail < 4u + len) return std::nullopt;

  Frame f;
  f.from = read_le32(buf_.data() + pos_ + 4);
  f.payload.assign(buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + 8),
                   buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + 4 + len));
  pos_ += 4u + len;
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  }
  return f;
}

}  // namespace spider::net
