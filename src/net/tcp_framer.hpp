// Length-prefixed framing for the ordered/control TCP channel.
//
// Wire format, little-endian, one frame per protocol message:
//
//   [u32 len][u32 from][len - 4 bytes payload]
//
// `len` counts everything after the length word (sender id + payload), so
// a structurally valid frame always declares len >= 4. The decoder is the
// adversarial surface of the socket backend — it consumes bytes straight
// off a TCP stream that a Byzantine peer controls — so it is hardened to
// the same bar as ShardMap::decode: a violated bound surfaces SerdeError
// (the connection is then closed) and buffering is capped by the declared
// maximum frame size; truncation (mid-frame close) is detected, never
// crashes, and garbage never triggers unbounded allocation.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/serde.hpp"

namespace spider::net {

/// Upper bound on a frame's declared length (sender id + payload). Large
/// checkpoint/state-transfer messages stay comfortably below this; a
/// declared length above it is treated as a protocol violation rather
/// than an allocation request.
constexpr std::size_t kDefaultMaxFrame = 16u * 1024 * 1024;

struct Frame {
  NodeId from = 0;
  Bytes payload;
};

/// Encodes the 8-byte prologue ([len][from]) for a frame carrying
/// `payload_size` bytes; the payload itself is written separately (zero
/// copy from the refcounted Payload buffer). Throws SerdeError when the
/// payload would exceed `max_frame`.
Bytes frame_prologue(NodeId from, std::size_t payload_size,
                     std::size_t max_frame = kDefaultMaxFrame);

class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_frame = kDefaultMaxFrame)
      : max_frame_(max_frame) {}

  /// Appends raw stream bytes. Throws SerdeError as soon as a declared
  /// length violates the protocol (len < 4, or len > max_frame); the
  /// caller must then discard the decoder and close the connection.
  void feed(BytesView data);

  /// Pops the next complete frame, or nullopt when more bytes are needed.
  std::optional<Frame> next();

  /// True when the stream stopped mid-frame (bytes buffered, or a header
  /// partially read): a close now is a dirty close, surfaced by the
  /// transport as a dropped-connection error, never as a partial message.
  [[nodiscard]] bool mid_frame() const { return buf_.size() > pos_; }

  /// Bytes currently buffered (bounded by max_frame + header).
  [[nodiscard]] std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::size_t max_frame_;
  Bytes buf_;          // unconsumed stream bytes
  std::size_t pos_ = 0;  // consumed prefix of buf_ (compacted lazily)
};

}  // namespace spider::net
