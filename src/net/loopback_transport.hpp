// Real-socket Transport backend: UDP + framed TCP through an epoll reactor.
//
// One LoopbackTransport hosts N in-process endpoints, each bound to real
// sockets on 127.0.0.1 (ephemeral ports):
//
//   * kUnordered traffic rides UDP datagrams ([u32 from][payload]) — the
//     weak-read fast path tolerates loss and reordering, so datagrams map
//     exactly onto its semantics.
//   * kOrdered traffic rides length-prefixed framed TCP (tcp_framer.hpp),
//     one outbound connection per (from, to) pair, established lazily on
//     first send and re-established with exponential backoff after failure.
//
// The delivery contract matches SimNetwork (see net/transport.hpp and the
// conformance battery in tests/test_transport.cpp): FIFO per (from, to)
// within a traffic class, refcounted multicast payloads (the payload buffer
// is shared by every connection's write queue — never copied, never
// mutated), silent drop to unknown ids, detach-drops-inflight (detach
// closes the endpoint's sockets, so kernel-buffered bytes die with them),
// and down-node drops at both send and dispatch.
//
// Write backpressure: each outbound connection buffers at most
// `max_queue_bytes` beyond what the kernel accepts; past that, new sends on
// that connection are dropped and counted (`counters().dropped_backpressure`)
// instead of growing without bound — fire-and-forget never blocks.
//
// Everything is single-threaded: send() enqueues to kernel buffers or user
// queues, poll() runs the reactor once and dispatches deliveries on the
// calling thread. Pair with net::RealtimeDriver to interleave the reactor
// with a World's virtual-time event queue.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/epoll_reactor.hpp"
#include "net/tcp_framer.hpp"
#include "net/transport.hpp"

namespace spider::net {

class LoopbackTransport final : public Transport {
 public:
  struct Config {
    std::size_t max_frame = kDefaultMaxFrame;
    /// Per-connection user-space write-queue cap (bytes); beyond it sends
    /// on that connection are dropped, not buffered.
    std::size_t max_queue_bytes = 8u * 1024 * 1024;
    std::chrono::milliseconds backoff_min{5};
    std::chrono::milliseconds backoff_max{500};
    /// UDP receive buffer request (best-effort; the kernel may clamp).
    int udp_rcvbuf = 1 << 22;
  };

  LoopbackTransport() : LoopbackTransport(Config()) {}
  explicit LoopbackTransport(Config cfg);
  ~LoopbackTransport() override;

  LoopbackTransport(const LoopbackTransport&) = delete;
  LoopbackTransport& operator=(const LoopbackTransport&) = delete;

  // ---- Transport ---------------------------------------------------------
  void attach(TransportEndpoint* ep) override;
  void detach(NodeId id) override;
  void send(NodeId from, NodeId to, Payload payload, TrafficClass cls) override;
  void set_node_down(NodeId id, bool down) override;
  [[nodiscard]] bool is_down(NodeId id) const override;

  // ---- driving -----------------------------------------------------------
  /// Runs the reactor once: waits up to `timeout_ms` for socket readiness,
  /// dispatches reads/writes/timers, delivers complete messages to their
  /// endpoints. Returns the number of I/O events handled.
  std::size_t poll(int timeout_ms);

  /// Polls with zero timeout until a pass handles no events (bounded by
  /// `max_passes`). Useful in tests to settle loopback traffic.
  void drain(std::size_t max_passes = 1000);

  // ---- introspection -----------------------------------------------------
  struct Counters {
    std::uint64_t udp_datagrams_sent = 0;
    std::uint64_t udp_datagrams_received = 0;
    std::uint64_t udp_send_failures = 0;  // kernel refused (buffer full, ...)
    std::uint64_t tcp_frames_sent = 0;    // enqueued onto a connection
    std::uint64_t tcp_frames_received = 0;
    std::uint64_t tcp_connects = 0;       // successful connection establishments
    std::uint64_t tcp_retries = 0;        // backoff-scheduled reconnect attempts
    std::uint64_t tcp_decode_errors = 0;  // framer violations -> connection closed
    std::uint64_t tcp_dirty_closes = 0;   // peer closed mid-frame
    std::uint64_t dropped_backpressure = 0;
    std::uint64_t dropped_unknown_dest = 0;
    std::uint64_t dropped_down = 0;
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

  [[nodiscard]] std::size_t attached_count() const { return endpoints_.size(); }
  [[nodiscard]] bool is_attached(NodeId id) const { return endpoints_.count(id) != 0; }

  EpollReactor& reactor() { return reactor_; }

 private:
  struct Endpoint {
    TransportEndpoint* ep = nullptr;
    int udp_fd = -1;
    int listen_fd = -1;
    std::uint16_t udp_port = 0;
    std::uint16_t tcp_port = 0;
  };

  /// One queued ordered message: 8-byte prologue + refcounted payload.
  /// `off` advances across head.size() + body.size() as the kernel accepts
  /// bytes; the payload buffer itself is shared with every other
  /// destination of the same multicast.
  struct OutChunk {
    Bytes head;
    Payload body;
    std::size_t off = 0;
  };

  struct OutboundConn {
    NodeId from = 0;
    NodeId to = 0;
    int fd = -1;
    bool connected = false;
    std::deque<OutChunk> queue;
    std::size_t queued_bytes = 0;
    std::chrono::milliseconds backoff{0};
    EpollReactor::TimerId retry_timer = 0;
  };

  struct InboundConn {
    int fd = -1;
    NodeId to = 0;  // endpoint this connection delivers to
    FrameDecoder decoder;
    explicit InboundConn(std::size_t max_frame) : decoder(max_frame) {}
  };

  void send_udp(NodeId from, NodeId to, const Payload& payload);
  void send_tcp(NodeId from, NodeId to, Payload payload);

  OutboundConn* get_outbound(NodeId from, NodeId to);
  void start_connect(const std::shared_ptr<OutboundConn>& conn);
  void on_outbound_ready(const std::shared_ptr<OutboundConn>& conn, std::uint32_t events);
  void flush_outbound(const std::shared_ptr<OutboundConn>& conn);
  void fail_outbound(const std::shared_ptr<OutboundConn>& conn);
  void destroy_outbound(const std::shared_ptr<OutboundConn>& conn);
  void close_outbound_fd(OutboundConn& conn);

  void on_udp_readable(NodeId id);
  void on_accept(NodeId id);
  void on_inbound_readable(int fd);
  void close_inbound(int fd);

  void dispatch(NodeId from, NodeId to, Payload payload);
  void account_send(NodeId from, NodeId to, std::size_t bytes);

  Config cfg_;
  EpollReactor reactor_;
  std::unordered_map<NodeId, Endpoint> endpoints_;
  std::map<std::pair<NodeId, NodeId>, std::shared_ptr<OutboundConn>> outbound_;
  std::unordered_map<int, std::unique_ptr<InboundConn>> inbound_;
  std::unordered_map<NodeId, bool> down_;
  Counters counters_;
  std::vector<std::uint8_t> udp_buf_;
};

}  // namespace spider::net
