#include "net/epoll_reactor.hpp"

#include <sys/epoll.h>
#include <unistd.h>

#include <cerrno>
#include <stdexcept>
#include <vector>

namespace spider::net {

EpollReactor::EpollReactor() {
  epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epfd_ < 0) throw std::runtime_error("epoll_create1 failed");
}

EpollReactor::~EpollReactor() {
  if (epfd_ >= 0) ::close(epfd_);
}

void EpollReactor::add(int fd, std::uint32_t events, IoCallback cb) {
  auto handler = std::make_shared<Handler>();
  handler->cb = std::move(cb);
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    throw std::runtime_error("epoll_ctl(ADD) failed");
  }
  handlers_[fd] = std::move(handler);
}

void EpollReactor::modify(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    throw std::runtime_error("epoll_ctl(MOD) failed");
  }
}

void EpollReactor::remove(int fd) {
  if (handlers_.erase(fd) == 0) return;
  ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);  // fd may already be closed
}

EpollReactor::TimerId EpollReactor::add_timer(Clock::time_point when,
                                              std::function<void()> fn) {
  const TimerId id = next_timer_++;
  timers_.emplace(std::make_pair(when, id), std::move(fn));
  timer_index_.emplace(id, when);
  return id;
}

void EpollReactor::cancel_timer(TimerId id) {
  auto it = timer_index_.find(id);
  if (it == timer_index_.end()) return;
  timers_.erase(std::make_pair(it->second, id));
  timer_index_.erase(it);
}

std::size_t EpollReactor::wait(int timeout_ms) {
  // Clamp the wait by the next backoff deadline so reconnects fire on time.
  if (!timers_.empty()) {
    const auto now = Clock::now();
    const auto next = timers_.begin()->first.first;
    if (next <= now) {
      timeout_ms = 0;
    } else {
      const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(next - now);
      if (timeout_ms < 0 || ms.count() < timeout_ms) {
        timeout_ms = static_cast<int>(ms.count()) + 1;
      }
    }
  }

  epoll_event events[64];
  int n = ::epoll_wait(epfd_, events, 64, timeout_ms);
  if (n < 0) {
    if (errno != EINTR) throw std::runtime_error("epoll_wait failed");
    n = 0;
  }

  std::size_t dispatched = 0;
  for (int i = 0; i < n; ++i) {
    // Look the handler up at dispatch time: an earlier callback in this
    // batch may have removed this fd. If the fd number was already reused
    // by a new socket, the new handler sees a spurious level-triggered
    // event, which every callback tolerates (they re-check readiness and
    // handle EAGAIN).
    auto it = handlers_.find(events[i].data.fd);
    if (it == handlers_.end()) continue;
    std::shared_ptr<Handler> h = it->second;  // keep alive across the call
    h->cb(events[i].events);
    ++dispatched;
  }

  // Fire due timers (a timer may schedule new timers; those run next call).
  const auto now = Clock::now();
  std::vector<std::function<void()>> due;
  while (!timers_.empty() && timers_.begin()->first.first <= now) {
    auto it = timers_.begin();
    timer_index_.erase(it->first.second);
    due.push_back(std::move(it->second));
    timers_.erase(it);
  }
  for (auto& fn : due) fn();

  return dispatched;
}

}  // namespace spider::net
