// The transport seam: every message in the repo crosses this interface.
//
// Protocol objects (SimNode / Component stacks) talk to a `Transport`,
// never to a concrete network. Two implementations exist:
//
//   - `SimNetwork` (src/sim/network.hpp): the deterministic discrete-event
//     simulation — modeled geographic latency, bandwidth, fault injection,
//     byte-identical replay for a given seed.
//   - `LoopbackTransport` (src/net/loopback_transport.hpp): real sockets
//     through an epoll reactor — UDP datagrams for unordered traffic,
//     length-prefixed framed TCP for ordered/control traffic.
//
// The contract both backends honour (pinned by tests/test_transport.cpp):
//
//   * send() is fire-and-forget and never blocks the caller.
//   * Messages on the same (from, to) pair and traffic class are delivered
//     FIFO. The sim is stronger (FIFO across classes on a pair); the
//     socket backend orders only within a class (UDP and TCP are separate
//     channels), so protocol code must not rely on cross-class order.
//   * A multicast may pass the same refcounted Payload for every
//     destination; the transport never mutates it.
//   * Messages to ids that are not attached are dropped silently.
//   * detach() drops in-flight messages addressed to the detached id; a
//     later attach() under the same id is a new incarnation and does not
//     resurrect them.
//   * A "down" node (set_node_down) neither sends nor receives until it is
//     brought back up; messages arriving while it is down are lost.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/payload.hpp"
#include "sim/topology.hpp"

namespace spider {

/// Delivery class of a message. Ordered/control traffic needs the reliable
/// FIFO channel (framed TCP on the socket backend); unordered traffic — the
/// weak-read fast path, whose requests and replies are idempotent and
/// client-retried — tolerates best-effort datagrams (UDP).
enum class TrafficClass : std::uint8_t {
  kOrdered = 0,
  kUnordered = 1,
};

const char* traffic_class_name(TrafficClass cls);

/// WAN/LAN byte accounting (the paper's Figure 9d reports exactly these
/// counters). Both backends classify a hop by the endpoints' modeled sites.
struct LinkStats {
  std::uint64_t wan_bytes = 0;
  std::uint64_t lan_bytes = 0;
  std::uint64_t wan_msgs = 0;
  std::uint64_t lan_msgs = 0;

  void reset() { *this = LinkStats{}; }
};

struct PerNodeNetStats {
  std::uint64_t sent_wan_bytes = 0;
  std::uint64_t sent_lan_bytes = 0;
  std::uint64_t recv_bytes = 0;
};

/// A process attached to a transport. SimNode implements this; tests attach
/// bare recording endpoints.
class TransportEndpoint {
 public:
  virtual ~TransportEndpoint() = default;

  [[nodiscard]] virtual NodeId id() const = 0;
  /// Modeled geographic placement (drives latency in the sim and WAN/LAN
  /// accounting in both backends).
  [[nodiscard]] virtual Site site() const = 0;
  /// Inbound message. Called by the transport on its delivery path; must
  /// not re-enter Transport::send synchronously with unbounded recursion.
  virtual void deliver(NodeId from, Payload data) = 0;
};

class Transport {
 public:
  virtual ~Transport() = default;

  virtual void attach(TransportEndpoint* ep) = 0;
  virtual void detach(NodeId id) = 0;

  /// Sends `payload` from `from` to `to` (fire-and-forget; see the file
  /// comment for the delivery contract). The payload is refcounted, not
  /// copied: a multicast passes the same Payload for every destination.
  virtual void send(NodeId from, NodeId to, Payload payload, TrafficClass cls) = 0;

  void send(NodeId from, NodeId to, Payload payload) {
    send(from, to, std::move(payload), TrafficClass::kOrdered);
  }
  void send(NodeId from, NodeId to, Bytes payload) {
    send(from, to, Payload(std::move(payload)), TrafficClass::kOrdered);
  }

  /// A "down" node neither sends nor receives (crash fault).
  virtual void set_node_down(NodeId id, bool down) = 0;
  [[nodiscard]] virtual bool is_down(NodeId id) const = 0;

  // ---- accounting ------------------------------------------------------
  LinkStats& stats() { return stats_; }
  PerNodeNetStats& node_stats(NodeId id) { return node_stats_[id]; }
  virtual void reset_stats() {
    stats_.reset();
    node_stats_.clear();
  }

 protected:
  LinkStats stats_;
  std::unordered_map<NodeId, PerNodeNetStats> node_stats_;
};

}  // namespace spider
