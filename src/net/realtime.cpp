#include "net/realtime.hpp"

#include <algorithm>

namespace spider::net {

namespace {
Time elapsed_us(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}
}  // namespace

RealtimeDriver::RealtimeDriver(World& world, LoopbackTransport& transport)
    : world_(world), transport_(transport) {
  world_.set_run_driver([this](Time target) { run_until_virtual(target); });
}

RealtimeDriver::~RealtimeDriver() { world_.set_run_driver({}); }

void RealtimeDriver::run_until_virtual(Time target) {
  EventQueue& q = world_.queue();
  const Time base_virtual = q.now();
  const auto base_wall = Clock::now();

  for (;;) {
    const Time vnow = base_virtual + elapsed_us(base_wall);
    q.run_until(std::min(vnow, target));
    if (vnow >= target) break;

    // Block on the reactor until the next queue event is due (or the
    // target is reached), bounded so socket deliveries — which schedule
    // *new* queue events — get picked up promptly.
    Time deadline = target;
    if (std::optional<Time> nt = q.next_time(); nt && *nt < deadline) deadline = *nt;
    const Time wait_us = deadline > vnow ? deadline - vnow : 0;
    const int timeout_ms = static_cast<int>(std::min<Time>((wait_us + 999) / 1000, 50));
    transport_.poll(timeout_ms);
  }
  // Land the virtual clock exactly on target (the loop may overshoot in
  // wall time; the queue never runs past target above).
  q.run_until(target);
}

bool RealtimeDriver::run_until(const std::function<bool()>& pred,
                               std::chrono::milliseconds wall_budget) {
  EventQueue& q = world_.queue();
  const Time base_virtual = q.now();
  const auto base_wall = Clock::now();
  const auto deadline = base_wall + wall_budget;

  for (;;) {
    if (pred()) return true;
    if (Clock::now() >= deadline) return false;
    const Time vnow = base_virtual + elapsed_us(base_wall);
    q.run_until(vnow);
    if (pred()) return true;
    transport_.poll(1);
  }
}

}  // namespace spider::net
