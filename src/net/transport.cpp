#include "net/transport.hpp"

namespace spider {

const char* traffic_class_name(TrafficClass cls) {
  switch (cls) {
    case TrafficClass::kOrdered: return "ordered";
    case TrafficClass::kUnordered: return "unordered";
  }
  return "?";
}

}  // namespace spider
