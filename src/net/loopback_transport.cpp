#include "net/loopback_transport.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace spider::net {

namespace {

std::uint32_t read_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

void write_le32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

std::uint16_t bound_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    throw std::runtime_error("getsockname failed");
  }
  return ntohs(addr.sin_port);
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// A deployment of N endpoints opens ~N^2 connection fds; make sure the
/// soft fd limit is not the bottleneck (best-effort, capped at the hard
/// limit).
void raise_fd_limit() {
  rlimit rl{};
  if (::getrlimit(RLIMIT_NOFILE, &rl) != 0) return;
  const rlim_t want = rl.rlim_max == RLIM_INFINITY
                          ? 65536
                          : std::min<rlim_t>(65536, rl.rlim_max);
  if (rl.rlim_cur < want) {
    rl.rlim_cur = want;
    ::setrlimit(RLIMIT_NOFILE, &rl);
  }
}

bool would_block(int err) { return err == EAGAIN || err == EWOULDBLOCK; }

}  // namespace

LoopbackTransport::LoopbackTransport(Config cfg) : cfg_(cfg) {
  raise_fd_limit();
  udp_buf_.resize(64 * 1024);
}

LoopbackTransport::~LoopbackTransport() {
  // Close everything in an order that never touches a freed record: break
  // outbound/inbound first, then the listeners and UDP sockets.
  for (auto& [key, conn] : outbound_) {
    if (conn->retry_timer != 0) reactor_.cancel_timer(conn->retry_timer);
    close_outbound_fd(*conn);
  }
  outbound_.clear();
  for (auto& [fd, conn] : inbound_) {
    reactor_.remove(fd);
    ::close(fd);
  }
  inbound_.clear();
  for (auto& [id, ep] : endpoints_) {
    if (ep.udp_fd >= 0) {
      reactor_.remove(ep.udp_fd);
      ::close(ep.udp_fd);
    }
    if (ep.listen_fd >= 0) {
      reactor_.remove(ep.listen_fd);
      ::close(ep.listen_fd);
    }
  }
  endpoints_.clear();
}

void LoopbackTransport::attach(TransportEndpoint* ep) {
  const NodeId id = ep->id();
  if (endpoints_.count(id) != 0) {
    throw std::runtime_error("LoopbackTransport: duplicate attach");
  }

  Endpoint rec;
  rec.ep = ep;

  // UDP socket for unordered traffic.
  rec.udp_fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (rec.udp_fd < 0) throw std::runtime_error("udp socket() failed");
  ::setsockopt(rec.udp_fd, SOL_SOCKET, SO_RCVBUF, &cfg_.udp_rcvbuf, sizeof(cfg_.udp_rcvbuf));
  sockaddr_in addr = loopback_addr(0);
  if (::bind(rec.udp_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(rec.udp_fd);
    throw std::runtime_error("udp bind() failed");
  }
  rec.udp_port = bound_port(rec.udp_fd);

  // TCP listener for ordered traffic.
  rec.listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (rec.listen_fd < 0) {
    ::close(rec.udp_fd);
    throw std::runtime_error("tcp socket() failed");
  }
  addr = loopback_addr(0);
  if (::bind(rec.listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(rec.listen_fd, SOMAXCONN) != 0) {
    ::close(rec.udp_fd);
    ::close(rec.listen_fd);
    throw std::runtime_error("tcp bind/listen failed");
  }
  rec.tcp_port = bound_port(rec.listen_fd);

  reactor_.add(rec.udp_fd, EPOLLIN, [this, id](std::uint32_t) { on_udp_readable(id); });
  reactor_.add(rec.listen_fd, EPOLLIN, [this, id](std::uint32_t) { on_accept(id); });

  endpoints_.emplace(id, rec);
}

void LoopbackTransport::detach(NodeId id) {
  auto it = endpoints_.find(id);
  if (it == endpoints_.end()) return;

  // Closing the sockets is what makes detach drop in-flight traffic: bytes
  // already accepted by the kernel die with the fds, and a later attach()
  // binds fresh ports — a new incarnation no old sender still points at.
  Endpoint& rec = it->second;
  if (rec.udp_fd >= 0) {
    reactor_.remove(rec.udp_fd);
    ::close(rec.udp_fd);
  }
  if (rec.listen_fd >= 0) {
    reactor_.remove(rec.listen_fd);
    ::close(rec.listen_fd);
  }
  endpoints_.erase(it);

  // Inbound connections delivering to this endpoint.
  std::vector<int> stale;
  for (auto& [fd, conn] : inbound_) {
    if (conn->to == id) stale.push_back(fd);
  }
  for (int fd : stale) close_inbound(fd);

  // Outbound connections from or to this endpoint (queued messages die).
  std::vector<std::shared_ptr<OutboundConn>> gone;
  for (auto& [key, conn] : outbound_) {
    if (key.first == id || key.second == id) gone.push_back(conn);
  }
  for (auto& conn : gone) destroy_outbound(conn);
}

void LoopbackTransport::set_node_down(NodeId id, bool down) { down_[id] = down; }

bool LoopbackTransport::is_down(NodeId id) const {
  auto it = down_.find(id);
  return it != down_.end() && it->second;
}

void LoopbackTransport::send(NodeId from, NodeId to, Payload payload, TrafficClass cls) {
  if (endpoints_.count(from) == 0) return;  // sender already detached
  if (is_down(from) || is_down(to)) {
    ++counters_.dropped_down;
    return;
  }
  if (endpoints_.count(to) == 0) {
    ++counters_.dropped_unknown_dest;
    return;
  }
  account_send(from, to, payload.size());
  if (cls == TrafficClass::kUnordered) {
    send_udp(from, to, payload);
  } else {
    send_tcp(from, to, std::move(payload));
  }
}

void LoopbackTransport::account_send(NodeId from, NodeId to, std::size_t bytes) {
  const Site a = endpoints_.at(from).ep->site();
  const Site b = endpoints_.at(to).ep->site();
  PerNodeNetStats& ns = node_stats_[from];
  if (is_wan(a, b)) {  // same rule as the sim: WAN = cross-region
    stats_.wan_bytes += bytes;
    stats_.wan_msgs += 1;
    ns.sent_wan_bytes += bytes;
  } else {
    stats_.lan_bytes += bytes;
    stats_.lan_msgs += 1;
    ns.sent_lan_bytes += bytes;
  }
}

// ---- UDP (kUnordered) ----------------------------------------------------

void LoopbackTransport::send_udp(NodeId from, NodeId to, const Payload& payload) {
  const Endpoint& src = endpoints_.at(from);
  const Endpoint& dst = endpoints_.at(to);

  std::uint8_t header[4];
  write_le32(header, from);

  iovec iov[2];
  iov[0] = {header, sizeof(header)};
  int iovcnt = 1;
  if (!payload.empty()) {
    iov[1] = {const_cast<std::uint8_t*>(payload.data()), payload.size()};
    iovcnt = 2;
  }

  sockaddr_in addr = loopback_addr(dst.udp_port);
  msghdr msg{};
  msg.msg_name = &addr;
  msg.msg_namelen = sizeof(addr);
  msg.msg_iov = iov;
  msg.msg_iovlen = static_cast<std::size_t>(iovcnt);

  if (::sendmsg(src.udp_fd, &msg, 0) < 0) {
    ++counters_.udp_send_failures;  // best-effort channel: loss is legal
  } else {
    ++counters_.udp_datagrams_sent;
  }
}

void LoopbackTransport::on_udp_readable(NodeId id) {
  for (;;) {
    auto it = endpoints_.find(id);
    if (it == endpoints_.end()) return;  // detached by a delivery callback
    const ssize_t n = ::recv(it->second.udp_fd, udp_buf_.data(), udp_buf_.size(), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (or a transient error): wait for the next readiness event
    }
    if (n < 4) continue;  // malformed datagram: no sender header
    const NodeId from = read_le32(udp_buf_.data());
    ++counters_.udp_datagrams_received;
    Payload payload(Bytes(udp_buf_.begin() + 4, udp_buf_.begin() + n));
    dispatch(from, id, std::move(payload));
  }
}

// ---- TCP (kOrdered) ------------------------------------------------------

void LoopbackTransport::send_tcp(NodeId from, NodeId to, Payload payload) {
  OutboundConn* conn = get_outbound(from, to);
  if (conn == nullptr) return;

  OutChunk chunk;
  chunk.head = frame_prologue(from, payload.size(), cfg_.max_frame);
  chunk.body = std::move(payload);
  const std::size_t sz = chunk.head.size() + chunk.body.size();

  if (conn->queued_bytes + sz > cfg_.max_queue_bytes) {
    ++counters_.dropped_backpressure;
    return;
  }
  conn->queue.push_back(std::move(chunk));
  conn->queued_bytes += sz;
  ++counters_.tcp_frames_sent;

  if (conn->connected) {
    auto it = outbound_.find({from, to});
    flush_outbound(it->second);
  }
}

LoopbackTransport::OutboundConn* LoopbackTransport::get_outbound(NodeId from, NodeId to) {
  auto it = outbound_.find({from, to});
  if (it != outbound_.end()) return it->second.get();

  auto conn = std::make_shared<OutboundConn>();
  conn->from = from;
  conn->to = to;
  outbound_.emplace(std::make_pair(from, to), conn);
  start_connect(conn);
  // start_connect may have destroyed the record on immediate failure.
  auto again = outbound_.find({from, to});
  return again == outbound_.end() ? nullptr : again->second.get();
}

void LoopbackTransport::start_connect(const std::shared_ptr<OutboundConn>& conn) {
  auto dst = endpoints_.find(conn->to);
  if (dst == endpoints_.end()) {
    destroy_outbound(conn);
    return;
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    fail_outbound(conn);
    return;
  }
  set_nodelay(fd);

  sockaddr_in addr = loopback_addr(dst->second.tcp_port);
  const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    fail_outbound(conn);
    return;
  }

  conn->fd = fd;
  conn->connected = false;
  // EPOLLOUT completes the connect; EPOLLIN afterwards only ever signals
  // peer close (connections are unidirectional).
  std::weak_ptr<OutboundConn> weak = conn;
  reactor_.add(fd, EPOLLOUT | EPOLLIN, [this, weak](std::uint32_t events) {
    if (auto c = weak.lock()) on_outbound_ready(c, events);
  });
}

void LoopbackTransport::on_outbound_ready(const std::shared_ptr<OutboundConn>& conn,
                                          std::uint32_t events) {
  if (conn->fd < 0) return;

  if (!conn->connected) {
    int err = 0;
    socklen_t len = sizeof(err);
    if ((events & (EPOLLERR | EPOLLHUP)) != 0 ||
        ::getsockopt(conn->fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      fail_outbound(conn);
      return;
    }
    conn->connected = true;
    conn->backoff = std::chrono::milliseconds{0};
    ++counters_.tcp_connects;
    flush_outbound(conn);
    return;
  }

  if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    fail_outbound(conn);
    return;
  }
  if ((events & EPOLLIN) != 0) {
    // The peer never sends application data our way; readable means EOF.
    std::uint8_t scratch[256];
    const ssize_t n = ::recv(conn->fd, scratch, sizeof(scratch), 0);
    if (n == 0 || (n < 0 && !would_block(errno) && errno != EINTR)) {
      fail_outbound(conn);
      return;
    }
  }
  if ((events & EPOLLOUT) != 0) flush_outbound(conn);
}

void LoopbackTransport::flush_outbound(const std::shared_ptr<OutboundConn>& conn) {
  while (!conn->queue.empty()) {
    OutChunk& c = conn->queue.front();
    const std::size_t total = c.head.size() + c.body.size();
    if (c.off >= total) {
      conn->queue.pop_front();
      continue;
    }

    iovec iov[2];
    int iovcnt = 0;
    if (c.off < c.head.size()) {
      iov[iovcnt++] = {c.head.data() + c.off, c.head.size() - c.off};
    }
    const std::size_t body_off = c.off > c.head.size() ? c.off - c.head.size() : 0;
    if (body_off < c.body.size()) {
      iov[iovcnt++] = {const_cast<std::uint8_t*>(c.body.data()) + body_off,
                       c.body.size() - body_off};
    }

    const ssize_t n = ::writev(conn->fd, iov, iovcnt);
    if (n < 0) {
      if (would_block(errno)) break;
      if (errno == EINTR) continue;
      fail_outbound(conn);
      return;
    }
    c.off += static_cast<std::size_t>(n);
    conn->queued_bytes -= static_cast<std::size_t>(n);
    if (c.off >= total) conn->queue.pop_front();
  }
  reactor_.modify(conn->fd, EPOLLIN | (conn->queue.empty() ? 0 : EPOLLOUT));
}

void LoopbackTransport::fail_outbound(const std::shared_ptr<OutboundConn>& conn) {
  close_outbound_fd(*conn);

  if (endpoints_.count(conn->to) == 0) {
    // Destination detached: queued messages are in-flight traffic to a dead
    // incarnation — drop them with the connection.
    destroy_outbound(conn);
    return;
  }

  // Transient failure (listen backlog, connect race): retry with backoff,
  // re-querying the endpoint registry when the timer fires.
  conn->backoff = conn->backoff.count() == 0
                      ? cfg_.backoff_min
                      : std::min(conn->backoff * 2, cfg_.backoff_max);
  ++counters_.tcp_retries;
  std::weak_ptr<OutboundConn> weak = conn;
  conn->retry_timer = reactor_.add_timer(
      EpollReactor::Clock::now() + conn->backoff, [this, weak] {
        auto c = weak.lock();
        if (!c) return;
        c->retry_timer = 0;
        // Still the live record for this pair? (A detach/reattach cycle
        // replaces it.)
        auto it = outbound_.find({c->from, c->to});
        if (it == outbound_.end() || it->second != c) return;
        if (endpoints_.count(c->to) == 0) {
          destroy_outbound(c);
          return;
        }
        start_connect(c);
      });
}

void LoopbackTransport::destroy_outbound(const std::shared_ptr<OutboundConn>& conn) {
  if (conn->retry_timer != 0) {
    reactor_.cancel_timer(conn->retry_timer);
    conn->retry_timer = 0;
  }
  close_outbound_fd(*conn);
  conn->queue.clear();
  conn->queued_bytes = 0;
  auto it = outbound_.find({conn->from, conn->to});
  if (it != outbound_.end() && it->second == conn) outbound_.erase(it);
}

void LoopbackTransport::close_outbound_fd(OutboundConn& conn) {
  if (conn.fd < 0) return;
  reactor_.remove(conn.fd);
  ::close(conn.fd);
  conn.fd = -1;
  conn.connected = false;
}

void LoopbackTransport::on_accept(NodeId id) {
  for (;;) {
    auto it = endpoints_.find(id);
    if (it == endpoints_.end()) return;
    const int fd = ::accept4(it->second.listen_fd, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient accept error: try next wait
    set_nodelay(fd);
    auto conn = std::make_unique<InboundConn>(cfg_.max_frame);
    conn->fd = fd;
    conn->to = id;
    inbound_.emplace(fd, std::move(conn));
    reactor_.add(fd, EPOLLIN, [this, fd](std::uint32_t) { on_inbound_readable(fd); });
  }
}

void LoopbackTransport::on_inbound_readable(int fd) {
  for (;;) {
    auto it = inbound_.find(fd);
    if (it == inbound_.end()) return;  // closed by a delivery callback
    InboundConn& conn = *it->second;

    const ssize_t n = ::recv(fd, udp_buf_.data(), udp_buf_.size(), 0);
    if (n < 0) {
      if (would_block(errno)) return;
      if (errno == EINTR) continue;
      close_inbound(fd);
      return;
    }
    if (n == 0) {
      // Clean close only between frames; mid-frame EOF is a dirty close —
      // the partial message is discarded, never delivered.
      if (conn.decoder.mid_frame()) ++counters_.tcp_dirty_closes;
      close_inbound(fd);
      return;
    }

    const NodeId to = conn.to;
    try {
      conn.decoder.feed(BytesView(udp_buf_.data(), static_cast<std::size_t>(n)));
      // Drain complete frames. Re-look-up the connection every iteration:
      // a delivery callback may detach the endpoint and close this fd.
      for (;;) {
        auto again = inbound_.find(fd);
        if (again == inbound_.end() || again->second.get() != &conn) return;
        std::optional<Frame> f = conn.decoder.next();
        if (!f) break;
        ++counters_.tcp_frames_received;
        dispatch(f->from, to, Payload(std::move(f->payload)));
      }
    } catch (const SerdeError&) {
      // Protocol violation from a (potentially Byzantine) peer: close the
      // connection; the sender's reconnect path decides what happens next.
      ++counters_.tcp_decode_errors;
      close_inbound(fd);
      return;
    }
  }
}

void LoopbackTransport::close_inbound(int fd) {
  auto it = inbound_.find(fd);
  if (it == inbound_.end()) return;
  reactor_.remove(fd);
  ::close(fd);
  inbound_.erase(it);
}

// ---- delivery ------------------------------------------------------------

void LoopbackTransport::dispatch(NodeId from, NodeId to, Payload payload) {
  auto it = endpoints_.find(to);
  if (it == endpoints_.end()) return;
  if (is_down(to) || is_down(from)) {
    ++counters_.dropped_down;
    return;
  }
  node_stats_[to].recv_bytes += payload.size();
  it->second.ep->deliver(from, std::move(payload));
}

std::size_t LoopbackTransport::poll(int timeout_ms) { return reactor_.wait(timeout_ms); }

void LoopbackTransport::drain(std::size_t max_passes) {
  for (std::size_t i = 0; i < max_passes; ++i) {
    if (poll(0) == 0) return;
  }
}

}  // namespace spider::net
