// Minimal single-threaded epoll reactor.
//
// Owns one epoll instance, a registry of fd -> I/O callback, and a small
// wall-clock deadline list (used by the transport for reconnect backoff).
// wait() blocks up to the caller's timeout (clamped by the next deadline),
// dispatches ready I/O callbacks, then fires due timers. Everything runs
// on the calling thread; no locks anywhere in src/net/.
//
// Callbacks may add/remove fds (including their own) while wait() is
// dispatching: handlers are looked up at dispatch time, so a ready-event
// for a fd removed earlier in the same batch is simply skipped.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>

namespace spider::net {

class EpollReactor {
 public:
  using Clock = std::chrono::steady_clock;
  using IoCallback = std::function<void(std::uint32_t events)>;
  using TimerId = std::uint64_t;

  EpollReactor();
  ~EpollReactor();

  EpollReactor(const EpollReactor&) = delete;
  EpollReactor& operator=(const EpollReactor&) = delete;

  /// Registers `fd` for `events` (EPOLLIN/EPOLLOUT/...). The reactor does
  /// not own the fd; the caller closes it after remove().
  void add(int fd, std::uint32_t events, IoCallback cb);
  /// Updates the interest set of a registered fd.
  void modify(int fd, std::uint32_t events);
  /// Deregisters the fd. Safe to call from inside its own callback.
  void remove(int fd);
  [[nodiscard]] std::size_t watched() const { return handlers_.size(); }

  /// One-shot wall-clock timer (reconnect backoff). Fires inside wait().
  TimerId add_timer(Clock::time_point when, std::function<void()> fn);
  void cancel_timer(TimerId id);

  /// Waits up to `timeout_ms` (0 = poll) for readiness, dispatches I/O
  /// callbacks and due timers. Returns the number of I/O events handled.
  std::size_t wait(int timeout_ms);

 private:
  struct Handler {
    IoCallback cb;
  };

  int epfd_ = -1;
  std::unordered_map<int, std::shared_ptr<Handler>> handlers_;

  TimerId next_timer_ = 1;
  std::map<std::pair<Clock::time_point, TimerId>, std::function<void()>> timers_;
  std::unordered_map<TimerId, Clock::time_point> timer_index_;
};

}  // namespace spider::net
