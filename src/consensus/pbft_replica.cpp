#include "consensus/pbft_replica.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "runtime/parallel.hpp"
#include "sim/world.hpp"

namespace spider {

using pbft::MsgType;

namespace {
constexpr std::size_t kKnownCap = 200'000;  // bounded dedup memory
}

PbftReplica::PbftReplica(ComponentHost& host, PbftConfig config, DeliverFn deliver,
                         std::uint32_t tag)
    : Component(host, tag),
      cfg_(std::move(config)),
      deliver_(std::move(deliver)),
      views_adopted_(host.world().metrics().counter(
          "pbft_views_adopted", {.node = host.id(), .role = "consensus"})) {
  vc_timeout_cur_ = cfg_.view_change_timeout;
}

PbftReplica::PbftReplica(ComponentHost& host, PbftConfig config, BatchDeliverFn deliver,
                         std::uint32_t tag)
    : Component(host, tag),
      cfg_(std::move(config)),
      deliver_batch_(std::move(deliver)),
      views_adopted_(host.world().metrics().counter(
          "pbft_views_adopted", {.node = host.id(), .role = "consensus"})) {
  vc_timeout_cur_ = cfg_.view_change_timeout;
}

std::uint32_t PbftReplica::weight(const std::set<std::uint32_t>& s) const {
  std::uint32_t sum = 0;
  for (std::uint32_t idx : s) sum += cfg_.weight_of(idx);
  return sum;
}

std::optional<std::uint32_t> PbftReplica::index_of(NodeId node) const {
  for (std::uint32_t i = 0; i < cfg_.n(); ++i) {
    if (cfg_.replicas[i] == node) return i;
  }
  return std::nullopt;
}

bool PbftReplica::instance_relevant(SeqNr s) const {
  if (in_window(s)) return true;
  auto it = log_.find(s);
  return it != log_.end() && s + it->second.covers() - 1 > floor_;
}

// --------------------------------------------------------------- auth I/O

void PbftReplica::broadcast(BytesView inner, bool sign) {
  if (mute) return;
  if (sign) {
    host().charge_sign();
    Bytes sig = crypto().sign(self(), auth_bytes(inner));
    // One signature, one serialization: every group member shares the frame.
    Payload wire = wire_frame(inner, sig);
    for (std::uint32_t i = 0; i < cfg_.n(); ++i) {
      if (i == cfg_.my_index) continue;
      send_wire(cfg_.replicas[i], wire);
    }
  } else {
    // Per-pair MACs differ, but the domain-separated auth bytes are shared.
    // The per-recipient HMACs are independent, so they scatter across the
    // verify pool and join in recipient order (bit-identical to the loop).
    Bytes auth = auth_bytes(inner);
    std::vector<NodeId> dests;
    dests.reserve(cfg_.n());
    for (std::uint32_t i = 0; i < cfg_.n(); ++i) {
      if (i != cfg_.my_index) dests.push_back(cfg_.replicas[i]);
    }
    std::vector<Bytes> macs = runtime::compute_macs(host().world(), self(), auth, dests);
    for (std::size_t i = 0; i < dests.size(); ++i) {
      host().charge_mac();
      send_framed(dests[i], inner, macs[i]);
    }
  }
}

void PbftReplica::send_authed(std::uint32_t idx, BytesView inner) {
  if (mute || idx == cfg_.my_index) return;
  host().charge_mac();
  Bytes tag_bytes = crypto().mac(self(), cfg_.replicas[idx], auth_bytes(inner));
  send_framed(cfg_.replicas[idx], inner, tag_bytes);
}

bool PbftReplica::check_mac(NodeId from, BytesView inner, BytesView tag_bytes) {
  host().charge_mac();
  return host().check_auth_frame(from, tag(), inner, tag_bytes, /*is_sig=*/false);
}

bool PbftReplica::check_sig(NodeId from, BytesView inner, BytesView sig) {
  host().charge_verify();
  return host().check_auth_frame(from, tag(), inner, sig, /*is_sig=*/true);
}

void PbftReplica::on_message(NodeId from, Reader& r) {
  if (mute_rx) return;  // fully-isolated Byzantine node: deaf as well
  BytesView all = r.raw(r.remaining());
  if (all.empty()) return;
  auto type = static_cast<MsgType>(all[0]);
  const bool signed_msg = type == MsgType::ViewChange || type == MsgType::NewView;
  const std::size_t auth_len = signed_msg ? crypto().signature_size() : crypto().mac_size();
  if (all.size() <= auth_len) return;

  BytesView body = all.subspan(0, all.size() - auth_len);
  BytesView auth = all.subspan(all.size() - auth_len);
  std::optional<std::uint32_t> idx = index_of(from);
  if (!idx) return;  // not a group member
  if (signed_msg ? !check_sig(from, body, auth) : !check_mac(from, body, auth)) return;

  Reader br(body);
  br.u8();  // type, already inspected
  switch (type) {
    case MsgType::PrePrepare: handle_preprepare(*idx, pbft::PrePrepareMsg::decode(br)); break;
    case MsgType::Prepare: handle_prepare(*idx, pbft::PrepareMsg::decode(br)); break;
    case MsgType::Commit: handle_commit(*idx, pbft::CommitMsg::decode(br)); break;
    case MsgType::ViewChange: handle_viewchange(*idx, pbft::ViewChangeMsg::decode(br)); break;
    case MsgType::NewView: handle_newview(*idx, pbft::NewViewMsg::decode(br)); break;
    default: break;
  }
}

// --------------------------------------------------------------- ordering

bool PbftReplica::already_known(std::uint64_t key) const { return known_.count(key) > 0; }

void PbftReplica::note_delivered(std::uint64_t key) {
  if (known_.insert(key).second) {
    known_order_.push_back(key);
    if (known_order_.size() > kKnownCap) {
      known_.erase(known_order_.front());
      known_order_.pop_front();
    }
  }
  pending_reqs_.erase(key);
  in_log_.erase(key);
  cancel_request_timer(key);
}

void PbftReplica::order(Bytes m) {
  host().charge_hash(m.size());
  std::uint64_t key = digest_prefix(pbft::request_digest(m));
  if (already_known(key) || pending_reqs_.count(key)) return;
  if (!validate(m)) return;
  pending_reqs_.emplace(key, std::move(m));
  pending_order_.push_back(key);
  arm_request_timer(key);
  try_propose();
}

void PbftReplica::arm_request_timer(std::uint64_t key) {
  if (request_timers_.count(key)) return;
  request_timers_[key] = set_timer(cfg_.request_timeout, [this, key] {
    request_timers_.erase(key);
    if (pending_reqs_.count(key)) start_view_change(view_ + 1);
  });
}

void PbftReplica::cancel_request_timer(std::uint64_t key) {
  auto it = request_timers_.find(key);
  if (it == request_timers_.end()) return;
  cancel_timer(it->second);
  request_timers_.erase(it);
}

void PbftReplica::try_propose() {
  if (!is_primary() || vc_active_) return;
  while (true) {
    if (next_seq_ > floor_ + cfg_.window) return;  // pipeline full until gc
    std::uint64_t fresh = 0;
    for (std::uint64_t key : pending_order_) {
      if (pending_reqs_.count(key) != 0 && in_log_.count(key) == 0) {
        if (++fresh >= cfg_.max_batch) break;  // enough for a full batch
      }
    }
    if (fresh == 0) return;
    if (cfg_.max_batch <= 1 || fresh >= cfg_.max_batch) {
      cut_batch();
      continue;
    }
    // Partial batch: wait up to batch_delay for more requests to coalesce.
    arm_batch_timer();
    return;
  }
}

void PbftReplica::arm_batch_timer() {
  if (batch_timer_ != EventQueue::kInvalidEvent) return;
  batch_timer_ = set_timer(cfg_.batch_delay, [this] {
    batch_timer_ = EventQueue::kInvalidEvent;
    cut_batch();
    try_propose();
  });
}

std::vector<Bytes> PbftReplica::take_pending(std::uint64_t limit) {
  std::vector<Bytes> batch;
  while (!pending_order_.empty() && batch.size() < limit) {
    std::uint64_t key = pending_order_.front();
    auto it = pending_reqs_.find(key);
    if (it == pending_reqs_.end() || in_log_.count(key) != 0) {
      pending_order_.pop_front();
      continue;
    }
    batch.push_back(it->second);
    in_log_.insert(key);
    pending_order_.pop_front();
  }
  return batch;
}

void PbftReplica::cut_batch() {
  if (!is_primary() || vc_active_) return;
  if (next_seq_ > floor_ + cfg_.window) return;
  std::uint64_t room = floor_ + cfg_.window - next_seq_ + 1;
  std::vector<Bytes> batch = take_pending(std::min<std::uint64_t>(cfg_.max_batch, room));
  if (batch.empty()) return;
  propose(std::move(batch));
}

void PbftReplica::propose(std::vector<Bytes> batch) {
  SeqNr s = next_seq_;
  next_seq_ += static_cast<SeqNr>(batch.size());
  Entry& e = log_[s];
  e.view = view_;
  e.has_preprepare = true;
  for (const Bytes& m : batch) host().charge_hash(m.size());
  e.digest = pbft::batch_digest(batch);
  e.requests = std::move(batch);
  e.prepares.insert(cfg_.my_index);  // pre-prepare counts as primary's prepare
  ++batches_proposed_;
  requests_proposed_ += e.requests.size();
  if (auto* t = host().tracer()) {
    t->instant(host().now(), host().id(), "consensus", "propose", "seq", s,
               "batch", e.requests.size());
  }

  pbft::PrePrepareMsg m{view_, s, e.requests};
  if (equivocate && cfg_.n() >= 3) {
    // Byzantine primary: conflicting but individually plausible proposals
    // for the same sequence number. The first half of the other replicas
    // receives the real batch, the second half a conflicting one (the
    // batch reversed, or a null instance for a singleton batch). Both
    // pass receiver-side validation, but their digests differ, so quorum
    // intersection lets at most one commit; the resulting stall is
    // resolved by the next view change.
    std::vector<Bytes> alt = e.requests;
    if (alt.size() >= 2) {
      std::reverse(alt.begin(), alt.end());
    } else {
      alt.clear();
    }
    pbft::PrePrepareMsg alt_m{view_, s, std::move(alt)};
    const Bytes real_enc = m.encode();
    const Bytes alt_enc = alt_m.encode();
    std::uint32_t others_seen = 0;
    for (std::uint32_t i = 0; i < cfg_.n(); ++i) {
      if (i == cfg_.my_index) continue;
      send_authed(i, others_seen++ < (cfg_.n() - 1) / 2 ? real_enc : alt_enc);
    }
  } else {
    broadcast(m.encode(), /*sign=*/false);
  }
  maybe_send_commit(s, e);
}

void PbftReplica::note_view_hint(std::uint32_t from_idx, ViewNr v) {
  if (v <= view_) return;
  ViewNr& h = view_hints_[from_idx];
  h = std::max(h, v);

  // Adopt the highest view v' > view_ that f+1 weight of members have
  // authenticated traffic in: at least one correct replica reached v', and
  // a correct replica only enters a view through a legitimate view change,
  // so jumping there is safe (the log is reconciled below; sequence-number
  // state recovers through gc()/checkpoints).
  ViewNr best = view_;
  for (const auto& [idx1, v1] : view_hints_) {
    if (v1 <= view_) continue;
    std::set<std::uint32_t> idxs;
    for (const auto& [idx2, v2] : view_hints_) {
      if (v2 >= v1) idxs.insert(idx2);
    }
    if (weight(idxs) >= cfg_.f + 1) best = std::max(best, v1);
  }
  if (best > view_) adopt_view(best);
}

void PbftReplica::adopt_view(ViewNr v) {
  // Forward jump without a NewView message (crash-recovery rejoin). We
  // never saw how the new primary resolved in-flight instances, so drop
  // every uncommitted entry — the live quorum's traffic (or the next
  // checkpoint) re-establishes them — and requeue their requests.
  view_ = v;
  views_adopted_.inc();
  if (auto* t = host().tracer()) {
    t->instant(host().now(), host().id(), "consensus", "adopt-view", "view", v);
  }
  vc_active_ = false;
  if (vc_timer_ != EventQueue::kInvalidEvent) {
    cancel_timer(vc_timer_);
    vc_timer_ = EventQueue::kInvalidEvent;
  }
  if (batch_timer_ != EventQueue::kInvalidEvent) {
    cancel_timer(batch_timer_);
    batch_timer_ = EventQueue::kInvalidEvent;
  }
  vc_timeout_cur_ = cfg_.view_change_timeout;
  for (auto it = vcs_.begin(); it != vcs_.end() && it->first <= view_;) it = vcs_.erase(it);

  for (auto it = log_.begin(); it != log_.end();) {
    if (it->second.committed) {
      ++it;
      continue;
    }
    for (const Bytes& req : it->second.requests) {
      if (!req.empty()) in_log_.erase(digest_prefix(pbft::request_digest(req)));
    }
    it = log_.erase(it);
  }
  pending_order_.clear();
  for (auto& [key, req] : pending_reqs_) {
    if (!in_log_.count(key)) pending_order_.push_back(key);
    arm_request_timer(key);
  }
  try_propose();
  try_deliver();
}

void PbftReplica::handle_preprepare(std::uint32_t from_idx, pbft::PrePrepareMsg m) {
  note_view_hint(from_idx, m.view);
  if (vc_active_ || m.view != view_) return;
  if (from_idx != primary_index(m.view)) return;
  if (m.requests.size() > std::max<std::uint64_t>(cfg_.max_batch, 1)) return;
  const SeqNr covers = m.requests.empty() ? 1 : static_cast<SeqNr>(m.requests.size());
  const SeqNr end = m.seq + covers - 1;
  // The whole batch must sit inside the watermark window; the head may
  // straddle a floor this replica already advanced past.
  if (end <= floor_ || m.seq > floor_ + cfg_.window) return;
  for (const Bytes& req : m.requests) {
    if (!validate(req) && !req.empty()) return;
  }

  // Reject proposals overlapping an accepted neighbouring batch (only a
  // Byzantine primary would produce them).
  auto nx = log_.lower_bound(m.seq + 1);
  if (nx != log_.end() && nx->second.has_preprepare && nx->first <= end) return;
  auto pv = log_.lower_bound(m.seq);
  if (pv != log_.begin()) {
    --pv;
    if (pv->second.has_preprepare && pv->first + pv->second.covers() - 1 >= m.seq) return;
  }

  Entry& e = log_[m.seq];
  if (e.has_preprepare) {
    // Duplicate or equivocation: keep the first accepted pre-prepare.
    return;
  }
  e.view = m.view;
  e.has_preprepare = true;
  for (const Bytes& req : m.requests) host().charge_hash(req.size());
  e.digest = pbft::batch_digest(m.requests);
  e.requests = std::move(m.requests);
  e.prepares.insert(from_idx);
  for (const Bytes& req : e.requests) {
    in_log_.insert(digest_prefix(pbft::request_digest(req)));
  }

  if (!is_primary() && !e.prepare_sent) {
    e.prepare_sent = true;
    e.prepares.insert(cfg_.my_index);
    pbft::PrepareMsg p{view_, m.seq, e.digest, cfg_.my_index};
    broadcast(p.encode(false), /*sign=*/false);
  }
  maybe_send_commit(m.seq, e);
  try_deliver();
}

void PbftReplica::handle_prepare(std::uint32_t from_idx, pbft::PrepareMsg m) {
  note_view_hint(from_idx, m.view);
  if (vc_active_ || m.view != view_ || !instance_relevant(m.seq)) return;
  Entry& e = log_[m.seq];
  if (e.has_preprepare && !(e.digest == m.digest)) return;  // digest mismatch
  e.prepares.insert(from_idx);
  maybe_send_commit(m.seq, e);
}

void PbftReplica::maybe_send_commit(SeqNr s, Entry& e) {
  if (!e.has_preprepare || e.commit_sent) return;
  if (weight(e.prepares) < cfg_.quorum()) return;
  e.commit_sent = true;
  e.commits.insert(cfg_.my_index);
  if (auto* t = host().tracer()) {
    t->instant(host().now(), host().id(), "consensus", "prepared", "seq", s);
  }
  pbft::CommitMsg c{view_, s, e.digest, cfg_.my_index};
  broadcast(c.encode(true), /*sign=*/false);
  if (e.has_preprepare && weight(e.commits) >= cfg_.quorum()) {
    e.committed = true;
    if (auto* t = host().tracer()) {
      t->instant(host().now(), host().id(), "consensus", "committed", "seq", s);
    }
    try_deliver();
  }
}

void PbftReplica::handle_commit(std::uint32_t from_idx, pbft::CommitMsg m) {
  note_view_hint(from_idx, m.view);
  if (m.view != view_ || !instance_relevant(m.seq)) return;
  Entry& e = log_[m.seq];
  if (e.has_preprepare && !(e.digest == m.digest)) return;
  e.commits.insert(from_idx);
  if (e.has_preprepare && !e.committed && weight(e.prepares) >= cfg_.quorum() &&
      weight(e.commits) >= cfg_.quorum()) {
    e.committed = true;
    if (auto* t = host().tracer()) {
      t->instant(host().now(), host().id(), "consensus", "committed", "seq", m.seq);
    }
    try_deliver();
  }
}

void PbftReplica::deliver_requests(SeqNr start, SeqNr from, const std::vector<Bytes>& requests) {
  if (requests.empty()) {
    // Null instance: consumes one sequence number.
    if (deliver_batch_) {
      deliver_batch_(from, std::vector<Bytes>{Bytes{}});
    } else {
      deliver_(from, BytesView{});
    }
    return;
  }
  for (const Bytes& req : requests) {
    if (!req.empty()) note_delivered(digest_prefix(pbft::request_digest(req)));
  }
  if (deliver_batch_) {
    if (from == start) {
      deliver_batch_(start, requests);
    } else {
      // Head of the batch was already skipped past by gc(); deliver the tail.
      std::vector<Bytes> tail(requests.begin() + static_cast<std::ptrdiff_t>(from - start),
                              requests.end());
      deliver_batch_(from, tail);
    }
  } else {
    const SeqNr end = start + static_cast<SeqNr>(requests.size()) - 1;
    for (SeqNr s = from; s <= end; ++s) deliver_(s, requests[s - start]);
  }
}

void PbftReplica::try_deliver() {
  while (true) {
    const SeqNr want = last_delivered_ + 1;
    auto it = log_.upper_bound(want);
    if (it == log_.begin()) return;
    --it;
    Entry& e = it->second;
    const SeqNr start = it->first;
    if (start + e.covers() - 1 < want) return;  // gap before the next instance
    if (!e.committed) return;
    // Copy: callbacks may mutate the log via gc().
    std::vector<Bytes> requests = e.requests;
    last_delivered_ = start + e.covers() - 1;
    if (auto* t = host().tracer()) {
      t->instant(host().now(), host().id(), "consensus", "deliver", "seq", want,
                 "batch", requests.size());
    }
    deliver_requests(start, want, requests);
  }
}

void PbftReplica::drop_pending_if(const std::function<bool(BytesView)>& stale) {
  for (auto it = pending_reqs_.begin(); it != pending_reqs_.end();) {
    if (stale(it->second)) {
      cancel_request_timer(it->first);
      it = pending_reqs_.erase(it);
      // Stale keys left in pending_order_ are skipped by take_pending.
    } else {
      ++it;
    }
  }
}

void PbftReplica::gc(SeqNr s) {
  if (s == 0) return;
  SeqNr new_floor = s - 1;
  if (new_floor <= floor_) return;
  floor_ = new_floor;
  for (auto it = log_.begin(); it != log_.end() && it->first <= floor_;) {
    if (it->first + it->second.covers() - 1 <= floor_) {
      it = log_.erase(it);
    } else {
      ++it;  // batch straddles the floor: its tail is still live
    }
  }
  if (last_delivered_ < floor_) last_delivered_ = floor_;
  if (next_seq_ <= floor_) next_seq_ = floor_ + 1;
  try_deliver();
  try_propose();
}

// --------------------------------------------------------------- view change

void PbftReplica::start_view_change(ViewNr target) {
  if (target <= view_) return;
  if (vc_active_ && vc_target_ >= target) return;
  vc_active_ = true;
  vc_target_ = target;
  ++vc_started_;
  if (auto* t = host().tracer()) {
    t->instant(host().now(), host().id(), "consensus", "view-change", "target",
               target);
  }

  // Suspend request timers; the view-change timer now guards liveness.
  for (auto& [key, timer] : request_timers_) cancel_timer(timer);
  request_timers_.clear();
  if (batch_timer_ != EventQueue::kInvalidEvent) {
    cancel_timer(batch_timer_);
    batch_timer_ = EventQueue::kInvalidEvent;
  }
  if (vc_timer_ != EventQueue::kInvalidEvent) cancel_timer(vc_timer_);
  vc_timer_ = set_timer(vc_timeout_cur_, [this] {
    vc_timer_ = EventQueue::kInvalidEvent;
    if (vc_active_) {
      vc_timeout_cur_ *= 2;
      start_view_change(vc_target_ + 1);
    }
  });

  pbft::ViewChangeMsg vc;
  vc.new_view = target;
  vc.stable_floor = floor_;
  vc.replica = cfg_.my_index;
  for (const auto& [seq, e] : log_) {
    if (seq + e.covers() - 1 <= floor_) continue;
    if (e.has_preprepare && weight(e.prepares) >= cfg_.quorum()) {
      vc.prepared.push_back(pbft::PreparedProof{seq, e.view, e.requests});
    }
  }
  vcs_[target][cfg_.my_index] = vc;
  broadcast(vc.encode(), /*sign=*/true);
  maybe_complete_view_change(target);
}

void PbftReplica::handle_viewchange(std::uint32_t from_idx, pbft::ViewChangeMsg m) {
  if (m.replica != from_idx) return;  // claimed index must match sender
  if (m.new_view <= view_) return;
  vcs_[m.new_view][from_idx] = std::move(m);
  ViewNr nv = vcs_.rbegin()->first;

  // Join rule: f+1 weight asking for a higher view means at least one
  // correct replica timed out; join to preserve liveness.
  for (auto& [target, senders] : vcs_) {
    if (target <= view_) continue;
    std::set<std::uint32_t> idxs;
    for (auto& [idx, msg] : senders) idxs.insert(idx);
    if (weight(idxs) >= cfg_.f + 1 && (!vc_active_ || vc_target_ < target)) {
      start_view_change(target);
      break;
    }
  }
  maybe_complete_view_change(nv);
}

void PbftReplica::maybe_complete_view_change(ViewNr target) {
  if (target <= view_) return;
  if (primary_index(target) != cfg_.my_index) return;
  auto vit = vcs_.find(target);
  if (vit == vcs_.end()) return;
  std::set<std::uint32_t> idxs;
  for (auto& [idx, msg] : vit->second) idxs.insert(idx);
  if (weight(idxs) < cfg_.quorum()) return;

  // Assemble the new-view proposal set. Proofs cover logical ranges and
  // ranges from different views may overlap with different batch
  // boundaries, so the per-seq "highest view wins" rule must be applied
  // position-wise: at every position the highest-view proof covering it
  // is re-proposed (trimmed to the positions it won), and positions
  // claimed by no prepared batch become null requests.
  SeqNr max_floor = 0;
  SeqNr max_end = 0;
  std::vector<const pbft::PreparedProof*> proofs;
  for (auto& [idx, msg] : vit->second) {
    max_floor = std::max(max_floor, msg.stable_floor);
    for (const pbft::PreparedProof& p : msg.prepared) {
      max_end = std::max(max_end, p.seq + p.covers() - 1);
      proofs.push_back(&p);
    }
  }

  pbft::NewViewMsg nv;
  nv.new_view = target;
  nv.stable_floor = max_floor;
  nv.replica = cfg_.my_index;
  SeqNr s = max_floor + 1;
  while (s <= max_end) {
    const pbft::PreparedProof* chosen = nullptr;
    for (const pbft::PreparedProof* p : proofs) {
      if (p->seq > s || p->seq + p->covers() - 1 < s) continue;  // not covering s
      if (chosen == nullptr || p->view > chosen->view ||
          (p->view == chosen->view && p->seq == s && chosen->seq != s)) {
        chosen = p;
      }
    }
    if (chosen == nullptr) {
      nv.proposals.push_back(pbft::PreparedProof{s, 0, {}});  // null request
      s += 1;
      continue;
    }
    // The chosen batch holds positions [s, cut]: it loses any tail that a
    // higher-view proof (e.g. a committed re-proposal of requeued
    // requests with different batch boundaries) prepared over.
    const SeqNr end = chosen->seq + chosen->covers() - 1;
    SeqNr cut = end;
    for (const pbft::PreparedProof* q : proofs) {
      if (q->view > chosen->view && q->seq > s && q->seq <= end) cut = std::min(cut, q->seq - 1);
    }
    if (chosen->seq == s && cut == end) {
      nv.proposals.push_back(*chosen);
    } else {
      pbft::PreparedProof trimmed;
      trimmed.seq = s;
      trimmed.view = chosen->view;
      if (!chosen->requests.empty()) {
        trimmed.requests.assign(
            chosen->requests.begin() + static_cast<std::ptrdiff_t>(s - chosen->seq),
            chosen->requests.begin() + static_cast<std::ptrdiff_t>(cut - chosen->seq + 1));
      }
      nv.proposals.push_back(std::move(trimmed));
    }
    s = cut + 1;
  }

  broadcast(nv.encode(), /*sign=*/true);
  enter_view(target, max_floor, nv.proposals);
}

void PbftReplica::handle_newview(std::uint32_t from_idx, pbft::NewViewMsg m) {
  if (m.new_view <= view_) return;
  if (from_idx != primary_index(m.new_view)) return;
  enter_view(m.new_view, m.stable_floor, m.proposals);
}

void PbftReplica::enter_view(ViewNr v, SeqNr floor_hint, const std::vector<pbft::PreparedProof>& proposals) {
  view_ = v;
  if (auto* t = host().tracer()) {
    t->instant(host().now(), host().id(), "consensus", "new-view", "view", v);
  }
  vc_active_ = false;
  if (vc_timer_ != EventQueue::kInvalidEvent) {
    cancel_timer(vc_timer_);
    vc_timer_ = EventQueue::kInvalidEvent;
  }
  if (batch_timer_ != EventQueue::kInvalidEvent) {
    cancel_timer(batch_timer_);
    batch_timer_ = EventQueue::kInvalidEvent;
  }
  vc_timeout_cur_ = cfg_.view_change_timeout;
  floor_ = std::max(floor_, floor_hint);
  if (last_delivered_ < floor_) last_delivered_ = floor_;

  // Rebuild the log from the new-view proposals.
  log_.clear();
  in_log_.clear();
  next_seq_ = floor_ + 1;
  const std::uint32_t p_idx = primary_index(v);

  for (const pbft::PreparedProof& p : proposals) {
    if (p.seq + p.covers() - 1 <= floor_) continue;
    Entry& e = log_[p.seq];
    e.view = v;
    e.has_preprepare = true;
    e.requests = p.requests;
    e.digest = pbft::batch_digest(p.requests);
    e.prepares.insert(p_idx);
    for (const Bytes& req : e.requests) {
      if (!req.empty()) in_log_.insert(digest_prefix(pbft::request_digest(req)));
    }
    next_seq_ = std::max(next_seq_, p.seq + p.covers());

    if (cfg_.my_index != p_idx) {
      e.prepare_sent = true;
      e.prepares.insert(cfg_.my_index);
      pbft::PrepareMsg pm{v, p.seq, e.digest, cfg_.my_index};
      broadcast(pm.encode(false), /*sign=*/false);
    }
    maybe_send_commit(p.seq, e);
  }

  // Requests that lost their instance go back into the proposal queue.
  pending_order_.clear();
  for (auto& [key, req] : pending_reqs_) {
    if (!in_log_.count(key)) pending_order_.push_back(key);
    arm_request_timer(key);
  }
  try_propose();
  try_deliver();
}

}  // namespace spider
