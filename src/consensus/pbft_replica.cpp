#include "consensus/pbft_replica.hpp"

#include <algorithm>

namespace spider {

using pbft::MsgType;

namespace {
constexpr std::size_t kKnownCap = 200'000;  // bounded dedup memory
}

PbftReplica::PbftReplica(ComponentHost& host, PbftConfig config, DeliverFn deliver,
                         std::uint32_t tag)
    : Component(host, tag), cfg_(std::move(config)), deliver_(std::move(deliver)) {
  vc_timeout_cur_ = cfg_.view_change_timeout;
}

std::uint32_t PbftReplica::weight(const std::set<std::uint32_t>& s) const {
  std::uint32_t sum = 0;
  for (std::uint32_t idx : s) sum += cfg_.weight_of(idx);
  return sum;
}

std::optional<std::uint32_t> PbftReplica::index_of(NodeId node) const {
  for (std::uint32_t i = 0; i < cfg_.n(); ++i) {
    if (cfg_.replicas[i] == node) return i;
  }
  return std::nullopt;
}

// --------------------------------------------------------------- auth I/O

void PbftReplica::broadcast(BytesView inner, bool sign) {
  if (mute) return;
  Bytes authed = to_bytes(inner);
  if (sign) {
    host().charge_sign();
    Bytes sig = crypto().sign(self(), auth_bytes(inner));
    authed.insert(authed.end(), sig.begin(), sig.end());
    for (std::uint32_t i = 0; i < cfg_.n(); ++i) {
      if (i == cfg_.my_index) continue;
      send(cfg_.replicas[i], authed);
    }
  } else {
    for (std::uint32_t i = 0; i < cfg_.n(); ++i) {
      if (i == cfg_.my_index) continue;
      host().charge_mac();
      Bytes tag_bytes = crypto().mac(self(), cfg_.replicas[i], auth_bytes(inner));
      Bytes msg = to_bytes(inner);
      msg.insert(msg.end(), tag_bytes.begin(), tag_bytes.end());
      send(cfg_.replicas[i], msg);
    }
  }
}

bool PbftReplica::check_mac(NodeId from, BytesView inner, BytesView tag_bytes) {
  host().charge_mac();
  return crypto().verify_mac(from, self(), auth_bytes(inner), tag_bytes);
}

bool PbftReplica::check_sig(NodeId from, BytesView inner, BytesView sig) {
  host().charge_verify();
  return crypto().verify(from, auth_bytes(inner), sig);
}

void PbftReplica::on_message(NodeId from, Reader& r) {
  BytesView all = r.raw(r.remaining());
  if (all.empty()) return;
  auto type = static_cast<MsgType>(all[0]);
  const bool signed_msg = type == MsgType::ViewChange || type == MsgType::NewView;
  const std::size_t auth_len = signed_msg ? crypto().signature_size() : crypto().mac_size();
  if (all.size() <= auth_len) return;

  BytesView body = all.subspan(0, all.size() - auth_len);
  BytesView auth = all.subspan(all.size() - auth_len);
  std::optional<std::uint32_t> idx = index_of(from);
  if (!idx) return;  // not a group member
  if (signed_msg ? !check_sig(from, body, auth) : !check_mac(from, body, auth)) return;

  Reader br(body);
  br.u8();  // type, already inspected
  switch (type) {
    case MsgType::PrePrepare: handle_preprepare(*idx, pbft::PrePrepareMsg::decode(br)); break;
    case MsgType::Prepare: handle_prepare(*idx, pbft::PrepareMsg::decode(br)); break;
    case MsgType::Commit: handle_commit(*idx, pbft::CommitMsg::decode(br)); break;
    case MsgType::ViewChange: handle_viewchange(*idx, pbft::ViewChangeMsg::decode(br)); break;
    case MsgType::NewView: handle_newview(*idx, pbft::NewViewMsg::decode(br)); break;
    default: break;
  }
}

// --------------------------------------------------------------- ordering

bool PbftReplica::already_known(std::uint64_t key) const { return known_.count(key) > 0; }

void PbftReplica::note_delivered(std::uint64_t key) {
  if (known_.insert(key).second) {
    known_order_.push_back(key);
    if (known_order_.size() > kKnownCap) {
      known_.erase(known_order_.front());
      known_order_.pop_front();
    }
  }
  pending_reqs_.erase(key);
  in_log_.erase(key);
  cancel_request_timer(key);
}

void PbftReplica::order(Bytes m) {
  host().charge_hash(m.size());
  std::uint64_t key = digest_prefix(pbft::request_digest(m));
  if (already_known(key) || pending_reqs_.count(key)) return;
  if (!validate(m)) return;
  pending_reqs_.emplace(key, std::move(m));
  pending_order_.push_back(key);
  arm_request_timer(key);
  try_propose();
}

void PbftReplica::arm_request_timer(std::uint64_t key) {
  if (request_timers_.count(key)) return;
  request_timers_[key] = set_timer(cfg_.request_timeout, [this, key] {
    request_timers_.erase(key);
    if (pending_reqs_.count(key)) start_view_change(view_ + 1);
  });
}

void PbftReplica::cancel_request_timer(std::uint64_t key) {
  auto it = request_timers_.find(key);
  if (it == request_timers_.end()) return;
  cancel_timer(it->second);
  request_timers_.erase(it);
}

void PbftReplica::try_propose() {
  if (!is_primary() || vc_active_) return;
  while (!pending_order_.empty() && next_seq_ <= floor_ + cfg_.window) {
    std::uint64_t key = pending_order_.front();
    auto it = pending_reqs_.find(key);
    if (it == pending_reqs_.end() || in_log_.count(key)) {
      pending_order_.pop_front();
      continue;
    }
    propose(it->second);
    in_log_.insert(key);
    pending_order_.pop_front();
  }
}

void PbftReplica::propose(Bytes request) {
  SeqNr s = next_seq_++;
  Entry& e = log_[s];
  e.view = view_;
  e.has_preprepare = true;
  e.digest = pbft::request_digest(request);
  e.request = std::move(request);
  e.prepares.insert(cfg_.my_index);  // pre-prepare counts as primary's prepare

  pbft::PrePrepareMsg m{view_, s, e.request};
  host().charge_hash(e.request.size());
  broadcast(m.encode(), /*sign=*/false);
  maybe_send_commit(s, e);
}

void PbftReplica::handle_preprepare(std::uint32_t from_idx, pbft::PrePrepareMsg m) {
  if (vc_active_ || m.view != view_) return;
  if (from_idx != primary_index(m.view)) return;
  if (!in_window(m.seq)) return;
  if (!validate(m.request) && !m.request.empty()) return;

  Entry& e = log_[m.seq];
  if (e.has_preprepare) {
    // Duplicate or equivocation: keep the first accepted pre-prepare.
    return;
  }
  e.view = m.view;
  e.has_preprepare = true;
  host().charge_hash(m.request.size());
  e.digest = pbft::request_digest(m.request);
  e.request = std::move(m.request);
  e.prepares.insert(from_idx);
  in_log_.insert(digest_prefix(e.digest));

  if (!is_primary() && !e.prepare_sent) {
    e.prepare_sent = true;
    e.prepares.insert(cfg_.my_index);
    pbft::PrepareMsg p{view_, m.seq, e.digest, cfg_.my_index};
    broadcast(p.encode(false), /*sign=*/false);
  }
  maybe_send_commit(m.seq, e);
  try_deliver();
}

void PbftReplica::handle_prepare(std::uint32_t from_idx, pbft::PrepareMsg m) {
  if (vc_active_ || m.view != view_ || !in_window(m.seq)) return;
  Entry& e = log_[m.seq];
  if (e.has_preprepare && !(e.digest == m.digest)) return;  // digest mismatch
  e.prepares.insert(from_idx);
  maybe_send_commit(m.seq, e);
}

void PbftReplica::maybe_send_commit(SeqNr s, Entry& e) {
  if (!e.has_preprepare || e.commit_sent) return;
  if (weight(e.prepares) < cfg_.quorum()) return;
  e.commit_sent = true;
  e.commits.insert(cfg_.my_index);
  pbft::CommitMsg c{view_, s, e.digest, cfg_.my_index};
  broadcast(c.encode(true), /*sign=*/false);
  if (e.has_preprepare && weight(e.commits) >= cfg_.quorum()) {
    e.committed = true;
    try_deliver();
  }
}

void PbftReplica::handle_commit(std::uint32_t from_idx, pbft::CommitMsg m) {
  if (m.view != view_ || !in_window(m.seq)) return;
  Entry& e = log_[m.seq];
  if (e.has_preprepare && !(e.digest == m.digest)) return;
  e.commits.insert(from_idx);
  if (e.has_preprepare && !e.committed && weight(e.prepares) >= cfg_.quorum() &&
      weight(e.commits) >= cfg_.quorum()) {
    e.committed = true;
    try_deliver();
  }
}

void PbftReplica::try_deliver() {
  while (true) {
    auto it = log_.find(last_delivered_ + 1);
    if (it == log_.end() || !it->second.committed) return;
    SeqNr s = it->first;
    Bytes request = it->second.request;  // copy: callback may mutate the log via gc()
    last_delivered_ = s;
    if (!request.empty()) {
      note_delivered(digest_prefix(pbft::request_digest(request)));
    }
    deliver_(s, request);
  }
}

void PbftReplica::gc(SeqNr s) {
  if (s == 0) return;
  SeqNr new_floor = s - 1;
  if (new_floor <= floor_) return;
  floor_ = new_floor;
  log_.erase(log_.begin(), log_.lower_bound(floor_ + 1));
  if (last_delivered_ < floor_) last_delivered_ = floor_;
  if (next_seq_ <= floor_) next_seq_ = floor_ + 1;
  try_deliver();
  try_propose();
}

// --------------------------------------------------------------- view change

void PbftReplica::start_view_change(ViewNr target) {
  if (target <= view_) return;
  if (vc_active_ && vc_target_ >= target) return;
  vc_active_ = true;
  vc_target_ = target;
  ++vc_started_;

  // Suspend request timers; the view-change timer now guards liveness.
  for (auto& [key, timer] : request_timers_) cancel_timer(timer);
  request_timers_.clear();
  if (vc_timer_ != EventQueue::kInvalidEvent) cancel_timer(vc_timer_);
  vc_timer_ = set_timer(vc_timeout_cur_, [this] {
    vc_timer_ = EventQueue::kInvalidEvent;
    if (vc_active_) {
      vc_timeout_cur_ *= 2;
      start_view_change(vc_target_ + 1);
    }
  });

  pbft::ViewChangeMsg vc;
  vc.new_view = target;
  vc.stable_floor = floor_;
  vc.replica = cfg_.my_index;
  for (const auto& [seq, e] : log_) {
    if (seq <= floor_) continue;
    if (e.has_preprepare && weight(e.prepares) >= cfg_.quorum()) {
      vc.prepared.push_back(pbft::PreparedProof{seq, e.view, e.request});
    }
  }
  vcs_[target][cfg_.my_index] = vc;
  broadcast(vc.encode(), /*sign=*/true);
  maybe_complete_view_change(target);
}

void PbftReplica::handle_viewchange(std::uint32_t from_idx, pbft::ViewChangeMsg m) {
  if (m.replica != from_idx) return;  // claimed index must match sender
  if (m.new_view <= view_) return;
  vcs_[m.new_view][from_idx] = std::move(m);
  ViewNr nv = vcs_.rbegin()->first;

  // Join rule: f+1 weight asking for a higher view means at least one
  // correct replica timed out; join to preserve liveness.
  for (auto& [target, senders] : vcs_) {
    if (target <= view_) continue;
    std::set<std::uint32_t> idxs;
    for (auto& [idx, msg] : senders) idxs.insert(idx);
    if (weight(idxs) >= cfg_.f + 1 && (!vc_active_ || vc_target_ < target)) {
      start_view_change(target);
      break;
    }
  }
  maybe_complete_view_change(nv);
}

void PbftReplica::maybe_complete_view_change(ViewNr target) {
  if (target <= view_) return;
  if (primary_index(target) != cfg_.my_index) return;
  auto vit = vcs_.find(target);
  if (vit == vcs_.end()) return;
  std::set<std::uint32_t> idxs;
  for (auto& [idx, msg] : vit->second) idxs.insert(idx);
  if (weight(idxs) < cfg_.quorum()) return;

  // Assemble the new-view proposal set.
  SeqNr max_floor = 0;
  SeqNr max_seq = 0;
  for (auto& [idx, msg] : vit->second) {
    max_floor = std::max(max_floor, msg.stable_floor);
    for (const pbft::PreparedProof& p : msg.prepared) max_seq = std::max(max_seq, p.seq);
  }

  pbft::NewViewMsg nv;
  nv.new_view = target;
  nv.stable_floor = max_floor;
  nv.replica = cfg_.my_index;
  for (SeqNr s = max_floor + 1; s <= max_seq; ++s) {
    const pbft::PreparedProof* best = nullptr;
    for (auto& [idx, msg] : vit->second) {
      for (const pbft::PreparedProof& p : msg.prepared) {
        if (p.seq == s && (best == nullptr || p.view > best->view)) best = &p;
      }
    }
    if (best != nullptr) {
      nv.proposals.push_back(*best);
    } else {
      nv.proposals.push_back(pbft::PreparedProof{s, 0, {}});  // null request
    }
  }

  broadcast(nv.encode(), /*sign=*/true);
  enter_view(target, max_floor, nv.proposals);
}

void PbftReplica::handle_newview(std::uint32_t from_idx, pbft::NewViewMsg m) {
  if (m.new_view <= view_) return;
  if (from_idx != primary_index(m.new_view)) return;
  enter_view(m.new_view, m.stable_floor, m.proposals);
}

void PbftReplica::enter_view(ViewNr v, SeqNr floor_hint, const std::vector<pbft::PreparedProof>& proposals) {
  view_ = v;
  vc_active_ = false;
  if (vc_timer_ != EventQueue::kInvalidEvent) {
    cancel_timer(vc_timer_);
    vc_timer_ = EventQueue::kInvalidEvent;
  }
  vc_timeout_cur_ = cfg_.view_change_timeout;
  floor_ = std::max(floor_, floor_hint);
  if (last_delivered_ < floor_) last_delivered_ = floor_;

  // Rebuild the log from the new-view proposals.
  log_.clear();
  in_log_.clear();
  next_seq_ = floor_ + 1;
  const std::uint32_t p_idx = primary_index(v);

  for (const pbft::PreparedProof& p : proposals) {
    if (p.seq <= floor_) continue;
    Entry& e = log_[p.seq];
    e.view = v;
    e.has_preprepare = true;
    e.request = p.request;
    e.digest = pbft::request_digest(p.request);
    e.prepares.insert(p_idx);
    if (!p.request.empty()) in_log_.insert(digest_prefix(e.digest));
    next_seq_ = std::max(next_seq_, p.seq + 1);

    if (cfg_.my_index != p_idx) {
      e.prepare_sent = true;
      e.prepares.insert(cfg_.my_index);
      pbft::PrepareMsg pm{v, p.seq, e.digest, cfg_.my_index};
      broadcast(pm.encode(false), /*sign=*/false);
    }
    maybe_send_commit(p.seq, e);
  }

  // Requests that lost their instance go back into the proposal queue.
  pending_order_.clear();
  for (auto& [key, req] : pending_reqs_) {
    if (!in_log_.count(key)) pending_order_.push_back(key);
    arm_request_timer(key);
  }
  try_propose();
  try_deliver();
}

}  // namespace spider
