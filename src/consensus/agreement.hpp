// Agreement black-box interface (paper Figure 12).
//
// Spider treats consensus as a pluggable black box with exactly this
// contract: order() submits a message, the deliver callback emits messages
// in a gap-free total order, and gc(s) discards everything before sequence
// number s (after which no sequence number < s may be delivered).
#pragma once

#include <functional>

#include "common/bytes.hpp"
#include "common/ids.hpp"

namespace spider {

class Agreement {
 public:
  /// In-order delivery callback. `request` may be empty for a no-op decided
  /// during fault handling (consumers must still consume the sequence
  /// number). The first delivered sequence number is 1.
  using DeliverFn = std::function<void(SeqNr s, BytesView request)>;

  virtual ~Agreement() = default;

  /// Requests ordering of `m`. May be called on any replica; duplicates
  /// (same content) are ordered at most once.
  virtual void order(Bytes m) = 0;

  /// Forget everything before (<) sequence number `s`. After this call no
  /// sequence number < s will be delivered; a replica that had not yet
  /// delivered up to s-1 skips forward (the caller has the state).
  virtual void gc(SeqNr s) = 0;
};

}  // namespace spider
