#include "consensus/pbft_messages.hpp"

#include <algorithm>

namespace spider::pbft {

namespace {
void put_digest(Writer& w, const Sha256Digest& d) { w.raw(BytesView(d.data(), d.size())); }

Sha256Digest get_digest(Reader& r) {
  BytesView v = r.raw(32);
  Sha256Digest d;
  std::copy(v.begin(), v.end(), d.begin());
  return d;
}
}  // namespace

Sha256Digest request_digest(BytesView request) { return Sha256::hash(request); }

namespace {
std::size_t batch_wire_size(const std::vector<Bytes>& requests) {
  std::size_t n = 4;
  for (const Bytes& m : requests) n += 4 + m.size();
  return n;
}
}  // namespace

Sha256Digest batch_digest(const std::vector<Bytes>& requests) {
  Writer w(batch_wire_size(requests));
  w.u32(static_cast<std::uint32_t>(requests.size()));
  for (const Bytes& m : requests) w.bytes(m);
  return Sha256::hash(w.data());
}

Bytes PrePrepareMsg::encode() const {
  Writer w(1 + 8 + 8 + batch_wire_size(requests));
  w.u8(static_cast<std::uint8_t>(MsgType::PrePrepare));
  w.u64(view);
  w.u64(seq);
  w.u32(static_cast<std::uint32_t>(requests.size()));
  for (const Bytes& m : requests) w.bytes(m);
  return std::move(w).take();
}

PrePrepareMsg PrePrepareMsg::decode(Reader& r) {
  PrePrepareMsg m;
  m.view = r.u64();
  m.seq = r.u64();
  std::uint32_t n = r.u32();
  // Count fields are attacker-controlled: cap the reservation and let the
  // bounds-checked element reads throw SerdeError on short bodies.
  m.requests.reserve(std::min<std::uint32_t>(n, 1024));
  for (std::uint32_t i = 0; i < n; ++i) m.requests.push_back(r.bytes());
  return m;
}

Bytes PrepareMsg::encode(bool commit_phase) const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(commit_phase ? MsgType::Commit : MsgType::Prepare));
  w.u64(view);
  w.u64(seq);
  put_digest(w, digest);
  w.u32(replica);
  return std::move(w).take();
}

PrepareMsg PrepareMsg::decode(Reader& r) {
  PrepareMsg m;
  m.view = r.u64();
  m.seq = r.u64();
  m.digest = get_digest(r);
  m.replica = r.u32();
  return m;
}

void PreparedProof::encode_into(Writer& w) const {
  w.u64(seq);
  w.u64(view);
  w.u32(static_cast<std::uint32_t>(requests.size()));
  for (const Bytes& m : requests) w.bytes(m);
}

PreparedProof PreparedProof::decode(Reader& r) {
  PreparedProof p;
  p.seq = r.u64();
  p.view = r.u64();
  std::uint32_t n = r.u32();
  p.requests.reserve(std::min<std::uint32_t>(n, 1024));
  for (std::uint32_t i = 0; i < n; ++i) p.requests.push_back(r.bytes());
  return p;
}

Bytes ViewChangeMsg::encode() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::ViewChange));
  w.u64(new_view);
  w.u64(stable_floor);
  w.u32(replica);
  w.u32(static_cast<std::uint32_t>(prepared.size()));
  for (const PreparedProof& p : prepared) p.encode_into(w);
  return std::move(w).take();
}

ViewChangeMsg ViewChangeMsg::decode(Reader& r) {
  ViewChangeMsg m;
  m.new_view = r.u64();
  m.stable_floor = r.u64();
  m.replica = r.u32();
  std::uint32_t n = r.u32();
  m.prepared.reserve(std::min<std::uint32_t>(n, 1024));
  for (std::uint32_t i = 0; i < n; ++i) m.prepared.push_back(PreparedProof::decode(r));
  return m;
}

Bytes NewViewMsg::encode() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MsgType::NewView));
  w.u64(new_view);
  w.u64(stable_floor);
  w.u32(replica);
  w.u32(static_cast<std::uint32_t>(proposals.size()));
  for (const PreparedProof& p : proposals) p.encode_into(w);
  return std::move(w).take();
}

NewViewMsg NewViewMsg::decode(Reader& r) {
  NewViewMsg m;
  m.new_view = r.u64();
  m.stable_floor = r.u64();
  m.replica = r.u32();
  std::uint32_t n = r.u32();
  m.proposals.reserve(std::min<std::uint32_t>(n, 1024));
  for (std::uint32_t i = 0; i < n; ++i) m.proposals.push_back(PreparedProof::decode(r));
  return m;
}

}  // namespace spider::pbft
