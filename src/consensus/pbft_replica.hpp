// PBFT consensus replica implementing the Agreement black box.
//
// Features:
//   - three-phase normal case (pre-prepare / prepare / commit)
//   - request batching: the primary packs up to `max_batch` pending
//     requests into one consensus instance, cutting a batch when it fills
//     or when `batch_delay` expires. Sequence numbers keep counting
//     logical requests — an instance covers [seq, seq + batch_size - 1] —
//     so watermark windows and gc() stay request-granular
//   - pipelined instances within a watermark window
//   - view change + new view with prepared-certificate carry-over
//   - pluggable vote weights (classic 2f+1 quorums, or WHEAT-style weighted
//     voting for the BFT-WV baseline)
//   - garbage collection driven by the embedding layer's checkpoints via
//     gc(s), matching the paper's design where the consensus box is told
//     to "collect garbage before s+1" (Fig. 17, L. 46)
//
// Simplifications vs. Castro-Liskov (documented in DESIGN.md): view-change
// messages assert stable floors / prepared sets under the sender's
// signature instead of carrying nested per-message proofs.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "consensus/agreement.hpp"
#include "consensus/pbft_messages.hpp"
#include "obs/metrics.hpp"
#include "sim/component.hpp"

namespace spider {

struct PbftConfig {
  std::vector<NodeId> replicas;   // all group members, index order
  std::uint32_t my_index = 0;
  std::uint32_t f = 1;            // tolerated Byzantine faults
  std::vector<std::uint32_t> weights;  // empty => all weight 1
  std::uint32_t quorum_weight = 0;     // 0 => 2f+1 (classic)

  std::uint64_t window = 256;     // max in-flight *requests* above the floor
  std::uint64_t max_batch = 1;    // requests packed into one instance
  Duration batch_delay = 0;       // max wait for a batch to fill (0 = next tick)
  Duration request_timeout = 2 * kSecond;      // pending-request liveness timer
  Duration view_change_timeout = 4 * kSecond;  // time to complete a view change

  [[nodiscard]] std::uint32_t n() const { return static_cast<std::uint32_t>(replicas.size()); }
  [[nodiscard]] std::uint32_t weight_of(std::uint32_t idx) const {
    return weights.empty() ? 1 : weights[idx];
  }
  [[nodiscard]] std::uint32_t quorum() const {
    return quorum_weight != 0 ? quorum_weight : 2 * f + 1;
  }
};

class PbftReplica : public Component, public Agreement {
 public:
  /// Batch-granular delivery: one call per committed instance with the
  /// logical seq of the first request. A null instance delivers a batch
  /// holding a single empty request. Embedding layers that forward whole
  /// batches downstream (Spider's commit channels) use this form; per-
  /// request consumers use Agreement::DeliverFn and receive each request
  /// of the batch as its own gap-free delivery.
  using BatchDeliverFn = std::function<void(SeqNr first, const std::vector<Bytes>& batch)>;

  PbftReplica(ComponentHost& host, PbftConfig config, DeliverFn deliver,
              std::uint32_t tag = tags::kPbft);
  PbftReplica(ComponentHost& host, PbftConfig config, BatchDeliverFn deliver,
              std::uint32_t tag = tags::kPbft);

  // Agreement interface -------------------------------------------------
  void order(Bytes m) override;
  void gc(SeqNr s) override;

  /// Drops pending (unordered) requests the predicate marks stale and
  /// cancels their liveness timers. Used by the embedding after adopting
  /// a checkpoint: requests it now knows were already executed elsewhere
  /// must stop triggering view changes (this replica missed their commit,
  /// e.g. across a partition or restart, so they would otherwise keep the
  /// request timer firing forever on a quiescent system).
  void drop_pending_if(const std::function<bool(BytesView)>& stale);

  // Component interface --------------------------------------------------
  void on_message(NodeId from, Reader& r) override;

  // Introspection (tests, stats) -----------------------------------------
  [[nodiscard]] ViewNr view() const { return view_; }
  [[nodiscard]] bool is_primary() const { return primary_index(view_) == cfg_.my_index; }
  [[nodiscard]] SeqNr last_delivered() const { return last_delivered_; }
  [[nodiscard]] SeqNr floor() const { return floor_; }
  [[nodiscard]] std::size_t pending_count() const { return pending_reqs_.size(); }
  [[nodiscard]] std::uint64_t view_changes_started() const { return vc_started_; }
  /// Thin read of the registry counter `pbft_views_adopted{node, role=
  /// "consensus"}`; survives crash/restart of the same NodeId (monotone).
  [[nodiscard]] std::uint64_t views_adopted() const { return views_adopted_.value(); }
  [[nodiscard]] std::uint64_t batches_proposed() const { return batches_proposed_; }
  [[nodiscard]] std::uint64_t requests_proposed() const { return requests_proposed_; }

  /// Optional request validator (A-Validity hook); invalid requests are
  /// not proposed or prepared. Default accepts everything.
  std::function<bool(BytesView)> validate = [](BytesView) { return true; };

  /// Test hook: a "mute" replica stops sending protocol messages
  /// (fail-silent Byzantine behaviour, e.g. a faulty primary).
  bool mute = false;
  /// Test hook: also drop *inbound* protocol handling, so a fully-isolated
  /// Byzantine node (neither speaks nor listens) is expressible — `mute`
  /// alone still learns views and certificates from its peers.
  bool mute_rx = false;
  /// Test hook: an equivocating primary proposes conflicting pre-prepares
  /// for the same sequence number to disjoint halves of the group (the
  /// real batch to one half, a reversed batch — or a null instance for
  /// singleton batches — to the other). Quorum intersection prevents both
  /// digests from committing; liveness recovers via view change.
  bool equivocate = false;

 private:
  struct Entry {
    ViewNr view = 0;
    bool has_preprepare = false;
    std::vector<Bytes> requests;  // empty = null request
    Sha256Digest digest{};
    std::set<std::uint32_t> prepares;  // replica indices incl. primary + self
    std::set<std::uint32_t> commits;
    bool prepare_sent = false;
    bool commit_sent = false;
    bool committed = false;

    [[nodiscard]] SeqNr covers() const {
      return requests.empty() ? 1 : static_cast<SeqNr>(requests.size());
    }
  };

  [[nodiscard]] std::uint32_t primary_index(ViewNr v) const { return static_cast<std::uint32_t>(v % cfg_.n()); }
  [[nodiscard]] std::uint32_t weight(const std::set<std::uint32_t>& s) const;
  [[nodiscard]] std::optional<std::uint32_t> index_of(NodeId node) const;
  [[nodiscard]] bool in_window(SeqNr s) const { return s > floor_ && s <= floor_ + cfg_.window; }
  /// Prepares/commits stay acceptable for an instance whose batch straddles
  /// the floor (its tail is still undelivered here).
  [[nodiscard]] bool instance_relevant(SeqNr s) const;

  void broadcast(BytesView inner, bool sign);
  /// MAC-authenticated unicast to one group member (equivocation splits).
  void send_authed(std::uint32_t idx, BytesView inner);
  bool check_mac(NodeId from, BytesView inner, BytesView tag_bytes);
  bool check_sig(NodeId from, BytesView inner, BytesView sig);

  void try_propose();
  void cut_batch();
  void arm_batch_timer();
  void propose(std::vector<Bytes> batch);
  void handle_preprepare(std::uint32_t from_idx, pbft::PrePrepareMsg m);
  void handle_prepare(std::uint32_t from_idx, pbft::PrepareMsg m);
  void handle_commit(std::uint32_t from_idx, pbft::CommitMsg m);
  void handle_viewchange(std::uint32_t from_idx, pbft::ViewChangeMsg m);
  void handle_newview(std::uint32_t from_idx, pbft::NewViewMsg m);

  /// View-rejoin evidence: a replica that fell behind on views (e.g. a
  /// crash-recovered replica restarting in view 0 while the group moved
  /// on) tracks the views peers authenticate their normal-case traffic
  /// with, and jumps forward once f+1 weight is observed in a higher view.
  void note_view_hint(std::uint32_t from_idx, ViewNr v);
  void adopt_view(ViewNr v);

  void maybe_send_commit(SeqNr s, Entry& e);
  void try_deliver();
  void deliver_requests(SeqNr start, SeqNr from, const std::vector<Bytes>& requests);
  void start_view_change(ViewNr target);
  void maybe_complete_view_change(ViewNr target);
  void enter_view(ViewNr v, SeqNr floor_hint, const std::vector<pbft::PreparedProof>& proposals);
  void arm_request_timer(std::uint64_t digest_key);
  void cancel_request_timer(std::uint64_t digest_key);
  void note_delivered(std::uint64_t digest_key);
  [[nodiscard]] bool already_known(std::uint64_t digest_key) const;
  /// Pops up to `limit` fresh pending requests (skipping stale queue keys).
  std::vector<Bytes> take_pending(std::uint64_t limit);

  PbftConfig cfg_;
  DeliverFn deliver_;             // per-request delivery (exactly one set)
  BatchDeliverFn deliver_batch_;  // batch-granular delivery

  ViewNr view_ = 0;
  bool vc_active_ = false;
  ViewNr vc_target_ = 0;
  EventQueue::EventId vc_timer_ = EventQueue::kInvalidEvent;
  Duration vc_timeout_cur_ = 0;
  std::uint64_t vc_started_ = 0;
  obs::Counter& views_adopted_;
  std::map<std::uint32_t, ViewNr> view_hints_;  // member -> highest view seen

  SeqNr floor_ = 0;           // everything <= floor_ is garbage-collected
  SeqNr next_seq_ = 1;        // next logical seq a primary assigns
  SeqNr last_delivered_ = 0;  // highest delivered (or skipped) seq
  std::uint64_t batches_proposed_ = 0;
  std::uint64_t requests_proposed_ = 0;
  EventQueue::EventId batch_timer_ = EventQueue::kInvalidEvent;

  std::map<SeqNr, Entry> log_;  // keyed by the instance's first logical seq
  // Pending (undelivered) requests by digest key + FIFO proposal order.
  std::unordered_map<std::uint64_t, Bytes> pending_reqs_;
  std::deque<std::uint64_t> pending_order_;
  std::unordered_set<std::uint64_t> in_log_;  // digests currently assigned an instance
  std::unordered_map<std::uint64_t, EventQueue::EventId> request_timers_;
  std::unordered_set<std::uint64_t> known_;  // delivered digests (dedup)
  std::deque<std::uint64_t> known_order_;    // bounded pruning

  std::map<ViewNr, std::map<std::uint32_t, pbft::ViewChangeMsg>> vcs_;
};

}  // namespace spider
