// PBFT wire messages (Castro & Liskov, OSDI '99) with weighted-voting
// support. Normal-case messages are HMAC-authenticated; view-change and
// new-view messages carry signatures, as in the original protocol.
#pragma once

#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/serde.hpp"
#include "crypto/sha256.hpp"

namespace spider::pbft {

enum class MsgType : std::uint8_t {
  PrePrepare = 1,
  Prepare = 2,
  Commit = 3,
  ViewChange = 4,
  NewView = 5,
};

/// A pre-prepare proposes one consensus instance carrying a *batch* of
/// requests. `seq` is the logical sequence number of the first request;
/// the instance covers [seq, seq + max(1, requests.size()) - 1], so
/// sequence numbers keep counting individual requests, not batches. An
/// empty batch is the null request (consumes one sequence number).
struct PrePrepareMsg {
  ViewNr view = 0;
  SeqNr seq = 0;
  std::vector<Bytes> requests;

  Bytes encode() const;
  static PrePrepareMsg decode(Reader& r);
};

struct PrepareMsg {
  ViewNr view = 0;
  SeqNr seq = 0;
  Sha256Digest digest{};
  std::uint32_t replica = 0;  // sender index

  Bytes encode(bool commit_phase) const;  // also encodes CommitMsg
  static PrepareMsg decode(Reader& r);
};
using CommitMsg = PrepareMsg;

/// Certificate that an instance prepared in some view; carried inside
/// view-change messages (with the full request batch so the new primary
/// can re-propose without a fetch protocol).
struct PreparedProof {
  SeqNr seq = 0;  // logical seq of the batch's first request
  ViewNr view = 0;
  std::vector<Bytes> requests;  // empty = null request

  /// Number of logical sequence numbers this instance occupies.
  [[nodiscard]] SeqNr covers() const {
    return requests.empty() ? 1 : static_cast<SeqNr>(requests.size());
  }

  void encode_into(Writer& w) const;
  static PreparedProof decode(Reader& r);
};

struct ViewChangeMsg {
  ViewNr new_view = 0;
  SeqNr stable_floor = 0;  // highest gc'd sequence number (watermark anchor)
  std::uint32_t replica = 0;
  std::vector<PreparedProof> prepared;

  Bytes encode() const;
  static ViewChangeMsg decode(Reader& r);
};

struct NewViewMsg {
  ViewNr new_view = 0;
  SeqNr stable_floor = 0;  // max floor among the view-change quorum
  std::uint32_t replica = 0;
  /// Pre-prepares the new primary issues for in-flight instances; empty
  /// request = null request (no-op).
  std::vector<PreparedProof> proposals;

  Bytes encode() const;
  static NewViewMsg decode(Reader& r);
};

/// Digest binding a request to nothing else (PBFT digests requests only;
/// (view, seq) binding happens via the message fields).
Sha256Digest request_digest(BytesView request);

/// Digest over a whole batch (length-prefixed concatenation, so request
/// boundaries are unambiguous). Prepare/commit messages certify this.
Sha256Digest batch_digest(const std::vector<Bytes>& requests);

}  // namespace spider::pbft
