// From-scratch RSA signatures (PKCS#1 v1.5-style padding over SHA-256).
//
// The paper authenticates IRMC traffic, client requests and checkpoint
// messages with 1024-bit RSA signatures; this module provides a real
// implementation (deterministic keygen from a seeded RNG, CRT signing)
// used by the `RealCrypto` provider in tests and examples.
#pragma once

#include <optional>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "crypto/bigint.hpp"

namespace spider {

struct RsaPublicKey {
  BigInt n;
  BigInt e;

  [[nodiscard]] std::size_t modulus_bytes() const { return (n.bit_length() + 7) / 8; }
  [[nodiscard]] Bytes encode() const;
  static RsaPublicKey decode(BytesView v);
};

struct RsaPrivateKey {
  BigInt n;
  BigInt d;
  // CRT components for ~4x faster signing.
  BigInt p, q, dp, dq, qinv;
};

struct RsaKeyPair {
  RsaPublicKey pub;
  RsaPrivateKey priv;
};

/// Generates an RSA key pair with a `bits`-bit modulus (e = 65537).
/// Deterministic given the RNG state.
RsaKeyPair rsa_generate(Rng& rng, std::size_t bits = 1024);

/// Signs SHA-256(message) with PKCS#1 v1.5-style padding.
Bytes rsa_sign(const RsaPrivateKey& key, BytesView message);

/// Verifies a signature produced by rsa_sign.
bool rsa_verify(const RsaPublicKey& key, BytesView message, BytesView signature);

}  // namespace spider
