#include "crypto/provider.hpp"

#include <algorithm>

#include "common/serde.hpp"
#include "crypto/hmac.hpp"

namespace spider {

// ---------------------------------------------------------------- RealCrypto

RealCrypto::RealCrypto(std::uint64_t seed, std::size_t key_bits)
    : seed_(seed), key_bits_(key_bits) {}

const RsaKeyPair& RealCrypto::keys(NodeId node) {
  auto it = keypairs_.find(node);
  if (it == keypairs_.end()) {
    // Deterministic per-node key material.
    Rng rng(seed_ ^ (0x9e3779b97f4a7c15ULL * (node + 1)));
    it = keypairs_.emplace(node, rsa_generate(rng, key_bits_)).first;
  }
  return it->second;
}

const RsaPublicKey& RealCrypto::public_key(NodeId node) { return keys(node).pub; }

Bytes RealCrypto::sign(NodeId signer, BytesView message) {
  return rsa_sign(keys(signer).priv, message);
}

bool RealCrypto::verify(NodeId signer, BytesView message, BytesView signature) {
  return rsa_verify(keys(signer).pub, message, signature);
}

Bytes RealCrypto::mac_key(NodeId a, NodeId b) const {
  Writer w;
  w.u64(seed_);
  w.u32(std::min(a, b));
  w.u32(std::max(a, b));
  return sha256(w.data());
}

const HmacKey& RealCrypto::pair_hmac(NodeId a, NodeId b) {
  std::uint64_t k = (static_cast<std::uint64_t>(std::min(a, b)) << 32) | std::max(a, b);
  auto it = pair_hmacs_.find(k);
  if (it == pair_hmacs_.end()) {
    it = pair_hmacs_.emplace(k, hmac_precompute(mac_key(a, b))).first;
  }
  return it->second;
}

Bytes RealCrypto::mac(NodeId from, NodeId to, BytesView message) {
  return hmac_tag(pair_hmac(from, to), message);
}

bool RealCrypto::verify_mac(NodeId from, NodeId to, BytesView message, BytesView tag) {
  return mac_equal(hmac_tag(pair_hmac(from, to), message), tag);
}

std::function<bool()> RealCrypto::make_sig_verifier(NodeId signer, BytesView message,
                                                    BytesView signature) {
  // Resolve the lazily-generated keypair here, on the simulation thread;
  // rsa_verify over the const public key is pure.
  const RsaPublicKey* pub = &keys(signer).pub;
  return [pub, message, signature] { return rsa_verify(*pub, message, signature); };
}

// ---------------------------------------------------------------- FastCrypto

FastCrypto::FastCrypto(std::uint64_t seed) {
  Writer w;
  w.str("fastcrypto-master");
  w.u64(seed);
  master_ = sha256(w.data());
}

Bytes FastCrypto::key_for(NodeId signer) const {
  Writer w;
  w.raw(master_);
  w.u32(signer);
  return sha256(w.data());
}

Bytes FastCrypto::pair_key(NodeId a, NodeId b) const {
  Writer w;
  w.raw(master_);
  w.u32(std::min(a, b));
  w.u32(std::max(a, b));
  return sha256(w.data());
}

const HmacKey& FastCrypto::signer_hmac(NodeId signer) {
  auto it = signer_hmacs_.find(signer);
  if (it == signer_hmacs_.end()) {
    it = signer_hmacs_.emplace(signer, hmac_precompute(key_for(signer))).first;
  }
  return it->second;
}

const HmacKey& FastCrypto::pair_hmac(NodeId a, NodeId b) {
  std::uint64_t k = (static_cast<std::uint64_t>(std::min(a, b)) << 32) | std::max(a, b);
  auto it = pair_hmacs_.find(k);
  if (it == pair_hmacs_.end()) {
    it = pair_hmacs_.emplace(k, hmac_precompute(pair_key(a, b))).first;
  }
  return it->second;
}

Bytes FastCrypto::sign(NodeId signer, BytesView message) {
  Sha256Digest tag = hmac_sha256(signer_hmac(signer), message);
  // Pad deterministically to the size of an RSA-1024 signature so network
  // byte accounting matches the paper's setup.
  Bytes sig(signature_size(), 0);
  std::copy(tag.begin(), tag.end(), sig.begin());
  for (std::size_t i = tag.size(); i < sig.size(); ++i) {
    sig[i] = static_cast<std::uint8_t>(0xa5 ^ (i * 31) ^ signer);
  }
  return sig;
}

bool FastCrypto::verify(NodeId signer, BytesView message, BytesView signature) {
  if (signature.size() != signature_size()) return false;
  Bytes expected = sign(signer, message);
  return bytes_equal(expected, signature);
}

Bytes FastCrypto::mac(NodeId from, NodeId to, BytesView message) {
  return hmac_tag(pair_hmac(from, to), message);
}

bool FastCrypto::verify_mac(NodeId from, NodeId to, BytesView message, BytesView tag) {
  return mac_equal(hmac_tag(pair_hmac(from, to), message), tag);
}

std::function<bool()> FastCrypto::make_sig_verifier(NodeId signer, BytesView message,
                                                    BytesView signature) {
  if (signature.size() != signature_size()) {
    return [] { return false; };
  }
  const HmacKey* key = &signer_hmac(signer);
  // Recomputes exactly what verify() compares: HMAC prefix, then the
  // deterministic padding pattern from sign().
  return [key, signer, message, signature] {
    const Sha256Digest tag = hmac_sha256(*key, message);
    if (!std::equal(tag.begin(), tag.end(), signature.begin())) return false;
    for (std::size_t i = tag.size(); i < signature.size(); ++i) {
      if (signature[i] != static_cast<std::uint8_t>(0xa5 ^ (i * 31) ^ signer)) return false;
    }
    return true;
  };
}

}  // namespace spider
