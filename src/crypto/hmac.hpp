// HMAC-SHA-256 (RFC 2104), used for point-to-point message authentication
// between clients and replicas and between replicas of the same group
// (the paper authenticates non-signed messages with HMAC-SHA-256).
#pragma once

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"

namespace spider {

/// Computes HMAC-SHA-256 over `data` with `key`.
Sha256Digest hmac_sha256(BytesView key, BytesView data);

/// Truncated 16-byte MAC, matching common deployments that truncate HMACs.
Bytes hmac_tag(BytesView key, BytesView data);

/// Precomputed HMAC key schedule: the SHA-256 midstates after absorbing the
/// ipad/opad key blocks. Deriving it costs the same two compression-function
/// calls HMAC always pays per key — but a cached HmacKey amortizes them (and
/// the key-derivation hash) across every MAC under the same key, which is
/// the per-link steady state of the protocol layer. Digests are
/// bit-identical to the BytesView overloads.
struct HmacKey {
  Sha256 inner;  // context seeded with key ^ ipad
  Sha256 outer;  // context seeded with key ^ opad
};

HmacKey hmac_precompute(BytesView key);
Sha256Digest hmac_sha256(const HmacKey& key, BytesView data);
Bytes hmac_tag(const HmacKey& key, BytesView data);

/// Constant-time-ish comparison (not security critical in the simulator, but
/// the real-system idiom is kept).
bool mac_equal(BytesView a, BytesView b);

}  // namespace spider
