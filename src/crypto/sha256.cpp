#include "crypto/sha256.hpp"

#include <cstring>

namespace spider {

namespace {

constexpr std::array<std::uint32_t, 64> kRound = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
    0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
    0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
    0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
    0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
    0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
    0xc67178f2};

constexpr std::uint32_t rotr(std::uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SPIDER_SHA_NI_KERNEL 1
#include <immintrin.h>

// SHA-256 compression using the x86 SHA extensions (structure after the
// public-domain Gulley/Walton reference). Produces exactly the FIPS 180-4
// digest, so switching kernels never perturbs protocol bytes or seeds —
// it only removes wall-clock cost. Compiled with a per-function target so
// the rest of the build stays portable; selected at runtime via cpuid.
__attribute__((target("sha,sse4.1,ssse3"))) void sha_ni_compress(std::uint32_t* state,
                                                                 const std::uint8_t* data,
                                                                 std::size_t nblocks) {
  __m128i STATE0, STATE1, MSG, TMP, MSG0, MSG1, MSG2, MSG3, ABEF_SAVE, CDGH_SAVE;
  const __m128i MASK = _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);

  TMP = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  STATE1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  TMP = _mm_shuffle_epi32(TMP, 0xB1);           // CDAB
  STATE1 = _mm_shuffle_epi32(STATE1, 0x1B);     // EFGH
  STATE0 = _mm_alignr_epi8(TMP, STATE1, 8);     // ABEF
  STATE1 = _mm_blend_epi16(STATE1, TMP, 0xF0);  // CDGH

  while (nblocks > 0) {
    ABEF_SAVE = STATE0;
    CDGH_SAVE = STATE1;

    // Rounds 0-3
    MSG = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 0));
    MSG0 = _mm_shuffle_epi8(MSG, MASK);
    MSG = _mm_add_epi32(MSG0, _mm_set_epi64x(0xE9B5DBA5B5C0FBCFULL, 0x71374491428A2F98ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);

    // Rounds 4-7
    MSG1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16));
    MSG1 = _mm_shuffle_epi8(MSG1, MASK);
    MSG = _mm_add_epi32(MSG1, _mm_set_epi64x(0xAB1C5ED5923F82A4ULL, 0x59F111F13956C25BULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG0 = _mm_sha256msg1_epu32(MSG0, MSG1);

    // Rounds 8-11
    MSG2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 32));
    MSG2 = _mm_shuffle_epi8(MSG2, MASK);
    MSG = _mm_add_epi32(MSG2, _mm_set_epi64x(0x550C7DC3243185BEULL, 0x12835B01D807AA98ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG1 = _mm_sha256msg1_epu32(MSG1, MSG2);

    // Rounds 12-15
    MSG3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 48));
    MSG3 = _mm_shuffle_epi8(MSG3, MASK);
    MSG = _mm_add_epi32(MSG3, _mm_set_epi64x(0xC19BF1749BDC06A7ULL, 0x80DEB1FE72BE5D74ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG3, MSG2, 4);
    MSG0 = _mm_add_epi32(MSG0, TMP);
    MSG0 = _mm_sha256msg2_epu32(MSG0, MSG3);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG2 = _mm_sha256msg1_epu32(MSG2, MSG3);

    // Rounds 16-19
    MSG = _mm_add_epi32(MSG0, _mm_set_epi64x(0x240CA1CC0FC19DC6ULL, 0xEFBE4786E49B69C1ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG0, MSG3, 4);
    MSG1 = _mm_add_epi32(MSG1, TMP);
    MSG1 = _mm_sha256msg2_epu32(MSG1, MSG0);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG3 = _mm_sha256msg1_epu32(MSG3, MSG0);

    // Rounds 20-23
    MSG = _mm_add_epi32(MSG1, _mm_set_epi64x(0x76F988DA5CB0A9DCULL, 0x4A7484AA2DE92C6FULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG1, MSG0, 4);
    MSG2 = _mm_add_epi32(MSG2, TMP);
    MSG2 = _mm_sha256msg2_epu32(MSG2, MSG1);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG0 = _mm_sha256msg1_epu32(MSG0, MSG1);

    // Rounds 24-27
    MSG = _mm_add_epi32(MSG2, _mm_set_epi64x(0xBF597FC7B00327C8ULL, 0xA831C66D983E5152ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG2, MSG1, 4);
    MSG3 = _mm_add_epi32(MSG3, TMP);
    MSG3 = _mm_sha256msg2_epu32(MSG3, MSG2);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG1 = _mm_sha256msg1_epu32(MSG1, MSG2);

    // Rounds 28-31
    MSG = _mm_add_epi32(MSG3, _mm_set_epi64x(0x1429296706CA6351ULL, 0xD5A79147C6E00BF3ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG3, MSG2, 4);
    MSG0 = _mm_add_epi32(MSG0, TMP);
    MSG0 = _mm_sha256msg2_epu32(MSG0, MSG3);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG2 = _mm_sha256msg1_epu32(MSG2, MSG3);

    // Rounds 32-35
    MSG = _mm_add_epi32(MSG0, _mm_set_epi64x(0x53380D134D2C6DFCULL, 0x2E1B213827B70A85ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG0, MSG3, 4);
    MSG1 = _mm_add_epi32(MSG1, TMP);
    MSG1 = _mm_sha256msg2_epu32(MSG1, MSG0);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG3 = _mm_sha256msg1_epu32(MSG3, MSG0);

    // Rounds 36-39
    MSG = _mm_add_epi32(MSG1, _mm_set_epi64x(0x92722C8581C2C92EULL, 0x766A0ABB650A7354ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG1, MSG0, 4);
    MSG2 = _mm_add_epi32(MSG2, TMP);
    MSG2 = _mm_sha256msg2_epu32(MSG2, MSG1);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG0 = _mm_sha256msg1_epu32(MSG0, MSG1);

    // Rounds 40-43
    MSG = _mm_add_epi32(MSG2, _mm_set_epi64x(0xC76C51A3C24B8B70ULL, 0xA81A664BA2BFE8A1ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG2, MSG1, 4);
    MSG3 = _mm_add_epi32(MSG3, TMP);
    MSG3 = _mm_sha256msg2_epu32(MSG3, MSG2);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG1 = _mm_sha256msg1_epu32(MSG1, MSG2);

    // Rounds 44-47
    MSG = _mm_add_epi32(MSG3, _mm_set_epi64x(0x106AA070F40E3585ULL, 0xD6990624D192E819ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG3, MSG2, 4);
    MSG0 = _mm_add_epi32(MSG0, TMP);
    MSG0 = _mm_sha256msg2_epu32(MSG0, MSG3);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG2 = _mm_sha256msg1_epu32(MSG2, MSG3);

    // Rounds 48-51
    MSG = _mm_add_epi32(MSG0, _mm_set_epi64x(0x34B0BCB52748774CULL, 0x1E376C0819A4C116ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG0, MSG3, 4);
    MSG1 = _mm_add_epi32(MSG1, TMP);
    MSG1 = _mm_sha256msg2_epu32(MSG1, MSG0);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG3 = _mm_sha256msg1_epu32(MSG3, MSG0);

    // Rounds 52-55
    MSG = _mm_add_epi32(MSG1, _mm_set_epi64x(0x682E6FF35B9CCA4FULL, 0x4ED8AA4A391C0CB3ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG1, MSG0, 4);
    MSG2 = _mm_add_epi32(MSG2, TMP);
    MSG2 = _mm_sha256msg2_epu32(MSG2, MSG1);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);

    // Rounds 56-59
    MSG = _mm_add_epi32(MSG2, _mm_set_epi64x(0x8CC7020884C87814ULL, 0x78A5636F748F82EEULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG2, MSG1, 4);
    MSG3 = _mm_add_epi32(MSG3, TMP);
    MSG3 = _mm_sha256msg2_epu32(MSG3, MSG2);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);

    // Rounds 60-63
    MSG = _mm_add_epi32(MSG3, _mm_set_epi64x(0xC67178F2BEF9A3F7ULL, 0xA4506CEB90BEFFFAULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);

    STATE0 = _mm_add_epi32(STATE0, ABEF_SAVE);
    STATE1 = _mm_add_epi32(STATE1, CDGH_SAVE);
    data += 64;
    --nblocks;
  }

  TMP = _mm_shuffle_epi32(STATE0, 0x1B);        // FEBA
  STATE1 = _mm_shuffle_epi32(STATE1, 0xB1);     // DCHG
  STATE0 = _mm_blend_epi16(TMP, STATE1, 0xF0);  // DCBA
  STATE1 = _mm_alignr_epi8(STATE1, TMP, 8);     // HGFE

  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), STATE0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), STATE1);
}

bool has_sha_ni() {
  static const bool supported = [] {
    __builtin_cpu_init();
    return __builtin_cpu_supports("sha") && __builtin_cpu_supports("sse4.1") &&
           __builtin_cpu_supports("ssse3");
  }();
  return supported;
}
#endif  // x86-64 SHA-NI kernel

}  // namespace

void Sha256::reset() {
  state_ = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
            0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
  buffer_len_ = 0;
  total_len_ = 0;
}

void Sha256::process_block(const std::uint8_t* block) {
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
           (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    std::uint32_t s0 = rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    std::uint32_t s1 = rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  std::uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];

  for (int i = 0; i < 64; ++i) {
    std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    std::uint32_t ch = (e & f) ^ (~e & g);
    std::uint32_t temp1 = h + s1 + ch + kRound[static_cast<std::size_t>(i)] + w[i];
    std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    std::uint32_t temp2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + temp1;
    d = c;
    c = b;
    b = a;
    a = temp1 + temp2;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

void Sha256::process_blocks(const std::uint8_t* data, std::size_t nblocks) {
#ifdef SPIDER_SHA_NI_KERNEL
  if (has_sha_ni()) {
    sha_ni_compress(state_.data(), data, nblocks);
    return;
  }
#endif
  for (std::size_t i = 0; i < nblocks; ++i) process_block(data + 64 * i);
}

void Sha256::update(BytesView data) {
  total_len_ += data.size();
  std::size_t off = 0;
  if (buffer_len_ > 0) {
    std::size_t take = std::min(data.size(), buffer_.size() - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, data.data(), take);
    buffer_len_ += take;
    off += take;
    if (buffer_len_ == 64) {
      process_blocks(buffer_.data(), 1);
      buffer_len_ = 0;
    }
  }
  std::size_t nblocks = (data.size() - off) / 64;
  if (nblocks > 0) {
    process_blocks(data.data() + off, nblocks);
    off += 64 * nblocks;
  }
  if (off < data.size()) {
    std::memcpy(buffer_.data(), data.data() + off, data.size() - off);
    buffer_len_ = data.size() - off;
  }
}

Sha256Digest Sha256::finish() {
  std::uint64_t bit_len = total_len_ * 8;
  // Padding, written directly into the block buffer: 0x80, zeros until 8
  // bytes remain in a block, then the big-endian bit length.
  buffer_[buffer_len_++] = 0x80;
  if (buffer_len_ > 56) {
    std::memset(buffer_.data() + buffer_len_, 0, 64 - buffer_len_);
    process_blocks(buffer_.data(), 1);
    buffer_len_ = 0;
  }
  std::memset(buffer_.data() + buffer_len_, 0, 56 - buffer_len_);
  for (int i = 0; i < 8; ++i) {
    buffer_[static_cast<std::size_t>(56 + i)] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  process_blocks(buffer_.data(), 1);
  buffer_len_ = 0;

  Sha256Digest out;
  for (int i = 0; i < 8; ++i) {
    out[static_cast<std::size_t>(4 * i)] = static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)] >> 24);
    out[static_cast<std::size_t>(4 * i + 1)] = static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)] >> 16);
    out[static_cast<std::size_t>(4 * i + 2)] = static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)] >> 8);
    out[static_cast<std::size_t>(4 * i + 3)] = static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)]);
  }
  return out;
}

Sha256Digest Sha256::hash(BytesView data) {
  Sha256 ctx;
  ctx.update(data);
  return ctx.finish();
}

Bytes sha256(BytesView data) {
  Sha256Digest d = Sha256::hash(data);
  return Bytes(d.begin(), d.end());
}

std::uint64_t digest_prefix(const Sha256Digest& d) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(d[static_cast<std::size_t>(i)]) << (8 * i);
  return v;
}

}  // namespace spider
