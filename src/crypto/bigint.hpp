// Arbitrary-precision unsigned integers sized for RSA-1024/2048.
//
// Little-endian 64-bit limbs; schoolbook multiplication and Knuth
// Algorithm D division. Sufficient for deterministic key generation and
// sign/verify in tests; performance-sensitive simulations use the modeled
// crypto cost table instead of recomputing signatures.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"

namespace spider {

class BigInt {
 public:
  BigInt() = default;
  explicit BigInt(std::uint64_t v);

  /// Big-endian byte import/export (leading zeros stripped on import).
  static BigInt from_bytes_be(BytesView v);
  /// Exports exactly `len` bytes big-endian (throws if the value is larger).
  Bytes to_bytes_be(std::size_t len) const;
  Bytes to_bytes_be() const;

  static BigInt random_bits(Rng& rng, std::size_t bits);

  [[nodiscard]] bool is_zero() const { return limbs_.empty(); }
  [[nodiscard]] bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  [[nodiscard]] std::size_t bit_length() const;
  [[nodiscard]] bool bit(std::size_t i) const;

  /// Three-way compare: -1, 0, +1.
  static int cmp(const BigInt& a, const BigInt& b);
  bool operator==(const BigInt& o) const { return cmp(*this, o) == 0; }
  bool operator!=(const BigInt& o) const { return cmp(*this, o) != 0; }
  bool operator<(const BigInt& o) const { return cmp(*this, o) < 0; }
  bool operator<=(const BigInt& o) const { return cmp(*this, o) <= 0; }
  bool operator>(const BigInt& o) const { return cmp(*this, o) > 0; }
  bool operator>=(const BigInt& o) const { return cmp(*this, o) >= 0; }

  static BigInt add(const BigInt& a, const BigInt& b);
  /// Requires a >= b.
  static BigInt sub(const BigInt& a, const BigInt& b);
  static BigInt mul(const BigInt& a, const BigInt& b);
  static BigInt shl(const BigInt& a, std::size_t bits);
  static BigInt shr(const BigInt& a, std::size_t bits);

  struct DivMod;
  /// Knuth Algorithm D; throws std::domain_error on division by zero.
  static DivMod divmod(const BigInt& a, const BigInt& b);
  static BigInt mod(const BigInt& a, const BigInt& m);

  /// (a * b) mod m
  static BigInt mulmod(const BigInt& a, const BigInt& b, const BigInt& m);
  /// a^e mod m via square-and-multiply.
  static BigInt powmod(const BigInt& a, const BigInt& e, const BigInt& m);
  /// Modular inverse via extended Euclid; throws std::domain_error if gcd != 1.
  static BigInt invmod(const BigInt& a, const BigInt& m);
  static BigInt gcd(BigInt a, BigInt b);

  /// Miller-Rabin probabilistic primality test.
  static bool is_probable_prime(const BigInt& n, Rng& rng, int rounds = 16);
  /// Generates a random prime with exactly `bits` bits (top two bits set).
  static BigInt generate_prime(Rng& rng, std::size_t bits);

  [[nodiscard]] std::string to_hex_string() const;

  /// Low limb (for small values / tests).
  [[nodiscard]] std::uint64_t low_u64() const { return limbs_.empty() ? 0 : limbs_[0]; }

 private:
  void trim();
  [[nodiscard]] std::size_t nlimbs() const { return limbs_.size(); }

  std::vector<std::uint64_t> limbs_;  // little-endian, no trailing zero limbs
};

struct BigInt::DivMod {
  BigInt quotient;
  BigInt remainder;
};

inline BigInt BigInt::mod(const BigInt& a, const BigInt& m) { return divmod(a, m).remainder; }

}  // namespace spider
