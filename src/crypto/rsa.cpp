#include "crypto/rsa.hpp"

#include <stdexcept>

#include "common/serde.hpp"
#include "crypto/sha256.hpp"

namespace spider {

namespace {

// DER DigestInfo prefix for SHA-256 (RFC 8017, EMSA-PKCS1-v1_5).
constexpr std::uint8_t kSha256Prefix[] = {0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48,
                                          0x01, 0x65, 0x03, 0x04, 0x02, 0x01, 0x05, 0x00, 0x04,
                                          0x20};

/// EMSA-PKCS1-v1_5 encoding of SHA-256(message) to `len` bytes.
Bytes pkcs1_encode(BytesView message, std::size_t len) {
  Sha256Digest digest = Sha256::hash(message);
  std::size_t t_len = sizeof(kSha256Prefix) + digest.size();
  if (len < t_len + 11) throw std::length_error("RSA modulus too small for PKCS#1 padding");
  Bytes em(len, 0xff);
  em[0] = 0x00;
  em[1] = 0x01;
  em[len - t_len - 1] = 0x00;
  std::copy(std::begin(kSha256Prefix), std::end(kSha256Prefix), em.begin() + static_cast<std::ptrdiff_t>(len - t_len));
  std::copy(digest.begin(), digest.end(), em.begin() + static_cast<std::ptrdiff_t>(len - digest.size()));
  return em;
}

}  // namespace

Bytes RsaPublicKey::encode() const {
  Writer w;
  w.bytes(n.to_bytes_be());
  w.bytes(e.to_bytes_be());
  return std::move(w).take();
}

RsaPublicKey RsaPublicKey::decode(BytesView v) {
  Reader r(v);
  RsaPublicKey key;
  key.n = BigInt::from_bytes_be(r.bytes_view());
  key.e = BigInt::from_bytes_be(r.bytes_view());
  r.expect_done();
  return key;
}

RsaKeyPair rsa_generate(Rng& rng, std::size_t bits) {
  const BigInt e(65537);
  while (true) {
    BigInt p = BigInt::generate_prime(rng, bits / 2);
    BigInt q = BigInt::generate_prime(rng, bits / 2);
    if (p == q) continue;
    if (p < q) std::swap(p, q);

    BigInt n = BigInt::mul(p, q);
    if (n.bit_length() != bits) continue;

    BigInt p1 = BigInt::sub(p, BigInt(1));
    BigInt q1 = BigInt::sub(q, BigInt(1));
    BigInt phi = BigInt::mul(p1, q1);
    if (BigInt::cmp(BigInt::gcd(e, phi), BigInt(1)) != 0) continue;

    BigInt d = BigInt::invmod(e, phi);

    RsaKeyPair kp;
    kp.pub = RsaPublicKey{n, e};
    kp.priv = RsaPrivateKey{n, d, p, q, BigInt::mod(d, p1), BigInt::mod(d, q1),
                            BigInt::invmod(q, p)};
    return kp;
  }
}

Bytes rsa_sign(const RsaPrivateKey& key, BytesView message) {
  std::size_t len = (key.n.bit_length() + 7) / 8;
  BigInt m = BigInt::from_bytes_be(pkcs1_encode(message, len));

  // CRT: m1 = m^dp mod p, m2 = m^dq mod q, h = qinv(m1-m2) mod p, s = m2 + h*q
  BigInt m1 = BigInt::powmod(m, key.dp, key.p);
  BigInt m2 = BigInt::powmod(m, key.dq, key.q);
  BigInt diff = m1 >= m2 ? BigInt::sub(m1, m2)
                         : BigInt::sub(key.p, BigInt::mod(BigInt::sub(m2, m1), key.p));
  BigInt h = BigInt::mulmod(diff, key.qinv, key.p);
  BigInt s = BigInt::add(m2, BigInt::mul(h, key.q));
  return s.to_bytes_be(len);
}

bool rsa_verify(const RsaPublicKey& key, BytesView message, BytesView signature) {
  std::size_t len = key.modulus_bytes();
  if (signature.size() != len) return false;
  BigInt s = BigInt::from_bytes_be(signature);
  if (s >= key.n) return false;
  BigInt m = BigInt::powmod(s, key.e, key.n);
  Bytes expected = pkcs1_encode(message, len);
  Bytes actual;
  try {
    actual = m.to_bytes_be(len);
  } catch (const std::length_error&) {
    return false;
  }
  return bytes_equal(actual, expected);
}

}  // namespace spider
