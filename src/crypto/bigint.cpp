#include "crypto/bigint.hpp"

#include <algorithm>
#include <stdexcept>

namespace spider {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

void BigInt::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigInt::BigInt(u64 v) {
  if (v != 0) limbs_.push_back(v);
}

BigInt BigInt::from_bytes_be(BytesView v) {
  BigInt out;
  std::size_t n = v.size();
  out.limbs_.assign((n + 7) / 8, 0);
  for (std::size_t i = 0; i < n; ++i) {
    // byte v[i] has weight 256^(n-1-i)
    std::size_t pos = n - 1 - i;
    out.limbs_[pos / 8] |= static_cast<u64>(v[i]) << (8 * (pos % 8));
  }
  out.trim();
  return out;
}

Bytes BigInt::to_bytes_be() const {
  std::size_t bits = bit_length();
  std::size_t len = bits == 0 ? 1 : (bits + 7) / 8;
  return to_bytes_be(len);
}

Bytes BigInt::to_bytes_be(std::size_t len) const {
  if (bit_length() > len * 8) throw std::length_error("BigInt does not fit requested length");
  Bytes out(len, 0);
  for (std::size_t pos = 0; pos < len; ++pos) {
    std::size_t limb = pos / 8;
    if (limb >= limbs_.size()) break;
    out[len - 1 - pos] = static_cast<std::uint8_t>(limbs_[limb] >> (8 * (pos % 8)));
  }
  return out;
}

BigInt BigInt::random_bits(Rng& rng, std::size_t bits) {
  BigInt out;
  std::size_t n = (bits + 63) / 64;
  out.limbs_.resize(n);
  for (auto& l : out.limbs_) l = rng.next();
  std::size_t top_bits = bits % 64;
  if (top_bits != 0) out.limbs_.back() &= (~u64{0}) >> (64 - top_bits);
  out.trim();
  return out;
}

std::size_t BigInt::bit_length() const {
  if (limbs_.empty()) return 0;
  u64 top = limbs_.back();
  std::size_t b = 64;
  while ((top & (u64{1} << 63)) == 0) {
    top <<= 1;
    --b;
  }
  return (limbs_.size() - 1) * 64 + b;
}

bool BigInt::bit(std::size_t i) const {
  std::size_t limb = i / 64;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 64)) & 1;
}

int BigInt::cmp(const BigInt& a, const BigInt& b) {
  if (a.limbs_.size() != b.limbs_.size()) return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

BigInt BigInt::add(const BigInt& a, const BigInt& b) {
  BigInt out;
  std::size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  out.limbs_.assign(n + 1, 0);
  u64 carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    u128 s = static_cast<u128>(i < a.limbs_.size() ? a.limbs_[i] : 0) +
             (i < b.limbs_.size() ? b.limbs_[i] : 0) + carry;
    out.limbs_[i] = static_cast<u64>(s);
    carry = static_cast<u64>(s >> 64);
  }
  out.limbs_[n] = carry;
  out.trim();
  return out;
}

BigInt BigInt::sub(const BigInt& a, const BigInt& b) {
  if (cmp(a, b) < 0) throw std::domain_error("BigInt::sub underflow");
  BigInt out;
  out.limbs_.assign(a.limbs_.size(), 0);
  std::uint64_t borrow = 0;
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    u128 bi = static_cast<u128>(i < b.limbs_.size() ? b.limbs_[i] : 0) + borrow;
    if (static_cast<u128>(a.limbs_[i]) >= bi) {
      out.limbs_[i] = static_cast<u64>(static_cast<u128>(a.limbs_[i]) - bi);
      borrow = 0;
    } else {
      out.limbs_[i] = static_cast<u64>((static_cast<u128>(1) << 64) + a.limbs_[i] - bi);
      borrow = 1;
    }
  }
  out.trim();
  return out;
}

BigInt BigInt::mul(const BigInt& a, const BigInt& b) {
  if (a.is_zero() || b.is_zero()) return BigInt();
  BigInt out;
  out.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    u64 carry = 0;
    for (std::size_t j = 0; j < b.limbs_.size(); ++j) {
      u128 cur = static_cast<u128>(a.limbs_[i]) * b.limbs_[j] + out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    out.limbs_[i + b.limbs_.size()] += carry;
  }
  out.trim();
  return out;
}

BigInt BigInt::shl(const BigInt& a, std::size_t bits) {
  if (a.is_zero()) return BigInt();
  std::size_t limb_shift = bits / 64;
  std::size_t bit_shift = bits % 64;
  BigInt out;
  out.limbs_.assign(a.limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    out.limbs_[i + limb_shift] |= bit_shift == 0 ? a.limbs_[i] : (a.limbs_[i] << bit_shift);
    if (bit_shift != 0) out.limbs_[i + limb_shift + 1] |= a.limbs_[i] >> (64 - bit_shift);
  }
  out.trim();
  return out;
}

BigInt BigInt::shr(const BigInt& a, std::size_t bits) {
  std::size_t limb_shift = bits / 64;
  std::size_t bit_shift = bits % 64;
  if (limb_shift >= a.limbs_.size()) return BigInt();
  BigInt out;
  out.limbs_.assign(a.limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    out.limbs_[i] = bit_shift == 0 ? a.limbs_[i + limb_shift] : (a.limbs_[i + limb_shift] >> bit_shift);
    if (bit_shift != 0 && i + limb_shift + 1 < a.limbs_.size()) {
      out.limbs_[i] |= a.limbs_[i + limb_shift + 1] << (64 - bit_shift);
    }
  }
  out.trim();
  return out;
}

BigInt::DivMod BigInt::divmod(const BigInt& a, const BigInt& b) {
  if (b.is_zero()) throw std::domain_error("BigInt division by zero");
  if (cmp(a, b) < 0) return {BigInt(), a};
  if (b.limbs_.size() == 1) {
    // Fast path: single-limb divisor.
    u64 d = b.limbs_[0];
    BigInt q;
    q.limbs_.assign(a.limbs_.size(), 0);
    u128 rem = 0;
    for (std::size_t i = a.limbs_.size(); i-- > 0;) {
      u128 cur = (rem << 64) | a.limbs_[i];
      q.limbs_[i] = static_cast<u64>(cur / d);
      rem = cur % d;
    }
    q.trim();
    return {q, BigInt(static_cast<u64>(rem))};
  }

  // Knuth Algorithm D. Normalize so the divisor's top limb has its MSB set.
  std::size_t shift = 64 - (b.bit_length() % 64 == 0 ? 64 : b.bit_length() % 64);
  BigInt u = shl(a, shift);
  BigInt v = shl(b, shift);
  std::size_t n = v.limbs_.size();
  std::size_t m = u.limbs_.size() - n;

  std::vector<u64> un(u.limbs_);
  un.resize(u.limbs_.size() + 1, 0);  // extra limb for intermediate overflow
  const std::vector<u64>& vn = v.limbs_;

  BigInt q;
  q.limbs_.assign(m + 1, 0);

  for (std::size_t j = m + 1; j-- > 0;) {
    u128 num = (static_cast<u128>(un[j + n]) << 64) | un[j + n - 1];
    u128 qhat = num / vn[n - 1];
    u128 rhat = num % vn[n - 1];

    while (qhat >= (static_cast<u128>(1) << 64) ||
           qhat * vn[n - 2] > ((rhat << 64) | un[j + n - 2])) {
      --qhat;
      rhat += vn[n - 1];
      if (rhat >= (static_cast<u128>(1) << 64)) break;
    }

    // Multiply-subtract: un[j..j+n] -= qhat * vn[0..n-1]
    u128 borrow = 0;
    u128 carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      u128 p = qhat * vn[i] + carry;
      carry = p >> 64;
      u128 sub = static_cast<u128>(un[i + j]) - static_cast<u64>(p) - borrow;
      un[i + j] = static_cast<u64>(sub);
      borrow = (sub >> 64) & 1;  // 1 if wrapped
    }
    u128 sub = static_cast<u128>(un[j + n]) - carry - borrow;
    un[j + n] = static_cast<u64>(sub);
    bool negative = ((sub >> 64) & 1) != 0;

    if (negative) {
      // Add back: decrement qhat, add vn to un[j..j+n].
      --qhat;
      u128 c = 0;
      for (std::size_t i = 0; i < n; ++i) {
        u128 s = static_cast<u128>(un[i + j]) + vn[i] + c;
        un[i + j] = static_cast<u64>(s);
        c = s >> 64;
      }
      un[j + n] = static_cast<u64>(un[j + n] + c);
    }
    q.limbs_[j] = static_cast<u64>(qhat);
  }

  q.trim();
  BigInt r;
  r.limbs_.assign(un.begin(), un.begin() + static_cast<std::ptrdiff_t>(n));
  r.trim();
  r = shr(r, shift);
  return {q, r};
}

BigInt BigInt::mulmod(const BigInt& a, const BigInt& b, const BigInt& m) {
  return mod(mul(a, b), m);
}

BigInt BigInt::powmod(const BigInt& a, const BigInt& e, const BigInt& m) {
  if (m.is_zero()) throw std::domain_error("powmod with zero modulus");
  BigInt base = mod(a, m);
  BigInt result(1);
  std::size_t bits = e.bit_length();
  for (std::size_t i = bits; i-- > 0;) {
    result = mulmod(result, result, m);
    if (e.bit(i)) result = mulmod(result, base, m);
  }
  return result;
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  while (!b.is_zero()) {
    BigInt r = mod(a, b);
    a = b;
    b = r;
  }
  return a;
}

BigInt BigInt::invmod(const BigInt& a, const BigInt& m) {
  // Extended Euclid maintaining t coefficients with explicit signs.
  BigInt r0 = m;
  BigInt r1 = mod(a, m);
  BigInt t0;          // 0
  BigInt t1(1);       // 1
  bool t0_neg = false;
  bool t1_neg = false;

  while (!r1.is_zero()) {
    DivMod qr = divmod(r0, r1);
    // t2 = t0 - q * t1 (signed arithmetic on magnitudes)
    BigInt qt = mul(qr.quotient, t1);
    BigInt t2;
    bool t2_neg = false;
    if (t0_neg == t1_neg) {
      // t0 and q*t1 have the same sign: t2 = t0 - qt keeps/flips sign
      if (cmp(t0, qt) >= 0) {
        t2 = sub(t0, qt);
        t2_neg = t0_neg;
      } else {
        t2 = sub(qt, t0);
        t2_neg = !t0_neg;
      }
    } else {
      t2 = add(t0, qt);
      t2_neg = t0_neg;
    }
    r0 = r1;
    r1 = qr.remainder;
    t0 = t1;
    t0_neg = t1_neg;
    t1 = t2;
    t1_neg = t2_neg;
  }

  if (cmp(r0, BigInt(1)) != 0) throw std::domain_error("invmod: not invertible");
  if (t0_neg) return sub(m, mod(t0, m));
  return mod(t0, m);
}

namespace {
constexpr std::uint32_t kSmallPrimes[] = {
    3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,  47,  53,  59,  61,  67,
    71,  73,  79,  83,  89,  97,  101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157,
    163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257,
    263, 269, 271, 277, 281, 283, 293, 307, 311, 313, 317, 331, 337, 347, 349, 353, 359, 367,
    373, 379, 383, 389, 397, 401, 409, 419, 421, 431, 433, 439, 443, 449, 457, 461, 463, 467};
}  // namespace

bool BigInt::is_probable_prime(const BigInt& n, Rng& rng, int rounds) {
  if (n.is_zero() || n == BigInt(1)) return false;
  if (n == BigInt(2) || n == BigInt(3)) return true;
  if (!n.is_odd()) return false;

  for (std::uint32_t p : kSmallPrimes) {
    BigInt bp(p);
    if (n == bp) return true;
    if (mod(n, bp).is_zero()) return false;
  }

  // n - 1 = d * 2^r
  BigInt n1 = sub(n, BigInt(1));
  BigInt d = n1;
  std::size_t r = 0;
  while (!d.is_odd()) {
    d = shr(d, 1);
    ++r;
  }

  for (int round = 0; round < rounds; ++round) {
    // Witness in [2, n-2].
    BigInt a = add(BigInt(2), mod(random_bits(rng, n.bit_length() + 8), sub(n, BigInt(3))));
    BigInt x = powmod(a, d, n);
    if (x == BigInt(1) || x == n1) continue;
    bool composite = true;
    for (std::size_t i = 1; i < r; ++i) {
      x = mulmod(x, x, n);
      if (x == n1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

BigInt BigInt::generate_prime(Rng& rng, std::size_t bits) {
  while (true) {
    // Random value with the top two bits forced (so a product of two such
    // primes has exactly 2*bits bits) and the low bit forced (odd).
    BigInt candidate = random_bits(rng, bits - 2);
    candidate = add(candidate, shl(BigInt(3), bits - 2));
    if (!candidate.is_odd()) candidate = add(candidate, BigInt(1));
    if (candidate.bit_length() != bits) continue;
    if (is_probable_prime(candidate, rng)) return candidate;
  }
}

std::string BigInt::to_hex_string() const {
  if (limbs_.empty()) return "0";
  static const char* digits = "0123456789abcdef";
  std::string out;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    for (int nib = 15; nib >= 0; --nib) {
      out.push_back(digits[(limbs_[i] >> (4 * nib)) & 0xf]);
    }
  }
  std::size_t first = out.find_first_not_of('0');
  return first == std::string::npos ? "0" : out.substr(first);
}

}  // namespace spider
