#include "crypto/hmac.hpp"

#include <cstring>

namespace spider {

HmacKey hmac_precompute(BytesView key) {
  std::array<std::uint8_t, 64> k{};
  if (key.size() > 64) {
    Sha256Digest kd = Sha256::hash(key);
    std::memcpy(k.data(), kd.data(), kd.size());
  } else {
    std::memcpy(k.data(), key.data(), key.size());
  }

  std::array<std::uint8_t, 64> ipad{};
  std::array<std::uint8_t, 64> opad{};
  for (int i = 0; i < 64; ++i) {
    ipad[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(k[static_cast<std::size_t>(i)] ^ 0x36);
    opad[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(k[static_cast<std::size_t>(i)] ^ 0x5c);
  }

  HmacKey hk;
  hk.inner.update(BytesView(ipad.data(), ipad.size()));
  hk.outer.update(BytesView(opad.data(), opad.size()));
  return hk;
}

Sha256Digest hmac_sha256(const HmacKey& key, BytesView data) {
  Sha256 inner = key.inner;  // copy the midstate; the key stays reusable
  inner.update(data);
  Sha256Digest inner_digest = inner.finish();

  Sha256 outer = key.outer;
  outer.update(BytesView(inner_digest.data(), inner_digest.size()));
  return outer.finish();
}

Sha256Digest hmac_sha256(BytesView key, BytesView data) {
  return hmac_sha256(hmac_precompute(key), data);
}

Bytes hmac_tag(const HmacKey& key, BytesView data) {
  Sha256Digest d = hmac_sha256(key, data);
  return Bytes(d.begin(), d.begin() + 16);
}

Bytes hmac_tag(BytesView key, BytesView data) {
  Sha256Digest d = hmac_sha256(key, data);
  return Bytes(d.begin(), d.begin() + 16);
}

bool mac_equal(BytesView a, BytesView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= static_cast<std::uint8_t>(a[i] ^ b[i]);
  return acc == 0;
}

}  // namespace spider
