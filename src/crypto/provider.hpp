// Crypto provider abstraction.
//
// Protocol components authenticate messages through this interface, so the
// same protocol code runs with
//   - `RealCrypto`: actual RSA signatures + HMAC-SHA-256 (Byzantine tests
//     genuinely reject forged messages), or
//   - `FastCrypto`: HMAC-backed simulated signatures padded to RSA size
//     (cheap enough for large-scale simulations; byte accounting matches).
//
// The *simulated CPU cost* of each operation is taken from `CryptoCosts`
// and charged by the simulation layer regardless of provider, so latency /
// throughput results do not depend on which provider is active.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "crypto/hmac.hpp"
#include "crypto/rsa.hpp"

namespace spider {

/// Modeled CPU costs (microseconds) for a t3.small-class VM running a Java
/// prototype with 1024-bit RSA, as in the paper's evaluation.
struct CryptoCosts {
  Duration sign = 210;        // RSA-1024 private-key operation
  Duration verify = 28;       // RSA-1024 public-key operation (e = 65537)
  Duration mac = 4;           // HMAC-SHA-256 generate or check
  Duration hash_per_kb = 4;   // SHA-256 throughput
  Duration proc_per_msg = 18; // fixed message handling (dispatch, alloc, ...)
  Duration proc_per_kb = 10;  // serialization / copy per KiB
};

class CryptoProvider {
 public:
  virtual ~CryptoProvider() = default;

  virtual Bytes sign(NodeId signer, BytesView message) = 0;
  virtual bool verify(NodeId signer, BytesView message, BytesView signature) = 0;

  virtual Bytes mac(NodeId from, NodeId to, BytesView message) = 0;
  virtual bool verify_mac(NodeId from, NodeId to, BytesView message, BytesView tag) = 0;

  /// Size in bytes of a signature (for network accounting).
  virtual std::size_t signature_size() const = 0;
  std::size_t mac_size() const { return 16; }

  // ---- worker-safe hooks (runtime::ParallelRuntime) --------------------
  // Both hooks run on the simulation thread and resolve all *mutable*
  // provider state (lazy key caches) up front, returning handles whose use
  // is pure: hmac_tag against the schedule, or calling the closure, reads
  // only const state plus the caller-kept-alive views, and is bit-identical
  // to the corresponding verify()/verify_mac()/mac() call. Providers that
  // cannot give that guarantee return null and the runtime stays inline.

  /// Precomputed HMAC schedule for (from, to), stable for the provider's
  /// lifetime; nullptr when unavailable.
  virtual const HmacKey* mac_schedule(NodeId /*from*/, NodeId /*to*/) { return nullptr; }

  /// Pure closure computing verify(signer, message, signature); empty when
  /// unavailable. `message`/`signature` must outlive the closure's run.
  virtual std::function<bool()> make_sig_verifier(NodeId /*signer*/, BytesView /*message*/,
                                                  BytesView /*signature*/) {
    return {};
  }

  const CryptoCosts& costs() const { return costs_; }
  CryptoCosts& costs() { return costs_; }

 private:
  CryptoCosts costs_;
};

/// Real RSA + HMAC provider. Keys are generated deterministically from the
/// seed, lazily per node. `key_bits` defaults to 512 to keep test startup
/// fast; use 1024 to match the paper byte-for-byte.
class RealCrypto : public CryptoProvider {
 public:
  explicit RealCrypto(std::uint64_t seed, std::size_t key_bits = 512);

  Bytes sign(NodeId signer, BytesView message) override;
  bool verify(NodeId signer, BytesView message, BytesView signature) override;
  Bytes mac(NodeId from, NodeId to, BytesView message) override;
  bool verify_mac(NodeId from, NodeId to, BytesView message, BytesView tag) override;
  std::size_t signature_size() const override { return key_bits_ / 8; }
  const HmacKey* mac_schedule(NodeId from, NodeId to) override { return &pair_hmac(from, to); }
  std::function<bool()> make_sig_verifier(NodeId signer, BytesView message,
                                          BytesView signature) override;

  const RsaPublicKey& public_key(NodeId node);

 private:
  const RsaKeyPair& keys(NodeId node);
  Bytes mac_key(NodeId a, NodeId b) const;
  const HmacKey& pair_hmac(NodeId a, NodeId b);

  std::uint64_t seed_;
  std::size_t key_bits_;
  std::map<NodeId, RsaKeyPair> keypairs_;
  // Key material is a pure function of (seed, pair); the precomputed HMAC
  // midstates are cached so steady-state MACs skip re-deriving it.
  std::unordered_map<std::uint64_t, HmacKey> pair_hmacs_;
};

/// HMAC-backed simulated signatures. All nodes share a master secret, so
/// this provider offers no security against an in-process adversary — it
/// exists to make large simulations cheap while keeping identical message
/// sizes (128-byte "signatures" mimic RSA-1024).
class FastCrypto : public CryptoProvider {
 public:
  explicit FastCrypto(std::uint64_t seed);

  Bytes sign(NodeId signer, BytesView message) override;
  bool verify(NodeId signer, BytesView message, BytesView signature) override;
  Bytes mac(NodeId from, NodeId to, BytesView message) override;
  bool verify_mac(NodeId from, NodeId to, BytesView message, BytesView tag) override;
  std::size_t signature_size() const override { return 128; }
  const HmacKey* mac_schedule(NodeId from, NodeId to) override { return &pair_hmac(from, to); }
  std::function<bool()> make_sig_verifier(NodeId signer, BytesView message,
                                          BytesView signature) override;

 private:
  Bytes key_for(NodeId signer) const;
  Bytes pair_key(NodeId a, NodeId b) const;
  const HmacKey& signer_hmac(NodeId signer);
  const HmacKey& pair_hmac(NodeId a, NodeId b);

  Bytes master_;
  // Derived keys are pure functions of (master, node ids): cache their
  // precomputed HMAC midstates so each sign/verify/mac pays only the
  // message-dependent hashing, not key derivation (two SHA-256 passes per
  // operation in the naive path).
  std::unordered_map<NodeId, HmacKey> signer_hmacs_;
  std::unordered_map<std::uint64_t, HmacKey> pair_hmacs_;
};

}  // namespace spider
