// From-scratch SHA-256 (FIPS 180-4).
//
// Used for message digests, request hashing, checkpoint hashes and as the
// compression function behind HMAC-SHA-256.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace spider {

using Sha256Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 context.
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(BytesView data);
  /// Finalizes and returns the digest; the context must be reset before reuse.
  Sha256Digest finish();

  /// One-shot convenience.
  static Sha256Digest hash(BytesView data);

 private:
  void process_block(const std::uint8_t* block);
  /// Compresses `nblocks` consecutive 64-byte blocks, dispatching to the
  /// SHA-NI kernel when the CPU has it (bit-identical digests either way).
  void process_blocks(const std::uint8_t* data, std::size_t nblocks);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// Digest as an owned byte buffer (convenience for serialization).
Bytes sha256(BytesView data);

/// A compact 8-byte digest prefix used as hash-map key for request digests.
std::uint64_t digest_prefix(const Sha256Digest& d);

}  // namespace spider
