// Glue between KV clients and the HistoryRecorder.
//
// Every client type in the repo (SpiderClient for Spider and the PBFT/HFT
// baselines, ShardedClient for sharded deployments) exposes the same
// write/strong_read/weak_read(Bytes op, OpCallback) surface, so one set of
// templates issues an operation and logs its invocation/response pair.
// The response is recorded from inside the client callback, i.e. with the
// completion timestamp the client observed.
#pragma once

#include "app/kvstore.hpp"
#include "check/history.hpp"

namespace spider {

template <class Client>
HistoryRecorder::OpId recorded_put(HistoryRecorder& h, Client& c, std::uint64_t client_id,
                                   const std::string& key, const std::string& value) {
  HistoryRecorder::OpId id = h.invoke(client_id, HistOp::Put, key, to_bytes(value));
  c.write(kv_put(key, to_bytes(value)), [&h, id](Bytes reply, Duration) {
    KvReply r = kv_decode_reply(reply);
    h.respond(id, r.ok, std::move(r.value));
  });
  return id;
}

template <class Client>
HistoryRecorder::OpId recorded_del(HistoryRecorder& h, Client& c, std::uint64_t client_id,
                                   const std::string& key) {
  HistoryRecorder::OpId id = h.invoke(client_id, HistOp::Del, key);
  c.write(kv_del(key), [&h, id](Bytes reply, Duration) {
    KvReply r = kv_decode_reply(reply);
    h.respond(id, r.ok, std::move(r.value));
  });
  return id;
}

template <class Client>
HistoryRecorder::OpId recorded_strong_get(HistoryRecorder& h, Client& c,
                                          std::uint64_t client_id, const std::string& key) {
  HistoryRecorder::OpId id = h.invoke(client_id, HistOp::StrongGet, key);
  c.strong_read(kv_get(key), [&h, id](Bytes reply, Duration) {
    KvReply r = kv_decode_reply(reply);
    h.respond(id, r.ok, std::move(r.value));
  });
  return id;
}

template <class Client>
HistoryRecorder::OpId recorded_weak_get(HistoryRecorder& h, Client& c,
                                        std::uint64_t client_id, const std::string& key) {
  HistoryRecorder::OpId id = h.invoke(client_id, HistOp::WeakGet, key);
  c.weak_read(kv_get(key), [&h, id](Bytes reply, Duration) {
    KvReply r = kv_decode_reply(reply);
    h.respond(id, r.ok, std::move(r.value));
  });
  return id;
}

// ---- routed variants (ShardedClient) ---------------------------------------
// Same recording, but through the *_routed entry points so the shard that
// served each op lands in the history (kShardUnattributed when the op failed
// before reaching one). Resharding tests audit these attributions against the
// map version in force at completion time.

template <class Client>
HistoryRecorder::OpId recorded_put_routed(HistoryRecorder& h, Client& c,
                                          std::uint64_t client_id, const std::string& key,
                                          const std::string& value) {
  HistoryRecorder::OpId id = h.invoke(client_id, HistOp::Put, key, to_bytes(value));
  c.write_routed(kv_put(key, to_bytes(value)),
                 [&h, id](Bytes reply, Duration, std::uint32_t shard) {
                   KvReply r = kv_decode_reply(reply);
                   h.attribute_shard(id, shard);
                   h.respond(id, r.ok, std::move(r.value));
                 });
  return id;
}

template <class Client>
HistoryRecorder::OpId recorded_strong_get_routed(HistoryRecorder& h, Client& c,
                                                 std::uint64_t client_id,
                                                 const std::string& key) {
  HistoryRecorder::OpId id = h.invoke(client_id, HistOp::StrongGet, key);
  c.strong_read_routed(kv_get(key), [&h, id](Bytes reply, Duration, std::uint32_t shard) {
    KvReply r = kv_decode_reply(reply);
    h.attribute_shard(id, shard);
    h.respond(id, r.ok, std::move(r.value));
  });
  return id;
}

template <class Client>
HistoryRecorder::OpId recorded_weak_get_routed(HistoryRecorder& h, Client& c,
                                               std::uint64_t client_id,
                                               const std::string& key) {
  HistoryRecorder::OpId id = h.invoke(client_id, HistOp::WeakGet, key);
  c.weak_read_routed(kv_get(key), [&h, id](Bytes reply, Duration, std::uint32_t shard) {
    KvReply r = kv_decode_reply(reply);
    h.attribute_shard(id, shard);
    h.respond(id, r.ok, std::move(r.value));
  });
  return id;
}

}  // namespace spider
