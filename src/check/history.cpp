#include "check/history.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "common/hex.hpp"
#include "common/serde.hpp"
#include "sim/world.hpp"

namespace spider {

const char* hist_op_name(HistOp op) {
  switch (op) {
    case HistOp::Put: return "put";
    case HistOp::Del: return "del";
    case HistOp::StrongGet: return "get";
    case HistOp::WeakGet: return "weak-get";
  }
  return "?";
}

HistoryRecorder::OpId HistoryRecorder::invoke(std::uint64_t client, HistOp kind,
                                              std::string key, Bytes arg) {
  RecordedOp op;
  op.client = client;
  op.kind = kind;
  op.key = std::move(key);
  op.arg = std::move(arg);
  op.invoke = world_.now();
  ops_.push_back(std::move(op));
  return ops_.size() - 1;
}

void HistoryRecorder::respond(OpId id, bool ok, Bytes result) {
  RecordedOp& op = ops_.at(id);
  if (op.responded) return;  // double completion would be a client bug
  op.responded = true;
  op.respond = world_.now();
  op.ok = ok;
  op.result = std::move(result);
}

void HistoryRecorder::attribute_shard(OpId id, std::uint32_t shard) {
  ops_.at(id).shard = shard;
}

std::size_t HistoryRecorder::pending_count() const {
  std::size_t n = 0;
  for (const RecordedOp& op : ops_) {
    if (!op.responded) ++n;
  }
  return n;
}

std::vector<std::string> HistoryRecorder::keys() const {
  std::vector<std::string> out;
  for (const RecordedOp& op : ops_) out.push_back(op.key);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Bytes serialize_ops(const std::vector<RecordedOp>& ops) {
  // Unattributed histories keep the pre-resharding byte format (goldens and
  // archived failure artifacts stay valid); any shard attribution switches to
  // the v2 layout, flagged by a count-position sentinel no v1 history can
  // produce (a count of 2^32-1 ops would never fit in memory).
  const bool attributed = std::any_of(ops.begin(), ops.end(), [](const RecordedOp& op) {
    return op.shard != kShardUnattributed;
  });
  Writer w;
  if (attributed) w.u32(0xffffffffu);
  w.u32(static_cast<std::uint32_t>(ops.size()));
  for (const RecordedOp& op : ops) {
    w.u64(op.client);
    w.u8(static_cast<std::uint8_t>(op.kind));
    w.bytes(to_bytes(op.key));
    w.bytes(op.arg);
    w.u64(static_cast<std::uint64_t>(op.invoke));
    w.u64(static_cast<std::uint64_t>(op.respond));
    w.boolean(op.responded);
    w.boolean(op.ok);
    w.bytes(op.result);
    if (attributed) w.u32(op.shard);
  }
  return std::move(w).take();
}

Bytes HistoryRecorder::serialize() const { return serialize_ops(ops_); }

namespace {
// Hex fields may be empty; "-" keeps the token stream aligned.
std::string hex_token(BytesView v) { return v.empty() ? "-" : to_hex(v); }

Bytes parse_hex_token(const std::string& tok) {
  return tok == "-" ? Bytes{} : from_hex(tok);
}
}  // namespace

std::string serialize_ops_text(const std::vector<RecordedOp>& ops) {
  std::ostringstream out;
  for (const RecordedOp& op : ops) {
    out << "op " << op.client << " " << static_cast<unsigned>(op.kind) << " "
        << hex_token(to_bytes(op.key)) << " " << hex_token(op.arg) << " " << op.invoke << " "
        << op.respond << " " << (op.responded ? 1 : 0) << " " << (op.ok ? 1 : 0) << " "
        << hex_token(op.result);
    if (op.shard != kShardUnattributed) out << " " << op.shard;
    out << "\n";
  }
  return out.str();
}

std::string HistoryRecorder::serialize_text() const { return serialize_ops_text(ops_); }

std::vector<RecordedOp> parse_history_text(const std::string& text) {
  std::vector<RecordedOp> ops;
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string tag, key_hex, arg_hex, result_hex;
    unsigned kind = 0;
    int responded = 0, ok = 0;
    RecordedOp op;
    if (!(ls >> tag >> op.client >> kind >> key_hex >> arg_hex >> op.invoke >> op.respond >>
          responded >> ok >> result_hex) ||
        tag != "op") {
      throw std::invalid_argument("history text line " + std::to_string(lineno) +
                                  " malformed: " + line);
    }
    op.kind = static_cast<HistOp>(kind);
    op.key = to_string(parse_hex_token(key_hex));
    op.arg = parse_hex_token(arg_hex);
    op.responded = responded != 0;
    op.ok = ok != 0;
    op.result = parse_hex_token(result_hex);
    std::uint32_t shard = 0;
    if (ls >> shard) op.shard = shard;  // optional trailing token (sharded runs)
    ops.push_back(std::move(op));
  }
  return ops;
}

std::string HistoryRecorder::dump() const {
  std::string out;
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    const RecordedOp& op = ops_[i];
    out += "#" + std::to_string(i) + " c" + std::to_string(op.client) + " " +
           hist_op_name(op.kind) + "(" + op.key;
    if (op.kind == HistOp::Put) out += ", \"" + to_string(op.arg) + "\"";
    out += ") inv=" + std::to_string(op.invoke);
    if (op.shard != kShardUnattributed) out += " s" + std::to_string(op.shard);
    if (op.responded) {
      out += " resp=" + std::to_string(op.respond);
      out += op.ok ? " ok" : " miss";
      if (!op.is_write()) out += " -> \"" + to_string(op.result) + "\"";
    } else {
      out += " PENDING";
    }
    out += "\n";
  }
  return out;
}

}  // namespace spider
