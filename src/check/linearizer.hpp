// Per-key linearizability checker for recorded KV histories.
//
// Strong operations (Put / Del / StrongGet) must form a linearizable
// register history per key; since the KV store composes independent
// registers, per-key checking is equivalent to whole-store checking
// (linearizability is P-compositional). The search is Wing & Gong's:
// repeatedly pick an operation that no other pending operation
// real-time-precedes, apply it to the register, and backtrack on read
// mismatches, memoizing failed (linearized-set, register-state) pairs.
//
// Operations still pending when the history closes (e.g. a client whose
// write was cut off by a crash) may have taken effect or not: the search
// may linearize them anywhere after their invocation or drop them.
//
// Weakly consistent reads are checked against the *committed-prefix* rule
// (paper §3.3: weak reads see a stale but valid prefix of the commit
// order): the value must match the register state after some prefix of
// the witness linearization whose writes were all invoked before the read
// completed — arbitrary staleness is legal, fabricated or out-of-thin-air
// values are not.
#pragma once

#include <string>

#include "check/history.hpp"

namespace spider {

struct LinResult {
  bool ok = true;
  std::string error;  // diagnosis for the first violation found

  explicit operator bool() const { return ok; }
};

/// Checks every key of the recorded history; returns the first violation.
/// Keys with more than 62 strong operations are rejected as "history too
/// large" (shrink the workload per key instead of waiting on the search).
LinResult check_kv_history(const HistoryRecorder& h);

}  // namespace spider
