#include "check/linearizer.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <vector>

namespace spider {

namespace {

constexpr Time kNever = std::numeric_limits<Time>::max();

/// One strong operation projected onto a single key's register.
struct KeyOp {
  std::size_t idx = 0;  // index into the recorder (diagnostics)
  bool is_write = false;
  bool write_exists = false;  // Put => true, Del => false
  Bytes value;                // written value, or expected read result
  bool read_ok = false;       // read's reply status
  Time inv = 0;
  Time resp = kNever;  // kNever while pending
  bool responded = false;
};

struct RegisterState {
  bool exists = false;
  const Bytes* value = nullptr;  // points into some KeyOp::value
};

bool read_matches(const KeyOp& r, const RegisterState& s) {
  if (r.read_ok != s.exists) return false;
  return !r.read_ok || (s.value != nullptr && r.value == *s.value);
}

/// Wing–Gong search. Returns true and fills `witness` with a valid
/// linearization (indices into `ops`) on success.
bool linearize(const std::vector<KeyOp>& ops, std::vector<std::size_t>& witness) {
  const std::size_t n = ops.size();
  std::uint64_t completed_mask = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (ops[i].responded) completed_mask |= (1ull << i);
  }

  // Memo of failed search nodes: (linearized mask, index of last applied
  // write + 1). Reads do not change the register, so these two values
  // fully determine the remaining search space.
  std::set<std::pair<std::uint64_t, std::size_t>> failed;

  struct Frame {
    std::uint64_t mask;
    std::size_t last_write;  // n = none
    std::size_t next = 0;    // next candidate index to try
  };
  std::vector<Frame> stack;
  stack.push_back({0, n, 0});
  witness.clear();

  while (!stack.empty()) {
    Frame& f = stack.back();
    if ((f.mask & completed_mask) == completed_mask) return true;

    RegisterState state;
    if (f.last_write != n) {
      state.exists = ops[f.last_write].write_exists;
      state.value = &ops[f.last_write].value;
    }

    bool descended = false;
    for (std::size_t i = f.next; i < n; ++i) {
      if (f.mask & (1ull << i)) continue;
      // Minimality: no other unlinearized op may real-time-precede op i.
      Time other_min = kNever;
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i || (f.mask & (1ull << j))) continue;
        other_min = std::min(other_min, ops[j].resp);
      }
      if (other_min < ops[i].inv) continue;
      if (!ops[i].is_write && !read_matches(ops[i], state)) continue;

      std::uint64_t mask2 = f.mask | (1ull << i);
      std::size_t last2 = ops[i].is_write ? i : f.last_write;
      if (failed.count({mask2, last2 + 1})) continue;

      f.next = i + 1;
      witness.push_back(i);
      stack.push_back({mask2, last2, 0});
      descended = true;
      break;
    }
    if (descended) continue;

    failed.insert({f.mask, f.last_write + 1});
    stack.pop_back();
    if (!witness.empty()) witness.pop_back();
  }
  return false;
}

/// Committed-prefix rule for one weak read: the result must equal the
/// register after some prefix of the witness whose writes were all invoked
/// before the read completed. A value written by a still-pending write
/// (invoked before the read completed) is also legal — the write may
/// commit after the history closed.
bool weak_read_valid(const KeyOp& r, const std::vector<KeyOp>& ops,
                     const std::vector<std::size_t>& witness) {
  RegisterState state;  // initial: missing
  if (read_matches(r, state)) return true;
  for (std::size_t wi : witness) {
    const KeyOp& w = ops[wi];
    if (!w.is_write) continue;
    if (w.inv > r.resp) break;  // later prefixes include an uncommitted write
    state.exists = w.write_exists;
    state.value = &w.value;
    if (read_matches(r, state)) return true;
  }
  for (const KeyOp& w : ops) {
    if (!w.is_write || w.responded || w.inv > r.resp) continue;
    RegisterState s{w.write_exists, &w.value};
    if (read_matches(r, s)) return true;
  }
  return false;
}

}  // namespace

LinResult check_kv_history(const HistoryRecorder& h) {
  const std::vector<RecordedOp>& all = h.ops();

  for (const std::string& key : h.keys()) {
    std::vector<KeyOp> strong;
    std::vector<KeyOp> weak;
    for (std::size_t i = 0; i < all.size(); ++i) {
      const RecordedOp& op = all[i];
      if (op.key != key) continue;
      if (!op.responded && !op.is_write()) continue;  // pending reads constrain nothing

      KeyOp k;
      k.idx = i;
      k.inv = op.invoke;
      k.responded = op.responded;
      k.resp = op.responded ? op.respond : kNever;
      switch (op.kind) {
        case HistOp::Put:
          k.is_write = true;
          k.write_exists = true;
          k.value = op.arg;
          break;
        case HistOp::Del:
          k.is_write = true;
          k.write_exists = false;
          break;
        case HistOp::StrongGet:
        case HistOp::WeakGet:
          k.read_ok = op.ok;
          k.value = op.result;
          break;
      }
      if (op.kind == HistOp::WeakGet) {
        weak.push_back(std::move(k));
      } else {
        strong.push_back(std::move(k));
      }
    }
    if (strong.size() > 62) {
      return {false, "key \"" + key + "\": history too large (" +
                         std::to_string(strong.size()) + " strong ops > 62)"};
    }

    std::vector<std::size_t> witness;
    if (!linearize(strong, witness)) {
      std::string diag = "key \"" + key + "\": strong history not linearizable; ops:";
      for (const KeyOp& k : strong) diag += " #" + std::to_string(k.idx);
      return {false, std::move(diag)};
    }
    for (const KeyOp& r : weak) {
      if (!weak_read_valid(r, strong, witness)) {
        return {false, "key \"" + key + "\": weak read #" + std::to_string(r.idx) +
                           " violates the committed-prefix rule (result \"" +
                           to_string(r.value) + "\", ok=" + (r.read_ok ? "1" : "0") + ")"};
      }
    }
  }
  return {};
}

}  // namespace spider
