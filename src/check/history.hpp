// Invocation/response history recording for correctness checking.
//
// Clients (Spider, baseline, sharded routers) log every KV operation's
// invocation and response into a HistoryRecorder; the linearizability
// checker (linearizer.hpp) then verifies the whole run instead of the
// usual "no timeout happened" non-assertion. Timestamps come from the
// World clock, so a recorded history is bit-identical across two runs of
// the same seed — which is also how chaos failures are reproduced: dump
// the seed, rerun, get the same history.
#pragma once

#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/time.hpp"

namespace spider {

class World;

enum class HistOp : std::uint8_t { Put = 1, Del = 2, StrongGet = 3, WeakGet = 4 };

const char* hist_op_name(HistOp op);

/// RecordedOp.shard when the op was not attributed to any shard (ops from
/// unsharded deployments, or routed ops that failed before reaching one).
constexpr std::uint32_t kShardUnattributed = 0xffffffffu;

struct RecordedOp {
  std::uint64_t client = 0;
  HistOp kind = HistOp::Put;
  std::string key;
  Bytes arg;           // value written (Put)
  Time invoke = 0;
  Time respond = 0;
  bool responded = false;  // false: still pending when the history closed
  bool ok = false;         // reply status (reads: key found)
  Bytes result;            // value read (reads)
  /// Shard that served the response (resharding runs attribute ops at
  /// completion time so migrations can be audited per key).
  std::uint32_t shard = kShardUnattributed;

  [[nodiscard]] bool is_write() const { return kind == HistOp::Put || kind == HistOp::Del; }
};

class HistoryRecorder {
 public:
  using OpId = std::size_t;

  explicit HistoryRecorder(World& world) : world_(world) {}

  /// Records an operation's invocation; returns the id to respond() with.
  OpId invoke(std::uint64_t client, HistOp kind, std::string key, Bytes arg = {});
  void respond(OpId id, bool ok, Bytes result = {});
  /// Tags the op with the shard that served it (call alongside respond()).
  void attribute_shard(OpId id, std::uint32_t shard);

  [[nodiscard]] const std::vector<RecordedOp>& ops() const { return ops_; }
  [[nodiscard]] std::size_t pending_count() const;
  /// Distinct keys touched, sorted (the checker is per-key compositional).
  [[nodiscard]] std::vector<std::string> keys() const;

  /// Deterministic byte encoding of the whole history (seed-replay
  /// byte-identity checks, CI failure artifacts).
  [[nodiscard]] Bytes serialize() const;
  /// Human-readable dump, one operation per line.
  [[nodiscard]] std::string dump() const;
  /// Parseable text encoding, one operation per line (keys and values are
  /// hex-encoded so arbitrary bytes survive); the inverse of
  /// parse_history_text. Failure artifacts embed this so a recorded
  /// history can be reloaded, not just read.
  [[nodiscard]] std::string serialize_text() const;

 private:
  World& world_;
  std::vector<RecordedOp> ops_;
};

/// Byte encoding of an operation list; serialize() == serialize_ops(ops()).
Bytes serialize_ops(const std::vector<RecordedOp>& ops);
/// Text encoding of an operation list (what serialize_text emits).
std::string serialize_ops_text(const std::vector<RecordedOp>& ops);
/// Parses serialize_text output back into operations; throws
/// std::invalid_argument on malformed input.
std::vector<RecordedOp> parse_history_text(const std::string& text);

}  // namespace spider
