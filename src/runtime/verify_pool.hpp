// Fixed-size worker pool for pure crypto work with deterministic joins.
//
// The simulation's determinism contract is that every observable byte is a
// pure function of the seed. A conventional task pool breaks that the
// moment task *completion order* can leak into protocol state. VerifyPool
// avoids the problem structurally: jobs are closures over immutable inputs
// (wire bytes kept alive by a refcounted Payload, const HMAC midstates,
// const RSA public keys) that write only into their own Job slot. The main
// simulation thread consumes a result exactly where the sequential code
// would have computed it inline — and if the job has not been picked up by
// a worker yet, join() claims and runs it inline on the spot. Either way
// the bytes produced are bit-identical to the inline computation, so
// thread count and OS scheduling can change *where* the work happened but
// never *what* the simulation observed.
//
// Claim protocol (the whole synchronization story):
//
//   submit:  state = kPending, push to a worker deque, notify
//   worker:  CAS kPending -> kClaimed | run fn | store kDone (release)
//   join:    load (acquire): kDone?            -> return
//            CAS kPending -> kClaimed succeeds -> run inline, store kDone
//            else (a worker holds the claim)   -> spin/yield until kDone
//
// The release store of kDone sequences the job's result writes before the
// joiner's acquire load, and the claim CAS makes execution exclusive, so
// the pool is data-race-free by construction (the TSan job pins this).
// Work-stealing join also guarantees progress on a single-core host: a
// joiner never blocks on a worker that the OS has not scheduled.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace spider::runtime {

class VerifyPool {
 public:
  struct Job {
    /// Pure computation: reads only state captured at submit time, writes
    /// only the result fields of the Job it is handed (itself). Runs
    /// exactly once (claim CAS).
    std::function<void(Job&)> fn;
    /// Result slots. `ok` carries verify/verify_mac verdicts; `out` carries
    /// computed bytes (e.g. a MAC tag). Written by fn, read after join().
    bool ok = false;
    std::vector<std::uint8_t> out;

    enum : std::uint8_t { kPending = 0, kClaimed = 1, kDone = 2 };
    std::atomic<std::uint8_t> state{kPending};
  };
  using JobRef = std::shared_ptr<Job>;

  /// `workers` = number of worker threads (0 = fully inline: submit runs
  /// the closure immediately; join is then a no-op check).
  explicit VerifyPool(unsigned workers);
  ~VerifyPool();

  VerifyPool(const VerifyPool&) = delete;
  VerifyPool& operator=(const VerifyPool&) = delete;

  /// Queues `fn` on the worker selected by `domain` (domain % workers —
  /// shard-affine submission keeps one shard's verification stream on one
  /// worker, which keeps key-schedule cache lines warm). Never blocks.
  JobRef submit(std::function<void(Job&)> fn, std::uint32_t domain = 0);

  /// Ensures the job's fn has run; returns with its results visible to the
  /// caller. Steals the job inline when no worker has claimed it yet.
  void join(Job& job);
  void join(const JobRef& job) { join(*job); }

  [[nodiscard]] unsigned workers() const { return static_cast<unsigned>(threads_.size()); }

  // ---- wall-clock diagnostics (schedule-dependent; never exported into
  // deterministic snapshots — see docs/determinism.md) ------------------
  [[nodiscard]] std::uint64_t submitted() const { return submitted_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t ran_on_worker() const { return ran_worker_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t ran_inline() const { return ran_inline_.load(std::memory_order_relaxed); }

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<JobRef> q;
  };
  void worker_loop(WorkerQueue& wq);
  static bool try_run(Job& job);  // claim CAS + fn + kDone; false if lost the claim

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> threads_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> ran_worker_{0};
  std::atomic<std::uint64_t> ran_inline_{0};
};

}  // namespace spider::runtime
