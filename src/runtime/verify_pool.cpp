#include "runtime/verify_pool.hpp"

namespace spider::runtime {

VerifyPool::VerifyPool(unsigned workers) {
  queues_.reserve(workers);
  threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  for (unsigned i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(*queues_[i]); });
  }
}

VerifyPool::~VerifyPool() {
  stop_.store(true, std::memory_order_relaxed);
  for (auto& wq : queues_) {
    std::lock_guard<std::mutex> lk(wq->mu);
    wq->cv.notify_all();
  }
  for (std::thread& t : threads_) t.join();
  // Drain: unclaimed jobs are simply dropped — any joiner still holding a
  // ref runs them inline via the claim CAS, so no result is ever lost.
}

bool VerifyPool::try_run(Job& job) {
  std::uint8_t expected = Job::kPending;
  if (!job.state.compare_exchange_strong(expected, Job::kClaimed,
                                         std::memory_order_acquire,
                                         std::memory_order_acquire)) {
    return false;
  }
  job.fn(job);
  job.state.store(Job::kDone, std::memory_order_release);
  return true;
}

void VerifyPool::worker_loop(WorkerQueue& wq) {
  for (;;) {
    JobRef job;
    {
      std::unique_lock<std::mutex> lk(wq.mu);
      wq.cv.wait(lk, [&] { return stop_.load(std::memory_order_relaxed) || !wq.q.empty(); });
      if (wq.q.empty()) return;  // stop requested and nothing left
      job = std::move(wq.q.front());
      wq.q.pop_front();
    }
    if (try_run(*job)) ran_worker_.fetch_add(1, std::memory_order_relaxed);
  }
}

VerifyPool::JobRef VerifyPool::submit(std::function<void(Job&)> fn, std::uint32_t domain) {
  auto job = std::make_shared<Job>();
  job->fn = std::move(fn);
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (threads_.empty()) {
    // Inline mode: compute now. state goes straight to kDone so join() is
    // a single acquire load.
    job->fn(*job);
    job->state.store(Job::kDone, std::memory_order_release);
    ran_inline_.fetch_add(1, std::memory_order_relaxed);
    return job;
  }
  WorkerQueue& wq = *queues_[domain % queues_.size()];
  {
    std::lock_guard<std::mutex> lk(wq.mu);
    wq.q.push_back(job);
  }
  wq.cv.notify_one();
  return job;
}

void VerifyPool::join(Job& job) {
  if (job.state.load(std::memory_order_acquire) == Job::kDone) return;
  if (try_run(job)) {
    // Stolen: the queue copy becomes a no-op when a worker reaches it.
    ran_inline_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // A worker holds the claim; it is actively computing. Spin briefly, then
  // yield — verification jobs are microseconds, so the claim window is
  // short and a futex-grade primitive would cost more than it saves.
  for (unsigned spins = 0; job.state.load(std::memory_order_acquire) != Job::kDone; ++spins) {
    if (spins >= 64) std::this_thread::yield();
  }
}

}  // namespace spider::runtime
