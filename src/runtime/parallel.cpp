#include "runtime/parallel.hpp"

#include <algorithm>

#include "consensus/pbft_messages.hpp"
#include "crypto/hmac.hpp"
#include "irmc/messages.hpp"
#include "sim/component.hpp"
#include "sim/world.hpp"

namespace spider::runtime {

namespace {

/// FIFO-evicted prefetch-table capacity. Entries for messages that were
/// dropped in flight (loss windows, partitions, crashed recipients) are
/// never consumed; the cap bounds how long their buffers stay pinned.
constexpr std::size_t kTableCap = 1 << 14;

std::uint32_t frame_tag(const std::uint8_t* d) {
  // Writer::u32 is little-endian (see common/serde.hpp).
  return static_cast<std::uint32_t>(d[0]) | static_cast<std::uint32_t>(d[1]) << 8 |
         static_cast<std::uint32_t>(d[2]) << 16 | static_cast<std::uint32_t>(d[3]) << 24;
}

/// Trailer rule per tag namespace: what will the receiver verify on this
/// frame? Mirrors the dispatch in PbftReplica/Rc*/Sc*/Checkpointer/
/// SpiderClient/ExecutionReplica::on_message. Unknown namespaces (registry,
/// HFT baseline) report not prefetchable and stay on the inline path.
bool trailer_rule(std::uint32_t tag, std::uint8_t type, bool& is_sig) {
  switch (tag & 0xff000000u) {
    case tags::kPbft:
      is_sig = type == static_cast<std::uint8_t>(pbft::MsgType::ViewChange) ||
               type == static_cast<std::uint8_t>(pbft::MsgType::NewView);
      return true;
    case tags::kIrmc:
      is_sig = type == static_cast<std::uint8_t>(irmc::MsgType::Send) ||
               type == static_cast<std::uint8_t>(irmc::MsgType::SigShare) ||
               type == static_cast<std::uint8_t>(irmc::MsgType::Certificate);
      return true;
    case tags::kClient:
      // Both directions ([ClientFrame] requests and replies) end in a MAC;
      // the *inner* request signature is over re-encoded bytes and is
      // batch-verified at the call site instead (verify_sigs).
      is_sig = false;
      return true;
    case tags::kCheckpoint:
      // Checkpointer::MsgType::Checkpoint votes are signed; Fetch/State
      // carry no outer trailer.
      is_sig = true;
      return type == 1;
    default:
      return false;
  }
}

}  // namespace

ParallelRuntime::ParallelRuntime(World& world, unsigned threads, Duration epoch_len)
    : world_(world), pool_(threads > 1 ? threads - 1 : 0), epoch_len_(std::max<Duration>(epoch_len, 1)) {}

ParallelRuntime::~ParallelRuntime() = default;

void ParallelRuntime::drive(Time target) {
  EventQueue& q = world_.queue();
  // Epoch loop: the queue is the single source of event order — epochs only
  // bound how much virtual time passes between barriers, they never reorder
  // events (run_until commits strictly in (time, id) order either way).
  do {
    const Time stop = std::min(target, q.now() + epoch_len_);
    q.run_until(stop);
    ++epochs_;
    fold_metrics();
    evict_over_cap();
  } while (q.now() < target);
}

void ParallelRuntime::note_send(NodeId from, NodeId to, const Payload& frame) {
  const std::size_t n = frame.size();
  if (n < 5) return;
  const std::uint8_t* d = frame.data();
  bool is_sig = false;
  if (!trailer_rule(frame_tag(d), d[4], is_sig)) return;

  CryptoProvider& cp = world_.crypto();
  const std::size_t auth_len = is_sig ? cp.signature_size() : cp.mac_size();
  if (n <= 4 + auth_len) return;
  const std::size_t msg_len = n - auth_len;

  // Signature entries drop the recipient from the key: the verdict is a
  // function of (signer, bytes) only, so every recipient of a multicast
  // that shares this buffer consumes one job.
  const Key key{d, msg_len, from, is_sig ? 0 : to};
  if (table_.count(key) > 0) return;  // already prefetched (retransmit / fan-out)

  const BytesView msg(d, msg_len);
  const BytesView auth(d + msg_len, auth_len);
  VerifyPool::JobRef job;
  const std::uint32_t domain = world_.domain_of(to);
  // Each closure owns a refcount on the wire buffer (`pin`): FIFO eviction
  // or runtime teardown may drop the table entry while a worker is still
  // reading the bytes, so the job must keep them alive itself.
  if (is_sig) {
    // Key material resolves on this (simulation) thread; the closure is
    // pure and worker-safe by the provider contract.
    std::function<bool()> v = cp.make_sig_verifier(from, msg, auth);
    if (!v) return;
    job = pool_.submit(
        [v = std::move(v), pin = frame](VerifyPool::Job& j) { j.ok = v(); }, domain);
  } else {
    const HmacKey* ks = cp.mac_schedule(from, to);
    if (ks == nullptr) return;
    job = pool_.submit(
        [ks, msg, auth, pin = frame](VerifyPool::Job& j) {
          j.ok = mac_equal(hmac_tag(*ks, msg), auth);
        },
        domain);
  }
  insert(key, frame, std::move(job), domain);
}

void ParallelRuntime::insert(Key key, const Payload& frame, VerifyPool::JobRef job,
                             std::uint32_t domain) {
  const std::uint64_t seq = next_seq_++;
  table_.emplace(key, Entry{std::move(job), frame, seq});
  fifo_.emplace_back(key, seq);
  ++total_submitted_;
  if (domains_.size() <= domain) domains_.resize(domain + 1);
  ++domains_[domain].submitted;
  evict_over_cap();
}

void ParallelRuntime::evict_over_cap() {
  while (table_.size() > kTableCap && !fifo_.empty()) {
    auto [key, seq] = fifo_.front();
    fifo_.pop_front();
    auto it = table_.find(key);
    // Seq guard: the slot may have been consumed and re-inserted for a
    // fresh message that reused the same buffer address.
    if (it != table_.end() && it->second.seq == seq) table_.erase(it);
  }
}

std::optional<bool> ParallelRuntime::take_verdict(const std::uint8_t* frame_data,
                                                  std::size_t msg_len, NodeId from, NodeId to,
                                                  bool is_sig) {
  auto it = table_.find(Key{frame_data, msg_len, from, is_sig ? 0 : to});
  if (it == table_.end()) return std::nullopt;
  pool_.join(*it->second.job);
  const bool ok = it->second.job->ok;
  ++total_hits_;
  const std::uint32_t domain = world_.domain_of(to);
  if (domains_.size() <= domain) domains_.resize(domain + 1);
  ++domains_[domain].hits;
  // MAC entries are single-consumer (per-pair trailer): release the buffer
  // pin now. Signature entries stay for the multicast's other recipients
  // and age out through the FIFO cap.
  if (!is_sig) table_.erase(it);
  return ok;
}

void ParallelRuntime::fold_metrics() {
  for (std::uint32_t d = 0; d < domains_.size(); ++d) {
    DomainStats& s = domains_[d];
    if (std::uint64_t delta = s.submitted - s.folded_submitted) {
      world_.metrics()
          .counter("verify_prefetch_submitted", {.node = 0, .shard = d, .role = "runtime"})
          .inc(delta);
      s.folded_submitted = s.submitted;
    }
    if (std::uint64_t delta = s.hits - s.folded_hits) {
      world_.metrics()
          .counter("verify_prefetch_hits", {.node = 0, .shard = d, .role = "runtime"})
          .inc(delta);
      s.folded_hits = s.hits;
    }
  }
}

std::vector<char> verify_sigs(World& world, const std::vector<SigCheck>& checks) {
  std::vector<char> out(checks.size(), 0);
  CryptoProvider& cp = world.crypto();
  ParallelRuntime* rt = world.parallelism();
  if (rt == nullptr || checks.size() < 2) {
    for (std::size_t i = 0; i < checks.size(); ++i) {
      out[i] = cp.verify(checks[i].signer, checks[i].msg, checks[i].sig) ? 1 : 0;
    }
    return out;
  }
  // Scatter across workers (round-robin, not shard-affine: a certificate's
  // shares should verify concurrently), then join in input order.
  std::vector<VerifyPool::JobRef> jobs(checks.size());
  for (std::size_t i = 0; i < checks.size(); ++i) {
    std::function<bool()> v = cp.make_sig_verifier(checks[i].signer, checks[i].msg, checks[i].sig);
    if (v) {
      jobs[i] = rt->pool().submit([v = std::move(v)](VerifyPool::Job& j) { j.ok = v(); },
                                  static_cast<std::uint32_t>(i));
    }
  }
  for (std::size_t i = 0; i < checks.size(); ++i) {
    if (jobs[i]) {
      rt->pool().join(jobs[i]);
      out[i] = jobs[i]->ok ? 1 : 0;
    } else {
      out[i] = cp.verify(checks[i].signer, checks[i].msg, checks[i].sig) ? 1 : 0;
    }
  }
  return out;
}

std::vector<Bytes> compute_macs(World& world, NodeId from, BytesView msg,
                                const std::vector<NodeId>& recipients) {
  std::vector<Bytes> out(recipients.size());
  CryptoProvider& cp = world.crypto();
  ParallelRuntime* rt = world.parallelism();
  if (rt == nullptr || recipients.size() < 2) {
    for (std::size_t i = 0; i < recipients.size(); ++i) {
      out[i] = cp.mac(from, recipients[i], msg);
    }
    return out;
  }
  std::vector<VerifyPool::JobRef> jobs(recipients.size());
  for (std::size_t i = 0; i < recipients.size(); ++i) {
    const HmacKey* ks = cp.mac_schedule(from, recipients[i]);
    if (ks != nullptr) {
      jobs[i] = rt->pool().submit([ks, msg](VerifyPool::Job& j) { j.out = hmac_tag(*ks, msg); },
                                  static_cast<std::uint32_t>(i));
    }
  }
  for (std::size_t i = 0; i < recipients.size(); ++i) {
    if (jobs[i]) {
      rt->pool().join(jobs[i]);
      out[i] = std::move(jobs[i]->out);
    } else {
      out[i] = cp.mac(from, recipients[i], msg);
    }
  }
  return out;
}

}  // namespace spider::runtime
