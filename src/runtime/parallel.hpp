// Deterministic parallel runtime: crypto prefetch + epoch-driven execution.
//
// Everything observable in a run is a pure function of the seed because the
// main thread commits events in exact (time, id) order — the same order the
// single-threaded engine uses. Worker threads are only ever handed *pure*
// work: verifying a MAC/signature over immutable wire bytes with key
// material resolved up front. The result of pure work is independent of
// where and when it runs, so offloading changes wall-clock time and nothing
// else. See docs/determinism.md for the full argument.
//
// The runtime hooks the engine in three places:
//
//   1. note_send (called by SimNetwork after a message survives all drop
//      decisions): peeks the wire frame's component tag + type byte,
//      decides which trailer the receiver will verify (16-byte MAC vs
//      signature), resolves the key schedule on the simulation thread, and
//      submits the verification as a VerifyPool job — the simulated
//      network's propagation delay becomes real overlap time.
//   2. take_verdict (called by SimNode::check_auth_frame when the receive
//      path reaches the verification the sequential code would do inline):
//      joins the prefetched job and consumes its verdict. Signature
//      verdicts are keyed per (buffer, signer) WITHOUT the recipient, so a
//      multicast whose recipients share one refcounted frame verifies the
//      signature ONCE for the whole fan-out — at every thread count,
//      including 1 — while each recipient is still charged the modeled
//      verify cost (simulated time is unchanged by construction).
//   3. drive (installed as the World's run driver): advances the queue in
//      bounded virtual-time epochs with a barrier between epochs that
//      folds per-shard counters into the metrics registry and evicts
//      prefetch entries whose messages were dropped in flight.
//
// A prefetch MISS (evicted entry, unknown tag namespace, provider without
// worker-safe hooks) falls back to the inline computation and produces the
// same bytes, so hits and misses are indistinguishable to the simulation.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/payload.hpp"
#include "common/time.hpp"
#include "runtime/verify_pool.hpp"

namespace spider {
class World;
}

namespace spider::runtime {

/// One signature to check in a batch (see verify_sigs).
struct SigCheck {
  NodeId signer = 0;
  BytesView msg;
  BytesView sig;
};

class ParallelRuntime {
 public:
  /// `threads` is the total thread budget including the simulation thread,
  /// so `threads - 1` workers are spawned (threads=1 => fully inline pool;
  /// prefetch dedup still applies). `epoch_len` bounds how far virtual
  /// time advances between barriers.
  ParallelRuntime(World& world, unsigned threads, Duration epoch_len = 500);
  ~ParallelRuntime();

  ParallelRuntime(const ParallelRuntime&) = delete;
  ParallelRuntime& operator=(const ParallelRuntime&) = delete;

  /// Run driver: advance to `target` in epoch_len-bounded steps with a
  /// barrier after each epoch.
  void drive(Time target);

  /// Transport hook: may submit a verification job for `frame`'s trailer.
  void note_send(NodeId from, NodeId to, const Payload& frame);

  /// Consumes a prefetched verdict for the frame whose bytes start at
  /// `frame_data` (message = [0, msg_len), trailer follows). nullopt on
  /// miss; the caller then verifies inline. `to` is ignored for signatures
  /// (multicast dedup).
  std::optional<bool> take_verdict(const std::uint8_t* frame_data, std::size_t msg_len,
                                   NodeId from, NodeId to, bool is_sig);

  VerifyPool& pool() { return pool_; }
  [[nodiscard]] unsigned threads() const { return pool_.workers() + 1; }
  [[nodiscard]] Duration epoch_len() const { return epoch_len_; }
  [[nodiscard]] std::uint64_t epochs() const { return epochs_; }

  /// Folds the deterministic per-shard prefetch counters into the World's
  /// metrics registry under {shard, role="runtime"} labels. Called at every
  /// epoch barrier and from World::refresh_platform_metrics(); the counts
  /// are main-thread state, identical across thread counts.
  void fold_metrics();

  // Deterministic prefetch counters (test hooks).
  [[nodiscard]] std::uint64_t prefetch_submitted() const { return total_submitted_; }
  [[nodiscard]] std::uint64_t prefetch_hits() const { return total_hits_; }
  [[nodiscard]] std::size_t table_size() const { return table_.size(); }

 private:
  struct Key {
    const std::uint8_t* data;
    std::size_t len;
    NodeId from;
    NodeId to;  // 0 for signature entries (recipient-independent)
    bool operator==(const Key& o) const {
      return data == o.data && len == o.len && from == o.from && to == o.to;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      std::size_t h = std::hash<const void*>()(k.data);
      h ^= k.len + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      h ^= (static_cast<std::size_t>(k.from) << 32 | k.to) + (h << 6) + (h >> 2);
      return h;
    }
  };
  struct Entry {
    VerifyPool::JobRef job;
    /// Pins the wire buffer while the entry is live, so the pointer-keyed
    /// table can never alias a freed-and-reused address. The job's closure
    /// holds its *own* pin — eviction must not free bytes a worker is
    /// still reading.
    Payload keepalive;
    std::uint64_t seq;  // insertion generation, for FIFO eviction
  };
  struct DomainStats {
    std::uint64_t submitted = 0;
    std::uint64_t hits = 0;
    std::uint64_t folded_submitted = 0;
    std::uint64_t folded_hits = 0;
  };

  void insert(Key key, const Payload& frame, VerifyPool::JobRef job, std::uint32_t domain);
  void evict_over_cap();

  World& world_;
  VerifyPool pool_;
  Duration epoch_len_;
  std::uint64_t epochs_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t total_submitted_ = 0;
  std::uint64_t total_hits_ = 0;
  std::unordered_map<Key, Entry, KeyHash> table_;
  std::deque<std::pair<Key, std::uint64_t>> fifo_;  // (key, seq) insertion order
  std::vector<DomainStats> domains_;
};

/// Batch signature verification with input-order verdicts, bit-identical to
/// an inline `crypto().verify` loop. Fans out across the verify pool when
/// the World has parallelism enabled; plain loop otherwise. Callers keep
/// the viewed bytes alive until this returns (scatter-join inside one
/// handler scope). Returns char, not bool, to dodge vector<bool>.
std::vector<char> verify_sigs(World& world, const std::vector<SigCheck>& checks);

/// Batch per-recipient MAC computation over a shared `msg`, in recipient
/// order — the send-side scatter-join for multicasts whose per-pair MACs
/// differ but share one domain-separated byte string. Bit-identical to an
/// inline `crypto().mac` loop.
std::vector<Bytes> compute_macs(World& world, NodeId from, BytesView msg,
                                const std::vector<NodeId>& recipients);

}  // namespace spider::runtime
