// Refcounted immutable message payload — the zero-copy transport currency.
//
// A Payload is a shared, immutable byte buffer (plus an offset/length
// window into it), so a multicast serializes a wire message ONCE and every
// recipient, link shaper and in-flight network event shares the same
// allocation. Slices (nested messages exposed by Reader::bytes_view) keep
// the whole buffer alive instead of copying.
//
// The SHA-256 digest of any window into the buffer is memoized on the
// buffer itself: repeated digesting of the same content (per-recipient
// request digests, certificate re-checks, checkpoint re-hashing) costs one
// computation. Memoization is transparent — digests are bit-identical to a
// fresh Sha256::hash over the same bytes — so the *modeled* CPU cost
// (SimNode::charge_hash) is still charged per protocol-level hash while the
// wall-clock cost is paid once. Immutability makes invalidation trivial:
// bytes never change under a memo entry; "modifying" a payload means
// building a new one, which starts with an empty memo.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/bytes.hpp"
#include "common/serde.hpp"
#include "crypto/sha256.hpp"

namespace spider {

/// Process-wide count of actual SHA-256 computations performed by Payload
/// digest memoization (the sum of every buffer's digest_computations(),
/// including buffers already freed). Exported to the metrics registry via
/// World::refresh_platform_metrics(); the per-buffer counter below stays
/// the fine-grained test hook.
std::uint64_t payload_digest_computations_total();

class Payload {
 public:
  /// Empty payload (no buffer).
  Payload() = default;
  /// Takes ownership of `b` (no copy).
  explicit Payload(Bytes b) : buf_(std::make_shared<Buf>(std::move(b))) {
    len_ = buf_->data.size();
  }
  /// Copies a view into a fresh buffer.
  explicit Payload(BytesView v) : Payload(Bytes(v.begin(), v.end())) {}
  /// Takes the finished buffer out of a Writer (no copy).
  explicit Payload(Writer&& w) : Payload(std::move(w).take()) {}

  [[nodiscard]] BytesView view() const {
    return buf_ ? BytesView(buf_->data).subspan(off_, len_) : BytesView{};
  }
  [[nodiscard]] const std::uint8_t* data() const { return buf_ ? buf_->data.data() + off_ : nullptr; }
  [[nodiscard]] std::size_t size() const { return len_; }
  [[nodiscard]] bool empty() const { return len_ == 0; }
  operator BytesView() const { return view(); }

  /// Copies the window out into an owned buffer.
  [[nodiscard]] Bytes to_bytes() const { return spider::to_bytes(view()); }

  /// Sub-window sharing the same buffer (and digest memo). Bounds-checked
  /// against this payload's window.
  [[nodiscard]] Payload slice(std::size_t off, std::size_t len) const;

  /// True if `sub` points into this payload's buffer.
  [[nodiscard]] bool contains(BytesView sub) const {
    if (!buf_ || sub.empty()) return false;
    const std::uint8_t* lo = buf_->data.data();
    return sub.data() >= lo && sub.data() + sub.size() <= lo + buf_->data.size();
  }

  /// Zero-copy slice covering `sub`, which must satisfy contains(sub).
  [[nodiscard]] Payload slice_of(BytesView sub) const;

  /// Memoized SHA-256 over view(). Identical to Sha256::hash(view()).
  [[nodiscard]] Sha256Digest digest() const;

  /// Memoized SHA-256 over `sub` when it points into this buffer; falls
  /// back to a direct (unmemoized) hash otherwise.
  [[nodiscard]] Sha256Digest digest_of(BytesView sub) const;

  /// Number of actual SHA-256 computations performed for this buffer
  /// (shared across slices). Test hook for the memoization contract.
  [[nodiscard]] std::size_t digest_computations() const {
    return buf_ ? buf_->computations : 0;
  }

  /// Two payloads share the same underlying buffer (not just equal bytes).
  [[nodiscard]] bool shares_buffer_with(const Payload& other) const {
    return buf_ && buf_ == other.buf_;
  }

 private:
  struct MemoEntry {
    std::size_t off;
    std::size_t len;
    Sha256Digest digest;
  };
  struct Buf {
    explicit Buf(Bytes b) : data(std::move(b)) {}
    const Bytes data;
    // Digest memo: tiny linear-scanned table (a wire message is digested
    // over at most a handful of distinct windows: full frame, body,
    // nested request payloads). Mutation is safe: the sim is
    // single-threaded and entries are a pure function of immutable bytes.
    mutable std::vector<MemoEntry> memo;
    mutable std::size_t computations = 0;
  };

  Sha256Digest digest_window(std::size_t off, std::size_t len) const;

  std::shared_ptr<const Buf> buf_;
  std::size_t off_ = 0;
  std::size_t len_ = 0;
};

}  // namespace spider
