// Hex encoding helpers (debugging, test vectors).
#pragma once

#include <string>

#include "common/bytes.hpp"

namespace spider {

/// Lower-case hex encoding.
std::string to_hex(BytesView v);

/// Decodes a hex string; throws std::invalid_argument on malformed input.
Bytes from_hex(const std::string& s);

}  // namespace spider
