// Simulated-time types. The simulator clock is a signed 64-bit microsecond
// counter; durations use the same unit.
#pragma once

#include <cstdint>

namespace spider {

using Time = std::int64_t;      // absolute simulated time, microseconds
using Duration = std::int64_t;  // microseconds

constexpr Duration kMicrosecond = 1;
constexpr Duration kMillisecond = 1000;
constexpr Duration kSecond = 1000 * 1000;

constexpr double to_ms(Duration d) { return static_cast<double>(d) / 1000.0; }
constexpr double to_sec(Duration d) { return static_cast<double>(d) / 1'000'000.0; }

}  // namespace spider
