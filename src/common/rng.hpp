// Deterministic pseudo-random number generator (xoshiro256**).
//
// Used for simulation jitter, workload generation and (deterministic) key
// generation. Never use this for real-world key material.
#pragma once

#include <cstdint>

namespace spider {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform in [0, bound) without modulo bias for practical purposes.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Exponentially distributed value with given mean (for Poisson arrivals).
  double exponential(double mean);

  /// Fork an independent stream (for per-node RNGs).
  Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace spider
