#include "common/payload.hpp"

#include <stdexcept>

namespace spider {

namespace {
constexpr std::size_t kMemoCap = 16;  // bounds per-buffer memo memory
std::uint64_t g_digest_computations = 0;
}

std::uint64_t payload_digest_computations_total() { return g_digest_computations; }

Payload Payload::slice(std::size_t off, std::size_t len) const {
  if (off > len_ || len > len_ - off) {
    throw std::out_of_range("Payload::slice out of range");
  }
  Payload p;
  p.buf_ = buf_;
  p.off_ = off_ + off;
  p.len_ = len;
  return p;
}

Payload Payload::slice_of(BytesView sub) const {
  if (!contains(sub)) throw std::out_of_range("Payload::slice_of: view not in buffer");
  Payload p;
  p.buf_ = buf_;
  p.off_ = static_cast<std::size_t>(sub.data() - buf_->data.data());
  p.len_ = sub.size();
  return p;
}

Sha256Digest Payload::digest_window(std::size_t off, std::size_t len) const {
  for (const MemoEntry& e : buf_->memo) {
    if (e.off == off && e.len == len) return e.digest;
  }
  ++buf_->computations;
  ++g_digest_computations;
  Sha256Digest d = Sha256::hash(BytesView(buf_->data).subspan(off, len));
  if (buf_->memo.size() == kMemoCap) buf_->memo.pop_back();
  buf_->memo.insert(buf_->memo.begin(), MemoEntry{off, len, d});
  return d;
}

Sha256Digest Payload::digest() const {
  if (!buf_) return Sha256::hash({});
  return digest_window(off_, len_);
}

Sha256Digest Payload::digest_of(BytesView sub) const {
  if (!contains(sub)) return Sha256::hash(sub);
  return digest_window(static_cast<std::size_t>(sub.data() - buf_->data.data()), sub.size());
}

}  // namespace spider
