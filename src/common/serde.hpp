// Minimal binary serialization used for every protocol message.
//
// Encoding rules:
//   - fixed-width integers are little-endian
//   - byte strings / nested buffers are length-prefixed with u32
//   - containers are length-prefixed with u32
//
// `Reader` performs strict bounds checking and throws `SerdeError` on any
// malformed input, so Byzantine (garbage) messages are rejected at the
// decoding boundary instead of corrupting protocol state.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/bytes.hpp"

namespace spider {

/// Thrown by Reader on truncated or malformed input.
class SerdeError : public std::runtime_error {
 public:
  explicit SerdeError(const std::string& what) : std::runtime_error(what) {}
};

/// Appends primitive values to a growing byte buffer.
class Writer {
 public:
  Writer() = default;
  /// Pre-reserves `size_hint` bytes so message construction with a known
  /// wire size (batches, wraps, auth frames) allocates exactly once
  /// instead of growing through the doubling schedule.
  explicit Writer(std::size_t size_hint) { buf_.reserve(size_hint); }

  void reserve(std::size_t total) { buf_.reserve(total); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { put_le(v, 2); }
  void u32(std::uint32_t v) { put_le(v, 4); }
  void u64(std::uint64_t v) { put_le(v, 8); }
  void i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v), 8); }
  void boolean(bool v) { u8(v ? 1 : 0); }

  /// Length-prefixed byte string.
  void bytes(BytesView v);
  /// Length-prefixed ASCII string.
  void str(const std::string& s);
  /// Raw bytes without length prefix (caller must know the length).
  void raw(BytesView v);

  [[nodiscard]] const Bytes& data() const& { return buf_; }
  [[nodiscard]] Bytes take() && { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  void put_le(std::uint64_t v, int n);
  Bytes buf_;
};

/// Reads primitive values from a byte view with bounds checking.
class Reader {
 public:
  explicit Reader(BytesView v) : buf_(v) {}

  std::uint8_t u8();
  std::uint16_t u16() { return static_cast<std::uint16_t>(get_le(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(get_le(4)); }
  std::uint64_t u64() { return get_le(8); }
  std::int64_t i64() { return static_cast<std::int64_t>(get_le(8)); }
  bool boolean();

  /// Length-prefixed byte string (copies out).
  Bytes bytes();
  /// Length-prefixed byte string as a view into the underlying buffer.
  BytesView bytes_view();
  /// Length-prefixed ASCII string.
  std::string str();
  /// Raw bytes without prefix.
  BytesView raw(std::size_t n);

  [[nodiscard]] std::size_t remaining() const { return buf_.size() - pos_; }
  [[nodiscard]] bool done() const { return remaining() == 0; }
  /// Throws unless the whole buffer has been consumed.
  void expect_done() const;

 private:
  std::uint64_t get_le(int n);
  void need(std::size_t n) const;

  BytesView buf_;
  std::size_t pos_ = 0;
};

}  // namespace spider
