#include "common/serde.hpp"

namespace spider {

void Writer::put_le(std::uint64_t v, int n) {
  for (int i = 0; i < n; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Writer::bytes(BytesView v) {
  u32(static_cast<std::uint32_t>(v.size()));
  raw(v);
}

void Writer::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void Writer::raw(BytesView v) { buf_.insert(buf_.end(), v.begin(), v.end()); }

void Reader::need(std::size_t n) const {
  if (remaining() < n) {
    throw SerdeError("truncated input: need " + std::to_string(n) + " bytes, have " +
                     std::to_string(remaining()));
  }
}

std::uint8_t Reader::u8() {
  need(1);
  return buf_[pos_++];
}

bool Reader::boolean() {
  std::uint8_t v = u8();
  if (v > 1) throw SerdeError("invalid boolean");
  return v == 1;
}

std::uint64_t Reader::get_le(int n) {
  need(static_cast<std::size_t>(n));
  std::uint64_t v = 0;
  for (int i = 0; i < n; ++i) {
    v |= static_cast<std::uint64_t>(buf_[pos_ + static_cast<std::size_t>(i)]) << (8 * i);
  }
  pos_ += static_cast<std::size_t>(n);
  return v;
}

Bytes Reader::bytes() { return to_bytes(bytes_view()); }

BytesView Reader::bytes_view() {
  std::uint32_t n = u32();
  return raw(n);
}

std::string Reader::str() {
  BytesView v = bytes_view();
  return std::string(v.begin(), v.end());
}

BytesView Reader::raw(std::size_t n) {
  need(n);
  BytesView v = buf_.subspan(pos_, n);
  pos_ += n;
  return v;
}

void Reader::expect_done() const {
  if (!done()) throw SerdeError("trailing bytes after message");
}

}  // namespace spider
