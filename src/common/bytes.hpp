// Basic byte-buffer aliases used throughout the library.
//
// All protocol messages are serialized to `Bytes` before transmission;
// signatures and MACs are computed over the serialized representation.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace spider {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Copies a view into an owned buffer.
inline Bytes to_bytes(BytesView v) { return Bytes(v.begin(), v.end()); }

/// Converts an ASCII string to a byte buffer (no terminator).
inline Bytes to_bytes(const std::string& s) { return Bytes(s.begin(), s.end()); }

/// Interprets a byte buffer as an ASCII string.
inline std::string to_string(BytesView v) { return std::string(v.begin(), v.end()); }

inline bool bytes_equal(BytesView a, BytesView b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

}  // namespace spider
