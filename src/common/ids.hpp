// Core identifier and protocol-number types shared by all subsystems.
#pragma once

#include <cstdint>

namespace spider {

/// Globally unique identifier of a process (replica or client).
using NodeId = std::uint32_t;
constexpr NodeId kInvalidNode = ~NodeId{0};

/// Identifier of a replica group (agreement group or execution group).
using GroupId = std::uint32_t;
constexpr GroupId kAgreementGroup = 0;

/// Agreement sequence number (total order position). 0 = "nothing yet".
using SeqNr = std::uint64_t;

/// Position within an IRMC subchannel (starts at 1).
using Position = std::uint64_t;

/// Subchannel identifier within an IRMC (client id, or 0 for commit channels).
using Subchannel = std::uint64_t;

/// Consensus view number.
using ViewNr = std::uint64_t;

}  // namespace spider
