#include "common/hex.hpp"

#include <stdexcept>

namespace spider {

std::string to_hex(BytesView v) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(v.size() * 2);
  for (std::uint8_t b : v) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xf]);
  }
  return out;
}

namespace {
int nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument("invalid hex digit");
}
}  // namespace

Bytes from_hex(const std::string& s) {
  if (s.size() % 2 != 0) throw std::invalid_argument("odd-length hex string");
  Bytes out;
  out.reserve(s.size() / 2);
  for (std::size_t i = 0; i < s.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>((nibble(s[i]) << 4) | nibble(s[i + 1])));
  }
  return out;
}

}  // namespace spider
