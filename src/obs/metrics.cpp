#include "obs/metrics.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>

namespace spider::obs {

namespace {

int msb_index(std::uint64_t v) {
  // v > 0 precondition; index of highest set bit.
  return 63 - __builtin_clzll(v);
}

}  // namespace

std::size_t LogHistogram::bucket_index(std::uint64_t v) {
  if (v < 2 * kSubBuckets) return static_cast<std::size_t>(v);  // exact region
  int msb = msb_index(v);
  int shift = msb - kSubBits;
  std::uint64_t sub = (v >> shift) & (kSubBuckets - 1);
  return (static_cast<std::size_t>(shift + 1) << kSubBits) + static_cast<std::size_t>(sub);
}

std::uint64_t LogHistogram::bucket_lower(std::size_t i) {
  if (i < 2 * kSubBuckets) return static_cast<std::uint64_t>(i);
  std::size_t octave = i >> kSubBits;       // == shift + 1
  std::uint64_t sub = i & (kSubBuckets - 1);
  int shift = static_cast<int>(octave) - 1;
  return (kSubBuckets + sub) << shift;
}

std::uint64_t LogHistogram::bucket_width(std::size_t i) {
  if (i < 2 * kSubBuckets) return 1;
  return 1ull << ((i >> kSubBits) - 1);
}

void LogHistogram::add(std::uint64_t v, std::uint64_t n) {
  if (n == 0) return;
  buckets_[bucket_index(v)] += n;
  count_ += n;
  sum_ += v * n;
  if (v < min_) min_ = v;
  if (v > max_) max_ = v;
}

void LogHistogram::merge(const LogHistogram& other) {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

void LogHistogram::clear() {
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0;
  min_ = ~0ull;
  max_ = 0;
}

double LogHistogram::mean() const {
  if (count_ == 0) return 0.0;
  return static_cast<double>(sum_) / static_cast<double>(count_);
}

std::uint64_t LogHistogram::percentile(double p) const {
  if (count_ == 0) return 0;
  if (p <= 0.0) return min_;
  if (p >= 100.0) return max_;
  // Nearest-rank: smallest bucket whose cumulative count reaches rank.
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  if (rank == 0) rank = 1;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cum += buckets_[i];
    if (cum >= rank) {
      std::uint64_t rep = bucket_lower(i) + bucket_width(i) / 2;  // midpoint
      if (rep < min_) rep = min_;
      if (rep > max_) rep = max_;
      return rep;
    }
  }
  return max_;  // unreachable when count_ > 0
}

MetricsRegistry::Entry& MetricsRegistry::entry(std::string_view name,
                                               const MetricLabels& labels,
                                               char type) {
  Key k{std::string(name), labels.node, labels.shard, std::string(labels.role)};
  Entry& e = metrics_[std::move(k)];
  if (!e.c && !e.g && !e.h) e.type = type;
  return e;
}

Counter& MetricsRegistry::counter(std::string_view name, MetricLabels labels) {
  Entry& e = entry(name, labels, 'c');
  if (!e.c) e.c = std::make_unique<Counter>();
  return *e.c;
}

Gauge& MetricsRegistry::gauge(std::string_view name, MetricLabels labels) {
  Entry& e = entry(name, labels, 'g');
  if (!e.g) e.g = std::make_unique<Gauge>();
  return *e.g;
}

LogHistogram& MetricsRegistry::histogram(std::string_view name, MetricLabels labels,
                                         std::string_view unit) {
  Entry& e = entry(name, labels, 'h');
  if (!e.h) {
    e.h = std::make_unique<LogHistogram>();
    e.unit = std::string(unit);
  }
  return *e.h;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [k, e] : other.metrics_) {
    MetricLabels labels{k.node, k.shard, k.role};
    switch (e.type) {
      case 'c':
        if (e.c) counter(k.name, labels).inc(e.c->value());
        break;
      case 'g':
        if (e.g) gauge(k.name, labels).set(e.g->value());
        break;
      case 'h':
        if (e.h) histogram(k.name, labels, e.unit).merge(*e.h);
        break;
      default:
        break;
    }
  }
}

std::string MetricsRegistry::snapshot_json() const {
  std::string out;
  char buf[256];
  auto head = [&](const Key& k, const char* type) {
    std::snprintf(buf, sizeof(buf),
                  "{\"metric\":\"%s\",\"type\":\"%s\",\"node\":%u,\"shard\":%u,"
                  "\"role\":\"%s\"",
                  k.name.c_str(), type, k.node, k.shard, k.role.c_str());
    out += buf;
  };
  for (const auto& [k, e] : metrics_) {
    switch (e.type) {
      case 'c':
        head(k, "counter");
        std::snprintf(buf, sizeof(buf), ",\"value\":%llu}\n",
                      static_cast<unsigned long long>(e.c ? e.c->value() : 0));
        out += buf;
        break;
      case 'g':
        head(k, "gauge");
        std::snprintf(buf, sizeof(buf), ",\"value\":%lld}\n",
                      static_cast<long long>(e.g ? e.g->value() : 0));
        out += buf;
        break;
      case 'h': {
        head(k, "histogram");
        const LogHistogram& h = *e.h;
        std::snprintf(
            buf, sizeof(buf),
            ",\"unit\":\"%s\",\"count\":%llu,\"min\":%llu,\"max\":%llu,"
            "\"mean\":%.3f,\"p50\":%llu,\"p99\":%llu,\"p999\":%llu}\n",
            e.unit.c_str(), static_cast<unsigned long long>(h.count()),
            static_cast<unsigned long long>(h.min()),
            static_cast<unsigned long long>(h.max()), h.mean(),
            static_cast<unsigned long long>(h.percentile(50.0)),
            static_cast<unsigned long long>(h.percentile(99.0)),
            static_cast<unsigned long long>(h.percentile(99.9)));
        out += buf;
        break;
      }
      default:
        break;
    }
  }
  return out;
}

bool MetricsRegistry::write_snapshot(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  f << snapshot_json();
  return static_cast<bool>(f);
}

}  // namespace spider::obs
