// Out-of-band request-lifecycle tracing.
//
// The tracer is a passive event sink: instrumentation sites do
//
//   if (auto* t = tracer()) t->instant(now, node, "irmc", "send", ...);
//
// so with no tracer attached (the default — the "null sink") the hook is a
// single predictable branch on a raw pointer, allocates nothing, consumes
// no RNG, and never touches wire bytes or scheduling. A seed replay with
// the tracer attached therefore produces a byte-identical trace, and a
// replay without it produces byte-identical protocol behavior.
//
// Events are POD: timestamps are simulated microseconds, names/categories
// must be string literals (static storage duration), and correlation uses
// a 64-bit request id derived from (client, counter).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"

namespace spider::obs {

/// Chrome trace-event phases we emit (subset of the spec).
enum class Ph : std::uint8_t {
  kInstant,        // "i" — point event on a node track
  kAsyncBegin,     // "b" — start of an id-correlated flow (request lifetime)
  kAsyncInstant,   // "n" — milestone within an id-correlated flow
  kAsyncEnd,       // "e" — end of an id-correlated flow
  kComplete,       // "X" — duration slice (modeled-CPU task execution)
};

/// One trace record. POD on purpose: recording is a bounds check + struct
/// copy, with no allocation in ring mode.
struct TraceEvent {
  Time ts = 0;             // simulated microseconds
  Duration dur = 0;        // kComplete only
  std::uint64_t id = 0;    // async correlation id (request id); 0 = none
  std::uint64_t v0 = 0;    // arg values (emitted when k0/k1 non-null)
  std::uint64_t v1 = 0;
  const char* cat = "";    // category (static string)
  const char* name = "";   // event name (static string)
  const char* k0 = nullptr;  // arg keys (static strings)
  const char* k1 = nullptr;
  NodeId node = 0;         // track: pid = node
  Ph ph = Ph::kInstant;
};

/// Correlation id for a client request: the (client node, request counter)
/// pair packed into 64 bits. `weak` requests (direct/weak reads) use an
/// independent counter stream on the client, so they get bit 63 to keep the
/// two streams from colliding.
constexpr std::uint64_t request_id(NodeId client, std::uint64_t counter,
                                   bool weak = false) {
  return ((static_cast<std::uint64_t>(client) << 32) ^ (counter & 0xFFFFFFFFull)) |
         (weak ? (1ull << 63) : 0ull);
}

class Tracer {
 public:
  enum class Mode {
    kFull,  // keep every event (bounded runs, exports)
    kRing,  // flight recorder: fixed capacity, oldest overwritten
  };

  explicit Tracer(Mode mode = Mode::kFull, std::size_t ring_capacity = 1 << 16)
      : mode_(mode), cap_(ring_capacity == 0 ? 1 : ring_capacity) {
    if (mode_ == Mode::kRing) events_.reserve(cap_);
  }

  void record(const TraceEvent& ev) {
    if (mode_ == Mode::kRing && events_.size() == cap_) {
      events_[head_] = ev;            // overwrite oldest — no allocation
      head_ = (head_ + 1) % cap_;
      ++dropped_;
    } else {
      events_.push_back(ev);
    }
  }

  void instant(Time ts, NodeId node, const char* cat, const char* name,
               const char* k0 = nullptr, std::uint64_t v0 = 0,
               const char* k1 = nullptr, std::uint64_t v1 = 0) {
    TraceEvent ev;
    ev.ts = ts; ev.node = node; ev.cat = cat; ev.name = name;
    ev.k0 = k0; ev.v0 = v0; ev.k1 = k1; ev.v1 = v1;
    ev.ph = Ph::kInstant;
    record(ev);
  }

  void async(Ph ph, Time ts, NodeId node, std::uint64_t id, const char* cat,
             const char* name, const char* k0 = nullptr, std::uint64_t v0 = 0,
             const char* k1 = nullptr, std::uint64_t v1 = 0) {
    TraceEvent ev;
    ev.ts = ts; ev.node = node; ev.id = id; ev.cat = cat; ev.name = name;
    ev.k0 = k0; ev.v0 = v0; ev.k1 = k1; ev.v1 = v1;
    ev.ph = ph;
    record(ev);
  }

  void complete(Time ts, Duration dur, NodeId node, const char* cat,
                const char* name, const char* k0 = nullptr, std::uint64_t v0 = 0,
                const char* k1 = nullptr, std::uint64_t v1 = 0) {
    TraceEvent ev;
    ev.ts = ts; ev.dur = dur; ev.node = node; ev.cat = cat; ev.name = name;
    ev.k0 = k0; ev.v0 = v0; ev.k1 = k1; ev.v1 = v1;
    ev.ph = Ph::kComplete;
    record(ev);
  }

  /// Human-readable label for a node's track in the exported trace.
  void name_process(NodeId node, std::string name) {
    process_names_[node] = std::move(name);
  }

  /// Events in recording order (ring mode: oldest surviving first).
  [[nodiscard]] std::vector<TraceEvent> snapshot() const {
    if (mode_ != Mode::kRing || events_.size() < cap_ || head_ == 0)
      return events_;
    std::vector<TraceEvent> out;
    out.reserve(events_.size());
    out.insert(out.end(), events_.begin() + static_cast<std::ptrdiff_t>(head_),
               events_.end());
    out.insert(out.end(), events_.begin(),
               events_.begin() + static_cast<std::ptrdiff_t>(head_));
    return out;
  }

  [[nodiscard]] const std::map<NodeId, std::string>& process_names() const {
    return process_names_;
  }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] Mode mode() const { return mode_; }
  [[nodiscard]] std::size_t capacity() const { return cap_; }

  void clear() {
    events_.clear();
    head_ = 0;
    dropped_ = 0;
  }

 private:
  Mode mode_;
  std::size_t cap_;
  std::vector<TraceEvent> events_;
  std::size_t head_ = 0;       // ring mode: index of the oldest event
  std::uint64_t dropped_ = 0;  // ring mode: events overwritten
  std::map<NodeId, std::string> process_names_;
};

}  // namespace spider::obs
