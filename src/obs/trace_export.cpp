#include "obs/trace_export.hpp"

#include <cstdio>
#include <fstream>

namespace spider::obs {

namespace {

const char* phase_str(Ph ph) {
  switch (ph) {
    case Ph::kInstant: return "i";
    case Ph::kAsyncBegin: return "b";
    case Ph::kAsyncInstant: return "n";
    case Ph::kAsyncEnd: return "e";
    case Ph::kComplete: return "X";
  }
  return "i";
}

void append_escaped(std::string& out, const char* s) {
  for (; *s; ++s) {
    char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out += c;
    }
  }
}

}  // namespace

std::string chrome_trace_json(const Tracer& tracer, Time from, Time to) {
  std::string out;
  out.reserve(tracer.size() * 96 + 1024);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  char buf[192];
  bool first = true;
  auto comma = [&] {
    if (!first) out += ",\n";
    first = false;
  };
  // Process-name metadata first (sorted by node — process_names is a map).
  for (const auto& [node, name] : tracer.process_names()) {
    comma();
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"M\",\"pid\":%u,\"tid\":0,\"name\":\"process_name\","
                  "\"args\":{\"name\":\"",
                  node);
    out += buf;
    append_escaped(out, name.c_str());
    out += "\"}}";
  }
  for (const TraceEvent& ev : tracer.snapshot()) {
    if (ev.ts < from || ev.ts > to) continue;
    comma();
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"%s\",\"pid\":%u,\"tid\":0,\"ts\":%lld,\"cat\":\"",
                  phase_str(ev.ph), ev.node, static_cast<long long>(ev.ts));
    out += buf;
    append_escaped(out, ev.cat);
    out += "\",\"name\":\"";
    append_escaped(out, ev.name);
    out += '"';
    if (ev.ph == Ph::kComplete) {
      std::snprintf(buf, sizeof(buf), ",\"dur\":%lld",
                    static_cast<long long>(ev.dur));
      out += buf;
    }
    if (ev.ph == Ph::kAsyncBegin || ev.ph == Ph::kAsyncInstant ||
        ev.ph == Ph::kAsyncEnd) {
      std::snprintf(buf, sizeof(buf), ",\"id\":\"0x%llx\"",
                    static_cast<unsigned long long>(ev.id));
      out += buf;
    }
    if (ev.ph == Ph::kInstant) out += ",\"s\":\"t\"";  // thread-scoped instant
    if (ev.k0 || ev.k1) {
      out += ",\"args\":{";
      bool farg = true;
      if (ev.k0) {
        out += '"';
        append_escaped(out, ev.k0);
        std::snprintf(buf, sizeof(buf), "\":%llu",
                      static_cast<unsigned long long>(ev.v0));
        out += buf;
        farg = false;
      }
      if (ev.k1) {
        if (!farg) out += ',';
        out += '"';
        append_escaped(out, ev.k1);
        std::snprintf(buf, sizeof(buf), "\":%llu",
                      static_cast<unsigned long long>(ev.v1));
        out += buf;
      }
      out += '}';
    }
    out += '}';
  }
  out += "\n]}\n";
  return out;
}

bool write_chrome_trace(const Tracer& tracer, const std::string& path, Time from,
                        Time to) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  f << chrome_trace_json(tracer, from, to);
  return static_cast<bool>(f);
}

}  // namespace spider::obs
