// Chrome trace-event / Perfetto JSON exporter for obs::Tracer.
//
// The output is the "JSON Array Format" understood by chrome://tracing and
// https://ui.perfetto.dev: an object with a "traceEvents" array, one track
// (pid) per simulated node, async events correlated by hex id. Output is a
// pure function of the recorded events — byte-identical across seed
// replays.
#pragma once

#include <limits>
#include <string>

#include "common/time.hpp"
#include "obs/trace.hpp"

namespace spider::obs {

/// Serializes events with ts in [from, to] (simulated µs). Defaults export
/// everything; a flight-recorder dump passes from = now - window.
std::string chrome_trace_json(const Tracer& tracer, Time from = 0,
                              Time to = std::numeric_limits<Time>::max());

bool write_chrome_trace(const Tracer& tracer, const std::string& path,
                        Time from = 0,
                        Time to = std::numeric_limits<Time>::max());

}  // namespace spider::obs
