// Metrics registry: typed counters/gauges and fixed-memory log-bucketed
// histograms with {node, shard, role} labels.
//
// Design constraints (the flight-recorder PR's contract):
//   - deterministic: snapshots iterate metrics in sorted key order and
//     contain only values derived from simulated time / event counts, so a
//     seed replay produces byte-identical output;
//   - fixed memory: histograms are log-bucketed arrays (no sample
//     hoarding), safe to keep per node for million-op runs;
//   - mergeable: histograms (and whole registries) merge by bucket-count
//     addition, so per-node or per-shard stats aggregate exactly;
//   - JSON-lines snapshot compatible with the bench trajectory format of
//     bench/bench_json.hpp (one object per line, machine-appendable).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

namespace spider::obs {

/// Log-bucketed histogram over non-negative 64-bit values (HdrHistogram
/// style): each power-of-two octave is split into 2^kSubBits linear
/// sub-buckets, so any recorded value lands in a bucket whose width is at
/// most 2^-kSubBits of its magnitude.
///
/// Error bound: percentile() returns the midpoint of the selected bucket,
/// clamped to the exact [min, max] observed, so the relative error of any
/// reported quantile is at most 2^-(kSubBits+1) ~= 3.2% (values below
/// 2^(kSubBits+1) = 32 are bucketed exactly). Memory is a fixed ~7.6 KiB
/// regardless of sample count.
class LogHistogram {
 public:
  static constexpr int kSubBits = 4;
  static constexpr std::uint64_t kSubBuckets = 1ull << kSubBits;
  // Highest index: msb 63 -> ((63 - kSubBits) + 1) << kSubBits | (kSubBuckets - 1).
  static constexpr std::size_t kBuckets = ((64 - kSubBits) << kSubBits) + kSubBuckets;

  /// Bucket index of `v` (monotone in v; exact for v < 2 * kSubBuckets).
  static std::size_t bucket_index(std::uint64_t v);
  /// Smallest value mapping to bucket `i`.
  static std::uint64_t bucket_lower(std::size_t i);
  /// Number of distinct values mapping to bucket `i`.
  static std::uint64_t bucket_width(std::size_t i);

  void add(std::uint64_t v, std::uint64_t n = 1);
  void merge(const LogHistogram& other);
  void clear();

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  [[nodiscard]] std::uint64_t min() const { return count_ ? min_ : 0; }
  [[nodiscard]] std::uint64_t max() const { return count_ ? max_ : 0; }
  [[nodiscard]] double mean() const;

  /// Nearest-rank percentile (p in [0, 100]): the representative value of
  /// the bucket holding the ceil(p/100 * count)-th smallest sample,
  /// clamped to [min(), max()]. Deterministic integer arithmetic.
  [[nodiscard]] std::uint64_t percentile(double p) const;

  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const { return buckets_[i]; }

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~0ull;
  std::uint64_t max_ = 0;
};

/// Monotone event counter.
class Counter {
 public:
  void inc(std::uint64_t d = 1) { v_ += d; }
  [[nodiscard]] std::uint64_t value() const { return v_; }

 private:
  std::uint64_t v_ = 0;
};

/// Point-in-time signed value.
class Gauge {
 public:
  void set(std::int64_t v) { v_ = v; }
  void add(std::int64_t d) { v_ += d; }
  [[nodiscard]] std::int64_t value() const { return v_; }

 private:
  std::int64_t v_ = 0;
};

/// Metric labels. `role` must point at a string with static storage
/// duration (it is stored by value into the key on first use).
struct MetricLabels {
  std::uint32_t node = 0;
  std::uint32_t shard = 0;
  std::string_view role = {};
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Lookup-or-create. References stay valid for the registry's lifetime;
  /// hot paths should cache the returned pointer.
  Counter& counter(std::string_view name, MetricLabels labels = {});
  Gauge& gauge(std::string_view name, MetricLabels labels = {});
  LogHistogram& histogram(std::string_view name, MetricLabels labels = {},
                          std::string_view unit = "us");

  /// Adds every metric of `other` into this registry (counters add,
  /// gauges overwrite, histograms merge) — cross-node/shard aggregation.
  void merge_from(const MetricsRegistry& other);

  /// JSON-lines snapshot, one object per metric, sorted by
  /// (name, node, shard, role):
  ///   {"metric": ..., "type": "counter", "node": N, "shard": S,
  ///    "role": ..., "value": V}
  /// Histograms report count/min/max/mean/p50/p99/p999 plus their unit.
  [[nodiscard]] std::string snapshot_json() const;
  bool write_snapshot(const std::string& path) const;

  [[nodiscard]] std::size_t size() const { return metrics_.size(); }

 private:
  struct Key {
    std::string name;
    std::uint32_t node;
    std::uint32_t shard;
    std::string role;
    bool operator<(const Key& o) const {
      if (name != o.name) return name < o.name;
      if (node != o.node) return node < o.node;
      if (shard != o.shard) return shard < o.shard;
      return role < o.role;
    }
  };
  struct Entry {
    char type = 'c';  // 'c'ounter, 'g'auge, 'h'istogram
    std::unique_ptr<Counter> c;
    std::unique_ptr<Gauge> g;
    std::unique_ptr<LogHistogram> h;
    std::string unit;
  };

  Entry& entry(std::string_view name, const MetricLabels& labels, char type);

  std::map<Key, Entry> metrics_;
};

}  // namespace spider::obs
