// Baseline "HFT": hierarchical fault tolerance in the shape of Steward
// (Amir et al., paper §2.2 and Figure 1b).
//
// Each geographic site hosts a cluster of 3f+1 replicas. Site-internal
// rounds produce threshold-style certificates (f+1 partial signatures —
// our substitution for Shoup threshold RSA, same WAN message complexity),
// which turn each site into a logically crash-only entity. The wide-area
// protocol is leader-site based:
//
//   client -> local site: Update certificate        (local round)
//   local site rep -> leader site rep               (WAN)
//   leader site: Proposal certificate (assign seq)  (local round)
//   leader rep -> all site reps                     (WAN broadcast)
//   each site: Accept certificate                   (local round)
//   site reps exchange Accepts                      (WAN broadcast)
//   majority of site Accepts -> globally ordered -> execute + reply locally
//
// Simplifications vs. full Steward (documented in DESIGN.md): fixed site
// representatives, no hierarchical view changes, no state transfer — the
// baseline is evaluated fault-free, exactly as in the paper's latency
// experiments.
#pragma once

#include <map>
#include <memory>
#include <set>

#include "app/application.hpp"
#include "app/kvstore.hpp"
#include "sim/component.hpp"
#include "spider/client.hpp"
#include "spider/messages.hpp"

namespace spider {

struct HftConfig {
  std::vector<Region> site_regions = {Region::Virginia, Region::Oregon, Region::Ireland,
                                      Region::Tokyo};
  std::uint32_t f = 1;          // per-site Byzantine faults
  std::uint32_t leader_site = 0;
  std::function<std::unique_ptr<Application>()> make_app = [] {
    return std::make_unique<KvStore>();
  };
};

class HftSystem;

class HftReplica : public ComponentHost {
 public:
  HftReplica(World& world, NodeId self, Site site, std::uint32_t site_id,
             std::uint32_t index_in_site, const HftConfig& cfg,
             std::vector<std::vector<NodeId>> site_members,
             std::unique_ptr<Application> app);

  void on_message(NodeId from, BytesView data) override;

  [[nodiscard]] bool is_rep() const { return index_ == 0; }
  /// Steward uses (2f+1)-of-(3f+1) threshold signatures for site
  /// certificates; our certificate substitution keeps that quorum.
  [[nodiscard]] std::uint32_t threshold() const { return 2 * f_ + 1; }
  [[nodiscard]] SeqNr executed_seq() const { return executed_; }
  [[nodiscard]] const Application& app() const { return *app_; }

 private:
  // Wire message kinds within tags::kHft.
  enum class Kind : std::uint8_t {
    SignReq = 1,   // rep -> site replicas: please sign `statement`
    Partial = 2,   // replica -> rep: signature share
    Update = 3,    // site rep -> leader rep: update certificate + frame
    Proposal = 4,  // leader rep -> site reps: seq assignment certificate
    Accept = 5,    // site rep -> site reps: accept certificate
    Commit = 6,    // rep -> own site replicas: execute
  };

  struct PendingCert {
    Bytes statement;
    Bytes payload;                       // frame carried alongside
    std::map<NodeId, Bytes> sigs;        // collected partials
    bool completed = false;
  };

  void handle_client(NodeId from, Reader& r);
  void start_local_round(const Bytes& statement, const Bytes& payload);
  void handle_sign_req(NodeId from, Reader& r);
  void handle_partial(NodeId from, Reader& r);
  void on_certificate(const Bytes& statement, const Bytes& payload,
                      std::vector<std::pair<NodeId, Bytes>> sigs);
  void handle_update(NodeId from, Reader& r);
  void handle_proposal(NodeId from, Reader& r);
  void handle_accept(NodeId from, Reader& r);
  void handle_commit(NodeId from, Reader& r);
  void try_execute();
  void reply_to(NodeId client, std::uint64_t counter, BytesView result, bool weak);
  bool verify_cert(std::uint32_t site, BytesView statement,
                   const std::vector<std::pair<NodeId, Bytes>>& sigs);

  std::uint32_t site_id_;
  std::uint32_t index_;
  std::uint32_t f_;
  std::uint32_t leader_site_;
  std::vector<std::vector<NodeId>> sites_;  // members per site (index 0 = rep)
  std::unique_ptr<Application> app_;

  // Representative state.
  std::map<std::uint64_t, PendingCert> rounds_;  // statement key -> collection
  SeqNr next_seq_ = 1;                            // leader: next global seq
  struct Ordering {
    Bytes frame;
    std::uint32_t origin_site = 0;
    std::set<std::uint32_t> accepts;
    bool proposal_seen = false;
    bool committed = false;
  };
  std::map<SeqNr, Ordering> order_state_;

  // Execution state (all replicas).
  SeqNr executed_ = 0;
  std::map<SeqNr, std::pair<Bytes, std::uint32_t>> commit_buffer_;  // frame, origin
  std::map<NodeId, std::uint64_t> t_;
  std::map<NodeId, std::pair<std::uint64_t, Bytes>> replies_;
};

class HftSystem {
 public:
  HftSystem(World& world, HftConfig cfg);

  [[nodiscard]] std::size_t site_count() const { return sites_.size(); }
  HftReplica& replica(std::uint32_t site, std::uint32_t i) { return *sites_[site][i]; }

  /// Client info for the site nearest to `r` (2f+1... all 3f+1 site members;
  /// clients need f+1 matching replies).
  [[nodiscard]] ClientGroupInfo site_info(std::uint32_t site) const;
  [[nodiscard]] std::uint32_t nearest_site(Region r) const;
  std::unique_ptr<SpiderClient> make_client(Site site, Duration retry = 2 * kSecond);

 private:
  World& world_;
  HftConfig cfg_;
  std::vector<std::vector<std::unique_ptr<HftReplica>>> sites_;
};

}  // namespace spider
