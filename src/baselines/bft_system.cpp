#include "baselines/bft_system.hpp"

#include "sim/world.hpp"

namespace spider {

namespace {
Bytes tagged(std::uint32_t tag, BytesView inner) {
  Writer w;
  w.u32(tag);
  w.raw(inner);
  return std::move(w).take();
}

constexpr Duration kExecCost = 8;
}  // namespace

BftReplica::BftReplica(World& world, NodeId self, Site site, std::uint32_t index,
                       const BftConfig& cfg, std::vector<NodeId> all,
                       std::unique_ptr<Application> app)
    : ComponentHost(world, self, site), f_(cfg.f),
      checkpoint_interval_(cfg.checkpoint_interval), app_(std::move(app)) {
  PbftConfig pc;
  pc.replicas = std::move(all);
  pc.my_index = index;
  pc.f = cfg.f;
  pc.weights = cfg.weights;
  pc.quorum_weight = cfg.quorum_weight;
  pc.request_timeout = cfg.request_timeout;
  pc.view_change_timeout = cfg.view_change_timeout;
  pc.max_batch = cfg.max_batch;
  pc.batch_delay = cfg.batch_delay;
  pbft_ = std::make_unique<PbftReplica>(
      *this, pc,
      PbftReplica::BatchDeliverFn(
          [this](SeqNr first, const std::vector<Bytes>& batch) { on_deliver_batch(first, batch); }));
  // A-Validity: only order authenticated client requests.
  pbft_->validate = [this](BytesView wire) {
    try {
      Reader r(wire);
      ClientFrame frame = ClientFrame::decode(r);
      if (frame.req.kind == OpKind::WeakRead) return false;
      charge_verify();
      return crypto().verify(frame.req.client, tagged(tags::kClient, frame.req.encode()),
                             frame.signature);
    } catch (const SerdeError&) {
      return false;
    }
  };

  checkpointer_ = std::make_unique<Checkpointer>(
      *this, tags::kCheckpoint, pc.replicas, cfg.f,
      [this](SeqNr s, BytesView state) { on_stable_checkpoint(s, state); });
  checkpointer_->snapshot_now = [this] {
    last_cp_ = std::max(last_cp_, sn_);
    return std::make_pair(sn_, snapshot_state());
  };
}

void BftReplica::on_message(NodeId from, BytesView data) {
  try {
    Reader r(data);
    std::uint32_t tag = r.u32();
    if (tag == tags::kClient) {
      handle_client(from, r);
      return;
    }
  } catch (const SerdeError&) {
    return;
  }
  ComponentHost::on_message(from, data);
}

void BftReplica::handle_client(NodeId from, Reader& r) {
  BytesView all = r.raw(r.remaining());
  std::size_t mac_len = crypto().mac_size();
  if (all.size() <= mac_len) return;
  BytesView body = all.subspan(0, all.size() - mac_len);
  BytesView mac = all.subspan(all.size() - mac_len);
  charge_mac();
  if (!crypto().verify_mac(from, id(), tagged(tags::kClient, body), mac)) return;

  Reader br(body);
  ClientFrame frame = ClientFrame::decode(br);
  const ClientRequest& req = frame.req;
  if (req.client != from) return;

  if (req.kind == OpKind::WeakRead || req.kind == OpKind::StrongRead) {
    // PBFT optimized reads: answer directly from local state. Weak reads
    // need f+1 matching replies, strong reads 2f+1 (both requiring a WAN
    // quorum in this architecture — the point of paper Figure 8).
    charge(kExecCost);
    Bytes result = app_->execute_weak(req.op);
    reply_to(from, req.counter, result, true);
    return;
  }

  std::uint64_t& last = t_[req.client];
  if (req.counter <= last) {
    auto uit = replies_.find(req.client);
    if (uit != replies_.end() && uit->second.counter == req.counter) {
      reply_to(from, req.counter, uit->second.result, false);
    }
    return;
  }
  // Signature is re-checked in the consensus validator; ordering the raw
  // frame keeps the proposal identical across replicas.
  pbft_->order(to_bytes(body));
}

void BftReplica::on_deliver_batch(SeqNr first, const std::vector<Bytes>& batch) {
  if (first > sn_ + 1) {
    // Execution gap: the consensus floor jumped past instances we never
    // executed (a view change adopted peers' stable floor while this
    // replica trailed). Executing above the gap would silently diverge
    // from the group; hold the delivery back and recover the missing
    // prefix through a peer checkpoint instead.
    stash_[first] = batch;
    checkpointer_->fetch_cp(first - 1);
    return;
  }
  apply_batch(first, batch);
  drain_stash();
}

void BftReplica::apply_batch(SeqNr first, const std::vector<Bytes>& batch) {
  // Skip any head entries an adopted checkpoint already covers.
  const std::size_t skip = first <= sn_ ? static_cast<std::size_t>(sn_ + 1 - first) : 0;
  sn_ = std::max(sn_, first + static_cast<SeqNr>(batch.size()) - 1);
  for (std::size_t i = skip; i < batch.size(); ++i) execute_one(batch[i]);
  // `checkpoint_interval` counts logical requests; sn_ rests on a batch
  // boundary here, so checkpoints never land mid-batch.
  if (sn_ >= last_cp_ + checkpoint_interval_) {
    last_cp_ = sn_;
    checkpointer_->gen_cp(sn_, snapshot_state());
  }
}

void BftReplica::drain_stash() {
  while (!stash_.empty()) {
    auto it = stash_.begin();
    const SeqNr first = it->first;
    const SeqNr last = first + static_cast<SeqNr>(it->second.size()) - 1;
    if (last <= sn_) {
      stash_.erase(it);  // fully covered by an adopted checkpoint
      continue;
    }
    if (first > sn_ + 1) return;  // still gapped: wait for the checkpoint
    std::vector<Bytes> batch = std::move(it->second);
    stash_.erase(it);
    apply_batch(first, batch);
  }
}

void BftReplica::execute_one(const Bytes& request) {
  if (request.empty()) return;  // null request from a view change
  try {
    Reader r(request);
    ClientFrame frame = ClientFrame::decode(r);
    const ClientRequest& req = frame.req;
    std::uint64_t& last = t_[req.client];
    ReplyCacheEntry& e = replies_[req.client];
    if (req.counter <= e.counter) {
      if (req.counter == e.counter) reply_to(req.client, req.counter, e.result, false);
      return;
    }
    last = std::max(last, req.counter);
    charge(kExecCost);
    Bytes result = req.kind == OpKind::StrongRead ? app_->execute_readonly(req.op)
                                                  : app_->execute(req.op);
    e.counter = req.counter;
    e.result = std::move(result);
    reply_to(req.client, req.counter, e.result, false);
  } catch (const SerdeError&) {
    return;
  }
}

void BftReplica::reply_to(NodeId client, std::uint64_t counter, BytesView result, bool weak) {
  Bytes out = to_bytes(result);
  if (corrupt_replies) corrupt_reply_payload(out);  // see sim/byzantine.hpp
  ReplyMsg reply{counter, std::move(out), weak};
  Bytes body = reply.encode();
  charge_mac();
  Bytes mac = crypto().mac(id(), client, tagged(tags::kClient, body));
  Bytes wire = std::move(body);
  wire.insert(wire.end(), mac.begin(), mac.end());
  send_to(client, tagged(tags::kClient, wire));
}

Bytes BftReplica::snapshot_state() const {
  Writer w;
  w.u32(static_cast<std::uint32_t>(replies_.size()));
  for (const auto& [client, e] : replies_) {
    w.u32(client);
    w.u64(e.counter);
    w.bytes(e.result);
  }
  w.bytes(app_->snapshot());
  return std::move(w).take();
}

void BftReplica::on_stable_checkpoint(SeqNr s, BytesView state) {
  // Adopt BEFORE collecting garbage: gc() advances the floor and delivers
  // committed instances above it synchronously, so checking `s > sn_`
  // afterwards would see the post-gap sequence number and skip the
  // adoption — permanently losing the executions this replica missed
  // below s (state divergence).
  last_cp_ = std::max(last_cp_, s);
  if (s > sn_) {
    try {
      Reader r(state);
      std::uint32_t n = r.u32();
      std::map<NodeId, ReplyCacheEntry> replies;
      for (std::uint32_t i = 0; i < n; ++i) {
        NodeId c = r.u32();
        ReplyCacheEntry e;
        e.counter = r.u64();
        e.result = r.bytes();
        replies[c] = std::move(e);
      }
      app_->restore(r.bytes_view());
      replies_ = std::move(replies);
      for (const auto& [c, e] : replies_) t_[c] = std::max(t_[c], e.counter);
      sn_ = s;
      // Pending requests the checkpoint proves already executed must stop
      // driving view changes (we missed their commit while partitioned or
      // down; nothing will ever deliver them here again).
      pbft_->drop_pending_if([this](BytesView wire) {
        try {
          Reader fr(wire);
          ClientFrame frame = ClientFrame::decode(fr);
          auto it = t_.find(frame.req.client);
          return it != t_.end() && frame.req.counter <= it->second;
        } catch (const SerdeError&) {
          return false;
        }
      });
    } catch (const SerdeError&) {
    }
  }
  pbft_->gc(s + 1);
  drain_stash();
}

void BftReplica::recover() { checkpointer_->fetch_cp(1); }

void BftReplica::apply_byzantine(const ByzantineFlags& f) {
  corrupt_replies = f.corrupt_replies;
  pbft_->mute = f.mute;
  pbft_->mute_rx = f.mute_rx;
  pbft_->equivocate = f.equivocate;
  checkpointer_->forge_checkpoints = f.forge_checkpoints;
}

BftSystem::BftSystem(World& world, BftConfig cfg) : world_(world), cfg_(std::move(cfg)) {
  for (std::size_t i = 0; i < cfg_.sites.size(); ++i) ids_.push_back(world_.allocate_id());
  for (std::size_t i = 0; i < cfg_.sites.size(); ++i) {
    replicas_.push_back(std::make_unique<BftReplica>(world_, ids_[i], cfg_.sites[i],
                                                     static_cast<std::uint32_t>(i), cfg_, ids_,
                                                     cfg_.make_app()));
  }
}

std::vector<NodeId> BftSystem::replica_ids() const { return ids_; }

bool BftSystem::crash_node(NodeId id) {
  for (std::size_t i = 0; i < ids_.size(); ++i) {
    if (ids_[i] == id) {
      replicas_[i].reset();
      return true;
    }
  }
  return false;
}

bool BftSystem::restart_node(NodeId id) {
  for (std::size_t i = 0; i < ids_.size(); ++i) {
    if (ids_[i] == id) {
      if (!replicas_[i]) {
        replicas_[i] = std::make_unique<BftReplica>(world_, ids_[i], cfg_.sites[i],
                                                    static_cast<std::uint32_t>(i), cfg_, ids_,
                                                    cfg_.make_app());
        auto bit = byz_flags_.find(id);
        if (bit != byz_flags_.end() && bit->second.any()) {
          replicas_[i]->apply_byzantine(bit->second);
        }
        replicas_[i]->recover();
      }
      return true;
    }
  }
  return false;
}

bool BftSystem::set_byzantine(NodeId id, const ByzantineFlags& flags) {
  for (std::size_t i = 0; i < ids_.size(); ++i) {
    if (ids_[i] == id) {
      byz_flags_[id] = flags;
      if (replicas_[i]) replicas_[i]->apply_byzantine(flags);
      return true;
    }
  }
  return false;
}

bool BftSystem::is_crashed(NodeId id) const {
  for (std::size_t i = 0; i < ids_.size(); ++i) {
    if (ids_[i] == id) return replicas_[i] == nullptr;
  }
  return false;
}

ClientGroupInfo BftSystem::client_info() const {
  ClientGroupInfo info{0, replica_ids(), cfg_.f};
  info.direct_strong_reads = true;
  info.strong_quorum = 2 * cfg_.f + 1;
  return info;
}

std::unique_ptr<SpiderClient> BftSystem::make_client(Site site, Duration retry) {
  return std::make_unique<SpiderClient>(world_, site, client_info(), retry);
}

}  // namespace spider
