// Baseline "BFT": traditional geo-replicated PBFT (paper §5, Figure 1a).
//
// 3f+1 replicas, one per geographic site, run the full consensus protocol
// over wide-area links. Doubles as:
//   - BFT-WV (weighted voting, WHEAT-style) via `weights`/`quorum_weight`
//     with 3f+1+Δ replicas, and
//   - Spider-0E (agreement group that also executes, no IRMC) by placing
//     all replicas in availability zones of a single region.
//
// Clients reuse the SpiderClient (signed requests to all replicas, f+1
// matching replies; weak reads answered from local state).
#pragma once

#include <map>
#include <memory>

#include "app/application.hpp"
#include "app/kvstore.hpp"
#include "consensus/pbft_replica.hpp"
#include "sim/byzantine.hpp"
#include "spider/checkpointer.hpp"
#include "spider/client.hpp"
#include "spider/messages.hpp"

namespace spider {

struct BftConfig {
  std::vector<Site> sites;  // one replica per entry; index 0 = view-0 leader
  std::uint32_t f = 1;
  std::vector<std::uint32_t> weights = {};  // empty = classic
  std::uint32_t quorum_weight = 0;     // 0 = 2f+1
  std::uint64_t checkpoint_interval = 32;  // counts logical requests
  std::uint64_t max_batch = 1;             // requests per consensus instance
  Duration batch_delay = 0;                // max wait for a batch to fill
  Duration request_timeout = 2 * kSecond;
  Duration view_change_timeout = 4 * kSecond;
  std::function<std::unique_ptr<Application>()> make_app = [] {
    return std::make_unique<KvStore>();
  };
};

class BftReplica : public ComponentHost {
 public:
  BftReplica(World& world, NodeId self, Site site, std::uint32_t index, const BftConfig& cfg,
             std::vector<NodeId> all, std::unique_ptr<Application> app);

  void on_message(NodeId from, BytesView data) override;

  [[nodiscard]] SeqNr executed_seq() const { return sn_; }
  [[nodiscard]] const Application& app() const { return *app_; }
  PbftReplica& consensus() { return *pbft_; }

  /// Crash-recovery bootstrap: actively fetch the group's latest stable
  /// checkpoint instead of waiting for the next periodic broadcast (which
  /// may never come if client traffic stopped).
  void recover();

  /// Test hook: Byzantine replica that answers clients with corrupted
  /// results (must be outvoted by f+1 matching correct replies).
  bool corrupt_replies = false;

  /// Applies a Byzantine flag set (FaultPlan via BftSystem::set_byzantine).
  /// Baseline replicas both order and execute, so they honour the
  /// consensus-role flags (mute / mute_rx / equivocate / forge_checkpoints)
  /// *and* corrupt_replies; drop_forwarding has no counterpart here.
  void apply_byzantine(const ByzantineFlags& f);

 private:
  void handle_client(NodeId from, Reader& r);
  void on_deliver_batch(SeqNr first, const std::vector<Bytes>& batch);
  void apply_batch(SeqNr first, const std::vector<Bytes>& batch);
  void drain_stash();
  void execute_one(const Bytes& request);
  void reply_to(NodeId client, std::uint64_t counter, BytesView result, bool weak);
  Bytes snapshot_state() const;
  void on_stable_checkpoint(SeqNr s, BytesView state);

  std::uint32_t f_;
  std::uint64_t checkpoint_interval_;
  SeqNr last_cp_ = 0;
  std::unique_ptr<Application> app_;
  std::unique_ptr<PbftReplica> pbft_;
  std::unique_ptr<Checkpointer> checkpointer_;

  SeqNr sn_ = 0;
  std::map<NodeId, std::uint64_t> t_;  // latest ordered counter per client
  struct ReplyCacheEntry {
    std::uint64_t counter = 0;
    Bytes result;
  };
  std::map<NodeId, ReplyCacheEntry> replies_;
  /// Deliveries above an execution gap (the consensus floor jumped past
  /// instances this replica never executed, e.g. a view change while it
  /// trailed). Held back until a checkpoint covers the gap — executing
  /// them on stale state would silently diverge.
  std::map<SeqNr, std::vector<Bytes>> stash_;
};

class BftSystem {
 public:
  BftSystem(World& world, BftConfig cfg);

  [[nodiscard]] std::size_t size() const { return replicas_.size(); }
  BftReplica& replica(std::size_t i) { return *replicas_[i]; }
  [[nodiscard]] std::vector<NodeId> replica_ids() const;

  /// Client info: all replicas, f+1 matching replies.
  [[nodiscard]] ClientGroupInfo client_info() const;
  std::unique_ptr<SpiderClient> make_client(Site site, Duration retry = 2 * kSecond);

  // ---- crash-recovery (FaultPlan hooks) ----------------------------------
  /// Destroys / rebuilds the replica process with this id (same semantics
  /// as SpiderSystem: volatile state is lost, recovery happens through the
  /// checkpoint protocol and PBFT view rejoin).
  bool crash_node(NodeId id);
  bool restart_node(NodeId id);
  [[nodiscard]] bool is_crashed(NodeId id) const;

  // ---- Byzantine fault injection (FaultPlan hooks) -----------------------
  /// Applies a Byzantine flag set to the replica with this id. Flags
  /// persist across crash_node/restart_node — a rebuilt process resumes
  /// its scheduled misbehaviour — and are cleared by applying a
  /// default-constructed set. Returns false for unknown ids.
  bool set_byzantine(NodeId id, const ByzantineFlags& flags);

 private:
  World& world_;
  BftConfig cfg_;
  std::vector<NodeId> ids_;
  std::vector<std::unique_ptr<BftReplica>> replicas_;
  std::map<NodeId, ByzantineFlags> byz_flags_;
};

}  // namespace spider
