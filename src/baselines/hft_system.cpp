#include "baselines/hft_system.hpp"

#include <algorithm>

#include "crypto/sha256.hpp"
#include "sim/world.hpp"
#include "spider/system.hpp"

namespace spider {

namespace {
Bytes tagged(std::uint32_t tag, BytesView inner) {
  Writer w;
  w.u32(tag);
  w.raw(inner);
  return std::move(w).take();
}

constexpr Duration kExecCost = 8;

void write_cert(Writer& w, const std::vector<std::pair<NodeId, Bytes>>& sigs) {
  w.u32(static_cast<std::uint32_t>(sigs.size()));
  for (const auto& [node, sig] : sigs) {
    w.u32(node);
    w.bytes(sig);
  }
}

std::vector<std::pair<NodeId, Bytes>> read_cert(Reader& r) {
  std::uint32_t n = r.u32();
  std::vector<std::pair<NodeId, Bytes>> sigs;
  sigs.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    NodeId node = r.u32();
    sigs.emplace_back(node, r.bytes());
  }
  return sigs;
}
}  // namespace

HftReplica::HftReplica(World& world, NodeId self, Site site, std::uint32_t site_id,
                       std::uint32_t index_in_site, const HftConfig& cfg,
                       std::vector<std::vector<NodeId>> site_members,
                       std::unique_ptr<Application> app)
    : ComponentHost(world, self, site), site_id_(site_id), index_(index_in_site), f_(cfg.f),
      leader_site_(cfg.leader_site), sites_(std::move(site_members)), app_(std::move(app)) {}

// ------------------------------------------------------------------ plumbing

void HftReplica::on_message(NodeId from, BytesView data) {
  try {
    Reader r(data);
    std::uint32_t tag = r.u32();
    if (tag == tags::kClient) {
      handle_client(from, r);
      return;
    }
    if (tag != tags::kHft) return;

    BytesView all = r.raw(r.remaining());
    std::size_t mac_len = crypto().mac_size();
    if (all.size() <= mac_len) return;
    BytesView body = all.subspan(0, all.size() - mac_len);
    BytesView mac = all.subspan(all.size() - mac_len);
    charge_mac();
    if (!crypto().verify_mac(from, id(), tagged(tags::kHft, body), mac)) return;

    Reader br(body);
    auto kind = static_cast<Kind>(br.u8());
    switch (kind) {
      case Kind::SignReq: handle_sign_req(from, br); break;
      case Kind::Partial: handle_partial(from, br); break;
      case Kind::Update: handle_update(from, br); break;
      case Kind::Proposal: handle_proposal(from, br); break;
      case Kind::Accept: handle_accept(from, br); break;
      case Kind::Commit: handle_commit(from, br); break;
      default: break;
    }
  } catch (const SerdeError&) {
    // drop malformed
  }
}

namespace {
Bytes hft_frame(CryptoProvider& crypto, NodeId from, NodeId to, BytesView body) {
  Writer dom;
  dom.u32(tags::kHft);
  dom.raw(body);
  Bytes mac = crypto.mac(from, to, dom.data());
  Bytes wire = to_bytes(body);
  wire.insert(wire.end(), mac.begin(), mac.end());
  Writer outer;
  outer.u32(tags::kHft);
  outer.raw(wire);
  return std::move(outer).take();
}
}  // namespace

bool HftReplica::verify_cert(std::uint32_t site, BytesView statement,
                             const std::vector<std::pair<NodeId, Bytes>>& sigs) {
  if (site >= sites_.size()) return false;
  if (sigs.size() < threshold()) return false;
  std::set<NodeId> seen;
  std::uint32_t valid = 0;
  Bytes dom = tagged(tags::kHft, statement);
  for (const auto& [node, sig] : sigs) {
    if (seen.count(node)) continue;
    if (std::find(sites_[site].begin(), sites_[site].end(), node) == sites_[site].end()) {
      continue;
    }
    charge_verify();
    if (!crypto().verify(node, dom, sig)) continue;
    seen.insert(node);
    ++valid;
  }
  return valid >= threshold();
}

// ------------------------------------------------------------------ client

void HftReplica::handle_client(NodeId from, Reader& r) {
  BytesView all = r.raw(r.remaining());
  std::size_t mac_len = crypto().mac_size();
  if (all.size() <= mac_len) return;
  BytesView body = all.subspan(0, all.size() - mac_len);
  BytesView mac = all.subspan(all.size() - mac_len);
  charge_mac();
  if (!crypto().verify_mac(from, id(), tagged(tags::kClient, body), mac)) return;

  Reader br(body);
  ClientFrame frame = ClientFrame::decode(br);
  const ClientRequest& req = frame.req;
  if (req.client != from) return;

  if (req.kind == OpKind::WeakRead) {
    charge(kExecCost);
    Bytes result = app_->execute_weak(req.op);
    reply_to(from, req.counter, result, true);
    return;
  }

  std::uint64_t& last = t_[req.client];
  if (req.counter <= last) {
    auto uit = replies_.find(req.client);
    if (uit != replies_.end() && uit->second.first == req.counter) {
      reply_to(from, req.counter, uit->second.second, false);
    }
    return;
  }

  if (!is_rep()) return;  // only the site representative initiates ordering

  charge_verify();
  if (!crypto().verify(req.client, tagged(tags::kClient, req.encode()), frame.signature)) return;
  last = req.counter;

  // Local round: threshold-certify <Update, site, h(frame)>.
  charge_hash(body.size());
  Sha256Digest h = hash_cached(body);
  Writer st;
  st.u8(static_cast<std::uint8_t>(Kind::Update));
  st.u32(site_id_);
  st.raw(BytesView(h.data(), h.size()));
  start_local_round(std::move(st).take(), to_bytes(body));
}

// ------------------------------------------------------- local threshold round

void HftReplica::start_local_round(const Bytes& statement, const Bytes& payload) {
  std::uint64_t key = digest_prefix(Sha256::hash(statement));
  PendingCert& round = rounds_[key];
  if (round.completed) return;
  round.statement = statement;
  round.payload = payload;

  charge_sign();
  round.sigs[id()] = crypto().sign(id(), tagged(tags::kHft, statement));

  Writer w;
  w.u8(static_cast<std::uint8_t>(Kind::SignReq));
  w.bytes(statement);
  w.bytes(payload);
  Bytes body = std::move(w).take();
  for (NodeId n : sites_[site_id_]) {
    if (n == id()) continue;
    send_to(n, hft_frame(crypto(), id(), n, body));
  }
  if (round.sigs.size() >= threshold()) {
    round.completed = true;
    std::vector<std::pair<NodeId, Bytes>> sigs(round.sigs.begin(), round.sigs.end());
    on_certificate(round.statement, round.payload, std::move(sigs));
  }
}

void HftReplica::handle_sign_req(NodeId from, Reader& r) {
  if (from != sites_[site_id_][0]) return;  // only our representative
  Bytes statement = r.bytes();
  Bytes payload = r.bytes();
  if (statement.empty()) return;

  // For updates, replicas independently validate the client request so a
  // Byzantine representative cannot certify forged requests.
  if (static_cast<Kind>(statement[0]) == Kind::Update && !payload.empty()) {
    try {
      Reader fr(payload);
      ClientFrame frame = ClientFrame::decode(fr);
      charge_verify();
      if (!crypto().verify(frame.req.client, tagged(tags::kClient, frame.req.encode()),
                           frame.signature)) {
        return;
      }
    } catch (const SerdeError&) {
      return;
    }
  }

  charge_sign();
  Bytes sig = crypto().sign(id(), tagged(tags::kHft, statement));
  Writer w;
  w.u8(static_cast<std::uint8_t>(Kind::Partial));
  w.bytes(statement);
  w.bytes(sig);
  Bytes body = std::move(w).take();
  send_to(from, hft_frame(crypto(), id(), from, body));
}

void HftReplica::handle_partial(NodeId from, Reader& r) {
  if (!is_rep()) return;
  if (std::find(sites_[site_id_].begin(), sites_[site_id_].end(), from) ==
      sites_[site_id_].end()) {
    return;
  }
  Bytes statement = r.bytes();
  Bytes sig = r.bytes();
  charge_verify();
  if (!crypto().verify(from, tagged(tags::kHft, statement), sig)) return;

  std::uint64_t key = digest_prefix(Sha256::hash(statement));
  auto it = rounds_.find(key);
  if (it == rounds_.end() || it->second.completed) return;
  it->second.sigs[from] = std::move(sig);
  if (it->second.sigs.size() >= threshold()) {
    it->second.completed = true;
    std::vector<std::pair<NodeId, Bytes>> sigs(it->second.sigs.begin(), it->second.sigs.end());
    sigs.resize(threshold());
    on_certificate(it->second.statement, it->second.payload, std::move(sigs));
  }
}

// ------------------------------------------------------------ wide-area steps

void HftReplica::on_certificate(const Bytes& statement, const Bytes& payload,
                                std::vector<std::pair<NodeId, Bytes>> sigs) {
  auto kind = static_cast<Kind>(statement[0]);
  if (kind == Kind::Update) {
    Writer w;
    w.u8(static_cast<std::uint8_t>(Kind::Update));
    w.bytes(statement);
    w.bytes(payload);
    write_cert(w, sigs);
    Bytes body = std::move(w).take();
    NodeId leader_rep = sites_[leader_site_][0];
    if (leader_rep == id()) {
      Reader br(body);
      br.u8();
      handle_update(id(), br);
    } else {
      send_to(leader_rep, hft_frame(crypto(), id(), leader_rep, body));
    }
  } else if (kind == Kind::Proposal) {
    Writer w;
    w.u8(static_cast<std::uint8_t>(Kind::Proposal));
    w.bytes(statement);
    w.bytes(payload);
    write_cert(w, sigs);
    Bytes body = std::move(w).take();
    for (std::uint32_t s = 0; s < sites_.size(); ++s) {
      NodeId rep = sites_[s][0];
      if (rep == id()) {
        Reader br(body);
        br.u8();
        handle_proposal(id(), br);
      } else {
        send_to(rep, hft_frame(crypto(), id(), rep, body));
      }
    }
  } else if (kind == Kind::Accept) {
    Writer w;
    w.u8(static_cast<std::uint8_t>(Kind::Accept));
    w.bytes(statement);
    write_cert(w, sigs);
    Bytes body = std::move(w).take();
    for (std::uint32_t s = 0; s < sites_.size(); ++s) {
      NodeId rep = sites_[s][0];
      if (rep == id()) {
        Reader br(body);
        br.u8();
        handle_accept(id(), br);
      } else {
        send_to(rep, hft_frame(crypto(), id(), rep, body));
      }
    }
  }
}

void HftReplica::handle_update(NodeId /*from*/, Reader& r) {
  if (id() != sites_[leader_site_][0]) return;  // leader-site representative only
  Bytes statement = r.bytes();
  Bytes frame = r.bytes();
  std::vector<std::pair<NodeId, Bytes>> sigs = read_cert(r);

  Reader sr(statement);
  sr.u8();
  std::uint32_t origin = sr.u32();
  if (!verify_cert(origin, statement, sigs)) return;

  SeqNr seq = next_seq_++;
  Ordering& o = order_state_[seq];
  o.frame = frame;
  o.origin_site = origin;

  charge_hash(frame.size());
  Sha256Digest h = Sha256::hash(frame);
  Writer st;
  st.u8(static_cast<std::uint8_t>(Kind::Proposal));
  st.u64(seq);
  st.u32(origin);
  st.raw(BytesView(h.data(), h.size()));
  start_local_round(std::move(st).take(), frame);
}

void HftReplica::handle_proposal(NodeId /*from*/, Reader& r) {
  if (!is_rep()) return;
  Bytes statement = r.bytes();
  Bytes frame = r.bytes();
  std::vector<std::pair<NodeId, Bytes>> sigs = read_cert(r);
  if (!verify_cert(leader_site_, statement, sigs)) return;

  Reader sr(statement);
  sr.u8();
  SeqNr seq = sr.u64();
  std::uint32_t origin = sr.u32();

  Ordering& o = order_state_[seq];
  if (o.proposal_seen) return;
  o.proposal_seen = true;
  o.frame = frame;
  o.origin_site = origin;
  o.accepts.insert(leader_site_);  // the proposal is the leader site's vote

  charge_hash(frame.size());
  Sha256Digest h = Sha256::hash(frame);
  Writer st;
  st.u8(static_cast<std::uint8_t>(Kind::Accept));
  st.u32(site_id_);
  st.u64(seq);
  st.raw(BytesView(h.data(), h.size()));
  start_local_round(std::move(st).take(), {});
  try_execute();
}

void HftReplica::handle_accept(NodeId /*from*/, Reader& r) {
  if (!is_rep()) return;
  Bytes statement = r.bytes();
  std::vector<std::pair<NodeId, Bytes>> sigs = read_cert(r);

  Reader sr(statement);
  sr.u8();
  std::uint32_t site = sr.u32();
  SeqNr seq = sr.u64();
  if (!verify_cert(site, statement, sigs)) return;

  order_state_[seq].accepts.insert(site);
  try_execute();
}

void HftReplica::try_execute() {
  const std::size_t majority = sites_.size() / 2 + 1;
  while (true) {
    auto it = order_state_.find(executed_ + 1);
    if (it == order_state_.end()) return;
    Ordering& o = it->second;
    if (o.committed) return;
    if (!o.proposal_seen || o.accepts.size() < majority) return;
    o.committed = true;

    // Distribute within the site and execute locally.
    Writer w;
    w.u8(static_cast<std::uint8_t>(Kind::Commit));
    w.u64(it->first);
    w.bytes(o.frame);
    w.u32(o.origin_site);
    Bytes body = std::move(w).take();
    for (NodeId n : sites_[site_id_]) {
      if (n == id()) continue;
      send_to(n, hft_frame(crypto(), id(), n, body));
    }
    Reader br(body);
    br.u8();
    handle_commit(id(), br);
  }
}

void HftReplica::handle_commit(NodeId from, Reader& r) {
  if (from != sites_[site_id_][0] && from != id()) return;  // own representative
  SeqNr seq = r.u64();
  Bytes frame = r.bytes();
  std::uint32_t origin = r.u32();
  if (seq <= executed_) return;
  commit_buffer_[seq] = {std::move(frame), origin};

  while (true) {
    auto it = commit_buffer_.find(executed_ + 1);
    if (it == commit_buffer_.end()) return;
    executed_ = it->first;
    try {
      Reader fr(it->second.first);
      ClientFrame cf = ClientFrame::decode(fr);
      const ClientRequest& req = cf.req;
      auto& cached = replies_[req.client];
      if (req.counter > cached.first) {
        charge(kExecCost);
        Bytes result = req.kind == OpKind::StrongRead ? app_->execute_readonly(req.op)
                                                      : app_->execute(req.op);
        cached = {req.counter, std::move(result)};
        t_[req.client] = std::max(t_[req.client], req.counter);
        if (it->second.second == site_id_) {
          reply_to(req.client, req.counter, cached.second, false);
        }
      }
    } catch (const SerdeError&) {
    }
    commit_buffer_.erase(it);
  }
}

void HftReplica::reply_to(NodeId client, std::uint64_t counter, BytesView result, bool weak) {
  ReplyMsg reply{counter, to_bytes(result), weak};
  Bytes body = reply.encode();
  charge_mac();
  Bytes mac = crypto().mac(id(), client, tagged(tags::kClient, body));
  Bytes wire = std::move(body);
  wire.insert(wire.end(), mac.begin(), mac.end());
  send_to(client, tagged(tags::kClient, wire));
}

// ------------------------------------------------------------------ system

HftSystem::HftSystem(World& world, HftConfig cfg) : world_(world), cfg_(std::move(cfg)) {
  const std::size_t per_site = 3 * cfg_.f + 1;
  std::vector<std::vector<NodeId>> members(cfg_.site_regions.size());
  for (std::size_t s = 0; s < cfg_.site_regions.size(); ++s) {
    for (std::size_t i = 0; i < per_site; ++i) members[s].push_back(world_.allocate_id());
  }
  sites_.resize(cfg_.site_regions.size());
  for (std::size_t s = 0; s < cfg_.site_regions.size(); ++s) {
    std::vector<Site> placement = geo_replica_sites(cfg_.site_regions[s], per_site);
    for (std::size_t i = 0; i < per_site; ++i) {
      sites_[s].push_back(std::make_unique<HftReplica>(
          world_, members[s][i], placement[i], static_cast<std::uint32_t>(s),
          static_cast<std::uint32_t>(i), cfg_, members, cfg_.make_app()));
    }
  }
}

ClientGroupInfo HftSystem::site_info(std::uint32_t site) const {
  ClientGroupInfo info;
  info.group = site;
  info.fe = cfg_.f;
  for (const auto& r : sites_[site]) info.members.push_back(r->id());
  return info;
}

std::uint32_t HftSystem::nearest_site(Region r) const {
  std::uint32_t best = 0;
  Duration best_rtt = region_rtt(r, cfg_.site_regions[0]);
  for (std::uint32_t s = 1; s < cfg_.site_regions.size(); ++s) {
    Duration rtt = region_rtt(r, cfg_.site_regions[s]);
    if (rtt < best_rtt) {
      best = s;
      best_rtt = rtt;
    }
  }
  return best;
}

std::unique_ptr<SpiderClient> HftSystem::make_client(Site site, Duration retry) {
  return std::make_unique<SpiderClient>(world_, site, site_info(nearest_site(site.region)),
                                        retry);
}

}  // namespace spider
