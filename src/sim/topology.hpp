// Geographic topology modeled on Amazon EC2: regions, availability zones
// and an inter-region RTT matrix (public measurements, rounded).
#pragma once

#include <cstdint>
#include <string>

#include "common/time.hpp"

namespace spider {

enum class Region : std::uint8_t {
  Virginia = 0,   // us-east-1    (agreement group home in the paper)
  Oregon = 1,     // us-west-2
  Ireland = 2,    // eu-west-1
  Tokyo = 3,      // ap-northeast-1
  SaoPaulo = 4,   // sa-east-1    (joins in the adaptability experiment)
  Ohio = 5,       // us-east-2    (extra fault domain for f=2)
  California = 6, // us-west-1
  London = 7,     // eu-west-2
  Seoul = 8,      // ap-northeast-2
};
constexpr int kNumRegions = 9;

const char* region_name(Region r);
/// One-letter code used in the paper's figures (V, O, I, T, ...).
const char* region_code(Region r);

/// Placement of a node: region + availability zone index within the region.
struct Site {
  Region region = Region::Virginia;
  std::uint8_t az = 0;

  bool operator==(const Site&) const = default;
};

/// Round-trip time between two *regions* (microseconds). Zero if identical.
Duration region_rtt(Region a, Region b);

/// One-way base latency between two sites: half the region RTT, or the
/// AZ-level latency when the regions match (inter-AZ ~ 1.2 ms RTT,
/// intra-AZ ~ 0.4 ms RTT).
Duration one_way_latency(const Site& a, const Site& b);

/// True if the two sites are in different regions (a wide-area link).
inline bool is_wan(const Site& a, const Site& b) { return a.region != b.region; }

}  // namespace spider
