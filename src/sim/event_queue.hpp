// Discrete-event scheduler with a virtual microsecond clock.
//
// Events at equal timestamps run in scheduling order (FIFO), which makes
// whole-system runs fully deterministic for a given seed.
//
// Implementation: a flat 4-ary min-heap ordered by (time, event id). Ids
// are allocated monotonically and never reused, so the id doubles as both
// the FIFO tie-break at equal timestamps (exactly the order the previous
// std::map<pair<Time, EventId>> implementation produced — seed replay stays
// byte-identical) and as the generation counter for lazy cancellation: a
// cancel of an id that already fired is a guaranteed no-op because that
// generation has left `pending_` forever. Cancelled entries stay in the
// heap as tombstones until they surface (O(1) cancel); to bound heap
// garbage the heap is compacted in place whenever more than half of it is
// dead.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/time.hpp"

namespace spider {

class EventQueue {
 public:
  using Fn = std::function<void()>;
  using EventId = std::uint64_t;
  static constexpr EventId kInvalidEvent = 0;

  /// Schedules `fn` at absolute time `at` (clamped to now). Returns an id
  /// usable with cancel(). Amortized O(1): a new event later than
  /// everything pending (the common case) never sifts.
  EventId schedule_at(Time at, Fn fn);
  /// Schedules `fn` after `delay` from now.
  EventId schedule_after(Duration delay, Fn fn) { return schedule_at(now_ + delay, std::move(fn)); }

  /// Cancels a pending event; no-op if already fired or cancelled. O(1):
  /// the heap entry becomes a tombstone swept out lazily.
  void cancel(EventId id);

  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] bool empty() const { return pending_.empty(); }
  [[nodiscard]] std::size_t pending() const { return pending_.size(); }
  /// Heap slots currently occupied (live + tombstones); the compaction
  /// invariant keeps this below 2x pending() + a small constant. Backed by
  /// an atomic mirror of heap_.size() so observers on other threads (bench
  /// progress monitors, the parallel runtime's diagnostics) can sample it
  /// without racing the scheduler.
  [[nodiscard]] std::size_t heap_slots() const {
    return heap_slots_.load(std::memory_order_relaxed);
  }

  // Lifetime scheduler counters. Relaxed atomics: all writes happen on the
  // scheduler thread on paths that already touch pending_ (the hot-loop
  // cost is noise), but cross-thread readers get tear-free values. Exported
  // via World::refresh_platform_metrics().
  [[nodiscard]] std::uint64_t scheduled_total() const {
    return scheduled_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t fired_total() const {
    return fired_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t cancelled_total() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Timestamp of the earliest live event, or nullopt when none is
  /// pending. Sweeps tombstones off the root (behaviour-neutral); realtime
  /// drivers use this to bound how long they may block on socket readiness.
  [[nodiscard]] std::optional<Time> next_time();

  /// Runs the earliest event; returns false if none pending.
  bool run_next();
  /// Runs all events with time <= t, then sets now() = t.
  void run_until(Time t);
  void run_for(Duration d) { run_until(now_ + d); }
  /// Runs until the queue drains or `max_events` were processed.
  void run_all(std::size_t max_events = 100'000'000);

 private:
  struct Entry {
    Time at;
    EventId id;
    Fn fn;
  };
  static bool before(const Entry& a, const Entry& b) {
    return a.at < b.at || (a.at == b.at && a.id < b.id);
  }
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  /// Pops dead entries off the root until the minimum is live (or empty).
  void drop_dead_root();
  void pop_root();
  void maybe_compact();

  /// Keeps heap_slots_ in sync after any heap_ size change.
  void sync_heap_slots() { heap_slots_.store(heap_.size(), std::memory_order_relaxed); }

  Time now_ = 0;
  EventId next_id_ = 1;
  std::atomic<std::uint64_t> scheduled_{0};
  std::atomic<std::uint64_t> fired_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<std::size_t> heap_slots_{0};
  std::vector<Entry> heap_;
  std::unordered_set<EventId> pending_;  // live (scheduled, not yet fired/cancelled)
};

}  // namespace spider
