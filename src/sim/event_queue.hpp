// Discrete-event scheduler with a virtual microsecond clock.
//
// Events at equal timestamps run in scheduling order (FIFO), which makes
// whole-system runs fully deterministic for a given seed.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>

#include "common/time.hpp"

namespace spider {

class EventQueue {
 public:
  using Fn = std::function<void()>;
  using EventId = std::uint64_t;
  static constexpr EventId kInvalidEvent = 0;

  /// Schedules `fn` at absolute time `at` (clamped to now). Returns an id
  /// usable with cancel().
  EventId schedule_at(Time at, Fn fn);
  /// Schedules `fn` after `delay` from now.
  EventId schedule_after(Duration delay, Fn fn) { return schedule_at(now_ + delay, std::move(fn)); }

  /// Cancels a pending event; no-op if already fired or cancelled.
  void cancel(EventId id);

  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t pending() const { return events_.size(); }

  /// Runs the earliest event; returns false if none pending.
  bool run_next();
  /// Runs all events with time <= t, then sets now() = t.
  void run_until(Time t);
  void run_for(Duration d) { run_until(now_ + d); }
  /// Runs until the queue drains or `max_events` were processed.
  void run_all(std::size_t max_events = 100'000'000);

 private:
  using Key = std::pair<Time, EventId>;
  Time now_ = 0;
  EventId next_id_ = 1;
  std::map<Key, Fn> events_;
  std::map<EventId, Time> index_;
};

}  // namespace spider
