#include "sim/event_queue.hpp"

namespace spider {

EventQueue::EventId EventQueue::schedule_at(Time at, Fn fn) {
  if (at < now_) at = now_;
  EventId id = next_id_++;
  events_.emplace(Key{at, id}, std::move(fn));
  index_.emplace(id, at);
  return id;
}

void EventQueue::cancel(EventId id) {
  auto it = index_.find(id);
  if (it == index_.end()) return;
  events_.erase(Key{it->second, id});
  index_.erase(it);
}

bool EventQueue::run_next() {
  if (events_.empty()) return false;
  auto it = events_.begin();
  now_ = it->first.first;
  Fn fn = std::move(it->second);
  index_.erase(it->first.second);
  events_.erase(it);
  fn();
  return true;
}

void EventQueue::run_until(Time t) {
  while (!events_.empty() && events_.begin()->first.first <= t) run_next();
  if (now_ < t) now_ = t;
}

void EventQueue::run_all(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && run_next()) ++n;
}

}  // namespace spider
