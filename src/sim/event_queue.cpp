#include "sim/event_queue.hpp"

#include <algorithm>

namespace spider {

// 4-ary layout: children of i are 4i+1 .. 4i+4, parent is (i-1)/4. The
// wider fan-out halves the tree depth vs a binary heap, and sift moves are
// mostly std::function pointer swaps on a contiguous vector.

void EventQueue::sift_up(std::size_t i) {
  Entry e = std::move(heap_[i]);
  while (i > 0) {
    std::size_t parent = (i - 1) / 4;
    if (!before(e, heap_[parent])) break;
    heap_[i] = std::move(heap_[parent]);
    i = parent;
  }
  heap_[i] = std::move(e);
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  Entry e = std::move(heap_[i]);
  for (;;) {
    std::size_t best = 4 * i + 1;
    if (best >= n) break;
    std::size_t last = std::min(best + 4, n);
    for (std::size_t c = best + 1; c < last; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], e)) break;
    heap_[i] = std::move(heap_[best]);
    i = best;
  }
  heap_[i] = std::move(e);
}

void EventQueue::pop_root() {
  heap_.front() = std::move(heap_.back());
  heap_.pop_back();
  sync_heap_slots();
  if (!heap_.empty()) sift_down(0);
}

void EventQueue::drop_dead_root() {
  while (!heap_.empty() && pending_.find(heap_.front().id) == pending_.end()) pop_root();
}

EventQueue::EventId EventQueue::schedule_at(Time at, Fn fn) {
  if (at < now_) at = now_;
  EventId id = next_id_++;
  heap_.push_back(Entry{at, id, std::move(fn)});
  sync_heap_slots();
  sift_up(heap_.size() - 1);
  pending_.insert(id);
  scheduled_.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void EventQueue::cancel(EventId id) {
  // Ids are generations: one that already fired (or was never issued) is
  // absent from pending_, so a stale cancel can never kill a later event.
  if (pending_.erase(id) == 0) return;
  cancelled_.fetch_add(1, std::memory_order_relaxed);
  maybe_compact();
}

void EventQueue::maybe_compact() {
  // Compact when more than half the heap is tombstones, so cancelled
  // entries cannot accumulate beyond 2x the live set.
  if (heap_.size() < 64 || pending_.size() * 2 >= heap_.size()) return;
  std::size_t w = 0;
  for (std::size_t r = 0; r < heap_.size(); ++r) {
    if (pending_.find(heap_[r].id) == pending_.end()) continue;
    if (w != r) heap_[w] = std::move(heap_[r]);
    ++w;
  }
  heap_.resize(w);
  sync_heap_slots();
  // Floyd heap construction: sift down from the last parent.
  for (std::size_t i = heap_.size() / 4 + 1; i-- > 0;) {
    if (i < heap_.size()) sift_down(i);
  }
}

std::optional<Time> EventQueue::next_time() {
  drop_dead_root();
  if (heap_.empty()) return std::nullopt;
  return heap_.front().at;
}

bool EventQueue::run_next() {
  drop_dead_root();
  if (heap_.empty()) return false;
  now_ = heap_.front().at;
  EventId id = heap_.front().id;
  Fn fn = std::move(heap_.front().fn);
  pop_root();
  pending_.erase(id);
  fired_.fetch_add(1, std::memory_order_relaxed);
  fn();
  return true;
}

void EventQueue::run_until(Time t) {
  for (;;) {
    drop_dead_root();
    if (heap_.empty() || heap_.front().at > t) break;
    run_next();
  }
  if (now_ < t) now_ = t;
}

void EventQueue::run_all(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && run_next()) ++n;
}

}  // namespace spider
