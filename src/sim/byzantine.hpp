// Per-replica Byzantine behaviour toggles.
//
// FaultPlan composes timed Byzantine windows into one flag set per NodeId
// and pushes it through a system's set_byzantine hook whenever the merged
// state changes. Which fields apply depends on the replica's role:
// execution replicas honour corrupt_replies / drop_forwarding /
// forge_checkpoints, consensus-running replicas (Spider agreement, PBFT
// baseline) honour mute / mute_rx / equivocate / forge_checkpoints, and
// PBFT-baseline replicas — which both order and execute — honour
// corrupt_replies as well. Flags a replica has no behaviour for are
// silently ignored, so one schedule vocabulary covers every deployment.
#pragma once

#include "common/bytes.hpp"

namespace spider {

struct ByzantineFlags {
  /// Client replies carry a tampered value (must be outvoted by f+1
  /// matching correct replies; f+1 corruptors are the checker's canary).
  bool corrupt_replies = false;
  /// Silently refuse to forward client requests into the request channel.
  bool drop_forwarding = false;
  /// Fail-silent consensus: stop sending protocol messages.
  bool mute = false;
  /// Fully-isolated Byzantine node: also drop inbound protocol handling.
  bool mute_rx = false;
  /// An equivocating primary sends conflicting pre-prepares for the same
  /// sequence number to disjoint halves of the group.
  bool equivocate = false;
  /// Emit checkpoint votes and forged "stable" certificates for a tampered
  /// state digest (correct replicas must reject both).
  bool forge_checkpoints = false;

  [[nodiscard]] bool any() const {
    return corrupt_replies || drop_forwarding || mute || mute_rx || equivocate ||
           forge_checkpoints;
  }
  bool operator==(const ByzantineFlags&) const = default;
};

/// Shared corrupt_replies tampering, applied to an encoded reply payload
/// by every replica type that honours the flag. Flips the last byte when
/// the reply carries a payload beyond the minimal KvReply header (5 bytes:
/// ok flag + value length) so the *decoded* value changes — appending a
/// byte would be invisible to length-prefixed decoders. Header-only
/// replies get an appended byte instead: the wire image still differs from
/// correct replies (so client voting sees a Byzantine reply) without
/// breaking the decoder. Deterministic, so f+1 corruptors produce
/// byte-identical tampered replies — the linearizability checker's canary
/// relies on them winning the client's matching-reply vote.
inline void corrupt_reply_payload(Bytes& out) {
  if (out.size() > 5) {
    out.back() ^= 0xbd;
  } else {
    out.push_back(0xbd);
  }
}

}  // namespace spider
