#include "sim/stats.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace spider {

void LatencyStats::add(Duration sample) {
  if (mode_ == Mode::kBucketed) {
    // Latencies are non-negative in a causally consistent sim; clamp so a
    // bug upstream degrades to a 0-bucket sample instead of UB.
    hist_.add(sample > 0 ? static_cast<std::uint64_t>(sample) : 0);
    return;
  }
  samples_.push_back(sample);
  sorted_ = false;
}

void LatencyStats::clear() {
  hist_.clear();
  samples_.clear();
  sorted_ = true;
}

std::size_t LatencyStats::count() const {
  if (mode_ == Mode::kBucketed) return static_cast<std::size_t>(hist_.count());
  return samples_.size();
}

Duration LatencyStats::percentile(double p) const {
  // Clamp to [0, 100] (NaN lands on 0): an out-of-range p used to produce a
  // negative exact-mode rank whose size_t cast indexed far out of bounds.
  if (!(p >= 0.0)) p = 0.0;
  if (p > 100.0) p = 100.0;
  if (mode_ == Mode::kBucketed) {
    // Empty histograms report 0 for every quantile, matching exact mode.
    return static_cast<Duration>(hist_.percentile(p));
  }
  if (samples_.empty()) return 0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  auto idx = static_cast<std::size_t>(rank);
  if (idx + 1 >= samples_.size()) return samples_.back();
  double frac = rank - static_cast<double>(idx);
  return static_cast<Duration>(static_cast<double>(samples_[idx]) * (1.0 - frac) +
                               static_cast<double>(samples_[idx + 1]) * frac);
}

Duration LatencyStats::min() const {
  if (mode_ == Mode::kBucketed) return static_cast<Duration>(hist_.min());
  if (samples_.empty()) return 0;
  return *std::min_element(samples_.begin(), samples_.end());
}

Duration LatencyStats::max() const {
  if (mode_ == Mode::kBucketed) return static_cast<Duration>(hist_.max());
  if (samples_.empty()) return 0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double LatencyStats::mean() const {
  if (mode_ == Mode::kBucketed) return hist_.mean();
  if (samples_.empty()) return 0;
  double sum = 0;
  for (Duration s : samples_) sum += static_cast<double>(s);
  return sum / static_cast<double>(samples_.size());
}

TimeSeries::TimeSeries(Duration bucket_width, std::size_t max_buckets)
    : bucket_(bucket_width), max_buckets_(max_buckets) {
  if (bucket_width <= 0) {
    throw std::invalid_argument("TimeSeries: bucket_width must be > 0");
  }
  if (max_buckets == 0) {
    throw std::invalid_argument("TimeSeries: max_buckets must be > 0");
  }
}

void TimeSeries::add(Time at, double value) {
  if (at < 0) return;
  auto idx = static_cast<std::uint64_t>(at / bucket_);
  auto it = buckets_.find(idx);
  if (it == buckets_.end()) {
    if (buckets_.size() >= max_buckets_) {
      ++dropped_;
      return;
    }
    it = buckets_.emplace(idx, Bucket{}).first;
  }
  it->second.sum += value;
  it->second.count += 1;
}

std::vector<TimeSeries::Point> TimeSeries::points() const {
  std::vector<Point> out;
  out.reserve(buckets_.size());
  for (const auto& [idx, b] : buckets_) {
    out.push_back(Point{static_cast<Time>(idx) * bucket_,
                        b.sum / static_cast<double>(b.count), b.count});
  }
  return out;
}

std::string format_ms(Duration d) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f ms", to_ms(d));
  return buf;
}

}  // namespace spider
