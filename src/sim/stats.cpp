#include "sim/stats.hpp"

#include <algorithm>
#include <cstdio>

namespace spider {

void LatencyStats::add(Duration sample) {
  if (mode_ == Mode::kBucketed) {
    // Latencies are non-negative in a causally consistent sim; clamp so a
    // bug upstream degrades to a 0-bucket sample instead of UB.
    hist_.add(sample > 0 ? static_cast<std::uint64_t>(sample) : 0);
    return;
  }
  samples_.push_back(sample);
  sorted_ = false;
}

void LatencyStats::clear() {
  hist_.clear();
  samples_.clear();
  sorted_ = true;
}

std::size_t LatencyStats::count() const {
  if (mode_ == Mode::kBucketed) return static_cast<std::size_t>(hist_.count());
  return samples_.size();
}

Duration LatencyStats::percentile(double p) const {
  if (mode_ == Mode::kBucketed) {
    return static_cast<Duration>(hist_.percentile(p));
  }
  if (samples_.empty()) return 0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  auto idx = static_cast<std::size_t>(rank);
  if (idx + 1 >= samples_.size()) return samples_.back();
  double frac = rank - static_cast<double>(idx);
  return static_cast<Duration>(static_cast<double>(samples_[idx]) * (1.0 - frac) +
                               static_cast<double>(samples_[idx + 1]) * frac);
}

Duration LatencyStats::min() const {
  if (mode_ == Mode::kBucketed) return static_cast<Duration>(hist_.min());
  if (samples_.empty()) return 0;
  return *std::min_element(samples_.begin(), samples_.end());
}

Duration LatencyStats::max() const {
  if (mode_ == Mode::kBucketed) return static_cast<Duration>(hist_.max());
  if (samples_.empty()) return 0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double LatencyStats::mean() const {
  if (mode_ == Mode::kBucketed) return hist_.mean();
  if (samples_.empty()) return 0;
  double sum = 0;
  for (Duration s : samples_) sum += static_cast<double>(s);
  return sum / static_cast<double>(samples_.size());
}

void TimeSeries::add(Time at, double value) {
  if (at < 0) return;
  auto idx = static_cast<std::size_t>(at / bucket_);
  if (idx >= buckets_.size()) buckets_.resize(idx + 1);
  buckets_[idx].sum += value;
  buckets_[idx].count += 1;
}

std::vector<TimeSeries::Point> TimeSeries::points() const {
  std::vector<Point> out;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i].count == 0) continue;
    out.push_back(Point{static_cast<Time>(i) * bucket_,
                        buckets_[i].sum / static_cast<double>(buckets_[i].count),
                        buckets_[i].count});
  }
  return out;
}

std::string format_ms(Duration d) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f ms", to_ms(d));
  return buf;
}

}  // namespace spider
