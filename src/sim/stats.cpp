#include "sim/stats.hpp"

#include <algorithm>
#include <cstdio>

namespace spider {

void LatencyStats::add(Duration sample) {
  samples_.push_back(sample);
  sorted_ = false;
}

Duration LatencyStats::percentile(double p) const {
  if (samples_.empty()) return 0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  auto idx = static_cast<std::size_t>(rank);
  if (idx + 1 >= samples_.size()) return samples_.back();
  double frac = rank - static_cast<double>(idx);
  return static_cast<Duration>(static_cast<double>(samples_[idx]) * (1.0 - frac) +
                               static_cast<double>(samples_[idx + 1]) * frac);
}

Duration LatencyStats::min() const {
  if (samples_.empty()) return 0;
  return *std::min_element(samples_.begin(), samples_.end());
}

Duration LatencyStats::max() const {
  if (samples_.empty()) return 0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double LatencyStats::mean() const {
  if (samples_.empty()) return 0;
  double sum = 0;
  for (Duration s : samples_) sum += static_cast<double>(s);
  return sum / static_cast<double>(samples_.size());
}

void TimeSeries::add(Time at, double value) {
  if (at < 0) return;
  auto idx = static_cast<std::size_t>(at / bucket_);
  if (idx >= buckets_.size()) buckets_.resize(idx + 1);
  buckets_[idx].sum += value;
  buckets_[idx].count += 1;
}

std::vector<TimeSeries::Point> TimeSeries::points() const {
  std::vector<Point> out;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i].count == 0) continue;
    out.push_back(Point{static_cast<Time>(i) * bucket_,
                        buckets_[i].sum / static_cast<double>(buckets_[i].count),
                        buckets_[i].count});
  }
  return out;
}

std::string format_ms(Duration d) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f ms", to_ms(d));
  return buf;
}

}  // namespace spider
