// Simulated network: point-to-point message delivery with geographic
// latency, jitter, per-node bandwidth, fault injection and WAN/LAN byte
// accounting (the paper's Figure 9d reports exactly these counters).
//
// SimNetwork is the deterministic implementation of the `Transport` seam
// (src/net/transport.hpp); the epoll/socket backend is the other one.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/payload.hpp"
#include "common/rng.hpp"
#include "net/transport.hpp"
#include "sim/event_queue.hpp"
#include "sim/topology.hpp"

namespace spider {

namespace obs {
class Tracer;
}
namespace runtime {
class ParallelRuntime;
}

/// Per-message fault effects produced by a fault shaper (see FaultPlan):
/// a cut link drops deterministically, `loss` drops i.i.d. with the
/// network RNG, `extra_delay` is added to the propagation delay.
struct LinkFault {
  bool cut = false;
  double loss = 0.0;
  Duration extra_delay = 0;
};

class SimNetwork final : public Transport {
 public:
  SimNetwork(EventQueue& queue, Rng rng);

  void attach(TransportEndpoint* node) override;
  void detach(NodeId id) override;

  using Transport::send;
  /// Sends `payload` from `from` to `to`. Messages between distinct node
  /// pairs are independent; messages on the same (from, to) pair are
  /// delivered FIFO (reliable ordered channel, as the paper assumes) —
  /// regardless of traffic class: the sim models one reliable channel per
  /// pair, so `cls` only affects the socket backend.
  /// The payload is refcounted, not copied: a multicast that passes the
  /// same Payload for every destination shares one buffer across all
  /// in-flight deliveries.
  void send(NodeId from, NodeId to, Payload payload, TrafficClass cls) override;

  // ---- fault injection ------------------------------------------------
  /// Drops every message for which the filter returns false.
  void set_link_filter(std::function<bool(NodeId from, NodeId to)> filter);
  /// A "down" node neither sends nor receives (crash fault).
  void set_node_down(NodeId id, bool down) override;
  [[nodiscard]] bool is_down(NodeId id) const override;

  /// Fault shaper consulted *in addition to* the user link filter (the two
  /// stack; neither replaces the other). Installed by FaultPlan to express
  /// partitions, loss rates and delay spikes without clobbering a link
  /// filter a test already set.
  using FaultShaper =
      std::function<LinkFault(NodeId from, Site from_site, NodeId to, Site to_site)>;
  void set_fault_shaper(FaultShaper shaper) { fault_shaper_ = std::move(shaper); }

  /// Slow-node mode: scales the node's NIC bandwidth by `factor` in (0, 1];
  /// 1 restores full speed. A message's transmit time uses the slower of
  /// the two endpoints (the throttled NIC bounds the link either way).
  void set_node_bandwidth_factor(NodeId id, double factor);
  [[nodiscard]] double node_bandwidth_factor(NodeId id) const;

  /// Incarnation of a NodeId: bumped every time the node detaches. Defines
  /// the in-flight semantics across a crash/restart: a message addressed to
  /// an incarnation that no longer exists at arrival time is lost (its
  /// connections died with the process), while messages sent *by* the old
  /// incarnation that are already on the wire still arrive (datagrams in
  /// flight do not care whether their sender lives).
  [[nodiscard]] std::uint64_t incarnation(NodeId id) const;

  /// Passive trace sink (owned by World); nullptr = no tracing. Emits one
  /// instant per accepted message at enqueue time — after drop decisions,
  /// so the trace shows what actually went onto the wire. Never consumes
  /// RNG or alters delivery.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Parallel-runtime hook (owned by World); nullptr = no prefetch. Sees
  /// every message that survived the drop decisions, right before its
  /// delivery is scheduled — the propagation delay becomes crypto overlap.
  /// Never consumes RNG or alters delivery.
  void set_runtime(runtime::ParallelRuntime* rt) { runtime_ = rt; }

  /// Per-node NIC bandwidth in bytes per microsecond (default ~0.6 Gbit/s
  /// sustained, matching a t3.small-class instance).
  double bandwidth_bytes_per_us = 75.0;
  /// Extra fixed per-hop delay (kernel/NIC).
  Duration fixed_overhead = 30;
  /// Relative uniform jitter applied to the propagation delay.
  double jitter_frac = 0.02;

 private:
  EventQueue& queue_;
  Rng rng_;
  std::unordered_map<NodeId, TransportEndpoint*> nodes_;
  std::unordered_map<NodeId, bool> down_;
  std::unordered_map<NodeId, std::uint64_t> incarnation_;
  std::unordered_map<NodeId, double> bw_factor_;
  // Earliest time the next message on a (from,to) pair may arrive, to keep
  // per-pair FIFO under jitter.
  std::unordered_map<std::uint64_t, Time> pair_clearance_;
  std::function<bool(NodeId, NodeId)> filter_;
  FaultShaper fault_shaper_;
  obs::Tracer* tracer_ = nullptr;
  runtime::ParallelRuntime* runtime_ = nullptr;
};

}  // namespace spider
