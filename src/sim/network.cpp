#include "sim/network.hpp"

#include "sim/node.hpp"

namespace spider {

namespace {
std::uint64_t pair_key(NodeId from, NodeId to) {
  return (static_cast<std::uint64_t>(from) << 32) | to;
}
}  // namespace

SimNetwork::SimNetwork(EventQueue& queue, Rng rng) : queue_(queue), rng_(rng) {}

void SimNetwork::attach(SimNode* node) { nodes_[node->id()] = node; }

void SimNetwork::detach(NodeId id) { nodes_.erase(id); }

bool SimNetwork::is_down(NodeId id) const {
  auto it = down_.find(id);
  return it != down_.end() && it->second;
}

void SimNetwork::set_node_down(NodeId id, bool down) { down_[id] = down; }

void SimNetwork::set_link_filter(std::function<bool(NodeId, NodeId)> filter) {
  filter_ = std::move(filter);
}

void SimNetwork::send(NodeId from, NodeId to, Bytes payload) {
  auto from_it = nodes_.find(from);
  auto to_it = nodes_.find(to);
  if (from_it == nodes_.end() || to_it == nodes_.end()) return;
  if (is_down(from) || is_down(to)) return;
  if (filter_ && !filter_(from, to)) return;

  SimNode* src = from_it->second;
  SimNode* dst = to_it->second;
  const std::size_t size = payload.size();
  const bool wan = is_wan(src->site(), dst->site());

  if (wan) {
    stats_.wan_bytes += size;
    stats_.wan_msgs += 1;
    node_stats_[from].sent_wan_bytes += size;
  } else {
    stats_.lan_bytes += size;
    stats_.lan_msgs += 1;
    node_stats_[from].sent_lan_bytes += size;
  }
  node_stats_[to].recv_bytes += size;

  Duration base = one_way_latency(src->site(), dst->site());
  Duration jitter = static_cast<Duration>(rng_.uniform01() * jitter_frac * static_cast<double>(base));
  Duration transmit = static_cast<Duration>(static_cast<double>(size) / bandwidth_bytes_per_us);
  Time arrival = queue_.now() + fixed_overhead + base + jitter + transmit;

  // Per-pair FIFO: never deliver earlier than a previously sent message.
  Time& clearance = pair_clearance_[pair_key(from, to)];
  if (arrival < clearance) arrival = clearance;
  clearance = arrival;

  queue_.schedule_at(arrival, [this, from, to, msg = std::move(payload)]() mutable {
    auto it = nodes_.find(to);
    if (it == nodes_.end() || is_down(to) || is_down(from)) return;
    it->second->deliver(from, std::move(msg));
  });
}

void SimNetwork::reset_stats() {
  stats_.reset();
  node_stats_.clear();
}

}  // namespace spider
