#include "sim/network.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "runtime/parallel.hpp"

namespace spider {

namespace {
std::uint64_t pair_key(NodeId from, NodeId to) {
  return (static_cast<std::uint64_t>(from) << 32) | to;
}
}  // namespace

SimNetwork::SimNetwork(EventQueue& queue, Rng rng) : queue_(queue), rng_(rng) {}

void SimNetwork::attach(TransportEndpoint* node) { nodes_[node->id()] = node; }

void SimNetwork::detach(NodeId id) {
  if (nodes_.erase(id) > 0) ++incarnation_[id];
}

std::uint64_t SimNetwork::incarnation(NodeId id) const {
  auto it = incarnation_.find(id);
  return it == incarnation_.end() ? 0 : it->second;
}

void SimNetwork::set_node_bandwidth_factor(NodeId id, double factor) {
  if (factor >= 1.0) {
    bw_factor_.erase(id);
  } else {
    bw_factor_[id] = std::max(factor, 1e-6);
  }
}

double SimNetwork::node_bandwidth_factor(NodeId id) const {
  auto it = bw_factor_.find(id);
  return it == bw_factor_.end() ? 1.0 : it->second;
}

bool SimNetwork::is_down(NodeId id) const {
  auto it = down_.find(id);
  return it != down_.end() && it->second;
}

void SimNetwork::set_node_down(NodeId id, bool down) { down_[id] = down; }

void SimNetwork::set_link_filter(std::function<bool(NodeId, NodeId)> filter) {
  filter_ = std::move(filter);
}

void SimNetwork::send(NodeId from, NodeId to, Payload payload, TrafficClass /*cls*/) {
  // The traffic class is a socket-backend concern: the sim models one
  // reliable FIFO channel per pair for all classes (see header).
  auto from_it = nodes_.find(from);
  auto to_it = nodes_.find(to);
  if (from_it == nodes_.end() || to_it == nodes_.end()) return;
  if (is_down(from) || is_down(to)) return;
  if (filter_ && !filter_(from, to)) return;

  TransportEndpoint* src = from_it->second;
  TransportEndpoint* dst = to_it->second;
  const std::size_t size = payload.size();
  const bool wan = is_wan(src->site(), dst->site());

  // Fault shaping stacks on top of the user filter (checked above).
  LinkFault fault;
  if (fault_shaper_) fault = fault_shaper_(from, src->site(), to, dst->site());
  if (fault.cut) return;
  if (fault.loss > 0.0 && rng_.uniform01() < fault.loss) return;

  if (wan) {
    stats_.wan_bytes += size;
    stats_.wan_msgs += 1;
    node_stats_[from].sent_wan_bytes += size;
  } else {
    stats_.lan_bytes += size;
    stats_.lan_msgs += 1;
    node_stats_[from].sent_lan_bytes += size;
  }
  node_stats_[to].recv_bytes += size;

  Duration base = one_way_latency(src->site(), dst->site());
  Duration jitter = static_cast<Duration>(rng_.uniform01() * jitter_frac * static_cast<double>(base));
  double bw = bandwidth_bytes_per_us *
              std::min(node_bandwidth_factor(from), node_bandwidth_factor(to));
  Duration transmit = static_cast<Duration>(static_cast<double>(size) / bw);
  Time arrival = queue_.now() + fixed_overhead + base + jitter + transmit + fault.extra_delay;

  if (tracer_) {
    tracer_->instant(queue_.now(), from, wan ? "net-wan" : "net-lan", "send",
                     "to", to, "bytes", size);
  }

  // Per-pair FIFO: never deliver earlier than a previously sent message.
  Time& clearance = pair_clearance_[pair_key(from, to)];
  if (arrival < clearance) arrival = clearance;
  clearance = arrival;

  // Prefetch: all drop/RNG decisions are made, so the message will reach
  // its destination (barring a restart) — start verifying its trailer now.
  if (runtime_) runtime_->note_send(from, to, payload);

  // A message is addressed to the destination *incarnation* that existed
  // when it was sent: if the destination process restarted before arrival,
  // the message is lost (its connections died with the old process).
  const std::uint64_t to_inc = incarnation(to);
  queue_.schedule_at(arrival, [this, from, to, to_inc, msg = std::move(payload)]() mutable {
    auto it = nodes_.find(to);
    if (it == nodes_.end() || incarnation(to) != to_inc) return;
    if (is_down(to) || is_down(from)) return;
    it->second->deliver(from, std::move(msg));
  });
}

}  // namespace spider
