// Deterministic fault-schedule engine.
//
// A FaultPlan composes timed fault actions on top of a World: partitions
// between site sets or node sets (stacked on any user link filter), node
// crashes and restarts (crash-recovery, not just crash-stop), per-link
// delay spikes and loss rates, and slow-node (reduced bandwidth) modes.
// Every action is an event on the World's EventQueue and all randomness —
// loss dice in the network, action choices in randomize() — comes from the
// World RNG, so a whole chaos scenario replays bit-identically from its
// seed.
//
// Crash semantics are pluggable: with `on_crash`/`on_restart` hooks set
// (the systems' crash_node/restart_node), a crash destroys the replica
// process — volatile state is lost and the rebuilt process must recover
// through checkpoint state transfer. Without hooks the plan falls back to
// the crash-stop model (SimNetwork::set_node_down), which keeps state.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "sim/network.hpp"

namespace spider {

class World;

class FaultPlan {
 public:
  /// Installs this plan's fault shaper on the world's network. One plan
  /// per World at a time; the destructor uninstalls it.
  explicit FaultPlan(World& world);
  ~FaultPlan();

  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  // ---- crash-recovery hooks --------------------------------------------
  /// Invoked when a scheduled crash/restart fires. Typically bound to a
  /// system's crash_node/restart_node (process teardown + rebuild). When
  /// unset, crashes degrade to the crash-stop model (set_node_down).
  std::function<void(NodeId)> on_crash;
  std::function<void(NodeId)> on_restart;

  // ---- timed actions (absolute simulated time) --------------------------
  /// Cuts every link between a node of `a` and a node of `b` (both
  /// directions) at time t. `heal_after` > 0 auto-heals that cut.
  void partition_nodes_at(Time t, std::vector<NodeId> a, std::vector<NodeId> b,
                          Duration heal_after = 0);
  /// Site-set partition: cuts links between any node placed in a site of
  /// `a` and any node in a site of `b` (both directions).
  void partition_sites_at(Time t, std::vector<Site> a, std::vector<Site> b,
                          Duration heal_after = 0);
  /// Removes every active partition at time t.
  void heal_at(Time t);

  void crash_at(Time t, NodeId n);
  void restart_at(Time t, NodeId n);

  /// Adds `extra` one-way delay on the (a, b) pair, both directions, for
  /// `duration` starting at t.
  void link_delay_at(Time t, NodeId a, NodeId b, Duration extra, Duration duration);
  /// Drops messages on the (a, b) pair, both directions, with probability
  /// `loss` for `duration` starting at t.
  void link_loss_at(Time t, NodeId a, NodeId b, double loss, Duration duration);
  /// Scales node n's NIC bandwidth by `factor` in (0, 1] for `duration`.
  void slow_node_at(Time t, NodeId n, double factor, Duration duration);

  // ---- random scenario generation ---------------------------------------
  struct ChaosProfile {
    /// Nodes that may crash (each crash is paired with a restart).
    std::vector<NodeId> crash_targets;
    /// Candidate sides for partitions: a random group is cut off from the
    /// union of the others. Typically one group per site or per role.
    std::vector<std::vector<NodeId>> partition_groups;
    /// All actions start in [start, horizon) and end by horizon.
    Time start = 2 * kSecond;
    Time horizon = 20 * kSecond;
    std::size_t actions = 4;
    Duration min_outage = kSecond;
    Duration max_outage = 6 * kSecond;
    std::uint32_t max_concurrent_crashes = 1;
    double max_loss = 0.4;
    Duration max_extra_delay = 120 * kMillisecond;
    double min_bw_factor = 0.1;
  };
  /// Draws `profile.actions` random timed actions from the World RNG:
  /// crash+restart pairs, partitions, loss/delay spikes and slow-node
  /// windows. Every fault ends by `profile.horizon`, so a run driven past
  /// the horizon always returns to a fault-free system.
  void randomize(const ChaosProfile& profile);

  // ---- introspection ------------------------------------------------------
  [[nodiscard]] bool crashed(NodeId n) const { return crashed_.count(n) > 0; }
  [[nodiscard]] std::size_t active_partitions() const { return partitions_.size(); }
  [[nodiscard]] std::uint64_t actions_fired() const { return actions_fired_; }
  /// Human-readable schedule (one line per scheduled action), for
  /// reproducing a failing chaos seed.
  [[nodiscard]] std::string describe() const;

 private:
  struct Partition {
    std::uint64_t id = 0;
    std::set<NodeId> a, b;
    std::vector<Site> sa, sb;  // site-based cuts match by placement
  };
  struct LinkMod {
    Duration extra_delay = 0;
    double loss = 0.0;
    // Expiry bookkeeping: overlapping windows on the same pair extend the
    // effect (magnitude last-wins) instead of the earlier window's end
    // event cancelling the later window early.
    Time delay_until = 0;
    Time loss_until = 0;
  };

  LinkFault shape(NodeId from, Site from_site, NodeId to, Site to_site) const;
  void schedule(Time t, std::string what, std::function<void()> fn);
  void apply_crash(NodeId n);
  void apply_restart(NodeId n);
  void remove_partition(std::uint64_t id);
  static std::uint64_t link_key(NodeId a, NodeId b);

  World& world_;
  std::shared_ptr<bool> alive_;
  std::uint64_t next_partition_id_ = 1;
  std::vector<Partition> partitions_;
  std::map<std::uint64_t, LinkMod> link_mods_;  // symmetric pair -> effect
  std::map<NodeId, Time> slow_until_;           // slow-node window expiry
  std::set<NodeId> crashed_;
  std::uint64_t actions_fired_ = 0;
  std::vector<std::pair<Time, std::string>> script_;  // for describe()
};

}  // namespace spider
