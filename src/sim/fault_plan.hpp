// Deterministic fault-schedule engine.
//
// A FaultPlan composes timed fault actions on top of a World: partitions
// between site sets or node sets (stacked on any user link filter), node
// crashes and restarts (crash-recovery, not just crash-stop), per-link
// delay spikes and loss rates, slow-node (reduced bandwidth) modes, and
// *Byzantine windows* — timed spans in which a replica actively misbehaves
// (equivocating primaries, corrupted client replies, dropped request
// forwarding, muted consensus, forged checkpoint certificates). Every
// action is an event on the World's EventQueue and all randomness — loss
// dice in the network, action choices in randomize() — comes from the
// World RNG, so a whole chaos scenario replays bit-identically from its
// seed. The schedule itself round-trips through text (serialize_script /
// schedule_script), so a failure artifact can be reloaded and replayed.
//
// Crash semantics are pluggable: with `on_crash`/`on_restart` hooks set
// (the systems' crash_node/restart_node), a crash destroys the replica
// process — volatile state is lost and the rebuilt process must recover
// through checkpoint state transfer. Without hooks the plan falls back to
// the crash-stop model (SimNetwork::set_node_down), which keeps state.
// Byzantine windows go through `on_byzantine` (the systems' set_byzantine),
// which persists flags across a crash/restart of the same node.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "sim/byzantine.hpp"
#include "sim/network.hpp"

namespace spider {

class World;

class FaultPlan {
 public:
  /// Installs this plan's fault shaper on the world's network. One plan
  /// per World at a time; the destructor uninstalls it.
  explicit FaultPlan(World& world);
  ~FaultPlan();

  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  // ---- crash-recovery hooks --------------------------------------------
  /// Invoked when a scheduled crash/restart fires. Typically bound to a
  /// system's crash_node/restart_node (process teardown + rebuild). When
  /// unset, crashes degrade to the crash-stop model (set_node_down).
  std::function<void(NodeId)> on_crash;
  std::function<void(NodeId)> on_restart;

  /// Invoked whenever a node's merged Byzantine flag set changes (window
  /// start, window end, overlap resolution). Typically bound to a system's
  /// set_byzantine. Without the hook, Byzantine actions are recorded but
  /// have no effect.
  std::function<void(NodeId, const ByzantineFlags&)> on_byzantine;

  // ---- timed actions (absolute simulated time) --------------------------
  /// Cuts every link between a node of `a` and a node of `b` (both
  /// directions) at time t. `heal_after` > 0 auto-heals that cut.
  void partition_nodes_at(Time t, std::vector<NodeId> a, std::vector<NodeId> b,
                          Duration heal_after = 0);
  /// Site-set partition: cuts links between any node placed in a site of
  /// `a` and any node in a site of `b` (both directions).
  void partition_sites_at(Time t, std::vector<Site> a, std::vector<Site> b,
                          Duration heal_after = 0);
  /// Removes every active partition at time t.
  void heal_at(Time t);

  void crash_at(Time t, NodeId n);
  void restart_at(Time t, NodeId n);

  /// Adds `extra` one-way delay on the (a, b) pair, both directions, for
  /// `duration` starting at t.
  void link_delay_at(Time t, NodeId a, NodeId b, Duration extra, Duration duration);
  /// Drops messages on the (a, b) pair, both directions, with probability
  /// `loss` for `duration` starting at t.
  void link_loss_at(Time t, NodeId a, NodeId b, double loss, Duration duration);
  /// Scales node n's NIC bandwidth by `factor` in (0, 1] for `duration`.
  void slow_node_at(Time t, NodeId n, double factor, Duration duration);

  // ---- timed Byzantine actions -------------------------------------------
  // Each schedules a window [t, t + duration) in which the flag is set on
  // node n (via on_byzantine). Overlapping windows on the same node/flag
  // extend the effect; windows on different flags compose into one merged
  // ByzantineFlags per node.
  /// Execution replica answers clients with tampered values.
  void corrupt_replies_at(Time t, NodeId n, Duration duration);
  /// Execution replica silently refuses to forward client requests.
  void drop_forwarding_at(Time t, NodeId n, Duration duration);
  /// Consensus replica goes fail-silent; with `rx_too` it also drops
  /// inbound protocol traffic (fully-isolated Byzantine node).
  void mute_at(Time t, NodeId n, Duration duration, bool rx_too = false);
  /// Primary sends conflicting pre-prepares for the same sequence number
  /// to disjoint halves of the group (no-op while n is not primary).
  void equivocate_at(Time t, NodeId n, Duration duration);
  /// Checkpointer emits votes and forged certificates for a tampered
  /// state digest; correct replicas must reject them.
  void forge_checkpoints_at(Time t, NodeId n, Duration duration);

  // ---- random scenario generation ---------------------------------------
  struct ChaosProfile {
    /// Nodes that may crash (each crash is paired with a restart).
    std::vector<NodeId> crash_targets;
    /// Candidate sides for partitions: a random group is cut off from the
    /// union of the others. Typically one group per site or per role.
    std::vector<std::vector<NodeId>> partition_groups;
    /// All actions start in [start, horizon) and end by horizon.
    Time start = 2 * kSecond;
    Time horizon = 20 * kSecond;
    std::size_t actions = 4;
    Duration min_outage = kSecond;
    Duration max_outage = 6 * kSecond;
    std::uint32_t max_concurrent_crashes = 1;
    double max_loss = 0.4;
    Duration max_extra_delay = 120 * kMillisecond;
    double min_bw_factor = 0.1;

    // ---- Byzantine schedules (active adversaries) ------------------------
    /// Consensus-role candidates, one entry per agreement/BFT group. At
    /// most `max_byz_per_consensus_group` distinct members of each entry
    /// ever turn Byzantine — the hard cap; set it to the group's f. A node
    /// should appear in at most one entry across both candidate lists (the
    /// caps are per group, not aggregated across roles).
    std::vector<std::vector<NodeId>> byz_consensus_groups;
    std::uint32_t max_byz_per_consensus_group = 0;
    /// Execution-role candidates, one entry per execution group; capped at
    /// `max_byz_per_exec_group` (set it to the group's fe) distinct
    /// members each.
    std::vector<std::vector<NodeId>> byz_exec_groups;
    std::uint32_t max_byz_per_exec_group = 0;
    /// Number of timed Byzantine windows drawn over the capped node sets.
    std::size_t byz_actions = 0;
  };
  /// Draws `profile.actions` random timed actions from the World RNG:
  /// crash+restart pairs, partitions, loss/delay spikes and slow-node
  /// windows — plus `profile.byz_actions` Byzantine windows (mute,
  /// equivocation, corrupt replies, dropped forwarding, forged
  /// checkpoints) over at most the capped number of distinct replicas per
  /// role. Every fault ends by `profile.horizon`, so a run driven past
  /// the horizon always returns to a fault-free, honest system.
  void randomize(const ChaosProfile& profile);

  // ---- introspection ------------------------------------------------------
  [[nodiscard]] bool crashed(NodeId n) const { return crashed_.count(n) > 0; }
  [[nodiscard]] std::size_t active_partitions() const { return partitions_.size(); }
  [[nodiscard]] std::uint64_t actions_fired() const { return actions_fired_; }
  /// Currently active merged Byzantine flags of node n.
  [[nodiscard]] ByzantineFlags byzantine(NodeId n) const;
  /// Human-readable schedule (one line per scheduled action), for
  /// reproducing a failing chaos seed.
  [[nodiscard]] std::string describe() const;

  // ---- schedule round-trip ------------------------------------------------
  /// Machine-readable schedule: one line per top-level action, parseable
  /// by schedule_script. Failure artifacts embed this so a failing chaos
  /// seed can be reloaded and replayed without re-running randomize().
  [[nodiscard]] std::string serialize_script() const;
  /// Re-issues every action of a serialized script on this plan, in the
  /// original call order (same-time events keep their scheduling order, so
  /// a replay is byte-identical). Throws std::invalid_argument on
  /// malformed input. Call before running the world past the first action.
  void schedule_script(const std::string& script);

 private:
  struct Partition {
    std::uint64_t id = 0;
    std::set<NodeId> a, b;
    std::vector<Site> sa, sb;  // site-based cuts match by placement
  };
  struct LinkMod {
    Duration extra_delay = 0;
    double loss = 0.0;
    // Expiry bookkeeping: overlapping windows on the same pair extend the
    // effect (magnitude last-wins) instead of the earlier window's end
    // event cancelling the later window early.
    Time delay_until = 0;
    Time loss_until = 0;
  };

  /// Per-flag bits used by Byzantine windows and the script encoding.
  enum : std::uint8_t {
    kByzCorrupt = 1 << 0,
    kByzDropFwd = 1 << 1,
    kByzMute = 1 << 2,
    kByzMuteRx = 1 << 3,
    kByzEquivocate = 1 << 4,
    kByzForgeCp = 1 << 5,
  };

  /// Structured record of one top-level action (for serialize_script).
  struct Action {
    std::string kind;
    Time t = 0;
    Duration duration = 0;
    NodeId a = 0, b = 0;
    double x = 0.0;
    std::uint8_t bits = 0;
    std::vector<NodeId> set_a, set_b;
    std::vector<Site> sites_a, sites_b;
  };

  LinkFault shape(NodeId from, Site from_site, NodeId to, Site to_site) const;
  void schedule(Time t, std::string what, std::function<void()> fn);
  void apply_crash(NodeId n);
  void apply_restart(NodeId n);
  void remove_partition(std::uint64_t id);
  void byz_window(Time t, NodeId n, std::uint8_t bits, Duration duration);
  void apply_byz(NodeId n);
  static std::uint64_t link_key(NodeId a, NodeId b);
  static std::string byz_label(std::uint8_t bits);

  World& world_;
  std::shared_ptr<bool> alive_;
  std::uint64_t next_partition_id_ = 1;
  std::vector<Partition> partitions_;
  std::map<std::uint64_t, LinkMod> link_mods_;  // symmetric pair -> effect
  std::map<NodeId, Time> slow_until_;           // slow-node window expiry
  std::set<NodeId> crashed_;
  // (node, flag bit) -> window expiry; merged into one ByzantineFlags per
  // node by apply_byz (same max-extend semantics as LinkMod).
  std::map<std::pair<NodeId, std::uint8_t>, Time> byz_until_;
  std::map<NodeId, ByzantineFlags> byz_state_;
  std::uint64_t actions_fired_ = 0;
  std::vector<std::pair<Time, std::string>> script_;  // for describe()
  std::vector<Action> recorded_;                      // for serialize_script()
};

}  // namespace spider
