// Component multiplexing on top of SimNode.
//
// A replica process hosts several protocol components (consensus engine,
// IRMC endpoints, checkpointer, client frontend, ...). Each component owns
// a 32-bit tag; wire messages are [u32 tag][inner payload] and the host
// dispatches inbound messages to the registered component.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/serde.hpp"
#include "crypto/provider.hpp"
#include "sim/node.hpp"

namespace spider {

class Component;

/// Subsystem tag namespaces (high byte).
namespace tags {
constexpr std::uint32_t kPbft = 0x01000000;
constexpr std::uint32_t kIrmc = 0x02000000;       // | channel id (low 3 bytes)
constexpr std::uint32_t kClient = 0x03000000;     // client <-> replica traffic
constexpr std::uint32_t kCheckpoint = 0x04000000; // | group id
constexpr std::uint32_t kRegistry = 0x05000000;
constexpr std::uint32_t kHft = 0x06000000;
}  // namespace tags

class ComponentHost : public SimNode {
 public:
  using SimNode::SimNode;

  void register_component(std::uint32_t tag, Component* c) { components_[tag] = c; }
  void unregister_component(std::uint32_t tag) { components_.erase(tag); }

  /// Wraps and sends a component message.
  void send_component(std::uint32_t tag, NodeId to, BytesView inner);

  /// Dispatches inbound messages to components; unknown tags and malformed
  /// payloads are dropped (Byzantine-safe default).
  void on_message(NodeId from, BytesView data) override;

 private:
  std::unordered_map<std::uint32_t, Component*> components_;
};

/// Base class for protocol components.
class Component {
 public:
  Component(ComponentHost& host, std::uint32_t tag) : host_(host), tag_(tag) {
    host_.register_component(tag_, this);
  }
  virtual ~Component() { host_.unregister_component(tag_); }

  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  /// Inbound payload (without the tag). Throws SerdeError on malformed
  /// input; the host catches and drops.
  virtual void on_message(NodeId from, Reader& r) = 0;

  [[nodiscard]] std::uint32_t tag() const { return tag_; }

 protected:
  ComponentHost& host() { return host_; }
  [[nodiscard]] NodeId self() const { return host_.id(); }
  [[nodiscard]] Time now() const { return host_.now(); }
  CryptoProvider& crypto() { return host_.crypto(); }

  void send(NodeId to, BytesView inner) { host_.send_component(tag_, to, inner); }

  /// Builds the full wire frame [tag][body][auth] in one allocation. A
  /// multicast builds the frame once and send_wire()s the same refcounted
  /// buffer to every destination (bytes identical to send(to, body+auth)).
  [[nodiscard]] Payload wire_frame(BytesView body, BytesView auth = {}) const;

  /// Sends a pre-built wire frame (zero-copy: refcount bump per recipient).
  void send_wire(NodeId to, const Payload& wire) { host_.send_to(to, wire); }

  /// wire_frame + send_wire for single-destination MAC'd frames: one
  /// allocation instead of body-copy + tag-wrap.
  void send_framed(NodeId to, BytesView body, BytesView auth) {
    host_.send_to(to, wire_frame(body, auth));
  }

  /// Domain-separated bytes for signing/MACing: [tag][inner].
  Bytes auth_bytes(BytesView inner) const;

  EventQueue::EventId set_timer(Duration delay, std::function<void()> fn) {
    return host_.set_timer(delay, std::move(fn));
  }
  void cancel_timer(EventQueue::EventId id) { host_.cancel_timer(id); }

 private:
  ComponentHost& host_;
  std::uint32_t tag_;
};

}  // namespace spider
