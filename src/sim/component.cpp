#include "sim/component.hpp"

namespace spider {

void ComponentHost::send_component(std::uint32_t tag, NodeId to, BytesView inner) {
  Writer w(4 + inner.size());
  w.u32(tag);
  w.raw(inner);
  send_to(to, Payload(std::move(w)));
}

void ComponentHost::on_message(NodeId from, BytesView data) {
  try {
    Reader r(data);
    std::uint32_t tag = r.u32();
    auto it = components_.find(tag);
    if (it == components_.end()) return;  // unknown component: drop
    it->second->on_message(from, r);
  } catch (const SerdeError&) {
    // Malformed (possibly Byzantine) message: drop silently.
  }
}

Payload Component::wire_frame(BytesView body, BytesView auth) const {
  Writer w(4 + body.size() + auth.size());
  w.u32(tag_);
  w.raw(body);
  w.raw(auth);
  return Payload(std::move(w));
}

Bytes Component::auth_bytes(BytesView inner) const {
  Writer w(4 + inner.size());
  w.u32(tag_);
  w.raw(inner);
  return std::move(w).take();
}

}  // namespace spider
