#include "sim/component.hpp"

namespace spider {

void ComponentHost::send_component(std::uint32_t tag, NodeId to, BytesView inner) {
  Writer w;
  w.u32(tag);
  w.raw(inner);
  send_to(to, std::move(w).take());
}

void ComponentHost::on_message(NodeId from, BytesView data) {
  try {
    Reader r(data);
    std::uint32_t tag = r.u32();
    auto it = components_.find(tag);
    if (it == components_.end()) return;  // unknown component: drop
    it->second->on_message(from, r);
  } catch (const SerdeError&) {
    // Malformed (possibly Byzantine) message: drop silently.
  }
}

Bytes Component::auth_bytes(BytesView inner) const {
  Writer w;
  w.u32(tag_);
  w.raw(inner);
  return std::move(w).take();
}

}  // namespace spider
