// Simulated process with a single-server CPU queue.
//
// Every inbound message or timer is handled as a CPU task: handling starts
// when the CPU is free, runs the component logic (which may charge crypto /
// processing costs via charge()), and outbound messages are released when
// the accumulated CPU work completes. This yields realistic queueing and
// lets benchmarks report CPU utilization (paper Figure 9c).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/payload.hpp"
#include "net/transport.hpp"
#include "sim/event_queue.hpp"
#include "sim/topology.hpp"

namespace spider {

class World;
class CryptoProvider;
namespace obs {
class Tracer;
}

/// Modeled-CPU cost categories, for the per-replica breakdown the paper's
/// Figure 9c style plots need (crypto vs serde vs application work).
enum class CpuCat : std::uint8_t {
  kSerde = 0,   // message decode/encode + per-message/per-KB base costs
  kCrypto = 1,  // sign/verify/MAC/hash charges
  kApp = 2,     // application execution (state machine apply)
  kOther = 3,   // everything else charged explicitly
};
inline constexpr std::size_t kCpuCatCount = 4;
const char* cpu_cat_name(CpuCat cat);

class SimNode : public TransportEndpoint {
 public:
  SimNode(World& world, NodeId id, Site site);
  ~SimNode() override;

  SimNode(const SimNode&) = delete;
  SimNode& operator=(const SimNode&) = delete;

  [[nodiscard]] NodeId id() const override { return id_; }
  [[nodiscard]] Site site() const override { return site_; }
  World& world() { return world_; }
  [[nodiscard]] Time now() const;
  CryptoProvider& crypto();

  /// Protocol logic: called once per inbound message, on the CPU.
  virtual void on_message(NodeId from, BytesView data) = 0;

  /// Transport entry point (schedules CPU handling; do not call from logic).
  void deliver(NodeId from, Payload data) override;

  // ---- usable from within handlers ------------------------------------
  /// Adds CPU work to the current task (delays this task's outputs and all
  /// following tasks). `cat` attributes the cost for the per-category
  /// breakdown (busy_in()); timing is identical for every category.
  void charge(Duration cost, CpuCat cat = CpuCat::kOther);
  void charge_sign();
  void charge_verify();
  void charge_mac();
  void charge_hash(std::size_t nbytes);
  /// Application-work charge (state-machine execution).
  void charge_app(Duration cost) { charge(cost, CpuCat::kApp); }

  /// Queues a message; it leaves this node when the current task's CPU work
  /// is done (or immediately if called outside a task). The Payload form is
  /// zero-copy: a multicast that passes the same Payload per destination
  /// shares one serialized buffer end-to-end. `cls` picks the wire on the
  /// socket backend (UDP for kUnordered, framed TCP otherwise); the sim
  /// delivers both classes over the same reliable FIFO channel.
  void send_to(NodeId to, Payload data, TrafficClass cls = TrafficClass::kOrdered);
  void send_to(NodeId to, Bytes data, TrafficClass cls = TrafficClass::kOrdered) {
    send_to(to, Payload(std::move(data)), cls);
  }

  /// The wire message currently being handled (set while on_message runs;
  /// null inside timer tasks). Lets handlers reuse the inbound buffer's
  /// memoized digests via hash_cached().
  [[nodiscard]] const Payload* current_message() const { return current_msg_; }

  /// SHA-256 of `sub`, memoized on the inbound message buffer when `sub`
  /// points into it (the common case for nested wire views). Digests are
  /// bit-identical to Sha256::hash(sub); only wall-clock cost changes —
  /// call charge_hash() separately for the modeled CPU cost.
  [[nodiscard]] Sha256Digest hash_cached(BytesView sub) const;

  /// Verifies an inbound frame's trailer: a signature by `from` (is_sig)
  /// or a (from -> this) MAC, over the domain-separated bytes
  /// [u32 tag_word][body]. Bit-identical to rebuilding those bytes and
  /// calling crypto().verify / verify_mac — but when `body`/`auth` are the
  /// standard slices of the message being handled ([tag][body][auth], the
  /// layout every component's on_message produces), it consumes the
  /// parallel runtime's prefetched verdict if one exists, and otherwise
  /// verifies zero-copy over the frame prefix instead of re-allocating.
  /// Call charge_mac()/charge_verify() separately, as before.
  bool check_auth_frame(NodeId from, std::uint32_t tag_word, BytesView body, BytesView auth,
                        bool is_sig);

  /// Retains `sub` beyond the current handler: a zero-copy slice of the
  /// inbound message when `sub` points into it, an owned copy otherwise.
  [[nodiscard]] Payload capture(BytesView sub) const {
    if (current_msg_ && current_msg_->contains(sub)) return current_msg_->slice_of(sub);
    return Payload(sub);
  }

  /// Timer: fires as a CPU task after `delay`. Returns a cancellable id.
  EventQueue::EventId set_timer(Duration delay, std::function<void()> fn);
  void cancel_timer(EventQueue::EventId id);

  /// Zero-cost deferral: like set_timer but models no CPU work (internal
  /// pipeline bookkeeping, not protocol handling). Still guarded by this
  /// node's liveness token, so it is safe across a crash (destruction).
  EventQueue::EventId defer(Duration delay, std::function<void()> fn);

  // ---- stats -----------------------------------------------------------
  [[nodiscard]] Duration busy_time() const { return busy_accum_; }
  /// Modeled CPU time attributed to one category; the four categories sum
  /// to busy_time().
  [[nodiscard]] Duration busy_in(CpuCat cat) const {
    return busy_cat_[static_cast<std::size_t>(cat)];
  }
  void reset_busy_time() {
    busy_accum_ = 0;
    for (Duration& d : busy_cat_) d = 0;
  }

  /// The world's tracer (nullptr when tracing is off — the null sink).
  [[nodiscard]] obs::Tracer* tracer() const;

 private:
  friend class SimNetwork;
  struct Task {
    std::function<void()> logic;
    Duration base_cost;
  };
  void run_task(std::function<void()> logic, Duration base_cost);
  void enqueue_task(std::function<void()> logic, Duration base_cost);
  void schedule_drain(Time at);
  void drain();

  World& world_;
  NodeId id_;
  Site site_;
  // Liveness token captured by every event this node schedules on the
  // world queue (drains, timers, outbox flushes). Destroying the node —
  // how a process *crash* is modeled — flips it, turning all still-pending
  // events into no-ops, so a replica can be torn down and later rebuilt
  // under the same NodeId without dangling callbacks.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  Time busy_until_ = 0;
  Duration busy_accum_ = 0;
  Duration busy_cat_[kCpuCatCount] = {0, 0, 0, 0};

  // FIFO CPU queue with a single drain event (O(1) per task).
  std::deque<Task> task_queue_;
  bool drain_scheduled_ = false;

  // Set while a task executes.
  bool in_task_ = false;
  Duration task_charge_ = 0;
  const Payload* current_msg_ = nullptr;
  struct Outgoing {
    NodeId to;
    Payload data;
    TrafficClass cls;
  };
  std::vector<Outgoing> outbox_;
};

}  // namespace spider
