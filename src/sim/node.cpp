#include "sim/node.hpp"

#include "common/serde.hpp"
#include "crypto/provider.hpp"
#include "obs/trace.hpp"
#include "runtime/parallel.hpp"
#include "sim/world.hpp"

namespace spider {

const char* cpu_cat_name(CpuCat cat) {
  switch (cat) {
    case CpuCat::kSerde: return "serde";
    case CpuCat::kCrypto: return "crypto";
    case CpuCat::kApp: return "app";
    case CpuCat::kOther: return "other";
  }
  return "other";
}

SimNode::SimNode(World& world, NodeId id, Site site) : world_(world), id_(id), site_(site) {
  world_.transport().attach(this);
}

SimNode::~SimNode() {
  *alive_ = false;
  world_.transport().detach(id_);
}

Time SimNode::now() const { return world_.queue().now(); }

obs::Tracer* SimNode::tracer() const { return world_.tracer(); }

CryptoProvider& SimNode::crypto() { return world_.crypto(); }

void SimNode::deliver(NodeId from, Payload data) {
  const CryptoCosts& c = crypto().costs();
  Duration base = c.proc_per_msg + c.proc_per_kb * static_cast<Duration>(data.size()) / 1024;
  enqueue_task(
      [this, from, msg = std::move(data)]() {
        struct Scope {
          SimNode* n;
          ~Scope() { n->current_msg_ = nullptr; }
        } scope{this};
        current_msg_ = &msg;
        on_message(from, msg.view());
      },
      base);
}

Sha256Digest SimNode::hash_cached(BytesView sub) const {
  if (current_msg_ && current_msg_->contains(sub)) return current_msg_->digest_of(sub);
  return Sha256::hash(sub);
}

bool SimNode::check_auth_frame(NodeId from, std::uint32_t tag_word, BytesView body,
                               BytesView auth, bool is_sig) {
  // Fast path precondition: body/auth are the standard trailer split of the
  // inbound frame [u32 tag][body][auth]. The auth bytes [tag][body] are
  // then content-identical to the frame prefix, so verifying over the
  // prefix view produces the same verdict without rebuilding — and matches
  // the key the runtime prefetched under.
  const Payload* frame = current_msg_;
  if (frame != nullptr && frame->size() == 4 + body.size() + auth.size() &&
      body.data() == frame->data() + 4 && auth.data() == body.data() + body.size()) {
    const std::size_t msg_len = 4 + body.size();
    const BytesView msg(frame->data(), msg_len);
    if (auto* rt = world_.parallelism()) {
      if (auto verdict = rt->take_verdict(frame->data(), msg_len, from, id_, is_sig)) {
        return *verdict;
      }
    }
    return is_sig ? crypto().verify(from, msg, auth)
                  : crypto().verify_mac(from, id_, msg, auth);
  }
  // Detached bytes (callers verifying re-encoded content): rebuild the
  // domain-separated string exactly as the legacy call sites did.
  Writer w(4 + body.size());
  w.u32(tag_word);
  w.raw(body);
  const Bytes msg = std::move(w).take();
  return is_sig ? crypto().verify(from, msg, auth) : crypto().verify_mac(from, id_, msg, auth);
}

void SimNode::enqueue_task(std::function<void()> logic, Duration base_cost) {
  task_queue_.push_back(Task{std::move(logic), base_cost});
  if (!drain_scheduled_) schedule_drain(std::max(now(), busy_until_));
}

void SimNode::schedule_drain(Time at) {
  drain_scheduled_ = true;
  world_.queue().schedule_at(at, [this, alive = alive_] {
    if (*alive) drain();
  });
}

void SimNode::drain() {
  drain_scheduled_ = false;
  if (task_queue_.empty()) return;
  if (now() < busy_until_) {
    // Work got charged outside a task since this drain was scheduled.
    schedule_drain(busy_until_);
    return;
  }
  Task t = std::move(task_queue_.front());
  task_queue_.pop_front();
  run_task(std::move(t.logic), t.base_cost);
  if (!task_queue_.empty()) schedule_drain(busy_until_);
}

void SimNode::run_task(std::function<void()> logic, Duration base_cost) {
  in_task_ = true;
  task_charge_ = base_cost;
  busy_cat_[static_cast<std::size_t>(CpuCat::kSerde)] += base_cost;
  logic();
  in_task_ = false;

  Time start = now();
  busy_until_ = start + task_charge_;
  busy_accum_ += task_charge_;

  // CPU slice for the trace: [start, start + task_charge_] is exactly the
  // modeled execution window of this task on the single-server CPU.
  if (obs::Tracer* t = world_.tracer(); t && task_charge_ > 0) {
    t->complete(start, task_charge_, id_, "cpu", "task");
  }

  // Outputs leave the node once the CPU work is done. A node destroyed
  // (crashed) before that point never got its messages onto the wire.
  if (!outbox_.empty()) {
    std::vector<Outgoing> out = std::move(outbox_);
    outbox_.clear();
    world_.queue().schedule_at(busy_until_, [this, alive = alive_, out = std::move(out)]() mutable {
      if (!*alive) return;
      for (Outgoing& o : out) world_.transport().send(id_, o.to, std::move(o.data), o.cls);
    });
  }
}

void SimNode::charge(Duration cost, CpuCat cat) {
  busy_cat_[static_cast<std::size_t>(cat)] += cost;
  if (in_task_) {
    task_charge_ += cost;
  } else {
    busy_until_ = std::max(busy_until_, now()) + cost;
    busy_accum_ += cost;
  }
}

void SimNode::charge_sign() { charge(crypto().costs().sign, CpuCat::kCrypto); }
void SimNode::charge_verify() { charge(crypto().costs().verify, CpuCat::kCrypto); }
void SimNode::charge_mac() { charge(crypto().costs().mac, CpuCat::kCrypto); }
void SimNode::charge_hash(std::size_t nbytes) {
  charge(crypto().costs().hash_per_kb * static_cast<Duration>(nbytes + 1023) / 1024,
         CpuCat::kCrypto);
}

void SimNode::send_to(NodeId to, Payload data, TrafficClass cls) {
  const CryptoCosts& c = crypto().costs();
  charge(c.proc_per_msg / 2 + c.proc_per_kb * static_cast<Duration>(data.size()) / 1024,
         CpuCat::kSerde);
  if (in_task_) {
    outbox_.push_back(Outgoing{to, std::move(data), cls});
  } else {
    world_.transport().send(id_, to, std::move(data), cls);
  }
}

EventQueue::EventId SimNode::set_timer(Duration delay, std::function<void()> fn) {
  return world_.queue().schedule_after(delay, [this, alive = alive_, fn = std::move(fn)]() {
    if (!*alive) return;
    enqueue_task(fn, crypto().costs().proc_per_msg / 2);
  });
}

void SimNode::cancel_timer(EventQueue::EventId id) { world_.queue().cancel(id); }

EventQueue::EventId SimNode::defer(Duration delay, std::function<void()> fn) {
  return world_.queue().schedule_after(delay, [alive = alive_, fn = std::move(fn)]() {
    if (*alive) fn();
  });
}

}  // namespace spider
