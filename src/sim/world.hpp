// The simulation world: event queue + network + crypto + RNG + node ids.
// One `World` per experiment; everything inside it is deterministic for a
// given seed.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "crypto/provider.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/event_queue.hpp"
#include "sim/network.hpp"

namespace spider {

namespace runtime {
class ParallelRuntime;
}

class World {
 public:
  /// Creates a world with the given seed; `crypto` defaults to FastCrypto.
  explicit World(std::uint64_t seed, std::unique_ptr<CryptoProvider> crypto = nullptr);
  // Out of line: runtime_ holds a type only forward-declared here.
  ~World();

  EventQueue& queue() { return queue_; }
  /// The deterministic sim network. Always constructed (it is the default
  /// transport); fault-injection APIs (FaultPlan, link filters, down
  /// nodes) live here. When a custom transport is installed the sim
  /// network is idle — nothing attaches to it.
  SimNetwork& net() { return *net_; }
  /// The transport seam every node attaches and sends through: the sim
  /// network by default, or whatever install_transport() put in place.
  Transport& transport() { return *transport_; }
  CryptoProvider& crypto() { return *crypto_; }
  Rng& rng() { return rng_; }

  /// Routes all node attach/send traffic through `t` instead of the sim
  /// network (e.g. a socket-backed LoopbackTransport). Must be called
  /// before any SimNode is constructed on this World; `t` must outlive the
  /// World's nodes. Pass nullptr to restore the sim network.
  void install_transport(Transport* t) { transport_ = t ? t : net_.get(); }

  /// Hook driving run_until/run_for: a realtime transport installs a pump
  /// here (net::RealtimeDriver) so virtual time tracks the wall clock and
  /// socket readiness between events. Null (the default) = pure
  /// discrete-event execution on the queue.
  using RunDriver = std::function<void(Time)>;
  void set_run_driver(RunDriver d) { run_driver_ = std::move(d); }

  [[nodiscard]] Time now() const { return queue_.now(); }
  void run_until(Time t) {
    if (run_driver_) run_driver_(t);
    else queue_.run_until(t);
  }
  void run_for(Duration d) { run_until(queue_.now() + d); }
  void run_all(std::size_t max_events = 100'000'000) { queue_.run_all(max_events); }

  /// Allocates a fresh process id.
  NodeId allocate_id() { return next_id_++; }

  // ---- deterministic parallelism ---------------------------------------
  /// Turns on the parallel runtime with a total thread budget of `threads`
  /// (the simulation thread plus `threads - 1` verification workers) and
  /// installs the epoch run driver. Byte-identical to the single-threaded
  /// engine at every thread count — see docs/determinism.md. `threads = 1`
  /// still enables prefetch bookkeeping (multicast signature dedup) with a
  /// fully inline pool. Mutually exclusive with a realtime run driver
  /// (net::RealtimeDriver); whichever is installed last wins the driver.
  runtime::ParallelRuntime& enable_parallelism(unsigned threads, Duration epoch_len = 500);
  void disable_parallelism();
  /// The active parallel runtime, or nullptr (the single-threaded default).
  [[nodiscard]] runtime::ParallelRuntime* parallelism() const { return runtime_.get(); }

  /// Maps a node to an execution domain (= shard index for sharded
  /// deployments). Domains pick the prefetch worker (shard affinity) and
  /// label the per-shard runtime metrics; they never affect event order.
  void assign_domain(NodeId id, std::uint32_t domain) { domains_[id] = domain; }
  [[nodiscard]] std::uint32_t domain_of(NodeId id) const {
    auto it = domains_.find(id);
    return it == domains_.end() ? 0 : it->second;
  }

  // ---- observability ----------------------------------------------------
  /// Per-world metrics registry. Always present; recording a counter is a
  /// u64 increment, so protocol code uses it unconditionally.
  obs::MetricsRegistry& metrics() { return metrics_; }

  /// The attached tracer, or nullptr (the null sink — the default).
  /// Instrumentation sites guard with `if (auto* t = world.tracer())`, so a
  /// traced-off run performs one branch per site and nothing else: no
  /// allocation, no RNG draws, no change to scheduling or wire bytes.
  [[nodiscard]] obs::Tracer* tracer() const { return tracer_raw_; }

  /// Attaches a tracer (Full keeps everything; Ring is the flight
  /// recorder, keeping the last `ring_capacity` events in fixed memory).
  obs::Tracer& enable_tracing(obs::Tracer::Mode mode = obs::Tracer::Mode::kFull,
                              std::size_t ring_capacity = 1 << 16);
  void disable_tracing();

  /// Copies platform counters (event queue, network link stats, payload
  /// digest totals) into the registry so a snapshot sees them. Cheap; call
  /// before snapshot_json()/write_snapshot().
  void refresh_platform_metrics();

  /// Human-readable label for a node's track in exported traces
  /// ("ag-eu/0", "exec-us/2", "client/57"). Kept on the World so names
  /// registered before enable_tracing() still reach the tracer.
  void name_node(NodeId id, std::string name);

 private:
  EventQueue queue_;
  Rng rng_;
  std::unique_ptr<CryptoProvider> crypto_;
  std::unique_ptr<SimNetwork> net_;
  Transport* transport_ = nullptr;  // active seam; defaults to net_.get()
  RunDriver run_driver_;
  NodeId next_id_ = 1;
  obs::MetricsRegistry metrics_;
  std::unique_ptr<obs::Tracer> tracer_;
  obs::Tracer* tracer_raw_ = nullptr;
  std::map<NodeId, std::string> node_names_;
  std::unordered_map<NodeId, std::uint32_t> domains_;
  // Declared after every subsystem jobs can reference (crypto key caches,
  // payload buffers): destruction stops the workers first.
  std::unique_ptr<runtime::ParallelRuntime> runtime_;
  // Process-global digest total at construction: metrics report this
  // World's digests only, keeping snapshots deterministic across replays
  // in one process.
  std::uint64_t payload_digest_base_ = 0;
};

}  // namespace spider
