// The simulation world: event queue + network + crypto + RNG + node ids.
// One `World` per experiment; everything inside it is deterministic for a
// given seed.
#pragma once

#include <memory>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "crypto/provider.hpp"
#include "sim/event_queue.hpp"
#include "sim/network.hpp"

namespace spider {

class World {
 public:
  /// Creates a world with the given seed; `crypto` defaults to FastCrypto.
  explicit World(std::uint64_t seed, std::unique_ptr<CryptoProvider> crypto = nullptr);

  EventQueue& queue() { return queue_; }
  SimNetwork& net() { return *net_; }
  CryptoProvider& crypto() { return *crypto_; }
  Rng& rng() { return rng_; }

  [[nodiscard]] Time now() const { return queue_.now(); }
  void run_until(Time t) { queue_.run_until(t); }
  void run_for(Duration d) { queue_.run_for(d); }
  void run_all(std::size_t max_events = 100'000'000) { queue_.run_all(max_events); }

  /// Allocates a fresh process id.
  NodeId allocate_id() { return next_id_++; }

 private:
  EventQueue queue_;
  Rng rng_;
  std::unique_ptr<CryptoProvider> crypto_;
  std::unique_ptr<SimNetwork> net_;
  NodeId next_id_ = 1;
};

}  // namespace spider
