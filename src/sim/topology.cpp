#include "sim/topology.hpp"

#include <array>

namespace spider {

const char* region_name(Region r) {
  switch (r) {
    case Region::Virginia: return "Virginia";
    case Region::Oregon: return "Oregon";
    case Region::Ireland: return "Ireland";
    case Region::Tokyo: return "Tokyo";
    case Region::SaoPaulo: return "SaoPaulo";
    case Region::Ohio: return "Ohio";
    case Region::California: return "California";
    case Region::London: return "London";
    case Region::Seoul: return "Seoul";
  }
  return "?";
}

const char* region_code(Region r) {
  switch (r) {
    case Region::Virginia: return "V";
    case Region::Oregon: return "O";
    case Region::Ireland: return "I";
    case Region::Tokyo: return "T";
    case Region::SaoPaulo: return "SP";
    case Region::Ohio: return "OH";
    case Region::California: return "CA";
    case Region::London: return "LN";
    case Region::Seoul: return "SE";
  }
  return "?";
}

namespace {
// Inter-region RTTs in milliseconds (approximate public EC2 measurements).
// Order: V, O, I, T, SP, OH, CA, LN, SE
constexpr std::array<std::array<int, kNumRegions>, kNumRegions> kRttMs = {{
    //  V    O    I    T   SP   OH   CA   LN   SE
    {0, 68, 74, 156, 118, 11, 60, 76, 172},      // Virginia
    {68, 0, 124, 97, 182, 50, 22, 130, 126},     // Oregon
    {74, 124, 0, 212, 186, 86, 140, 11, 228},    // Ireland
    {156, 97, 212, 0, 256, 152, 107, 210, 34},   // Tokyo
    {118, 182, 186, 256, 0, 126, 172, 188, 294}, // SaoPaulo
    {11, 50, 86, 152, 126, 0, 52, 82, 160},      // Ohio
    {60, 22, 140, 107, 172, 52, 0, 136, 130},    // California
    {76, 130, 11, 210, 188, 82, 136, 0, 230},    // London
    {172, 126, 228, 34, 294, 160, 130, 230, 0},  // Seoul
}};

constexpr Duration kInterAzRtt = 1200;  // 1.2 ms
constexpr Duration kIntraAzRtt = 400;   // 0.4 ms
}  // namespace

Duration region_rtt(Region a, Region b) {
  return static_cast<Duration>(kRttMs[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)]) *
         kMillisecond;
}

Duration one_way_latency(const Site& a, const Site& b) {
  if (a.region != b.region) return region_rtt(a.region, b.region) / 2;
  if (a.az != b.az) return kInterAzRtt / 2;
  return kIntraAzRtt / 2;
}

}  // namespace spider
