#include "sim/world.hpp"

#include "common/payload.hpp"
#include "runtime/parallel.hpp"

namespace spider {

World::World(std::uint64_t seed, std::unique_ptr<CryptoProvider> crypto)
    : rng_(seed),
      crypto_(crypto ? std::move(crypto) : std::make_unique<FastCrypto>(seed)) {
  net_ = std::make_unique<SimNetwork>(queue_, rng_.fork());
  transport_ = net_.get();
  payload_digest_base_ = payload_digest_computations_total();
}

World::~World() = default;

obs::Tracer& World::enable_tracing(obs::Tracer::Mode mode, std::size_t ring_capacity) {
  tracer_ = std::make_unique<obs::Tracer>(mode, ring_capacity);
  tracer_raw_ = tracer_.get();
  net_->set_tracer(tracer_raw_);
  for (const auto& [id, name] : node_names_) tracer_->name_process(id, name);
  return *tracer_;
}

void World::name_node(NodeId id, std::string name) {
  node_names_[id] = std::move(name);
  if (tracer_raw_) tracer_raw_->name_process(id, node_names_[id]);
}

runtime::ParallelRuntime& World::enable_parallelism(unsigned threads, Duration epoch_len) {
  disable_parallelism();
  runtime_ = std::make_unique<runtime::ParallelRuntime>(*this, threads, epoch_len);
  net_->set_runtime(runtime_.get());
  set_run_driver([rt = runtime_.get()](Time t) { rt->drive(t); });
  return *runtime_;
}

void World::disable_parallelism() {
  if (!runtime_) return;
  net_->set_runtime(nullptr);
  run_driver_ = nullptr;
  runtime_.reset();
}

void World::disable_tracing() {
  net_->set_tracer(nullptr);
  tracer_raw_ = nullptr;
  tracer_.reset();
}

void World::refresh_platform_metrics() {
  metrics_.counter("eventqueue_scheduled").inc(
      queue_.scheduled_total() - metrics_.counter("eventqueue_scheduled").value());
  metrics_.counter("eventqueue_fired").inc(
      queue_.fired_total() - metrics_.counter("eventqueue_fired").value());
  metrics_.counter("eventqueue_cancelled").inc(
      queue_.cancelled_total() - metrics_.counter("eventqueue_cancelled").value());
  metrics_.gauge("eventqueue_pending").set(static_cast<std::int64_t>(queue_.pending()));

  const LinkStats& ls = transport_->stats();
  metrics_.gauge("net_wan_bytes").set(static_cast<std::int64_t>(ls.wan_bytes));
  metrics_.gauge("net_lan_bytes").set(static_cast<std::int64_t>(ls.lan_bytes));
  metrics_.gauge("net_wan_msgs").set(static_cast<std::int64_t>(ls.wan_msgs));
  metrics_.gauge("net_lan_msgs").set(static_cast<std::int64_t>(ls.lan_msgs));

  metrics_.gauge("payload_digest_computations")
      .set(static_cast<std::int64_t>(payload_digest_computations_total() -
                                     payload_digest_base_));

  if (runtime_) runtime_->fold_metrics();
}

}  // namespace spider
