#include "sim/world.hpp"

namespace spider {

World::World(std::uint64_t seed, std::unique_ptr<CryptoProvider> crypto)
    : rng_(seed),
      crypto_(crypto ? std::move(crypto) : std::make_unique<FastCrypto>(seed)) {
  net_ = std::make_unique<SimNetwork>(queue_, rng_.fork());
}

}  // namespace spider
