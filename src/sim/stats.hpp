// Measurement utilities: latency histograms with percentiles, bucketed time
// series (for the adaptability timeline) and CPU utilization sampling.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.hpp"

namespace spider {

/// Collects duration samples; percentiles computed on demand.
class LatencyStats {
 public:
  void add(Duration sample);
  void clear() { samples_.clear(); sorted_ = true; }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] Duration percentile(double p) const;  // p in [0, 100]
  [[nodiscard]] Duration median() const { return percentile(50.0); }
  [[nodiscard]] Duration p90() const { return percentile(90.0); }
  [[nodiscard]] Duration min() const;
  [[nodiscard]] Duration max() const;
  [[nodiscard]] double mean() const;

 private:
  mutable std::vector<Duration> samples_;
  mutable bool sorted_ = true;
};

/// Averages samples into fixed-width time buckets (paper Figure 10 reports
/// average response time over wall-clock time).
class TimeSeries {
 public:
  explicit TimeSeries(Duration bucket_width) : bucket_(bucket_width) {}

  void add(Time at, double value);

  struct Point {
    Time bucket_start;
    double average;
    std::size_t count;
  };
  [[nodiscard]] std::vector<Point> points() const;

 private:
  struct Bucket {
    double sum = 0;
    std::size_t count = 0;
  };
  Duration bucket_;
  std::vector<Bucket> buckets_;
};

/// Utilization of a single-core CPU over a measurement window.
struct CpuWindow {
  Duration busy_at_start = 0;
  Time window_start = 0;

  void begin(Time now, Duration busy_accum) {
    window_start = now;
    busy_at_start = busy_accum;
  }
  [[nodiscard]] double utilization(Time now, Duration busy_accum) const {
    Duration elapsed = now - window_start;
    if (elapsed <= 0) return 0.0;
    return 100.0 * static_cast<double>(busy_accum - busy_at_start) / static_cast<double>(elapsed);
  }
};

/// Formats microseconds as "12.3 ms" for report output.
std::string format_ms(Duration d);

}  // namespace spider
