// Measurement utilities: latency histograms with percentiles, bucketed time
// series (for the adaptability timeline) and CPU utilization sampling.
#pragma once

#include <cassert>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "obs/metrics.hpp"

namespace spider {

/// Collects duration samples; percentiles computed on demand.
///
/// Default mode is kBucketed: samples land in a fixed-memory
/// obs::LogHistogram (~7.6 KiB regardless of run length), so million-op
/// benchmarks no longer hoard one Duration per request. Bucketed
/// percentiles carry the histogram's error bound — relative error at most
/// 2^-5 ~= 3.2%, exact for values below 32 µs. kExact keeps every sample
/// and interpolates percentiles precisely; use it for small-N tests that
/// assert exact quantiles.
class LatencyStats {
 public:
  enum class Mode : std::uint8_t { kBucketed, kExact };

  LatencyStats() = default;
  explicit LatencyStats(Mode mode) : mode_(mode) {}

  void add(Duration sample);
  void clear();

  [[nodiscard]] Mode mode() const { return mode_; }
  [[nodiscard]] std::size_t count() const;
  [[nodiscard]] Duration percentile(double p) const;  // p in [0, 100]
  [[nodiscard]] Duration median() const { return percentile(50.0); }
  [[nodiscard]] Duration p90() const { return percentile(90.0); }
  [[nodiscard]] Duration p99() const { return percentile(99.0); }
  [[nodiscard]] Duration p999() const { return percentile(99.9); }
  [[nodiscard]] Duration min() const;
  [[nodiscard]] Duration max() const;
  [[nodiscard]] double mean() const;

  /// Bucketed-mode backing histogram (empty in exact mode) — lets report
  /// code merge per-region stats or snapshot them through the registry.
  [[nodiscard]] const obs::LogHistogram& histogram() const { return hist_; }

 private:
  Mode mode_ = Mode::kBucketed;
  obs::LogHistogram hist_;
  mutable std::vector<Duration> samples_;
  mutable bool sorted_ = true;
};

/// Averages samples into fixed-width time buckets (paper Figure 10 reports
/// average response time over wall-clock time).
///
/// Storage is sparse (one map node per non-empty bucket) and capped at
/// `max_buckets` distinct buckets, so a single far-future timestamp costs
/// one node instead of resizing a dense array to gigabytes — open-loop
/// runs with multi-hour horizons stay bounded. Samples that would create a
/// bucket beyond the cap are counted in dropped() instead of recorded.
class TimeSeries {
 public:
  static constexpr std::size_t kDefaultMaxBuckets = 1 << 20;

  /// Throws std::invalid_argument unless bucket_width > 0 (a zero width
  /// used to divide by zero on the first add).
  explicit TimeSeries(Duration bucket_width,
                      std::size_t max_buckets = kDefaultMaxBuckets);

  void add(Time at, double value);

  struct Point {
    Time bucket_start;
    double average;
    std::size_t count;
  };
  [[nodiscard]] std::vector<Point> points() const;

  /// Non-empty buckets currently stored.
  [[nodiscard]] std::size_t bucket_nodes() const { return buckets_.size(); }
  /// Samples discarded because they addressed a new bucket past the cap.
  [[nodiscard]] std::size_t dropped() const { return dropped_; }

 private:
  struct Bucket {
    double sum = 0;
    std::size_t count = 0;
  };
  Duration bucket_;
  std::size_t max_buckets_;
  std::map<std::uint64_t, Bucket> buckets_;  // bucket index -> aggregate
  std::size_t dropped_ = 0;
};

/// Utilization of a single-core CPU over a measurement window.
struct CpuWindow {
  Duration busy_at_start = 0;
  Time window_start = 0;

  void begin(Time now, Duration busy_accum) {
    window_start = now;
    busy_at_start = busy_accum;
  }
  /// Clamped to [0, 100]: a skipped begin() or overlapping windows can make
  /// the raw ratio negative or exceed the window (busy time accrued before
  /// window_start), and reports feed capacity models that assume a
  /// percentage. busy_accum must be monotone across one window.
  [[nodiscard]] double utilization(Time now, Duration busy_accum) const {
    assert(busy_accum >= busy_at_start && "busy_accum must not run backwards");
    Duration elapsed = now - window_start;
    if (elapsed <= 0) return 0.0;
    double u = 100.0 * static_cast<double>(busy_accum - busy_at_start) /
               static_cast<double>(elapsed);
    if (u < 0.0) return 0.0;
    if (u > 100.0) return 100.0;
    return u;
  }
};

/// Formats microseconds as "12.3 ms" for report output.
std::string format_ms(Duration d);

}  // namespace spider
