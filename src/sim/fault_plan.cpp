#include "sim/fault_plan.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <tuple>

#include "sim/world.hpp"

namespace spider {

namespace {
bool site_in(const Site& s, const std::vector<Site>& set) {
  return std::find(set.begin(), set.end(), s) != set.end();
}

// Doubles (loss rates, bandwidth factors) must survive the text round
// trip bit-exactly; max_digits10 guarantees that.
std::string fmt_double(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}
}  // namespace

FaultPlan::FaultPlan(World& world) : world_(world), alive_(std::make_shared<bool>(true)) {
  world_.net().set_fault_shaper(
      [this](NodeId from, Site fs, NodeId to, Site ts) { return shape(from, fs, to, ts); });
}

FaultPlan::~FaultPlan() {
  *alive_ = false;
  world_.net().set_fault_shaper({});
}

std::uint64_t FaultPlan::link_key(NodeId a, NodeId b) {
  NodeId lo = std::min(a, b), hi = std::max(a, b);
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

LinkFault FaultPlan::shape(NodeId from, Site from_site, NodeId to, Site to_site) const {
  LinkFault f;
  for (const Partition& p : partitions_) {
    const bool from_a = p.a.count(from) > 0 || site_in(from_site, p.sa);
    const bool from_b = p.b.count(from) > 0 || site_in(from_site, p.sb);
    const bool to_a = p.a.count(to) > 0 || site_in(to_site, p.sa);
    const bool to_b = p.b.count(to) > 0 || site_in(to_site, p.sb);
    if ((from_a && to_b) || (from_b && to_a)) {
      f.cut = true;
      return f;
    }
  }
  auto it = link_mods_.find(link_key(from, to));
  if (it != link_mods_.end()) {
    f.extra_delay = it->second.extra_delay;
    f.loss = it->second.loss;
  }
  return f;
}

void FaultPlan::schedule(Time t, std::string what, std::function<void()> fn) {
  script_.emplace_back(t, std::move(what));
  world_.queue().schedule_at(t, [this, alive = alive_, fn = std::move(fn)] {
    if (!*alive) return;
    ++actions_fired_;
    fn();
  });
}

void FaultPlan::remove_partition(std::uint64_t id) {
  partitions_.erase(std::remove_if(partitions_.begin(), partitions_.end(),
                                   [id](const Partition& p) { return p.id == id; }),
                    partitions_.end());
}

void FaultPlan::partition_nodes_at(Time t, std::vector<NodeId> a, std::vector<NodeId> b,
                                   Duration heal_after) {
  recorded_.push_back(Action{"partition", t, heal_after, 0, 0, 0.0, 0, a, b, {}, {}});
  std::uint64_t id = next_partition_id_++;
  Partition part;
  part.id = id;
  part.a.insert(a.begin(), a.end());
  part.b.insert(b.begin(), b.end());
  schedule(t, "partition#" + std::to_string(id),
           [this, part = std::move(part)] { partitions_.push_back(part); });
  if (heal_after > 0) {
    schedule(t + heal_after, "heal#" + std::to_string(id),
             [this, id] { remove_partition(id); });
  }
}

void FaultPlan::partition_sites_at(Time t, std::vector<Site> a, std::vector<Site> b,
                                   Duration heal_after) {
  recorded_.push_back(Action{"sitepart", t, heal_after, 0, 0, 0.0, 0, {}, {}, a, b});
  std::uint64_t id = next_partition_id_++;
  Partition part;
  part.id = id;
  part.sa = std::move(a);
  part.sb = std::move(b);
  schedule(t, "site-partition#" + std::to_string(id),
           [this, part = std::move(part)] { partitions_.push_back(part); });
  if (heal_after > 0) {
    schedule(t + heal_after, "heal#" + std::to_string(id),
             [this, id] { remove_partition(id); });
  }
}

void FaultPlan::heal_at(Time t) {
  recorded_.push_back(Action{"healall", t, 0, 0, 0, 0.0, 0, {}, {}, {}, {}});
  schedule(t, "heal-all", [this] { partitions_.clear(); });
}

void FaultPlan::apply_crash(NodeId n) {
  if (!crashed_.insert(n).second) return;  // already down
  if (on_crash) {
    on_crash(n);
  } else {
    world_.net().set_node_down(n, true);  // crash-stop fallback
  }
}

void FaultPlan::apply_restart(NodeId n) {
  if (crashed_.erase(n) == 0) return;  // not down
  if (on_restart) {
    on_restart(n);
  } else {
    world_.net().set_node_down(n, false);
  }
}

void FaultPlan::crash_at(Time t, NodeId n) {
  recorded_.push_back(Action{"crash", t, 0, n, 0, 0.0, 0, {}, {}, {}, {}});
  schedule(t, "crash node " + std::to_string(n), [this, n] { apply_crash(n); });
}

void FaultPlan::restart_at(Time t, NodeId n) {
  recorded_.push_back(Action{"restart", t, 0, n, 0, 0.0, 0, {}, {}, {}, {}});
  schedule(t, "restart node " + std::to_string(n), [this, n] { apply_restart(n); });
}

void FaultPlan::link_delay_at(Time t, NodeId a, NodeId b, Duration extra, Duration duration) {
  recorded_.push_back(
      Action{"delay", t, duration, a, b, static_cast<double>(extra), 0, {}, {}, {}, {}});
  std::uint64_t key = link_key(a, b);
  schedule(t, "delay+" + std::to_string(extra) + "us link " + std::to_string(a) + "<->" +
                  std::to_string(b),
           [this, key, extra, until = t + duration] {
             LinkMod& m = link_mods_[key];
             m.extra_delay = extra;
             m.delay_until = std::max(m.delay_until, until);
           });
  schedule(t + duration, "delay-end link " + std::to_string(a) + "<->" + std::to_string(b),
           [this, key] {
             LinkMod& m = link_mods_[key];
             if (world_.now() >= m.delay_until) m.extra_delay = 0;
           });
}

void FaultPlan::link_loss_at(Time t, NodeId a, NodeId b, double loss, Duration duration) {
  recorded_.push_back(Action{"loss", t, duration, a, b, loss, 0, {}, {}, {}, {}});
  std::uint64_t key = link_key(a, b);
  schedule(t, "loss " + std::to_string(loss) + " link " + std::to_string(a) + "<->" +
                  std::to_string(b),
           [this, key, loss, until = t + duration] {
             LinkMod& m = link_mods_[key];
             m.loss = loss;
             m.loss_until = std::max(m.loss_until, until);
           });
  schedule(t + duration, "loss-end link " + std::to_string(a) + "<->" + std::to_string(b),
           [this, key] {
             LinkMod& m = link_mods_[key];
             if (world_.now() >= m.loss_until) m.loss = 0.0;
           });
}

void FaultPlan::slow_node_at(Time t, NodeId n, double factor, Duration duration) {
  recorded_.push_back(Action{"slow", t, duration, n, 0, factor, 0, {}, {}, {}, {}});
  schedule(t, "slow node " + std::to_string(n) + " x" + std::to_string(factor),
           [this, n, factor, until = t + duration] {
             world_.net().set_node_bandwidth_factor(n, factor);
             Time& cur = slow_until_[n];
             cur = std::max(cur, until);
           });
  schedule(t + duration, "slow-end node " + std::to_string(n), [this, n] {
    if (world_.now() >= slow_until_[n]) world_.net().set_node_bandwidth_factor(n, 1.0);
  });
}

// --------------------------------------------------------- Byzantine windows

std::string FaultPlan::byz_label(std::uint8_t bits) {
  std::string out;
  auto add = [&out](const char* name) {
    if (!out.empty()) out += "+";
    out += name;
  };
  if (bits & kByzCorrupt) add("corrupt-replies");
  if (bits & kByzDropFwd) add("drop-forwarding");
  if (bits & kByzMute) add("mute");
  if (bits & kByzMuteRx) add("mute-rx");
  if (bits & kByzEquivocate) add("equivocate");
  if (bits & kByzForgeCp) add("forge-checkpoints");
  return out;
}

void FaultPlan::apply_byz(NodeId n) {
  const Time now = world_.now();
  auto active = [this, n, now](std::uint8_t bit) {
    auto it = byz_until_.find({n, bit});
    return it != byz_until_.end() && it->second > now;
  };
  ByzantineFlags f;
  f.corrupt_replies = active(kByzCorrupt);
  f.drop_forwarding = active(kByzDropFwd);
  f.mute = active(kByzMute);
  f.mute_rx = active(kByzMuteRx);
  f.equivocate = active(kByzEquivocate);
  f.forge_checkpoints = active(kByzForgeCp);

  ByzantineFlags& cur = byz_state_[n];
  if (cur == f) return;  // an overlapping window still holds the state
  cur = f;
  if (on_byzantine) on_byzantine(n, f);
}

void FaultPlan::byz_window(Time t, NodeId n, std::uint8_t bits, Duration duration) {
  recorded_.push_back(Action{"byz", t, duration, n, 0, 0.0, bits, {}, {}, {}, {}});
  schedule(t, "byz+" + byz_label(bits) + " node " + std::to_string(n),
           [this, n, bits, until = t + duration] {
             for (std::uint8_t bit = 1; bit != 0; bit = static_cast<std::uint8_t>(bit << 1)) {
               if ((bits & bit) == 0) continue;
               Time& cur = byz_until_[{n, bit}];
               cur = std::max(cur, until);
             }
             apply_byz(n);
           });
  schedule(t + duration, "byz-end node " + std::to_string(n), [this, n] { apply_byz(n); });
}

void FaultPlan::corrupt_replies_at(Time t, NodeId n, Duration duration) {
  byz_window(t, n, kByzCorrupt, duration);
}

void FaultPlan::drop_forwarding_at(Time t, NodeId n, Duration duration) {
  byz_window(t, n, kByzDropFwd, duration);
}

void FaultPlan::mute_at(Time t, NodeId n, Duration duration, bool rx_too) {
  byz_window(t, n, static_cast<std::uint8_t>(rx_too ? (kByzMute | kByzMuteRx) : kByzMute),
             duration);
}

void FaultPlan::equivocate_at(Time t, NodeId n, Duration duration) {
  byz_window(t, n, kByzEquivocate, duration);
}

void FaultPlan::forge_checkpoints_at(Time t, NodeId n, Duration duration) {
  byz_window(t, n, kByzForgeCp, duration);
}

ByzantineFlags FaultPlan::byzantine(NodeId n) const {
  auto it = byz_state_.find(n);
  return it == byz_state_.end() ? ByzantineFlags{} : it->second;
}

void FaultPlan::randomize(const ChaosProfile& profile) {
  Rng rng = world_.rng().fork();

  std::vector<NodeId> pool = profile.crash_targets;
  for (const auto& g : profile.partition_groups) pool.insert(pool.end(), g.begin(), g.end());
  std::sort(pool.begin(), pool.end());
  pool.erase(std::unique(pool.begin(), pool.end()), pool.end());

  // Draws an action window [t, t + outage) inside [start, horizon).
  auto draw_window = [&rng, &profile](Time& t, Duration& outage) {
    const Time span = std::max<Time>(profile.horizon - profile.start, 1);
    t = profile.start + static_cast<Time>(rng.uniform(static_cast<std::uint64_t>(span)));
    outage = profile.min_outage +
             static_cast<Duration>(rng.uniform(static_cast<std::uint64_t>(
                 std::max<Duration>(profile.max_outage - profile.min_outage, 1))));
    outage = std::min<Duration>(outage, profile.horizon - t);
    return outage > 0;
  };

  // Busy intervals of in-progress crashes: (target, start, end).
  std::vector<std::tuple<NodeId, Time, Time>> crash_busy;

  for (std::size_t i = 0; i < profile.actions && !pool.empty(); ++i) {
    Time t = 0;
    Duration outage = 0;
    if (!draw_window(t, outage)) continue;

    std::uint64_t kind = rng.uniform(5);
    if (kind == 0 && !profile.crash_targets.empty()) {
      NodeId target =
          profile.crash_targets[rng.uniform(profile.crash_targets.size())];
      // Respect the crash-concurrency cap; a disallowed crash degrades to a
      // slow-node window so the action count stays seed-stable.
      std::size_t overlapping = 0;
      bool same_target = false;
      for (const auto& [n, t0, t1] : crash_busy) {
        if (t0 < t + outage && t < t1) ++overlapping;
        // Same-target windows must not even touch: a restart and a crash
        // scheduled at the same instant fire in scheduling order, which
        // can revive the node right after the second crash no-ops —
        // silently cancelling a fault the schedule claims to inject.
        if (n == target && t0 <= t + outage && t <= t1) same_target = true;
      }
      if (!same_target && overlapping < profile.max_concurrent_crashes) {
        crash_busy.emplace_back(target, t, t + outage);
        crash_at(t, target);
        restart_at(t + outage, target);
        continue;
      }
      kind = 4;
    }
    if (kind == 1 && profile.partition_groups.size() >= 2) {
      std::size_t side = rng.uniform(profile.partition_groups.size());
      std::vector<NodeId> a = profile.partition_groups[side];
      std::vector<NodeId> b;
      for (std::size_t g = 0; g < profile.partition_groups.size(); ++g) {
        if (g == side) continue;
        b.insert(b.end(), profile.partition_groups[g].begin(),
                 profile.partition_groups[g].end());
      }
      partition_nodes_at(t, std::move(a), std::move(b), outage);
      continue;
    }
    if ((kind == 2 || kind == 3) && pool.size() >= 2) {
      // Distinct endpoints by construction: offset from a's own index, so
      // a self-link (which no message ever traverses) is impossible.
      std::size_t ia = rng.uniform(pool.size());
      NodeId a = pool[ia];
      NodeId b = pool[(ia + 1 + rng.uniform(pool.size() - 1)) % pool.size()];
      if (kind == 2) {
        double loss = 0.05 + rng.uniform01() * (profile.max_loss - 0.05);
        link_loss_at(t, a, b, loss, outage);
      } else {
        Duration extra = 1 + static_cast<Duration>(rng.uniform(
                                 static_cast<std::uint64_t>(profile.max_extra_delay)));
        link_delay_at(t, a, b, extra, outage);
      }
      continue;
    }
    NodeId n = pool[rng.uniform(pool.size())];
    double factor =
        profile.min_bw_factor + rng.uniform01() * (0.5 - profile.min_bw_factor);
    slow_node_at(t, n, factor, outage);
  }

  // ---- Byzantine schedule ------------------------------------------------
  // First fix WHO turns Byzantine: at most the capped number of distinct
  // members per group per role — the ≤f threat-model boundary. Then draw
  // the timed misbehaviour windows over that fixed set.
  if (profile.byz_actions == 0) return;
  struct ByzTarget {
    NodeId node;
    bool consensus;
  };
  std::vector<ByzTarget> targets;
  auto sample_group = [&rng, &targets](const std::vector<NodeId>& grp, std::uint32_t cap,
                                       bool consensus) {
    std::vector<NodeId> candidates = grp;
    for (std::uint32_t k = 0; k < cap && !candidates.empty(); ++k) {
      std::size_t i = rng.uniform(candidates.size());
      targets.push_back(ByzTarget{candidates[i], consensus});
      candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(i));
    }
  };
  for (const auto& grp : profile.byz_consensus_groups) {
    sample_group(grp, profile.max_byz_per_consensus_group, true);
  }
  for (const auto& grp : profile.byz_exec_groups) {
    sample_group(grp, profile.max_byz_per_exec_group, false);
  }
  if (targets.empty()) return;

  for (std::size_t i = 0; i < profile.byz_actions; ++i) {
    Time t = 0;
    Duration outage = 0;
    if (!draw_window(t, outage)) continue;
    const ByzTarget& bt = targets[rng.uniform(targets.size())];
    if (bt.consensus) {
      // corrupt-replies on a consensus target exercises PBFT-baseline
      // replicas (which also execute); pure agreement replicas have no
      // client replies and ignore the flag.
      switch (rng.uniform(5)) {
        case 0: mute_at(t, bt.node, outage, /*rx_too=*/false); break;
        case 1: mute_at(t, bt.node, outage, /*rx_too=*/true); break;
        case 2: equivocate_at(t, bt.node, outage); break;
        case 3: forge_checkpoints_at(t, bt.node, outage); break;
        default: corrupt_replies_at(t, bt.node, outage); break;
      }
    } else {
      switch (rng.uniform(3)) {
        case 0: corrupt_replies_at(t, bt.node, outage); break;
        case 1: drop_forwarding_at(t, bt.node, outage); break;
        default: forge_checkpoints_at(t, bt.node, outage); break;
      }
    }
  }
}

std::string FaultPlan::serialize_script() const {
  // One line per top-level action, in the original call order — replaying
  // the lines in order reproduces the event-queue scheduling order, which
  // matters for same-time events.
  std::ostringstream out;
  auto put_nodes = [&out](const std::vector<NodeId>& v) {
    out << " " << v.size();
    for (NodeId n : v) out << " " << n;
  };
  auto put_sites = [&out](const std::vector<Site>& v) {
    out << " " << v.size();
    for (const Site& s : v) {
      out << " " << static_cast<int>(s.region) << " " << static_cast<int>(s.az);
    }
  };
  for (const Action& a : recorded_) {
    out << a.kind << " " << a.t;
    if (a.kind == "partition") {
      out << " " << a.duration;
      put_nodes(a.set_a);
      put_nodes(a.set_b);
    } else if (a.kind == "sitepart") {
      out << " " << a.duration;
      put_sites(a.sites_a);
      put_sites(a.sites_b);
    } else if (a.kind == "healall") {
      // time only
    } else if (a.kind == "crash" || a.kind == "restart") {
      out << " " << a.a;
    } else if (a.kind == "delay") {
      out << " " << a.duration << " " << a.a << " " << a.b << " "
          << static_cast<Duration>(a.x);
    } else if (a.kind == "loss") {
      out << " " << a.duration << " " << a.a << " " << a.b << " " << fmt_double(a.x);
    } else if (a.kind == "slow") {
      out << " " << a.duration << " " << a.a << " " << fmt_double(a.x);
    } else if (a.kind == "byz") {
      out << " " << a.duration << " " << a.a << " " << static_cast<unsigned>(a.bits);
    }
    out << "\n";
  }
  return out.str();
}

void FaultPlan::schedule_script(const std::string& script) {
  std::istringstream in(script);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::istringstream ls(line);
    auto fail = [&lineno, &line]() -> std::invalid_argument {
      return std::invalid_argument("FaultPlan script line " + std::to_string(lineno) +
                                   " malformed: " + line);
    };
    // Elements are read one at a time: a corrupted count in a hand-edited
    // artifact must land on the malformed-line diagnostic, not pre-allocate
    // an absurd vector.
    auto get_nodes = [&ls, &fail] {
      std::size_t n = 0;
      if (!(ls >> n)) throw fail();
      std::vector<NodeId> v;
      for (std::size_t i = 0; i < n; ++i) {
        NodeId id = 0;
        if (!(ls >> id)) throw fail();
        v.push_back(id);
      }
      return v;
    };
    auto get_sites = [&ls, &fail] {
      std::size_t n = 0;
      if (!(ls >> n)) throw fail();
      std::vector<Site> v;
      for (std::size_t i = 0; i < n; ++i) {
        int region = 0, az = 0;
        if (!(ls >> region >> az)) throw fail();
        v.push_back(Site{static_cast<Region>(region), static_cast<std::uint8_t>(az)});
      }
      return v;
    };

    std::string kind;
    Time t = 0;
    if (!(ls >> kind >> t)) throw fail();
    if (kind == "partition") {
      Duration dur = 0;
      if (!(ls >> dur)) throw fail();
      std::vector<NodeId> a = get_nodes();
      std::vector<NodeId> b = get_nodes();
      partition_nodes_at(t, std::move(a), std::move(b), dur);
    } else if (kind == "sitepart") {
      Duration dur = 0;
      if (!(ls >> dur)) throw fail();
      std::vector<Site> a = get_sites();
      std::vector<Site> b = get_sites();
      partition_sites_at(t, std::move(a), std::move(b), dur);
    } else if (kind == "healall") {
      heal_at(t);
    } else if (kind == "crash" || kind == "restart") {
      NodeId n = 0;
      if (!(ls >> n)) throw fail();
      if (kind == "crash") {
        crash_at(t, n);
      } else {
        restart_at(t, n);
      }
    } else if (kind == "delay") {
      Duration dur = 0, extra = 0;
      NodeId a = 0, b = 0;
      if (!(ls >> dur >> a >> b >> extra)) throw fail();
      link_delay_at(t, a, b, extra, dur);
    } else if (kind == "loss") {
      Duration dur = 0;
      NodeId a = 0, b = 0;
      double loss = 0.0;
      if (!(ls >> dur >> a >> b >> loss)) throw fail();
      link_loss_at(t, a, b, loss, dur);
    } else if (kind == "slow") {
      Duration dur = 0;
      NodeId n = 0;
      double factor = 0.0;
      if (!(ls >> dur >> n >> factor)) throw fail();
      slow_node_at(t, n, factor, dur);
    } else if (kind == "byz") {
      Duration dur = 0;
      NodeId n = 0;
      unsigned bits = 0;
      if (!(ls >> dur >> n >> bits)) throw fail();
      byz_window(t, n, static_cast<std::uint8_t>(bits), dur);
    } else {
      throw fail();
    }
  }
}

std::string FaultPlan::describe() const {
  std::vector<std::pair<Time, std::string>> sorted = script_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::string out;
  for (const auto& [t, what] : sorted) {
    out += "t=" + std::to_string(t) + "us  " + what + "\n";
  }
  return out;
}

}  // namespace spider
