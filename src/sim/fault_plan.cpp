#include "sim/fault_plan.hpp"

#include <algorithm>
#include <tuple>

#include "sim/world.hpp"

namespace spider {

namespace {
bool site_in(const Site& s, const std::vector<Site>& set) {
  return std::find(set.begin(), set.end(), s) != set.end();
}
}  // namespace

FaultPlan::FaultPlan(World& world) : world_(world), alive_(std::make_shared<bool>(true)) {
  world_.net().set_fault_shaper(
      [this](NodeId from, Site fs, NodeId to, Site ts) { return shape(from, fs, to, ts); });
}

FaultPlan::~FaultPlan() {
  *alive_ = false;
  world_.net().set_fault_shaper({});
}

std::uint64_t FaultPlan::link_key(NodeId a, NodeId b) {
  NodeId lo = std::min(a, b), hi = std::max(a, b);
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

LinkFault FaultPlan::shape(NodeId from, Site from_site, NodeId to, Site to_site) const {
  LinkFault f;
  for (const Partition& p : partitions_) {
    const bool from_a = p.a.count(from) > 0 || site_in(from_site, p.sa);
    const bool from_b = p.b.count(from) > 0 || site_in(from_site, p.sb);
    const bool to_a = p.a.count(to) > 0 || site_in(to_site, p.sa);
    const bool to_b = p.b.count(to) > 0 || site_in(to_site, p.sb);
    if ((from_a && to_b) || (from_b && to_a)) {
      f.cut = true;
      return f;
    }
  }
  auto it = link_mods_.find(link_key(from, to));
  if (it != link_mods_.end()) {
    f.extra_delay = it->second.extra_delay;
    f.loss = it->second.loss;
  }
  return f;
}

void FaultPlan::schedule(Time t, std::string what, std::function<void()> fn) {
  script_.emplace_back(t, std::move(what));
  world_.queue().schedule_at(t, [this, alive = alive_, fn = std::move(fn)] {
    if (!*alive) return;
    ++actions_fired_;
    fn();
  });
}

void FaultPlan::remove_partition(std::uint64_t id) {
  partitions_.erase(std::remove_if(partitions_.begin(), partitions_.end(),
                                   [id](const Partition& p) { return p.id == id; }),
                    partitions_.end());
}

void FaultPlan::partition_nodes_at(Time t, std::vector<NodeId> a, std::vector<NodeId> b,
                                   Duration heal_after) {
  std::uint64_t id = next_partition_id_++;
  Partition part;
  part.id = id;
  part.a.insert(a.begin(), a.end());
  part.b.insert(b.begin(), b.end());
  schedule(t, "partition#" + std::to_string(id),
           [this, part = std::move(part)] { partitions_.push_back(part); });
  if (heal_after > 0) {
    schedule(t + heal_after, "heal#" + std::to_string(id),
             [this, id] { remove_partition(id); });
  }
}

void FaultPlan::partition_sites_at(Time t, std::vector<Site> a, std::vector<Site> b,
                                   Duration heal_after) {
  std::uint64_t id = next_partition_id_++;
  Partition part;
  part.id = id;
  part.sa = std::move(a);
  part.sb = std::move(b);
  schedule(t, "site-partition#" + std::to_string(id),
           [this, part = std::move(part)] { partitions_.push_back(part); });
  if (heal_after > 0) {
    schedule(t + heal_after, "heal#" + std::to_string(id),
             [this, id] { remove_partition(id); });
  }
}

void FaultPlan::heal_at(Time t) {
  schedule(t, "heal-all", [this] { partitions_.clear(); });
}

void FaultPlan::apply_crash(NodeId n) {
  if (!crashed_.insert(n).second) return;  // already down
  if (on_crash) {
    on_crash(n);
  } else {
    world_.net().set_node_down(n, true);  // crash-stop fallback
  }
}

void FaultPlan::apply_restart(NodeId n) {
  if (crashed_.erase(n) == 0) return;  // not down
  if (on_restart) {
    on_restart(n);
  } else {
    world_.net().set_node_down(n, false);
  }
}

void FaultPlan::crash_at(Time t, NodeId n) {
  schedule(t, "crash node " + std::to_string(n), [this, n] { apply_crash(n); });
}

void FaultPlan::restart_at(Time t, NodeId n) {
  schedule(t, "restart node " + std::to_string(n), [this, n] { apply_restart(n); });
}

void FaultPlan::link_delay_at(Time t, NodeId a, NodeId b, Duration extra, Duration duration) {
  std::uint64_t key = link_key(a, b);
  schedule(t, "delay+" + std::to_string(extra) + "us link " + std::to_string(a) + "<->" +
                  std::to_string(b),
           [this, key, extra, until = t + duration] {
             LinkMod& m = link_mods_[key];
             m.extra_delay = extra;
             m.delay_until = std::max(m.delay_until, until);
           });
  schedule(t + duration, "delay-end link " + std::to_string(a) + "<->" + std::to_string(b),
           [this, key] {
             LinkMod& m = link_mods_[key];
             if (world_.now() >= m.delay_until) m.extra_delay = 0;
           });
}

void FaultPlan::link_loss_at(Time t, NodeId a, NodeId b, double loss, Duration duration) {
  std::uint64_t key = link_key(a, b);
  schedule(t, "loss " + std::to_string(loss) + " link " + std::to_string(a) + "<->" +
                  std::to_string(b),
           [this, key, loss, until = t + duration] {
             LinkMod& m = link_mods_[key];
             m.loss = loss;
             m.loss_until = std::max(m.loss_until, until);
           });
  schedule(t + duration, "loss-end link " + std::to_string(a) + "<->" + std::to_string(b),
           [this, key] {
             LinkMod& m = link_mods_[key];
             if (world_.now() >= m.loss_until) m.loss = 0.0;
           });
}

void FaultPlan::slow_node_at(Time t, NodeId n, double factor, Duration duration) {
  schedule(t, "slow node " + std::to_string(n) + " x" + std::to_string(factor),
           [this, n, factor, until = t + duration] {
             world_.net().set_node_bandwidth_factor(n, factor);
             Time& cur = slow_until_[n];
             cur = std::max(cur, until);
           });
  schedule(t + duration, "slow-end node " + std::to_string(n), [this, n] {
    if (world_.now() >= slow_until_[n]) world_.net().set_node_bandwidth_factor(n, 1.0);
  });
}

void FaultPlan::randomize(const ChaosProfile& profile) {
  Rng rng = world_.rng().fork();

  std::vector<NodeId> pool = profile.crash_targets;
  for (const auto& g : profile.partition_groups) pool.insert(pool.end(), g.begin(), g.end());
  std::sort(pool.begin(), pool.end());
  pool.erase(std::unique(pool.begin(), pool.end()), pool.end());
  if (pool.empty()) return;

  // Busy intervals of in-progress crashes: (target, start, end).
  std::vector<std::tuple<NodeId, Time, Time>> crash_busy;

  for (std::size_t i = 0; i < profile.actions; ++i) {
    const Time span = std::max<Time>(profile.horizon - profile.start, 1);
    Time t = profile.start + static_cast<Time>(rng.uniform(static_cast<std::uint64_t>(span)));
    Duration outage = profile.min_outage +
                      static_cast<Duration>(rng.uniform(static_cast<std::uint64_t>(
                          std::max<Duration>(profile.max_outage - profile.min_outage, 1))));
    outage = std::min<Duration>(outage, profile.horizon - t);
    if (outage <= 0) continue;

    std::uint64_t kind = rng.uniform(5);
    if (kind == 0 && !profile.crash_targets.empty()) {
      NodeId target =
          profile.crash_targets[rng.uniform(profile.crash_targets.size())];
      // Respect the crash-concurrency cap; a disallowed crash degrades to a
      // slow-node window so the action count stays seed-stable.
      std::size_t overlapping = 0;
      bool same_target = false;
      for (const auto& [n, t0, t1] : crash_busy) {
        if (t0 < t + outage && t < t1) ++overlapping;
        // Same-target windows must not even touch: a restart and a crash
        // scheduled at the same instant fire in scheduling order, which
        // can revive the node right after the second crash no-ops —
        // silently cancelling a fault the schedule claims to inject.
        if (n == target && t0 <= t + outage && t <= t1) same_target = true;
      }
      if (!same_target && overlapping < profile.max_concurrent_crashes) {
        crash_busy.emplace_back(target, t, t + outage);
        crash_at(t, target);
        restart_at(t + outage, target);
        continue;
      }
      kind = 4;
    }
    if (kind == 1 && profile.partition_groups.size() >= 2) {
      std::size_t side = rng.uniform(profile.partition_groups.size());
      std::vector<NodeId> a = profile.partition_groups[side];
      std::vector<NodeId> b;
      for (std::size_t g = 0; g < profile.partition_groups.size(); ++g) {
        if (g == side) continue;
        b.insert(b.end(), profile.partition_groups[g].begin(),
                 profile.partition_groups[g].end());
      }
      partition_nodes_at(t, std::move(a), std::move(b), outage);
      continue;
    }
    if ((kind == 2 || kind == 3) && pool.size() >= 2) {
      // Distinct endpoints by construction: offset from a's own index, so
      // a self-link (which no message ever traverses) is impossible.
      std::size_t ia = rng.uniform(pool.size());
      NodeId a = pool[ia];
      NodeId b = pool[(ia + 1 + rng.uniform(pool.size() - 1)) % pool.size()];
      if (kind == 2) {
        double loss = 0.05 + rng.uniform01() * (profile.max_loss - 0.05);
        link_loss_at(t, a, b, loss, outage);
      } else {
        Duration extra = 1 + static_cast<Duration>(rng.uniform(
                                 static_cast<std::uint64_t>(profile.max_extra_delay)));
        link_delay_at(t, a, b, extra, outage);
      }
      continue;
    }
    NodeId n = pool[rng.uniform(pool.size())];
    double factor =
        profile.min_bw_factor + rng.uniform01() * (0.5 - profile.min_bw_factor);
    slow_node_at(t, n, factor, outage);
  }
}

std::string FaultPlan::describe() const {
  std::vector<std::pair<Time, std::string>> sorted = script_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::string out;
  for (const auto& [t, what] : sorted) {
    out += "t=" + std::to_string(t) + "us  " + what + "\n";
  }
  return out;
}

}  // namespace spider
