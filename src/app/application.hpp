// Deterministic state-machine application interface (paper §A.4.4).
//
// Every replication system in this repository (Spider, BFT, BFT-WV, HFT)
// executes requests against this interface. Implementations must be
// deterministic: identical op sequences yield identical states and replies.
#pragma once

#include <memory>

#include "common/bytes.hpp"

namespace spider {

class Application {
 public:
  virtual ~Application() = default;

  /// Executes an operation that may modify state; returns the reply.
  virtual Bytes execute(BytesView op) = 0;

  /// Executes a read-only operation against current state (weakly
  /// consistent reads); must not modify state.
  virtual Bytes execute_readonly(BytesView op) const = 0;

  /// Serializes the full application state.
  virtual Bytes snapshot() const = 0;

  /// Replaces the state with a previously taken snapshot.
  virtual void restore(BytesView snapshot) = 0;

  /// Fresh instance of the same application type (for checkpoint transfer
  /// into empty replicas).
  virtual std::unique_ptr<Application> clone_empty() const = 0;
};

}  // namespace spider
