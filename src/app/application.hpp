// Deterministic state-machine application interface (paper §A.4.4).
//
// Every replication system in this repository (Spider, BFT, BFT-WV, HFT)
// executes requests against this interface. Implementations must be
// deterministic: identical op sequences yield identical states and replies.
#pragma once

#include <memory>

#include "common/bytes.hpp"

namespace spider {

class Application {
 public:
  virtual ~Application() = default;

  /// Executes an operation that may modify state; returns the reply.
  virtual Bytes execute(BytesView op) = 0;

  /// Executes a read-only operation at an ordered position (strongly
  /// consistent reads); must not modify state.
  virtual Bytes execute_readonly(BytesView op) const = 0;

  /// Executes a read-only operation on the unordered fast path (weak or
  /// direct reads). Replicas answer from local state at *different* commit
  /// positions and clients need byte-identical replies for a quorum, so
  /// implementations must keep these replies free of global progress
  /// counters that unrelated writes advance. Defaults to execute_readonly.
  virtual Bytes execute_weak(BytesView op) const { return execute_readonly(op); }

  /// Serializes the full application state.
  virtual Bytes snapshot() const = 0;

  /// Replaces the state with a previously taken snapshot.
  virtual void restore(BytesView snapshot) = 0;

  /// Fresh instance of the same application type (for checkpoint transfer
  /// into empty replicas).
  virtual std::unique_ptr<Application> clone_empty() const = 0;
};

}  // namespace spider
