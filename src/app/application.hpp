// Deterministic state-machine application interface (paper §A.4.4).
//
// Every replication system in this repository (Spider, BFT, BFT-WV, HFT)
// executes requests against this interface. Implementations must be
// deterministic: identical op sequences yield identical states and replies.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"

namespace spider {

class Application {
 public:
  virtual ~Application() = default;

  /// Executes an operation that may modify state; returns the reply.
  virtual Bytes execute(BytesView op) = 0;

  /// Executes a read-only operation at an ordered position (strongly
  /// consistent reads); must not modify state.
  virtual Bytes execute_readonly(BytesView op) const = 0;

  /// Executes a read-only operation on the unordered fast path (weak or
  /// direct reads). Replicas answer from local state at *different* commit
  /// positions and clients need byte-identical replies for a quorum, so
  /// implementations must keep these replies free of global progress
  /// counters that unrelated writes advance. Defaults to execute_readonly.
  virtual Bytes execute_weak(BytesView op) const { return execute_readonly(op); }

  /// Serializes the full application state.
  virtual Bytes snapshot() const = 0;

  /// Replaces the state with a previously taken snapshot.
  virtual void restore(BytesView snapshot) = 0;

  /// Fresh instance of the same application type (for checkpoint transfer
  /// into empty replicas).
  virtual std::unique_ptr<Application> clone_empty() const = 0;

  // ---- live resharding hooks (optional) ----------------------------------
  // Operation codes with the first byte >= kSysOpBase (0xF0, see
  // shard/migration.hpp) are reserved for the execution replica itself and
  // must not be claimed by application opcodes.

  /// Keys an encoded operation touches, for ownership checks at the serving
  /// replica. Applications that cannot enumerate an op's keys (or are handed
  /// an op they do not understand) return an empty list, which the replica
  /// treats as "not key-addressed" — always owned.
  virtual std::vector<std::string> op_keys(BytesView /*op*/) const { return {}; }

  /// Removes every entry whose key satisfies `moved` and returns the removed
  /// entries as a deterministic byte string (identical across replicas in
  /// the same state) for transfer to the gaining shard.
  virtual Bytes extract_keys(const std::function<bool(std::string_view)>& /*moved*/) {
    return {};
  }

  /// Merges a byte string produced by extract_keys into the local state.
  virtual void absorb_keys(BytesView /*state*/) {}
};

}  // namespace spider
