#include "app/kvstore.hpp"

#include <stdexcept>

#include "common/serde.hpp"

namespace spider {

namespace {
Bytes encode_op(KvOp op, const std::string& key, BytesView value) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(op));
  w.str(key);
  w.bytes(value);
  return std::move(w).take();
}

Bytes make_reply(bool ok, BytesView value) {
  Writer w;
  w.u8(ok ? 1 : 0);
  w.bytes(value);
  return std::move(w).take();
}
}  // namespace

Bytes kv_put(const std::string& key, BytesView value) { return encode_op(KvOp::Put, key, value); }
Bytes kv_get(const std::string& key) { return encode_op(KvOp::Get, key, {}); }
Bytes kv_del(const std::string& key) { return encode_op(KvOp::Del, key, {}); }
Bytes kv_size() { return encode_op(KvOp::Size, "", {}); }

Bytes kv_mget(const std::vector<std::string>& keys) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(KvOp::MGet));
  w.u32(static_cast<std::uint32_t>(keys.size()));
  for (const std::string& k : keys) w.str(k);
  return std::move(w).take();
}

Bytes kv_mput(const std::vector<std::pair<std::string, Bytes>>& pairs) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(KvOp::MPut));
  w.u32(static_cast<std::uint32_t>(pairs.size()));
  for (const auto& [k, v] : pairs) {
    w.str(k);
    w.bytes(v);
  }
  return std::move(w).take();
}

KvParsedOp kv_parse_op(BytesView op, bool with_values) {
  Reader r(op);
  KvParsedOp out;
  out.kind = static_cast<KvOp>(r.u8());
  auto value = [&] {
    // bytes_view() walks past the payload without copying it.
    if (with_values) out.values.push_back(to_bytes(r.bytes_view()));
    else r.bytes_view();
  };
  switch (out.kind) {
    case KvOp::Put: {
      out.keys.push_back(r.str());
      value();
      break;
    }
    case KvOp::Get:
    case KvOp::Del: {
      out.keys.push_back(r.str());
      break;
    }
    case KvOp::Size: break;
    case KvOp::MGet: {
      std::uint32_t n = r.u32();
      for (std::uint32_t i = 0; i < n; ++i) out.keys.push_back(r.str());
      break;
    }
    case KvOp::MPut: {
      std::uint32_t n = r.u32();
      for (std::uint32_t i = 0; i < n; ++i) {
        out.keys.push_back(r.str());
        value();
      }
      break;
    }
    default: throw SerdeError("unknown KV opcode");
  }
  return out;
}

KvReply kv_decode_reply(BytesView reply) {
  Reader r(reply);
  KvReply out;
  out.ok = r.u8() == 1;
  out.value = r.bytes();
  return out;
}

KvMputReply kv_decode_mput_reply(BytesView reply) {
  KvReply raw = kv_decode_reply(reply);
  Reader r(raw.value);
  KvMputReply out;
  out.ok = raw.ok;
  out.shard_seq = r.u64();
  return out;
}

KvMgetReply kv_decode_mget_reply(BytesView reply) {
  KvReply raw = kv_decode_reply(reply);
  Reader r(raw.value);
  KvMgetReply out;
  out.shard_seq = r.u64();
  std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    KvReply e;
    e.ok = r.u8() == 1;
    e.value = r.bytes();
    out.entries.push_back(std::move(e));
  }
  return out;
}

Bytes KvStore::apply(BytesView op, Mode mode) {
  Reader r(op);
  auto kind = static_cast<KvOp>(r.u8());
  const bool allow_mutation = mode == Mode::Mutate;

  switch (kind) {
    case KvOp::Put: {
      std::string key = r.str();
      BytesView value = r.bytes_view();
      if (!allow_mutation) return make_reply(false, {});
      data_[key] = to_bytes(value);
      ++version_;
      return make_reply(true, {});
    }
    case KvOp::Get: {
      std::string key = r.str();
      auto it = data_.find(key);
      if (it == data_.end()) return make_reply(false, {});
      return make_reply(true, it->second);
    }
    case KvOp::Del: {
      std::string key = r.str();
      if (!allow_mutation) return make_reply(false, {});
      bool existed = data_.erase(key) > 0;
      ++version_;
      return make_reply(existed, {});
    }
    case KvOp::Size: {
      Writer w;
      w.u64(data_.size());
      return make_reply(true, w.data());
    }
    case KvOp::MGet: {
      std::uint32_t n = r.u32();
      Writer w;
      // Ordered MGets report the shard's mutation count for read-your-writes
      // checks (every replica reads at the same logical position). The weak
      // fast path reports 0: replicas answering at different commit
      // positions would otherwise never produce the fe+1 byte-identical
      // replies the client quorum needs while *any* key on the shard is
      // being written.
      w.u64(mode == Mode::WeakRead ? 0 : version_);
      w.u32(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        auto it = data_.find(r.str());
        w.u8(it != data_.end() ? 1 : 0);
        w.bytes(it != data_.end() ? BytesView(it->second) : BytesView{});
      }
      return make_reply(true, w.data());
    }
    case KvOp::MPut: {
      std::uint32_t n = r.u32();
      if (!allow_mutation) return make_reply(false, {});
      for (std::uint32_t i = 0; i < n; ++i) {
        std::string key = r.str();
        data_[key] = r.bytes();
      }
      ++version_;  // one ordered mutation, regardless of key count
      Writer w;
      w.u64(version_);
      return make_reply(true, w.data());
    }
  }
  throw SerdeError("unknown KV opcode");
}

Bytes KvStore::execute(BytesView op) { return apply(op, Mode::Mutate); }

Bytes KvStore::execute_readonly(BytesView op) const {
  // const_cast is safe: apply() in a read mode never writes.
  return const_cast<KvStore*>(this)->apply(op, Mode::OrderedRead);
}

Bytes KvStore::execute_weak(BytesView op) const {
  return const_cast<KvStore*>(this)->apply(op, Mode::WeakRead);
}

Bytes KvStore::snapshot() const {
  Writer w;
  w.u64(version_);
  w.u32(static_cast<std::uint32_t>(data_.size()));
  for (const auto& [key, value] : data_) {
    w.str(key);
    w.bytes(value);
  }
  return std::move(w).take();
}

void KvStore::restore(BytesView snapshot) {
  Reader r(snapshot);
  std::uint64_t version = r.u64();
  std::map<std::string, Bytes> next;
  std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string key = r.str();
    next[key] = r.bytes();
  }
  r.expect_done();
  data_ = std::move(next);
  version_ = version;
}

std::unique_ptr<Application> KvStore::clone_empty() const { return std::make_unique<KvStore>(); }

std::vector<std::string> KvStore::op_keys(BytesView op) const {
  try {
    return kv_parse_op(op, /*with_values=*/false).keys;
  } catch (const SerdeError&) {
    return {};  // not a KV op (system op, garbage): not key-addressed
  }
}

Bytes KvStore::extract_keys(const std::function<bool(std::string_view)>& moved) {
  // data_ is an ordered map, so the extracted byte string is identical
  // across replicas in the same state — it must be, because fe+1 replicas
  // reply with it and the migration driver needs matching replies.
  Writer w;
  std::uint32_t n = 0;
  for (const auto& [key, value] : data_) {
    if (moved(key)) ++n;
  }
  w.u32(n);
  for (auto it = data_.begin(); it != data_.end();) {
    if (moved(it->first)) {
      w.str(it->first);
      w.bytes(it->second);
      it = data_.erase(it);
    } else {
      ++it;
    }
  }
  ++version_;  // the cut is a mutation: shard_seq must advance deterministically
  return std::move(w).take();
}

void KvStore::absorb_keys(BytesView state) {
  Reader r(state);
  std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string key = r.str();
    data_[key] = r.bytes();
  }
  r.expect_done();
  ++version_;
}

}  // namespace spider
