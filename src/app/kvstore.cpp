#include "app/kvstore.hpp"

#include <stdexcept>

#include "common/serde.hpp"

namespace spider {

namespace {
Bytes encode_op(KvOp op, const std::string& key, BytesView value) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(op));
  w.str(key);
  w.bytes(value);
  return std::move(w).take();
}

Bytes make_reply(bool ok, BytesView value) {
  Writer w;
  w.u8(ok ? 1 : 0);
  w.bytes(value);
  return std::move(w).take();
}
}  // namespace

Bytes kv_put(const std::string& key, BytesView value) { return encode_op(KvOp::Put, key, value); }
Bytes kv_get(const std::string& key) { return encode_op(KvOp::Get, key, {}); }
Bytes kv_del(const std::string& key) { return encode_op(KvOp::Del, key, {}); }
Bytes kv_size() { return encode_op(KvOp::Size, "", {}); }

KvReply kv_decode_reply(BytesView reply) {
  Reader r(reply);
  KvReply out;
  out.ok = r.u8() == 1;
  out.value = r.bytes();
  return out;
}

Bytes KvStore::apply(BytesView op, bool allow_mutation) {
  Reader r(op);
  auto kind = static_cast<KvOp>(r.u8());
  std::string key = r.str();
  BytesView value = r.bytes_view();

  switch (kind) {
    case KvOp::Put: {
      if (!allow_mutation) return make_reply(false, {});
      data_[key] = to_bytes(value);
      return make_reply(true, {});
    }
    case KvOp::Get: {
      auto it = data_.find(key);
      if (it == data_.end()) return make_reply(false, {});
      return make_reply(true, it->second);
    }
    case KvOp::Del: {
      if (!allow_mutation) return make_reply(false, {});
      bool existed = data_.erase(key) > 0;
      return make_reply(existed, {});
    }
    case KvOp::Size: {
      Writer w;
      w.u64(data_.size());
      return make_reply(true, w.data());
    }
  }
  throw SerdeError("unknown KV opcode");
}

Bytes KvStore::execute(BytesView op) { return apply(op, /*allow_mutation=*/true); }

Bytes KvStore::execute_readonly(BytesView op) const {
  // const_cast is safe: apply() with allow_mutation=false never writes.
  return const_cast<KvStore*>(this)->apply(op, /*allow_mutation=*/false);
}

Bytes KvStore::snapshot() const {
  Writer w;
  w.u32(static_cast<std::uint32_t>(data_.size()));
  for (const auto& [key, value] : data_) {
    w.str(key);
    w.bytes(value);
  }
  return std::move(w).take();
}

void KvStore::restore(BytesView snapshot) {
  Reader r(snapshot);
  std::map<std::string, Bytes> next;
  std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string key = r.str();
    next[key] = r.bytes();
  }
  r.expect_done();
  data_ = std::move(next);
}

std::unique_ptr<Application> KvStore::clone_empty() const { return std::make_unique<KvStore>(); }

}  // namespace spider
