// Deterministic key-value store — the application used throughout the
// paper's evaluation (clients issue 200-byte writes/reads against a KV
// store).
#pragma once

#include <map>
#include <string>

#include "app/application.hpp"

namespace spider {

/// Operations understood by the KV store.
enum class KvOp : std::uint8_t { Put = 1, Get = 2, Del = 3, Size = 4 };

/// Builds encoded KV operations (client-side helpers).
Bytes kv_put(const std::string& key, BytesView value);
Bytes kv_get(const std::string& key);
Bytes kv_del(const std::string& key);
Bytes kv_size();

/// Reply decoding: status byte (1 = found/ok, 0 = missing) + value bytes.
struct KvReply {
  bool ok = false;
  Bytes value;
};
KvReply kv_decode_reply(BytesView reply);

class KvStore : public Application {
 public:
  Bytes execute(BytesView op) override;
  Bytes execute_readonly(BytesView op) const override;
  Bytes snapshot() const override;
  void restore(BytesView snapshot) override;
  std::unique_ptr<Application> clone_empty() const override;

  [[nodiscard]] std::size_t size() const { return data_.size(); }

 private:
  Bytes apply(BytesView op, bool allow_mutation);
  std::map<std::string, Bytes> data_;
};

}  // namespace spider
