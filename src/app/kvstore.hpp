// Deterministic key-value store — the application used throughout the
// paper's evaluation (clients issue 200-byte writes/reads against a KV
// store). Multi-key operations (MGet/MPut) act atomically *within* one
// store instance; the sharded router fans them out per shard, so across
// shards they are not atomic.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "app/application.hpp"

namespace spider {

/// Operations understood by the KV store.
enum class KvOp : std::uint8_t { Put = 1, Get = 2, Del = 3, Size = 4, MGet = 5, MPut = 6 };

/// Builds encoded KV operations (client-side helpers).
Bytes kv_put(const std::string& key, BytesView value);
Bytes kv_get(const std::string& key);
Bytes kv_del(const std::string& key);
Bytes kv_size();
Bytes kv_mget(const std::vector<std::string>& keys);
Bytes kv_mput(const std::vector<std::pair<std::string, Bytes>>& pairs);

/// Decoded view of an encoded KV operation: the opcode plus every key (and,
/// for Put/MPut, the parallel value list). Shared between the store itself
/// and the cross-shard router, which must know the keys to pick a shard.
/// Routing-only callers pass with_values = false to skip copying payloads.
struct KvParsedOp {
  KvOp kind = KvOp::Get;
  std::vector<std::string> keys;  // empty for Size
  std::vector<Bytes> values;      // parallel to keys for Put/MPut
};
KvParsedOp kv_parse_op(BytesView op, bool with_values = true);

/// Reply decoding: status byte (1 = found/ok, 0 = missing) + value bytes.
struct KvReply {
  bool ok = false;
  Bytes value;
};
KvReply kv_decode_reply(BytesView reply);

/// MPut reply: success flag + the shard sequence number (count of mutating
/// ops this store has applied) right after the MPut took effect.
struct KvMputReply {
  bool ok = false;
  std::uint64_t shard_seq = 0;
};
KvMputReply kv_decode_mput_reply(BytesView reply);

/// MGet reply: the shard sequence number observed by the read plus one
/// (ok, value) entry per requested key, in request order. Only ordered
/// (strong) MGets carry a real shard_seq; the weak fast path reports 0,
/// so its replies stay quorum-matchable under concurrent writes.
struct KvMgetReply {
  std::uint64_t shard_seq = 0;
  std::vector<KvReply> entries;
};
KvMgetReply kv_decode_mget_reply(BytesView reply);

class KvStore : public Application {
 public:
  Bytes execute(BytesView op) override;
  Bytes execute_readonly(BytesView op) const override;
  Bytes execute_weak(BytesView op) const override;
  Bytes snapshot() const override;
  void restore(BytesView snapshot) override;
  std::unique_ptr<Application> clone_empty() const override;
  std::vector<std::string> op_keys(BytesView op) const override;
  Bytes extract_keys(const std::function<bool(std::string_view)>& moved) override;
  void absorb_keys(BytesView state) override;

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  /// Shard sequence number: mutating ops applied so far. Identical across
  /// replicas of one shard (writes execute at every group), which is what
  /// lets clients check read-your-writes per shard.
  [[nodiscard]] std::uint64_t shard_seq() const { return version_; }

 private:
  enum class Mode { Mutate, OrderedRead, WeakRead };
  Bytes apply(BytesView op, Mode mode);
  std::map<std::string, Bytes> data_;
  std::uint64_t version_ = 0;
};

}  // namespace spider
