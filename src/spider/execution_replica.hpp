// Spider execution replica (paper Fig. 16).
//
// Hosts the application, answers clients, forwards new requests into the
// request channel (per-client subchannels) and consumes the totally ordered
// Execute stream from the commit channel. Periodic execution checkpoints
// (app snapshot + reply cache) let trailing replicas — and newly added
// groups — catch up without replaying every request.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>

#include "app/application.hpp"
#include "irmc/irmc.hpp"
#include "shard/migration.hpp"
#include "sim/byzantine.hpp"
#include "sim/component.hpp"
#include "spider/checkpointer.hpp"
#include "spider/messages.hpp"

namespace spider {

/// Channel tag scheme: one request + one commit channel per execution group.
constexpr std::uint32_t request_channel_tag(GroupId e) { return tags::kIrmc | (e << 1); }
constexpr std::uint32_t commit_channel_tag(GroupId e) { return tags::kIrmc | (e << 1) | 1; }

struct ExecutionConfig {
  NodeId self = kInvalidNode;  // explicit id (kInvalidNode = allocate)
  GroupId group = 1;
  std::vector<NodeId> members;          // 2fe+1 including this replica
  std::vector<NodeId> agreement;        // 3fa+1 agreement replicas
  std::uint32_t fe = 1;
  std::uint32_t fa = 1;
  IrmcKind irmc_kind = IrmcKind::ReceiverCollect;
  std::uint64_t ke = 16;                // execution checkpoint interval (logical requests)
  Position commit_capacity = 64;        // >= ke + max_batch for liveness (paper §3.4)
  Position request_capacity = 2;        // per-client subchannel (Fig. 16, L. 6)
  Duration progress_interval = 50 * kMillisecond;
  Duration collector_timeout = 300 * kMillisecond;
  // Sharded deployments with live resharding: the partition table this
  // replica enforces and the shard index it answers for. Unset = no
  // ownership checks (standalone / statically sharded deployments).
  std::optional<ShardMap> shard_map;
  std::uint32_t shard_index = 0;
  // Only this client may order MigrateOut/MigrateIn system ops (the core's
  // admin client); kInvalidNode rejects all of them.
  NodeId admin = kInvalidNode;
};

class ExecutionReplica : public ComponentHost {
 public:
  ExecutionReplica(World& world, Site site, ExecutionConfig cfg,
                   std::unique_ptr<Application> app);

  void on_message(NodeId from, BytesView data) override;

  /// Peers in other execution groups usable for cross-group checkpoint
  /// fetch (paper §3.5); normally populated from the registry.
  void add_checkpoint_peers(const std::vector<NodeId>& peers);

  // Introspection ---------------------------------------------------------
  [[nodiscard]] SeqNr executed_seq() const { return sn_; }
  [[nodiscard]] GroupId group() const { return cfg_.group; }
  [[nodiscard]] const Application& app() const { return *app_; }
  [[nodiscard]] std::uint64_t checkpoints_taken() const { return checkpoints_; }
  [[nodiscard]] std::uint64_t catchups() const { return catchups_; }
  [[nodiscard]] const std::optional<ShardMap>& shard_map() const { return map_; }
  [[nodiscard]] std::uint64_t migrations() const { return migrations_; }

  /// Test hook: Byzantine replica that answers clients with corrupted
  /// results (must be outvoted by fe+1 correct replies).
  bool corrupt_replies = false;
  /// Test hook: Byzantine replica that stays silent toward the agreement
  /// group (drops request forwarding).
  bool drop_forwarding = false;

  /// Applies a Byzantine flag set (FaultPlan via the system's
  /// set_byzantine): corrupt_replies, drop_forwarding and
  /// forge_checkpoints are meaningful here; consensus-role flags are
  /// ignored.
  void apply_byzantine(const ByzantineFlags& f);

 private:
  void handle_client(NodeId from, Reader& r);
  void request_next_execute();
  void process_batch(const ExecuteBatchMsg& batch);
  void process_execute(const ExecuteMsg& x);
  void reply_to(NodeId client, std::uint64_t counter, BytesView result, bool weak);
  bool owns_keys(BytesView op) const;
  Bytes execute_sys_op(NodeId client, BytesView op);
  Bytes migrate_out(const MigrateOutCmd& cmd);
  Bytes migrate_in(const MigrateInCmd& cmd);
  void maybe_checkpoint();
  Bytes snapshot_state() const;
  void apply_state(SeqNr s, BytesView state);
  void on_stable_checkpoint(SeqNr s, BytesView state);

  ExecutionConfig cfg_;
  std::unique_ptr<Application> app_;
  std::unique_ptr<IrmcSenderEndpoint> request_tx_;
  std::unique_ptr<IrmcReceiverEndpoint> commit_rx_;
  std::unique_ptr<Checkpointer> checkpointer_;

  SeqNr sn_ = 0;
  SeqNr last_cp_ = 0;  // seq of the newest checkpoint (taken or adopted)
  struct ReplyCacheEntry {
    std::uint64_t counter = 0;
    Bytes result;
    bool placeholder = false;  // strong read executed by another group
  };
  std::map<NodeId, std::uint64_t> t_;            // latest forwarded counter per client
  std::map<NodeId, ReplyCacheEntry> replies_;    // reply cache u[c]
  std::shared_ptr<std::set<NodeId>> trusted_peers_;  // other groups' members
  bool waiting_checkpoint_ = false;
  std::uint64_t checkpoints_ = 0;
  std::uint64_t catchups_ = 0;
  // Live-resharding state. map_ tracks the table this replica enforces;
  // cut_checkpoint_ forces a checkpoint right after the batch that carried
  // a migration op, so the range cut/adopt is immediately certified and
  // recoverable through the normal checkpoint state-transfer path.
  std::optional<ShardMap> map_;
  std::uint32_t shard_index_ = 0;
  bool cut_checkpoint_ = false;
  std::uint64_t migrations_ = 0;
};

}  // namespace spider
