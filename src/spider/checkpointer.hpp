// Group checkpoint component (paper Fig. 13 + §3.4).
//
// gen_cp(s, state): hash the snapshot, broadcast a signed <Checkpoint, h, s>
// within the group; once f+1 matching signed messages for the same (h, s)
// are collected the checkpoint is *stable* (CP-Safety: at least one correct
// replica created it) and stable_cp fires. A replica that lacks the
// snapshot bytes fetches them (with the f+1-signature proof attached) from
// a peer — including peers in *other* execution groups, which is how
// trailing groups catch up under global flow control (§3.5).
#pragma once

#include <map>
#include <set>
#include <utility>

#include "crypto/sha256.hpp"
#include "sim/component.hpp"

namespace spider {

class Checkpointer : public Component {
 public:
  using StableFn = std::function<void(SeqNr s, BytesView state)>;
  /// Resolves a node id -> may it sign checkpoints we trust? Used to verify
  /// proofs from peers of other groups (membership comes from the registry).
  using MemberCheck = std::function<bool(NodeId)>;

  Checkpointer(ComponentHost& host, std::uint32_t tag, std::vector<NodeId> group,
               std::uint32_t f, StableFn stable, MemberCheck trusted = {});
  ~Checkpointer() override;

  /// Creates and distributes this replica's checkpoint for sequence number s.
  void gen_cp(SeqNr s, Bytes state);

  /// Actively fetches a checkpoint with sequence number >= s from the group
  /// (and any extra peers registered with add_fetch_peers). Retries until a
  /// newer checkpoint is delivered.
  void fetch_cp(SeqNr s);

  /// Additional peers (e.g. members of other execution groups) queried by
  /// fetch_cp.
  void add_fetch_peers(const std::vector<NodeId>& peers);

  /// Checkpoint-on-demand: when a trusted peer asks for a checkpoint we
  /// cannot serve (no stable state at or above the requested sequence
  /// number), the checkpointer snapshots the embedding's current state via
  /// this callback and runs a regular gen_cp on it. Once f+1 quiescent
  /// replicas do so, the checkpoint stabilizes and the fetcher — and any
  /// trailing group member — can adopt it. This is what makes crash
  /// recovery work when the interval checkpoint never happened or traffic
  /// has stopped. Returns (seq, state); seq 0 means nothing to snapshot.
  std::function<std::pair<SeqNr, Bytes>()> snapshot_now;

  /// Test hook (Byzantine): instead of voting for its genuine snapshot,
  /// the replica signs a checkpoint vote for a *tampered* state digest and
  /// pushes a forged "stable" certificate (its own signature listed f+1
  /// times) to the group. Correct replicas must reject both: the bogus
  /// digest never gathers f+1 matching signatures, and the certificate
  /// fails signer dedup. The forger keeps its genuine snapshot locally so
  /// it adopts the group's correct checkpoint once that stabilizes.
  bool forge_checkpoints = false;

  void on_message(NodeId from, Reader& r) override;

  [[nodiscard]] SeqNr last_stable() const { return last_stable_; }

 private:
  enum class MsgType : std::uint8_t { Checkpoint = 1, Fetch = 2, State = 3 };

  struct Pending {
    Sha256Digest digest{};
    std::map<NodeId, Bytes> sigs;  // signer -> signature
  };

  void check_stable(SeqNr s);
  void deliver(SeqNr s, Payload state);
  Bytes proof_for(SeqNr s) const;
  bool send_state(NodeId to, SeqNr s);
  void handle_state(NodeId from, Reader& r);
  void retry_fetch();

  std::vector<NodeId> group_;
  std::uint32_t f_;
  StableFn stable_;
  MemberCheck trusted_;

  SeqNr last_stable_ = 0;
  // Candidate checkpoints: s -> digest -> signature set.
  std::map<SeqNr, std::map<std::uint64_t, Pending>> candidates_;
  // Snapshots are Payloads: the digest a snapshot is voted under is
  // memoized, so re-checks in check_stable/deliver reuse one hash, and a
  // stable state served to peers shares the buffer instead of copying.
  std::map<SeqNr, Payload> own_snapshots_;     // states this replica produced
  std::map<SeqNr, Payload> stable_states_;     // stable states (for peers)
  std::map<SeqNr, Bytes> stable_proofs_;       // serialized f+1 sig proofs
  std::vector<NodeId> fetch_peers_;
  SeqNr fetch_target_ = 0;
  EventQueue::EventId fetch_timer_ = EventQueue::kInvalidEvent;
  Duration fetch_retry_ = 400 * kMillisecond;
};

}  // namespace spider
