#include "spider/messages.hpp"

#include <algorithm>

namespace spider {

Bytes ClientRequest::encode() const {
  Writer w(1 + 4 + 8 + 4 + op.size());
  w.u8(static_cast<std::uint8_t>(kind));
  w.u32(client);
  w.u64(counter);
  w.bytes(op);
  return std::move(w).take();
}

ClientRequest ClientRequest::decode(Reader& r) {
  ClientRequest m;
  m.kind = static_cast<OpKind>(r.u8());
  m.client = r.u32();
  m.counter = r.u64();
  m.op = r.bytes();
  return m;
}

Bytes ClientFrame::encode() const {
  Writer w;
  w.bytes(req.encode());
  w.bytes(signature);
  return std::move(w).take();
}

ClientFrame ClientFrame::decode(Reader& r) {
  ClientFrame m;
  Reader rr(r.bytes_view());
  m.req = ClientRequest::decode(rr);
  m.signature = r.bytes();
  return m;
}

Bytes RequestMsg::encode() const {
  Writer w;
  w.bytes(frame.encode());
  w.u32(origin);
  return std::move(w).take();
}

RequestMsg RequestMsg::decode(Reader& r) {
  RequestMsg m;
  Reader fr(r.bytes_view());
  m.frame = ClientFrame::decode(fr);
  m.origin = r.u32();
  return m;
}

Bytes ExecuteMsg::encode() const {
  Writer w(1 + 8 + 4 + 4 + 8 + 1 + 4 + op.size());
  w.u8(static_cast<std::uint8_t>(kind));
  w.u64(seq);
  w.u32(origin);
  w.u32(client);
  w.u64(counter);
  w.u8(static_cast<std::uint8_t>(op_kind));
  w.bytes(op);
  return std::move(w).take();
}

ExecuteMsg ExecuteMsg::decode(Reader& r) {
  ExecuteMsg m;
  m.kind = static_cast<ExecuteKind>(r.u8());
  m.seq = r.u64();
  m.origin = r.u32();
  m.client = r.u32();
  m.counter = r.u64();
  m.op_kind = static_cast<OpKind>(r.u8());
  m.op = r.bytes();
  return m;
}

Bytes ExecuteBatchMsg::encode() const {
  std::size_t hint = 4;
  for (const ExecuteMsg& x : items) hint += 4 + 30 + x.op.size();
  Writer w(hint);
  w.u32(static_cast<std::uint32_t>(items.size()));
  for (const ExecuteMsg& x : items) w.bytes(x.encode());
  return std::move(w).take();
}

ExecuteBatchMsg ExecuteBatchMsg::decode(Reader& r) {
  ExecuteBatchMsg m;
  std::uint32_t n = r.u32();
  if (n == 0) throw SerdeError("empty execute batch");
  m.items.reserve(std::min<std::uint32_t>(n, 1024));
  for (std::uint32_t i = 0; i < n; ++i) {
    Reader xr(r.bytes_view());
    m.items.push_back(ExecuteMsg::decode(xr));
  }
  return m;
}

Bytes ReplyMsg::encode() const {
  Writer w(8 + 4 + result.size() + 1);
  w.u64(counter);
  w.bytes(result);
  w.boolean(weak);
  return std::move(w).take();
}

ReplyMsg ReplyMsg::decode(Reader& r) {
  ReplyMsg m;
  m.counter = r.u64();
  m.result = r.bytes();
  m.weak = r.boolean();
  return m;
}

Bytes ReconfigCmd::encode() const {
  Writer w;
  w.boolean(add);
  w.u32(group);
  w.u8(static_cast<std::uint8_t>(region));
  w.u32(static_cast<std::uint32_t>(members.size()));
  for (NodeId n : members) w.u32(n);
  return std::move(w).take();
}

ReconfigCmd ReconfigCmd::decode(Reader& r) {
  ReconfigCmd m;
  m.add = r.boolean();
  m.group = r.u32();
  m.region = static_cast<Region>(r.u8());
  std::uint32_t n = r.u32();
  m.members.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) m.members.push_back(r.u32());
  return m;
}

void RegistryEntry::encode_into(Writer& w) const {
  w.u32(group);
  w.u8(static_cast<std::uint8_t>(region));
  w.u32(static_cast<std::uint32_t>(members.size()));
  for (NodeId n : members) w.u32(n);
}

RegistryEntry RegistryEntry::decode(Reader& r) {
  RegistryEntry m;
  m.group = r.u32();
  m.region = static_cast<Region>(r.u8());
  std::uint32_t n = r.u32();
  m.members.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) m.members.push_back(r.u32());
  return m;
}

Bytes RegistrySnapshot::encode() const {
  Writer w;
  w.u64(version);
  w.u32(static_cast<std::uint32_t>(groups.size()));
  for (const RegistryEntry& g : groups) g.encode_into(w);
  return std::move(w).take();
}

RegistrySnapshot RegistrySnapshot::decode(Reader& r) {
  RegistrySnapshot m;
  m.version = r.u64();
  std::uint32_t n = r.u32();
  m.groups.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) m.groups.push_back(RegistryEntry::decode(r));
  return m;
}

}  // namespace spider
