#include "spider/system.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/world.hpp"

namespace spider {

void validate_topology(const SpiderTopology& t) {
  if (t.fa == 0) throw std::invalid_argument("SpiderTopology.fa must be >= 1");
  if (t.fe == 0) throw std::invalid_argument("SpiderTopology.fe must be >= 1");
  if (t.max_batch == 0) throw std::invalid_argument("SpiderTopology.max_batch must be >= 1");
  if (t.exec_regions.empty()) {
    throw std::invalid_argument("SpiderTopology.exec_regions must not be empty");
  }
  if (t.ag_win < t.max_batch) {
    throw std::invalid_argument("SpiderTopology.ag_win must be >= max_batch");
  }
  if (t.first_group_id == 0) {
    throw std::invalid_argument("SpiderTopology.first_group_id 0 is the agreement group");
  }
}

int az_count(Region r) {
  switch (r) {
    case Region::Virginia: return 6;  // paper: agreement leader in V-1..V-6
    case Region::Oregon:
    case Region::Tokyo:
    case Region::Seoul: return 4;
    default: return 3;
  }
}

Region nearby_region(Region r) {
  switch (r) {
    case Region::Virginia: return Region::Ohio;
    case Region::Oregon: return Region::California;
    case Region::Ireland: return Region::London;
    case Region::Tokyo: return Region::Seoul;
    case Region::Ohio: return Region::Virginia;
    case Region::California: return Region::Oregon;
    case Region::London: return Region::Ireland;
    case Region::Seoul: return Region::Tokyo;
    case Region::SaoPaulo: return Region::SaoPaulo;
  }
  return r;
}

std::vector<Site> geo_replica_sites(Region home, std::size_t n) {
  // Fill distinct AZs of the home region first (at most four, so larger
  // groups genuinely span the nearby region and intra-group quorums cross
  // a short WAN hop), then distinct AZs of the nearby region (paper §5:
  // f=2 uses Ohio/California/London/Seoul as additional fault domains).
  std::vector<Site> sites;
  int home_azs = std::min(az_count(home), 4);
  for (std::size_t i = 0; i < n; ++i) {
    if (static_cast<int>(i) < home_azs) {
      sites.push_back(Site{home, static_cast<std::uint8_t>(i)});
    } else {
      Region nb = nearby_region(home);
      int idx = static_cast<int>(i) - home_azs;
      sites.push_back(Site{nb, static_cast<std::uint8_t>(idx % az_count(nb))});
    }
  }
  return sites;
}

std::vector<Site> SpiderSystem::replica_sites(Region home, std::size_t n) const {
  return geo_replica_sites(home, n);
}

SpiderSystem::SpiderSystem(World& world, SpiderTopology topology)
    : world_(world), topo_(std::move(topology)) {
  validate_topology(topo_);
  next_group_id_ = topo_.first_group_id;

  // The admin client is constructed first so its id is known to the
  // agreement group's request validator.
  admin_ = std::make_unique<SpiderClient>(world_, Site{topo_.agreement_region, 0},
                                          ClientGroupInfo{}, topo_.client_retry);

  // Reserve ids: agreement replicas, then one block per execution group.
  std::vector<NodeId> agreement_ids;
  const std::size_t na = 3 * topo_.fa + 1;
  for (std::size_t i = 0; i < na; ++i) agreement_ids.push_back(world_.allocate_id());

  std::vector<RegistryEntry> initial;
  std::map<GroupId, std::vector<NodeId>> group_ids;
  for (Region r : topo_.exec_regions) {
    GroupId g = next_group_id_++;
    std::vector<NodeId> ids;
    for (std::size_t i = 0; i < 2 * topo_.fe + 1u; ++i) ids.push_back(world_.allocate_id());
    initial.push_back(RegistryEntry{g, r, ids});
    group_ids[g] = std::move(ids);
    group_regions_[g] = r;
  }

  // Agreement group.
  std::vector<Site> ag_sites = replica_sites(topo_.agreement_region, na);
  if (topo_.agreement_az_rotation != 0) {
    std::rotate(ag_sites.begin(),
                ag_sites.begin() + topo_.agreement_az_rotation % ag_sites.size(),
                ag_sites.end());
  }
  for (std::size_t i = 0; i < na; ++i) {
    AgreementConfig cfg;
    cfg.self = agreement_ids[i];
    cfg.members = agreement_ids;
    cfg.my_index = static_cast<std::uint32_t>(i);
    cfg.fa = topo_.fa;
    cfg.fe = topo_.fe;
    cfg.irmc_kind = topo_.irmc_kind;
    cfg.ka = topo_.ka;
    cfg.ag_win = topo_.ag_win;
    cfg.max_batch = topo_.max_batch;
    cfg.batch_delay = topo_.batch_delay;
    cfg.z = topo_.z;
    cfg.commit_capacity = topo_.commit_capacity;
    cfg.request_capacity = topo_.request_capacity;
    cfg.request_timeout = topo_.request_timeout;
    cfg.view_change_timeout = topo_.view_change_timeout;
    cfg.admin = admin_->id();
    cfg.initial_groups = initial;
    agreement_.push_back(std::make_unique<AgreementReplica>(world_, ag_sites[i], cfg));
  }

  // Execution groups.
  for (const RegistryEntry& entry : initial) {
    groups_[entry.group] = build_group(entry.group, entry.region, entry.members);
  }
  wire_checkpoint_peers();

  admin_->switch_group(group_info(group_ids.begin()->first));
}

std::vector<std::unique_ptr<ExecutionReplica>> SpiderSystem::build_group(
    GroupId g, Region region, const std::vector<NodeId>& ids) {
  std::vector<std::unique_ptr<ExecutionReplica>> replicas;
  std::vector<Site> sites = replica_sites(region, ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ExecutionConfig cfg;
    cfg.self = ids[i];
    cfg.group = g;
    cfg.members = ids;
    cfg.agreement = agreement_ids();
    cfg.fe = topo_.fe;
    cfg.fa = topo_.fa;
    cfg.irmc_kind = topo_.irmc_kind;
    cfg.ke = topo_.ke;
    cfg.commit_capacity = topo_.commit_capacity;
    cfg.request_capacity = topo_.request_capacity;
    replicas.push_back(
        std::make_unique<ExecutionReplica>(world_, sites[i], cfg, topo_.make_app()));
  }
  return replicas;
}

void SpiderSystem::wire_checkpoint_peers() {
  for (auto& [g1, reps1] : groups_) {
    std::vector<NodeId> others;
    for (auto& [g2, reps2] : groups_) {
      if (g1 == g2) continue;
      for (auto& r : reps2) others.push_back(r->id());
    }
    for (auto& r : reps1) r->add_checkpoint_peers(others);
  }
}

std::vector<NodeId> SpiderSystem::agreement_ids() const {
  std::vector<NodeId> ids;
  for (const auto& a : agreement_) ids.push_back(a->id());
  return ids;
}

std::vector<GroupId> SpiderSystem::group_ids() const {
  std::vector<GroupId> ids;
  for (const auto& [g, _] : groups_) ids.push_back(g);
  return ids;
}

ClientGroupInfo SpiderSystem::group_info(GroupId g) const {
  ClientGroupInfo info;
  info.group = g;
  info.fe = topo_.fe;
  for (const auto& r : groups_.at(g)) info.members.push_back(r->id());
  return info;
}

GroupId SpiderSystem::nearest_group(Region r) const {
  GroupId best = group_regions_.begin()->first;
  Duration best_rtt = region_rtt(r, group_regions_.begin()->second);
  for (const auto& [g, reg] : group_regions_) {
    Duration rtt = region_rtt(r, reg);
    if (rtt < best_rtt) {
      best = g;
      best_rtt = rtt;
    }
  }
  return best;
}

std::unique_ptr<SpiderClient> SpiderSystem::make_client(Site site) {
  return std::make_unique<SpiderClient>(world_, site, group_info(nearest_group(site.region)),
                                        topo_.client_retry);
}

SpiderClient& SpiderSystem::admin() { return *admin_; }

GroupId SpiderSystem::add_group(Region region, std::function<void()> done) {
  GroupId g = next_group_id_++;
  std::vector<NodeId> ids;
  for (std::size_t i = 0; i < 2 * topo_.fe + 1u; ++i) ids.push_back(world_.allocate_id());
  groups_[g] = build_group(g, region, ids);
  group_regions_[g] = region;
  wire_checkpoint_peers();

  ReconfigCmd cmd{true, g, region, ids};
  admin_->reconfig(cmd, [done = std::move(done)](Bytes, Duration) {
    if (done) done();
  });
  return g;
}

void SpiderSystem::remove_group(GroupId g, std::function<void()> done) {
  ReconfigCmd cmd{false, g, group_region(g), {}};
  admin_->reconfig(cmd, [this, g, done = std::move(done)](Bytes, Duration) {
    groups_.erase(g);
    group_regions_.erase(g);
    if (done) done();
  });
}

}  // namespace spider
