#include "spider/system.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "sim/topology.hpp"
#include "sim/world.hpp"

namespace spider {

void validate_topology(const SpiderTopology& t) {
  if (t.fa == 0) throw std::invalid_argument("SpiderTopology.fa must be >= 1");
  if (t.fe == 0) throw std::invalid_argument("SpiderTopology.fe must be >= 1");
  if (t.max_batch == 0) throw std::invalid_argument("SpiderTopology.max_batch must be >= 1");
  if (t.exec_regions.empty()) {
    throw std::invalid_argument("SpiderTopology.exec_regions must not be empty");
  }
  if (t.ag_win < t.max_batch) {
    throw std::invalid_argument("SpiderTopology.ag_win must be >= max_batch");
  }
  if (t.first_group_id == 0) {
    throw std::invalid_argument("SpiderTopology.first_group_id 0 is the agreement group");
  }
}

int az_count(Region r) {
  switch (r) {
    case Region::Virginia: return 6;  // paper: agreement leader in V-1..V-6
    case Region::Oregon:
    case Region::Tokyo:
    case Region::Seoul: return 4;
    default: return 3;
  }
}

Region nearby_region(Region r) {
  switch (r) {
    case Region::Virginia: return Region::Ohio;
    case Region::Oregon: return Region::California;
    case Region::Ireland: return Region::London;
    case Region::Tokyo: return Region::Seoul;
    case Region::Ohio: return Region::Virginia;
    case Region::California: return Region::Oregon;
    case Region::London: return Region::Ireland;
    case Region::Seoul: return Region::Tokyo;
    case Region::SaoPaulo: return Region::SaoPaulo;
  }
  return r;
}

std::vector<Site> geo_replica_sites(Region home, std::size_t n) {
  // Fill distinct AZs of the home region first (at most four, so larger
  // groups genuinely span the nearby region and intra-group quorums cross
  // a short WAN hop), then distinct AZs of the nearby region (paper §5:
  // f=2 uses Ohio/California/London/Seoul as additional fault domains).
  std::vector<Site> sites;
  int home_azs = std::min(az_count(home), 4);
  for (std::size_t i = 0; i < n; ++i) {
    if (static_cast<int>(i) < home_azs) {
      sites.push_back(Site{home, static_cast<std::uint8_t>(i)});
    } else {
      Region nb = nearby_region(home);
      int idx = static_cast<int>(i) - home_azs;
      sites.push_back(Site{nb, static_cast<std::uint8_t>(idx % az_count(nb))});
    }
  }
  return sites;
}

std::vector<Site> SpiderSystem::replica_sites(Region home, std::size_t n) const {
  return geo_replica_sites(home, n);
}

SpiderSystem::SpiderSystem(World& world, SpiderTopology topology)
    : world_(world), topo_(std::move(topology)) {
  validate_topology(topo_);
  next_group_id_ = topo_.first_group_id;

  // The admin client is constructed first so its id is known to the
  // agreement group's request validator.
  admin_ = std::make_unique<SpiderClient>(world_, Site{topo_.agreement_region, 0},
                                          ClientGroupInfo{}, topo_.client_retry);
  world_.name_node(admin_->id(), "admin-client");

  // Reserve ids: agreement replicas, then one block per execution group.
  const std::size_t na = 3 * topo_.fa + 1;
  for (std::size_t i = 0; i < na; ++i) agreement_ids_.push_back(world_.allocate_id());

  for (Region r : topo_.exec_regions) {
    GroupId g = next_group_id_++;
    std::vector<NodeId> ids;
    for (std::size_t i = 0; i < 2 * topo_.fe + 1u; ++i) ids.push_back(world_.allocate_id());
    initial_entries_.push_back(RegistryEntry{g, r, ids});
    group_members_[g] = std::move(ids);
    group_regions_[g] = r;
  }

  // Agreement group.
  agreement_sites_ = replica_sites(topo_.agreement_region, na);
  if (topo_.agreement_az_rotation != 0) {
    std::rotate(agreement_sites_.begin(),
                agreement_sites_.begin() + topo_.agreement_az_rotation % agreement_sites_.size(),
                agreement_sites_.end());
  }
  for (std::size_t i = 0; i < na; ++i) {
    agreement_.push_back(
        std::make_unique<AgreementReplica>(world_, agreement_sites_[i], agreement_config(i)));
    world_.name_node(agreement_ids_[i], std::string("ag-") +
                                            region_name(agreement_sites_[i].region) + "/" +
                                            std::to_string(i));
  }

  // Execution groups.
  for (const RegistryEntry& entry : initial_entries_) {
    groups_[entry.group] = build_group(entry.group);
  }
  wire_checkpoint_peers();

  admin_->switch_group(group_info(group_members_.begin()->first));
}

AgreementConfig SpiderSystem::agreement_config(std::size_t i) const {
  AgreementConfig cfg;
  cfg.self = agreement_ids_[i];
  cfg.members = agreement_ids_;
  cfg.my_index = static_cast<std::uint32_t>(i);
  cfg.fa = topo_.fa;
  cfg.fe = topo_.fe;
  cfg.irmc_kind = topo_.irmc_kind;
  cfg.ka = topo_.ka;
  cfg.ag_win = topo_.ag_win;
  cfg.max_batch = topo_.max_batch;
  cfg.batch_delay = topo_.batch_delay;
  cfg.z = topo_.z;
  cfg.commit_capacity = topo_.commit_capacity;
  cfg.request_capacity = topo_.request_capacity;
  cfg.request_timeout = topo_.request_timeout;
  cfg.view_change_timeout = topo_.view_change_timeout;
  cfg.admin = admin_->id();
  cfg.initial_groups = initial_entries_;
  return cfg;
}

ExecutionConfig SpiderSystem::exec_config(GroupId g, std::size_t i) const {
  ExecutionConfig cfg;
  cfg.self = group_members_.at(g)[i];
  cfg.group = g;
  cfg.members = group_members_.at(g);
  cfg.agreement = agreement_ids_;
  cfg.fe = topo_.fe;
  cfg.fa = topo_.fa;
  cfg.irmc_kind = topo_.irmc_kind;
  cfg.ke = topo_.ke;
  cfg.commit_capacity = topo_.commit_capacity;
  cfg.request_capacity = topo_.request_capacity;
  cfg.shard_map = topo_.shard_map;
  cfg.shard_index = topo_.shard_index;
  cfg.admin = admin_->id();
  return cfg;
}

std::unique_ptr<ExecutionReplica> SpiderSystem::build_exec_replica(GroupId g, std::size_t i) {
  std::vector<Site> sites = replica_sites(group_regions_.at(g), group_members_.at(g).size());
  world_.name_node(group_members_.at(g)[i],
                   std::string("exec-") + region_name(group_regions_.at(g)) + "/g" +
                       std::to_string(g) + "/" + std::to_string(i));
  return std::make_unique<ExecutionReplica>(world_, sites[i], exec_config(g, i),
                                            topo_.make_app());
}

std::vector<std::unique_ptr<ExecutionReplica>> SpiderSystem::build_group(GroupId g) {
  std::vector<std::unique_ptr<ExecutionReplica>> replicas;
  const std::size_t n = group_members_.at(g).size();
  for (std::size_t i = 0; i < n; ++i) replicas.push_back(build_exec_replica(g, i));
  return replicas;
}

std::vector<NodeId> SpiderSystem::checkpoint_peers_for(GroupId g) const {
  std::vector<NodeId> others;
  for (const auto& [g2, ids] : group_members_) {
    if (g2 == g) continue;
    others.insert(others.end(), ids.begin(), ids.end());
  }
  return others;
}

void SpiderSystem::wire_checkpoint_peers() {
  for (auto& [g1, reps1] : groups_) {
    std::vector<NodeId> others = checkpoint_peers_for(g1);
    for (auto& r : reps1) {
      if (r) r->add_checkpoint_peers(others);
    }
  }
}

std::vector<NodeId> SpiderSystem::agreement_ids() const { return agreement_ids_; }

std::vector<GroupId> SpiderSystem::group_ids() const {
  std::vector<GroupId> ids;
  for (const auto& [g, _] : groups_) ids.push_back(g);
  return ids;
}

ClientGroupInfo SpiderSystem::group_info(GroupId g) const {
  ClientGroupInfo info;
  info.group = g;
  info.fe = topo_.fe;
  info.members = group_members_.at(g);
  return info;
}

GroupId SpiderSystem::nearest_group(Region r) const {
  GroupId best = group_regions_.begin()->first;
  Duration best_rtt = region_rtt(r, group_regions_.begin()->second);
  for (const auto& [g, reg] : group_regions_) {
    Duration rtt = region_rtt(r, reg);
    if (rtt < best_rtt) {
      best = g;
      best_rtt = rtt;
    }
  }
  return best;
}

std::unique_ptr<SpiderClient> SpiderSystem::make_client(Site site) {
  auto c = std::make_unique<SpiderClient>(world_, site, group_info(nearest_group(site.region)),
                                          topo_.client_retry);
  world_.name_node(c->id(), std::string("client-") + region_name(site.region) + "/" +
                                std::to_string(c->id()));
  return c;
}

SpiderClient& SpiderSystem::admin() { return *admin_; }

GroupId SpiderSystem::add_group(Region region, std::function<void()> done) {
  GroupId g = next_group_id_++;
  std::vector<NodeId> ids;
  for (std::size_t i = 0; i < 2 * topo_.fe + 1u; ++i) ids.push_back(world_.allocate_id());
  group_members_[g] = ids;
  group_regions_[g] = region;
  groups_[g] = build_group(g);
  wire_checkpoint_peers();

  ReconfigCmd cmd{true, g, region, ids};
  admin_->reconfig(cmd, [done = std::move(done)](Bytes, Duration) {
    if (done) done();
  });
  return g;
}

void SpiderSystem::remove_group(GroupId g, std::function<void()> done) {
  ReconfigCmd cmd{false, g, group_region(g), {}};
  admin_->reconfig(cmd, [this, g, done = std::move(done)](Bytes, Duration) {
    groups_.erase(g);
    group_regions_.erase(g);
    group_members_.erase(g);
    if (done) done();
  });
}

// ---------------------------------------------------------- crash-recovery

bool SpiderSystem::crash_node(NodeId id) {
  for (std::size_t i = 0; i < agreement_ids_.size(); ++i) {
    if (agreement_ids_[i] == id) {
      agreement_[i].reset();
      return true;
    }
  }
  for (auto& [g, ids] : group_members_) {
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (ids[i] == id) {
        groups_.at(g)[i].reset();
        return true;
      }
    }
  }
  return false;
}

bool SpiderSystem::restart_node(NodeId id) {
  // A restarted process resumes any scheduled Byzantine behaviour: the
  // flags model the *role* being adversarial, not one incarnation of it.
  auto stored_flags = [this](NodeId n) {
    auto it = byz_flags_.find(n);
    return it == byz_flags_.end() ? ByzantineFlags{} : it->second;
  };
  for (std::size_t i = 0; i < agreement_ids_.size(); ++i) {
    if (agreement_ids_[i] == id) {
      if (agreement_[i]) return true;  // already running
      agreement_[i] =
          std::make_unique<AgreementReplica>(world_, agreement_sites_[i], agreement_config(i));
      if (ByzantineFlags f = stored_flags(id); f.any()) agreement_[i]->apply_byzantine(f);
      agreement_[i]->recover();
      return true;
    }
  }
  for (auto& [g, ids] : group_members_) {
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (ids[i] == id) {
        auto& slot = groups_.at(g)[i];
        if (slot) return true;
        slot = build_exec_replica(g, i);
        if (ByzantineFlags f = stored_flags(id); f.any()) slot->apply_byzantine(f);
        slot->add_checkpoint_peers(checkpoint_peers_for(g));
        return true;
      }
    }
  }
  return false;
}

bool SpiderSystem::set_byzantine(NodeId id, const ByzantineFlags& flags) {
  for (std::size_t i = 0; i < agreement_ids_.size(); ++i) {
    if (agreement_ids_[i] == id) {
      byz_flags_[id] = flags;
      if (agreement_[i]) agreement_[i]->apply_byzantine(flags);
      return true;
    }
  }
  for (auto& [g, ids] : group_members_) {
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (ids[i] == id) {
        byz_flags_[id] = flags;
        auto& slot = groups_.at(g)[i];
        if (slot) slot->apply_byzantine(flags);
        return true;
      }
    }
  }
  return false;
}

ByzantineFlags SpiderSystem::byzantine_flags(NodeId id) const {
  auto it = byz_flags_.find(id);
  return it == byz_flags_.end() ? ByzantineFlags{} : it->second;
}

bool SpiderSystem::is_crashed(NodeId id) const {
  for (std::size_t i = 0; i < agreement_ids_.size(); ++i) {
    if (agreement_ids_[i] == id) return agreement_[i] == nullptr;
  }
  for (const auto& [g, ids] : group_members_) {
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (ids[i] == id) return groups_.at(g)[i] == nullptr;
    }
  }
  return false;
}

std::vector<NodeId> SpiderSystem::replica_ids() const {
  std::vector<NodeId> ids = agreement_ids_;
  for (const auto& [g, members] : group_members_) {
    ids.insert(ids.end(), members.begin(), members.end());
  }
  return ids;
}

}  // namespace spider
