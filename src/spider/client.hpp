// Spider client (paper Fig. 15).
//
// Writes and strongly consistent reads are signed, sent to every replica of
// the client's execution group, and accepted after fe+1 matching replies.
// Weakly consistent reads take the fast path: MAC-only requests answered
// directly by the local execution group (fe+1 matching results).
#pragma once

#include <deque>
#include <map>

#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "sim/component.hpp"
#include "spider/messages.hpp"

namespace spider {

struct ClientGroupInfo {
  GroupId group = 0;
  std::vector<NodeId> members;  // 2fe+1 execution replicas
  std::uint32_t fe = 1;
  /// Flat-BFT optimized reads (paper §5, Fig. 8a): strongly consistent
  /// reads query replicas directly and require `strong_quorum` matching
  /// replies instead of passing through the ordering protocol.
  bool direct_strong_reads = false;
  std::uint32_t strong_quorum = 0;  // 0 => fe+1
};

class SpiderClient : public ComponentHost {
 public:
  /// cb(result bytes, response time).
  using OpCallback = std::function<void(Bytes result, Duration latency)>;

  /// Retransmit backoff ceiling: the interval doubles per retry but never
  /// exceeds kRetryBackoffCap x the base retry interval.
  static constexpr Duration kRetryBackoffCap = 8;

  /// Direct (optimized) strong reads that fail to assemble `strong_quorum`
  /// matching replies within this many retransmissions fall back to the
  /// ordering protocol, as in Castro-Liskov's read-only optimization: too
  /// many replicas hold divergent state (stale after a partition, restarted
  /// from an old checkpoint, Byzantine) for direct replies to ever agree,
  /// and only an ordered execution answers consistently — it also generates
  /// the consensus traffic stale replicas need to notice they trail.
  static constexpr std::uint64_t kDirectReadFallbackRetries = 4;

  SpiderClient(World& world, Site site, ClientGroupInfo group,
               Duration retry = 2 * kSecond);

  /// Issues an operation; ordered ops (writes / strong reads) are queued
  /// one-outstanding-at-a-time as in the paper's client.
  void write(Bytes op, OpCallback cb) { submit_ordered(OpKind::Write, std::move(op), std::move(cb)); }
  void strong_read(Bytes op, OpCallback cb) {
    if (group_.direct_strong_reads) {
      submit_direct(OpKind::StrongRead, std::move(op), std::move(cb));
    } else {
      submit_ordered(OpKind::StrongRead, std::move(op), std::move(cb));
    }
  }
  void weak_read(Bytes op, OpCallback cb);

  /// Fire-and-record submission for open-loop load generation: the op
  /// enters this client's pipeline immediately and the arrival process
  /// never waits for a reply. Unlike write()/weak_read(), whose callbacks
  /// report *service* latency (reply time minus transmission start), the
  /// callback here reports *sojourn* latency — completion minus this
  /// submission, including any time the op queued behind earlier ops on
  /// this client. Under overload that queueing is exactly the signal a
  /// closed-loop harness hides (coordinated omission), so open-loop
  /// drivers must use this path. Kind routing matches the named entry
  /// points: WeakRead (and StrongRead under direct_strong_reads) take the
  /// direct path, everything else the ordered path. Ops cancelled by
  /// cancel_pending() lose the sojourn stamp on resubmit; router-managed
  /// deployments measure sojourn at the router instead.
  void fire(OpKind kind, Bytes op, OpCallback cb);

  /// Ops queued or in flight on this client, ordered + direct paths (the
  /// in-flight op stays in its queue until completion). Open-loop drivers
  /// report the max depth as a saturation symptom.
  [[nodiscard]] std::size_t queue_depth() const {
    return queue_.size() + weak_queue_.size();
  }

  /// Submits an admin reconfiguration command through the write path.
  void reconfig(const ReconfigCmd& cmd, OpCallback cb) {
    submit_ordered(OpKind::Reconfig, cmd.encode(), std::move(cb));
  }

  /// Switches to a different execution group (e.g. after its region failed
  /// or a closer group appeared). In-flight ordered ops are re-sent there.
  void switch_group(ClientGroupInfo group);

  void on_message(NodeId from, BytesView data) override;

  /// Cancels every queued and in-flight operation — ordered and direct — and
  /// returns them in submission order (ordered queue first) with their
  /// callbacks, which have NOT been invoked. Routers use this to re-route
  /// ops that are retrying against a shard that no longer owns their keys.
  /// An in-flight write may already have committed; re-submitting it is
  /// at-least-once, not exactly-once.
  struct PendingOp {
    OpKind kind;
    Bytes op;
    OpCallback cb;
  };
  std::vector<PendingOp> cancel_pending();

  /// Re-submits a cancelled op with its original kind (weak reads re-enter
  /// the direct path, everything else the ordered path).
  void resubmit(PendingOp op);

  [[nodiscard]] const ClientGroupInfo& group() const { return group_; }
  /// Total retransmissions (ordered + direct). Thin read of the registry
  /// counter `client_retransmits{node=id(), role="client"}`.
  [[nodiscard]] std::uint64_t retries() const { return retransmits_.value(); }

 private:
  struct OrderedOp {
    OpKind kind;
    Bytes op;
    OpCallback cb;
    Time enqueued = 0;  // submission time (sojourn reference for open ops)
    bool open = false;  // fire(): report sojourn, not service latency
  };

  void submit_ordered(OpKind kind, Bytes op, OpCallback cb, bool open = false,
                      Time enqueued = -1);
  void start_next();
  Duration retry_jitter(Duration base);
  void arm_retry();
  void transmit_current();
  /// MAC-framed [kClient][frame][mac] fan-out to the whole group; the
  /// domain-separated auth bytes are computed once and shared. Ordered
  /// requests ride the reliable control channel; the direct path (weak
  /// reads, optimized strong reads) is retried and idempotent, so it rides
  /// the unordered datagram channel on the socket backend.
  void transmit_framed(const Bytes& frame, TrafficClass cls);
  void start_weak();
  void arm_weak_retry();
  void transmit_weak();
  void handle_reply(NodeId from, Reader& r);

  ClientGroupInfo group_;
  Duration retry_;
  Rng rng_;                 // per-client stream for retransmit jitter
  Duration retry_cur_ = 0;  // current backoff interval for the in-flight op
  std::uint64_t tc_ = 0;  // counter of the *current/last* ordered request

  // Ordered-op state.
  std::deque<OrderedOp> queue_;
  bool in_flight_ = false;
  Bytes current_wire_;  // signed frame of the in-flight request
  Time current_start_ = 0;
  std::map<NodeId, Bytes> replies_;  // replica -> result (for current tc)
  EventQueue::EventId retry_timer_ = EventQueue::kInvalidEvent;

  // Registry-backed stats (references stay valid for the World's lifetime).
  obs::Counter& retransmits_;
  obs::LogHistogram& lat_ordered_;
  obs::LogHistogram& lat_direct_;

  // Direct-read state (weak reads, and BFT-style optimized strong reads):
  // one outstanding direct op at a time.
  struct WeakOp {
    Bytes op;
    OpCallback cb;
    OpKind kind = OpKind::WeakRead;
    Time enqueued = 0;
    bool open = false;
  };
  void submit_direct(OpKind kind, Bytes op, OpCallback cb, bool open = false);
  std::deque<WeakOp> weak_queue_;
  bool weak_in_flight_ = false;
  Duration weak_retry_cur_ = 0;  // current backoff interval for the direct op
  std::uint64_t weak_attempts_ = 0;  // retransmissions of the in-flight direct op
  std::uint64_t weak_counter_ = 0;
  Time weak_start_ = 0;
  std::map<NodeId, Bytes> weak_replies_;
  EventQueue::EventId weak_retry_timer_ = EventQueue::kInvalidEvent;
};

}  // namespace spider
