// Spider agreement replica (paper Fig. 17).
//
// Pulls client requests out of per-group request channels, feeds them into
// the consensus black box (PBFT), and pushes the totally ordered Execute
// stream into every execution group's commit channel. Implements the
// paper's global flow control: the agreement window (AG-WIN) advances only
// with stable agreement checkpoints, and a delivery is considered complete
// once ne - z commit channels accepted it, so up to z trailing execution
// groups cannot stall the system (§3.5). Also hosts the execution-replica
// registry and applies AddGroup / RemoveGroup commands (§3.6).
#pragma once

#include <deque>
#include <map>
#include <set>

#include "consensus/pbft_replica.hpp"
#include "irmc/irmc.hpp"
#include "spider/checkpointer.hpp"
#include "spider/execution_replica.hpp"
#include "spider/messages.hpp"

namespace spider {

struct AgreementConfig {
  NodeId self = kInvalidNode;  // explicit id (kInvalidNode = allocate)
  std::vector<NodeId> members;  // 3fa+1 agreement replicas
  std::uint32_t my_index = 0;
  std::uint32_t fa = 1;
  std::uint32_t fe = 1;                  // fe of execution groups (fr for commit channels)
  IrmcKind irmc_kind = IrmcKind::ReceiverCollect;
  std::uint64_t ka = 16;                 // agreement checkpoint interval (logical requests)
  std::uint64_t ag_win = 64;             // AG-WIN (>= ka; counts logical requests)
  std::uint64_t max_batch = 1;           // consensus requests per instance
  Duration batch_delay = 0;              // max wait for a batch to fill
  std::uint32_t z = 0;                   // trailing groups that may be skipped
  Position commit_capacity = 64;
  Position request_capacity = 2;
  Duration request_timeout = 2 * kSecond;
  Duration view_change_timeout = 4 * kSecond;
  NodeId admin = kInvalidNode;           // only this client may reconfigure
  std::vector<RegistryEntry> initial_groups;
  Duration progress_interval = 50 * kMillisecond;
  Duration collector_timeout = 300 * kMillisecond;
};

class AgreementReplica : public ComponentHost {
 public:
  AgreementReplica(World& world, Site site, AgreementConfig cfg);

  void on_message(NodeId from, BytesView data) override;

  /// Crash-recovery bootstrap: actively fetch the group's latest stable
  /// agreement checkpoint instead of waiting for the next periodic one
  /// (which may never come if client traffic stopped).
  void recover();

  /// Applies a Byzantine flag set (FaultPlan via the system's
  /// set_byzantine): mute / mute_rx / equivocate drive the consensus
  /// engine, forge_checkpoints the agreement checkpointer; execution-role
  /// flags are ignored (agreement replicas never answer clients).
  void apply_byzantine(const ByzantineFlags& f);

  // Introspection ---------------------------------------------------------
  [[nodiscard]] SeqNr ordered_seq() const { return sn_; }
  [[nodiscard]] const RegistrySnapshot& registry() const { return registry_; }
  [[nodiscard]] PbftReplica& consensus() { return *pbft_; }
  [[nodiscard]] std::size_t group_count() const { return channels_.size(); }

 private:
  struct Channel {
    RegistryEntry info;
    std::unique_ptr<IrmcReceiverEndpoint> request_rx;
    std::unique_ptr<IrmcSenderEndpoint> commit_tx;
  };
  void setup_channel(const RegistryEntry& info, bool backfill);
  void remove_channel(GroupId g);
  void start_pull(GroupId g, Subchannel c);
  void start_pull_again(GroupId g, Subchannel c);
  bool validate_request(BytesView wire) const;

  void on_deliver(SeqNr first, const std::vector<Bytes>& batch);
  void process_queue();
  void handle_ordered(SeqNr first, const std::vector<Bytes>& batch);
  void dispatch_execute(const ExecuteBatchMsg& canonical, bool count_completions);
  ExecuteBatchMsg derive_for(GroupId g, const ExecuteBatchMsg& canonical) const;
  void trim_hist();
  void apply_reconfig(const ReconfigCmd& cmd);
  void maybe_checkpoint();
  Bytes snapshot_state() const;
  void on_stable_checkpoint(SeqNr s, BytesView state);
  void handle_registry_query(NodeId from);

  AgreementConfig cfg_;
  std::unique_ptr<PbftReplica> pbft_;
  std::unique_ptr<Checkpointer> checkpointer_;
  std::map<GroupId, Channel> channels_;
  RegistrySnapshot registry_;

  SeqNr sn_ = 0;
  SeqNr last_cp_ = 0;  // seq of the last checkpoint this replica generated
  SeqNr win_hi_ = 0;   // upper bound of the agreement window
  std::map<NodeId, std::uint64_t> t_;       // latest agreed counter per client
  std::map<NodeId, std::uint64_t> t_plus_;  // next expected counter per client
  /// Recent Execute batches covering the last |commit window| logical
  /// sequence numbers; front is always a batch boundary so commit-channel
  /// window moves stay aligned with batch positions.
  std::deque<ExecuteBatchMsg> hist_;
  std::set<std::pair<GroupId, Subchannel>> pulling_;

  std::deque<std::pair<SeqNr, std::vector<Bytes>>> deliver_queue_;
  bool processing_ = false;
};

}  // namespace spider
