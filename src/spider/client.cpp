#include "spider/client.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "runtime/parallel.hpp"
#include "sim/world.hpp"

namespace spider {

namespace {
Bytes tagged(std::uint32_t tag, BytesView inner) {
  Writer w;
  w.u32(tag);
  w.raw(inner);
  return std::move(w).take();
}

/// Returns the result that at least `quorum` replicas agree on, if any.
const Bytes* matching_quorum(const std::map<NodeId, Bytes>& replies, std::uint32_t quorum) {
  for (const auto& [node, result] : replies) {
    std::uint32_t count = 0;
    for (const auto& [node2, result2] : replies) {
      if (result2 == result) ++count;
    }
    if (count >= quorum) return &result;
  }
  return nullptr;
}
}  // namespace

SpiderClient::SpiderClient(World& world, Site site, ClientGroupInfo group, Duration retry)
    : ComponentHost(world, world.allocate_id(), site),
      group_(std::move(group)),
      retry_(retry),
      rng_(world.rng().fork()),
      retransmits_(world.metrics().counter("client_retransmits",
                                           {.node = id(), .role = "client"})),
      lat_ordered_(world.metrics().histogram("client_latency_ordered",
                                             {.node = id(), .role = "client"})),
      lat_direct_(world.metrics().histogram("client_latency_direct",
                                            {.node = id(), .role = "client"})) {}

void SpiderClient::switch_group(ClientGroupInfo group) {
  group_ = std::move(group);
  if (in_flight_) {
    replies_.clear();
    transmit_current();
  }
  if (weak_in_flight_) {
    weak_replies_.clear();
    transmit_weak();
  }
}

void SpiderClient::submit_ordered(OpKind kind, Bytes op, OpCallback cb, bool open,
                                  Time enqueued) {
  queue_.push_back(OrderedOp{kind, std::move(op), std::move(cb),
                             enqueued >= 0 ? enqueued : now(), open});
  if (!in_flight_) start_next();
}

void SpiderClient::fire(OpKind kind, Bytes op, OpCallback cb) {
  if (kind == OpKind::WeakRead ||
      (kind == OpKind::StrongRead && group_.direct_strong_reads)) {
    submit_direct(kind, std::move(op), std::move(cb), /*open=*/true);
  } else {
    submit_ordered(kind, std::move(op), std::move(cb), /*open=*/true);
  }
}

void SpiderClient::start_next() {
  if (queue_.empty()) return;
  in_flight_ = true;
  ++tc_;
  OrderedOp& cur = queue_.front();

  ClientRequest req{cur.kind, id(), tc_, cur.op};
  Bytes body = req.encode();
  charge_sign();
  Bytes sig = crypto().sign(id(), tagged(tags::kClient, body));
  current_wire_ = ClientFrame{std::move(req), std::move(sig)}.encode();
  replies_.clear();
  current_start_ = now();
  retry_cur_ = retry_;
  if (auto* t = tracer()) {
    t->async(obs::Ph::kAsyncBegin, now(), id(), obs::request_id(id(), tc_),
             "request", "ordered", "kind", static_cast<std::uint64_t>(cur.kind));
  }
  transmit_current();

  if (retry_timer_ != EventQueue::kInvalidEvent) cancel_timer(retry_timer_);
  arm_retry();
}

Duration SpiderClient::retry_jitter(Duration base) {
  // Deterministic per-client jitter (up to base/4) from a stream forked off
  // the sim RNG: many clients whose requests got dropped together spread
  // their retransmits out instead of staying phase-locked in a retry storm.
  return static_cast<Duration>(rng_.uniform(static_cast<std::uint64_t>(base / 4) + 1));
}

void SpiderClient::arm_retry() {
  // Keep resending the in-flight request until fe+1 matching replies arrive
  // (paper Fig. 15, L. 11-13). The interval backs off exponentially — but
  // capped at kRetryBackoffCap x the base interval, so a recovering system
  // is reprobed within bounded time — and jittered, so a batched/saturated
  // system is not hammered with synchronized duplicates that would only be
  // answered from the reply cache.
  retry_timer_ = set_timer(retry_cur_ + retry_jitter(retry_cur_), [this] {
    retry_timer_ = EventQueue::kInvalidEvent;
    if (!in_flight_) return;
    retransmits_.inc();
    if (auto* t = tracer()) {
      t->async(obs::Ph::kAsyncInstant, now(), id(), obs::request_id(id(), tc_),
               "request", "retransmit");
    }
    transmit_current();
    retry_cur_ = std::min<Duration>(retry_cur_ * 2, kRetryBackoffCap * retry_);
    arm_retry();
  });
}

void SpiderClient::transmit_framed(const Bytes& frame, TrafficClass cls) {
  Bytes auth = tagged(tags::kClient, frame);  // shared across replicas
  // Per-replica MACs are independent: scatter them across the verify pool
  // and join in member order (bit-identical to computing them in the loop).
  std::vector<Bytes> macs = runtime::compute_macs(world(), id(), auth, group_.members);
  for (std::size_t i = 0; i < group_.members.size(); ++i) {
    charge_mac();
    const Bytes& mac = macs[i];
    Writer w(4 + frame.size() + mac.size());
    w.u32(tags::kClient);
    w.raw(frame);
    w.raw(mac);
    send_to(group_.members[i], Payload(std::move(w)), cls);
  }
}

void SpiderClient::transmit_current() {
  transmit_framed(current_wire_, TrafficClass::kOrdered);
}

void SpiderClient::weak_read(Bytes op, OpCallback cb) {
  submit_direct(OpKind::WeakRead, std::move(op), std::move(cb));
}

void SpiderClient::submit_direct(OpKind kind, Bytes op, OpCallback cb, bool open) {
  weak_queue_.push_back(WeakOp{std::move(op), std::move(cb), kind, now(), open});
  if (!weak_in_flight_) start_weak();
}

void SpiderClient::start_weak() {
  if (weak_queue_.empty()) return;
  weak_in_flight_ = true;
  weak_attempts_ = 0;
  ++weak_counter_;
  weak_replies_.clear();
  weak_start_ = now();
  weak_retry_cur_ = retry_;
  if (auto* t = tracer()) {
    t->async(obs::Ph::kAsyncBegin, now(), id(),
             obs::request_id(id(), weak_counter_, /*weak=*/true), "request",
             "direct", "kind",
             static_cast<std::uint64_t>(weak_queue_.front().kind));
  }
  transmit_weak();
  arm_weak_retry();
}

void SpiderClient::arm_weak_retry() {
  // Same capped exponential backoff + jitter as the ordered path. The
  // direct path used to re-arm at the constant base interval, which turned
  // every partition into a deterministic weak-read retry storm.
  weak_retry_timer_ = set_timer(weak_retry_cur_ + retry_jitter(weak_retry_cur_), [this] {
    weak_retry_timer_ = EventQueue::kInvalidEvent;
    if (!weak_in_flight_) return;
    if (weak_queue_.front().kind == OpKind::StrongRead &&
        ++weak_attempts_ >= kDirectReadFallbackRetries) {
      // Read-only optimization fallback (Castro-Liskov): the direct
      // replies will never agree — re-submit as a regular ordered
      // request. Deliberately OpKind::Write, not StrongRead: replicas in
      // direct-read mode answer StrongRead from local state without
      // ordering (that is the loop being broken here), and only the
      // regular-request kind forces the op through consensus. The op
      // itself is read-only, so ordering it mutates nothing and answers
      // from the committed state at its sequence position. This path is
      // only reachable with direct_strong_reads (flat-BFT baselines);
      // Spider strong reads are always ordered.
      WeakOp op = std::move(weak_queue_.front());
      weak_queue_.pop_front();
      weak_in_flight_ = false;
      if (auto* t = tracer()) {
        t->async(obs::Ph::kAsyncEnd, now(), id(),
                 obs::request_id(id(), weak_counter_, /*weak=*/true), "request",
                 "direct", "fallback", 1);
      }
      // An open op keeps its original sojourn stamp across the fallback.
      submit_ordered(OpKind::Write, std::move(op.op), std::move(op.cb), op.open,
                     op.enqueued);
      start_weak();
      return;
    }
    retransmits_.inc();
    if (auto* t = tracer()) {
      t->async(obs::Ph::kAsyncInstant, now(), id(),
               obs::request_id(id(), weak_counter_, /*weak=*/true), "request",
               "retransmit");
    }
    transmit_weak();
    weak_retry_cur_ = std::min<Duration>(weak_retry_cur_ * 2, kRetryBackoffCap * retry_);
    arm_weak_retry();
  });
}

std::vector<SpiderClient::PendingOp> SpiderClient::cancel_pending() {
  std::vector<PendingOp> out;
  for (OrderedOp& op : queue_) {
    out.push_back(PendingOp{op.kind, std::move(op.op), std::move(op.cb)});
  }
  queue_.clear();
  in_flight_ = false;
  current_wire_.clear();
  replies_.clear();
  if (retry_timer_ != EventQueue::kInvalidEvent) {
    cancel_timer(retry_timer_);
    retry_timer_ = EventQueue::kInvalidEvent;
  }
  for (WeakOp& op : weak_queue_) {
    out.push_back(PendingOp{op.kind, std::move(op.op), std::move(op.cb)});
  }
  weak_queue_.clear();
  weak_in_flight_ = false;
  weak_replies_.clear();
  if (weak_retry_timer_ != EventQueue::kInvalidEvent) {
    cancel_timer(weak_retry_timer_);
    weak_retry_timer_ = EventQueue::kInvalidEvent;
  }
  return out;
}

void SpiderClient::resubmit(PendingOp op) {
  if (op.kind == OpKind::WeakRead ||
      (op.kind == OpKind::StrongRead && group_.direct_strong_reads)) {
    submit_direct(op.kind, std::move(op.op), std::move(op.cb));
  } else {
    submit_ordered(op.kind, std::move(op.op), std::move(op.cb));
  }
}

void SpiderClient::transmit_weak() {
  ClientRequest req{weak_queue_.front().kind, id(), weak_counter_, weak_queue_.front().op};
  transmit_framed(ClientFrame{std::move(req), {}}.encode(), TrafficClass::kUnordered);
}

void SpiderClient::on_message(NodeId from, BytesView data) {
  try {
    Reader r(data);
    if (r.u32() != tags::kClient) return;
    handle_reply(from, r);
  } catch (const SerdeError&) {
    // malformed reply: drop
  }
}

void SpiderClient::handle_reply(NodeId from, Reader& r) {
  // Replies only count from members of the current group.
  if (std::find(group_.members.begin(), group_.members.end(), from) == group_.members.end()) return;

  BytesView all = r.raw(r.remaining());
  std::size_t mac_len = crypto().mac_size();
  if (all.size() <= mac_len) return;
  BytesView body = all.subspan(0, all.size() - mac_len);
  BytesView mac = all.subspan(all.size() - mac_len);
  charge_mac();
  if (!check_auth_frame(from, tags::kClient, body, mac, /*is_sig=*/false)) return;

  Reader br(body);
  ReplyMsg reply = ReplyMsg::decode(br);

  if (reply.weak) {
    if (!weak_in_flight_ || reply.counter != weak_counter_) return;
    weak_replies_[from] = reply.result;
    std::uint32_t quorum = group_.fe + 1;
    if (weak_queue_.front().kind == OpKind::StrongRead) {
      quorum = group_.strong_quorum != 0 ? group_.strong_quorum : group_.fe + 1;
    }
    if (const Bytes* result = matching_quorum(weak_replies_, quorum)) {
      Bytes out = *result;
      WeakOp op = std::move(weak_queue_.front());
      weak_queue_.pop_front();
      weak_in_flight_ = false;
      if (weak_retry_timer_ != EventQueue::kInvalidEvent) {
        cancel_timer(weak_retry_timer_);
        weak_retry_timer_ = EventQueue::kInvalidEvent;
      }
      Duration latency = now() - weak_start_;
      lat_direct_.add(static_cast<std::uint64_t>(latency));
      if (auto* t = tracer()) {
        t->async(obs::Ph::kAsyncEnd, now(), id(),
                 obs::request_id(id(), weak_counter_, /*weak=*/true), "request",
                 "direct");
      }
      op.cb(std::move(out), op.open ? now() - op.enqueued : latency);
      start_weak();  // next queued weak read, if any
    }
    return;
  }

  if (!in_flight_ || reply.counter != tc_) return;
  replies_[from] = reply.result;
  if (const Bytes* result = matching_quorum(replies_, group_.fe + 1)) {
    Bytes out = *result;
    OrderedOp op = std::move(queue_.front());
    queue_.pop_front();
    in_flight_ = false;
    if (retry_timer_ != EventQueue::kInvalidEvent) {
      cancel_timer(retry_timer_);
      retry_timer_ = EventQueue::kInvalidEvent;
    }
    Duration latency = now() - current_start_;
    lat_ordered_.add(static_cast<std::uint64_t>(latency));
    if (auto* t = tracer()) {
      t->async(obs::Ph::kAsyncEnd, now(), id(), obs::request_id(id(), tc_),
               "request", "ordered");
    }
    op.cb(std::move(out), op.open ? now() - op.enqueued : latency);
    start_next();
  }
}

}  // namespace spider
