// Spider protocol messages (paper Figures 15-17).
#pragma once

#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/serde.hpp"
#include "sim/topology.hpp"

namespace spider {

/// Operation categories a client can issue (paper §3.3) plus reconfiguration
/// commands handled by the agreement group (paper §3.6).
enum class OpKind : std::uint8_t {
  Write = 1,       // ordered, executed by all groups
  StrongRead = 2,  // ordered, executed only by the client's group
  WeakRead = 3,    // unordered fast path, never enters the agreement
  Reconfig = 4,    // AddGroup / RemoveGroup admin command
};

/// The client-signed request core: <Write, w, c, tc>. The signature covers
/// exactly these bytes.
struct ClientRequest {
  OpKind kind = OpKind::Write;
  NodeId client = kInvalidNode;
  std::uint64_t counter = 0;  // tc
  Bytes op;                   // application operation (or reconfig command)

  Bytes encode() const;
  static ClientRequest decode(Reader& r);
};

/// Client -> execution group frame: request core + client signature
/// (writes / strong reads) and a per-replica MAC appended on the wire.
struct ClientFrame {
  ClientRequest req;
  Bytes signature;  // empty for weak reads

  Bytes encode() const;
  static ClientFrame decode(Reader& r);
};

/// <Request, r, e>: what execution replicas push into the request channel.
struct RequestMsg {
  ClientFrame frame;
  GroupId origin = 0;  // execution group the client is attached to

  Bytes encode() const;
  static RequestMsg decode(Reader& r);
};

/// What flows through the commit channel for one sequence number.
enum class ExecuteKind : std::uint8_t {
  Full = 1,         // full request: execute it
  Placeholder = 2,  // strong read executed elsewhere: only consume (c, tc)
  Noop = 3,         // null request decided during fault handling
  Reconfig = 4,     // registry change applied by the agreement group
};

struct ExecuteMsg {
  ExecuteKind kind = ExecuteKind::Noop;
  SeqNr seq = 0;
  GroupId origin = 0;         // group whose client issued the request
  NodeId client = kInvalidNode;
  std::uint64_t counter = 0;  // tc
  OpKind op_kind = OpKind::Write;
  Bytes op;                   // payload for Full

  Bytes encode() const;
  static ExecuteMsg decode(Reader& r);
};

/// Atomic unit flowing through a commit channel: every Execute decided by
/// one consensus instance, stored at the IRMC position of its first
/// sequence number. Execution replicas apply the whole batch in order
/// before answering clients or checkpointing, so positions — like the
/// flow-control windows above them — keep counting logical requests.
struct ExecuteBatchMsg {
  std::vector<ExecuteMsg> items;  // >= 1 entries with consecutive seqs

  [[nodiscard]] SeqNr first() const { return items.front().seq; }
  [[nodiscard]] SeqNr last() const { return items.back().seq; }
  [[nodiscard]] SeqNr size() const { return static_cast<SeqNr>(items.size()); }

  Bytes encode() const;
  static ExecuteBatchMsg decode(Reader& r);
};

/// Replica -> client reply <Reply, u, tc>, MAC'd per client.
struct ReplyMsg {
  std::uint64_t counter = 0;
  Bytes result;
  bool weak = false;  // weakly consistent fast-path reply

  Bytes encode() const;
  static ReplyMsg decode(Reader& r);
};

/// Reconfiguration commands (payload of OpKind::Reconfig).
struct ReconfigCmd {
  bool add = true;  // true = AddGroup, false = RemoveGroup
  GroupId group = 0;
  Region region = Region::Virginia;
  std::vector<NodeId> members;

  Bytes encode() const;
  static ReconfigCmd decode(Reader& r);
};

/// Execution-replica registry entry (paper §3.1): served by the agreement
/// group so clients can locate active execution groups.
struct RegistryEntry {
  GroupId group = 0;
  Region region = Region::Virginia;
  std::vector<NodeId> members;

  void encode_into(Writer& w) const;
  static RegistryEntry decode(Reader& r);
};

struct RegistrySnapshot {
  std::uint64_t version = 0;
  std::vector<RegistryEntry> groups;

  Bytes encode() const;
  static RegistrySnapshot decode(Reader& r);
};

}  // namespace spider
