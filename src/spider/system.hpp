// Deployment builder: assembles a complete Spider system inside a World —
// one agreement group (3fa+1 replicas across availability zones) plus one
// execution group (2fe+1 replicas) per requested region — and offers
// helpers for clients and runtime reconfiguration.
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "app/kvstore.hpp"
#include "spider/agreement_replica.hpp"
#include "spider/client.hpp"
#include "spider/execution_replica.hpp"

namespace spider {

struct SpiderTopology {
  std::uint32_t fa = 1;
  std::uint32_t fe = 1;
  Region agreement_region = Region::Virginia;
  std::vector<Region> exec_regions = {Region::Virginia, Region::Oregon, Region::Ireland,
                                      Region::Tokyo};
  IrmcKind irmc_kind = IrmcKind::ReceiverCollect;

  std::uint64_t ka = 16;   // agreement checkpoint interval (logical requests)
  std::uint64_t ke = 16;   // execution checkpoint interval (logical requests)
  std::uint64_t ag_win = 64;
  /// Request batching on the ordered-write hot path: the PBFT leader packs
  /// up to `max_batch` requests into one consensus instance, waiting at
  /// most `batch_delay` for a batch to fill. Checkpoint intervals and
  /// flow-control windows keep counting logical requests, not batches.
  std::uint64_t max_batch = 1;
  Duration batch_delay = 0;
  Position commit_capacity = 64;
  Position request_capacity = 2;
  std::uint32_t z = 0;     // trailing groups that may be skipped
  /// Rotates the agreement replicas' AZ assignment so the view-0 leader
  /// sits in a different availability zone (paper Fig. 7: "Leader in V-k").
  std::uint32_t agreement_az_rotation = 0;

  Duration request_timeout = 2 * kSecond;       // consensus liveness timer
  Duration view_change_timeout = 4 * kSecond;
  Duration client_retry = 2 * kSecond;

  /// First GroupId this deployment hands out. A sharded deployment gives
  /// every core a disjoint range so N cores coexist in one World without
  /// colliding on per-group channel/checkpoint tags (NodeIds are already
  /// disjoint: they come from the shared World allocator).
  GroupId first_group_id = 1;

  /// Live-resharding deployments: the partition table this core's execution
  /// replicas enforce and the shard index they answer for. Unset = no
  /// ownership checks (standalone cores and statically sharded deployments
  /// behave exactly as before).
  std::optional<ShardMap> shard_map;
  std::uint32_t shard_index = 0;

  /// Application factory (defaults to the KV store used in the paper).
  std::function<std::unique_ptr<Application>()> make_app = [] {
    return std::make_unique<KvStore>();
  };
};

/// Up-front sanity checks (run by the SpiderSystem constructor): throws
/// std::invalid_argument naming the offending field instead of letting a
/// nonsensical deployment misbehave downstream.
void validate_topology(const SpiderTopology& t);

/// Number of availability zones we model per region (paper §3.1: all major
/// regions have >= 3 AZs; Virginia has more and hosts the agreement group).
int az_count(Region r);
/// Nearby region used for extra fault domains in f=2 deployments (paper §5).
Region nearby_region(Region r);
/// Placement rule shared by all systems: up to four distinct AZs of the
/// home region, then AZs of the nearby region (additional fault domains).
std::vector<Site> geo_replica_sites(Region home, std::size_t n);

class SpiderSystem {
 public:
  SpiderSystem(World& world, SpiderTopology topology);

  // ---- structure --------------------------------------------------------
  [[nodiscard]] std::size_t agreement_size() const { return agreement_.size(); }
  AgreementReplica& agreement(std::size_t i) { return *agreement_[i]; }
  [[nodiscard]] std::vector<NodeId> agreement_ids() const;

  [[nodiscard]] std::vector<GroupId> group_ids() const;
  [[nodiscard]] std::size_t group_size(GroupId g) const { return groups_.at(g).size(); }
  ExecutionReplica& exec(GroupId g, std::size_t i) { return *groups_.at(g)[i]; }
  [[nodiscard]] ClientGroupInfo group_info(GroupId g) const;
  [[nodiscard]] GroupId nearest_group(Region r) const;
  [[nodiscard]] Region group_region(GroupId g) const { return group_regions_.at(g); }

  // ---- clients -----------------------------------------------------------
  /// Creates a client at `site` attached to the nearest execution group.
  std::unique_ptr<SpiderClient> make_client(Site site);

  // ---- crash-recovery (FaultPlan hooks) ----------------------------------
  /// Crashes the replica process with the given id: the object is
  /// destroyed, so all volatile state (app state, logs, IRMC endpoint
  /// state, timers) is lost; messages in flight to it are dropped.
  /// Returns false if no replica of this deployment has that id.
  bool crash_node(NodeId id);
  /// Rebuilds a crashed replica under the same NodeId/site. The fresh
  /// process re-initializes through the checkpoint/state-transfer path
  /// (fetch_cp / commit-channel replay / PBFT view rejoin).
  bool restart_node(NodeId id);
  [[nodiscard]] bool is_crashed(NodeId id) const;
  /// Every replica id of this deployment (agreement + execution), for
  /// fault-plan targeting.
  [[nodiscard]] std::vector<NodeId> replica_ids() const;

  // ---- Byzantine fault injection (FaultPlan hooks) -----------------------
  /// Applies a Byzantine flag set to the replica with this id: agreement
  /// replicas honour the consensus-role flags (mute / mute_rx / equivocate
  /// / forge_checkpoints), execution replicas the execution-role flags
  /// (corrupt_replies / drop_forwarding / forge_checkpoints). Flags
  /// persist across crash_node/restart_node — a rebuilt process resumes
  /// its scheduled misbehaviour — and are cleared by applying a
  /// default-constructed set. Returns false for unknown ids.
  bool set_byzantine(NodeId id, const ByzantineFlags& flags);
  [[nodiscard]] ByzantineFlags byzantine_flags(NodeId id) const;

  // ---- runtime reconfiguration (paper §3.6) ------------------------------
  /// Starts 2fe+1 replicas in `region` and submits <AddGroup> through the
  /// admin client; cb fires when the reconfiguration has been agreed.
  GroupId add_group(Region region, std::function<void()> done = {});
  /// Submits <RemoveGroup>; replicas are shut down once agreed.
  void remove_group(GroupId g, std::function<void()> done = {});

  /// The privileged admin client (created lazily, attached to group 1).
  SpiderClient& admin();

  [[nodiscard]] World& world() { return world_; }
  [[nodiscard]] const SpiderTopology& topology() const { return topo_; }
  /// Next GroupId this deployment would hand out (sharded builders use it
  /// to police their per-core GroupId ranges).
  [[nodiscard]] GroupId next_group_id() const { return next_group_id_; }

 private:
  std::vector<Site> replica_sites(Region home, std::size_t n) const;
  AgreementConfig agreement_config(std::size_t i) const;
  ExecutionConfig exec_config(GroupId g, std::size_t i) const;
  std::unique_ptr<ExecutionReplica> build_exec_replica(GroupId g, std::size_t i);
  /// Builds a whole execution group from the stored identity
  /// (group_members_/group_regions_ must already hold the group).
  std::vector<std::unique_ptr<ExecutionReplica>> build_group(GroupId g);
  void wire_checkpoint_peers();
  [[nodiscard]] std::vector<NodeId> checkpoint_peers_for(GroupId g) const;

  World& world_;
  SpiderTopology topo_;
  // Identity (NodeIds, sites, membership) is kept separately from the live
  // objects: a crashed replica leaves a nullptr slot, and a restart
  // rebuilds the object from the stored identity.
  std::vector<NodeId> agreement_ids_;
  std::vector<Site> agreement_sites_;
  std::vector<RegistryEntry> initial_entries_;
  std::map<GroupId, std::vector<NodeId>> group_members_;
  std::vector<std::unique_ptr<AgreementReplica>> agreement_;
  std::map<GroupId, std::vector<std::unique_ptr<ExecutionReplica>>> groups_;
  std::map<GroupId, Region> group_regions_;
  GroupId next_group_id_ = 1;
  std::unique_ptr<SpiderClient> admin_;
  // Byzantine flags outlive the replica object (re-applied on restart).
  std::map<NodeId, ByzantineFlags> byz_flags_;
};

}  // namespace spider
