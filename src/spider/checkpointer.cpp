#include "spider/checkpointer.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "runtime/parallel.hpp"
#include "sim/world.hpp"

namespace spider {

namespace {
Bytes checkpoint_body(SeqNr s, const Sha256Digest& h) {
  Writer w;
  w.u8(1);  // MsgType::Checkpoint
  w.u64(s);
  w.raw(BytesView(h.data(), h.size()));
  return std::move(w).take();
}
}  // namespace

Checkpointer::Checkpointer(ComponentHost& host, std::uint32_t tag, std::vector<NodeId> group,
                           std::uint32_t f, StableFn stable, MemberCheck trusted)
    : Component(host, tag), group_(std::move(group)), f_(f), stable_(std::move(stable)),
      trusted_(std::move(trusted)) {
  if (!trusted_) {
    trusted_ = [this](NodeId n) {
      return std::find(group_.begin(), group_.end(), n) != group_.end();
    };
  }
}

Checkpointer::~Checkpointer() {
  if (fetch_timer_ != EventQueue::kInvalidEvent) cancel_timer(fetch_timer_);
}

void Checkpointer::add_fetch_peers(const std::vector<NodeId>& peers) {
  for (NodeId p : peers) {
    if (p == self()) continue;
    if (std::find(fetch_peers_.begin(), fetch_peers_.end(), p) == fetch_peers_.end()) {
      fetch_peers_.push_back(p);
    }
  }
}

void Checkpointer::gen_cp(SeqNr s, Bytes state) {
  if (s <= last_stable_) return;
  if (forge_checkpoints) {
    Bytes tampered = state;
    tampered.push_back(0xbd);
    host().charge_hash(tampered.size());
    Sha256Digest h = Sha256::hash(tampered);
    Bytes body = checkpoint_body(s, h);
    host().charge_sign();
    Bytes sig = crypto().sign(self(), auth_bytes(body));
    Bytes vote = body;
    vote.insert(vote.end(), sig.begin(), sig.end());

    // Forged certificate: a State message whose proof claims f+1 signers
    // but lists only this replica's signature, f+1 times over.
    Writer proof;
    proof.u32(f_ + 1);
    for (std::uint32_t i = 0; i < f_ + 1; ++i) {
      proof.u32(self());
      proof.bytes(sig);
    }
    Writer cert;
    cert.u8(3);  // MsgType::State
    cert.u64(s);
    cert.bytes(tampered);
    cert.bytes(proof.data());

    Payload vote_wire = wire_frame(vote);
    Payload cert_frame = wire_frame(cert.data());
    for (NodeId n : group_) {
      if (n == self()) continue;
      send_wire(n, vote_wire);
      send_wire(n, cert_frame);
    }
    // Keep the genuine snapshot so check_stable can adopt the correct
    // checkpoint when f+1 honest votes stabilize it.
    own_snapshots_[s] = Payload(std::move(state));
    return;
  }
  Payload snapshot(std::move(state));
  host().charge_hash(snapshot.size());
  Sha256Digest h = snapshot.digest();
  own_snapshots_[s] = std::move(snapshot);

  Bytes body = checkpoint_body(s, h);
  host().charge_sign();
  Bytes sig = crypto().sign(self(), auth_bytes(body));
  candidates_[s][digest_prefix(h)].digest = h;
  candidates_[s][digest_prefix(h)].sigs[self()] = sig;

  // One frame shared by the whole group.
  Payload wire = wire_frame(body, sig);
  for (NodeId n : group_) {
    if (n != self()) send_wire(n, wire);
  }
  check_stable(s);
}

void Checkpointer::check_stable(SeqNr s) {
  if (s <= last_stable_) return;
  auto cit = candidates_.find(s);
  if (cit == candidates_.end()) return;
  for (auto& [key, pending] : cit->second) {
    if (pending.sigs.size() < f_ + 1) continue;
    // Stable. Do we hold matching state bytes? (memoized digest: gen_cp
    // already hashed this snapshot)
    auto oit = own_snapshots_.find(s);
    if (oit != own_snapshots_.end() && digest_prefix(oit->second.digest()) == key) {
      deliver(s, std::move(oit->second));
      return;
    }
    // We lack the snapshot: pull it from a replica that vouched for it.
    for (const auto& [signer, sig] : pending.sigs) {
      if (signer == self()) continue;
      Writer w;
      w.u8(2);  // Fetch
      w.u64(s);
      Component::send(signer, w.data());
      break;
    }
    return;
  }
}

Bytes Checkpointer::proof_for(SeqNr s) const {
  auto it = stable_proofs_.find(s);
  return it == stable_proofs_.end() ? Bytes{} : it->second;
}

void Checkpointer::deliver(SeqNr s, Payload state) {
  if (s <= last_stable_) return;
  last_stable_ = s;
  if (auto* t = host().tracer()) {
    t->instant(host().now(), host().id(), "checkpoint", "stable_cp", "seq", s);
  }

  // Assemble and store the f+1-signature proof for peers that fetch later.
  auto cit = candidates_.find(s);
  if (cit != candidates_.end()) {
    host().charge_hash(state.size());
    std::uint64_t key = digest_prefix(state.digest());
    auto pit = cit->second.find(key);
    if (pit != cit->second.end()) {
      Writer w;
      std::uint32_t count = 0;
      Writer entries;
      for (const auto& [signer, sig] : pit->second.sigs) {
        if (count == f_ + 1) break;
        entries.u32(signer);
        entries.bytes(sig);
        ++count;
      }
      w.u32(count);
      w.raw(entries.data());
      // Keep only the latest stable state to bound memory. Refcount, not
      // copy: the served state shares the delivered snapshot's buffer.
      stable_states_.clear();
      stable_proofs_.clear();
      stable_states_[s] = state;
      stable_proofs_[s] = std::move(w).take();
    }
  }

  candidates_.erase(candidates_.begin(), candidates_.upper_bound(s));
  own_snapshots_.erase(own_snapshots_.begin(), own_snapshots_.upper_bound(s));
  if (fetch_target_ != 0 && fetch_target_ <= s) {
    fetch_target_ = 0;
    if (fetch_timer_ != EventQueue::kInvalidEvent) {
      cancel_timer(fetch_timer_);
      fetch_timer_ = EventQueue::kInvalidEvent;
    }
  }
  stable_(s, state);
}

void Checkpointer::fetch_cp(SeqNr s) {
  if (s <= last_stable_) return;
  if (fetch_target_ >= s && fetch_timer_ != EventQueue::kInvalidEvent) return;
  fetch_target_ = std::max(fetch_target_, s);
  if (auto* t = host().tracer()) {
    t->instant(host().now(), host().id(), "checkpoint", "fetch_cp", "seq", s);
  }
  retry_fetch();
}

void Checkpointer::retry_fetch() {
  if (fetch_target_ == 0 || fetch_target_ <= last_stable_) return;
  Writer w(1 + 8);
  w.u8(2);  // Fetch
  w.u64(fetch_target_);
  Payload wire = wire_frame(w.data());
  for (NodeId n : group_) {
    if (n != self()) send_wire(n, wire);
  }
  for (NodeId n : fetch_peers_) send_wire(n, wire);
  fetch_timer_ = set_timer(fetch_retry_, [this] {
    fetch_timer_ = EventQueue::kInvalidEvent;
    retry_fetch();
  });
}

bool Checkpointer::send_state(NodeId to, SeqNr s) {
  // Reply with our latest stable checkpoint if it satisfies the request.
  if (stable_states_.empty()) return false;
  auto it = stable_states_.rbegin();
  if (it->first < s) return false;
  Bytes proof = proof_for(it->first);
  if (proof.empty()) return false;
  Writer w;
  w.u8(3);  // State
  w.u64(it->first);
  w.bytes(it->second);
  w.bytes(proof);
  Component::send(to, std::move(w).take());
  return true;
}

void Checkpointer::handle_state(NodeId /*from*/, Reader& r) {
  SeqNr s = r.u64();
  // Zero-copy: the adopted state is a slice of the inbound wire frame.
  Payload state = host().capture(r.bytes_view());
  BytesView proof = r.bytes_view();
  if (s <= last_stable_) return;

  host().charge_hash(state.size());
  Sha256Digest h = state.digest();
  Bytes body = checkpoint_body(s, h);
  Bytes signed_bytes = auth_bytes(body);

  Reader pr(proof);
  std::uint32_t count = pr.u32();
  if (count < f_ + 1) return;

  // Scatter: pre-parse the proof entries and kick off every trusted
  // signer's verification in parallel, then replay the sequential loop
  // with the precomputed verdicts. The screens (trusted_, duplicate-of-
  // *verified* signer) are replayed exactly, so charges are bit-identical;
  // a duplicate of a failed signer gets its own verdict, as before. A
  // malformed proof must still throw at the same point the incremental
  // parse would have — after charging for every complete entry — so we
  // replay the parsed prefix first and rethrow afterwards.
  struct ProofSig {
    NodeId signer;
    BytesView sig;
  };
  std::vector<ProofSig> entries;
  entries.reserve(count);
  bool truncated = false;
  try {
    for (std::uint32_t i = 0; i < count; ++i) {
      NodeId signer = pr.u32();
      entries.push_back({signer, pr.bytes_view()});
    }
  } catch (const SerdeError&) {
    truncated = true;
  }
  std::vector<runtime::SigCheck> checks;
  std::vector<std::size_t> vidx(entries.size(), 0);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (!trusted_(entries[i].signer)) continue;
    vidx[i] = checks.size();
    checks.push_back({entries[i].signer, signed_bytes, entries[i].sig});
  }
  std::vector<char> verdicts = runtime::verify_sigs(host().world(), checks);
  std::set<NodeId> seen;
  std::uint32_t valid = 0;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (seen.count(entries[i].signer) || !trusted_(entries[i].signer)) continue;
    host().charge_verify();
    if (!verdicts[vidx[i]]) continue;
    seen.insert(entries[i].signer);
    ++valid;
  }
  if (truncated) throw SerdeError("truncated checkpoint proof");
  if (valid < f_ + 1) return;

  // Record the proof so we can serve it onward, then deliver.
  candidates_[s][digest_prefix(h)].digest = h;
  {
    // Re-store verified signatures for proof forwarding.
    Reader pr2(proof);
    std::uint32_t c2 = pr2.u32();
    for (std::uint32_t i = 0; i < c2; ++i) {
      NodeId signer = pr2.u32();
      Bytes sig = pr2.bytes();
      if (seen.count(signer)) candidates_[s][digest_prefix(h)].sigs[signer] = std::move(sig);
    }
  }
  deliver(s, std::move(state));
}

void Checkpointer::on_message(NodeId from, Reader& r) {
  BytesView all = r.raw(r.remaining());
  if (all.empty()) return;
  auto type = static_cast<MsgType>(all[0]);

  if (type == MsgType::Checkpoint) {
    std::size_t sig_len = crypto().signature_size();
    if (all.size() <= sig_len) return;
    if (std::find(group_.begin(), group_.end(), from) == group_.end()) return;
    BytesView body = all.subspan(0, all.size() - sig_len);
    BytesView sig = all.subspan(all.size() - sig_len);
    host().charge_verify();
    if (!host().check_auth_frame(from, Component::tag(), body, sig, /*is_sig=*/true)) return;

    Reader br(body);
    br.u8();
    SeqNr s = br.u64();
    BytesView hv = br.raw(32);
    if (s <= last_stable_) return;
    Sha256Digest h;
    std::copy(hv.begin(), hv.end(), h.begin());
    Pending& p = candidates_[s][digest_prefix(h)];
    p.digest = h;
    p.sigs[from] = to_bytes(sig);
    check_stable(s);
  } else if (type == MsgType::Fetch) {
    // Only trusted replicas may pull state — and, below, make every group
    // member snapshot on demand. An untrusted node must not be able to
    // force O(state) snapshot + sign + broadcast work on the whole group.
    if (!trusted_(from)) return;
    Reader br(all);
    br.u8();
    SeqNr s = br.u64();
    if (!send_state(from, s) && snapshot_now) {
      auto [seq, state] = snapshot_now();
      if (seq > 0) gen_cp(seq, std::move(state));
    }
  } else if (type == MsgType::State) {
    Reader br(all);
    br.u8();
    handle_state(from, br);
  }
}

}  // namespace spider
