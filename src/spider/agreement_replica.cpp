#include "spider/agreement_replica.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "sim/world.hpp"

namespace spider {

namespace {
Bytes tagged(std::uint32_t tag, BytesView inner) {
  Writer w;
  w.u32(tag);
  w.raw(inner);
  return std::move(w).take();
}
}  // namespace

AgreementReplica::AgreementReplica(World& world, Site site, AgreementConfig cfg)
    : ComponentHost(world, cfg.self == kInvalidNode ? world.allocate_id() : cfg.self, site),
      cfg_(std::move(cfg)) {
  win_hi_ = cfg_.ag_win;

  PbftConfig pc;
  pc.replicas = cfg_.members;
  pc.my_index = cfg_.my_index;
  pc.f = cfg_.fa;
  pc.request_timeout = cfg_.request_timeout;
  pc.view_change_timeout = cfg_.view_change_timeout;
  pc.window = cfg_.ag_win + cfg_.ka;  // consensus pipeline never below AG-WIN
  pc.max_batch = cfg_.max_batch;
  pc.batch_delay = cfg_.batch_delay;
  pbft_ = std::make_unique<PbftReplica>(
      *this, pc,
      PbftReplica::BatchDeliverFn(
          [this](SeqNr first, const std::vector<Bytes>& batch) { on_deliver(first, batch); }));
  pbft_->validate = [this](BytesView wire) { return validate_request(wire); };

  checkpointer_ = std::make_unique<Checkpointer>(
      *this, tags::kCheckpoint, cfg_.members, cfg_.fa,
      [this](SeqNr s, BytesView state) { on_stable_checkpoint(s, state); });
  checkpointer_->snapshot_now = [this] {
    last_cp_ = std::max(last_cp_, sn_);
    return std::make_pair(sn_, snapshot_state());
  };

  registry_.version = 0;
  for (const RegistryEntry& g : cfg_.initial_groups) {
    registry_.groups.push_back(g);
    setup_channel(g, /*backfill=*/false);
  }
}

bool AgreementReplica::validate_request(BytesView wire) const {
  // A-Validity: only correctly authenticated client requests are ordered.
  try {
    Reader r(wire);
    RequestMsg req = RequestMsg::decode(r);
    const ClientRequest& cr = req.frame.req;
    if (cr.kind == OpKind::WeakRead) return false;  // never ordered
    if (cr.kind == OpKind::Reconfig && cr.client != cfg_.admin) return false;
    auto* self_mut = const_cast<AgreementReplica*>(this);
    self_mut->charge_verify();
    return self_mut->crypto().verify(cr.client, tagged(tags::kClient, cr.encode()),
                                     req.frame.signature);
  } catch (const SerdeError&) {
    return false;
  }
}

void AgreementReplica::setup_channel(const RegistryEntry& info, bool backfill) {
  if (channels_.count(info.group)) return;
  std::uint32_t fe = static_cast<std::uint32_t>((info.members.size() - 1) / 2);

  IrmcConfig req_cfg;
  req_cfg.senders = info.members;
  req_cfg.receivers = cfg_.members;
  req_cfg.fs = fe;
  req_cfg.fr = cfg_.fa;
  req_cfg.capacity = cfg_.request_capacity;
  req_cfg.channel_tag = request_channel_tag(info.group);
  req_cfg.progress_interval = cfg_.progress_interval;
  req_cfg.collector_timeout = cfg_.collector_timeout;

  IrmcConfig com_cfg;
  com_cfg.senders = cfg_.members;
  com_cfg.receivers = info.members;
  com_cfg.fs = cfg_.fa;
  com_cfg.fr = fe;
  com_cfg.capacity = cfg_.commit_capacity;
  com_cfg.channel_tag = commit_channel_tag(info.group);
  com_cfg.progress_interval = cfg_.progress_interval;
  com_cfg.collector_timeout = cfg_.collector_timeout;
  com_cfg.announce_window = true;  // revived execution replicas must learn
                                   // that the commit window moved on

  Channel ch;
  ch.info = info;
  ch.request_rx = make_irmc_receiver(cfg_.irmc_kind, *this, req_cfg);
  ch.commit_tx = make_irmc_sender(cfg_.irmc_kind, *this, com_cfg);
  GroupId g = info.group;
  ch.request_rx->on_new_subchannel = [this, g](Subchannel c) { start_pull(g, c); };
  channels_.emplace(g, std::move(ch));

  if (backfill && !hist_.empty()) {
    // Give the new group the recent Execute history; everything older must
    // come from an execution checkpoint of another group (paper §3.6).
    Channel& nc = channels_.at(g);
    for (const ExecuteBatchMsg& h : hist_) {
      nc.commit_tx->send(0, h.first(), derive_for(g, h).encode(), {});
    }
    nc.commit_tx->move_window(0, hist_.front().first());
  }
}

void AgreementReplica::remove_channel(GroupId g) {
  channels_.erase(g);
  for (auto it = pulling_.begin(); it != pulling_.end();) {
    if (it->first == g) {
      it = pulling_.erase(it);
    } else {
      ++it;
    }
  }
}

void AgreementReplica::start_pull(GroupId g, Subchannel c) {
  if (!pulling_.insert({g, c}).second) return;
  // Pull loop (paper Fig. 17, L. 13-22). Client subchannels carry the
  // client's request counter as position.
  std::function<void()> pull = [this, g, c]() {
    auto it = channels_.find(g);
    if (it == channels_.end()) return;  // group removed
    NodeId client = static_cast<NodeId>(c);
    std::uint64_t pos = std::max<std::uint64_t>(t_plus_[client], 1);
    it->second.request_rx->receive(c, pos, [this, g, c](RecvResult res) {
      NodeId client = static_cast<NodeId>(c);
      if (res.too_old) {
        // The client already confirmed a newer request (L. 16-18).
        t_plus_[client] = std::max(t_plus_[client], res.window_start);
      } else {
        pbft_->order(res.message.to_bytes());
        t_plus_[client] = std::max<std::uint64_t>(t_plus_[client] + 1, 1);
      }
      auto again = channels_.find(g);
      if (again == channels_.end()) return;
      start_pull_again(g, c);
    });
  };
  pull();
}

void AgreementReplica::start_pull_again(GroupId g, Subchannel c) {
  pulling_.erase({g, c});
  start_pull(g, c);
}

void AgreementReplica::on_deliver(SeqNr first, const std::vector<Bytes>& batch) {
  deliver_queue_.emplace_back(first, batch);
  process_queue();
}

void AgreementReplica::process_queue() {
  while (!processing_ && !deliver_queue_.empty()) {
    auto& [first, batch] = deliver_queue_.front();
    const SeqNr last = first + static_cast<SeqNr>(batch.size()) - 1;
    if (last <= sn_) {
      deliver_queue_.pop_front();  // covered by an adopted checkpoint
      continue;
    }
    if (first > sn_ + 1) {
      // Processing gap: the consensus floor jumped past batches this
      // replica never processed (view change while trailing). Handling
      // the batch now would build t_/hist_ on stale state and diverge;
      // recover the missing prefix through an agreement checkpoint —
      // its adoption re-enters process_queue.
      checkpointer_->fetch_cp(first - 1);
      return;
    }
    if (first > win_hi_) return;  // L. 27: sleep until the window allows
    SeqNr start = first;
    std::vector<Bytes> requests = std::move(batch);
    deliver_queue_.pop_front();
    processing_ = true;
    handle_ordered(start, requests);
  }
}

void AgreementReplica::handle_ordered(SeqNr first, const std::vector<Bytes>& batch) {
  // One consensus instance = one Execute batch, forwarded atomically over
  // every commit channel. Sequence numbers inside stay request-granular.
  ExecuteBatchMsg canonical;
  canonical.items.reserve(batch.size());
  SeqNr s = first;
  for (const Bytes& request : batch) {
    ExecuteMsg x;
    x.seq = s;

    if (request.empty()) {
      x.kind = ExecuteKind::Noop;
    } else {
      try {
        Reader r(request);
        RequestMsg req = RequestMsg::decode(r);
        const ClientRequest& cr = req.frame.req;
        x.origin = req.origin;
        x.client = cr.client;
        x.counter = cr.counter;
        x.op_kind = cr.kind;

        if (cr.counter <= t_[cr.client] && cr.kind != OpKind::Reconfig) {
          // Old/duplicate request: replace with a no-op (Fig. 17, L. 30).
          x.kind = ExecuteKind::Noop;
        } else if (cr.kind == OpKind::Reconfig) {
          Reader cmd_r(cr.op);
          ReconfigCmd cmd = ReconfigCmd::decode(cmd_r);
          apply_reconfig(cmd);
          x.kind = ExecuteKind::Reconfig;
          x.op = cr.op;
          t_[cr.client] = cr.counter;
          t_plus_[cr.client] = std::max(t_plus_[cr.client], cr.counter + 1);
        } else {
          x.kind = ExecuteKind::Full;
          x.op = cr.op;
          t_[cr.client] = cr.counter;
          t_plus_[cr.client] = std::max(t_plus_[cr.client], cr.counter + 1);
        }
        if (auto* t = tracer()) {
          t->async(obs::Ph::kAsyncInstant, now(), id(),
                   obs::request_id(cr.client, cr.counter), "request", "ordered",
                   "seq", s);
        }
      } catch (const SerdeError&) {
        x.kind = ExecuteKind::Noop;
      }
    }
    canonical.items.push_back(std::move(x));
    ++s;
  }
  sn_ = canonical.last();

  hist_.push_back(canonical);
  trim_hist();

  dispatch_execute(canonical, /*count_completions=*/true);
  maybe_checkpoint();
}

void AgreementReplica::trim_hist() {
  // Drop batches that lie entirely below the last |commit window| logical
  // requests. A batch straddling the window edge is kept whole, so every
  // retained position is reachable at its batch's stored IRMC position.
  while (hist_.size() > 1 && hist_.front().last() + cfg_.commit_capacity <= sn_) {
    hist_.pop_front();
  }
}

ExecuteBatchMsg AgreementReplica::derive_for(GroupId g, const ExecuteBatchMsg& canonical) const {
  // Strong reads are executed only by the origin group; everyone else gets
  // a placeholder carrying just (client, counter) (paper §3.3).
  ExecuteBatchMsg derived = canonical;
  for (ExecuteMsg& x : derived.items) {
    if (x.kind == ExecuteKind::Full && x.op_kind == OpKind::StrongRead && x.origin != g) {
      x.kind = ExecuteKind::Placeholder;
      x.op.clear();
    }
  }
  return derived;
}

void AgreementReplica::dispatch_execute(const ExecuteBatchMsg& canonical, bool count_completions) {
  if (!count_completions) {
    for (auto& [g, ch] : channels_) {
      ch.commit_tx->send(0, canonical.first(), derive_for(g, canonical).encode(), {});
    }
    return;
  }

  // Global flow control: resume processing once ne - z channels accepted
  // the Execute batch; slow channels finish in the background (paper §3.5).
  std::size_t ne = channels_.size();
  std::size_t needed = ne > cfg_.z ? ne - cfg_.z : 0;
  auto done = std::make_shared<std::size_t>(0);
  auto resumed = std::make_shared<bool>(false);
  auto resume = [this, done, resumed, needed](bool /*too_old*/, Position /*ws*/) {
    ++*done;
    if (*done >= needed && !*resumed) {
      *resumed = true;
      // Defer to a fresh event to keep the delivery pipeline iterative
      // (defer is alive-guarded and cost-free: harmless if this replica
      // crashes before the event fires, and no spurious CPU charge on the
      // commit hot path).
      defer(0, [this] {
        processing_ = false;
        process_queue();
      });
    }
  };
  if (needed == 0) resume(false, 0);
  for (auto& [g, ch] : channels_) {
    ch.commit_tx->send(0, canonical.first(), derive_for(g, canonical).encode(), resume);
  }
}

void AgreementReplica::apply_reconfig(const ReconfigCmd& cmd) {
  if (cmd.add) {
    if (channels_.count(cmd.group)) return;
    RegistryEntry entry{cmd.group, cmd.region, cmd.members};
    registry_.groups.push_back(entry);
    ++registry_.version;
    setup_channel(entry, /*backfill=*/true);
  } else {
    auto it = std::find_if(registry_.groups.begin(), registry_.groups.end(),
                           [&](const RegistryEntry& e) { return e.group == cmd.group; });
    if (it == registry_.groups.end()) return;
    registry_.groups.erase(it);
    ++registry_.version;
    remove_channel(cmd.group);
  }
}

void AgreementReplica::maybe_checkpoint() {
  // `ka` counts logical requests, and checkpoints land on batch boundaries
  // (sn_ only ever rests at the end of a processed batch), which keeps
  // commit-channel window moves aligned with stored batch positions.
  if (sn_ < last_cp_ + cfg_.ka) return;
  last_cp_ = sn_;
  checkpointer_->gen_cp(sn_, snapshot_state());
}

Bytes AgreementReplica::snapshot_state() const {
  Writer w;
  w.u32(static_cast<std::uint32_t>(t_.size()));
  for (const auto& [c, tc] : t_) {
    w.u32(c);
    w.u64(tc);
  }
  w.u32(static_cast<std::uint32_t>(hist_.size()));
  for (const ExecuteBatchMsg& h : hist_) w.bytes(h.encode());
  w.bytes(registry_.encode());
  return std::move(w).take();
}

void AgreementReplica::on_stable_checkpoint(SeqNr s, BytesView state) {
  // Adopt BEFORE telling consensus to collect garbage: gc() advances the
  // floor and synchronously delivers committed instances above it, so a
  // trailing replica checking `s > sn_` after gc would see the post-gap
  // sequence number and skip the adoption — permanently losing the
  // Execute batches below s (state divergence; found by the chaos suite
  // in the equivalent BFT-baseline path).
  bool adopted = false;
  SeqNr old_sn = sn_;
  if (s > sn_) {
    // This replica fell behind: adopt the checkpoint state (L. 47-56).
    try {
      Reader r(state);
      std::uint32_t nt = r.u32();
      std::map<NodeId, std::uint64_t> t2;
      for (std::uint32_t i = 0; i < nt; ++i) {
        NodeId c = r.u32();
        t2[c] = r.u64();
      }
      std::uint32_t nh = r.u32();
      std::deque<ExecuteBatchMsg> hist2;
      for (std::uint32_t i = 0; i < nh; ++i) {
        Reader er(r.bytes_view());
        hist2.push_back(ExecuteBatchMsg::decode(er));
      }
      Reader rr(r.bytes_view());
      RegistrySnapshot reg = RegistrySnapshot::decode(rr);

      sn_ = s;
      t_ = std::move(t2);
      for (const auto& [c, tc] : t_) {
        t_plus_[c] = std::max(t_plus_[c], tc + 1);
      }
      hist_ = std::move(hist2);
      // Pending requests the checkpoint proves already agreed must stop
      // driving view changes (their commit happened while we were cut
      // off; it will not be delivered here again).
      pbft_->drop_pending_if([this](BytesView wire) {
        try {
          Reader rr(wire);
          RequestMsg req = RequestMsg::decode(rr);
          auto it = t_.find(req.frame.req.client);
          return it != t_.end() && req.frame.req.counter <= it->second;
        } catch (const SerdeError&) {
          return false;
        }
      });
      if (reg.version > registry_.version) {
        // Reconcile channels with the checkpointed registry.
        for (const RegistryEntry& e : reg.groups) setup_channel(e, /*backfill=*/false);
        for (auto it = channels_.begin(); it != channels_.end();) {
          GroupId g = it->first;
          bool keep = std::any_of(reg.groups.begin(), reg.groups.end(),
                                  [&](const RegistryEntry& e) { return e.group == g; });
          ++it;
          if (!keep) remove_channel(g);
        }
        registry_ = std::move(reg);
      }
      adopted = true;
    } catch (const SerdeError&) {
      // A stable checkpoint is created by >= 1 correct replica; decode
      // failure here would indicate a local bug, not a Byzantine peer.
    }
  }

  // Let consensus collect garbage before s+1 (Fig. 17, L. 42-46).
  pbft_->gc(s + 1);

  // Move commit windows to the oldest retained batch boundary so stored
  // positions and window starts stay aligned.
  Position new_lo = hist_.empty() ? s + 1 : hist_.front().first();
  for (auto& [g, ch] : channels_) ch.commit_tx->move_window(0, new_lo);

  if (adopted) {
    // Push the skipped Execute batches out on all commit channels (L. 52-55).
    for (const ExecuteBatchMsg& h : hist_) {
      if (h.first() > old_sn && h.last() <= s) dispatch_execute(h, false);
    }
  }

  last_cp_ = std::max(last_cp_, s);
  win_hi_ = s + cfg_.ag_win;
  process_queue();
}

void AgreementReplica::recover() { checkpointer_->fetch_cp(1); }

void AgreementReplica::apply_byzantine(const ByzantineFlags& f) {
  pbft_->mute = f.mute;
  pbft_->mute_rx = f.mute_rx;
  pbft_->equivocate = f.equivocate;
  checkpointer_->forge_checkpoints = f.forge_checkpoints;
}

void AgreementReplica::handle_registry_query(NodeId from) {
  Bytes body = registry_.encode();
  charge_mac();
  Bytes mac = crypto().mac(id(), from, tagged(tags::kRegistry, body));
  Bytes wire = body;
  wire.insert(wire.end(), mac.begin(), mac.end());
  send_to(from, tagged(tags::kRegistry, wire));
}

void AgreementReplica::on_message(NodeId from, BytesView data) {
  try {
    Reader r(data);
    std::uint32_t tag = r.u32();
    if (tag == tags::kRegistry) {
      handle_registry_query(from);
      return;
    }
  } catch (const SerdeError&) {
    return;
  }
  ComponentHost::on_message(from, data);
}

}  // namespace spider
