#include "spider/execution_replica.hpp"

#include <set>

#include "obs/trace.hpp"
#include "sim/world.hpp"

namespace spider {

namespace {
Bytes tagged(std::uint32_t tag, BytesView inner) {
  Writer w;
  w.u32(tag);
  w.raw(inner);
  return std::move(w).take();
}

// Modeled CPU cost of executing one application operation.
constexpr Duration kExecCost = 8;
}  // namespace

ExecutionReplica::ExecutionReplica(World& world, Site site, ExecutionConfig cfg,
                                   std::unique_ptr<Application> app)
    : ComponentHost(world, cfg.self == kInvalidNode ? world.allocate_id() : cfg.self, site),
      cfg_(std::move(cfg)), app_(std::move(app)), map_(cfg_.shard_map),
      shard_index_(cfg_.shard_index) {
  IrmcConfig req_cfg;
  req_cfg.senders = cfg_.members;
  req_cfg.receivers = cfg_.agreement;
  req_cfg.fs = cfg_.fe;
  req_cfg.fr = cfg_.fa;
  req_cfg.capacity = cfg_.request_capacity;
  req_cfg.channel_tag = request_channel_tag(cfg_.group);
  req_cfg.progress_interval = cfg_.progress_interval;
  req_cfg.collector_timeout = cfg_.collector_timeout;
  request_tx_ = make_irmc_sender(cfg_.irmc_kind, *this, req_cfg);

  IrmcConfig com_cfg;
  com_cfg.senders = cfg_.agreement;
  com_cfg.receivers = cfg_.members;
  com_cfg.fs = cfg_.fa;
  com_cfg.fr = cfg_.fe;
  com_cfg.capacity = cfg_.commit_capacity;
  com_cfg.channel_tag = commit_channel_tag(cfg_.group);
  com_cfg.progress_interval = cfg_.progress_interval;
  com_cfg.collector_timeout = cfg_.collector_timeout;
  commit_rx_ = make_irmc_receiver(cfg_.irmc_kind, *this, com_cfg);

  auto trusted = std::make_shared<std::set<NodeId>>(cfg_.members.begin(), cfg_.members.end());
  trusted_peers_ = trusted;
  checkpointer_ = std::make_unique<Checkpointer>(
      *this, tags::kCheckpoint, cfg_.members, cfg_.fe,
      [this](SeqNr s, BytesView state) { on_stable_checkpoint(s, state); },
      [trusted](NodeId n) { return trusted->count(n) > 0; });
  checkpointer_->snapshot_now = [this] {
    last_cp_ = std::max(last_cp_, sn_);
    return std::make_pair(sn_, snapshot_state());
  };

  request_next_execute();
}

void ExecutionReplica::apply_byzantine(const ByzantineFlags& f) {
  corrupt_replies = f.corrupt_replies;
  drop_forwarding = f.drop_forwarding;
  checkpointer_->forge_checkpoints = f.forge_checkpoints;
}

void ExecutionReplica::add_checkpoint_peers(const std::vector<NodeId>& peers) {
  checkpointer_->add_fetch_peers(peers);
  for (NodeId p : peers) trusted_peers_->insert(p);
}

void ExecutionReplica::on_message(NodeId from, BytesView data) {
  try {
    Reader r(data);
    std::uint32_t tag = r.u32();
    if (tag == tags::kClient) {
      handle_client(from, r);
      return;
    }
  } catch (const SerdeError&) {
    return;
  }
  ComponentHost::on_message(from, data);
}

void ExecutionReplica::handle_client(NodeId from, Reader& r) {
  BytesView all = r.raw(r.remaining());
  std::size_t mac_len = crypto().mac_size();
  if (all.size() <= mac_len) return;
  BytesView body = all.subspan(0, all.size() - mac_len);
  BytesView mac = all.subspan(all.size() - mac_len);
  charge_mac();
  if (!check_auth_frame(from, tags::kClient, body, mac, /*is_sig=*/false)) return;

  Reader br(body);
  ClientFrame frame = ClientFrame::decode(br);
  const ClientRequest& req = frame.req;
  if (req.client != from) return;  // claimed identity must match the channel

  if (req.kind == OpKind::WeakRead) {
    // Fast path: answer from local state, no ordering (paper §3.3). Keys
    // this shard no longer owns get a versioned redirect instead of a
    // stale answer.
    if (!owns_keys(req.op)) {
      reply_to(from, req.counter, make_wrong_shard_reply(*map_), /*weak=*/true);
      return;
    }
    charge_app(kExecCost);
    if (auto* t = tracer()) {
      t->async(obs::Ph::kAsyncInstant, now(), id(),
               obs::request_id(req.client, req.counter, /*weak=*/true), "request",
               "weak-exec");
    }
    Bytes result = app_->execute_weak(req.op);
    reply_to(from, req.counter, result, /*weak=*/true);
    return;
  }

  std::uint64_t& last = t_[req.client];
  if (req.counter < last) return;  // superseded by a newer request
  if (req.counter == last) {
    // Retry of the latest request: serve the cached reply if we have it.
    auto uit = replies_.find(req.client);
    if (uit != replies_.end() && uit->second.counter == req.counter &&
        !uit->second.placeholder) {
      reply_to(from, req.counter, uit->second.result, /*weak=*/false);
      return;
    }
    // No reply yet: the request is still in flight, and our original
    // forward may have been lost before reaching fs+1 agreement receivers
    // (e.g. a partition cut the request channel right after we recorded
    // the counter). Fall through and re-drive the channel with the
    // identical Send — the receive side dedups, so the worst case is a
    // redundant transmission (reliable-link retransmission model).
  }

  charge_verify();
  if (!crypto().verify(req.client, tagged(tags::kClient, req.encode()), frame.signature)) return;

  last = req.counter;
  if (drop_forwarding) return;  // Byzantine: silently refuse to forward
  if (auto* t = tracer()) {
    t->async(obs::Ph::kAsyncInstant, now(), id(),
             obs::request_id(req.client, req.counter), "request", "forward");
  }
  request_tx_->move_window(req.client, req.counter);
  request_tx_->send(req.client, req.counter,
                    RequestMsg{std::move(frame), cfg_.group}.encode(), {});
}

void ExecutionReplica::request_next_execute() {
  // Batches are stored at the position of their first sequence number, and
  // sn_ always rests on a batch boundary, so sn_ + 1 addresses the next
  // stored batch.
  commit_rx_->receive(0, sn_ + 1, [this](RecvResult res) {
    if (!res.too_old) {
      try {
        Reader r(res.message);
        ExecuteBatchMsg batch = ExecuteBatchMsg::decode(r);
        process_batch(batch);
      } catch (const SerdeError&) {
        // Channel contents are vouched for by fa+1 agreement replicas;
        // malformed content would indicate a local bug. Skip defensively.
        ++sn_;
      }
      request_next_execute();
      return;
    }
    if (sn_ + 1 >= res.window_start) {
      // Already caught up (e.g. a checkpoint applied before this fired).
      request_next_execute();
      return;
    }
    // We missed garbage-collected Executes: fetch an execution checkpoint
    // from our group or any other group (paper §3.4/3.5).
    waiting_checkpoint_ = true;
    checkpointer_->fetch_cp(res.window_start - 1);
  });
}

void ExecutionReplica::process_batch(const ExecuteBatchMsg& batch) {
  // Apply the whole batch atomically (in one event, checkpointing only at
  // the end), so a recovering replica never resumes mid-batch.
  for (const ExecuteMsg& x : batch.items) process_execute(x);
  if (cut_checkpoint_) {
    // A migration op executed in this batch: certify the cut/adopt
    // immediately so trailing or recovering replicas pick up the new map
    // and range state through ordinary checkpoint transfer.
    cut_checkpoint_ = false;
    last_cp_ = sn_;
    ++checkpoints_;
    checkpointer_->gen_cp(sn_, snapshot_state());
    return;
  }
  maybe_checkpoint();
}

void ExecutionReplica::process_execute(const ExecuteMsg& x) {
  sn_ += 1;

  switch (x.kind) {
    case ExecuteKind::Full: {
      ReplyCacheEntry& e = replies_[x.client];
      if (e.counter >= x.counter) {
        // Duplicate/old: resend cached reply if this is our client.
        if (x.origin == cfg_.group && e.counter == x.counter && !e.placeholder) {
          reply_to(x.client, x.counter, e.result, false);
        }
        break;
      }
      charge_app(kExecCost);
      if (auto* t = tracer()) {
        t->async(obs::Ph::kAsyncInstant, now(), id(),
                 obs::request_id(x.client, x.counter), "request", "execute",
                 "seq", sn_);
      }
      // Ownership is decided at commit time — the op was ordered, but if a
      // migration committed first this shard must redirect, not execute,
      // so every replica attributes the key to the same owner.
      Bytes result;
      if (is_sys_op(x.op)) {
        result = execute_sys_op(x.client, x.op);
      } else if (!owns_keys(x.op)) {
        result = make_wrong_shard_reply(*map_);
      } else {
        result = x.op_kind == OpKind::StrongRead ? app_->execute_readonly(x.op)
                                                 : app_->execute(x.op);
      }
      e.counter = x.counter;
      e.result = std::move(result);
      e.placeholder = false;
      if (x.origin == cfg_.group) reply_to(x.client, x.counter, e.result, false);
      break;
    }
    case ExecuteKind::Placeholder: {
      ReplyCacheEntry& e = replies_[x.client];
      if (x.counter > e.counter) {
        e.counter = x.counter;
        e.result.clear();
        e.placeholder = true;
      }
      break;
    }
    case ExecuteKind::Reconfig: {
      ReplyCacheEntry& e = replies_[x.client];
      if (x.counter > e.counter) {
        e.counter = x.counter;
        e.result = to_bytes(std::string("reconfig-ok"));
        e.placeholder = false;
        if (x.origin == cfg_.group) reply_to(x.client, x.counter, e.result, false);
      }
      break;
    }
    case ExecuteKind::Noop:
      break;
  }
}

bool ExecutionReplica::owns_keys(BytesView op) const {
  if (!map_) return true;
  for (const std::string& key : app_->op_keys(op)) {
    if (map_->shard_of(key) != shard_index_) return false;
  }
  return true;
}

Bytes ExecutionReplica::execute_sys_op(NodeId client, BytesView op) {
  if (client != cfg_.admin) return make_migrate_fail_reply();
  try {
    Reader r(op);
    const std::uint8_t code = r.u8();
    if (code == kSysOpMigrateOut) {
      MigrateOutCmd cmd = MigrateOutCmd::decode(r);
      r.expect_done();
      return migrate_out(cmd);
    }
    if (code == kSysOpMigrateIn) {
      MigrateInCmd cmd = MigrateInCmd::decode(r);
      r.expect_done();
      return migrate_in(cmd);
    }
  } catch (const SerdeError&) {
  }
  return make_migrate_fail_reply();
}

Bytes ExecutionReplica::migrate_out(const MigrateOutCmd& cmd) {
  if (!map_ || cmd.delta.base_version != map_->version()) return make_migrate_fail_reply();
  std::optional<ShardMap> next;
  try {
    next = map_->with_delta(cmd.delta);
  } catch (const std::invalid_argument&) {
    return make_migrate_fail_reply();
  }
  // Cut exactly the keys this shard owned under the old map but does not
  // own under the new one. data_ iteration order is deterministic, so fe+1
  // replicas produce byte-identical state and the reply quorum certifies it.
  Bytes state = app_->extract_keys([&](std::string_view key) {
    const std::uint64_t h = ShardMap::hash_key(key);
    return map_->shard_of_hash(h) == shard_index_ && next->shard_of_hash(h) != shard_index_;
  });
  map_ = std::move(next);
  cut_checkpoint_ = true;
  ++migrations_;
  return make_migrate_out_reply(map_->version(), state);
}

Bytes ExecutionReplica::migrate_in(const MigrateInCmd& cmd) {
  if (!map_ || cmd.delta.base_version != map_->version()) return make_migrate_fail_reply();
  std::optional<ShardMap> next;
  try {
    next = map_->with_delta(cmd.delta);
  } catch (const std::invalid_argument&) {
    return make_migrate_fail_reply();
  }
  try {
    app_->absorb_keys(cmd.state);
  } catch (const SerdeError&) {
    return make_migrate_fail_reply();
  }
  map_ = std::move(next);
  cut_checkpoint_ = true;
  ++migrations_;
  return make_migrate_in_reply(map_->version());
}

void ExecutionReplica::reply_to(NodeId client, std::uint64_t counter, BytesView result,
                                bool weak) {
  Bytes out = to_bytes(result);
  if (auto* t = tracer()) {
    t->async(obs::Ph::kAsyncInstant, now(), id(),
             obs::request_id(client, counter, weak), "request", "reply");
  }
  // Byzantine tampering, outvoted by fe+1 matching correct replies (fe+1
  // corruptors are the linearizability checker's canary).
  if (corrupt_replies) corrupt_reply_payload(out);
  ReplyMsg reply{counter, std::move(out), weak};
  Bytes body = reply.encode();
  charge_mac();
  Bytes mac = crypto().mac(id(), client, tagged(tags::kClient, body));
  Bytes wire = std::move(body);
  wire.insert(wire.end(), mac.begin(), mac.end());
  // Weak (direct-path) replies are idempotent and client-retried, so they
  // ride the unordered datagram channel on the socket backend; ordered
  // replies stay on the reliable control channel.
  send_to(client, tagged(tags::kClient, wire),
          weak ? TrafficClass::kUnordered : TrafficClass::kOrdered);
}

void ExecutionReplica::maybe_checkpoint() {
  // `ke` counts logical requests; with batching sn_ may jump past an exact
  // multiple, so checkpoint whenever a full interval has elapsed. sn_ is a
  // batch boundary here, keeping checkpoints aligned with stored batches.
  if (sn_ < last_cp_ + cfg_.ke) return;
  last_cp_ = sn_;
  ++checkpoints_;
  if (auto* t = tracer()) {
    t->instant(now(), id(), "checkpoint", "gen_cp", "seq", sn_);
  }
  checkpointer_->gen_cp(sn_, snapshot_state());
}

Bytes ExecutionReplica::snapshot_state() const {
  Writer w;
  w.u32(static_cast<std::uint32_t>(replies_.size()));
  for (const auto& [client, e] : replies_) {
    w.u32(client);
    w.u64(e.counter);
    w.boolean(e.placeholder);
    w.bytes(e.result);
  }
  w.bytes(app_->snapshot());
  // Resharding deployments append the enforced map so adopted checkpoints
  // carry ownership along with state. Absent map = absent section, which
  // keeps the original byte format for every existing deployment.
  if (map_) {
    w.u32(shard_index_);
    w.bytes(map_->encode());
  }
  return std::move(w).take();
}

void ExecutionReplica::apply_state(SeqNr s, BytesView state) {
  Reader r(state);
  std::uint32_t n = r.u32();
  std::map<NodeId, ReplyCacheEntry> replies;
  for (std::uint32_t i = 0; i < n; ++i) {
    NodeId client = r.u32();
    ReplyCacheEntry e;
    e.counter = r.u64();
    e.placeholder = r.boolean();
    e.result = r.bytes();
    replies[client] = std::move(e);
  }
  app_->restore(r.bytes_view());
  if (r.remaining() > 0) {
    std::uint32_t shard_index = r.u32();
    Bytes table = r.bytes();
    Reader tr(table);
    ShardMap map = ShardMap::decode(tr);
    tr.expect_done();
    shard_index_ = shard_index;
    map_ = std::move(map);
  }
  replies_ = std::move(replies);
  sn_ = s;
  ++catchups_;
  if (auto* t = tracer()) {
    t->instant(now(), id(), "checkpoint", "catchup", "seq", s);
  }
}

void ExecutionReplica::on_stable_checkpoint(SeqNr s, BytesView state) {
  commit_rx_->move_window(0, s + 1);  // allow garbage collection (L. 42-44)
  if (s > sn_) {
    try {
      apply_state(s, state);
    } catch (const SerdeError&) {
      return;  // defensive; see process_execute
    }
  }
  last_cp_ = std::max(last_cp_, s);
  if (waiting_checkpoint_) {
    waiting_checkpoint_ = false;
    request_next_execute();
  }
}

}  // namespace spider
