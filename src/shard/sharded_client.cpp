#include "shard/sharded_client.hpp"

#include <stdexcept>

#include "shard/migration.hpp"
#include "sim/world.hpp"

namespace spider {

namespace {
/// How long a redirected op waits before re-probing when the redirect's map
/// was not newer than ours (mid-migration window: the gaining shard has not
/// committed MigrateIn yet, so both sides still refuse the range).
constexpr Duration kRedirectRetryDelay = 250 * kMillisecond;

Bytes fail_reply() {
  Writer w;
  w.u8(0);
  w.bytes({});
  return std::move(w).take();
}
}  // namespace

ShardedClient::ShardedClient(World& world, ShardMap map,
                             std::vector<std::unique_ptr<SpiderClient>> subclients)
    : world_(world), map_(std::move(map)), subclients_(std::move(subclients)) {
  if (subclients_.size() != map_.shard_count()) {
    throw std::invalid_argument("ShardedClient: one subclient per shard required");
  }
}

bool ShardedClient::adopt_map(const ShardMap& map) {
  if (map.shard_count() != map_.shard_count()) {
    throw std::invalid_argument("ShardedClient: adopted map must keep the shard count");
  }
  if (map.version() <= map_.version()) return false;  // stale or duplicate table
  map_ = map;
  ++maps_adopted_;
  reroute_pending();
  return true;
}

std::uint32_t ShardedClient::route_op(BytesView op) const {
  KvParsedOp parsed = kv_parse_op(op, /*with_values=*/false);  // keys suffice for routing
  if (parsed.keys.empty()) {
    throw std::invalid_argument("ShardedClient: op has no routing key");
  }
  std::uint32_t shard = map_.shard_of(parsed.keys.front());
  for (const std::string& k : parsed.keys) {
    if (map_.shard_of(k) != shard) {
      throw std::invalid_argument("ShardedClient: keys span shards (use mget/mput)");
    }
  }
  return shard;
}

void ShardedClient::RecordCompletion::operator()(Bytes reply, Duration /*latency*/) const {
  // Latency is computed from the record's submission time instead, so it
  // spans redirect chases and re-routes, not just the last hop.
  self->on_sub_reply(id, std::move(reply));
}

std::uint64_t ShardedClient::submit_routed(Path path, std::uint32_t shard, Bytes op,
                                           RoutedCallback cb) {
  const std::uint64_t id = next_id_++;
  auto rec = std::make_shared<Inflight>();
  rec->path = path;
  rec->op = std::move(op);
  rec->start = world_.now();
  rec->done = [this, cb = std::move(cb), start = rec->start](Bytes reply,
                                                            std::uint32_t served_by) {
    cb(std::move(reply), world_.now() - start, served_by);
  };
  rec->reissue = [this, id] { reissue_single(id); };
  active_[id] = rec;
  issue_to(id, shard);
  return id;
}

void ShardedClient::issue_to(std::uint64_t id, std::uint32_t shard) {
  auto it = active_.find(id);
  if (it == active_.end()) return;
  Inflight& rec = *it->second;
  rec.shard = shard;
  SpiderClient& sub = *subclients_[shard];
  switch (rec.path) {
    case Path::Write: sub.write(Bytes(rec.op), RecordCompletion{this, id}); break;
    case Path::Strong: sub.strong_read(Bytes(rec.op), RecordCompletion{this, id}); break;
    case Path::Weak: sub.weak_read(Bytes(rec.op), RecordCompletion{this, id}); break;
  }
}

void ShardedClient::reissue_single(std::uint64_t id) {
  auto it = active_.find(id);
  if (it == active_.end()) return;
  auto rec = it->second;
  std::uint32_t shard = 0;
  try {
    shard = route_op(rec->op);
  } catch (const std::invalid_argument&) {
    // The adopted map split this op's keys across shards mid-flight; it
    // cannot be re-routed as one command. Fail it (migration caveat).
    active_.erase(it);
    rec->done(fail_reply(), kNoShard);
    return;
  }
  issue_to(id, shard);
}

void ShardedClient::on_sub_reply(std::uint64_t id, Bytes reply) {
  auto it = active_.find(id);
  if (it == active_.end()) return;
  auto rec = it->second;
  if (auto redirect = try_decode_wrong_shard(reply)) {
    ++redirects_;
    const bool adopted =
        redirect->shard_count() == map_.shard_count() && adopt_map(*redirect);
    // adopt_map re-routed every *pending* op; this one's reply was just
    // consumed, so it is in no subclient queue and re-routes itself here.
    if (adopted) {
      rec->reissue();
    } else {
      park(id);
    }
    return;
  }
  active_.erase(it);
  rec->done(std::move(reply), rec->shard);
}

void ShardedClient::park(std::uint64_t id) {
  auto it = active_.find(id);
  if (it == active_.end()) return;
  it->second->parked = true;
  world_.queue().schedule_at(world_.now() + kRedirectRetryDelay, [this, id] {
    auto pit = active_.find(id);
    if (pit == active_.end() || !pit->second->parked) return;  // already re-routed
    // Local copy: reissue may erase the record from active_, and the record
    // owns the std::function being executed.
    auto rec = pit->second;
    rec->parked = false;
    rec->reissue();
  });
}

void ShardedClient::reroute_pending() {
  // Cancel-and-reroute: without this, an op parked in a subclient's
  // retransmit loop keeps chasing a shard that no longer owns its keys —
  // forever, if that shard is also partitioned away.
  std::vector<std::uint64_t> ids;
  for (auto& sub : subclients_) {
    for (SpiderClient::PendingOp& p : sub->cancel_pending()) {
      if (const RecordCompletion* rc = p.cb.target<RecordCompletion>()) {
        ids.push_back(rc->id);
      } else {
        // Submitted directly on the subclient (size() fan-out, tests): not
        // key-routed, so restart it on the same shard with its kind intact.
        sub->resubmit(std::move(p));
      }
    }
  }
  // Ops parked on a stale redirect are in no subclient queue; re-route them
  // now instead of waiting out their timer.
  for (auto& [id, rec] : active_) {
    if (rec->parked) {
      rec->parked = false;
      ids.push_back(id);
    }
  }
  reroutes_ += ids.size();
  for (std::uint64_t id : ids) {
    auto it = active_.find(id);
    if (it == active_.end()) continue;
    // Local copy, not the map's reference: fan-out parts re-split themselves
    // by erasing their record and issuing fresh ones, which would otherwise
    // destroy the reissue closure mid-execution.
    auto rec = it->second;
    rec->reissue();
  }
}

void ShardedClient::write(Bytes op, OpCallback cb) {
  write_routed(std::move(op),
               [cb = std::move(cb)](Bytes r, Duration l, std::uint32_t) { cb(std::move(r), l); });
}

void ShardedClient::strong_read(Bytes op, OpCallback cb) {
  strong_read_routed(std::move(op),
                     [cb = std::move(cb)](Bytes r, Duration l, std::uint32_t) { cb(std::move(r), l); });
}

void ShardedClient::weak_read(Bytes op, OpCallback cb) {
  weak_read_routed(std::move(op),
                   [cb = std::move(cb)](Bytes r, Duration l, std::uint32_t) { cb(std::move(r), l); });
}

void ShardedClient::write_routed(Bytes op, RoutedCallback cb) {
  std::uint32_t shard = route_op(op);  // initial routing failures throw to the caller
  submit_routed(Path::Write, shard, std::move(op), std::move(cb));
}

void ShardedClient::strong_read_routed(Bytes op, RoutedCallback cb) {
  std::uint32_t shard = route_op(op);
  submit_routed(Path::Strong, shard, std::move(op), std::move(cb));
}

void ShardedClient::weak_read_routed(Bytes op, RoutedCallback cb) {
  std::uint32_t shard = route_op(op);
  submit_routed(Path::Weak, shard, std::move(op), std::move(cb));
}

std::map<std::uint32_t, std::vector<std::size_t>> ShardedClient::group_by_shard(
    const std::vector<std::string>& keys) const {
  std::map<std::uint32_t, std::vector<std::size_t>> by_shard;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    by_shard[map_.shard_of(keys[i])].push_back(i);
  }
  return by_shard;
}

// ---- mget ----------------------------------------------------------------

struct ShardedClient::MgetJob {
  std::vector<std::string> keys;
  bool weak = false;
  std::vector<MgetEntry> entries;
  std::size_t pending = 0;
  Time start = 0;
  MgetCallback cb;
};

std::size_t ShardedClient::issue_mget_parts(const std::shared_ptr<MgetJob>& job,
                                            const std::vector<std::size_t>& idxs) {
  std::map<std::uint32_t, std::vector<std::size_t>> by_shard;
  for (std::size_t i : idxs) by_shard[map_.shard_of(job->keys[i])].push_back(i);
  for (auto& [shard, part] : by_shard) {
    std::vector<std::string> part_keys;
    for (std::size_t i : part) part_keys.push_back(job->keys[i]);

    const std::uint64_t id = next_id_++;
    auto rec = std::make_shared<Inflight>();
    rec->path = job->weak ? Path::Weak : Path::Strong;
    rec->op = kv_mget(part_keys);
    rec->start = job->start;
    rec->done = [this, job, part = part](Bytes reply, std::uint32_t served_by) {
      KvMgetReply decoded = kv_decode_mget_reply(reply);
      if (decoded.entries.size() != part.size()) {
        // A quorum-accepted reply with the wrong shape is encoder/decoder
        // drift on our side, not a miss — surface it instead of reporting
        // the unanswered keys as absent.
        throw std::logic_error("ShardedClient: mget reply entry count mismatch");
      }
      for (std::size_t j = 0; j < part.size(); ++j) {
        MgetEntry& e = job->entries[part[j]];
        e.ok = decoded.entries[j].ok;
        e.value = std::move(decoded.entries[j].value);
        e.shard = served_by;
        e.shard_seq = decoded.shard_seq;
      }
      if (--job->pending == 0) job->cb(std::move(job->entries), world_.now() - job->start);
    };
    // Re-split this part under the current map: the keys one shard served
    // may now belong to several.
    rec->reissue = [this, job, part = part, id] {
      active_.erase(id);
      job->pending += issue_mget_parts(job, part) - 1;
    };
    active_[id] = rec;
    issue_to(id, shard);
  }
  return by_shard.size();
}

void ShardedClient::mget(const std::vector<std::string>& keys, MgetCallback cb, bool weak) {
  auto job = std::make_shared<MgetJob>();
  job->keys = keys;
  job->weak = weak;
  job->entries.resize(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) job->entries[i].key = keys[i];
  job->start = world_.now();
  job->cb = std::move(cb);
  if (keys.empty()) {
    job->cb(std::move(job->entries), 0);
    return;
  }
  std::vector<std::size_t> all(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) all[i] = i;
  job->pending = issue_mget_parts(job, all);
}

// ---- mput ----------------------------------------------------------------

struct ShardedClient::MputJob {
  std::vector<std::pair<std::string, Bytes>> pairs;
  MputResult result;
  std::size_t pending = 0;
  Time start = 0;
  MputCallback cb;
};

std::size_t ShardedClient::issue_mput_parts(const std::shared_ptr<MputJob>& job,
                                            const std::vector<std::size_t>& idxs) {
  std::map<std::uint32_t, std::vector<std::size_t>> by_shard;
  for (std::size_t i : idxs) by_shard[map_.shard_of(job->pairs[i].first)].push_back(i);
  for (auto& [shard, part] : by_shard) {
    std::vector<std::pair<std::string, Bytes>> part_pairs;
    for (std::size_t i : part) part_pairs.push_back(job->pairs[i]);

    const std::uint64_t id = next_id_++;
    auto rec = std::make_shared<Inflight>();
    rec->path = Path::Write;
    rec->op = kv_mput(part_pairs);
    rec->start = job->start;
    rec->done = [this, job](Bytes reply, std::uint32_t served_by) {
      KvMputReply decoded = kv_decode_mput_reply(reply);
      job->result.ok = job->result.ok && decoded.ok;
      job->result.shard_seqs[served_by] = decoded.shard_seq;
      if (--job->pending == 0) job->cb(std::move(job->result), world_.now() - job->start);
    };
    rec->reissue = [this, job, part = part, id] {
      active_.erase(id);
      job->pending += issue_mput_parts(job, part) - 1;
    };
    active_[id] = rec;
    issue_to(id, shard);
  }
  return by_shard.size();
}

void ShardedClient::mput(const std::vector<std::pair<std::string, Bytes>>& pairs,
                         MputCallback cb) {
  auto job = std::make_shared<MputJob>();
  job->pairs = pairs;
  job->start = world_.now();
  job->cb = std::move(cb);
  if (pairs.empty()) {
    job->cb(MputResult{}, 0);
    return;
  }
  std::vector<std::size_t> all(pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) all[i] = i;
  job->pending = issue_mput_parts(job, all);
}

// ---- size ----------------------------------------------------------------

void ShardedClient::size(SizeCallback cb) {
  // Size has no routing key and fans out to every shard unconditionally, so
  // it bypasses the redirect machinery: replicas always own it. A map
  // adoption mid-flight restarts the sub-reads on their shards (resubmit
  // path in reroute_pending).
  struct SizeJob {
    std::uint64_t total = 0;
    std::size_t pending = 0;
    Time start = 0;
    SizeCallback cb;
  };
  auto job = std::make_shared<SizeJob>();
  job->pending = subclients_.size();
  job->start = world_.now();
  job->cb = std::move(cb);
  for (auto& sub : subclients_) {
    sub->strong_read(kv_size(), [this, job](Bytes reply, Duration) {
      KvReply decoded = kv_decode_reply(reply);  // keep the value bytes alive
      Reader r(decoded.value);
      job->total += r.u64();
      if (--job->pending == 0) job->cb(job->total, world_.now() - job->start);
    });
  }
}

std::uint64_t ShardedClient::retries() const {
  std::uint64_t total = 0;
  for (const auto& sub : subclients_) total += sub->retries();
  return total;
}

}  // namespace spider
