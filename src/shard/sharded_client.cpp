#include "shard/sharded_client.hpp"

#include <stdexcept>

#include "sim/world.hpp"

namespace spider {

namespace {
/// Shared fan-out/merge scaffold: per-shard replies fill `result`, and the
/// user callback fires when the last involved shard answers (latency =
/// slowest shard's completion).
template <typename Result, typename Cb>
struct FanOut {
  Result result;
  std::size_t pending = 0;
  Time start = 0;
  Cb cb;

  void finish(World& world) {
    if (--pending == 0) cb(std::move(result), world.now() - start);
  }
};

template <typename Result, typename Cb>
auto make_fanout(World& world, std::size_t pending, Result result, Cb cb) {
  auto fan = std::make_shared<FanOut<Result, Cb>>();
  fan->result = std::move(result);
  fan->pending = pending;
  fan->start = world.now();
  fan->cb = std::move(cb);
  return fan;
}
}  // namespace

ShardedClient::ShardedClient(World& world, ShardMap map,
                             std::vector<std::unique_ptr<SpiderClient>> subclients)
    : world_(world), map_(std::move(map)), subclients_(std::move(subclients)) {
  if (subclients_.size() != map_.shard_count()) {
    throw std::invalid_argument("ShardedClient: one subclient per shard required");
  }
}

bool ShardedClient::adopt_map(const ShardMap& map) {
  if (map.shard_count() != map_.shard_count()) {
    throw std::invalid_argument("ShardedClient: adopted map must keep the shard count");
  }
  if (map.version() <= map_.version()) return false;  // stale or duplicate table
  map_ = map;
  return true;
}

std::uint32_t ShardedClient::route_op(BytesView op) const {
  KvParsedOp parsed = kv_parse_op(op, /*with_values=*/false);  // keys suffice for routing
  if (parsed.keys.empty()) {
    throw std::invalid_argument("ShardedClient: op has no routing key");
  }
  std::uint32_t shard = map_.shard_of(parsed.keys.front());
  for (const std::string& k : parsed.keys) {
    if (map_.shard_of(k) != shard) {
      throw std::invalid_argument("ShardedClient: keys span shards (use mget/mput)");
    }
  }
  return shard;
}

void ShardedClient::write(Bytes op, OpCallback cb) {
  std::uint32_t s = route_op(op);
  subclients_[s]->write(std::move(op), std::move(cb));
}

void ShardedClient::strong_read(Bytes op, OpCallback cb) {
  std::uint32_t s = route_op(op);
  subclients_[s]->strong_read(std::move(op), std::move(cb));
}

void ShardedClient::weak_read(Bytes op, OpCallback cb) {
  std::uint32_t s = route_op(op);
  subclients_[s]->weak_read(std::move(op), std::move(cb));
}

std::map<std::uint32_t, std::vector<std::size_t>> ShardedClient::group_by_shard(
    const std::vector<std::string>& keys) const {
  std::map<std::uint32_t, std::vector<std::size_t>> by_shard;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    by_shard[map_.shard_of(keys[i])].push_back(i);
  }
  return by_shard;
}

void ShardedClient::mget(const std::vector<std::string>& keys, MgetCallback cb, bool weak) {
  auto by_shard = group_by_shard(keys);
  std::vector<MgetEntry> entries(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) entries[i].key = keys[i];
  if (by_shard.empty()) {
    cb(std::move(entries), 0);
    return;
  }

  auto fan = make_fanout(world_, by_shard.size(), std::move(entries), std::move(cb));
  for (auto& [shard, indices] : by_shard) {
    std::vector<std::string> shard_keys;
    for (std::size_t i : indices) shard_keys.push_back(keys[i]);
    Bytes op = kv_mget(shard_keys);
    auto on_reply = [this, fan, shard = shard, indices = indices](Bytes reply, Duration) {
      KvMgetReply decoded = kv_decode_mget_reply(reply);
      if (decoded.entries.size() != indices.size()) {
        // A quorum-accepted reply with the wrong shape is encoder/decoder
        // drift on our side, not a miss — surface it instead of reporting
        // the unanswered keys as absent.
        throw std::logic_error("ShardedClient: mget reply entry count mismatch");
      }
      for (std::size_t j = 0; j < indices.size(); ++j) {
        MgetEntry& e = fan->result[indices[j]];
        e.ok = decoded.entries[j].ok;
        e.value = std::move(decoded.entries[j].value);
        e.shard = shard;
        e.shard_seq = decoded.shard_seq;
      }
      fan->finish(world_);
    };
    if (weak) {
      subclients_[shard]->weak_read(std::move(op), std::move(on_reply));
    } else {
      subclients_[shard]->strong_read(std::move(op), std::move(on_reply));
    }
  }
}

void ShardedClient::mput(const std::vector<std::pair<std::string, Bytes>>& pairs,
                         MputCallback cb) {
  std::map<std::uint32_t, std::vector<std::pair<std::string, Bytes>>> by_shard;
  for (const auto& [k, v] : pairs) by_shard[map_.shard_of(k)].emplace_back(k, v);
  if (by_shard.empty()) {
    cb(MputResult{}, 0);
    return;
  }

  auto fan = make_fanout(world_, by_shard.size(), MputResult{}, std::move(cb));
  for (auto& [shard, shard_pairs] : by_shard) {
    subclients_[shard]->write(kv_mput(shard_pairs),
                              [this, fan, shard = shard](Bytes reply, Duration) {
      KvMputReply decoded = kv_decode_mput_reply(reply);
      fan->result.ok = fan->result.ok && decoded.ok;
      fan->result.shard_seqs[shard] = decoded.shard_seq;
      fan->finish(world_);
    });
  }
}

void ShardedClient::size(SizeCallback cb) {
  auto fan = make_fanout(world_, subclients_.size(), std::uint64_t{0}, std::move(cb));
  for (auto& sub : subclients_) {
    sub->strong_read(kv_size(), [this, fan](Bytes reply, Duration) {
      KvReply decoded = kv_decode_reply(reply);  // keep the value bytes alive
      Reader r(decoded.value);
      fan->result += r.u64();
      fan->finish(world_);
    });
  }
}

std::uint64_t ShardedClient::retries() const {
  std::uint64_t total = 0;
  for (const auto& sub : subclients_) total += sub->retries();
  return total;
}

}  // namespace spider
