// Live-resharding wire formats (the §3.6 admin path made a runtime
// protocol).
//
// A range moves in two ordered admin operations: <MigrateOut, delta> at the
// losing shard cuts the moved keys out of every replica's application state
// and certifies them with fe+1 matching replies, then <MigrateIn, delta,
// state> at the gaining shard absorbs them. Both sides install the new map
// at commit time, so from that point their replicas answer foreign keys
// with a WrongShard redirect carrying the map — routers adopt it and
// re-route. Between Out committing and In committing the moved range is
// briefly unavailable (both shards redirect); that window is the migration
// pause the micro_reshard bench measures.
#pragma once

#include <optional>

#include "shard/shard_map.hpp"

namespace spider {

/// System-operation opcode space: client ops whose first byte is >=
/// kSysOpBase are interpreted by the execution replica itself and never
/// reach the application. Applications must not define opcodes here.
constexpr std::uint8_t kSysOpBase = 0xF0;
constexpr std::uint8_t kSysOpMigrateOut = 0xF1;
constexpr std::uint8_t kSysOpMigrateIn = 0xF2;

inline bool is_sys_op(BytesView op) { return !op.empty() && op[0] >= kSysOpBase; }

/// <MigrateOut, delta>: ordered at the losing shard. Every execution
/// replica installs base -> new, extracts the moved range from its
/// application and replies with the serialized range state (so fe+1
/// matching replies certify the transferred bytes).
struct MigrateOutCmd {
  ShardMapDelta delta;

  Bytes encode() const;
  static MigrateOutCmd decode(Reader& r);
};

/// <MigrateIn, delta, state>: ordered at the gaining shard. Replicas apply
/// the delta, absorb the certified range state, and start serving the range.
struct MigrateInCmd {
  ShardMapDelta delta;
  Bytes state;

  Bytes encode() const;
  static MigrateInCmd decode(Reader& r);
};

// ---- replies -------------------------------------------------------------
// All replies reuse the KV status-byte framing ([u8 status][bytes body]) so
// they survive kv_decode_reply: 1 = ok, 0 = failed. Status 2 is the
// versioned WrongShard redirect whose body is the replica's current map.
constexpr std::uint8_t kWrongShardStatus = 2;

Bytes make_wrong_shard_reply(const ShardMap& map);
/// Decodes a redirect reply; nullopt when `reply` is not a valid redirect
/// (including Byzantine redirects carrying malformed tables).
std::optional<ShardMap> try_decode_wrong_shard(BytesView reply);

Bytes make_migrate_fail_reply();
Bytes make_migrate_out_reply(std::uint64_t new_version, BytesView state);
Bytes make_migrate_in_reply(std::uint64_t new_version);

struct MigrateReply {
  bool ok = false;
  std::uint64_t version = 0;
  Bytes state;  // MigrateOut only: the extracted range
};
MigrateReply decode_migrate_reply(BytesView reply);

}  // namespace spider
