// Cross-shard client router.
//
// Holds one SpiderClient per shard (each attached to the owning shard's
// nearest execution group) plus a copy of the ShardMap. Single-key KV ops
// are parsed and routed to the owning shard; multi-key MGET/MPUT fan out
// one per-shard sub-operation each and merge the replies.
//
// Live resharding: every routed op is tracked until it completes. A
// WrongShard redirect carries the serving replica's (newer) map, which the
// router adopts before re-routing the op; adopting a newer map — from a
// redirect or via adopt_map — also cancels and re-routes every pending op,
// so an op retrying against a shard that lost its key cannot livelock.
// Re-routing re-submits the op under a fresh counter on another subclient:
// if the original was already committed, delivery is at-least-once.
//
// Consistency caveat (documented in the README): ops are atomic *within*
// one shard — a per-shard MPUT is a single ordered command — but a
// cross-shard MGET/MPUT is NOT atomic across shards. Another client can
// observe shard A's part of an MPUT before shard B's part lands. The
// per-key shard sequence numbers returned by MGET make this visible:
// read-your-writes holds per shard (an MGET after an MPUT reports
// shard_seq >= the MPUT's shard_seq on every shard the MPUT touched).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "app/kvstore.hpp"
#include "shard/shard_map.hpp"
#include "spider/client.hpp"

namespace spider {

class ShardedClient {
 public:
  using OpCallback = SpiderClient::OpCallback;
  /// Like OpCallback, but also reports the shard that served the op
  /// (kNoShard when routing failed), for at-commit-time attribution.
  using RoutedCallback =
      std::function<void(Bytes result, Duration latency, std::uint32_t shard)>;

  /// `subclients[s]` serves shard s; one per map.shard_count().
  ShardedClient(World& world, ShardMap map,
                std::vector<std::unique_ptr<SpiderClient>> subclients);

  // ---- single-shard ops (parsed + routed) --------------------------------
  /// Routes an encoded KV op to the shard owning its key. Multi-key ops are
  /// accepted when every key maps to the same shard; a cross-shard op
  /// throws std::invalid_argument (use mget/mput instead). An op whose keys
  /// are split across shards by a map adopted *mid-flight* does not throw —
  /// it completes with a failure reply (documented migration caveat).
  void write(Bytes op, OpCallback cb);
  void strong_read(Bytes op, OpCallback cb);
  void weak_read(Bytes op, OpCallback cb);

  // Routed variants reporting the serving shard.
  void write_routed(Bytes op, RoutedCallback cb);
  void strong_read_routed(Bytes op, RoutedCallback cb);
  void weak_read_routed(Bytes op, RoutedCallback cb);

  // Convenience wrappers over the routed paths.
  void put(const std::string& key, Bytes value, OpCallback cb) {
    write(kv_put(key, value), std::move(cb));
  }
  void del(const std::string& key, OpCallback cb) { write(kv_del(key), std::move(cb)); }
  void get(const std::string& key, OpCallback cb) { strong_read(kv_get(key), std::move(cb)); }
  void weak_get(const std::string& key, OpCallback cb) {
    weak_read(kv_get(key), std::move(cb));
  }

  // ---- cross-shard ops (fan-out + merge; NOT atomic across shards) -------
  struct MgetEntry {
    std::string key;
    bool ok = false;
    Bytes value;
    std::uint32_t shard = 0;
    std::uint64_t shard_seq = 0;  // owning shard's mutation count at read time
  };
  using MgetCallback = std::function<void(std::vector<MgetEntry>, Duration)>;
  /// One ordered (or weak) MGet per involved shard; entries come back in
  /// request order. Latency is the slowest shard's completion. Weak MGETs
  /// report shard_seq 0 (only ordered reads carry the mutation count, so
  /// weak replies stay quorum-matchable under concurrent writes).
  void mget(const std::vector<std::string>& keys, MgetCallback cb, bool weak = false);

  struct MputResult {
    bool ok = true;                                    // all shards applied
    std::map<std::uint32_t, std::uint64_t> shard_seqs; // shard -> seq after apply
  };
  using MputCallback = std::function<void(MputResult, Duration)>;
  /// One ordered MPut per involved shard (atomic per shard only).
  void mput(const std::vector<std::pair<std::string, Bytes>>& pairs, MputCallback cb);

  /// Aggregated key count: one *ordered* Size read per shard. Size is a
  /// global progress counter, so a weak fan-out could never collect
  /// byte-identical quorum replies while any shard is being written.
  using SizeCallback = std::function<void(std::uint64_t total, Duration)>;
  void size(SizeCallback cb);

  /// Version-gated rebalance visibility: adopts `map` iff it is strictly
  /// newer than the router's current table (same shard count); stale or
  /// equal versions are ignored. Returns whether the table was adopted.
  /// Adoption cancels and re-routes every pending op (including ops parked
  /// in a subclient's retransmit loop), so nothing keeps chasing a shard
  /// that no longer owns its keys.
  bool adopt_map(const ShardMap& map);

  // ---- introspection -----------------------------------------------------
  [[nodiscard]] std::uint32_t route_key(const std::string& key) const {
    return map_.shard_of(key);
  }
  /// Shard an encoded op routes to; throws std::invalid_argument if the op
  /// has no routing key (Size) or its keys span shards.
  [[nodiscard]] std::uint32_t route_op(BytesView op) const;
  [[nodiscard]] std::uint32_t shard_count() const { return map_.shard_count(); }
  SpiderClient& shard_client(std::uint32_t s) { return *subclients_.at(s); }
  [[nodiscard]] const ShardMap& map() const { return map_; }
  [[nodiscard]] std::uint64_t retries() const;
  /// WrongShard redirects received (each one re-routes or parks an op).
  [[nodiscard]] std::uint64_t redirects() const { return redirects_; }
  /// Newer maps installed (via adopt_map or redirect).
  [[nodiscard]] std::uint64_t maps_adopted() const { return maps_adopted_; }
  /// Ops cancelled-and-re-routed by map adoptions.
  [[nodiscard]] std::uint64_t reroutes() const { return reroutes_; }
  /// Router-tracked ops not yet completed.
  [[nodiscard]] std::size_t pending_ops() const { return active_.size(); }

 private:
  enum class Path : std::uint8_t { Write, Strong, Weak };

  /// One router-tracked op: survives redirects and map adoptions until its
  /// final reply (or routing failure) fires `done`.
  struct Inflight {
    Path path = Path::Write;
    Bytes op;
    Time start = 0;
    std::uint32_t shard = kNoShard;  // subclient currently carrying the op
    bool parked = false;             // waiting out a stale redirect
    std::function<void(Bytes reply, std::uint32_t shard)> done;
    std::function<void()> reissue;   // re-route under the current map
  };

  /// The callback handed to subclients. A named type (not a lambda) so
  /// reroute_pending can recognize router-tracked ops among cancelled ones
  /// via std::function::target and recover their record ids.
  struct RecordCompletion {
    ShardedClient* self;
    std::uint64_t id;
    void operator()(Bytes reply, Duration latency) const;
  };

  struct MgetJob;
  struct MputJob;

  std::uint64_t submit_routed(Path path, std::uint32_t shard, Bytes op,
                              RoutedCallback cb);
  void issue_to(std::uint64_t id, std::uint32_t shard);
  void reissue_single(std::uint64_t id);
  void on_sub_reply(std::uint64_t id, Bytes reply);
  void park(std::uint64_t id);
  void reroute_pending();
  std::size_t issue_mget_parts(const std::shared_ptr<MgetJob>& job,
                               const std::vector<std::size_t>& idxs);
  std::size_t issue_mput_parts(const std::shared_ptr<MputJob>& job,
                               const std::vector<std::size_t>& idxs);

  /// Splits `keys` into per-shard key lists, remembering original indices.
  std::map<std::uint32_t, std::vector<std::size_t>> group_by_shard(
      const std::vector<std::string>& keys) const;

  World& world_;
  ShardMap map_;
  std::vector<std::unique_ptr<SpiderClient>> subclients_;
  std::map<std::uint64_t, std::shared_ptr<Inflight>> active_;
  std::uint64_t next_id_ = 1;
  std::uint64_t redirects_ = 0;
  std::uint64_t maps_adopted_ = 0;
  std::uint64_t reroutes_ = 0;
};

}  // namespace spider
