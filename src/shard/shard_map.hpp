// Keyspace partition table (the sharding subsystem's source of truth).
//
// The KV keyspace is split into explicit, contiguous hash ranges over the
// 64-bit FNV-1a hash of the key; each range is owned by exactly one shard
// (one independent Spider core with its own agreement group). The table is
// versioned so a future rebalance can ship a replacement table through the
// §3.6 admin path: routers compare versions and adopt the newer table.
#pragma once

#include <string_view>
#include <vector>

#include "common/bytes.hpp"
#include "common/serde.hpp"

namespace spider {

/// One partition: owns hashes in [start, next range's start), the last
/// range extending to the top of the 64-bit hash space.
struct ShardRange {
  std::uint64_t start = 0;   // inclusive lower bound of the hash range
  std::uint32_t shard = 0;   // owning shard index, < shard_count()
};

class ShardMap {
 public:
  /// Equal-width partition of the hash space over `shards` shards,
  /// version 1. Throws std::invalid_argument for shards == 0.
  static ShardMap uniform(std::uint32_t shards);

  /// Deterministic key hash (FNV-1a 64) shared by every router.
  static std::uint64_t hash_key(std::string_view key);

  [[nodiscard]] std::uint32_t shard_of(std::string_view key) const {
    return shard_of_hash(hash_key(key));
  }
  [[nodiscard]] std::uint32_t shard_of_hash(std::uint64_t h) const;

  [[nodiscard]] std::uint32_t shard_count() const { return shards_; }
  [[nodiscard]] std::uint64_t version() const { return version_; }
  [[nodiscard]] const std::vector<ShardRange>& ranges() const { return ranges_; }

  /// Installs a rebalanced table. The new ranges must cover the full hash
  /// space (first start == 0, strictly increasing starts), reference only
  /// valid shards, and carry a strictly newer version.
  void set_ranges(std::vector<ShardRange> ranges, std::uint64_t version);

  Bytes encode() const;
  static ShardMap decode(Reader& r);

 private:
  ShardMap() = default;
  static void check(const std::vector<ShardRange>& ranges, std::uint32_t shards);

  std::uint32_t shards_ = 0;
  std::uint64_t version_ = 0;
  std::vector<ShardRange> ranges_;
};

}  // namespace spider
