// Keyspace partition table (the sharding subsystem's source of truth).
//
// The KV keyspace is split into explicit, contiguous hash ranges over the
// 64-bit FNV-1a hash of the key; each range is owned by exactly one shard
// (one independent Spider core with its own agreement group). The table is
// versioned so a future rebalance can ship a replacement table through the
// §3.6 admin path: routers compare versions and adopt the newer table.
#pragma once

#include <string_view>
#include <vector>

#include "common/bytes.hpp"
#include "common/serde.hpp"

namespace spider {

/// One partition: owns hashes in [start, next range's start), the last
/// range extending to the top of the 64-bit hash space.
struct ShardRange {
  std::uint64_t start = 0;   // inclusive lower bound of the hash range
  std::uint32_t shard = 0;   // owning shard index, < shard_count()
};

/// Shard index used when an operation cannot be attributed to one shard
/// (spanning multi-key ops, routing failures).
constexpr std::uint32_t kNoShard = 0xffffffffu;

/// A single-range ownership move: the unit the live-resharding admin path
/// ships through MigrateOut/MigrateIn. Applies on top of exactly
/// `base_version` and moves hashes in [lo, hi) — hi == 0 meaning the top of
/// the hash space — to `to_shard`.
struct ShardMapDelta {
  std::uint64_t base_version = 0;
  std::uint64_t new_version = 0;  // must be > base_version
  std::uint64_t lo = 0;           // inclusive lower bound of the moved range
  std::uint64_t hi = 0;           // exclusive upper bound; 0 = top of space
  std::uint32_t to_shard = 0;

  void encode_into(Writer& w) const;
  static ShardMapDelta decode(Reader& r);
};

class ShardMap {
 public:
  /// Equal-width partition of the hash space over `shards` shards,
  /// version 1. Throws std::invalid_argument for shards == 0.
  static ShardMap uniform(std::uint32_t shards);

  /// Deterministic key hash (FNV-1a 64) shared by every router.
  static std::uint64_t hash_key(std::string_view key);

  [[nodiscard]] std::uint32_t shard_of(std::string_view key) const {
    return shard_of_hash(hash_key(key));
  }
  [[nodiscard]] std::uint32_t shard_of_hash(std::uint64_t h) const;

  [[nodiscard]] std::uint32_t shard_count() const { return shards_; }
  [[nodiscard]] std::uint64_t version() const { return version_; }
  [[nodiscard]] const std::vector<ShardRange>& ranges() const { return ranges_; }

  /// Installs a rebalanced table. The new ranges must cover the full hash
  /// space (first start == 0, strictly increasing starts), reference only
  /// valid shards, and carry a strictly newer version.
  void set_ranges(std::vector<ShardRange> ranges, std::uint64_t version);

  /// Returns a copy with `delta` spliced in: hashes in [lo, hi) reassigned
  /// to delta.to_shard, adjacent same-owner ranges merged, version bumped to
  /// delta.new_version. Throws std::invalid_argument when the delta does not
  /// apply to this table (base version mismatch, unknown shard, empty range,
  /// stale new version).
  [[nodiscard]] ShardMap with_delta(const ShardMapDelta& delta) const;

  /// True iff every hash in [lo, hi) (hi == 0 = top of space) is owned by a
  /// single shard; that shard is written to *owner on success.
  [[nodiscard]] bool sole_owner_of(std::uint64_t lo, std::uint64_t hi,
                                   std::uint32_t* owner) const;

  Bytes encode() const;
  /// Decodes and validates a wire table. Malformed tables — gaps, overlaps,
  /// out-of-range shard ids, zero shard count — throw SerdeError like any
  /// other wire-decode failure, so a Byzantine redirect cannot install a
  /// broken table (it is caught and dropped at the message boundary).
  static ShardMap decode(Reader& r);

 private:
  ShardMap() = default;
  static void check(const std::vector<ShardRange>& ranges, std::uint32_t shards);

  std::uint32_t shards_ = 0;
  std::uint64_t version_ = 0;
  std::vector<ShardRange> ranges_;
};

}  // namespace spider
