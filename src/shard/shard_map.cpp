#include "shard/shard_map.hpp"

#include <algorithm>
#include <stdexcept>

namespace spider {

std::uint64_t ShardMap::hash_key(std::string_view key) {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (char c : key) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  // FNV-1a mixes its low bits well but not the high ones, and the range
  // table partitions on the high end — finish with murmur3's fmix64 so
  // similar short keys spread over all ranges.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

ShardMap ShardMap::uniform(std::uint32_t shards) {
  if (shards == 0) throw std::invalid_argument("ShardMap: shards must be >= 1");
  ShardMap m;
  m.shards_ = shards;
  m.version_ = 1;
  const std::uint64_t step = ~std::uint64_t{0} / shards;
  for (std::uint32_t s = 0; s < shards; ++s) {
    m.ranges_.push_back(ShardRange{step * s, s});
  }
  return m;
}

std::uint32_t ShardMap::shard_of_hash(std::uint64_t h) const {
  // Last range whose start <= h. ranges_ is sorted with ranges_[0].start == 0.
  auto it = std::upper_bound(ranges_.begin(), ranges_.end(), h,
                             [](std::uint64_t v, const ShardRange& r) { return v < r.start; });
  return std::prev(it)->shard;
}

void ShardMap::check(const std::vector<ShardRange>& ranges, std::uint32_t shards) {
  if (ranges.empty()) throw std::invalid_argument("ShardMap: ranges must not be empty");
  if (ranges.front().start != 0) {
    throw std::invalid_argument("ShardMap: first range must start at 0");
  }
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    if (i > 0 && ranges[i].start <= ranges[i - 1].start) {
      throw std::invalid_argument("ShardMap: range starts must be strictly increasing");
    }
    if (ranges[i].shard >= shards) {
      throw std::invalid_argument("ShardMap: range references unknown shard");
    }
  }
}

void ShardMap::set_ranges(std::vector<ShardRange> ranges, std::uint64_t version) {
  check(ranges, shards_);
  if (version <= version_) {
    throw std::invalid_argument("ShardMap: version must be strictly newer");
  }
  ranges_ = std::move(ranges);
  version_ = version;
}

Bytes ShardMap::encode() const {
  Writer w;
  w.u64(version_);
  w.u32(shards_);
  w.u32(static_cast<std::uint32_t>(ranges_.size()));
  for (const ShardRange& r : ranges_) {
    w.u64(r.start);
    w.u32(r.shard);
  }
  return std::move(w).take();
}

ShardMap ShardMap::decode(Reader& r) {
  ShardMap m;
  m.version_ = r.u64();
  m.shards_ = r.u32();
  std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    ShardRange range;
    range.start = r.u64();
    range.shard = r.u32();
    m.ranges_.push_back(range);
  }
  if (m.shards_ == 0) throw std::invalid_argument("ShardMap: shards must be >= 1");
  check(m.ranges_, m.shards_);
  return m;
}

}  // namespace spider
