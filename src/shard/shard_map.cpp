#include "shard/shard_map.hpp"

#include <algorithm>
#include <stdexcept>

namespace spider {

std::uint64_t ShardMap::hash_key(std::string_view key) {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (char c : key) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  // FNV-1a mixes its low bits well but not the high ones, and the range
  // table partitions on the high end — finish with murmur3's fmix64 so
  // similar short keys spread over all ranges.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

ShardMap ShardMap::uniform(std::uint32_t shards) {
  if (shards == 0) throw std::invalid_argument("ShardMap: shards must be >= 1");
  ShardMap m;
  m.shards_ = shards;
  m.version_ = 1;
  const std::uint64_t step = ~std::uint64_t{0} / shards;
  for (std::uint32_t s = 0; s < shards; ++s) {
    m.ranges_.push_back(ShardRange{step * s, s});
  }
  return m;
}

std::uint32_t ShardMap::shard_of_hash(std::uint64_t h) const {
  // Last range whose start <= h. ranges_ is sorted with ranges_[0].start == 0.
  auto it = std::upper_bound(ranges_.begin(), ranges_.end(), h,
                             [](std::uint64_t v, const ShardRange& r) { return v < r.start; });
  return std::prev(it)->shard;
}

void ShardMap::check(const std::vector<ShardRange>& ranges, std::uint32_t shards) {
  if (ranges.empty()) throw std::invalid_argument("ShardMap: ranges must not be empty");
  if (ranges.front().start != 0) {
    throw std::invalid_argument("ShardMap: first range must start at 0");
  }
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    if (i > 0 && ranges[i].start <= ranges[i - 1].start) {
      throw std::invalid_argument("ShardMap: range starts must be strictly increasing");
    }
    if (ranges[i].shard >= shards) {
      throw std::invalid_argument("ShardMap: range references unknown shard");
    }
  }
}

void ShardMap::set_ranges(std::vector<ShardRange> ranges, std::uint64_t version) {
  check(ranges, shards_);
  if (version <= version_) {
    throw std::invalid_argument("ShardMap: version must be strictly newer");
  }
  ranges_ = std::move(ranges);
  version_ = version;
}

Bytes ShardMap::encode() const {
  Writer w;
  w.u64(version_);
  w.u32(shards_);
  w.u32(static_cast<std::uint32_t>(ranges_.size()));
  for (const ShardRange& r : ranges_) {
    w.u64(r.start);
    w.u32(r.shard);
  }
  return std::move(w).take();
}

ShardMap ShardMap::decode(Reader& r) {
  ShardMap m;
  m.version_ = r.u64();
  m.shards_ = r.u32();
  std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    ShardRange range;
    range.start = r.u64();
    range.shard = r.u32();
    m.ranges_.push_back(range);
  }
  // The table came off the wire: invariant violations are wire corruption
  // (or a Byzantine sender), not programming errors, and must surface as
  // SerdeError so the message-boundary catch drops the frame instead of
  // letting std::invalid_argument escape and kill the node.
  if (m.shards_ == 0) throw SerdeError("ShardMap: shards must be >= 1");
  try {
    check(m.ranges_, m.shards_);
  } catch (const std::invalid_argument& e) {
    throw SerdeError(e.what());
  }
  return m;
}

void ShardMapDelta::encode_into(Writer& w) const {
  w.u64(base_version);
  w.u64(new_version);
  w.u64(lo);
  w.u64(hi);
  w.u32(to_shard);
}

ShardMapDelta ShardMapDelta::decode(Reader& r) {
  ShardMapDelta d;
  d.base_version = r.u64();
  d.new_version = r.u64();
  d.lo = r.u64();
  d.hi = r.u64();
  d.to_shard = r.u32();
  if (d.new_version <= d.base_version) {
    throw SerdeError("ShardMapDelta: new version must be newer than base");
  }
  if (d.hi != 0 && d.lo >= d.hi) throw SerdeError("ShardMapDelta: empty range");
  return d;
}

ShardMap ShardMap::with_delta(const ShardMapDelta& delta) const {
  if (delta.base_version != version_) {
    throw std::invalid_argument("ShardMap: delta base version mismatch");
  }
  if (delta.new_version <= version_) {
    throw std::invalid_argument("ShardMap: delta version must be strictly newer");
  }
  if (delta.to_shard >= shards_) {
    throw std::invalid_argument("ShardMap: delta references unknown shard");
  }
  // Work in 65-bit space so "top of the hash space" (exclusive) is a real
  // boundary instead of a wrap-around special case.
  using U128 = unsigned __int128;
  const U128 top = U128{1} << 64;
  const U128 lo = delta.lo;
  const U128 hi = delta.hi == 0 ? top : U128{delta.hi};
  if (lo >= hi) throw std::invalid_argument("ShardMap: delta range is empty");

  // Split every existing range against [lo, hi): pieces outside keep their
  // owner, the piece inside moves. Pushes are strictly increasing, so a
  // plain adjacent-owner merge canonicalizes the result.
  std::vector<ShardRange> out;
  auto push = [&out](U128 start, std::uint32_t shard) {
    if (!out.empty() && out.back().shard == shard) return;
    out.push_back(ShardRange{static_cast<std::uint64_t>(start), shard});
  };
  for (std::size_t i = 0; i < ranges_.size(); ++i) {
    const U128 s = ranges_[i].start;
    const U128 e = i + 1 < ranges_.size() ? U128{ranges_[i + 1].start} : top;
    const std::uint32_t owner = ranges_[i].shard;
    if (s < lo) push(s, owner);
    if (e > lo && s < hi) push(std::max(s, lo), delta.to_shard);
    if (e > hi) push(std::max(s, hi), owner);
  }

  ShardMap m;
  m.shards_ = shards_;
  m.version_ = delta.new_version;
  m.ranges_ = std::move(out);
  check(m.ranges_, m.shards_);
  return m;
}

bool ShardMap::sole_owner_of(std::uint64_t lo, std::uint64_t hi,
                             std::uint32_t* owner) const {
  const std::uint32_t first = shard_of_hash(lo);
  for (const ShardRange& r : ranges_) {
    if (r.start > lo && (hi == 0 || r.start < hi) && r.shard != first) return false;
  }
  if (owner != nullptr) *owner = first;
  return true;
}

}  // namespace spider
