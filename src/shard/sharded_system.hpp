// Sharded Spider deployment builder.
//
// Stands up N independent Spider cores (one agreement group + its
// execution groups each) inside one World and composes them behind a
// hash-partitioned keyspace: a ShardMap owns the routing table and
// ShardedClient routers give applications a single client-facing KV
// interface. Cores share nothing but the simulated world — each shard
// orders, executes, and checkpoints its own slice of the keyspace, so
// aggregate write throughput scales with the shard count instead of
// being capped by a single sequencer.
//
// NodeIds come from the shared World allocator; GroupIds are made
// disjoint by giving each core its own `first_group_id` range (stride
// `group_id_stride`), so per-group channel/checkpoint tags never collide
// across cores and diagnostics stay unambiguous.
#pragma once

#include "obs/metrics.hpp"
#include "shard/shard_map.hpp"
#include "shard/sharded_client.hpp"
#include "spider/system.hpp"

namespace spider {

struct ShardedTopology {
  /// Number of independent Spider cores (= keyspace partitions).
  std::uint32_t shards = 4;
  /// Per-shard deployment: every core uses the same agreement-region and
  /// execution-group placement rules (geo_replica_sites) as a standalone
  /// Spider instance.
  SpiderTopology base;
  /// GroupId range reserved per core; must exceed the number of execution
  /// groups a core will ever host (including runtime add_group calls).
  GroupId group_id_stride = 1024;
  /// Enables live resharding: execution replicas enforce the shard map
  /// (foreign keys answered with a WrongShard redirect) and accept
  /// MigrateOut/MigrateIn admin ops, so migrate_range works at runtime.
  /// Off by default — statically sharded deployments behave exactly as
  /// before (no ownership checks, byte-identical histories).
  bool resharding = false;
};

/// Up-front validation shared with SpiderTopology (satellite of ISSUE 2):
/// throws std::invalid_argument naming the offending field.
void validate_topology(const ShardedTopology& t);

class ShardedSpiderSystem {
 public:
  ShardedSpiderSystem(World& world, ShardedTopology topology);

  [[nodiscard]] std::uint32_t shard_count() const {
    return static_cast<std::uint32_t>(cores_.size());
  }
  SpiderSystem& core(std::uint32_t shard) { return *cores_.at(shard); }
  [[nodiscard]] const ShardMap& shard_map() const { return map_; }

  /// Creates a router at `site`: one SpiderClient per shard, each attached
  /// to that shard's nearest execution group.
  std::unique_ptr<ShardedClient> make_client(Site site);

  /// Runtime reconfiguration (§3.6), scoped to one shard: the other shards
  /// keep committing while the new group state-transfers in.
  GroupId add_group(std::uint32_t shard, Region region, std::function<void()> done = {});
  void remove_group(std::uint32_t shard, GroupId g, std::function<void()> done = {});

  // ---- crash-recovery (FaultPlan hooks) ----------------------------------
  /// Routes to the core owning the replica id; see SpiderSystem.
  bool crash_node(NodeId id);
  bool restart_node(NodeId id);
  /// Routes a Byzantine flag set to the core owning the replica id (the
  /// per-core semantics — role-specific flags, persistence across
  /// crash/restart — are SpiderSystem::set_byzantine's).
  bool set_byzantine(NodeId id, const ByzantineFlags& flags);
  /// Replica ids across every core, for fault-plan targeting.
  [[nodiscard]] std::vector<NodeId> replica_ids() const;

  /// Installs a rebalanced shard map; the new table only reaches routers
  /// that adopt_map() it. The shard count is fixed by the deployment.
  void set_shard_map(ShardMap map);

  // ---- live resharding (requires ShardedTopology.resharding) -------------
  /// Moves the hash range [lo, hi) — hi == 0 meaning the top of the hash
  /// space — to `to_shard` while the deployment keeps serving traffic:
  /// an ordered MigrateOut at the (single) losing shard cuts the range out
  /// of every replica and certifies its state with the reply quorum, then
  /// an ordered MigrateIn at the gaining shard absorbs it. Replicas answer
  /// foreign keys with WrongShard redirects from commit time on, so routers
  /// catch up organically. One migration at a time; `done(ok)` fires when
  /// the gaining shard has committed (ok == false when a side rejected the
  /// delta). Throws std::logic_error without resharding enabled and
  /// std::invalid_argument for an unknown target or multi-owner range.
  void migrate_range(std::uint64_t lo, std::uint64_t hi, std::uint32_t to_shard,
                     std::function<void(bool ok)> done = {});
  /// Convenience: migrates the whole range owning `key` to `to_shard`.
  void migrate_key_range(const std::string& key, std::uint32_t to_shard,
                         std::function<void(bool ok)> done = {});
  [[nodiscard]] bool migration_in_flight() const { return migrating_; }
  /// Thin read of the registry counter `shard_migrations_completed`.
  [[nodiscard]] std::uint64_t migrations_completed() const;
  /// Sim-time gap between MigrateOut completing (range cut) and MigrateIn
  /// completing (range served again) for the most recent migration — the
  /// unavailability window the micro_reshard bench reports. Thin read of
  /// the registry gauge `shard_migration_pause_us`.
  [[nodiscard]] Duration last_migration_pause() const;

  [[nodiscard]] World& world() { return world_; }
  [[nodiscard]] const ShardedTopology& topology() const { return topo_; }

 private:
  static ShardedTopology checked(ShardedTopology t);

  World& world_;
  ShardedTopology topo_;
  ShardMap map_;
  std::vector<std::unique_ptr<SpiderSystem>> cores_;
  bool migrating_ = false;
  // Registry-backed migration stats (cached pointers into world_.metrics()).
  obs::Counter* migrations_ = nullptr;
  obs::Gauge* last_pause_ = nullptr;
};

}  // namespace spider
