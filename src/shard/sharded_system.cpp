#include "shard/sharded_system.hpp"

#include <stdexcept>

#include "shard/migration.hpp"
#include "sim/world.hpp"

namespace spider {

void validate_topology(const ShardedTopology& t) {
  if (t.shards == 0) {
    throw std::invalid_argument("ShardedTopology.shards must be >= 1");
  }
  if (t.group_id_stride < t.base.exec_regions.size() + 1) {
    throw std::invalid_argument(
        "ShardedTopology.group_id_stride too small for base.exec_regions");
  }
  validate_topology(t.base);
}

ShardedTopology ShardedSpiderSystem::checked(ShardedTopology t) {
  validate_topology(t);
  return t;
}

ShardedSpiderSystem::ShardedSpiderSystem(World& world, ShardedTopology topology)
    : world_(world),
      topo_(checked(std::move(topology))),
      map_(ShardMap::uniform(topo_.shards)) {
  migrations_ = &world_.metrics().counter("shard_migrations_completed",
                                          {.role = "sharded-system"});
  last_pause_ = &world_.metrics().gauge("shard_migration_pause_us",
                                        {.role = "sharded-system"});
  for (std::uint32_t s = 0; s < topo_.shards; ++s) {
    SpiderTopology core_topo = topo_.base;
    core_topo.first_group_id = 1 + static_cast<GroupId>(s) * topo_.group_id_stride;
    if (topo_.resharding) {
      core_topo.shard_map = map_;
      core_topo.shard_index = s;
    }
    cores_.push_back(std::make_unique<SpiderSystem>(world_, std::move(core_topo)));
    // Shard affinity for the parallel runtime: each core's replicas (and its
    // admin client) form one verification domain, so prefetch work for a
    // shard lands on a stable worker.
    for (NodeId id : cores_.back()->replica_ids()) world_.assign_domain(id, s);
    world_.assign_domain(cores_.back()->admin().id(), s);
  }
}

std::uint64_t ShardedSpiderSystem::migrations_completed() const {
  return migrations_->value();
}

Duration ShardedSpiderSystem::last_migration_pause() const {
  return static_cast<Duration>(last_pause_->value());
}

std::unique_ptr<ShardedClient> ShardedSpiderSystem::make_client(Site site) {
  std::vector<std::unique_ptr<SpiderClient>> subs;
  for (std::uint32_t s = 0; s < cores_.size(); ++s) {
    subs.push_back(cores_[s]->make_client(site));
    world_.assign_domain(subs.back()->id(), s);
  }
  return std::make_unique<ShardedClient>(world_, map_, std::move(subs));
}

GroupId ShardedSpiderSystem::add_group(std::uint32_t shard, Region region,
                                       std::function<void()> done) {
  SpiderSystem& core = *cores_.at(shard);
  // A core that outgrows its stride would reuse another core's GroupIds,
  // silently breaking the cross-core disjointness the channel/checkpoint
  // tags rely on — fail loudly instead.
  GroupId end = 1 + (static_cast<GroupId>(shard) + 1) * topo_.group_id_stride;
  if (core.next_group_id() >= end) {
    throw std::runtime_error("ShardedSpiderSystem: shard exhausted its GroupId range "
                             "(raise ShardedTopology.group_id_stride)");
  }
  return core.add_group(region, std::move(done));
}

void ShardedSpiderSystem::remove_group(std::uint32_t shard, GroupId g,
                                       std::function<void()> done) {
  cores_.at(shard)->remove_group(g, std::move(done));
}

void ShardedSpiderSystem::set_shard_map(ShardMap map) {
  if (map.shard_count() != topo_.shards) {
    throw std::invalid_argument(
        "ShardedSpiderSystem: shard map must keep the deployment's shard count");
  }
  map_ = std::move(map);
}

void ShardedSpiderSystem::migrate_range(std::uint64_t lo, std::uint64_t hi,
                                        std::uint32_t to_shard,
                                        std::function<void(bool)> done) {
  if (!topo_.resharding) {
    throw std::logic_error(
        "ShardedSpiderSystem: migrate_range requires ShardedTopology.resharding");
  }
  if (to_shard >= shard_count()) {
    throw std::invalid_argument("ShardedSpiderSystem: unknown target shard");
  }
  if (migrating_) {
    throw std::logic_error("ShardedSpiderSystem: one migration at a time");
  }
  std::uint32_t from = 0;
  if (!map_.sole_owner_of(lo, hi, &from)) {
    throw std::invalid_argument(
        "ShardedSpiderSystem: migrated range spans owners (move one range at a time)");
  }
  if (from == to_shard) {
    if (done) done(true);
    return;
  }

  const ShardMapDelta delta{map_.version(), map_.version() + 1, lo, hi, to_shard};
  (void)map_.with_delta(delta);  // validate up front: bad deltas throw, not fail async
  migrating_ = true;

  // Phase 1 — ordered MigrateOut at the losing core: every execution
  // replica cuts the range and replies with its serialized state; the
  // admin client's fe+1 matching replies certify those bytes.
  cores_[from]->admin().write(
      MigrateOutCmd{delta}.encode(),
      [this, delta, to_shard, done = std::move(done)](Bytes reply, Duration) mutable {
        MigrateReply out = decode_migrate_reply(reply);
        if (!out.ok) {
          migrating_ = false;
          if (done) done(false);
          return;
        }
        const Time cut_at = world_.now();
        // Phase 2 — ordered MigrateIn at the gaining core: replicas absorb
        // the certified state and start serving the range.
        cores_[to_shard]->admin().write(
            MigrateInCmd{delta, std::move(out.state)}.encode(),
            [this, delta, cut_at, done = std::move(done)](Bytes reply2, Duration) {
              MigrateReply in = decode_migrate_reply(reply2);
              migrating_ = false;
              if (!in.ok) {
                if (done) done(false);
                return;
              }
              map_ = map_.with_delta(delta);
              last_pause_->set(world_.now() - cut_at);
              migrations_->inc();
              if (auto* t = world_.tracer()) {
                t->instant(world_.now(), 0, "shard", "migration-complete",
                           "to_shard", delta.to_shard, "pause_us",
                           static_cast<std::uint64_t>(world_.now() - cut_at));
              }
              if (done) done(true);
            });
      });
}

void ShardedSpiderSystem::migrate_key_range(const std::string& key, std::uint32_t to_shard,
                                            std::function<void(bool)> done) {
  const std::uint64_t h = ShardMap::hash_key(key);
  const std::vector<ShardRange>& ranges = map_.ranges();
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;  // top of space unless a later range bounds it
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    const bool last = i + 1 == ranges.size();
    if (h >= ranges[i].start && (last || h < ranges[i + 1].start)) {
      lo = ranges[i].start;
      hi = last ? 0 : ranges[i + 1].start;
      break;
    }
  }
  migrate_range(lo, hi, to_shard, std::move(done));
}

bool ShardedSpiderSystem::crash_node(NodeId id) {
  for (auto& core : cores_) {
    if (core->crash_node(id)) return true;
  }
  return false;
}

bool ShardedSpiderSystem::restart_node(NodeId id) {
  for (auto& core : cores_) {
    if (core->restart_node(id)) return true;
  }
  return false;
}

bool ShardedSpiderSystem::set_byzantine(NodeId id, const ByzantineFlags& flags) {
  for (auto& core : cores_) {
    if (core->set_byzantine(id, flags)) return true;
  }
  return false;
}

std::vector<NodeId> ShardedSpiderSystem::replica_ids() const {
  std::vector<NodeId> ids;
  for (const auto& core : cores_) {
    std::vector<NodeId> core_ids = core->replica_ids();
    ids.insert(ids.end(), core_ids.begin(), core_ids.end());
  }
  return ids;
}

}  // namespace spider
