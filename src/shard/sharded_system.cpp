#include "shard/sharded_system.hpp"

#include <stdexcept>

#include "sim/world.hpp"

namespace spider {

void validate_topology(const ShardedTopology& t) {
  if (t.shards == 0) {
    throw std::invalid_argument("ShardedTopology.shards must be >= 1");
  }
  if (t.group_id_stride < t.base.exec_regions.size() + 1) {
    throw std::invalid_argument(
        "ShardedTopology.group_id_stride too small for base.exec_regions");
  }
  validate_topology(t.base);
}

ShardedTopology ShardedSpiderSystem::checked(ShardedTopology t) {
  validate_topology(t);
  return t;
}

ShardedSpiderSystem::ShardedSpiderSystem(World& world, ShardedTopology topology)
    : world_(world),
      topo_(checked(std::move(topology))),
      map_(ShardMap::uniform(topo_.shards)) {
  for (std::uint32_t s = 0; s < topo_.shards; ++s) {
    SpiderTopology core_topo = topo_.base;
    core_topo.first_group_id = 1 + static_cast<GroupId>(s) * topo_.group_id_stride;
    cores_.push_back(std::make_unique<SpiderSystem>(world_, std::move(core_topo)));
  }
}

std::unique_ptr<ShardedClient> ShardedSpiderSystem::make_client(Site site) {
  std::vector<std::unique_ptr<SpiderClient>> subs;
  for (auto& core : cores_) subs.push_back(core->make_client(site));
  return std::make_unique<ShardedClient>(world_, map_, std::move(subs));
}

GroupId ShardedSpiderSystem::add_group(std::uint32_t shard, Region region,
                                       std::function<void()> done) {
  SpiderSystem& core = *cores_.at(shard);
  // A core that outgrows its stride would reuse another core's GroupIds,
  // silently breaking the cross-core disjointness the channel/checkpoint
  // tags rely on — fail loudly instead.
  GroupId end = 1 + (static_cast<GroupId>(shard) + 1) * topo_.group_id_stride;
  if (core.next_group_id() >= end) {
    throw std::runtime_error("ShardedSpiderSystem: shard exhausted its GroupId range "
                             "(raise ShardedTopology.group_id_stride)");
  }
  return core.add_group(region, std::move(done));
}

void ShardedSpiderSystem::remove_group(std::uint32_t shard, GroupId g,
                                       std::function<void()> done) {
  cores_.at(shard)->remove_group(g, std::move(done));
}

void ShardedSpiderSystem::set_shard_map(ShardMap map) {
  if (map.shard_count() != topo_.shards) {
    throw std::invalid_argument(
        "ShardedSpiderSystem: shard map must keep the deployment's shard count");
  }
  map_ = std::move(map);
}

bool ShardedSpiderSystem::crash_node(NodeId id) {
  for (auto& core : cores_) {
    if (core->crash_node(id)) return true;
  }
  return false;
}

bool ShardedSpiderSystem::restart_node(NodeId id) {
  for (auto& core : cores_) {
    if (core->restart_node(id)) return true;
  }
  return false;
}

bool ShardedSpiderSystem::set_byzantine(NodeId id, const ByzantineFlags& flags) {
  for (auto& core : cores_) {
    if (core->set_byzantine(id, flags)) return true;
  }
  return false;
}

std::vector<NodeId> ShardedSpiderSystem::replica_ids() const {
  std::vector<NodeId> ids;
  for (const auto& core : cores_) {
    std::vector<NodeId> core_ids = core->replica_ids();
    ids.insert(ids.end(), core_ids.begin(), core_ids.end());
  }
  return ids;
}

}  // namespace spider
