#include "shard/migration.hpp"

namespace spider {

Bytes MigrateOutCmd::encode() const {
  Writer w;
  w.u8(kSysOpMigrateOut);
  delta.encode_into(w);
  return std::move(w).take();
}

MigrateOutCmd MigrateOutCmd::decode(Reader& r) {
  MigrateOutCmd cmd;
  cmd.delta = ShardMapDelta::decode(r);
  return cmd;
}

Bytes MigrateInCmd::encode() const {
  Writer w;
  w.u8(kSysOpMigrateIn);
  delta.encode_into(w);
  w.bytes(state);
  return std::move(w).take();
}

MigrateInCmd MigrateInCmd::decode(Reader& r) {
  MigrateInCmd cmd;
  cmd.delta = ShardMapDelta::decode(r);
  cmd.state = r.bytes();
  return cmd;
}

Bytes make_wrong_shard_reply(const ShardMap& map) {
  Writer w;
  w.u8(kWrongShardStatus);
  w.bytes(map.encode());
  return std::move(w).take();
}

std::optional<ShardMap> try_decode_wrong_shard(BytesView reply) {
  try {
    Reader r(reply);
    if (r.u8() != kWrongShardStatus) return std::nullopt;
    Bytes table = r.bytes();
    r.expect_done();
    Reader tr(table);
    ShardMap map = ShardMap::decode(tr);
    tr.expect_done();
    return map;
  } catch (const SerdeError&) {
    return std::nullopt;
  }
}

Bytes make_migrate_fail_reply() {
  Writer w;
  w.u8(0);
  w.bytes({});
  return std::move(w).take();
}

namespace {
Bytes migrate_ok_reply(std::uint64_t version, BytesView state) {
  Writer body;
  body.u64(version);
  body.bytes(state);
  Writer w;
  w.u8(1);
  w.bytes(body.data());
  return std::move(w).take();
}
}  // namespace

Bytes make_migrate_out_reply(std::uint64_t new_version, BytesView state) {
  return migrate_ok_reply(new_version, state);
}

Bytes make_migrate_in_reply(std::uint64_t new_version) {
  return migrate_ok_reply(new_version, {});
}

MigrateReply decode_migrate_reply(BytesView reply) {
  MigrateReply out;
  Reader r(reply);
  if (r.u8() != 1) return out;
  Bytes body = r.bytes();
  Reader br(body);
  out.version = br.u64();
  out.state = br.bytes();
  br.expect_done();
  out.ok = true;
  return out;
}

}  // namespace spider
