// Open-loop workload profiles and deterministic generators.
//
// An open-loop generator decides *when* requests arrive (a Poisson process
// at the offered rate) independently of when earlier requests complete, so
// a saturated system accumulates queueing delay instead of silently
// throttling the workload — the regime every closed-loop bench in bench/
// hides. The profile fixes the offered rate, the simulated client
// population, the key popularity skew and the op mix; all randomness draws
// from an Rng forked off the World seed, so a repeated seed replays the
// exact arrival schedule.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"

namespace spider::load {

/// Zipfian rank generator over [0, n): P(i) proportional to 1/(i+1)^theta,
/// so rank 0 is the hottest key. The CDF is precomputed once (O(n) doubles)
/// and each draw is one uniform01 plus a binary search — deterministic for
/// a given Rng stream. theta == 0 degenerates to the uniform distribution
/// (no CDF stored). Typical hot-key skew uses theta = 0.99 (YCSB's
/// default zipfian constant).
class ZipfGenerator {
 public:
  /// Throws std::invalid_argument for n == 0 or theta < 0.
  ZipfGenerator(std::size_t n, double theta);

  [[nodiscard]] std::size_t draw(Rng& rng) const;
  [[nodiscard]] std::size_t n() const { return n_; }
  [[nodiscard]] double theta() const { return theta_; }

 private:
  std::size_t n_;
  double theta_;
  std::vector<double> cdf_;  // empty when uniform
};

/// One open-loop run configuration. Rates are ops/s of simulated time;
/// durations are simulated microseconds.
struct OpenLoopProfile {
  double rate = 100.0;           ///< offered load, ops/s (Poisson arrivals)
  std::size_t clients = 2048;    ///< simulated client population (round-robin)
  std::size_t key_count = 4096;  ///< distinct keys ("k000000".."k004095")
  double zipf_theta = 0.99;      ///< hot-key skew; 0 = uniform
  std::size_t value_size = 160;  ///< write payload (~200-byte wire requests)
  double write_fraction = 0.5;   ///< ordered writes
  double weak_fraction = 0.45;   ///< weak (fast-path) reads
  // remainder (1 - write - weak) issues strong reads
  Duration warmup = 1 * kSecond;   ///< arrivals before this are not measured
  Duration measure = 2 * kSecond;  ///< measurement window
  Duration drain = 4 * kSecond;    ///< extra run time for in-window completions
};

/// Throws std::invalid_argument naming the offending field (same contract
/// as validate_topology).
void validate_profile(const OpenLoopProfile& p);

/// Key for rank `i`: zero-padded so lexicographic order matches rank order
/// and keys hash uniformly across a ShardMap.
std::string workload_key(std::size_t i);

}  // namespace spider::load
