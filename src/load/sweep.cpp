#include "load/sweep.hpp"

#include <cstdio>
#include <memory>
#include <stdexcept>

#include "net/loopback_transport.hpp"
#include "net/realtime.hpp"
#include "shard/sharded_system.hpp"
#include "sim/world.hpp"
#include "spider/system.hpp"

namespace spider::load {

namespace {

/// Short-WAN deployment shared by every sweep point (cf. micro_batching /
/// micro_sharding): two execution regions keep the request path cheap so
/// the agreement group — the resource batching and sharding scale — is the
/// saturating bottleneck.
SpiderTopology base_topology(std::uint64_t max_batch) {
  SpiderTopology topo;
  topo.exec_regions = {Region::Virginia, Region::Ohio};
  topo.commit_capacity = 128;
  topo.ag_win = 128;
  topo.max_batch = max_batch;
  topo.batch_delay = max_batch > 1 ? kMillisecond : 0;
  return topo;
}

Site client_site(std::size_t i) {
  return Site{(i % 2 == 0) ? Region::Virginia : Region::Ohio,
              static_cast<std::uint8_t>(i % 3)};
}

/// One ladder point: fresh World + deployment + pool, one runner window.
RateRow run_point(const SweepConfig& cfg, double rate) {
  World world(cfg.seed);
  // Parallel runtime before any traffic; skipped under loopback, whose
  // RealtimeDriver must own the run loop (last-installed driver wins).
  if (cfg.threads >= 1 && !cfg.loopback) world.enable_parallelism(cfg.threads);
  OpenLoopProfile profile = cfg.profile;
  profile.rate = rate;

  // Socket backend (optional): must be installed before any SimNode exists
  // and must outlive the deployment (nodes detach through it on teardown) —
  // hence declared before `single`/`sharded` below.
  std::unique_ptr<net::LoopbackTransport> sock;
  std::unique_ptr<net::RealtimeDriver> driver;
  if (cfg.loopback) {
    sock = std::make_unique<net::LoopbackTransport>();
    world.install_transport(sock.get());
    driver = std::make_unique<net::RealtimeDriver>(world, *sock);
  }

  // Deployments and pools must outlive the runner (completion callbacks),
  // so they are declared before it and torn down after run() returns.
  std::unique_ptr<SpiderSystem> single;
  std::unique_ptr<ShardedSpiderSystem> sharded;
  std::vector<std::unique_ptr<SpiderClient>> spider_pool;
  std::vector<std::unique_ptr<ShardedClient>> sharded_pool;
  OpenLoopRunner runner(world, profile);

  if (cfg.shards <= 1) {
    single = std::make_unique<SpiderSystem>(world, base_topology(cfg.max_batch));
    for (std::size_t i = 0; i < profile.clients; ++i) {
      spider_pool.push_back(single->make_client(client_site(i)));
      SpiderClient* c = spider_pool.back().get();
      runner.add_client(
          [c](LoadOp op, Bytes encoded, OpenLoopRunner::Callback done) {
            OpKind kind = op == LoadOp::Write       ? OpKind::Write
                          : op == LoadOp::WeakRead  ? OpKind::WeakRead
                                                    : OpKind::StrongRead;
            c->fire(kind, std::move(encoded), std::move(done));
          },
          [c] { return c->queue_depth(); });
    }
  } else {
    ShardedTopology topo;
    topo.shards = cfg.shards;
    topo.base = base_topology(cfg.max_batch);
    sharded = std::make_unique<ShardedSpiderSystem>(world, topo);
    for (std::size_t i = 0; i < profile.clients; ++i) {
      sharded_pool.push_back(sharded->make_client(client_site(i)));
      ShardedClient* c = sharded_pool.back().get();
      runner.add_client(
          [c](LoadOp op, Bytes encoded, OpenLoopRunner::Callback done) {
            switch (op) {
              case LoadOp::Write: c->write(std::move(encoded), std::move(done)); break;
              case LoadOp::WeakRead: c->weak_read(std::move(encoded), std::move(done)); break;
              case LoadOp::StrongRead:
                c->strong_read(std::move(encoded), std::move(done));
                break;
            }
          },
          [c] { return c->pending_ops(); });
    }
  }

  RateRow row;
  row.offered = rate;
  row.result = runner.run();
  if (cfg.capture_snapshots) {
    world.refresh_platform_metrics();
    row.snapshot = world.metrics().snapshot_json();
  }
  return row;
}

}  // namespace

std::string row_text(std::uint32_t shards, std::uint64_t max_batch, unsigned threads,
                     const RateRow& row) {
  char buf[256];
  const OpenLoopResult& r = row.result;
  std::snprintf(buf, sizeof(buf),
                "shards=%u batch=%llu threads=%u rate=%.0f goodput=%.1f p50=%llu p99=%llu "
                "p999=%llu arrivals=%llu completed=%llu depth=%llu",
                shards, static_cast<unsigned long long>(max_batch), threads, row.offered,
                r.goodput, static_cast<unsigned long long>(r.p50_us),
                static_cast<unsigned long long>(r.p99_us),
                static_cast<unsigned long long>(r.p999_us),
                static_cast<unsigned long long>(r.arrivals),
                static_cast<unsigned long long>(r.completed),
                static_cast<unsigned long long>(r.max_queue_depth));
  return buf;
}

std::string SweepResult::rows_text() const {
  std::string out;
  for (const RateRow& row : rows) {
    out += row_text(shards, max_batch, threads, row);
    out += '\n';
  }
  if (knee_index) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "knee rate=%.0f\n", rows[*knee_index].offered);
    out += buf;
  } else {
    out += "knee none\n";
  }
  return out;
}

std::optional<std::size_t> detect_knee(const std::vector<RateRow>& rows,
                                      double p99_factor, double goodput_frac) {
  if (rows.size() < 2) return std::nullopt;
  const double baseline_p99 =
      rows.front().result.p99_us > 0 ? static_cast<double>(rows.front().result.p99_us)
                                     : 1.0;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const OpenLoopResult& r = rows[i].result;
    if (static_cast<double>(r.p99_us) > p99_factor * baseline_p99) return i;
    // Goodput is judged against *realized* arrivals, not the nominal
    // offered rate: at low rates the Poisson sample deviates several
    // percent from rate x window, which would trip a nominal-rate test on
    // an unloaded system. completed < arrivals means real backlog — ops
    // the system never served even with the whole drain window.
    if (r.arrivals > 0 &&
        static_cast<double>(r.completed) < goodput_frac * static_cast<double>(r.arrivals)) {
      return i;
    }
  }
  return std::nullopt;
}

SweepResult run_sweep(const SweepConfig& cfg,
                      const std::function<void(const RateRow&)>& on_row) {
  if (cfg.rates.empty()) throw std::invalid_argument("SweepConfig.rates must not be empty");
  for (std::size_t i = 1; i < cfg.rates.size(); ++i) {
    if (!(cfg.rates[i] > cfg.rates[i - 1])) {
      throw std::invalid_argument("SweepConfig.rates must be strictly ascending");
    }
  }
  validate_profile(cfg.profile);

  SweepResult res;
  res.shards = cfg.shards;
  res.max_batch = cfg.max_batch;
  res.threads = cfg.loopback ? 0 : cfg.threads;
  for (double rate : cfg.rates) {
    res.rows.push_back(run_point(cfg, rate));
    if (on_row) on_row(res.rows.back());
    res.knee_index = detect_knee(res.rows, cfg.knee_p99_factor, cfg.knee_goodput_frac);
    if (res.knee_index &&
        res.rows.size() - 1 >= *res.knee_index + cfg.points_past_knee) {
      break;  // deep past the knee: further points only measure collapse
    }
  }
  return res;
}

}  // namespace spider::load
