#include "load/open_loop.hpp"

#include <cmath>
#include <stdexcept>

#include "app/kvstore.hpp"
#include "sim/world.hpp"

namespace spider::load {

std::string_view load_op_name(LoadOp op) {
  switch (op) {
    case LoadOp::Write: return "write";
    case LoadOp::WeakRead: return "weak-read";
    case LoadOp::StrongRead: return "strong-read";
  }
  return "?";
}

OpenLoopRunner::OpenLoopRunner(World& world, OpenLoopProfile profile)
    : world_(world),
      profile_((validate_profile(profile), std::move(profile))),
      rng_(world.rng().fork()),
      zipf_(profile_.key_count, profile_.zipf_theta),
      sojourn_(world.metrics().histogram("openloop_sojourn_us", {.role = "load"})),
      sojourn_write_(
          world.metrics().histogram("openloop_sojourn_write_us", {.role = "load"})),
      sojourn_weak_(
          world.metrics().histogram("openloop_sojourn_weak_us", {.role = "load"})),
      sojourn_strong_(
          world.metrics().histogram("openloop_sojourn_strong_us", {.role = "load"})),
      arrivals_total_(world.metrics().counter("openloop_arrivals_total", {.role = "load"})),
      arrivals_(world.metrics().counter("openloop_arrivals_measured", {.role = "load"})),
      completed_(world.metrics().counter("openloop_completed_measured", {.role = "load"})),
      max_depth_(world.metrics().gauge("openloop_max_queue_depth", {.role = "load"})) {}

void OpenLoopRunner::add_client(Submit submit, DepthProbe depth) {
  slots_.push_back(Slot{std::move(submit), std::move(depth)});
}

obs::LogHistogram& OpenLoopRunner::class_histogram(LoadOp op) {
  switch (op) {
    case LoadOp::Write: return sojourn_write_;
    case LoadOp::WeakRead: return sojourn_weak_;
    case LoadOp::StrongRead: return sojourn_strong_;
  }
  return sojourn_write_;
}

void OpenLoopRunner::schedule_arrival() {
  // Exponential inter-arrival gaps: a Poisson process at the offered rate.
  // Rounded to the sim's microsecond grid; a sub-microsecond gap lands in
  // the same tick (FIFO order keeps it deterministic).
  const double mean_gap_us = 1e6 / profile_.rate;
  auto gap = static_cast<Duration>(std::llround(rng_.exponential(mean_gap_us)));
  if (gap < 0) gap = 0;
  world_.queue().schedule_after(gap, [this] { on_arrival(); });
}

void OpenLoopRunner::on_arrival() {
  if (world_.now() >= stop_) return;  // offered window over: stop the chain
  schedule_arrival();                 // next arrival is independent of this op

  Slot& slot = slots_[next_slot_];
  next_slot_ = (next_slot_ + 1) % slots_.size();

  const std::string key = workload_key(zipf_.draw(rng_));
  const double u = rng_.uniform01();
  LoadOp op = LoadOp::StrongRead;
  if (u < profile_.write_fraction) {
    op = LoadOp::Write;
  } else if (u < profile_.write_fraction + profile_.weak_fraction) {
    op = LoadOp::WeakRead;
  }
  Bytes encoded = op == LoadOp::Write ? kv_put(key, Bytes(profile_.value_size, 0x42))
                                      : kv_get(key);

  const Time arrival = world_.now();
  const bool in_window = arrival >= measure_from_;
  arrivals_total_.inc();
  if (in_window) arrivals_.inc();

  slot.submit(op, std::move(encoded), [this, arrival, in_window, op](Bytes, Duration) {
    if (!in_window) return;
    const auto sojourn = static_cast<std::uint64_t>(world_.now() - arrival);
    sojourn_.add(sojourn);
    class_histogram(op).add(sojourn);
    completed_.inc();
  });

  if (slot.depth) {
    const auto d = static_cast<std::int64_t>(slot.depth());
    if (d > max_depth_.value()) max_depth_.set(d);
  }
}

OpenLoopResult OpenLoopRunner::run() {
  if (slots_.empty()) throw std::logic_error("OpenLoopRunner: no clients added");
  const Time t0 = world_.now();
  measure_from_ = t0 + profile_.warmup;
  stop_ = measure_from_ + profile_.measure;
  schedule_arrival();
  world_.run_until(stop_ + profile_.drain);

  OpenLoopResult r;
  r.offered_rate = profile_.rate;
  r.arrivals_total = arrivals_total_.value();
  r.arrivals = arrivals_.value();
  r.completed = completed_.value();
  r.goodput = static_cast<double>(r.completed) / to_sec(profile_.measure);
  r.p50_us = sojourn_.percentile(50.0);
  r.p99_us = sojourn_.percentile(99.0);
  r.p999_us = sojourn_.percentile(99.9);
  r.mean_us = sojourn_.mean();
  r.max_queue_depth = static_cast<std::uint64_t>(max_depth_.value());
  return r;
}

}  // namespace spider::load
