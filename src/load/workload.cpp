#include "load/workload.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace spider::load {

ZipfGenerator::ZipfGenerator(std::size_t n, double theta) : n_(n), theta_(theta) {
  if (n == 0) throw std::invalid_argument("ZipfGenerator: n must be > 0");
  if (!(theta >= 0.0)) throw std::invalid_argument("ZipfGenerator: theta must be >= 0");
  if (theta == 0.0) return;  // uniform fast path
  cdf_.resize(n);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = sum;
  }
  for (double& c : cdf_) c /= sum;
  cdf_.back() = 1.0;  // guard against rounding leaving the tail short of 1
}

std::size_t ZipfGenerator::draw(Rng& rng) const {
  if (cdf_.empty()) return static_cast<std::size_t>(rng.uniform(n_));
  double u = rng.uniform01();
  auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<std::size_t>(it - cdf_.begin());
}

void validate_profile(const OpenLoopProfile& p) {
  if (!(p.rate > 0.0)) throw std::invalid_argument("OpenLoopProfile.rate must be > 0");
  if (p.clients == 0) throw std::invalid_argument("OpenLoopProfile.clients must be > 0");
  if (p.key_count == 0) throw std::invalid_argument("OpenLoopProfile.key_count must be > 0");
  if (!(p.zipf_theta >= 0.0)) {
    throw std::invalid_argument("OpenLoopProfile.zipf_theta must be >= 0");
  }
  if (!(p.write_fraction >= 0.0 && p.write_fraction <= 1.0)) {
    throw std::invalid_argument("OpenLoopProfile.write_fraction must be in [0, 1]");
  }
  if (!(p.weak_fraction >= 0.0 && p.weak_fraction <= 1.0)) {
    throw std::invalid_argument("OpenLoopProfile.weak_fraction must be in [0, 1]");
  }
  if (p.write_fraction + p.weak_fraction > 1.0) {
    throw std::invalid_argument(
        "OpenLoopProfile.write_fraction + weak_fraction must be <= 1");
  }
  if (p.warmup < 0) throw std::invalid_argument("OpenLoopProfile.warmup must be >= 0");
  if (p.measure <= 0) throw std::invalid_argument("OpenLoopProfile.measure must be > 0");
  if (p.drain < 0) throw std::invalid_argument("OpenLoopProfile.drain must be >= 0");
}

std::string workload_key(std::size_t i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "k%06zu", i);
  return buf;
}

}  // namespace spider::load
