// Open-loop workload driver: Poisson arrivals over a simulated client pool.
//
// The runner owns the arrival process — one self-rescheduling event chain
// drawing exponential inter-arrival gaps at the profile's offered rate —
// and fans each arrival out to the next client slot round-robin. Arrivals
// never wait for completions, so when the system saturates, latency (and
// client queue depth) grows without the generator slowing down; that is
// the defining property a closed-loop harness lacks.
//
// Every per-op latency is a *sojourn* time — completion minus arrival,
// stamped by the runner itself so SpiderClient pools and ShardedClient
// routers measure identically — recorded straight into obs::LogHistograms
// owned by the World's MetricsRegistry (no ad-hoc sample vectors, bounded
// memory at any run length). Counters and histograms live under
// role="load", so a registry snapshot carries the workload's view of the
// run next to the protocol metrics.
#pragma once

#include <functional>
#include <string_view>

#include "common/bytes.hpp"
#include "load/workload.hpp"
#include "obs/metrics.hpp"

namespace spider {
class World;
}

namespace spider::load {

/// Operation classes the driver issues (mirrors bench::OpType, kept here so
/// src/load does not depend on bench/ headers).
enum class LoadOp : std::uint8_t { Write, WeakRead, StrongRead };

std::string_view load_op_name(LoadOp op);

/// One run's results, sourced from the registry metrics the runner owns.
struct OpenLoopResult {
  double offered_rate = 0;          ///< profile rate (ops/s)
  std::uint64_t arrivals_total = 0; ///< all arrivals, warmup included
  std::uint64_t arrivals = 0;       ///< arrivals inside the measure window
  std::uint64_t completed = 0;      ///< in-window arrivals completed by drain end
  double goodput = 0;               ///< completed / measure seconds
  std::uint64_t p50_us = 0;         ///< in-window sojourn percentiles
  std::uint64_t p99_us = 0;
  std::uint64_t p999_us = 0;
  double mean_us = 0;
  std::uint64_t max_queue_depth = 0;  ///< worst per-client depth at any arrival

  /// In-window arrivals still unanswered when the run ended: the op backlog
  /// a saturated system never served.
  [[nodiscard]] std::uint64_t incomplete() const { return arrivals - completed; }
};

class OpenLoopRunner {
 public:
  using Callback = std::function<void(Bytes result, Duration latency)>;
  /// Issues one op. Implementations must not block the arrival process:
  /// SpiderClient pools use fire(), ShardedClient pools the router entry
  /// points (both enqueue and return immediately; `done` fires at the
  /// reply quorum). The Duration handed to `done` is ignored — the runner
  /// stamps sojourn latency itself.
  using Submit = std::function<void(LoadOp op, Bytes encoded, Callback done)>;
  /// Optional per-client congestion probe (e.g. SpiderClient::queue_depth
  /// or ShardedClient::pending_ops), sampled after each submission.
  using DepthProbe = std::function<std::size_t()>;

  /// Validates the profile (std::invalid_argument on nonsense) and forks a
  /// dedicated RNG stream off the World seed, so two same-seed runs replay
  /// identical arrival schedules.
  OpenLoopRunner(World& world, OpenLoopProfile profile);

  /// Adds one simulated client slot; arrivals round-robin over slots in
  /// insertion order.
  void add_client(Submit submit, DepthProbe depth = {});

  /// Runs warmup + measure windows of Poisson arrivals, then drains for
  /// profile.drain, and reports the window's curve point. The runner (and
  /// its client pool) must outlive any further event processing on this
  /// World: completion callbacks hold a pointer to the runner. Throws
  /// std::logic_error when no client was added.
  OpenLoopResult run();

 private:
  struct Slot {
    Submit submit;
    DepthProbe depth;
  };

  void schedule_arrival();
  void on_arrival();
  obs::LogHistogram& class_histogram(LoadOp op);

  World& world_;
  OpenLoopProfile profile_;
  Rng rng_;
  ZipfGenerator zipf_;
  std::vector<Slot> slots_;
  std::size_t next_slot_ = 0;
  Time measure_from_ = 0;
  Time stop_ = 0;

  // Registry-backed measurement (references valid for the World's lifetime).
  obs::LogHistogram& sojourn_;          // in-window, all classes
  obs::LogHistogram& sojourn_write_;
  obs::LogHistogram& sojourn_weak_;
  obs::LogHistogram& sojourn_strong_;
  obs::Counter& arrivals_total_;
  obs::Counter& arrivals_;
  obs::Counter& completed_;
  obs::Gauge& max_depth_;
};

}  // namespace spider::load
