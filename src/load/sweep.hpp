// Rate sweep: walk offered load upward and find the saturation knee.
//
// Each point of the ladder stands up a *fresh* deployment from the same
// seed (so points differ only in offered rate, not in accumulated state),
// runs the open-loop driver, and records a latency-vs-throughput row. The
// knee is the first rate where the system stops behaving like an unloaded
// queue: p99 sojourn exceeds `knee_p99_factor` times the low-load baseline
// (the ladder's first point), or completions drop below
// `knee_goodput_frac` of in-window arrivals (the service rate stopped
// tracking the arrival process and left a backlog unserved). The
// ladder early-stops `points_past_knee` points after the knee so sweeps
// don't burn time deep inside collapse.
//
// Everything is deterministic: same SweepConfig + seed => byte-identical
// rows_text() and (optionally captured) registry snapshots.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "load/open_loop.hpp"

namespace spider::load {

struct SweepConfig {
  std::uint32_t shards = 1;      ///< 1 = standalone SpiderSystem (no router)
  std::uint64_t max_batch = 1;   ///< PBFT request batching knob
  /// >= 1 enables the deterministic parallel runtime with this many threads
  /// (1 = inline pool, prefetch dedup only). Rows are byte-identical at
  /// every value — threading changes wall-clock time, never virtual time.
  /// Ignored under `loopback` (the realtime driver owns the run loop).
  unsigned threads = 0;
  std::vector<double> rates;     ///< offered-rate ladder, ascending ops/s
  double knee_p99_factor = 5.0;  ///< p99 blow-up multiple vs low-load baseline
  double knee_goodput_frac = 0.9;  ///< completions must track arrivals this closely
  std::size_t points_past_knee = 1;  ///< extra ladder points run after the knee
  std::uint64_t seed = 42;
  OpenLoopProfile profile;  ///< per-point profile; `rate` is overridden
  bool capture_snapshots = false;  ///< store each point's registry snapshot
  /// Run every point over real loopback sockets (net::LoopbackTransport +
  /// net::RealtimeDriver) instead of the deterministic sim network. One
  /// virtual microsecond then tracks one wall microsecond, so the measure
  /// window costs real time and rows are no longer byte-deterministic —
  /// but modeled CPU costs still bound throughput, so the ladder finds a
  /// real saturation knee on a socket-backed deployment.
  bool loopback = false;
};

struct RateRow {
  double offered = 0;
  OpenLoopResult result;
  std::string snapshot;  ///< registry snapshot JSON (capture_snapshots only)
};

/// Deterministic one-line rendering of a row (the byte-identity surface
/// pinned by the determinism test and echoed into BENCH rows).
std::string row_text(std::uint32_t shards, std::uint64_t max_batch, unsigned threads,
                     const RateRow& row);

struct SweepResult {
  std::uint32_t shards = 1;
  std::uint64_t max_batch = 1;
  unsigned threads = 0;
  std::vector<RateRow> rows;
  std::optional<std::size_t> knee_index;  ///< into rows

  [[nodiscard]] std::optional<double> knee_rate() const {
    if (!knee_index) return std::nullopt;
    return rows[*knee_index].offered;
  }
  /// All rows (plus the knee verdict) as deterministic text.
  [[nodiscard]] std::string rows_text() const;
};

/// Pure knee detector over already-collected rows (unit-testable without a
/// deployment): first index whose p99 exceeds `p99_factor` x the first
/// row's p99, or whose completions fall below `goodput_frac` x in-window
/// arrivals (realized arrivals, not the nominal offered rate — low-rate
/// Poisson samples deviate several percent from rate x window). Returns
/// nullopt with fewer than two rows or when no row qualifies. A zero
/// baseline p99 counts as 1 us so the factor test stays meaningful.
std::optional<std::size_t> detect_knee(const std::vector<RateRow>& rows,
                                      double p99_factor, double goodput_frac);

/// Runs the ladder. `on_row` (optional) fires after each point — bench
/// mains use it to stream BENCH JSON rows. Throws std::invalid_argument
/// for an empty or non-ascending ladder.
SweepResult run_sweep(const SweepConfig& cfg,
                      const std::function<void(const RateRow&)>& on_row = {});

}  // namespace spider::load
