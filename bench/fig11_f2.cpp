// Figure 11: write latencies when tolerating f = 2 faults per group.
// Additional replicas are placed in nearby regions (Ohio, California,
// London, Seoul) to obtain further fault domains.
//
// Expected shape (paper): HFT and Spider see a moderate latency increase
// (tens of ms) versus f = 1 because intra-group quorums now span a nearby
// region; Spider remains far below BFT and HFT, and stays insensitive to
// the agreement leader's availability zone.
#include "baselines/bft_system.hpp"
#include "baselines/hft_system.hpp"
#include "harness.hpp"
#include "spider/system.hpp"

namespace spider::bench {
namespace {

const std::vector<Region> kClientRegions = {Region::Virginia, Region::Oregon, Region::Ireland,
                                            Region::Tokyo};
constexpr int kClientsPerRegion = 6;
constexpr Duration kInterval = 500 * kMillisecond;
constexpr Time kWarmup = 5 * kSecond;
constexpr Time kEnd = 35 * kSecond;

template <typename MakeClient>
std::map<Region, LatencyStats> run_writes(World& world, MakeClient make_client) {
  Fleet fleet(world, kWarmup, kEnd);
  for (Region r : kClientRegions) {
    for (int i = 0; i < kClientsPerRegion; ++i) {
      fleet.add_client(make_client(Site{r, static_cast<std::uint8_t>(i % 3)}), r, OpType::Write);
    }
  }
  fleet.start(kInterval);
  world.run_until(kEnd + 2 * kSecond);
  return std::move(fleet.stats);
}

}  // namespace
}  // namespace spider::bench

int main() {
  spider::bench::json_bench_name = "fig11_f2";
  using namespace spider;
  using namespace spider::bench;
  std::printf("=== Figure 11: write latency percentiles, f = 2 ===\n\n");

  {
    // BFT with 3f+1 = 7 replicas across seven regions.
    World world(1);
    json_bench_seed = 1;
    std::vector<Site> sites = {Site{Region::Virginia, 0}, Site{Region::Oregon, 0},
                               Site{Region::Ireland, 0}, Site{Region::Tokyo, 0},
                               Site{Region::Ohio, 0},    Site{Region::California, 0},
                               Site{Region::London, 0}};
    BftConfig cfg{sites};
    cfg.f = 2;
    BftSystem sys(world, cfg);
    print_region_row("BFT f=2 leader=V",
                     run_writes(world, [&](Site s) { return sys.make_client(s); }));
  }
  {
    // HFT with 3f+1 = 7 replicas per site cluster.
    World world(2);
    json_bench_seed = 2;
    HftConfig cfg;
    cfg.f = 2;
    HftSystem sys(world, cfg);
    print_region_row("HFT f=2 leader-site=V",
                     run_writes(world, [&](Site s) { return sys.make_client(s); }));
  }
  for (std::uint32_t rot : {0u, 3u}) {
    // Spider with fa = fe = 2: agreement group of 7 (Virginia AZs + Ohio),
    // execution groups of 5 (home AZs + nearby region).
    World world(3 + rot);
    json_bench_seed = 3 + rot;
    SpiderTopology topo;
    topo.fa = 2;
    topo.fe = 2;
    topo.agreement_az_rotation = rot;
    SpiderSystem sys(world, topo);
    print_region_row("SPIDER f=2 leader=V-" + std::to_string(rot + 1),
                     run_writes(world, [&](Site s) { return sys.make_client(s); }));
  }
  return 0;
}
