// Micro-benchmark: observability overhead on a fixed Spider write workload.
//
// Tracing is out-of-band by construction — every instrumentation site is
// `if (auto* t = world.tracer())` over POD arguments, so a traced-off run
// pays one predicted branch per site and a flight-recorder (ring) run pays
// a bounded append into preallocated storage. This bench makes both claims
// measurable:
//
//   1. determinism: the same seed produces identical simulated latency
//      stats with tracing off, ring, and full — the tracer never perturbs
//      scheduling (hard failure if violated);
//   2. overhead: wall-clock of the ring-tracer run over the traced-off run
//      (median of 5), gated in CI at --gate <ratio> (1.05 = flight
//      recording costs at most 5% over the null sink).
//
// Emits BENCH_pr7.json entries (see bench_json.hpp).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <algorithm>
#include <string>
#include <vector>

#include "bench/bench_json.hpp"
#include "bench/harness.hpp"
#include "obs/trace.hpp"
#include "spider/system.hpp"

namespace spider::bench {
namespace {

constexpr std::uint64_t kSeed = 777;
constexpr Time kWarmup = 1 * kSecond;
constexpr Time kEnd = 12 * kSecond;
constexpr Duration kInterval = 40 * kMillisecond;
constexpr int kClientsPerRegion = 4;
constexpr int kReps = 5;

enum class TraceMode { kOff, kRing, kFull };

struct RunResult {
  double wall_s = 0;
  std::size_t ops = 0;
  Duration p50 = 0;
  Duration p99 = 0;
  std::size_t trace_events = 0;
};

double now_s() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

RunResult run_once(TraceMode mode) {
  const double t0 = now_s();
  World world(kSeed);
  if (mode == TraceMode::kRing) world.enable_tracing(obs::Tracer::Mode::kRing, 1 << 15);
  if (mode == TraceMode::kFull) world.enable_tracing(obs::Tracer::Mode::kFull);
  SpiderTopology topo;
  SpiderSystem sys(world, topo);

  Fleet fleet(world, kWarmup, kEnd);
  for (Region r : {Region::Virginia, Region::Oregon, Region::Ireland}) {
    for (int i = 0; i < kClientsPerRegion; ++i) {
      fleet.add_client(sys.make_client(Site{r, static_cast<std::uint8_t>(i % 3)}), r,
                       OpType::Write);
    }
  }
  fleet.start(kInterval);
  world.run_until(kEnd + kSecond);

  RunResult res;
  res.wall_s = now_s() - t0;
  // Aggregate percentiles deterministically: merge per-region histograms.
  obs::LogHistogram merged;
  for (auto& [region, s] : fleet.stats) {
    res.ops += s.count();
    merged.merge(s.histogram());
  }
  res.p50 = static_cast<Duration>(merged.percentile(50));
  res.p99 = static_cast<Duration>(merged.percentile(99));
  if (auto* t = world.tracer()) res.trace_events = t->size() + t->dropped();
  return res;
}

double median_wall(TraceMode mode, RunResult* last) {
  std::vector<double> walls;
  for (int i = 0; i < kReps; ++i) {
    *last = run_once(mode);
    walls.push_back(last->wall_s);
  }
  std::sort(walls.begin(), walls.end());
  return walls[walls.size() / 2];
}

}  // namespace
}  // namespace spider::bench

int main(int argc, char** argv) {
  using namespace spider;
  using namespace spider::bench;
  double gate = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--gate" && i + 1 < argc) gate = std::atof(argv[i + 1]);
  }

  // Determinism first: identical simulated results in every mode.
  RunResult off1 = run_once(TraceMode::kOff);
  RunResult ring1 = run_once(TraceMode::kRing);
  RunResult full1 = run_once(TraceMode::kFull);
  if (off1.ops != ring1.ops || off1.ops != full1.ops || off1.p50 != ring1.p50 ||
      off1.p50 != full1.p50 || off1.p99 != ring1.p99 || off1.p99 != full1.p99) {
    std::printf("FAIL: tracing perturbed the simulation (ops %zu/%zu/%zu, p50 %lld/%lld/%lld)\n",
                off1.ops, ring1.ops, full1.ops, static_cast<long long>(off1.p50),
                static_cast<long long>(ring1.p50), static_cast<long long>(full1.p50));
    return 1;
  }

  RunResult off{}, ring{}, full{};
  const double off_s = median_wall(TraceMode::kOff, &off);
  const double ring_s = median_wall(TraceMode::kRing, &ring);
  const double full_s = median_wall(TraceMode::kFull, &full);

  const double ring_ratio = ring_s / off_s;
  const double full_ratio = full_s / off_s;
  std::printf("spider write workload, %zu measured ops, median of %d reps\n", off.ops, kReps);
  std::printf("  tracing off (null sink): %8.3f s\n", off_s);
  std::printf("  flight recorder (ring):  %8.3f s  (%.3fx, %zu events seen)\n", ring_s,
              ring_ratio, ring.trace_events);
  std::printf("  full trace:              %8.3f s  (%.3fx, %zu events kept)\n", full_s,
              full_ratio, full.trace_events);

  bench_json("micro_obs", "off s", off_s, "s", kSeed);
  bench_json("micro_obs", "ring s", ring_s, "s", kSeed);
  bench_json("micro_obs", "full s", full_s, "s", kSeed);
  bench_json("micro_obs", "ring overhead", ring_ratio, "x", kSeed);
  bench_json("micro_obs", "full overhead", full_ratio, "x", kSeed);

  if (gate > 0.0 && ring_ratio > gate) {
    std::printf("FAIL: ring overhead %.3fx above gate %.2fx\n", ring_ratio, gate);
    return 1;
  }
  if (gate > 0.0) std::printf("OK: ring overhead %.3fx <= gate %.2fx\n", ring_ratio, gate);
  return 0;
}
