// Micro-benchmark: zero-copy multicast serialization vs the naive-copy
// reference path.
//
// Models what the transport hot path does for one multicast of a B-byte
// body to R recipients:
//   naive: per recipient, wrap [tag][body] with a fresh growing Writer
//          (the pre-optimisation ComponentHost::send_component), hand the
//          copy to the recipient, and hash the body again on arrival.
//   fast:  serialize the frame once into a refcounted Payload with a
//          size-hinted Writer, bump a refcount per recipient, and reuse
//          the memoized digest.
// The naive path is retained here as the reference the CI perf-smoke gate
// compares against (expected >= 3x, gated at --gate <x>, default off).
//
// Emits BENCH_pr5.json entries (see bench_json.hpp).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_json.hpp"
#include "common/payload.hpp"
#include "common/serde.hpp"
#include "crypto/sha256.hpp"

namespace spider::bench {
namespace {

constexpr std::uint32_t kTag = 0x02000001;
constexpr std::size_t kRecipients = 8;
constexpr std::size_t kBodyBytes = 1024;
constexpr std::size_t kRounds = 20000;
constexpr std::uint64_t kSeed = 99;

double now_s() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

Bytes make_body(std::uint64_t round) {
  Bytes b(kBodyBytes);
  std::uint64_t x = kSeed + round * 0x9e3779b97f4a7c15ULL;
  for (std::size_t i = 0; i < b.size(); ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    b[i] = static_cast<std::uint8_t>(x);
  }
  return b;
}

/// Pre-optimisation path: copy + re-wrap + re-hash per recipient.
std::uint64_t run_naive() {
  std::uint64_t sink = 0;
  for (std::size_t round = 0; round < kRounds; ++round) {
    Bytes body = make_body(round);
    for (std::size_t r = 0; r < kRecipients; ++r) {
      Writer w;  // no reserve: doubling growth, as the old wrap path
      w.u32(kTag);
      w.raw(body);
      Bytes wire = std::move(w).take();          // per-recipient allocation
      Bytes delivered = wire;                    // per-recipient in-flight copy
      Sha256Digest d = Sha256::hash(BytesView(delivered).subspan(4));  // re-hash per hop
      sink += digest_prefix(d) + delivered.size();
    }
  }
  return sink;
}

/// Zero-copy path: one frame, shared refcount, memoized digest.
std::uint64_t run_fast() {
  std::uint64_t sink = 0;
  for (std::size_t round = 0; round < kRounds; ++round) {
    Bytes body = make_body(round);
    Writer w(4 + body.size());
    w.u32(kTag);
    w.raw(body);
    Payload wire(std::move(w));
    for (std::size_t r = 0; r < kRecipients; ++r) {
      Payload delivered = wire;  // refcount bump, no copy
      Sha256Digest d = delivered.digest_of(delivered.view().subspan(4));  // memoized
      sink += digest_prefix(d) + delivered.size();
    }
  }
  return sink;
}

}  // namespace
}  // namespace spider::bench

int main(int argc, char** argv) {
  using namespace spider::bench;
  double gate = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--gate" && i + 1 < argc) gate = std::atof(argv[i + 1]);
  }

  const double total_mb = static_cast<double>(kRounds * kRecipients * kBodyBytes) / 1e6;

  // Warm-up + checksum equivalence (the two paths must do the same work).
  std::uint64_t a = run_naive();
  std::uint64_t b = run_fast();
  if (a != b) {
    std::printf("FAIL: paths disagree (naive checksum %llu, fast %llu)\n",
                static_cast<unsigned long long>(a), static_cast<unsigned long long>(b));
    return 1;
  }

  double t0 = now_s();
  run_naive();
  double naive_s = now_s() - t0;
  t0 = now_s();
  run_fast();
  double fast_s = now_s() - t0;

  double naive_mbps = total_mb / naive_s;
  double fast_mbps = total_mb / fast_s;
  double speedup = naive_s / fast_s;
  std::printf("multicast serialize+deliver, %zu recipients x %zu B x %zu rounds\n", kRecipients,
              kBodyBytes, kRounds);
  std::printf("  naive-copy reference: %8.1f MB/s\n", naive_mbps);
  std::printf("  zero-copy payload:    %8.1f MB/s\n", fast_mbps);
  std::printf("  speedup:              %8.2fx\n", speedup);

  bench_json("micro_serde", "naive-copy MB/s", naive_mbps, "MB/s", kSeed);
  bench_json("micro_serde", "zero-copy MB/s", fast_mbps, "MB/s", kSeed);
  bench_json("micro_serde", "speedup", speedup, "x", kSeed);

  if (gate > 0.0 && speedup < gate) {
    std::printf("FAIL: speedup %.2fx below gate %.2fx\n", speedup, gate);
    return 1;
  }
  if (gate > 0.0) std::printf("OK: speedup %.2fx >= gate %.2fx\n", speedup, gate);
  return 0;
}
