// Figure 10: adaptability — 50 s into the run, average write (10a) and
// weakly consistent read (10b) latencies are tracked; at t = 80 s a new
// client site (Sao Paulo) joins. BFT/BFT-WV/HFT serve the new clients from
// existing replicas; Spider spins up a new execution group in Sao Paulo.
//
// Expected shape (paper): all systems' *average* write latency jumps when
// the distant clients join (Sao Paulo is far from everything); only Spider
// keeps the new clients' weak reads local (no jump in 10b), and BFT-WV does
// not beat BFT despite the extra replica.
#include "baselines/bft_system.hpp"
#include "baselines/hft_system.hpp"
#include "harness.hpp"
#include "spider/system.hpp"

namespace spider::bench {
namespace {

const std::vector<Region> kInitialRegions = {Region::Virginia, Region::Oregon, Region::Ireland,
                                             Region::Tokyo};
constexpr int kClientsPerRegion = 4;
constexpr Duration kInterval = 500 * kMillisecond;
constexpr Time kStartMeasure = 50 * kSecond;
constexpr Time kJoin = 80 * kSecond;
constexpr Time kEnd = 110 * kSecond;

struct Series {
  TimeSeries writes{kSecond};
  TimeSeries weak_reads{kSecond};
};

void print_series(const std::string& label, const Series& s) {
  auto dump = [&](const char* kind, const TimeSeries& ts) {
    std::printf("%s %s:", label.c_str(), kind);
    for (const auto& p : ts.points()) {
      if (p.bucket_start < kStartMeasure) continue;
      std::printf(" %lld:%0.0f", static_cast<long long>(p.bucket_start / kSecond), p.average);
    }
    std::printf("\n");
  };
  dump("write(avg ms per s)", s.writes);
  dump("weak (avg ms per s)", s.weak_reads);

  // Trajectory entry: average write latency over the measured window.
  double sum = 0;
  std::size_t n = 0;
  for (const auto& p : s.writes.points()) {
    if (p.bucket_start < kStartMeasure) continue;
    sum += p.average;
    ++n;
  }
  if (n > 0) {
    bench_json("fig10_adaptability", label + " write avg", sum / static_cast<double>(n), "ms",
               json_bench_seed);
  }
}

/// Runs the timeline against any system; `late_client` builds a Sao Paulo
/// client (possibly after system-specific preparation at kJoin).
template <typename MakeClient>
Series run_timeline(World& world, MakeClient make_client,
                    std::function<void()> prepare_join = {}) {
  Series series;
  Fleet writes(world, kStartMeasure, kEnd);
  Fleet weak(world, kStartMeasure, kEnd);
  writes.timeline = &series.writes;
  weak.timeline = &series.weak_reads;

  for (Region r : kInitialRegions) {
    for (int i = 0; i < kClientsPerRegion; ++i) {
      writes.add_client(make_client(Site{r, static_cast<std::uint8_t>(i % 3)}), r, OpType::Write);
      weak.add_client(make_client(Site{r, static_cast<std::uint8_t>(i % 3)}), r,
                      OpType::WeakRead);
    }
  }
  writes.start(kInterval);
  weak.start(kInterval);

  // At t = kJoin - 2s run the system-specific preparation (Spider: AddGroup),
  // and at kJoin start the Sao Paulo clients.
  if (prepare_join) {
    world.queue().schedule_at(kJoin - 2 * kSecond, prepare_join);
  }
  world.queue().schedule_at(kJoin, [&] {
    for (int i = 0; i < kClientsPerRegion; ++i) {
      writes.add_client(make_client(Site{Region::SaoPaulo, static_cast<std::uint8_t>(i % 3)}),
                        Region::SaoPaulo, OpType::Write);
      weak.add_client(make_client(Site{Region::SaoPaulo, static_cast<std::uint8_t>(i % 3)}),
                      Region::SaoPaulo, OpType::WeakRead);
    }
    writes.start_new_entries(kInterval);
    weak.start_new_entries(kInterval);
  });

  world.run_until(kEnd + 2 * kSecond);
  return series;
}

}  // namespace
}  // namespace spider::bench

int main() {
  using namespace spider;
  using namespace spider::bench;
  std::printf("=== Figure 10: impact of a new client site (Sao Paulo at t=80 s) ===\n");
  std::printf("series format: <second>:<avg latency ms>\n\n");

  {
    World world(1);
    json_bench_seed = 1;
    std::vector<Site> sites = {Site{Region::Virginia, 0}, Site{Region::Oregon, 0},
                               Site{Region::Ireland, 0}, Site{Region::Tokyo, 0}};
    BftSystem sys(world, BftConfig{sites});
    Series s = run_timeline(world, [&](Site site) { return sys.make_client(site); });
    print_series("BFT", s);
  }
  {
    // BFT-WV: five replicas (one per client region incl. Sao Paulo),
    // weights 2 on Virginia and Oregon (the paper's best assignment).
    World world(2);
    json_bench_seed = 2;
    std::vector<Site> sites = {Site{Region::Virginia, 0}, Site{Region::Oregon, 0},
                               Site{Region::Ireland, 0}, Site{Region::Tokyo, 0},
                               Site{Region::SaoPaulo, 0}};
    BftConfig cfg{sites};
    cfg.weights = {2, 2, 1, 1, 1};
    cfg.quorum_weight = 5;
    BftSystem sys(world, cfg);
    Series s = run_timeline(world, [&](Site site) { return sys.make_client(site); });
    print_series("BFT-WV", s);
  }
  {
    World world(3);
    json_bench_seed = 3;
    HftSystem sys(world, HftConfig{});
    Series s = run_timeline(world, [&](Site site) { return sys.make_client(site); });
    print_series("HFT", s);
  }
  {
    World world(4);
    json_bench_seed = 4;
    SpiderSystem sys(world, SpiderTopology{});
    Series s = run_timeline(
        world, [&](Site site) { return sys.make_client(site); },
        [&] { sys.add_group(Region::SaoPaulo); });
    print_series("SPIDER", s);
  }
  return 0;
}
