// Figure 9b-d: IRMC-RC vs IRMC-SC between Virginia and Tokyo under a
// saturating message stream, for message sizes 256 B .. 16 KiB:
//   9b  throughput (delivered requests/s)
//   9c  CPU utilization of sender and receiver endpoints
//   9d  WAN and LAN data transfer (MB/s)
//
// Expected shape (paper): RC achieves higher maximum throughput (senders
// sign once and do not verify certificates); SC transfers far less data
// over the WAN (one certificate per receiver instead of ns copies) at the
// cost of extra sender CPU (share verification + certificate signing) and
// intra-region LAN traffic.
#include <cstdio>
#include <string>

#include "bench/bench_json.hpp"

#include "irmc/rc.hpp"
#include "irmc/sc.hpp"
#include "sim/world.hpp"

namespace spider::bench {
namespace {

struct Result {
  double throughput = 0;     // delivered msgs/s at receiver 0
  double sender_cpu = 0;     // busy % of the busiest sender endpoint
  double receiver_cpu = 0;   // busy % of the busiest receiver endpoint
  double wan_mbps = 0;       // aggregate WAN MB/s
  double lan_mbps = 0;       // aggregate LAN MB/s
};

Result run_channel(IrmcKind kind, std::size_t msg_size) {
  World world(42);
  constexpr std::uint32_t kNs = 4, kNr = 3;
  constexpr Position kCapacity = 2048;
  constexpr Time kWarmup = 2 * kSecond;
  constexpr Time kEnd = 8 * kSecond;

  IrmcConfig cfg;
  std::vector<std::unique_ptr<ComponentHost>> sender_hosts, receiver_hosts;
  for (std::uint32_t i = 0; i < kNs; ++i) {
    sender_hosts.push_back(std::make_unique<ComponentHost>(
        world, world.allocate_id(), Site{Region::Virginia, static_cast<std::uint8_t>(i % 4)}));
    cfg.senders.push_back(sender_hosts.back()->id());
  }
  for (std::uint32_t i = 0; i < kNr; ++i) {
    receiver_hosts.push_back(std::make_unique<ComponentHost>(
        world, world.allocate_id(), Site{Region::Tokyo, static_cast<std::uint8_t>(i % 3)}));
    cfg.receivers.push_back(receiver_hosts.back()->id());
  }
  cfg.fs = 1;
  cfg.fr = 1;
  cfg.capacity = kCapacity;
  cfg.channel_tag = tags::kIrmc | 1;

  std::vector<std::unique_ptr<IrmcSenderEndpoint>> senders;
  std::vector<std::unique_ptr<IrmcReceiverEndpoint>> receivers;
  for (auto& h : sender_hosts) senders.push_back(make_irmc_sender(kind, *h, cfg));
  for (auto& h : receiver_hosts) receivers.push_back(make_irmc_receiver(kind, *h, cfg));

  Bytes payload(msg_size, 0x7e);

  // Sender pumps: keep the window full on subchannel 1.
  struct Pump {
    Position next = 1;
  };
  std::vector<Pump> pumps(kNs);
  std::function<void(std::size_t)> pump = [&](std::size_t i) {
    IrmcSenderEndpoint& tx = *senders[i];
    while (pumps[i].next <= tx.window_start(1) + kCapacity - 1) {
      tx.send(1, pumps[i].next, payload, {});
      ++pumps[i].next;
    }
  };
  // Re-pump periodically (windows move as receivers consume).
  std::function<void()> tick = [&] {
    for (std::size_t i = 0; i < kNs; ++i) pump(i);
    world.queue().schedule_after(2 * kMillisecond, tick);
  };
  tick();

  // Receiver chains: consume in order, move the window every 16 messages.
  std::vector<std::uint64_t> delivered(kNr, 0);
  std::uint64_t measured = 0;
  std::function<void(std::size_t, Position)> consume = [&](std::size_t i, Position p) {
    receivers[i]->receive(1, p, [&, i, p](RecvResult res) {
      if (!res.too_old) {
        ++delivered[i];
        if (i == 0 && world.now() >= kWarmup && world.now() < kEnd) ++measured;
        if (p % 128 == 0) receivers[i]->move_window(1, p + 1);
      }
      consume(i, res.too_old ? res.window_start : p + 1);
    });
  };
  for (std::size_t i = 0; i < kNr; ++i) consume(i, 1);

  world.run_until(kWarmup);
  // Reset CPU and byte accounting at the start of the measurement window.
  for (auto& h : sender_hosts) h->reset_busy_time();
  for (auto& h : receiver_hosts) h->reset_busy_time();
  world.net().reset_stats();
  world.run_until(kEnd);

  double window_s = to_sec(kEnd - kWarmup);
  Result out;
  out.throughput = static_cast<double>(measured) / window_s;
  for (auto& h : sender_hosts) {
    out.sender_cpu = std::max(out.sender_cpu,
                              100.0 * static_cast<double>(h->busy_time()) /
                                  static_cast<double>(kEnd - kWarmup));
  }
  for (auto& h : receiver_hosts) {
    out.receiver_cpu = std::max(out.receiver_cpu,
                                100.0 * static_cast<double>(h->busy_time()) /
                                    static_cast<double>(kEnd - kWarmup));
  }
  out.sender_cpu = std::min(out.sender_cpu, 100.0);
  out.receiver_cpu = std::min(out.receiver_cpu, 100.0);
  out.wan_mbps = static_cast<double>(world.net().stats().wan_bytes) / 1e6 / window_s;
  out.lan_mbps = static_cast<double>(world.net().stats().lan_bytes) / 1e6 / window_s;
  return out;
}

}  // namespace
}  // namespace spider::bench

int main() {
  using namespace spider;
  using namespace spider::bench;
  std::printf("=== Figure 9b-d: IRMC implementations, Virginia -> Tokyo ===\n");
  std::printf("%-8s %-6s %12s %12s %12s %12s %12s\n", "variant", "size", "msgs/s",
              "sndCPU%", "rcvCPU%", "WAN MB/s", "LAN MB/s");
  for (IrmcKind kind : {IrmcKind::ReceiverCollect, IrmcKind::SenderCollect}) {
    for (std::size_t size : {256u, 1024u, 4096u, 16384u}) {
      Result r = run_channel(kind, size);
      const char* variant = kind == IrmcKind::ReceiverCollect ? "IRMC-RC" : "IRMC-SC";
      std::printf("%-8s %-6zu %12.0f %12.1f %12.1f %12.2f %12.2f\n", variant, size, r.throughput,
                  r.sender_cpu, r.receiver_cpu, r.wan_mbps, r.lan_mbps);
      std::string key = std::string(variant) + " " + std::to_string(size) + "B";
      bench_json("fig09bcd_irmc", key + " msgs/s", r.throughput, "msgs/s", 42);
      bench_json("fig09bcd_irmc", key + " wan", r.wan_mbps, "MB/s", 42);
    }
  }
  return 0;
}
