// Micro-benchmark: flat 4-ary heap EventQueue vs the std::map-based
// reference scheduler.
//
// The reference below is the pre-optimisation EventQueue verbatim: an
// ordered map of (time, id) -> handler plus an id -> time index, two
// node allocations and two tree walks per event, O(log n) cancel. The
// production queue replaces it with a flat 4-ary min-heap (amortized O(1)
// push for monotone arrivals, O(1) tombstone cancel, compaction when more
// than half the heap is dead). Both run the same deterministic
// schedule/cancel/fire storm; the CI perf-smoke gate compares them
// (expected >= 3x, gated at --gate <x>, default off).
//
// Emits BENCH_pr5.json entries (see bench_json.hpp).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_json.hpp"
#include "sim/event_queue.hpp"

namespace spider::bench {
namespace {

constexpr std::size_t kEvents = 400000;
// Standing far-future timers (armed view-change / announce timeouts in the
// simulator): they deepen the pending set without firing during the storm.
constexpr std::size_t kStanding = 30000;
constexpr std::uint64_t kSeed = 4242;

/// Pre-optimisation scheduler, retained as the perf reference.
class MapEventQueue {
 public:
  using Fn = std::function<void()>;
  using EventId = std::uint64_t;

  EventId schedule_at(Time at, Fn fn) {
    if (at < now_) at = now_;
    EventId id = next_id_++;
    events_.emplace(Key{at, id}, std::move(fn));
    index_.emplace(id, at);
    return id;
  }
  void cancel(EventId id) {
    auto it = index_.find(id);
    if (it == index_.end()) return;
    events_.erase(Key{it->second, id});
    index_.erase(it);
  }
  bool run_next() {
    if (events_.empty()) return false;
    auto it = events_.begin();
    now_ = it->first.first;
    Fn fn = std::move(it->second);
    index_.erase(it->first.second);
    events_.erase(it);
    fn();
    return true;
  }
  [[nodiscard]] Time now() const { return now_; }

 private:
  using Key = std::pair<Time, EventId>;
  Time now_ = 0;
  EventId next_id_ = 1;
  std::map<Key, Fn> events_;
  std::map<EventId, Time> index_;
};

double now_s() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

/// Deterministic timer-churn storm, representative of the simulator: a
/// rolling window of pending timers; each fired event schedules a few
/// successors and cancels one of them (retransmission timers being armed
/// and disarmed), so cancels hit both queues continuously.
template <typename Queue>
std::uint64_t storm(Queue& q) {
  std::uint64_t fired = 0;
  std::uint64_t x = kSeed;
  auto rnd = [&x] {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  };
  std::uint64_t cancellable = 0;
  std::function<void()> tick = [&] {
    ++fired;
    if (fired >= kEvents) return;
    q.schedule_at(q.now() + 1 + static_cast<Time>(rnd() % 64), tick);
    // Arm-and-disarm: a decoy timer cancelled on the spot half the time.
    cancellable = q.schedule_at(q.now() + 128 + static_cast<Time>(rnd() % 512), [&fired] { ++fired; });
    if (rnd() % 2 == 0) q.cancel(cancellable);
  };
  for (std::size_t i = 0; i < kStanding; ++i) {
    q.schedule_at(static_cast<Time>(1u << 30) + static_cast<Time>(rnd() % kStanding),
                  [&fired] { ++fired; });
  }
  for (int i = 0; i < 16; ++i) q.schedule_at(static_cast<Time>(i), tick);
  while (fired < kEvents && q.run_next()) {
  }
  return fired;
}

}  // namespace
}  // namespace spider::bench

int main(int argc, char** argv) {
  using namespace spider;
  using namespace spider::bench;
  double gate = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--gate" && i + 1 < argc) gate = std::atof(argv[i + 1]);
  }

  // Warm-up + equivalence: both queues fire the same number of events.
  std::uint64_t a, b;
  {
    MapEventQueue mq;
    a = storm(mq);
    EventQueue hq;
    b = storm(hq);
  }
  if (a != b) {
    std::printf("FAIL: queues fired different event counts (%llu vs %llu)\n",
                static_cast<unsigned long long>(a), static_cast<unsigned long long>(b));
    return 1;
  }

  double t0 = now_s();
  {
    MapEventQueue mq;
    storm(mq);
  }
  double map_s = now_s() - t0;
  t0 = now_s();
  {
    EventQueue hq;
    storm(hq);
  }
  double heap_s = now_s() - t0;

  double map_eps = static_cast<double>(kEvents) / map_s;
  double heap_eps = static_cast<double>(kEvents) / heap_s;
  double speedup = map_s / heap_s;
  std::printf("timer churn, %zu fired events (schedule + 50%% cancel storm)\n", kEvents);
  std::printf("  std::map reference: %10.0f events/s\n", map_eps);
  std::printf("  flat 4-ary heap:    %10.0f events/s\n", heap_eps);
  std::printf("  speedup:            %10.2fx\n", speedup);

  bench_json("micro_eventqueue", "map events/s", map_eps, "events/s", kSeed);
  bench_json("micro_eventqueue", "heap events/s", heap_eps, "events/s", kSeed);
  bench_json("micro_eventqueue", "speedup", speedup, "x", kSeed);

  if (gate > 0.0 && speedup < gate) {
    std::printf("FAIL: speedup %.2fx below gate %.2fx\n", speedup, gate);
    return 1;
  }
  if (gate > 0.0) std::printf("OK: speedup %.2fx >= gate %.2fx\n", speedup, gate);
  return 0;
}
