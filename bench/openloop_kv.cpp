// Open-loop KV load: latency-vs-throughput curves and saturation knees.
//
// Walks a Poisson offered-rate ladder over the {1-shard, 4-shard} x
// {batch 1, batch 16} grid. Unlike the closed-loop figure benches, the
// arrival process never waits for replies, so each curve shows the real
// queueing behaviour: flat sojourn latency while the deployment keeps up,
// then the knee — p99 blowing past the low-load baseline or goodput
// falling off the offered rate — once the ordered path saturates. Rows
// land on stdout and in the BENCH_pr8.json trajectory (p50/p99/p999
// sourced from the registry histograms the driver records into).
//
//   --sweep        run the rate sweep (default; flag kept for scripts)
//   --smoke        short ladder + small pool (CI-sized; threads=1 grid)
//   --gate         exit 1 unless every config has a knee and its low-load
//                  p50 stays inside the sanity band
//   --seed N       world seed (default 42); same seed => byte-identical rows
//   --threads N    pin every grid point to N runtime threads (default: the
//                  grid walks threads {1, 4} on the 4-shard points; rows are
//                  byte-identical at every thread count — threading changes
//                  wall-clock time only)
//   --loopback     drive a real-socket deployment (UDP + framed TCP via
//                  net::LoopbackTransport): single-shard grid, short ladder,
//                  wall-clock windows. Rows are not byte-deterministic, but
//                  modeled CPU still bounds throughput, so the knee gate
//                  stays meaningful.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_json.hpp"
#include "load/sweep.hpp"

namespace {

constexpr const char* kTrajectory = "BENCH_pr8.json";

// Low-load sanity band for the gate: the first ladder point's p50 sojourn
// must look like an unloaded ordered write over the short-WAN deployment —
// not sub-millisecond (nothing real committed) and not into the retransmit
// regime.
constexpr double kLowLoadP50MinUs = 1'000;
constexpr double kLowLoadP50MaxUs = 200'000;

// Loopback band: the wire is a real 127.0.0.1 hop (microseconds) instead of
// the modeled short-WAN links, so an unloaded ordered write is dominated by
// the modeled crypto/processing charges alone — faster than the sim's
// low-load p50, but still far from zero.
constexpr double kLoopbackP50MinUs = 200;
constexpr double kLoopbackP50MaxUs = 100'000;

struct GridPoint {
  std::uint32_t shards;
  std::uint64_t max_batch;
  unsigned threads;
};

std::string grid_label(const GridPoint& g) {
  return "shards=" + std::to_string(g.shards) +
         " batch=" + std::to_string(g.max_batch) +
         " threads=" + std::to_string(g.threads);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spider;
  using namespace spider::load;

  bool smoke = false;
  bool gate = false;
  bool loopback = false;
  std::uint64_t seed = 42;
  unsigned force_threads = 0;  // 0 = grid default
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--gate") == 0) gate = true;
    else if (std::strcmp(argv[i], "--loopback") == 0) loopback = true;
    else if (std::strcmp(argv[i], "--sweep") == 0) continue;  // default mode
    else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      force_threads = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else {
      std::printf(
          "usage: %s [--sweep] [--smoke] [--gate] [--loopback] [--seed N] [--threads N]\n",
          argv[0]);
      return 2;
    }
  }

  OpenLoopProfile profile;
  profile.clients = smoke ? 512 : 2048;
  profile.measure = smoke ? 1 * kSecond : 2 * kSecond;
  std::vector<double> rates =
      smoke ? std::vector<double>{100, 400, 1600, 6400, 12800, 25600}
            : std::vector<double>{50,   100,  200,  400,   800,
                                  1600, 3200, 6400, 12800, 25600};

  // Thread dimension on the 4-shard points, where the parallel runtime has
  // per-shard domains to spread: same rows, less wall time. Smoke keeps the
  // CI run short with a threads=1 grid (prefetch dedup still on).
  std::vector<GridPoint> grid =
      smoke ? std::vector<GridPoint>{{1, 1, 1}, {1, 16, 1}, {4, 1, 1}, {4, 16, 1}}
            : std::vector<GridPoint>{{1, 1, 1}, {1, 16, 1}, {4, 1, 1},
                                     {4, 16, 1}, {4, 1, 4}, {4, 16, 4}};
  if (force_threads > 0) {
    grid = {{1, 1, force_threads}, {1, 16, force_threads},
            {4, 1, force_threads}, {4, 16, force_threads}};
  }

  if (loopback) {
    // Wall-clock windows: every virtual microsecond of warmup/measure/drain
    // costs a real one, so keep the deployment small and the ladder short.
    // The knee still falls inside the ladder because the modeled crypto
    // costs cap the ordered path at the same per-op budget as in the sim.
    grid = {{1, 1, 0}};
    rates = {400, 1600, 6400, 25600};
    profile.clients = 64;
    profile.warmup = 300 * kMillisecond;
    profile.measure = 500 * kMillisecond;
    profile.drain = 1500 * kMillisecond;
  }

  std::printf("Open-loop KV sweep (%zu clients, Zipf theta=%.2f, seed %llu%s%s)\n",
              profile.clients, profile.zipf_theta,
              static_cast<unsigned long long>(seed), smoke ? ", smoke" : "",
              loopback ? ", loopback sockets" : "");

  bool gate_ok = true;
  for (const GridPoint& g : grid) {
    SweepConfig cfg;
    cfg.shards = g.shards;
    cfg.max_batch = g.max_batch;
    cfg.threads = g.threads;
    cfg.rates = rates;
    cfg.seed = seed;
    cfg.profile = profile;
    cfg.loopback = loopback;
    // Smoke stops right at the knee; the full sweep runs one confirmation
    // point into the collapse region (the expensive part of the curve).
    cfg.points_past_knee = smoke ? 0 : 1;

    const std::string label = grid_label(g);
    SweepResult res = run_sweep(cfg, [&](const RateRow& row) {
      std::printf("%s\n", row_text(g.shards, g.max_batch, g.threads, row).c_str());
      std::fflush(stdout);
      const std::string key = label + " rate=" + std::to_string(static_cast<long long>(row.offered));
      const OpenLoopResult& r = row.result;
      spider::bench::bench_json("openloop_kv", key + " goodput", r.goodput, "ops/s", seed,
                                kTrajectory);
      spider::bench::bench_json("openloop_kv", key + " p50",
                                static_cast<double>(r.p50_us), "us", seed, kTrajectory);
      spider::bench::bench_json("openloop_kv", key + " p99",
                                static_cast<double>(r.p99_us), "us", seed, kTrajectory);
      spider::bench::bench_json("openloop_kv", key + " p999",
                                static_cast<double>(r.p999_us), "us", seed, kTrajectory);
    });

    if (res.knee_rate()) {
      std::printf("%s knee rate=%.0f ops/s\n", label.c_str(), *res.knee_rate());
      spider::bench::bench_json("openloop_kv", label + " knee rate", *res.knee_rate(),
                                "ops/s", seed, kTrajectory);
    } else {
      std::printf("%s knee not reached within ladder\n", label.c_str());
    }

    const double low_p50 = static_cast<double>(res.rows.front().result.p50_us);
    const double p50_min = loopback ? kLoopbackP50MinUs : kLowLoadP50MinUs;
    const double p50_max = loopback ? kLoopbackP50MaxUs : kLowLoadP50MaxUs;
    if (!res.knee_index) {
      std::printf("GATE: %s has no saturation knee inside the ladder\n", label.c_str());
      gate_ok = false;
    }
    if (low_p50 < p50_min || low_p50 > p50_max) {
      std::printf("GATE: %s low-load p50 %.0f us outside [%.0f, %.0f]\n", label.c_str(),
                  low_p50, p50_min, p50_max);
      gate_ok = false;
    }
  }

  if (gate) {
    if (!gate_ok) {
      std::printf("FAIL: open-loop gate violated\n");
      return 1;
    }
    std::printf("OK: every config has a knee and a sane low-load baseline\n");
  }
  return 0;
}
