// google-benchmark microbenchmarks for the crypto substrate (real wall
// time, not simulated time): SHA-256, HMAC, bignum and RSA hot paths.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "crypto/hmac.hpp"
#include "crypto/provider.hpp"
#include "crypto/rsa.hpp"

namespace spider {
namespace {

void BM_Sha256(benchmark::State& state) {
  Bytes data(static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384)->Arg(262144);

void BM_HmacSha256(benchmark::State& state) {
  Bytes key(32, 0x11);
  Bytes data(static_cast<std::size_t>(state.range(0)), 0xcd);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmac_sha256(key, data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(200)->Arg(4096);

void BM_BigIntMul(benchmark::State& state) {
  Rng rng(1);
  BigInt a = BigInt::random_bits(rng, static_cast<std::size_t>(state.range(0)));
  BigInt b = BigInt::random_bits(rng, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BigInt::mul(a, b));
  }
}
BENCHMARK(BM_BigIntMul)->Arg(512)->Arg(1024)->Arg(2048);

void BM_BigIntDivMod(benchmark::State& state) {
  Rng rng(2);
  BigInt a = BigInt::random_bits(rng, 2048);
  BigInt b = BigInt::random_bits(rng, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BigInt::divmod(a, b));
  }
}
BENCHMARK(BM_BigIntDivMod)->Arg(512)->Arg(1024);

void BM_RsaSign(benchmark::State& state) {
  Rng rng(3);
  RsaKeyPair kp = rsa_generate(rng, static_cast<std::size_t>(state.range(0)));
  Bytes msg(200, 0x42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rsa_sign(kp.priv, msg));
  }
}
BENCHMARK(BM_RsaSign)->Arg(512)->Arg(1024)->Unit(benchmark::kMicrosecond);

void BM_RsaVerify(benchmark::State& state) {
  Rng rng(4);
  RsaKeyPair kp = rsa_generate(rng, static_cast<std::size_t>(state.range(0)));
  Bytes msg(200, 0x42);
  Bytes sig = rsa_sign(kp.priv, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rsa_verify(kp.pub, msg, sig));
  }
}
BENCHMARK(BM_RsaVerify)->Arg(512)->Arg(1024)->Unit(benchmark::kMicrosecond);

void BM_FastCryptoSign(benchmark::State& state) {
  FastCrypto fc(1);
  Bytes msg(200, 0x42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fc.sign(1, msg));
  }
}
BENCHMARK(BM_FastCryptoSign);

}  // namespace
}  // namespace spider

BENCHMARK_MAIN();
