// Aggregate write-throughput scaling across shard counts {1, 2, 4}.
//
// Fixed per-shard load: each grid point runs kClientsPerShard routed
// clients per shard (keys hash uniformly over the ShardMap, so every
// shard sees the same offered load), all saturating the ordered-write
// path. A single Spider core is sequencer-bound — its agreement group
// signs one commit-channel message per execution group per consensus
// instance — so standing up N independent cores behind the keyspace
// router must scale aggregate throughput near-linearly. This is the
// repo's sharding acceptance check: it fails (exit 1) if 4 shards stop
// delivering >1.5x the single-shard throughput.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "shard/sharded_system.hpp"

namespace spider::bench {
namespace {

double run_one(std::uint32_t shards, int clients_per_shard) {
  World world(4242);  // same seed across all grid points
  ShardedTopology topo;
  topo.shards = shards;
  // Two short-WAN execution groups per shard (as in micro_batching): the
  // request path stays cheap, the per-core agreement group is the ceiling.
  topo.base.exec_regions = {Region::Virginia, Region::Ohio};
  topo.base.commit_capacity = 128;
  topo.base.ag_win = 128;
  ShardedSpiderSystem sys(world, topo);

  const Time measure_from = 2 * kSecond;
  const Time stop_at = 6 * kSecond;
  const int total_clients = clients_per_shard * static_cast<int>(shards);

  struct Ctx {
    std::unique_ptr<ShardedClient> client;
    std::uint64_t key_seq = 0;
  };
  std::vector<Ctx> ctxs;
  for (int i = 0; i < total_clients; ++i) {
    Region r = (i % 2 == 0) ? Region::Virginia : Region::Ohio;
    ctxs.push_back(Ctx{sys.make_client(Site{r, static_cast<std::uint8_t>(i % 3)}), 0});
  }

  // Open-loop load well above a single core's service rate (cf.
  // micro_batching): completed ops measure the service rate, not the
  // generator. Keys hash across shards, so routing spreads the work.
  std::uint64_t completed = 0;
  const Duration interval = 2 * kMillisecond;
  std::function<void(std::size_t, Duration)> schedule = [&](std::size_t i, Duration delay) {
    world.queue().schedule_after(delay, [&, i] {
      if (world.now() >= stop_at) return;
      Ctx& c = ctxs[i];
      std::string key = "c" + std::to_string(i) + "-k" + std::to_string(c.key_seq++ % 32);
      c.client->put(key, payload_200b(), [&](Bytes, Duration) {
        if (world.now() >= measure_from && world.now() < stop_at) ++completed;
      });
      schedule(i, interval);
    });
  };
  for (std::size_t i = 0; i < ctxs.size(); ++i) {
    schedule(i, static_cast<Duration>(i) * interval / static_cast<Duration>(ctxs.size() + 1));
  }
  world.run_until(stop_at);

  return static_cast<double>(completed) /
         (static_cast<double>(stop_at - measure_from) / kSecond);
}

}  // namespace
}  // namespace spider::bench

int main() {
  using namespace spider;
  using namespace spider::bench;

  const int kClientsPerShard = 32;
  std::printf("Sharded Spider write throughput (fixed per-shard load: %d clients/shard)\n",
              kClientsPerShard);
  std::printf("%-8s %14s %10s\n", "shards", "agg writes/s", "scaling");

  double base = 0;
  double at4 = 0;
  for (std::uint32_t shards : {1u, 2u, 4u}) {
    double ops = run_one(shards, kClientsPerShard);
    if (shards == 1) base = ops;
    if (shards == 4) at4 = ops;
    std::printf("%-8u %14.0f %9.2fx\n", shards, ops, base > 0 ? ops / base : 0.0);
    bench_json("micro_sharding", "agg writes/s shards=" + std::to_string(shards), ops, "ops/s",
               4242);
  }

  if (at4 <= 1.5 * base) {
    std::printf("FAIL: 4 shards (%.0f ops/s) not >1.5x 1 shard (%.0f ops/s)\n", at4, base);
    return 1;
  }
  std::printf("OK: sharding speedup %.2fx at 4 shards\n", at4 / base);
  return 0;
}
