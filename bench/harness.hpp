// Shared workload driver for the figure-reproduction benchmarks.
//
// Emulates the paper's client population: a set of clients per region
// issuing fixed-size KV operations at a fixed rate against any system that
// serves SpiderClient (Spider, BFT, BFT-WV, HFT). Latencies are recorded
// per region, with a warm-up cutoff.
#pragma once

#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "app/kvstore.hpp"
#include "bench/bench_json.hpp"
#include "sim/stats.hpp"
#include "sim/world.hpp"
#include "spider/client.hpp"

namespace spider::bench {

enum class OpType { Write, StrongRead, WeakRead };

inline const char* op_name(OpType t) {
  switch (t) {
    case OpType::Write: return "write";
    case OpType::StrongRead: return "strong-read";
    case OpType::WeakRead: return "weak-read";
  }
  return "?";
}

/// Value padding so requests are ~200 bytes on the wire (paper §5).
inline Bytes payload_200b() { return Bytes(160, 0x42); }

struct Fleet {
  struct Entry {
    std::unique_ptr<SpiderClient> client;
    Region region;
    OpType op;
    std::uint64_t key_seq = 0;
  };

  World& world;
  std::vector<Entry> entries;
  Time measure_from = 0;
  Time stop_at = 0;
  std::map<Region, LatencyStats> stats;           // per-region latencies
  /// Ops whose *completion* falls inside [measure_from, stop_at): the
  /// service-rate counter for throughput sweeps (latency stats stay gated
  /// on issue time so warm-up ops never pollute them).
  std::uint64_t completed = 0;
  TimeSeries* timeline = nullptr;                 // optional (Figure 10)
  std::function<bool(const Entry&)> active = {};  // optional gating

  Fleet(World& w, Time measure_from_, Time stop_at_)
      : world(w), measure_from(measure_from_), stop_at(stop_at_) {}

  void add_client(std::unique_ptr<SpiderClient> c, Region r, OpType op) {
    entries.push_back(Entry{std::move(c), r, op});
  }

  /// Starts every client issuing one op per `interval`, staggered.
  void start(Duration interval) {
    for (std::size_t i = started_; i < entries.size(); ++i) {
      Duration offset = static_cast<Duration>(i) * interval / static_cast<Duration>(entries.size() + 1);
      schedule_next(i, offset, interval);
    }
    started_ = entries.size();
  }

  /// Starts only entries added since the last start() (Figure 10: clients
  /// joining mid-run).
  void start_new_entries(Duration interval) { start(interval); }

 private:
  std::size_t started_ = 0;
  void schedule_next(std::size_t i, Duration delay, Duration interval) {
    world.queue().schedule_after(delay, [this, i, interval] {
      if (world.now() >= stop_at) return;
      Entry& e = entries[i];
      if (active && !active(e)) {
        schedule_next(i, interval, interval);
        return;
      }
      Time issued = world.now();
      auto record = [this, i, issued](Bytes, Duration lat) {
        Entry& en = entries[i];
        if (world.now() >= measure_from && world.now() < stop_at) ++completed;
        if (issued >= measure_from) {
          stats[en.region].add(lat);
          if (timeline) timeline->add(issued, to_ms(lat));
        }
      };
      std::string key = "c" + std::to_string(i) + "-k" + std::to_string(e.key_seq++ % 32);
      switch (e.op) {
        case OpType::Write: e.client->write(kv_put(key, payload_200b()), record); break;
        case OpType::StrongRead: e.client->strong_read(kv_get(key), record); break;
        case OpType::WeakRead: e.client->weak_read(kv_get(key), record); break;
      }
      schedule_next(i, interval, interval);
    });
  }
};

/// When set (each bench main names itself), print_region_row also appends
/// its p50/p90 values to the machine-readable trajectory (bench_json.hpp).
/// Benches set json_bench_seed alongside each World they construct so the
/// trajectory entries record the seed the row actually ran with.
inline std::string json_bench_name;
inline std::uint64_t json_bench_seed = 0;

/// Prints one figure row: p50/p90 per region.
inline void print_region_row(const std::string& label, const std::map<Region, LatencyStats>& stats) {
  std::printf("%-28s", label.c_str());
  for (const auto& [region, s] : stats) {
    std::printf("  %s: p50=%6.1f ms p90=%6.1f ms (n=%zu)", region_code(region),
                to_ms(s.median()), to_ms(s.p90()), s.count());
    if (!json_bench_name.empty()) {
      std::string key = label + " " + region_code(region);
      bench_json(json_bench_name, key + " p50", to_ms(s.median()), "ms", json_bench_seed);
      bench_json(json_bench_name, key + " p90", to_ms(s.p90()), "ms", json_bench_seed);
      bench_json(json_bench_name, key + " p99", to_ms(s.p99()), "ms", json_bench_seed);
      bench_json(json_bench_name, key + " p999", to_ms(s.p999()), "ms", json_bench_seed);
    }
  }
  std::printf("\n");
}

}  // namespace spider::bench
