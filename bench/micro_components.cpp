// google-benchmark microbenchmarks for non-crypto hot paths: serde, the
// KV store, the event queue, and whole simulated Spider writes (wall-clock
// cost of simulating one write end to end).
#include <benchmark/benchmark.h>

#include "app/kvstore.hpp"
#include "common/serde.hpp"
#include "sim/world.hpp"
#include "spider/system.hpp"

namespace spider {
namespace {

void BM_SerdeEncode(benchmark::State& state) {
  Bytes payload(static_cast<std::size_t>(state.range(0)), 0x55);
  for (auto _ : state) {
    Writer w;
    w.u32(7);
    w.u64(42);
    w.bytes(payload);
    benchmark::DoNotOptimize(std::move(w).take());
  }
}
BENCHMARK(BM_SerdeEncode)->Arg(200)->Arg(4096);

void BM_SerdeDecode(benchmark::State& state) {
  Writer w;
  w.u32(7);
  w.u64(42);
  w.bytes(Bytes(static_cast<std::size_t>(state.range(0)), 0x55));
  Bytes buf = std::move(w).take();
  for (auto _ : state) {
    Reader r(buf);
    benchmark::DoNotOptimize(r.u32());
    benchmark::DoNotOptimize(r.u64());
    benchmark::DoNotOptimize(r.bytes_view());
  }
}
BENCHMARK(BM_SerdeDecode)->Arg(200)->Arg(4096);

void BM_KvStorePut(benchmark::State& state) {
  KvStore kv;
  Bytes value(200, 0x42);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kv.execute(kv_put("key" + std::to_string(i++ % 1000), value)));
  }
}
BENCHMARK(BM_KvStorePut);

void BM_KvStoreSnapshot(benchmark::State& state) {
  KvStore kv;
  for (int i = 0; i < state.range(0); ++i) {
    kv.execute(kv_put("key" + std::to_string(i), Bytes(100, 1)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(kv.snapshot());
  }
}
BENCHMARK(BM_KvStoreSnapshot)->Arg(100)->Arg(1000);

void BM_EventQueue(benchmark::State& state) {
  for (auto _ : state) {
    EventQueue q;
    for (int i = 0; i < 1000; ++i) {
      q.schedule_at(i, [] {});
    }
    q.run_all();
  }
}
BENCHMARK(BM_EventQueue);

void BM_SimulatedSpiderWrite(benchmark::State& state) {
  // Wall-clock cost of simulating one complete Spider write (all protocol
  // messages, crypto cost accounting, KV execution in 4 regions).
  World world(1);
  SpiderSystem sys(world, SpiderTopology{});
  auto client = sys.make_client(Site{Region::Virginia, 0});
  std::uint64_t i = 0;
  for (auto _ : state) {
    bool done = false;
    client->write(kv_put("k" + std::to_string(i++ % 64), Bytes(160, 0x42)),
                  [&](Bytes, Duration) { done = true; });
    while (!done) world.queue().run_next();
  }
}
BENCHMARK(BM_SimulatedSpiderWrite)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace spider

BENCHMARK_MAIN();
