// Live-resharding cost: migration pause and client-visible throughput dip.
//
// A 4-shard resharding deployment serves closed-loop writers while a slice
// of one shard's range (a quarter of it, ~1/16 of the keyspace — moving a
// whole uniform range would permanently double the gainer's load and
// conflate rebalance-induced imbalance with migration cost) migrates
// between shards mid-run. Two costs are measured:
//
//   - migration pause: sim-time gap between MigrateOut committing (range cut
//     at the loser) and MigrateIn committing (range served by the gainer) —
//     the window in which BOTH shards redirect the range's keys;
//   - throughput dip: the worst 500 ms completion bucket around the
//     migration versus the steady-state bucket mean, plus the post-recovery
//     ratio. Redirect chasing and cancel-and-reroute bound the dip; a
//     regression here means clients are stalling on stale routes.
//
// Results append to BENCH_pr6.json (JSON lines, same trajectory format as
// the PR 5 benches; BENCH_JSON_PATH overrides). With --gate the binary
// fails (exit 1) if the migration does not complete, the pause exceeds
// 1.5 s, or throughput fails to recover to 70% of steady state.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_json.hpp"
#include "bench/harness.hpp"
#include "shard/sharded_system.hpp"

namespace spider::bench {
namespace {

constexpr std::uint64_t kSeed = 777;
constexpr Duration kBucket = 500 * kMillisecond;
constexpr Time kMeasureFrom = 2 * kSecond;
constexpr Time kMigrateAt = 5 * kSecond;
constexpr Time kStopAt = 12 * kSecond;
// Buckets overlapping [kMigrateAt, kDipWindowEnd) score the dip; buckets
// before kMigrateAt or at/after kDipWindowEnd form the steady baseline.
constexpr Time kDipWindowEnd = 9 * kSecond;

struct Result {
  bool migration_ok = false;
  double pause_ms = 0;
  double steady = 0;    // mean steady-state bucket, ops/s
  double dip = 0;       // worst migration-window bucket / steady
  double recovery = 0;  // mean post-window bucket / steady
};

Result run() {
  World world(kSeed);
  ShardedTopology topo;
  topo.shards = 4;
  topo.resharding = true;
  topo.base.exec_regions = {Region::Virginia, Region::Ohio};
  topo.base.commit_capacity = 128;
  topo.base.ag_win = 128;
  ShardedSpiderSystem sys(world, topo);

  constexpr int kClients = 48;
  struct Ctx {
    std::unique_ptr<ShardedClient> client;
    std::uint64_t seq = 0;
  };
  std::vector<Ctx> ctxs;
  for (int i = 0; i < kClients; ++i) {
    Region r = (i % 2 == 0) ? Region::Virginia : Region::Ohio;
    ctxs.push_back(Ctx{sys.make_client(Site{r, static_cast<std::uint8_t>(i % 3)}), 0});
  }

  std::vector<std::uint64_t> buckets(static_cast<std::size_t>(kStopAt / kBucket), 0);
  // Closed loop: each completion immediately issues the next put, so a
  // stalled route shows up as missing completions, not queue growth.
  std::function<void(std::size_t)> pump = [&](std::size_t i) {
    if (world.now() >= kStopAt) return;
    Ctx& c = ctxs[i];
    char key[24];
    std::snprintf(key, sizeof key, "c%zu-k%llu", i,
                  static_cast<unsigned long long>(c.seq++ % 32));
    c.client->put(key, payload_200b(), [&, i](Bytes, Duration) {
      const std::size_t b = static_cast<std::size_t>(world.now() / kBucket);
      if (world.now() >= kMeasureFrom && b < buckets.size()) ++buckets[b];
      pump(i);
    });
  };
  for (std::size_t i = 0; i < ctxs.size(); ++i) pump(i);

  Result res;
  world.queue().schedule_at(kMigrateAt, [&] {
    // Move the first quarter of shard 1's range to its neighbor.
    const std::vector<ShardRange>& ranges = sys.shard_map().ranges();
    const std::uint64_t lo = ranges[1].start;
    const std::uint64_t hi = lo + (ranges[2].start - lo) / 4;
    const std::uint32_t target = (ranges[1].shard + 1) % sys.shard_count();
    sys.migrate_range(lo, hi, target, [&](bool ok) { res.migration_ok = ok; });
  });
  world.run_until(kStopAt);

  res.pause_ms = static_cast<double>(sys.last_migration_pause()) / kMillisecond;

  const std::size_t first = static_cast<std::size_t>(kMeasureFrom / kBucket);
  const std::size_t dip_from = static_cast<std::size_t>(kMigrateAt / kBucket);
  const std::size_t dip_to = static_cast<std::size_t>(kDipWindowEnd / kBucket);
  double steady_sum = 0, post_sum = 0, worst = -1;
  std::size_t steady_n = 0, post_n = 0;
  for (std::size_t b = first; b < buckets.size(); ++b) {
    const double rate = static_cast<double>(buckets[b]) / (static_cast<double>(kBucket) / kSecond);
    if (b >= dip_from && b < dip_to) {
      if (worst < 0 || rate < worst) worst = rate;
    } else {
      steady_sum += rate;
      ++steady_n;
      if (b >= dip_to) {
        post_sum += rate;
        ++post_n;
      }
    }
  }
  res.steady = steady_n > 0 ? steady_sum / static_cast<double>(steady_n) : 0;
  res.dip = res.steady > 0 ? worst / res.steady : 0;
  res.recovery =
      res.steady > 0 && post_n > 0 ? (post_sum / static_cast<double>(post_n)) / res.steady : 0;
  return res;
}

}  // namespace
}  // namespace spider::bench

int main(int argc, char** argv) {
  using namespace spider::bench;

  // This bench opens the PR 6 trajectory file; BENCH_JSON_PATH still wins.
  setenv("BENCH_JSON_PATH", "BENCH_pr6.json", /*overwrite=*/0);

  const bool gate = argc > 1 && std::strcmp(argv[1], "--gate") == 0;
  Result r = run();

  std::printf("Live resharding under closed-loop writes (4 shards, quarter-range moved)\n");
  std::printf("%-24s %10s\n", "metric", "value");
  std::printf("%-24s %10.1f ms\n", "migration pause", r.pause_ms);
  std::printf("%-24s %10.0f ops/s\n", "steady throughput", r.steady);
  std::printf("%-24s %10.2f x steady\n", "worst dip bucket", r.dip);
  std::printf("%-24s %10.2f x steady\n", "post-migration recovery", r.recovery);
  std::printf("%-24s %10s\n", "migration completed", r.migration_ok ? "yes" : "NO");

  bench_json("micro_reshard", "migration_pause", r.pause_ms, "ms", kSeed);
  bench_json("micro_reshard", "steady writes/s", r.steady, "ops/s", kSeed);
  bench_json("micro_reshard", "throughput_dip", r.dip, "ratio", kSeed);
  bench_json("micro_reshard", "recovery", r.recovery, "ratio", kSeed);

  if (gate) {
    if (!r.migration_ok) {
      std::printf("FAIL: migration did not complete\n");
      return 1;
    }
    if (r.pause_ms > 1500.0) {
      std::printf("FAIL: migration pause %.1f ms exceeds 1500 ms\n", r.pause_ms);
      return 1;
    }
    if (r.recovery < 0.7) {
      std::printf("FAIL: throughput recovered to only %.2fx of steady state\n", r.recovery);
      return 1;
    }
    std::printf("OK: pause %.1f ms, recovery %.2fx\n", r.pause_ms, r.recovery);
  }
  return 0;
}
