// Figure 7: 50th/90th percentile write latencies for BFT, HFT and Spider
// with clients in Virginia/Oregon/Ireland/Tokyo and different leader
// locations.
//
// Expected shape (paper): BFT and HFT latencies depend strongly on the
// leader (site) location; Spider is uniformly low for Virginia clients and
// bounded by one WAN round trip for remote clients, regardless of which
// availability zone hosts the agreement leader.
#include <cstdlib>

#include "baselines/bft_system.hpp"
#include "baselines/hft_system.hpp"
#include "harness.hpp"
#include "obs/trace_export.hpp"
#include "spider/system.hpp"

namespace spider::bench {
namespace {

const std::vector<Region> kClientRegions = {Region::Virginia, Region::Oregon, Region::Ireland,
                                            Region::Tokyo};
constexpr int kClientsPerRegion = 6;
constexpr Duration kInterval = 500 * kMillisecond;
constexpr Time kWarmup = 5 * kSecond;
constexpr Time kEnd = 35 * kSecond;

template <typename MakeClient>
std::map<Region, LatencyStats> run_write_load(World& world, MakeClient make_client) {
  Fleet fleet(world, kWarmup, kEnd);
  for (Region r : kClientRegions) {
    for (int i = 0; i < kClientsPerRegion; ++i) {
      fleet.add_client(make_client(Site{r, static_cast<std::uint8_t>(i % 3)}), r, OpType::Write);
    }
  }
  fleet.start(kInterval);
  world.run_until(kEnd + 2 * kSecond);
  return std::move(fleet.stats);
}

void bench_bft() {
  const std::vector<Region> order = {Region::Virginia, Region::Oregon, Region::Ireland,
                                     Region::Tokyo};
  for (std::size_t leader = 0; leader < order.size(); ++leader) {
    World world(100 + leader);
    json_bench_seed = 100 + leader;
    std::vector<Site> sites;
    for (std::size_t i = 0; i < order.size(); ++i) {
      sites.push_back(Site{order[(leader + i) % order.size()], 0});
    }
    BftSystem sys(world, BftConfig{sites});
    auto stats = run_write_load(world, [&](Site s) { return sys.make_client(s); });
    print_region_row("BFT leader=" + std::string(region_code(order[leader])), stats);
  }
}

void bench_hft() {
  for (std::uint32_t leader = 0; leader < 4; ++leader) {
    World world(200 + leader);
    json_bench_seed = 200 + leader;
    HftConfig cfg;
    cfg.leader_site = leader;
    HftSystem sys(world, cfg);
    auto stats = run_write_load(world, [&](Site s) { return sys.make_client(s); });
    print_region_row("HFT leader-site=" + std::string(region_code(cfg.site_regions[leader])),
                     stats);
  }
}

void bench_spider() {
  // SPIDER_TRACE=<path> flight-records the first Spider configuration and
  // exports a Chrome/Perfetto trace of the whole run to <path>. Tracing is
  // out-of-band: the traced run's latencies are identical to an untraced
  // replay of the same seed.
  const char* trace_path = std::getenv("SPIDER_TRACE");
  for (std::uint32_t rot : {0u, 1u, 3u, 5u}) {  // leader in V-1, V-2, V-4, V-6
    World world(300 + rot);
    json_bench_seed = 300 + rot;
    const bool traced = trace_path && rot == 0;
    if (traced) world.enable_tracing(obs::Tracer::Mode::kFull);
    SpiderTopology topo;
    topo.agreement_az_rotation = rot;
    SpiderSystem sys(world, topo);
    auto stats = run_write_load(world, [&](Site s) { return sys.make_client(s); });
    print_region_row("SPIDER leader=V-" + std::to_string(rot + 1), stats);
    if (traced) {
      if (obs::write_chrome_trace(*world.tracer(), trace_path)) {
        std::printf("  [trace] %zu events -> %s (open in ui.perfetto.dev)\n",
                    world.tracer()->size(), trace_path);
      } else {
        std::printf("  [trace] FAILED to write %s\n", trace_path);
      }
    }
  }
}

}  // namespace
}  // namespace spider::bench

int main() {
  spider::bench::json_bench_name = "fig07_writes";
  std::printf("=== Figure 7: write latency percentiles by client region ===\n");
  std::printf("(200-byte writes; %d clients/region; measure window %.0f s)\n\n",
              spider::bench::kClientsPerRegion,
              spider::to_sec(spider::bench::kEnd - spider::bench::kWarmup));
  spider::bench::bench_bft();
  std::printf("\n");
  spider::bench::bench_hft();
  std::printf("\n");
  spider::bench::bench_spider();
  return 0;
}
