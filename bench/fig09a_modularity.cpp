// Figure 9a: modularity impact — Spider-0E (agreement group executes, no
// IRMC), Spider-1E (one execution group co-located with the agreement
// group) and full Spider, 200-byte writes.
//
// Expected shape (paper): for remote clients response times are dominated
// by client<->Virginia WAN latency in all three variants; the IRMC +
// externalized execution adds less than ~14 ms.
#include "baselines/bft_system.hpp"
#include "harness.hpp"
#include "spider/system.hpp"

namespace spider::bench {
namespace {

const std::vector<Region> kClientRegions = {Region::Virginia, Region::Oregon, Region::Ireland,
                                            Region::Tokyo};
constexpr int kClientsPerRegion = 6;
constexpr Duration kInterval = 500 * kMillisecond;
constexpr Time kWarmup = 5 * kSecond;
constexpr Time kEnd = 35 * kSecond;

template <typename MakeClient>
std::map<Region, LatencyStats> run_writes(World& world, MakeClient make_client) {
  Fleet fleet(world, kWarmup, kEnd);
  for (Region r : kClientRegions) {
    for (int i = 0; i < kClientsPerRegion; ++i) {
      fleet.add_client(make_client(Site{r, static_cast<std::uint8_t>(i % 3)}), r, OpType::Write);
    }
  }
  fleet.start(kInterval);
  world.run_until(kEnd + 2 * kSecond);
  return std::move(fleet.stats);
}

}  // namespace
}  // namespace spider::bench

int main() {
  spider::bench::json_bench_name = "fig09a_modularity";
  using namespace spider;
  using namespace spider::bench;
  std::printf("=== Figure 9a: overall latency of Spider variants (200-byte writes) ===\n\n");

  {
    // Spider-0E: one 3fa+1 group in Virginia AZs that orders AND executes.
    World world(1);
    json_bench_seed = 1;
    std::vector<Site> azs = {Site{Region::Virginia, 0}, Site{Region::Virginia, 1},
                             Site{Region::Virginia, 2}, Site{Region::Virginia, 3}};
    BftSystem sys(world, BftConfig{azs});
    print_region_row("SPIDER-0E", run_writes(world, [&](Site s) { return sys.make_client(s); }));
  }
  {
    // Spider-1E: a single execution group co-located in Virginia.
    World world(2);
    json_bench_seed = 2;
    SpiderTopology topo;
    topo.exec_regions = {Region::Virginia};
    SpiderSystem sys(world, topo);
    print_region_row("SPIDER-1E", run_writes(world, [&](Site s) { return sys.make_client(s); }));
  }
  {
    World world(3);
    json_bench_seed = 3;
    SpiderSystem sys(world, SpiderTopology{});
    print_region_row("SPIDER", run_writes(world, [&](Site s) { return sys.make_client(s); }));
  }
  return 0;
}
