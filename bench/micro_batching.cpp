// Write-throughput sweep over the request-batching knobs.
//
// A fixed client population hammers the ordered-write path while the PBFT
// leader batches `max_batch` requests per consensus instance and the
// agreement group forwards whole batches over the commit channels. The
// sweep shows how batching amortizes per-instance consensus traffic and
// per-message IRMC MACs: throughput at max_batch=16 must beat max_batch=1
// on the same seed (this is the repo's batching acceptance check).
#include <cstdio>

#include "bench/harness.hpp"
#include "spider/system.hpp"

namespace spider::bench {
namespace {

struct Result {
  double ops_per_s = 0;
  double avg_batch = 0;
  std::uint64_t instances = 0;
};

Result run_one(std::uint64_t max_batch, Duration batch_delay, int clients) {
  World world(4242);  // same seed across all grid points
  SpiderTopology topo;
  // Four execution groups over short-WAN regions spread the request-path
  // work (client signature checks, request-channel signing), so the
  // agreement group is the bottleneck: every agreement replica signs one
  // commit-channel message per group per consensus instance (~210 us
  // each). That is exactly the per-instance cost batching amortizes.
  topo.exec_regions = {Region::Virginia, Region::Ohio, Region::Virginia, Region::Ohio};
  topo.commit_capacity = 128;
  topo.ag_win = 128;
  topo.max_batch = max_batch;
  topo.batch_delay = batch_delay;
  SpiderSystem sys(world, topo);

  const Time measure_from = 2 * kSecond;
  const Time stop_at = 8 * kSecond;
  Fleet fleet(world, measure_from, stop_at);
  for (int i = 0; i < clients; ++i) {
    Region r = (i % 2 == 0) ? Region::Virginia : Region::Ohio;
    fleet.add_client(sys.make_client(Site{r, static_cast<std::uint8_t>(i % 3)}), r,
                     OpType::Write);
  }
  // Offered load well above the unbatched agreement capacity, so the sweep
  // measures service rate, not load generation.
  fleet.start(2 * kMillisecond);
  world.run_until(stop_at);

  Result res;
  res.ops_per_s = static_cast<double>(fleet.completed) /
                  (static_cast<double>(stop_at - measure_from) / kSecond);
  PbftReplica& leader = sys.agreement(0).consensus();
  res.instances = leader.batches_proposed();
  res.avg_batch = leader.batches_proposed() == 0
                      ? 0.0
                      : static_cast<double>(leader.requests_proposed()) /
                            static_cast<double>(leader.batches_proposed());
  return res;
}

}  // namespace
}  // namespace spider::bench

int main() {
  using namespace spider;
  using namespace spider::bench;

  std::printf("Request batching on the ordered-write path (Spider, 4 exec groups)\n");
  std::printf("%-10s %-12s %12s %12s %12s\n", "max_batch", "batch_delay", "ops/s",
              "instances", "avg batch");

  const int kClients = 160;
  double base = 0;
  double best = 0;
  for (std::uint64_t mb : {1ull, 4ull, 16ull}) {
    Duration delay = mb == 1 ? 0 : kMillisecond;
    Result r = run_one(mb, delay, kClients);
    std::printf("%-10llu %9lld us %12.0f %12llu %12.1f\n",
                static_cast<unsigned long long>(mb), static_cast<long long>(delay), r.ops_per_s,
                static_cast<unsigned long long>(r.instances), r.avg_batch);
    bench_json("micro_batching", "ops/s max_batch=" + std::to_string(mb), r.ops_per_s,
               "ops/s", 4242);
    if (mb == 1) base = r.ops_per_s;
    if (mb == 16) best = r.ops_per_s;
  }

  if (best <= base) {
    std::printf("FAIL: max_batch=16 (%.0f ops/s) not faster than max_batch=1 (%.0f ops/s)\n",
                best, base);
    return 1;
  }
  std::printf("OK: batching speedup %.2fx\n", best / base);
  return 0;
}
