// Figure 8: read latencies with strong (8a) and weak (8b) consistency.
//
// Expected shape (paper): strongly consistent reads in Spider follow the
// write path (one WAN round trip to the agreement group); BFT/HFT strong
// reads run full consensus. Weakly consistent reads are <= 2 ms for HFT
// and Spider (local site / local execution group) but need a wide-area
// quorum in flat BFT.
#include "baselines/bft_system.hpp"
#include "baselines/hft_system.hpp"
#include "harness.hpp"
#include "spider/system.hpp"

namespace spider::bench {
namespace {

const std::vector<Region> kClientRegions = {Region::Virginia, Region::Oregon, Region::Ireland,
                                            Region::Tokyo};
constexpr int kClientsPerRegion = 6;
constexpr Duration kInterval = 500 * kMillisecond;
constexpr Time kWarmup = 5 * kSecond;
constexpr Time kEnd = 35 * kSecond;

template <typename MakeClient>
void run_reads(World& world, const std::string& label, MakeClient make_client) {
  Fleet strong(world, kWarmup, kEnd);
  Fleet weak(world, kWarmup, kEnd);
  for (Region r : kClientRegions) {
    for (int i = 0; i < kClientsPerRegion; ++i) {
      strong.add_client(make_client(Site{r, static_cast<std::uint8_t>(i % 3)}), r,
                        OpType::StrongRead);
      weak.add_client(make_client(Site{r, static_cast<std::uint8_t>(i % 3)}), r,
                      OpType::WeakRead);
    }
  }
  strong.start(kInterval);
  weak.start(kInterval);
  world.run_until(kEnd + 2 * kSecond);
  print_region_row(label + " strong", strong.stats);
  print_region_row(label + " weak", weak.stats);
}

}  // namespace
}  // namespace spider::bench

int main() {
  spider::bench::json_bench_name = "fig08_reads";
  using namespace spider;
  using namespace spider::bench;
  std::printf("=== Figure 8: read latency percentiles (strong / weak) ===\n\n");

  {
    World world(1);
    json_bench_seed = 1;
    std::vector<Site> sites = {Site{Region::Virginia, 0}, Site{Region::Oregon, 0},
                               Site{Region::Ireland, 0}, Site{Region::Tokyo, 0}};
    BftSystem sys(world, BftConfig{sites});
    run_reads(world, "BFT", [&](Site s) { return sys.make_client(s); });
  }
  {
    World world(2);
    json_bench_seed = 2;
    HftSystem sys(world, HftConfig{});
    run_reads(world, "HFT", [&](Site s) { return sys.make_client(s); });
  }
  {
    World world(3);
    json_bench_seed = 3;
    SpiderSystem sys(world, SpiderTopology{});
    run_reads(world, "SPIDER", [&](Site s) { return sys.make_client(s); });
  }
  return 0;
}
