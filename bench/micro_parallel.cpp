// Deterministic parallel runtime: thread-ladder scaling + byte-identity.
//
// Two micros, both walked over the thread ladder {1, 2, 4, 8}:
//
//   1. World ladder — the micro_sharding 4-shard saturating write workload
//      with the parallel runtime enabled at each thread count. Virtual-time
//      results (completed ops, goodput, prefetch counters) must be
//      BYTE-IDENTICAL across the ladder: threading changes wall-clock time
//      only. Wall time is reported as a speedup ratio against threads=1.
//   2. Verify saturation — RealCrypto RSA verifications pushed straight
//      through the VerifyPool in epoch-sized waves (submit a wave, join in
//      submit order), isolating pool scaling from event-loop machinery.
//      This is where the scaling contract lives: the world ladder is
//      Amdahl-bound by the sequential event loop, the saturation micro is
//      embarrassingly parallel.
//
// --gate (CI) enforces, hardware-adaptively via hardware_concurrency():
//   - determinism: identical world-ladder rows at every thread count (hard,
//     unconditional — this is the tentpole contract);
//   - >= 4 cores: saturation speedup at 4 threads >= 2.5x, world ladder at
//     4 threads no slower than 1.0x;
//   - 2-3 cores: saturation >= 1.2x, world >= 0.85x;
//   - 1 core: overhead bounds only — threading cannot win wall time where
//     there is no second core, so require both ratios >= 0.5x (threads must
//     not cost more than 2x the inline run).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_json.hpp"
#include "bench/harness.hpp"
#include "crypto/provider.hpp"
#include "runtime/parallel.hpp"
#include "runtime/verify_pool.hpp"
#include "shard/sharded_system.hpp"

namespace spider::bench {
namespace {

constexpr const char* kTrajectory = "BENCH_pr10.json";
constexpr unsigned kLadder[] = {1, 2, 4, 8};

double wall_seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// ---- world ladder ---------------------------------------------------------

struct WorldRow {
  unsigned threads = 0;
  double wall_s = 0;  // schedule-dependent
  // Everything below is deterministic and must match across the ladder.
  std::uint64_t completed = 0;
  double virt_ops_s = 0;
  std::uint64_t prefetch_submitted = 0;
  std::uint64_t prefetch_hits = 0;
  std::uint64_t epochs = 0;

  [[nodiscard]] bool same_results(const WorldRow& o) const {
    return completed == o.completed && virt_ops_s == o.virt_ops_s &&
           prefetch_submitted == o.prefetch_submitted && prefetch_hits == o.prefetch_hits &&
           epochs == o.epochs;
  }
};

/// The micro_sharding saturating write workload at 4 shards, parallel
/// runtime on. Shorter window than micro_sharding: the ladder runs it four
/// times and only the *ratio* between runs matters here.
WorldRow run_world(unsigned threads) {
  const auto t0 = std::chrono::steady_clock::now();
  World world(4242);
  runtime::ParallelRuntime& rt = world.enable_parallelism(threads);

  ShardedTopology topo;
  topo.shards = 4;
  topo.base.exec_regions = {Region::Virginia, Region::Ohio};
  topo.base.commit_capacity = 128;
  topo.base.ag_win = 128;
  ShardedSpiderSystem sys(world, topo);

  const Time measure_from = 1 * kSecond;
  const Time stop_at = 2 * kSecond;
  const int total_clients = 24 * 4;

  struct Ctx {
    std::unique_ptr<ShardedClient> client;
    std::uint64_t key_seq = 0;
  };
  std::vector<Ctx> ctxs;
  for (int i = 0; i < total_clients; ++i) {
    Region r = (i % 2 == 0) ? Region::Virginia : Region::Ohio;
    ctxs.push_back(Ctx{sys.make_client(Site{r, static_cast<std::uint8_t>(i % 3)}), 0});
  }

  std::uint64_t completed = 0;
  const Duration interval = 2 * kMillisecond;
  std::function<void(std::size_t, Duration)> schedule = [&](std::size_t i, Duration delay) {
    world.queue().schedule_after(delay, [&, i] {
      if (world.now() >= stop_at) return;
      Ctx& c = ctxs[i];
      std::string key = "c" + std::to_string(i) + "-k" + std::to_string(c.key_seq++ % 32);
      c.client->put(key, payload_200b(), [&](Bytes, Duration) {
        if (world.now() >= measure_from && world.now() < stop_at) ++completed;
      });
      schedule(i, interval);
    });
  };
  for (std::size_t i = 0; i < ctxs.size(); ++i) {
    schedule(i, static_cast<Duration>(i) * interval / static_cast<Duration>(ctxs.size() + 1));
  }
  world.run_until(stop_at);

  WorldRow row;
  row.threads = threads;
  row.completed = completed;
  row.virt_ops_s = static_cast<double>(completed) /
                   (static_cast<double>(stop_at - measure_from) / kSecond);
  row.prefetch_submitted = rt.prefetch_submitted();
  row.prefetch_hits = rt.prefetch_hits();
  row.epochs = rt.epochs();
  row.wall_s = wall_seconds(t0);
  return row;
}

// ---- verify saturation ----------------------------------------------------

/// Pushes `waves` x `wave_size` RSA verifications through a VerifyPool with
/// `threads - 1` workers, joining each wave in submit order (the runtime's
/// epoch pattern). Returns wall verifies/s. Signatures are prepared outside
/// the timed region; verifier closures are resolved on this thread exactly
/// as ParallelRuntime::note_send resolves them.
double run_saturation(unsigned threads, RealCrypto& crypto, const std::vector<Bytes>& msgs,
                      const std::vector<Bytes>& sigs, std::size_t waves) {
  const std::size_t wave_size = msgs.size();
  runtime::VerifyPool pool(threads - 1);
  std::vector<runtime::VerifyPool::JobRef> jobs(wave_size);

  const auto t0 = std::chrono::steady_clock::now();
  std::size_t verified = 0;
  for (std::size_t w = 0; w < waves; ++w) {
    for (std::size_t i = 0; i < wave_size; ++i) {
      auto fn = crypto.make_sig_verifier(static_cast<NodeId>(1 + i % 4), BytesView(msgs[i]),
                                         BytesView(sigs[i]));
      jobs[i] = pool.submit([fn = std::move(fn)](runtime::VerifyPool::Job& job) { job.ok = fn(); },
                            static_cast<std::uint32_t>(i));
    }
    for (std::size_t i = 0; i < wave_size; ++i) {
      pool.join(jobs[i]);
      if (jobs[i]->ok) ++verified;
    }
  }
  const double secs = wall_seconds(t0);
  if (verified != waves * wave_size) {
    std::printf("FAIL: %zu of %zu verifications rejected a valid signature\n",
                waves * wave_size - verified, waves * wave_size);
    std::exit(1);
  }
  return static_cast<double>(verified) / secs;
}

}  // namespace
}  // namespace spider::bench

int main(int argc, char** argv) {
  using namespace spider;
  using namespace spider::bench;

  bool gate = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--gate") == 0) gate = true;
    else {
      std::printf("usage: %s [--gate]\n", argv[0]);
      return 2;
    }
  }

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("Parallel runtime thread ladder (host has %u core%s)\n", hw, hw == 1 ? "" : "s");

  // ---- world ladder ----
  std::printf("\n4-shard write workload, parallel runtime:\n");
  std::printf("%-8s %10s %14s %12s %10s\n", "threads", "wall s", "virt ops/s", "prefetch",
              "speedup");
  std::vector<WorldRow> rows;
  for (unsigned t : kLadder) {
    rows.push_back(run_world(t));
    const WorldRow& r = rows.back();
    const double speedup = rows.front().wall_s / r.wall_s;
    std::printf("%-8u %10.2f %14.0f %12llu %9.2fx\n", r.threads, r.wall_s, r.virt_ops_s,
                static_cast<unsigned long long>(r.prefetch_submitted), speedup);
    bench_json("micro_parallel", "world wall s threads=" + std::to_string(t), r.wall_s, "s",
               4242, kTrajectory);
    bench_json("micro_parallel", "world virt ops/s threads=" + std::to_string(t), r.virt_ops_s,
               "ops/s", 4242, kTrajectory);
  }

  bool identical = true;
  for (const WorldRow& r : rows) {
    if (!r.same_results(rows.front())) {
      identical = false;
      std::printf(
          "DETERMINISM VIOLATION at threads=%u: completed %llu vs %llu, prefetch %llu/%llu vs "
          "%llu/%llu, epochs %llu vs %llu\n",
          r.threads, static_cast<unsigned long long>(r.completed),
          static_cast<unsigned long long>(rows.front().completed),
          static_cast<unsigned long long>(r.prefetch_submitted),
          static_cast<unsigned long long>(r.prefetch_hits),
          static_cast<unsigned long long>(rows.front().prefetch_submitted),
          static_cast<unsigned long long>(rows.front().prefetch_hits),
          static_cast<unsigned long long>(r.epochs),
          static_cast<unsigned long long>(rows.front().epochs));
    }
  }
  std::printf("deterministic results across ladder: %s\n", identical ? "yes" : "NO");

  // ---- verify saturation ----
  std::printf("\nRSA verify saturation through VerifyPool (512-bit keys):\n");
  std::printf("%-8s %14s %10s\n", "threads", "verifies/s", "speedup");
  RealCrypto crypto(4242, 512);
  const std::size_t wave_size = 64;
  const std::size_t waves = 8;
  std::vector<Bytes> msgs;
  std::vector<Bytes> sigs;
  for (std::size_t i = 0; i < wave_size; ++i) {
    msgs.emplace_back(200, static_cast<std::uint8_t>(i));
    sigs.push_back(crypto.sign(static_cast<NodeId>(1 + i % 4), BytesView(msgs.back())));
  }
  double sat_base = 0;
  double sat_at4 = 0;
  for (unsigned t : kLadder) {
    const double vps = run_saturation(t, crypto, msgs, sigs, waves);
    if (t == 1) sat_base = vps;
    if (t == 4) sat_at4 = vps;
    std::printf("%-8u %14.0f %9.2fx\n", t, vps, sat_base > 0 ? vps / sat_base : 0.0);
    bench_json("micro_parallel", "verify/s threads=" + std::to_string(t), vps, "ops/s", 4242,
               kTrajectory);
  }

  if (!gate) return identical ? 0 : 1;

  // ---- gate ----
  bool ok = identical;
  if (!identical) std::printf("GATE: world ladder results differ across thread counts\n");

  const double world_at4 = rows.front().wall_s / rows[2].wall_s;  // kLadder[2] == 4
  const double sat_speedup = sat_base > 0 ? sat_at4 / sat_base : 0.0;
  double need_sat = 0.5;
  double need_world = 0.5;
  if (hw >= 4) {
    need_sat = 2.5;
    need_world = 1.0;
  } else if (hw >= 2) {
    need_sat = 1.2;
    need_world = 0.85;
  }
  if (sat_speedup < need_sat) {
    std::printf("GATE: verify saturation speedup %.2fx at 4 threads < %.2fx (hw=%u)\n",
                sat_speedup, need_sat, hw);
    ok = false;
  }
  if (world_at4 < need_world) {
    std::printf("GATE: world ladder ratio %.2fx at 4 threads < %.2fx (hw=%u)\n", world_at4,
                need_world, hw);
    ok = false;
  }
  if (!ok) {
    std::printf("FAIL: parallel runtime gate violated\n");
    return 1;
  }
  std::printf("OK: byte-identical ladder, saturation %.2fx, world %.2fx (hw=%u)\n", sat_speedup,
              world_at4, hw);
  return 0;
}
