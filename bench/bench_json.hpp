// Machine-readable bench results: the repo's perf trajectory.
//
// Every bench binary appends entries to BENCH_pr7.json (JSON lines, one
// object per line):
//   {"bench": "...", "metric": "...", "value": 1.23, "unit": "...", "seed": 0}
// Future PRs regress against these files; CI uploads them as artifacts.
// Set BENCH_JSON_PATH to redirect, BENCH_JSON=0 to disable.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace spider::bench {

/// `file` lets a bench pick its own trajectory file (e.g. the open-loop
/// harness appends to BENCH_pr8.json); the BENCH_JSON_PATH env override
/// still wins so CI can redirect everything.
inline void bench_json(const std::string& bench, const std::string& metric, double value,
                       const std::string& unit, std::uint64_t seed = 0,
                       const char* file = nullptr) {
  const char* enabled = std::getenv("BENCH_JSON");
  if (enabled && std::string(enabled) == "0") return;
  const char* path = std::getenv("BENCH_JSON_PATH");
  if (!path) path = file;
  std::FILE* f = std::fopen(path ? path : "BENCH_pr7.json", "a");
  if (!f) return;
  std::fprintf(f,
               "{\"bench\": \"%s\", \"metric\": \"%s\", \"value\": %.6g, \"unit\": \"%s\", "
               "\"seed\": %llu}\n",
               bench.c_str(), metric.c_str(), value, unit.c_str(),
               static_cast<unsigned long long>(seed));
  std::fclose(f);
}

}  // namespace spider::bench
