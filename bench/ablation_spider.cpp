// Ablations for the design choices DESIGN.md calls out:
//
//  A. IRMC window capacity vs. channel throughput — flow control bounds the
//     in-flight bandwidth-delay product, so small windows throttle a WAN
//     channel regardless of CPU headroom (the reason commit channels need
//     capacity >= checkpoint interval for liveness, paper §3.4).
//  B. Global flow control z — with one execution group dead, z=0 stalls the
//     whole system once the commit window fills; z=1 keeps everyone else at
//     full speed (paper §3.5).
//  C. Agreement checkpoint interval ka — checkpoints gate the agreement
//     window (AG-WIN), trading background overhead against pipeline room.
#include <cstdio>

#include "harness.hpp"
#include "irmc/irmc.hpp"
#include "spider/system.hpp"

namespace spider::bench {
namespace {

// ---------------------------------------------------------- A: capacity

void ablation_capacity() {
  std::printf("--- A. IRMC-RC throughput vs. window capacity (V->T, 256 B) ---\n");
  std::printf("%-10s %14s %20s\n", "capacity", "msgs/s", "limit");
  for (Position cap : {16u, 64u, 256u, 1024u, 4096u}) {
    World world(7);
    IrmcConfig cfg;
    std::vector<std::unique_ptr<ComponentHost>> sh, rh;
    for (int i = 0; i < 4; ++i) {
      sh.push_back(std::make_unique<ComponentHost>(world, world.allocate_id(),
                                                   Site{Region::Virginia, static_cast<std::uint8_t>(i)}));
      cfg.senders.push_back(sh.back()->id());
    }
    for (int i = 0; i < 3; ++i) {
      rh.push_back(std::make_unique<ComponentHost>(world, world.allocate_id(),
                                                   Site{Region::Tokyo, static_cast<std::uint8_t>(i)}));
      cfg.receivers.push_back(rh.back()->id());
    }
    cfg.fs = cfg.fr = 1;
    cfg.capacity = cap;
    cfg.channel_tag = tags::kIrmc | 2;
    std::vector<std::unique_ptr<IrmcSenderEndpoint>> tx;
    std::vector<std::unique_ptr<IrmcReceiverEndpoint>> rx;
    for (auto& h : sh) tx.push_back(make_irmc_sender(IrmcKind::ReceiverCollect, *h, cfg));
    for (auto& h : rh) rx.push_back(make_irmc_receiver(IrmcKind::ReceiverCollect, *h, cfg));

    Bytes payload(256, 1);
    std::vector<Position> next(4, 1);
    std::function<void()> tick = [&] {
      for (int i = 0; i < 4; ++i) {
        while (next[static_cast<std::size_t>(i)] <=
               tx[static_cast<std::size_t>(i)]->window_start(1) + cap - 1) {
          tx[static_cast<std::size_t>(i)]->send(1, next[static_cast<std::size_t>(i)]++, payload, {});
        }
      }
      world.queue().schedule_after(2 * kMillisecond, tick);
    };
    tick();

    std::uint64_t delivered = 0;
    std::function<void(std::size_t, Position)> consume = [&](std::size_t i, Position p) {
      rx[i]->receive(1, p, [&, i, p](RecvResult res) {
        if (!res.too_old) {
          if (i == 0 && world.now() >= 2 * kSecond) ++delivered;
          if (p % 8 == 0) rx[i]->move_window(1, p + 1);
        }
        consume(i, res.too_old ? res.window_start : p + 1);
      });
    };
    for (std::size_t i = 0; i < 3; ++i) consume(i, 1);
    world.run_until(8 * kSecond);

    double rate = static_cast<double>(delivered) / 6.0;
    // Window-limited rate ~ capacity / RTT; CPU-limited otherwise.
    double window_bound = static_cast<double>(cap) / 0.156;
    std::printf("%-10llu %14.0f %20s\n", static_cast<unsigned long long>(cap), rate,
                rate < 0.8 * window_bound ? "CPU-bound" : "window-bound");
  }
}

// ---------------------------------------------------------------- B: z

void ablation_z() {
  std::printf("\n--- B. global flow control: dead Tokyo group, z = 0 vs 1 ---\n");
  std::printf("%-6s %24s %24s\n", "z", "writes done in 60 s", "Virginia p50");
  for (std::uint32_t z : {0u, 1u}) {
    World world(11);
    SpiderTopology topo;
    topo.z = z;
    topo.ka = 8;
    topo.ke = 8;
    topo.commit_capacity = 16;
    topo.ag_win = 32;
    SpiderSystem sys(world, topo);
    GroupId tokyo = sys.nearest_group(Region::Tokyo);
    for (std::size_t i = 0; i < sys.group_size(tokyo); ++i) {
      world.net().set_node_down(sys.exec(tokyo, i).id(), true);
    }

    Fleet fleet(world, 0, 60 * kSecond);
    for (int i = 0; i < 4; ++i) {
      fleet.add_client(sys.make_client(Site{Region::Virginia, static_cast<std::uint8_t>(i % 3)}),
                       Region::Virginia, OpType::Write);
    }
    fleet.start(500 * kMillisecond);
    world.run_until(62 * kSecond);
    const LatencyStats& s = fleet.stats[Region::Virginia];
    std::printf("%-6u %24zu %24s\n", z, s.count(), format_ms(s.median()).c_str());
  }
  std::printf("(z=0: progress stops once the dead group's commit window fills;\n"
              " z=1: the dead group is skipped and later recovers via checkpoints)\n");
}

// ---------------------------------------------------------------- C: ka

void ablation_ka() {
  std::printf("\n--- C. agreement checkpoint interval ka (AG-WIN = 4*ka) ---\n");
  std::printf("%-6s %18s %18s\n", "ka", "Virginia p50", "Tokyo p50");
  for (std::uint64_t ka : {2u, 8u, 32u, 128u}) {
    World world(13);
    SpiderTopology topo;
    topo.ka = ka;
    topo.ag_win = 4 * ka;
    topo.commit_capacity = std::max<Position>(2 * ka, 16);
    SpiderSystem sys(world, topo);

    Fleet fleet(world, 5 * kSecond, 35 * kSecond);
    for (Region r : {Region::Virginia, Region::Tokyo}) {
      for (int i = 0; i < 4; ++i) {
        fleet.add_client(sys.make_client(Site{r, static_cast<std::uint8_t>(i % 3)}), r,
                         OpType::Write);
      }
    }
    fleet.start(500 * kMillisecond);
    world.run_until(37 * kSecond);
    std::printf("%-6llu %18s %18s\n", static_cast<unsigned long long>(ka),
                format_ms(fleet.stats[Region::Virginia].median()).c_str(),
                format_ms(fleet.stats[Region::Tokyo].median()).c_str());
    bench_json("ablation_spider", "ka=" + std::to_string(ka) + " VA p50",
               to_ms(fleet.stats[Region::Virginia].median()), "ms", 13);
    bench_json("ablation_spider", "ka=" + std::to_string(ka) + " TK p50",
               to_ms(fleet.stats[Region::Tokyo].median()), "ms", 13);
  }
}

}  // namespace
}  // namespace spider::bench

int main() {
  std::printf("=== Ablations: Spider design parameters ===\n\n");
  spider::bench::ablation_capacity();
  spider::bench::ablation_z();
  spider::bench::ablation_ka();
  return 0;
}
