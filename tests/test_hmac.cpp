#include <gtest/gtest.h>

#include "common/hex.hpp"
#include "crypto/hmac.hpp"

namespace spider {
namespace {

std::string hmac_hex(BytesView key, BytesView data) {
  Sha256Digest d = hmac_sha256(key, data);
  return to_hex(BytesView(d.data(), d.size()));
}

// RFC 4231 test vectors for HMAC-SHA-256.
TEST(Hmac, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  Bytes data = to_bytes(std::string("Hi There"));
  EXPECT_EQ(hmac_hex(key, data),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  Bytes key = to_bytes(std::string("Jefe"));
  Bytes data = to_bytes(std::string("what do ya want for nothing?"));
  EXPECT_EQ(hmac_hex(key, data),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  Bytes key(20, 0xaa);
  Bytes data(50, 0xdd);
  EXPECT_EQ(hmac_hex(key, data),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, Rfc4231Case6LongKey) {
  Bytes key(131, 0xaa);
  Bytes data = to_bytes(std::string("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(hmac_hex(key, data),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, KeySensitivity) {
  Bytes data = to_bytes(std::string("message"));
  Sha256Digest a = hmac_sha256(to_bytes(std::string("key1")), data);
  Sha256Digest b = hmac_sha256(to_bytes(std::string("key2")), data);
  EXPECT_NE(a, b);
}

TEST(Hmac, MessageSensitivity) {
  Bytes key = to_bytes(std::string("key"));
  Sha256Digest a = hmac_sha256(key, to_bytes(std::string("message1")));
  Sha256Digest b = hmac_sha256(key, to_bytes(std::string("message2")));
  EXPECT_NE(a, b);
}

TEST(Hmac, TagIs16Bytes) {
  Bytes tag = hmac_tag(to_bytes(std::string("k")), to_bytes(std::string("m")));
  EXPECT_EQ(tag.size(), 16u);
}

TEST(Hmac, TagIsTruncatedDigest) {
  Bytes key = to_bytes(std::string("k"));
  Bytes msg = to_bytes(std::string("m"));
  Sha256Digest full = hmac_sha256(key, msg);
  Bytes tag = hmac_tag(key, msg);
  EXPECT_TRUE(bytes_equal(tag, BytesView(full.data(), 16)));
}

TEST(Hmac, MacEqual) {
  Bytes a = {1, 2, 3};
  Bytes b = {1, 2, 3};
  Bytes c = {1, 2, 4};
  Bytes d = {1, 2};
  EXPECT_TRUE(mac_equal(a, b));
  EXPECT_FALSE(mac_equal(a, c));
  EXPECT_FALSE(mac_equal(a, d));
}

}  // namespace
}  // namespace spider
