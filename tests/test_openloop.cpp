// Open-loop workload driver: generators, sojourn accounting, knee
// detection, and the byte-identical determinism contract the rate sweep
// advertises (same SweepConfig + seed => identical rows and snapshots).
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "load/open_loop.hpp"
#include "load/sweep.hpp"
#include "load/workload.hpp"
#include "sim/world.hpp"
#include "spider/system.hpp"
#include "support/drive.hpp"

namespace spider::load {
namespace {

// ---- generators ----------------------------------------------------------

TEST(Zipf, InvalidConstructionThrows) {
  EXPECT_THROW(ZipfGenerator(0, 0.99), std::invalid_argument);
  EXPECT_THROW(ZipfGenerator(16, -0.1), std::invalid_argument);
}

TEST(Zipf, DeterministicForEqualSeeds) {
  ZipfGenerator z(100, 0.99);
  Rng a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(z.draw(a), z.draw(b));
}

TEST(Zipf, SkewsTowardLowRanks) {
  ZipfGenerator z(100, 0.99);
  Rng rng(11);
  std::vector<std::size_t> counts(100, 0);
  for (int i = 0; i < 20'000; ++i) {
    const std::size_t r = z.draw(rng);
    ASSERT_LT(r, 100u);
    ++counts[r];
  }
  // Rank 0 is the hottest key by a wide margin under theta=0.99.
  EXPECT_GT(counts[0], 5 * counts[50]);
  EXPECT_GT(counts[0], 10 * counts[99]);
}

TEST(Zipf, ThetaZeroIsRoughlyUniform) {
  ZipfGenerator z(10, 0.0);
  Rng rng(3);
  std::vector<std::size_t> counts(10, 0);
  for (int i = 0; i < 10'000; ++i) ++counts[z.draw(rng)];
  for (std::size_t c : counts) {
    EXPECT_GT(c, 700u);
    EXPECT_LT(c, 1300u);
  }
}

TEST(Workload, ProfileValidation) {
  OpenLoopProfile p;
  EXPECT_NO_THROW(validate_profile(p));
  p.rate = 0;
  EXPECT_THROW(validate_profile(p), std::invalid_argument);
  p = {};
  p.write_fraction = 0.8;
  p.weak_fraction = 0.5;  // mix sums past 1
  EXPECT_THROW(validate_profile(p), std::invalid_argument);
  p = {};
  p.clients = 0;
  EXPECT_THROW(validate_profile(p), std::invalid_argument);
  p = {};
  p.measure = 0;
  EXPECT_THROW(validate_profile(p), std::invalid_argument);
}

TEST(Workload, KeyFormatSortsByRank) {
  EXPECT_EQ(workload_key(0), "k000000");
  EXPECT_EQ(workload_key(42), "k000042");
  EXPECT_LT(workload_key(9), workload_key(10));
}

// ---- knee detector (pure, no deployment) ---------------------------------

RateRow synthetic_row(double offered, std::uint64_t p99_us, std::uint64_t arrivals,
                      std::uint64_t completed) {
  RateRow row;
  row.offered = offered;
  row.result.offered_rate = offered;
  row.result.p99_us = p99_us;
  row.result.arrivals = arrivals;
  row.result.completed = completed;
  row.result.goodput = static_cast<double>(completed);
  return row;
}

TEST(Knee, NeedsTwoRows) {
  std::vector<RateRow> rows;
  EXPECT_FALSE(detect_knee(rows, 5.0, 0.9));
  rows.push_back(synthetic_row(100, 10'000, 100, 100));
  EXPECT_FALSE(detect_knee(rows, 5.0, 0.9));
}

TEST(Knee, P99BlowupTriggers) {
  std::vector<RateRow> rows = {
      synthetic_row(100, 10'000, 100, 100),
      synthetic_row(200, 12'000, 200, 200),
      synthetic_row(400, 80'000, 400, 400),  // 8x baseline p99, no backlog yet
  };
  auto knee = detect_knee(rows, 5.0, 0.9);
  ASSERT_TRUE(knee);
  EXPECT_EQ(*knee, 2u);
}

TEST(Knee, UnservedBacklogTriggers) {
  std::vector<RateRow> rows = {
      synthetic_row(100, 10'000, 100, 100),
      synthetic_row(200, 12'000, 200, 150),  // p99 fine, 25% never completed
  };
  auto knee = detect_knee(rows, 5.0, 0.9);
  ASSERT_TRUE(knee);
  EXPECT_EQ(*knee, 1u);
}

TEST(Knee, PoissonShortfallIsNotAKnee) {
  // Realized arrivals routinely land a few percent under rate x window at
  // low rates; as long as every in-window arrival completes, the system
  // is keeping up and the goodput criterion must not fire.
  std::vector<RateRow> rows = {
      synthetic_row(100, 10'000, 174, 174),  // 87/s realized vs 100 offered
      synthetic_row(200, 12'000, 356, 356),
  };
  EXPECT_FALSE(detect_knee(rows, 5.0, 0.9));
}

TEST(Knee, HealthyCurveHasNone) {
  std::vector<RateRow> rows = {
      synthetic_row(100, 10'000, 100, 100),
      synthetic_row(200, 11'000, 199, 199),
      synthetic_row(400, 12'000, 398, 398),
  };
  EXPECT_FALSE(detect_knee(rows, 5.0, 0.9));
}

// ---- SpiderClient::fire sojourn accounting -------------------------------

TEST(Fire, ReportsSojournNotServiceLatency) {
  World world(21);
  SpiderTopology topo;
  topo.exec_regions = {Region::Virginia};
  SpiderSystem sys(world, topo);
  auto client = sys.make_client(Site{Region::Virginia, 0});

  // Burst of ordered writes fired in the same instant: each op queues
  // behind its predecessors, so sojourn latencies must be strictly
  // increasing. A service-latency report would show ~equal values.
  constexpr int kBurst = 4;
  std::vector<Duration> latencies;
  for (int i = 0; i < kBurst; ++i) {
    client->fire(OpKind::Write, kv_put(workload_key(i), Bytes{0x42}),
                 [&latencies](Bytes, Duration lat) { latencies.push_back(lat); });
  }
  EXPECT_EQ(client->queue_depth(), static_cast<std::size_t>(kBurst));

  ASSERT_TRUE(drive::run_until(world, [&] { return latencies.size() == kBurst; }));
  for (int i = 1; i < kBurst; ++i) {
    EXPECT_GT(latencies[i], latencies[i - 1]) << "op " << i;
  }
  // The tail op waited behind three full commits: well past one RTT.
  EXPECT_GT(latencies[kBurst - 1], 3 * latencies[0] / 2);
  EXPECT_EQ(client->queue_depth(), 0u);
}

// ---- runner + sweep ------------------------------------------------------

OpenLoopProfile small_profile() {
  OpenLoopProfile p;
  p.clients = 64;
  p.key_count = 256;
  p.warmup = kSecond / 2;
  p.measure = kSecond / 2;
  p.drain = kSecond;
  return p;
}

TEST(OpenLoop, RunnerRequiresClients) {
  World world(5);
  OpenLoopRunner runner(world, small_profile());
  EXPECT_THROW(runner.run(), std::logic_error);
}

TEST(OpenLoop, SweepValidatesLadder) {
  SweepConfig cfg;
  cfg.profile = small_profile();
  cfg.rates = {};
  EXPECT_THROW(run_sweep(cfg), std::invalid_argument);
  cfg.rates = {400, 200};  // descending
  EXPECT_THROW(run_sweep(cfg), std::invalid_argument);
  cfg.rates = {200, 200};  // not strictly ascending
  EXPECT_THROW(run_sweep(cfg), std::invalid_argument);
}

SweepConfig det_config(std::uint32_t shards) {
  SweepConfig cfg;
  cfg.shards = shards;
  cfg.max_batch = 1;
  cfg.rates = shards > 1 ? std::vector<double>{200} : std::vector<double>{200, 400};
  cfg.seed = 99;
  cfg.profile = small_profile();
  cfg.capture_snapshots = true;
  return cfg;
}

TEST(OpenLoop, SameSeedSweepIsByteIdentical) {
  const SweepConfig cfg = det_config(1);
  const SweepResult a = run_sweep(cfg);
  const SweepResult b = run_sweep(cfg);

  EXPECT_EQ(a.rows_text(), b.rows_text());
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_FALSE(a.rows[i].snapshot.empty());
    EXPECT_EQ(a.rows[i].snapshot, b.rows[i].snapshot) << "rate point " << i;
  }

  // The rows are real: in-window ops completed and percentiles came from
  // the registry histograms (which also appear in the snapshot).
  const OpenLoopResult& r = a.rows.front().result;
  EXPECT_GT(r.arrivals, 0u);
  EXPECT_GT(r.completed, 0u);
  EXPECT_GT(r.p50_us, 0u);
  EXPECT_LE(r.p50_us, r.p99_us);
  EXPECT_LE(r.p99_us, r.p999_us);
  EXPECT_NE(a.rows.front().snapshot.find("openloop_sojourn_us"), std::string::npos);
}

TEST(OpenLoop, ShardedSweepIsDeterministicToo) {
  const SweepConfig cfg = det_config(2);
  const SweepResult a = run_sweep(cfg);
  const SweepResult b = run_sweep(cfg);
  EXPECT_EQ(a.rows_text(), b.rows_text());
  ASSERT_EQ(a.rows.size(), 1u);
  EXPECT_EQ(a.rows[0].snapshot, b.rows[0].snapshot);
  EXPECT_GT(a.rows[0].result.completed, 0u);
}

}  // namespace
}  // namespace spider::load
