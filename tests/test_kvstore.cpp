#include <gtest/gtest.h>

#include "app/kvstore.hpp"
#include "common/serde.hpp"

namespace spider {
namespace {

TEST(KvStore, PutGet) {
  KvStore kv;
  kv.execute(kv_put("k", to_bytes(std::string("v"))));
  KvReply r = kv_decode_reply(kv.execute(kv_get("k")));
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(to_string(r.value), "v");
}

TEST(KvStore, GetMissing) {
  KvStore kv;
  KvReply r = kv_decode_reply(kv.execute(kv_get("nope")));
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.value.empty());
}

TEST(KvStore, Overwrite) {
  KvStore kv;
  kv.execute(kv_put("k", to_bytes(std::string("v1"))));
  kv.execute(kv_put("k", to_bytes(std::string("v2"))));
  KvReply r = kv_decode_reply(kv.execute(kv_get("k")));
  EXPECT_EQ(to_string(r.value), "v2");
  EXPECT_EQ(kv.size(), 1u);
}

TEST(KvStore, Delete) {
  KvStore kv;
  kv.execute(kv_put("k", to_bytes(std::string("v"))));
  KvReply del = kv_decode_reply(kv.execute(kv_del("k")));
  EXPECT_TRUE(del.ok);
  EXPECT_FALSE(kv_decode_reply(kv.execute(kv_get("k"))).ok);
  KvReply del2 = kv_decode_reply(kv.execute(kv_del("k")));
  EXPECT_FALSE(del2.ok);  // already gone
}

TEST(KvStore, SizeOp) {
  KvStore kv;
  kv.execute(kv_put("a", {}));
  kv.execute(kv_put("b", {}));
  KvReply r = kv_decode_reply(kv.execute(kv_size()));
  Reader rd(r.value);
  EXPECT_EQ(rd.u64(), 2u);
}

TEST(KvStore, ReadonlyDoesNotMutate) {
  KvStore kv;
  Bytes put = kv_put("k", to_bytes(std::string("v")));
  KvReply r = kv_decode_reply(kv.execute_readonly(put));
  EXPECT_FALSE(r.ok);  // mutation rejected
  EXPECT_EQ(kv.size(), 0u);
}

TEST(KvStore, ReadonlyGetWorks) {
  KvStore kv;
  kv.execute(kv_put("k", to_bytes(std::string("v"))));
  KvReply r = kv_decode_reply(kv.execute_readonly(kv_get("k")));
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(to_string(r.value), "v");
}

TEST(KvStore, SnapshotRestoreRoundTrip) {
  KvStore a;
  a.execute(kv_put("x", to_bytes(std::string("1"))));
  a.execute(kv_put("y", to_bytes(std::string("2"))));
  Bytes snap = a.snapshot();

  KvStore b;
  b.execute(kv_put("z", to_bytes(std::string("junk"))));
  b.restore(snap);
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(to_string(kv_decode_reply(b.execute(kv_get("x"))).value), "1");
  EXPECT_FALSE(kv_decode_reply(b.execute(kv_get("z"))).ok);
}

TEST(KvStore, EmptySnapshot) {
  KvStore a;
  Bytes snap = a.snapshot();
  KvStore b;
  b.execute(kv_put("k", {}));
  b.restore(snap);
  EXPECT_EQ(b.size(), 0u);
}

TEST(KvStore, DeterministicReplay) {
  // Same op sequence on two instances -> same snapshots (RSM property A.14).
  std::vector<Bytes> ops = {kv_put("a", to_bytes(std::string("1"))),
                            kv_put("b", to_bytes(std::string("2"))), kv_del("a"),
                            kv_put("b", to_bytes(std::string("3")))};
  KvStore x, y;
  for (const Bytes& op : ops) {
    Bytes rx = x.execute(op);
    Bytes ry = y.execute(op);
    EXPECT_EQ(rx, ry);
  }
  EXPECT_EQ(x.snapshot(), y.snapshot());
}

TEST(KvStore, CloneEmptyIsEmpty) {
  KvStore kv;
  kv.execute(kv_put("k", {}));
  auto fresh = kv.clone_empty();
  KvReply r = kv_decode_reply(fresh->execute(kv_get("k")));
  EXPECT_FALSE(r.ok);
}

TEST(KvStore, MputAppliesAtomicallyAndBumpsShardSeq) {
  KvStore kv;
  EXPECT_EQ(kv.shard_seq(), 0u);
  KvMputReply r = kv_decode_mput_reply(kv.execute(
      kv_mput({{"a", to_bytes(std::string("1"))}, {"b", to_bytes(std::string("2"))}})));
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.shard_seq, 1u);  // one ordered mutation, regardless of key count
  EXPECT_EQ(kv.shard_seq(), 1u);
  EXPECT_EQ(kv.size(), 2u);
  EXPECT_EQ(to_string(kv_decode_reply(kv.execute(kv_get("b"))).value), "2");
}

TEST(KvStore, MputRejectedWhenReadonly) {
  KvStore kv;
  Bytes op = kv_mput({{"a", to_bytes(std::string("1"))}});
  EXPECT_FALSE(kv_decode_reply(kv.execute_readonly(op)).ok);
  EXPECT_EQ(kv.size(), 0u);
  EXPECT_EQ(kv.shard_seq(), 0u);
}

TEST(KvStore, MgetReturnsEntriesInRequestOrderWithShardSeq) {
  KvStore kv;
  kv.execute(kv_put("x", to_bytes(std::string("1"))));
  kv.execute(kv_put("y", to_bytes(std::string("2"))));
  KvMgetReply r = kv_decode_mget_reply(kv.execute(kv_mget({"y", "missing", "x"})));
  EXPECT_EQ(r.shard_seq, 2u);  // two puts applied before the ordered read
  ASSERT_EQ(r.entries.size(), 3u);
  EXPECT_TRUE(r.entries[0].ok);
  EXPECT_EQ(to_string(r.entries[0].value), "2");
  EXPECT_FALSE(r.entries[1].ok);
  EXPECT_TRUE(r.entries[2].ok);
  EXPECT_EQ(to_string(r.entries[2].value), "1");
}

TEST(KvStore, WeakMgetOmitsShardSeqButKeepsValues) {
  // The weak fast path must produce replies that do not depend on the
  // shard-wide mutation count: replicas answering at different commit
  // positions would otherwise never match while unrelated keys churn.
  KvStore kv;
  kv.execute(kv_put("x", to_bytes(std::string("1"))));
  KvMgetReply r = kv_decode_mget_reply(kv.execute_weak(kv_mget({"x"})));
  EXPECT_EQ(r.shard_seq, 0u);
  ASSERT_EQ(r.entries.size(), 1u);
  EXPECT_TRUE(r.entries[0].ok);
  EXPECT_EQ(to_string(r.entries[0].value), "1");

  Bytes before = kv.execute_weak(kv_mget({"x"}));
  kv.execute(kv_put("unrelated", to_bytes(std::string("z"))));
  // Reply bytes for {"x"} are unchanged by the unrelated write, while the
  // ordered read does observe the new mutation count.
  EXPECT_EQ(kv.execute_weak(kv_mget({"x"})), before);
  EXPECT_EQ(kv_decode_mget_reply(kv.execute_readonly(kv_mget({"x"}))).shard_seq, 2u);
}

TEST(KvStore, ShardSeqSurvivesSnapshotRestore) {
  KvStore a;
  a.execute(kv_put("k", to_bytes(std::string("v"))));
  a.execute(kv_del("k"));
  EXPECT_EQ(a.shard_seq(), 2u);
  KvStore b;
  b.restore(a.snapshot());
  // Replicas adopting a checkpoint must agree on the mutation count too,
  // or read-your-writes checks would diverge after state transfer.
  EXPECT_EQ(b.shard_seq(), 2u);
}

TEST(KvStore, ParseOpRoundTrips) {
  KvParsedOp put = kv_parse_op(kv_put("k", to_bytes(std::string("v"))));
  EXPECT_EQ(put.kind, KvOp::Put);
  ASSERT_EQ(put.keys.size(), 1u);
  EXPECT_EQ(put.keys[0], "k");
  EXPECT_EQ(to_string(put.values[0]), "v");

  KvParsedOp get = kv_parse_op(kv_get("g"));
  EXPECT_EQ(get.kind, KvOp::Get);
  EXPECT_EQ(get.keys[0], "g");

  KvParsedOp size = kv_parse_op(kv_size());
  EXPECT_EQ(size.kind, KvOp::Size);
  EXPECT_TRUE(size.keys.empty());

  KvParsedOp mget = kv_parse_op(kv_mget({"a", "b"}));
  EXPECT_EQ(mget.kind, KvOp::MGet);
  EXPECT_EQ(mget.keys, (std::vector<std::string>{"a", "b"}));

  KvParsedOp mput = kv_parse_op(kv_mput({{"a", to_bytes(std::string("1"))}}));
  EXPECT_EQ(mput.kind, KvOp::MPut);
  EXPECT_EQ(mput.keys[0], "a");
  EXPECT_EQ(to_string(mput.values[0]), "1");

  EXPECT_THROW(kv_parse_op(Bytes{0x77}), SerdeError);
}

TEST(KvStore, MalformedOpThrows) {
  KvStore kv;
  Bytes garbage = {0x99};
  EXPECT_THROW(kv.execute(garbage), SerdeError);
}

TEST(KvStore, BinaryValues) {
  KvStore kv;
  Bytes blob(300);
  for (std::size_t i = 0; i < blob.size(); ++i) blob[i] = static_cast<std::uint8_t>(i);
  kv.execute(kv_put("bin", blob));
  EXPECT_EQ(kv_decode_reply(kv.execute(kv_get("bin"))).value, blob);
}

}  // namespace
}  // namespace spider
