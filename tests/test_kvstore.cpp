#include <gtest/gtest.h>

#include "app/kvstore.hpp"
#include "common/serde.hpp"

namespace spider {
namespace {

TEST(KvStore, PutGet) {
  KvStore kv;
  kv.execute(kv_put("k", to_bytes(std::string("v"))));
  KvReply r = kv_decode_reply(kv.execute(kv_get("k")));
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(to_string(r.value), "v");
}

TEST(KvStore, GetMissing) {
  KvStore kv;
  KvReply r = kv_decode_reply(kv.execute(kv_get("nope")));
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.value.empty());
}

TEST(KvStore, Overwrite) {
  KvStore kv;
  kv.execute(kv_put("k", to_bytes(std::string("v1"))));
  kv.execute(kv_put("k", to_bytes(std::string("v2"))));
  KvReply r = kv_decode_reply(kv.execute(kv_get("k")));
  EXPECT_EQ(to_string(r.value), "v2");
  EXPECT_EQ(kv.size(), 1u);
}

TEST(KvStore, Delete) {
  KvStore kv;
  kv.execute(kv_put("k", to_bytes(std::string("v"))));
  KvReply del = kv_decode_reply(kv.execute(kv_del("k")));
  EXPECT_TRUE(del.ok);
  EXPECT_FALSE(kv_decode_reply(kv.execute(kv_get("k"))).ok);
  KvReply del2 = kv_decode_reply(kv.execute(kv_del("k")));
  EXPECT_FALSE(del2.ok);  // already gone
}

TEST(KvStore, SizeOp) {
  KvStore kv;
  kv.execute(kv_put("a", {}));
  kv.execute(kv_put("b", {}));
  KvReply r = kv_decode_reply(kv.execute(kv_size()));
  Reader rd(r.value);
  EXPECT_EQ(rd.u64(), 2u);
}

TEST(KvStore, ReadonlyDoesNotMutate) {
  KvStore kv;
  Bytes put = kv_put("k", to_bytes(std::string("v")));
  KvReply r = kv_decode_reply(kv.execute_readonly(put));
  EXPECT_FALSE(r.ok);  // mutation rejected
  EXPECT_EQ(kv.size(), 0u);
}

TEST(KvStore, ReadonlyGetWorks) {
  KvStore kv;
  kv.execute(kv_put("k", to_bytes(std::string("v"))));
  KvReply r = kv_decode_reply(kv.execute_readonly(kv_get("k")));
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(to_string(r.value), "v");
}

TEST(KvStore, SnapshotRestoreRoundTrip) {
  KvStore a;
  a.execute(kv_put("x", to_bytes(std::string("1"))));
  a.execute(kv_put("y", to_bytes(std::string("2"))));
  Bytes snap = a.snapshot();

  KvStore b;
  b.execute(kv_put("z", to_bytes(std::string("junk"))));
  b.restore(snap);
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(to_string(kv_decode_reply(b.execute(kv_get("x"))).value), "1");
  EXPECT_FALSE(kv_decode_reply(b.execute(kv_get("z"))).ok);
}

TEST(KvStore, EmptySnapshot) {
  KvStore a;
  Bytes snap = a.snapshot();
  KvStore b;
  b.execute(kv_put("k", {}));
  b.restore(snap);
  EXPECT_EQ(b.size(), 0u);
}

TEST(KvStore, DeterministicReplay) {
  // Same op sequence on two instances -> same snapshots (RSM property A.14).
  std::vector<Bytes> ops = {kv_put("a", to_bytes(std::string("1"))),
                            kv_put("b", to_bytes(std::string("2"))), kv_del("a"),
                            kv_put("b", to_bytes(std::string("3")))};
  KvStore x, y;
  for (const Bytes& op : ops) {
    Bytes rx = x.execute(op);
    Bytes ry = y.execute(op);
    EXPECT_EQ(rx, ry);
  }
  EXPECT_EQ(x.snapshot(), y.snapshot());
}

TEST(KvStore, CloneEmptyIsEmpty) {
  KvStore kv;
  kv.execute(kv_put("k", {}));
  auto fresh = kv.clone_empty();
  KvReply r = kv_decode_reply(fresh->execute(kv_get("k")));
  EXPECT_FALSE(r.ok);
}

TEST(KvStore, MalformedOpThrows) {
  KvStore kv;
  Bytes garbage = {0x99};
  EXPECT_THROW(kv.execute(garbage), SerdeError);
}

TEST(KvStore, BinaryValues) {
  KvStore kv;
  Bytes blob(300);
  for (std::size_t i = 0; i < blob.size(); ++i) blob[i] = static_cast<std::uint8_t>(i);
  kv.execute(kv_put("bin", blob));
  EXPECT_EQ(kv_decode_reply(kv.execute(kv_get("bin"))).value, blob);
}

}  // namespace
}  // namespace spider
