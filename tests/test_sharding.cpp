// Sharded Spider subsystem: topology validation, keyspace routing,
// cross-shard fan-out ops, and checkpoint state transfer into a group
// added to one shard while the other shards keep committing.
#include <gtest/gtest.h>

#include <set>

#include "shard/sharded_system.hpp"
#include "sim/world.hpp"

namespace spider {
namespace {

/// Small intervals/capacities so checkpoint and flow-control paths are
/// exercised quickly (mirrors tests/test_spider.cpp).
SpiderTopology small_core(std::vector<Region> regions = {Region::Virginia, Region::Oregon}) {
  SpiderTopology t;
  t.exec_regions = std::move(regions);
  t.ka = 4;
  t.ke = 4;
  t.ag_win = 16;
  t.commit_capacity = 8;
  t.request_timeout = kSecond;
  t.view_change_timeout = 2 * kSecond;
  t.client_retry = kSecond;
  return t;
}

ShardedTopology small_sharded(std::uint32_t shards) {
  ShardedTopology t;
  t.shards = shards;
  t.base = small_core();
  return t;
}

/// Finds a key of the form "<tag>-N" owned by `shard`.
std::string key_for_shard(const ShardMap& map, std::uint32_t shard, const std::string& tag) {
  for (int i = 0;; ++i) {
    std::string key = tag + "-" + std::to_string(i);
    if (map.shard_of(key) == shard) return key;
  }
}

struct Fixture {
  World world;
  ShardedSpiderSystem sys;

  explicit Fixture(ShardedTopology topo = small_sharded(2), std::uint64_t seed = 1)
      : world(seed), sys(world, std::move(topo)) {}

  std::pair<KvReply, Duration> do_put(ShardedClient& c, const std::string& key,
                                      const std::string& value,
                                      Duration timeout = 10 * kSecond) {
    KvReply out;
    Duration lat = -1;
    c.put(key, to_bytes(value), [&](Bytes result, Duration l) {
      out = kv_decode_reply(result);
      lat = l;
    });
    Time deadline = world.now() + timeout;
    while (lat < 0 && world.now() < deadline) world.queue().run_next();
    return {out, lat};
  }

  std::pair<KvReply, Duration> do_get(ShardedClient& c, const std::string& key,
                                      Duration timeout = 10 * kSecond) {
    KvReply out;
    Duration lat = -1;
    c.get(key, [&](Bytes result, Duration l) {
      out = kv_decode_reply(result);
      lat = l;
    });
    Time deadline = world.now() + timeout;
    while (lat < 0 && world.now() < deadline) world.queue().run_next();
    return {out, lat};
  }
};

// ----------------------------------------------- topology validation (PR 2)

void expect_rejected(const SpiderTopology& t, const std::string& field) {
  World world(1);
  try {
    SpiderSystem sys(world, t);
    FAIL() << "expected rejection naming " << field;
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
        << "message '" << e.what() << "' does not name " << field;
  }
}

TEST(TopologyValidation, RejectsZeroFa) {
  SpiderTopology t;
  t.fa = 0;
  expect_rejected(t, "fa");
}

TEST(TopologyValidation, RejectsZeroFe) {
  SpiderTopology t;
  t.fe = 0;
  expect_rejected(t, "fe");
}

TEST(TopologyValidation, RejectsZeroMaxBatch) {
  SpiderTopology t;
  t.max_batch = 0;
  expect_rejected(t, "max_batch");
}

TEST(TopologyValidation, RejectsEmptyExecRegions) {
  SpiderTopology t;
  t.exec_regions.clear();
  expect_rejected(t, "exec_regions");
}

TEST(TopologyValidation, RejectsAgWinSmallerThanMaxBatch) {
  SpiderTopology t;
  t.ag_win = 8;
  t.max_batch = 16;
  expect_rejected(t, "ag_win");
}

TEST(TopologyValidation, RejectsZeroShards) {
  World world(1);
  ShardedTopology t = small_sharded(1);
  t.shards = 0;
  try {
    ShardedSpiderSystem sys(world, t);
    FAIL() << "expected rejection";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("shards"), std::string::npos);
  }
}

TEST(TopologyValidation, RejectsTinyGroupIdStride) {
  World world(1);
  ShardedTopology t = small_sharded(2);
  t.group_id_stride = 1;  // smaller than the per-core group count
  EXPECT_THROW(ShardedSpiderSystem(world, t), std::invalid_argument);
}

TEST(TopologyValidation, ShardedRejectsBadBase) {
  World world(1);
  ShardedTopology t = small_sharded(2);
  t.base.fe = 0;
  EXPECT_THROW(ShardedSpiderSystem(world, t), std::invalid_argument);
}

TEST(TopologyValidation, ValidTopologyPasses) {
  World world(1);
  SpiderTopology t;  // defaults are sane
  EXPECT_NO_THROW(validate_topology(t));
}

// ------------------------------------------------------------------ routing

TEST(ShardedSpider, CoresGetDisjointGroupIdRanges) {
  Fixture f;
  std::set<GroupId> seen;
  for (std::uint32_t s = 0; s < f.sys.shard_count(); ++s) {
    for (GroupId g : f.sys.core(s).group_ids()) {
      EXPECT_TRUE(seen.insert(g).second) << "GroupId " << g << " reused across cores";
    }
  }
}

TEST(ShardedSpider, SingleKeyWritesLandOnOwningShardOnly) {
  Fixture f;
  auto client = f.sys.make_client(Site{Region::Virginia, 0});
  std::string k0 = key_for_shard(f.sys.shard_map(), 0, "route0");
  std::string k1 = key_for_shard(f.sys.shard_map(), 1, "route1");

  ASSERT_TRUE(f.do_put(*client, k0, "a").first.ok);
  ASSERT_TRUE(f.do_put(*client, k1, "b").first.ok);
  f.world.run_for(2 * kSecond);  // drain commit channels everywhere

  // Shard 0's replicas hold k0 but not k1 (and vice versa): the keyspace is
  // genuinely partitioned, not replicated across cores.
  for (std::uint32_t s = 0; s < 2; ++s) {
    SpiderSystem& core = f.sys.core(s);
    for (GroupId g : core.group_ids()) {
      for (std::size_t i = 0; i < core.group_size(g); ++i) {
        const Application& app = core.exec(g, i).app();
        KvReply own = kv_decode_reply(app.execute_readonly(kv_get(s == 0 ? k0 : k1)));
        KvReply other = kv_decode_reply(app.execute_readonly(kv_get(s == 0 ? k1 : k0)));
        EXPECT_TRUE(own.ok) << "shard " << s << " group " << g << " replica " << i;
        EXPECT_FALSE(other.ok) << "shard " << s << " group " << g << " replica " << i;
      }
    }
  }
}

TEST(ShardedSpider, StrongReadRoutesToOwningShard) {
  Fixture f;
  auto client = f.sys.make_client(Site{Region::Oregon, 0});
  std::string k1 = key_for_shard(f.sys.shard_map(), 1, "sr");
  ASSERT_TRUE(f.do_put(*client, k1, "v").first.ok);
  auto [reply, lat] = f.do_get(*client, k1);
  EXPECT_TRUE(reply.ok);
  EXPECT_EQ(to_string(reply.value), "v");
}

TEST(ShardedSpider, CrossShardSingleOpRejected) {
  Fixture f;
  auto client = f.sys.make_client(Site{Region::Virginia, 0});
  std::string k0 = key_for_shard(f.sys.shard_map(), 0, "x0");
  std::string k1 = key_for_shard(f.sys.shard_map(), 1, "x1");
  Bytes cross = kv_mput({{k0, to_bytes(std::string("a"))}, {k1, to_bytes(std::string("b"))}});
  EXPECT_THROW(client->write(std::move(cross), [](Bytes, Duration) {}),
               std::invalid_argument);
  // Ops with no routing key cannot be routed either.
  EXPECT_THROW((void)client->route_op(kv_size()), std::invalid_argument);
}

TEST(ShardedSpider, MultiKeyOpOnOneShardRoutesAsWrite) {
  Fixture f;
  auto client = f.sys.make_client(Site{Region::Virginia, 0});
  std::string a = key_for_shard(f.sys.shard_map(), 0, "same-a");
  std::string b = key_for_shard(f.sys.shard_map(), 0, "same-b");
  KvMputReply out;
  Duration lat = -1;
  client->write(kv_mput({{a, to_bytes(std::string("1"))}, {b, to_bytes(std::string("2"))}}),
                [&](Bytes reply, Duration l) {
                  out = kv_decode_mput_reply(reply);
                  lat = l;
                });
  Time deadline = f.world.now() + 10 * kSecond;
  while (lat < 0 && f.world.now() < deadline) f.world.queue().run_next();
  ASSERT_TRUE(out.ok);
  EXPECT_GE(out.shard_seq, 1u);
  EXPECT_TRUE(f.do_get(*client, b).first.ok);
}

// ------------------------------------------------------- cross-shard fan-out

TEST(ShardedSpider, MputMgetReadYourWritesPerShard) {
  Fixture f(small_sharded(4));
  auto client = f.sys.make_client(Site{Region::Virginia, 0});

  // Enough keys to touch several shards with high probability.
  std::vector<std::pair<std::string, Bytes>> pairs;
  std::vector<std::string> keys;
  for (int i = 0; i < 12; ++i) {
    std::string k = "multi-" + std::to_string(i);
    keys.push_back(k);
    pairs.emplace_back(k, to_bytes(std::string("v") + std::to_string(i)));
  }

  ShardedClient::MputResult put_result;
  Duration put_lat = -1;
  client->mput(pairs, [&](ShardedClient::MputResult res, Duration l) {
    put_result = std::move(res);
    put_lat = l;
  });
  Time deadline = f.world.now() + 20 * kSecond;
  while (put_lat < 0 && f.world.now() < deadline) f.world.queue().run_next();
  ASSERT_GE(put_lat, 0) << "mput did not complete";
  ASSERT_TRUE(put_result.ok);
  EXPECT_GT(put_result.shard_seqs.size(), 1u) << "workload should span shards";
  for (const auto& [shard, seq] : put_result.shard_seqs) EXPECT_GE(seq, 1u) << shard;

  std::vector<ShardedClient::MgetEntry> entries;
  Duration get_lat = -1;
  client->mget(keys, [&](std::vector<ShardedClient::MgetEntry> e, Duration l) {
    entries = std::move(e);
    get_lat = l;
  });
  deadline = f.world.now() + 20 * kSecond;
  while (get_lat < 0 && f.world.now() < deadline) f.world.queue().run_next();
  ASSERT_GE(get_lat, 0) << "mget did not complete";

  ASSERT_EQ(entries.size(), keys.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].key, keys[i]);
    EXPECT_TRUE(entries[i].ok) << keys[i];
    EXPECT_EQ(to_string(entries[i].value), "v" + std::to_string(i));
    EXPECT_EQ(entries[i].shard, f.sys.shard_map().shard_of(keys[i]));
    // Read-your-writes per shard: the read observed at least the mutation
    // count our own MPUT produced on that key's shard.
    auto it = put_result.shard_seqs.find(entries[i].shard);
    ASSERT_NE(it, put_result.shard_seqs.end());
    EXPECT_GE(entries[i].shard_seq, it->second) << keys[i];
  }
}

TEST(ShardedSpider, WeakMgetServesValuesUnderConcurrentWrites) {
  Fixture f(small_sharded(2));
  auto client = f.sys.make_client(Site{Region::Virginia, 0});
  std::string k0 = key_for_shard(f.sys.shard_map(), 0, "wm0");
  std::string k1 = key_for_shard(f.sys.shard_map(), 1, "wm1");
  ASSERT_TRUE(f.do_put(*client, k0, "a").first.ok);
  ASSERT_TRUE(f.do_put(*client, k1, "b").first.ok);
  f.world.run_for(2 * kSecond);

  // Keep unrelated keys churning on both shards while the weak MGET runs:
  // the fast-path replies must still quorum-match (they carry no shard-wide
  // mutation count), so the read completes with shard_seq 0.
  auto writer = f.sys.make_client(Site{Region::Virginia, 1});
  std::function<void(int)> churn = [&](int i) {
    if (i >= 12) return;
    writer->put("churn-" + std::to_string(i), to_bytes(std::string("x")),
                [&churn, i](Bytes, Duration) { churn(i + 1); });
  };
  churn(0);

  std::vector<ShardedClient::MgetEntry> entries;
  Duration lat = -1;
  client->mget({k0, k1}, [&](std::vector<ShardedClient::MgetEntry> e, Duration l) {
    entries = std::move(e);
    lat = l;
  }, /*weak=*/true);
  Time deadline = f.world.now() + 10 * kSecond;
  while (lat < 0 && f.world.now() < deadline) f.world.queue().run_next();
  ASSERT_GE(lat, 0) << "weak mget starved under write churn";
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_TRUE(entries[0].ok);
  EXPECT_EQ(to_string(entries[0].value), "a");
  EXPECT_TRUE(entries[1].ok);
  EXPECT_EQ(to_string(entries[1].value), "b");
  for (const auto& e : entries) EXPECT_EQ(e.shard_seq, 0u) << "weak reads carry no seq";
}

TEST(ShardedSpider, AddGroupBeyondGroupIdStrideRejected) {
  ShardedTopology topo = small_sharded(2);
  topo.group_id_stride = 3;  // room for the 2 initial groups + exactly one more
  Fixture f(topo);
  bool added = false;
  f.sys.add_group(0, Region::SaoPaulo, [&] { added = true; });
  Time deadline = f.world.now() + 30 * kSecond;
  while (!added && f.world.now() < deadline) f.world.queue().run_next();
  ASSERT_TRUE(added);
  // A second add would hand out shard 1's first GroupId: must fail loudly
  // instead of silently breaking cross-core disjointness.
  EXPECT_THROW(f.sys.add_group(0, Region::Ohio), std::runtime_error);
  std::set<GroupId> seen;
  for (std::uint32_t s = 0; s < 2; ++s) {
    for (GroupId g : f.sys.core(s).group_ids()) EXPECT_TRUE(seen.insert(g).second);
  }
}

TEST(ShardedSpider, VersionBumpBecomesVisibleThroughClient) {
  // A rebalanced table (version bump) reaches a router via adopt_map and
  // changes where keys route; stale and duplicate versions are ignored.
  Fixture f;
  auto client = f.sys.make_client(Site{Region::Virginia, 0});
  std::string key = key_for_shard(f.sys.shard_map(), 1, "mv");
  ASSERT_EQ(client->route_key(key), 1u);

  // Move the whole ring to shard 0, version 2.
  ShardMap next = f.sys.shard_map();
  next.set_ranges({{0, 0}}, 2);
  f.sys.set_shard_map(next);
  EXPECT_TRUE(client->adopt_map(f.sys.shard_map()));
  EXPECT_EQ(client->map().version(), 2u);
  EXPECT_EQ(client->route_key(key), 0u);  // routing visibly changed

  // Re-adopting the same version is a no-op; an older table is rejected.
  EXPECT_FALSE(client->adopt_map(next));
  EXPECT_FALSE(client->adopt_map(ShardMap::uniform(2)));  // version 1
  EXPECT_EQ(client->map().version(), 2u);

  // A mismatched shard count can never be adopted (subclients are fixed).
  EXPECT_THROW(client->adopt_map(ShardMap::uniform(3)), std::invalid_argument);

  // The routed write now lands on shard 0 under the new table.
  auto [reply, lat] = f.do_put(*client, key, "v");
  ASSERT_TRUE(reply.ok);
  f.world.run_for(2 * kSecond);
  GroupId g0 = f.sys.core(0).group_ids().front();
  KvReply local = kv_decode_reply(
      f.sys.core(0).exec(g0, 0).app().execute_weak(kv_get(key)));
  EXPECT_TRUE(local.ok);
  EXPECT_EQ(to_string(local.value), "v");
}

TEST(ShardedSpider, SizeAggregatesAcrossShards) {
  Fixture f;
  auto client = f.sys.make_client(Site{Region::Virginia, 0});
  std::string k0 = key_for_shard(f.sys.shard_map(), 0, "sz0");
  std::string k1 = key_for_shard(f.sys.shard_map(), 1, "sz1");
  ASSERT_TRUE(f.do_put(*client, k0, "a").first.ok);
  ASSERT_TRUE(f.do_put(*client, k1, "b").first.ok);

  std::uint64_t total = 0;
  Duration lat = -1;
  client->size([&](std::uint64_t t, Duration l) {
    total = t;
    lat = l;
  });
  Time deadline = f.world.now() + 10 * kSecond;
  while (lat < 0 && f.world.now() < deadline) f.world.queue().run_next();
  EXPECT_EQ(total, 2u);
}

// --------------------------------------- checkpoint transfer under sharding

TEST(ShardedSpider, AddGroupStateTransferWhileOtherShardsCommit) {
  Fixture f(small_sharded(2), /*seed=*/77);
  auto client = f.sys.make_client(Site{Region::Virginia, 0});
  const ShardMap& map = f.sys.shard_map();

  // Build up shard-0 history far beyond its commit window (capacity 8), so
  // a group joining later can only catch up via Checkpointer::fetch_cp.
  for (int i = 0; i < 30; ++i) {
    std::string k = key_for_shard(map, 0, "pre" + std::to_string(i));
    ASSERT_TRUE(f.do_put(*client, k, "s0-" + std::to_string(i)).first.ok);
  }
  std::string probe = key_for_shard(map, 0, "pre0");

  // Add a group to shard 0 while shard 1 keeps committing writes.
  bool added = false;
  GroupId ng = f.sys.add_group(0, Region::SaoPaulo, [&] { added = true; });
  int shard1_ok = 0;
  for (int i = 0; i < 10; ++i) {
    std::string k = key_for_shard(map, 1, "during" + std::to_string(i));
    if (f.do_put(*client, k, "s1-" + std::to_string(i)).first.ok) ++shard1_ok;
  }
  Time deadline = f.world.now() + 30 * kSecond;
  while (!added && f.world.now() < deadline) f.world.queue().run_next();
  ASSERT_TRUE(added);
  EXPECT_EQ(shard1_ok, 10) << "shard 1 must not stall behind shard 0's reconfiguration";

  // Nudge shard 0's pipeline so the new group receives Executes, then give
  // the cross-group checkpoint fetch time to close the gap.
  ASSERT_TRUE(f.do_put(*client, key_for_shard(map, 0, "post"), "v").first.ok);
  f.world.run_for(10 * kSecond);

  SpiderSystem& core0 = f.sys.core(0);
  GroupId g0 = core0.group_ids().front();
  SeqNr healthy = core0.exec(g0, 0).executed_seq();
  bool fetched = false;
  for (std::size_t i = 0; i < core0.group_size(ng); ++i) {
    ExecutionReplica& r = core0.exec(ng, i);
    EXPECT_GE(r.executed_seq() + 2, healthy) << "replica " << i << " still trailing";
    fetched = fetched || r.catchups() > 0;
    // Pre-join state arrived via snapshot, not replay.
    KvReply pre = kv_decode_reply(r.app().execute_readonly(kv_get(probe)));
    EXPECT_TRUE(pre.ok) << "replica " << i << " missing pre-join key";
  }
  EXPECT_TRUE(fetched) << "no new-group replica used the checkpoint fetch path";

  // A local client can use the new group, and its weak reads are local.
  auto sp = f.sys.make_client(Site{Region::SaoPaulo, 0});
  EXPECT_EQ(sp->shard_client(0).group().group, ng);
  KvReply out;
  Duration lat = -1;
  sp->weak_get(probe, [&](Bytes reply, Duration l) {
    out = kv_decode_reply(reply);
    lat = l;
  });
  deadline = f.world.now() + 10 * kSecond;
  while (lat < 0 && f.world.now() < deadline) f.world.queue().run_next();
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(to_string(out.value), "s0-0");
  EXPECT_LT(lat, 5 * kMillisecond);
}

// ------------------------------------------------- client retransmit backoff

TEST(ClientBackoff, RetransmitIntervalIsCappedWithJitter) {
  // A client facing a completely dead group keeps retrying forever; the
  // backoff must stop doubling at kRetryBackoffCap x the base interval.
  World world(9);
  SpiderTopology topo;  // defaults; we only need the group membership
  topo.client_retry = kSecond;
  SpiderSystem sys(world, topo);
  auto client = sys.make_client(Site{Region::Virginia, 0});
  for (NodeId n : client->group().members) world.net().set_node_down(n, true);

  client->write(kv_put("k", to_bytes(std::string("v"))), [](Bytes, Duration) {
    FAIL() << "write must not complete against a dead group";
  });
  world.run_for(200 * kSecond);

  // Ramp: 1+2+4 s, then capped intervals in [8 s, 10 s] (jitter <= base/4).
  // Uncapped doubling would produce only ~7 retries in 200 s; no backoff at
  // all would produce ~160. Both bounds pin the cap AND the backoff.
  EXPECT_GE(client->retries(), 15u);
  EXPECT_LE(client->retries(), 27u);
}

TEST(ClientBackoff, JitterIsDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    World world(seed);
    SpiderTopology topo;
    topo.client_retry = kSecond;
    SpiderSystem sys(world, topo);
    auto client = sys.make_client(Site{Region::Virginia, 0});
    for (NodeId n : client->group().members) world.net().set_node_down(n, true);
    client->write(kv_put("k", to_bytes(std::string("v"))), [](Bytes, Duration) {});
    world.run_for(50 * kSecond);
    return client->retries();
  };
  EXPECT_EQ(run(42), run(42));  // same seed -> identical retry schedule
}

}  // namespace
}  // namespace spider
