#include <gtest/gtest.h>

#include "common/hex.hpp"
#include "common/serde.hpp"

namespace spider {
namespace {

TEST(Serde, RoundTripPrimitives) {
  Writer w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.boolean(true);
  w.boolean(false);

  Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_TRUE(r.done());
}

TEST(Serde, LittleEndianLayout) {
  Writer w;
  w.u32(0x01020304);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.data()[0], 0x04);
  EXPECT_EQ(w.data()[3], 0x01);
}

TEST(Serde, BytesRoundTrip) {
  Bytes payload = {1, 2, 3, 4, 5};
  Writer w;
  w.bytes(payload);
  w.str("hello");

  Reader r(w.data());
  EXPECT_EQ(r.bytes(), payload);
  EXPECT_EQ(r.str(), "hello");
  r.expect_done();
}

TEST(Serde, EmptyBytes) {
  Writer w;
  w.bytes({});
  Reader r(w.data());
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_TRUE(r.done());
}

TEST(Serde, RawBytesNoPrefix) {
  Writer w;
  Bytes raw = {9, 8, 7};
  w.raw(raw);
  EXPECT_EQ(w.size(), 3u);
  Reader r(w.data());
  BytesView v = r.raw(3);
  EXPECT_TRUE(bytes_equal(v, raw));
}

TEST(Serde, TruncatedU64Throws) {
  Bytes buf = {1, 2, 3};
  Reader r(buf);
  EXPECT_THROW(r.u64(), SerdeError);
}

TEST(Serde, TruncatedBytesThrows) {
  Writer w;
  w.u32(100);  // claims 100 bytes follow
  w.u8(1);
  Reader r(w.data());
  EXPECT_THROW(r.bytes(), SerdeError);
}

TEST(Serde, OversizedLengthPrefixThrows) {
  Writer w;
  w.u32(0xffffffffu);
  Reader r(w.data());
  EXPECT_THROW(r.bytes_view(), SerdeError);
}

TEST(Serde, InvalidBooleanThrows) {
  Bytes buf = {7};
  Reader r(buf);
  EXPECT_THROW(r.boolean(), SerdeError);
}

TEST(Serde, ExpectDoneDetectsTrailing) {
  Bytes buf = {1, 2};
  Reader r(buf);
  r.u8();
  EXPECT_THROW(r.expect_done(), SerdeError);
  r.u8();
  EXPECT_NO_THROW(r.expect_done());
}

TEST(Serde, NestedMessages) {
  Writer inner;
  inner.u32(7);
  inner.str("nested");

  Writer outer;
  outer.u8(1);
  outer.bytes(inner.data());

  Reader r(outer.data());
  EXPECT_EQ(r.u8(), 1);
  Reader ir(r.bytes_view());
  EXPECT_EQ(ir.u32(), 7u);
  EXPECT_EQ(ir.str(), "nested");
}

TEST(Hex, RoundTrip) {
  Bytes b = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(to_hex(b), "0001abff");
  EXPECT_EQ(from_hex("0001abff"), b);
  EXPECT_EQ(from_hex("0001ABFF"), b);
}

TEST(Hex, Malformed) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

TEST(Serde, SizeHintedWriterProducesIdenticalBytes) {
  // The size hint is a pure allocation optimization: wire bytes must be
  // byte-identical with and without it, and a (possibly wrong) hint must
  // never truncate.
  auto fill = [](Writer& w) {
    w.u8(7);
    w.u64(0x1122334455667788ULL);
    w.str("size-hinted");
    w.bytes(Bytes(300, 0x5a));
  };
  Writer plain;
  fill(plain);
  Writer hinted(1 + 8 + 4 + 11 + 4 + 300);
  fill(hinted);
  Writer underestimated(4);  // too small: must still grow correctly
  fill(underestimated);
  EXPECT_EQ(plain.data(), hinted.data());
  EXPECT_EQ(plain.data(), underestimated.data());
}

TEST(Serde, ReaderBytesViewIsZeroCopy) {
  Writer w;
  w.bytes(to_bytes(std::string("shared-not-copied")));
  const Bytes& wire = w.data();
  Reader r(wire);
  BytesView v = r.bytes_view();
  EXPECT_EQ(to_string(v), "shared-not-copied");
  // The view aliases the wire buffer (no copy happened).
  EXPECT_EQ(v.data(), wire.data() + 4);
}

class SerdeSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SerdeSizeSweep, LargeBufferRoundTrip) {
  std::size_t n = GetParam();
  Bytes payload(n);
  for (std::size_t i = 0; i < n; ++i) payload[i] = static_cast<std::uint8_t>(i * 31 + 7);
  Writer w;
  w.bytes(payload);
  Reader r(w.data());
  EXPECT_EQ(r.bytes(), payload);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SerdeSizeSweep,
                         ::testing::Values(0, 1, 63, 64, 65, 255, 256, 1024, 65536));

}  // namespace
}  // namespace spider
