// Unit tests for the history recorder and the per-key Wing–Gong
// linearizability checker — including the cases that matter most for a
// checker: it must REJECT bad histories, not just accept good ones.
#include <gtest/gtest.h>

#include "check/linearizer.hpp"
#include "sim/world.hpp"

namespace spider {
namespace {

/// Builds histories with hand-placed timestamps by driving the World clock.
struct HistBuilder {
  World world{1};
  HistoryRecorder hist{world};

  void at(Time t) { world.run_until(t); }

  HistoryRecorder::OpId put(std::uint64_t c, const std::string& k, const std::string& v,
                            Time inv, Time resp) {
    at(inv);
    auto id = hist.invoke(c, HistOp::Put, k, to_bytes(v));
    at(resp);
    hist.respond(id, true);
    return id;
  }
  HistoryRecorder::OpId get(std::uint64_t c, const std::string& k, bool ok,
                            const std::string& v, Time inv, Time resp,
                            HistOp kind = HistOp::StrongGet) {
    at(inv);
    auto id = hist.invoke(c, kind, k);
    at(resp);
    hist.respond(id, ok, to_bytes(v));
    return id;
  }
  HistoryRecorder::OpId pending_put(std::uint64_t c, const std::string& k,
                                    const std::string& v, Time inv) {
    at(inv);
    return hist.invoke(c, HistOp::Put, k, to_bytes(v));
  }
};

TEST(Linearizer, EmptyAndTrivialHistoriesPass) {
  HistBuilder b;
  EXPECT_TRUE(check_kv_history(b.hist).ok);
  b.put(1, "x", "a", 10, 20);
  b.get(1, "x", true, "a", 30, 40);
  EXPECT_TRUE(check_kv_history(b.hist).ok);
}

TEST(Linearizer, MissBeforeFirstWritePasses) {
  HistBuilder b;
  b.get(1, "x", false, "", 0, 5);
  b.put(1, "x", "a", 10, 20);
  EXPECT_TRUE(check_kv_history(b.hist).ok);
}

TEST(Linearizer, StaleStrongReadRejected) {
  HistBuilder b;
  b.put(1, "x", "a", 10, 20);
  b.put(1, "x", "b", 30, 40);
  // Strictly after the second write completed, a strong read must see "b".
  b.get(2, "x", true, "a", 50, 60);
  LinResult r = check_kv_history(b.hist);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("key \"x\""), std::string::npos);
}

TEST(Linearizer, FabricatedValueRejected) {
  HistBuilder b;
  b.put(1, "x", "a", 10, 20);
  b.get(2, "x", true, "never-written", 30, 40);
  EXPECT_FALSE(check_kv_history(b.hist).ok);
}

TEST(Linearizer, LostAcknowledgedWriteRejected) {
  HistBuilder b;
  b.put(1, "x", "a", 10, 20);  // acked
  b.get(2, "x", false, "", 30, 40);  // read misses it: write lost
  EXPECT_FALSE(check_kv_history(b.hist).ok);
}

TEST(Linearizer, ConcurrentWritesAllowEitherOrder) {
  HistBuilder b;
  // Two overlapping writes; a later read may see either one (but the
  // read's own order constraints still apply).
  b.world.run_until(10);
  auto w1 = b.hist.invoke(1, HistOp::Put, "x", to_bytes(std::string("a")));
  b.world.run_until(12);
  auto w2 = b.hist.invoke(2, HistOp::Put, "x", to_bytes(std::string("b")));
  b.world.run_until(30);
  b.hist.respond(w1, true);
  b.hist.respond(w2, true);
  b.get(3, "x", true, "a", 40, 50);
  EXPECT_TRUE(check_kv_history(b.hist).ok);

  HistBuilder b2;
  b2.world.run_until(10);
  auto v1 = b2.hist.invoke(1, HistOp::Put, "x", to_bytes(std::string("a")));
  b2.world.run_until(12);
  auto v2 = b2.hist.invoke(2, HistOp::Put, "x", to_bytes(std::string("b")));
  b2.world.run_until(30);
  b2.hist.respond(v1, true);
  b2.hist.respond(v2, true);
  b2.get(3, "x", true, "b", 40, 50);
  EXPECT_TRUE(check_kv_history(b2.hist).ok);
}

TEST(Linearizer, ReadsOnBothSidesPinConcurrentWriteOrder) {
  // w(a) and w(b) concurrent; read1 sees "b" then read2 (after read1) sees
  // "a" — no single order explains both.
  HistBuilder b;
  b.world.run_until(10);
  auto w1 = b.hist.invoke(1, HistOp::Put, "x", to_bytes(std::string("a")));
  auto w2 = b.hist.invoke(2, HistOp::Put, "x", to_bytes(std::string("b")));
  b.world.run_until(30);
  b.hist.respond(w1, true);
  b.hist.respond(w2, true);
  b.get(3, "x", true, "b", 40, 50);
  b.get(3, "x", true, "a", 60, 70);
  EXPECT_FALSE(check_kv_history(b.hist).ok);
}

TEST(Linearizer, PendingWriteMayOrMayNotTakeEffect) {
  {
    HistBuilder b;
    b.put(1, "x", "a", 10, 20);
    b.pending_put(2, "x", "crashed", 30);     // never acked
    b.get(3, "x", true, "crashed", 40, 50);   // took effect: fine
    EXPECT_TRUE(check_kv_history(b.hist).ok);
  }
  {
    HistBuilder b;
    b.put(1, "x", "a", 10, 20);
    b.pending_put(2, "x", "crashed", 30);
    b.get(3, "x", true, "a", 40, 50);  // never took effect: also fine
    EXPECT_TRUE(check_kv_history(b.hist).ok);
  }
  {
    HistBuilder b;
    b.put(1, "x", "a", 10, 20);
    auto p = b.pending_put(2, "x", "crashed", 30);
    (void)p;
    // Seen, then unseen by a later read: the pending write cannot both
    // take effect and not take effect.
    b.get(3, "x", true, "crashed", 40, 50);
    b.get(3, "x", true, "a", 60, 70);
    EXPECT_FALSE(check_kv_history(b.hist).ok);
  }
}

TEST(Linearizer, DeleteMakesKeyMissing) {
  HistBuilder b;
  b.put(1, "x", "a", 10, 20);
  b.at(30);
  auto d = b.hist.invoke(1, HistOp::Del, "x");
  b.at(40);
  b.hist.respond(d, true);
  b.get(2, "x", false, "", 50, 60);
  EXPECT_TRUE(check_kv_history(b.hist).ok);
}

TEST(Linearizer, WeakReadMayBeArbitrarilyStaleButNotFabricated) {
  HistBuilder b;
  b.put(1, "x", "a", 10, 20);
  b.put(1, "x", "b", 30, 40);
  b.put(1, "x", "c", 50, 60);
  // Weak read long after "c" may still return "a" (stale prefix) or miss
  // entirely (a recovering replica that has not caught up).
  b.get(2, "x", true, "a", 70, 80, HistOp::WeakGet);
  b.get(2, "x", false, "", 90, 95, HistOp::WeakGet);
  EXPECT_TRUE(check_kv_history(b.hist).ok);

  // But a value never written to the key is a violation.
  b.get(2, "x", true, "zz", 100, 110, HistOp::WeakGet);
  EXPECT_FALSE(check_kv_history(b.hist).ok);
}

TEST(Linearizer, WeakReadFromTheFutureRejected) {
  HistBuilder b;
  // The weak read completes before the write is even invoked.
  b.get(2, "x", true, "later", 10, 20, HistOp::WeakGet);
  b.put(1, "x", "later", 30, 40);
  EXPECT_FALSE(check_kv_history(b.hist).ok);
}

TEST(Linearizer, PerKeyComposition) {
  // Violation on one key is found even with clean histories on others.
  HistBuilder b;
  b.put(1, "good", "g", 10, 20);
  b.get(2, "good", true, "g", 30, 40);
  b.put(1, "bad", "v1", 50, 60);
  b.get(2, "bad", true, "other", 70, 80);
  LinResult r = check_kv_history(b.hist);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("key \"bad\""), std::string::npos);
}

TEST(Linearizer, SerializeIsDeterministic) {
  auto build = [] {
    HistBuilder b;
    b.put(1, "x", "a", 10, 20);
    b.get(2, "x", true, "a", 30, 40);
    return b.hist.serialize();
  };
  EXPECT_EQ(build(), build());
  EXPECT_FALSE(build().empty());
}

// ---------------------------------------------------------------------------
// Negative paths a Byzantine replica could produce. The chaos suite's
// Byzantine sweep only proves something if these histories are REJECTED.
// ---------------------------------------------------------------------------

TEST(Linearizer, CorruptedReplyByteRejected) {
  // Byzantine value tampering at the byte level (the corrupt_replies test
  // hook flips the last payload byte): the read returns the written value
  // with one byte off — never written, must be flagged.
  HistBuilder b;
  b.put(1, "x", "honest", 10, 20);
  Bytes tampered = to_bytes(std::string("honest"));
  tampered.back() ^= 0xbd;
  b.at(30);
  auto id = b.hist.invoke(2, HistOp::StrongGet, "x");
  b.at(40);
  b.hist.respond(id, true, tampered);
  EXPECT_FALSE(check_kv_history(b.hist).ok);
}

TEST(Linearizer, CorruptedWeakReplyRejected) {
  // The committed-prefix rule tolerates arbitrary staleness but not
  // tampering: a weak read returning a corrupted byte string is flagged.
  HistBuilder b;
  b.put(1, "x", "honest", 10, 20);
  Bytes tampered = to_bytes(std::string("honest"));
  tampered.back() ^= 0xbd;
  b.at(30);
  auto id = b.hist.invoke(2, HistOp::WeakGet, "x");
  b.at(40);
  b.hist.respond(id, true, tampered);
  EXPECT_FALSE(check_kv_history(b.hist).ok);
}

TEST(Linearizer, CommittedWriteLostAfterBeingObservedRejected) {
  // The write was committed AND observed, then vanishes (e.g. a replica
  // group rebuilt from a tampered state): seen-then-lost has no
  // linearization.
  HistBuilder b;
  b.put(1, "x", "w1", 10, 20);
  b.get(2, "x", true, "w1", 30, 40);
  b.get(2, "x", false, "", 50, 60);  // the key vanished: committed write lost
  EXPECT_FALSE(check_kv_history(b.hist).ok);
}

TEST(Linearizer, WeakReadBeyondCommittedPrefixRejected) {
  // The weak read completes before the write it claims to observe was
  // even invoked: no prefix of any witness order can contain that write,
  // so "stale" cannot explain it.
  HistBuilder b;
  b.put(1, "x", "a", 10, 20);
  b.get(2, "x", true, "b", 30, 40, HistOp::WeakGet);
  b.put(1, "x", "b", 50, 60);
  EXPECT_FALSE(check_kv_history(b.hist).ok);
}

// ---------------------------------------------------------------------------
// Text round trip (chaos failure artifacts embed this encoding).
// ---------------------------------------------------------------------------

TEST(Linearizer, HistoryTextRoundTripsByteIdentically) {
  HistBuilder b;
  b.put(1, "x", "a", 10, 20);
  b.get(2, "x", true, "a", 30, 40);
  b.get(3, "x", false, "", 50, 55, HistOp::WeakGet);
  b.pending_put(4, "y", "never-acked", 60);
  Bytes binary_value = {0x00, 0xff, 0x20, 0x0a};  // NUL, space, newline
  b.at(70);
  auto id = b.hist.invoke(5, HistOp::Put, "y", binary_value);
  b.at(80);
  b.hist.respond(id, true);

  std::string text = b.hist.serialize_text();
  std::vector<RecordedOp> ops = parse_history_text(text);
  EXPECT_EQ(serialize_ops(ops), b.hist.serialize());
  EXPECT_EQ(serialize_ops_text(ops), text);
  EXPECT_EQ(ops.size(), b.hist.ops().size());
}

TEST(Linearizer, MalformedHistoryTextThrows) {
  EXPECT_THROW(parse_history_text("op 1 notanumber"), std::invalid_argument);
  EXPECT_THROW(parse_history_text("nop 1 1 - - 0 0 0 0 -"), std::invalid_argument);
}

}  // namespace
}  // namespace spider
