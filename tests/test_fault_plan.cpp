// Sim-layer tests for the fault-schedule engine: partition stacking on the
// user link filter, crash/restart hooks, link shaping, slow-node mode,
// detach/re-attach in-flight message semantics, and seed determinism.
#include <gtest/gtest.h>

#include "sim/fault_plan.hpp"
#include "sim/node.hpp"
#include "sim/world.hpp"

namespace spider {
namespace {

/// Minimal node: counts and stores inbound payload bytes.
class EchoNode : public SimNode {
 public:
  EchoNode(World& world, Site site) : SimNode(world, world.allocate_id(), site) {}

  void on_message(NodeId from, BytesView data) override {
    ++received;
    last_from = from;
    last_payload = to_bytes(data);
  }

  int received = 0;
  NodeId last_from = kInvalidNode;
  Bytes last_payload;
};

Bytes payload(const char* s) { return to_bytes(std::string(s)); }

TEST(FaultPlan, PartitionCutsAndHeals) {
  World world(1);
  EchoNode a(world, Site{Region::Virginia, 0});
  EchoNode b(world, Site{Region::Tokyo, 0});
  FaultPlan plan(world);
  plan.partition_nodes_at(kSecond, {a.id()}, {b.id()}, /*heal_after=*/kSecond);

  world.net().send(a.id(), b.id(), payload("pre"));
  world.run_for(500 * kMillisecond);
  EXPECT_EQ(b.received, 1);  // before the cut

  world.run_until(kSecond + 10);
  world.net().send(a.id(), b.id(), payload("cut"));
  world.net().send(b.id(), a.id(), payload("cut-rev"));
  world.run_for(500 * kMillisecond);
  EXPECT_EQ(b.received, 1);  // both directions dropped
  EXPECT_EQ(a.received, 0);

  world.run_until(2 * kSecond + 10);  // auto-heal
  world.net().send(a.id(), b.id(), payload("post"));
  world.run_for(500 * kMillisecond);
  EXPECT_EQ(b.received, 2);
}

TEST(FaultPlan, SitePartitionMatchesPlacement) {
  World world(1);
  EchoNode a(world, Site{Region::Virginia, 0});
  EchoNode b(world, Site{Region::Tokyo, 1});
  EchoNode c(world, Site{Region::Oregon, 0});
  FaultPlan plan(world);
  plan.partition_sites_at(0, {Site{Region::Virginia, 0}}, {Site{Region::Tokyo, 1}});

  world.run_for(10);
  world.net().send(a.id(), b.id(), payload("x"));  // cut by site
  world.net().send(a.id(), c.id(), payload("y"));  // unaffected
  world.run_for(kSecond);
  EXPECT_EQ(b.received, 0);
  EXPECT_EQ(c.received, 1);
}

TEST(FaultPlan, StacksOnUserLinkFilter) {
  World world(1);
  EchoNode a(world, Site{Region::Virginia, 0});
  EchoNode b(world, Site{Region::Virginia, 1});
  EchoNode c(world, Site{Region::Virginia, 2});

  // User filter drops a->c; the plan cuts a<->b. Neither clobbers the other.
  NodeId cid = c.id();
  NodeId aid = a.id();
  world.net().set_link_filter([aid, cid](NodeId from, NodeId to) {
    return !(from == aid && to == cid);
  });
  FaultPlan plan(world);
  plan.partition_nodes_at(0, {a.id()}, {b.id()});

  world.run_for(10);
  world.net().send(a.id(), b.id(), payload("x"));
  world.net().send(a.id(), c.id(), payload("y"));
  world.run_for(kSecond);
  EXPECT_EQ(b.received, 0);  // plan cut
  EXPECT_EQ(c.received, 0);  // user filter still applies

  plan.heal_at(world.now());
  world.run_for(10);
  world.net().send(a.id(), b.id(), payload("x2"));
  world.net().send(a.id(), c.id(), payload("y2"));
  world.run_for(kSecond);
  EXPECT_EQ(b.received, 1);  // plan healed
  EXPECT_EQ(c.received, 0);  // user filter untouched by heal
}

TEST(FaultPlan, CrashRestartHooksFire) {
  World world(1);
  FaultPlan plan(world);
  std::vector<std::pair<std::string, NodeId>> events;
  plan.on_crash = [&](NodeId n) { events.emplace_back("crash", n); };
  plan.on_restart = [&](NodeId n) { events.emplace_back("restart", n); };

  plan.crash_at(kSecond, 42);
  plan.restart_at(2 * kSecond, 42);
  plan.restart_at(3 * kSecond, 42);  // duplicate restart: ignored

  world.run_until(500 * kMillisecond);
  EXPECT_TRUE(events.empty());
  EXPECT_FALSE(plan.crashed(42));
  world.run_until(kSecond + 1);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(plan.crashed(42));
  world.run_until(4 * kSecond);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].first, "restart");
  EXPECT_FALSE(plan.crashed(42));
}

TEST(FaultPlan, CrashStopFallbackWithoutHooks) {
  World world(1);
  EchoNode a(world, Site{Region::Virginia, 0});
  EchoNode b(world, Site{Region::Virginia, 1});
  FaultPlan plan(world);
  plan.crash_at(0, b.id());
  plan.restart_at(kSecond, b.id());

  world.run_for(10);
  EXPECT_TRUE(world.net().is_down(b.id()));
  world.net().send(a.id(), b.id(), payload("x"));
  world.run_for(500 * kMillisecond);
  EXPECT_EQ(b.received, 0);

  world.run_until(kSecond + 10);
  EXPECT_FALSE(world.net().is_down(b.id()));
  world.net().send(a.id(), b.id(), payload("y"));
  world.run_for(500 * kMillisecond);
  EXPECT_EQ(b.received, 1);
}

TEST(FaultPlan, LinkDelaySpikeDefersDelivery) {
  World world(1);
  EchoNode a(world, Site{Region::Virginia, 0});
  EchoNode b(world, Site{Region::Virginia, 0});
  FaultPlan plan(world);
  plan.link_delay_at(0, a.id(), b.id(), /*extra=*/300 * kMillisecond,
                     /*duration=*/kSecond);

  world.run_for(10);
  world.net().send(a.id(), b.id(), payload("slowed"));
  world.run_for(250 * kMillisecond);
  EXPECT_EQ(b.received, 0);  // normally sub-millisecond intra-AZ
  world.run_for(200 * kMillisecond);
  EXPECT_EQ(b.received, 1);

  world.run_until(2 * kSecond);  // spike over
  world.net().send(a.id(), b.id(), payload("fast"));
  world.run_for(50 * kMillisecond);
  EXPECT_EQ(b.received, 2);
}

TEST(FaultPlan, LinkLossDropsRoughlyAtRate) {
  World world(99);
  EchoNode a(world, Site{Region::Virginia, 0});
  EchoNode b(world, Site{Region::Virginia, 0});
  FaultPlan plan(world);
  plan.link_loss_at(0, a.id(), b.id(), /*loss=*/0.5, /*duration=*/60 * kSecond);

  world.run_for(10);
  for (int i = 0; i < 200; ++i) world.net().send(a.id(), b.id(), payload("p"));
  world.run_for(10 * kSecond);
  EXPECT_GT(b.received, 60);
  EXPECT_LT(b.received, 140);
}

TEST(FaultPlan, SlowNodeStretchesTransmitTime) {
  World world(1);
  // Jitter off for exact timing math.
  world.net().jitter_frac = 0.0;
  EchoNode a(world, Site{Region::Virginia, 0});
  EchoNode b(world, Site{Region::Virginia, 0});

  Bytes big(75'000, 0xab);  // 1000 us at full 75 B/us bandwidth
  world.net().send(a.id(), b.id(), big);
  world.run_for(5 * kSecond);
  ASSERT_EQ(b.received, 1);

  FaultPlan plan(world);
  plan.slow_node_at(world.now(), a.id(), /*factor=*/0.1, /*duration=*/60 * kSecond);
  world.run_for(10);
  Time before = world.now();
  world.net().send(a.id(), b.id(), big);
  world.run_for(9'000);
  EXPECT_EQ(b.received, 1);  // 10x transmit time: not there yet
  world.run_for(5 * kSecond);
  EXPECT_EQ(b.received, 2);
  (void)before;
}

TEST(FaultPlan, OverlappingWindowsExtendInsteadOfTruncating) {
  World world(1);
  EchoNode a(world, Site{Region::Virginia, 0});
  EchoNode b(world, Site{Region::Virginia, 0});
  FaultPlan plan(world);
  // Two overlapping delay windows: [0, 1s) and [0.5s, 1.5s). The first
  // window's end at 1s must not cancel the second, which runs to 1.5s.
  plan.link_delay_at(0, a.id(), b.id(), 300 * kMillisecond, kSecond);
  plan.link_delay_at(500 * kMillisecond, a.id(), b.id(), 300 * kMillisecond, kSecond);

  world.run_until(1200 * kMillisecond);  // past the first end, inside the second
  world.net().send(a.id(), b.id(), payload("still-slow"));
  world.run_for(250 * kMillisecond);
  EXPECT_EQ(b.received, 0);  // delay still applied
  world.run_for(200 * kMillisecond);
  EXPECT_EQ(b.received, 1);

  world.run_until(2 * kSecond);  // both windows over
  world.net().send(a.id(), b.id(), payload("fast"));
  world.run_for(50 * kMillisecond);
  EXPECT_EQ(b.received, 2);
}

TEST(NetworkIncarnation, InFlightToRestartedNodeIsLost) {
  World world(1);
  EchoNode a(world, Site{Region::Virginia, 0});
  auto b = std::make_unique<EchoNode>(world, Site{Region::Tokyo, 0});
  NodeId b_id = b->id();

  // Message in flight (Tokyo: ~80ms one-way); b restarts before arrival.
  world.net().send(a.id(), b_id, payload("old-epoch"));
  world.run_for(10 * kMillisecond);
  Site site = b->site();
  b.reset();  // crash: detach bumps the incarnation
  // Rebuild under the same id (as restart_node does for replicas).
  class SameId : public SimNode {
   public:
    SameId(World& w, NodeId id, Site s) : SimNode(w, id, s) {}
    void on_message(NodeId, BytesView) override { ++received; }
    int received = 0;
  };
  SameId b2(world, b_id, site);

  world.run_for(kSecond);
  EXPECT_EQ(b2.received, 0);  // the old-epoch message died with the old process

  world.net().send(a.id(), b_id, payload("new-epoch"));
  world.run_for(kSecond);
  EXPECT_EQ(b2.received, 1);  // new-epoch traffic flows normally
}

TEST(NetworkIncarnation, InFlightFromDeadSenderStillArrives) {
  World world(1);
  auto a = std::make_unique<EchoNode>(world, Site{Region::Virginia, 0});
  EchoNode b(world, Site{Region::Tokyo, 0});

  world.net().send(a->id(), b.id(), payload("datagram"));
  world.run_for(10 * kMillisecond);
  a.reset();  // sender dies with the message on the wire
  world.run_for(kSecond);
  EXPECT_EQ(b.received, 1);  // datagrams in flight outlive their sender
}

TEST(FaultPlan, RandomizedScheduleIsSeedDeterministic) {
  auto script_for = [](std::uint64_t seed) {
    World world(seed);
    FaultPlan plan(world);
    FaultPlan::ChaosProfile profile;
    profile.crash_targets = {1, 2, 3, 4};
    profile.partition_groups = {{1, 2}, {3, 4}};
    profile.actions = 6;
    plan.randomize(profile);
    return plan.describe();
  };
  EXPECT_EQ(script_for(5), script_for(5));
  EXPECT_NE(script_for(5), script_for(6));
  EXPECT_FALSE(script_for(5).empty());
}

// ---------------------------------------------------------------------------
// Byzantine windows
// ---------------------------------------------------------------------------

TEST(FaultPlan, ByzantineWindowTogglesFlagsThroughHook) {
  World world(1);
  FaultPlan plan(world);
  std::vector<std::pair<NodeId, ByzantineFlags>> calls;
  plan.on_byzantine = [&](NodeId n, const ByzantineFlags& f) { calls.emplace_back(n, f); };

  plan.corrupt_replies_at(kSecond, 7, kSecond);
  plan.mute_at(2500 * kMillisecond, 9, kSecond, /*rx_too=*/true);

  world.run_until(500 * kMillisecond);
  EXPECT_TRUE(calls.empty());
  EXPECT_FALSE(plan.byzantine(7).any());

  world.run_until(kSecond + 1);
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0].first, 7u);
  EXPECT_TRUE(calls[0].second.corrupt_replies);
  EXPECT_TRUE(plan.byzantine(7).corrupt_replies);

  world.run_until(2 * kSecond + 1);  // window end clears the node
  ASSERT_EQ(calls.size(), 2u);
  EXPECT_FALSE(calls[1].second.any());
  EXPECT_FALSE(plan.byzantine(7).any());

  world.run_until(4 * kSecond);  // mute window ran [2.5s, 3.5s)
  ASSERT_EQ(calls.size(), 4u);
  EXPECT_EQ(calls[2].first, 9u);
  EXPECT_TRUE(calls[2].second.mute);
  EXPECT_TRUE(calls[2].second.mute_rx);
  EXPECT_FALSE(calls[3].second.any());
}

TEST(FaultPlan, OverlappingByzantineWindowsExtendAndCompose) {
  World world(1);
  FaultPlan plan(world);
  // Same flag overlapping: [0, 1s) and [0.5s, 1.5s) — the first end must
  // not clear the flag early. A different flag on the same node composes.
  plan.corrupt_replies_at(0, 7, kSecond);
  plan.corrupt_replies_at(500 * kMillisecond, 7, kSecond);
  plan.drop_forwarding_at(200 * kMillisecond, 7, kSecond);

  world.run_until(1100 * kMillisecond);  // past the first corrupt end
  EXPECT_TRUE(plan.byzantine(7).corrupt_replies);
  EXPECT_TRUE(plan.byzantine(7).drop_forwarding);
  world.run_until(1300 * kMillisecond);  // drop-forwarding window over
  EXPECT_TRUE(plan.byzantine(7).corrupt_replies);
  EXPECT_FALSE(plan.byzantine(7).drop_forwarding);
  world.run_until(2 * kSecond);
  EXPECT_FALSE(plan.byzantine(7).any());
}

TEST(FaultPlan, RandomizedByzantineScheduleRespectsPerRoleCaps) {
  // With caps of 1 per consensus group and 1 per exec group, a schedule of
  // many Byzantine actions must never touch more than one distinct node
  // of each group.
  World world(42);
  FaultPlan plan(world);
  std::set<NodeId> touched;
  plan.on_byzantine = [&](NodeId n, const ByzantineFlags& f) {
    if (f.any()) touched.insert(n);
  };
  FaultPlan::ChaosProfile profile;
  profile.byz_consensus_groups = {{1, 2, 3, 4}};
  profile.max_byz_per_consensus_group = 1;
  profile.byz_exec_groups = {{10, 11, 12}, {20, 21, 22}};
  profile.max_byz_per_exec_group = 1;
  profile.byz_actions = 24;
  plan.randomize(profile);
  world.run_until(profile.horizon + kSecond);

  EXPECT_FALSE(touched.empty());
  auto count_in = [&touched](std::vector<NodeId> grp) {
    std::size_t c = 0;
    for (NodeId n : grp) c += touched.count(n);
    return c;
  };
  EXPECT_LE(count_in({1, 2, 3, 4}), 1u);
  EXPECT_LE(count_in({10, 11, 12}), 1u);
  EXPECT_LE(count_in({20, 21, 22}), 1u);
}

// ---------------------------------------------------------------------------
// Script round trip
// ---------------------------------------------------------------------------

TEST(FaultPlan, ScriptRoundTripReproducesScheduleExactly) {
  auto build = [](FaultPlan& plan) {
    plan.partition_nodes_at(kSecond, {1, 2}, {3, 4}, 2 * kSecond);
    plan.partition_sites_at(kSecond, {Site{Region::Virginia, 0}}, {Site{Region::Tokyo, 1}},
                            kSecond);
    plan.crash_at(2 * kSecond, 5);
    plan.restart_at(4 * kSecond, 5);
    plan.link_delay_at(3 * kSecond, 1, 3, 80 * kMillisecond, kSecond);
    plan.link_loss_at(3 * kSecond, 2, 4, 0.375, kSecond);
    plan.slow_node_at(5 * kSecond, 2, 0.25, kSecond);
    plan.mute_at(6 * kSecond, 1, kSecond, /*rx_too=*/true);
    plan.equivocate_at(6 * kSecond, 2, kSecond);
    plan.forge_checkpoints_at(6 * kSecond, 3, kSecond);
    plan.corrupt_replies_at(7 * kSecond, 4, kSecond);
    plan.drop_forwarding_at(7 * kSecond, 5, kSecond);
    plan.heal_at(8 * kSecond);
  };

  World w1(1);
  FaultPlan p1(w1);
  build(p1);
  std::string script = p1.serialize_script();
  ASSERT_FALSE(script.empty());

  World w2(1);
  FaultPlan p2(w2);
  p2.schedule_script(script);
  // The reloaded plan re-serializes AND re-describes identically: same
  // actions, same order, same parameters (doubles round-trip bit-exactly).
  EXPECT_EQ(p2.serialize_script(), script);
  EXPECT_EQ(p2.describe(), p1.describe());

  // And it *behaves* identically: the same Byzantine transitions fire.
  std::vector<std::pair<NodeId, bool>> t1, t2;
  World w3(1);
  FaultPlan p3(w3);
  p3.on_byzantine = [&t1](NodeId n, const ByzantineFlags& f) { t1.emplace_back(n, f.any()); };
  build(p3);
  w3.run_until(10 * kSecond);
  World w4(1);
  FaultPlan p4(w4);
  p4.on_byzantine = [&t2](NodeId n, const ByzantineFlags& f) { t2.emplace_back(n, f.any()); };
  p4.schedule_script(script);
  w4.run_until(10 * kSecond);
  EXPECT_EQ(t1, t2);
  EXPECT_FALSE(t1.empty());
}

TEST(FaultPlan, RandomizedScheduleSurvivesScriptRoundTrip) {
  World w1(9);
  FaultPlan p1(w1);
  FaultPlan::ChaosProfile profile;
  profile.crash_targets = {1, 2, 3, 4};
  profile.partition_groups = {{1, 2}, {3, 4}};
  profile.actions = 6;
  profile.byz_consensus_groups = {{1, 2, 3, 4}};
  profile.max_byz_per_consensus_group = 1;
  profile.byz_exec_groups = {{10, 11, 12}};
  profile.max_byz_per_exec_group = 1;
  profile.byz_actions = 5;
  p1.randomize(profile);
  std::string script = p1.serialize_script();

  World w2(9);
  FaultPlan p2(w2);
  p2.schedule_script(script);
  EXPECT_EQ(p2.serialize_script(), script);
  EXPECT_EQ(p2.describe(), p1.describe());
}

TEST(FaultPlan, MalformedScriptThrows) {
  World world(1);
  FaultPlan plan(world);
  EXPECT_THROW(plan.schedule_script("crash notatime 5\n"), std::invalid_argument);
  EXPECT_THROW(plan.schedule_script("frobnicate 1000\n"), std::invalid_argument);
  EXPECT_THROW(plan.schedule_script("partition 1000 0 2 1\n"), std::invalid_argument);
}

}  // namespace
}  // namespace spider
