#include <gtest/gtest.h>

#include "consensus/pbft_replica.hpp"
#include "sim/world.hpp"

namespace spider {
namespace {

/// A replica process hosting just a PBFT engine; records deliveries.
class PbftHost : public ComponentHost {
 public:
  PbftHost(World& w, Site site) : ComponentHost(w, w.allocate_id(), site) {}

  void start(PbftConfig cfg) {
    replica = std::make_unique<PbftReplica>(*this, std::move(cfg), [this](SeqNr s, BytesView m) {
      delivered.emplace_back(s, to_bytes(m));
    });
  }

  std::unique_ptr<PbftReplica> replica;
  std::vector<std::pair<SeqNr, Bytes>> delivered;
};

struct PbftGroup {
  World world;
  std::vector<std::unique_ptr<PbftHost>> hosts;

  explicit PbftGroup(std::uint32_t n = 4, std::uint32_t f = 1,
                     std::vector<std::uint32_t> weights = {}, std::uint32_t quorum = 0,
                     std::uint64_t seed = 1, std::uint64_t window = 256)
      : world(seed) {
    std::vector<NodeId> ids;
    for (std::uint32_t i = 0; i < n; ++i) {
      // Replicas in distinct AZs of the same region, as in Spider.
      hosts.push_back(std::make_unique<PbftHost>(world, Site{Region::Virginia,
                                                             static_cast<std::uint8_t>(i % 4)}));
      ids.push_back(hosts.back()->id());
    }
    for (std::uint32_t i = 0; i < n; ++i) {
      PbftConfig cfg;
      cfg.replicas = ids;
      cfg.my_index = i;
      cfg.f = f;
      cfg.weights = weights;
      cfg.quorum_weight = quorum;
      cfg.window = window;
      cfg.request_timeout = 500 * kMillisecond;
      cfg.view_change_timeout = kSecond;
      hosts[i]->start(cfg);
    }
  }

  /// Calls order(m) on every replica (as Spider's wrappers do).
  void order_everywhere(const Bytes& m) {
    for (auto& h : hosts) h->replica->order(m);
  }

  Bytes req(int i) {
    Writer w;
    w.u32(static_cast<std::uint32_t>(i));
    w.str("request");
    return std::move(w).take();
  }
};

TEST(Pbft, SingleRequestDeliveredEverywhere) {
  PbftGroup g;
  Bytes m = g.req(1);
  g.order_everywhere(m);
  g.world.run_for(kSecond);
  for (auto& h : g.hosts) {
    ASSERT_EQ(h->delivered.size(), 1u);
    EXPECT_EQ(h->delivered[0].first, 1u);
    EXPECT_EQ(h->delivered[0].second, m);
  }
}

TEST(Pbft, AgreesOnTotalOrderAcrossReplicas) {
  PbftGroup g;
  // Requests submitted in different interleavings at different replicas.
  for (int i = 0; i < 20; ++i) {
    Bytes m = g.req(i);
    for (std::size_t r = 0; r < g.hosts.size(); ++r) {
      g.hosts[(r + static_cast<std::size_t>(i)) % g.hosts.size()]->replica->order(m);
    }
  }
  g.world.run_for(5 * kSecond);
  ASSERT_EQ(g.hosts[0]->delivered.size(), 20u);
  for (auto& h : g.hosts) {
    ASSERT_EQ(h->delivered.size(), 20u);
    EXPECT_EQ(h->delivered, g.hosts[0]->delivered);  // A-Safety
  }
  // Gap-free, increasing seq numbers starting at 1 (A-Order).
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(g.hosts[0]->delivered[i].first, i + 1);
  }
}

TEST(Pbft, DuplicateOrderDeliveredOnce) {
  PbftGroup g;
  Bytes m = g.req(7);
  g.order_everywhere(m);
  g.order_everywhere(m);
  g.world.run_for(kSecond);
  g.order_everywhere(m);  // after delivery
  g.world.run_for(kSecond);
  for (auto& h : g.hosts) EXPECT_EQ(h->delivered.size(), 1u);
}

TEST(Pbft, IntraRegionLatencyIsMilliseconds) {
  PbftGroup g;
  Time start = g.world.now();
  g.order_everywhere(g.req(1));
  // Run only until the first delivery to measure agreement latency.
  while (g.hosts[0]->delivered.empty() && g.world.now() < kSecond) {
    g.world.queue().run_next();
  }
  ASSERT_FALSE(g.hosts[0]->delivered.empty());
  // Consensus over AZ links completes within a few ms (Spider's core bet).
  EXPECT_LT(g.world.now() - start, 20 * kMillisecond);
}

TEST(Pbft, ValidatorRejectsRequests) {
  PbftGroup g;
  for (auto& h : g.hosts) {
    h->replica->validate = [](BytesView m) { return m.size() > 10; };
  }
  Bytes small = {1, 2, 3};
  g.order_everywhere(small);
  g.world.run_for(2 * kSecond);
  for (auto& h : g.hosts) EXPECT_TRUE(h->delivered.empty());
}

TEST(Pbft, WindowLimitsPipelineUntilGc) {
  PbftGroup g(4, 1, {}, 0, 3, /*window=*/4);
  for (int i = 0; i < 10; ++i) g.order_everywhere(g.req(i));
  g.world.run_for(2 * kSecond);
  // Only the first `window` instances can be proposed before gc.
  for (auto& h : g.hosts) EXPECT_EQ(h->delivered.size(), 4u);
  // gc releases the window stepwise; the rest follows (this is exactly how
  // Spider's agreement checkpoints drive consensus garbage collection).
  for (auto& h : g.hosts) h->replica->gc(5);
  g.world.run_for(2 * kSecond);
  for (auto& h : g.hosts) EXPECT_EQ(h->delivered.size(), 8u);
  for (auto& h : g.hosts) h->replica->gc(9);
  g.world.run_for(2 * kSecond);
  for (auto& h : g.hosts) EXPECT_EQ(h->delivered.size(), 10u);
}

TEST(Pbft, GcAdvancesFloorAndPrunes) {
  PbftGroup g;
  for (int i = 0; i < 10; ++i) g.order_everywhere(g.req(i));
  g.world.run_for(3 * kSecond);
  ASSERT_EQ(g.hosts[0]->delivered.size(), 10u);
  for (auto& h : g.hosts) {
    h->replica->gc(6);  // forget < 6
    EXPECT_EQ(h->replica->floor(), 5u);
  }
  // Ordering continues after gc.
  g.order_everywhere(g.req(100));
  g.world.run_for(3 * kSecond);
  for (auto& h : g.hosts) {
    ASSERT_EQ(h->delivered.size(), 11u);
    EXPECT_EQ(h->delivered.back().first, 11u);
  }
}

TEST(Pbft, CrashedFollowerDoesNotBlockProgress) {
  PbftGroup g;
  g.world.net().set_node_down(g.hosts[3]->id(), true);  // follower crash
  for (int i = 0; i < 5; ++i) g.order_everywhere(g.req(i));
  g.world.run_for(3 * kSecond);
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(g.hosts[r]->delivered.size(), 5u) << "replica " << r;
  }
  EXPECT_TRUE(g.hosts[3]->delivered.empty());
}

TEST(Pbft, CrashedPrimaryTriggersViewChange) {
  PbftGroup g;
  g.world.net().set_node_down(g.hosts[0]->id(), true);  // primary of view 0
  for (int i = 0; i < 3; ++i) g.order_everywhere(g.req(i));
  g.world.run_for(10 * kSecond);
  for (std::size_t r = 1; r < 4; ++r) {
    EXPECT_EQ(g.hosts[r]->delivered.size(), 3u) << "replica " << r;
    EXPECT_GE(g.hosts[r]->replica->view(), 1u);
    EXPECT_EQ(g.hosts[r]->delivered, g.hosts[1]->delivered);
  }
}

TEST(Pbft, MutePrimaryTriggersViewChange) {
  PbftGroup g;
  g.hosts[0]->replica->mute = true;  // fail-silent Byzantine primary
  for (int i = 0; i < 3; ++i) g.order_everywhere(g.req(i));
  g.world.run_for(10 * kSecond);
  for (std::size_t r = 1; r < 4; ++r) {
    EXPECT_EQ(g.hosts[r]->delivered.size(), 3u) << "replica " << r;
    EXPECT_GE(g.hosts[r]->replica->view(), 1u);
  }
}

TEST(Pbft, OrderingContinuesAfterViewChange) {
  PbftGroup g;
  g.hosts[0]->replica->mute = true;
  g.order_everywhere(g.req(1));
  g.world.run_for(10 * kSecond);
  ASSERT_GE(g.hosts[1]->replica->view(), 1u);
  // New requests in the new view.
  for (int i = 2; i < 6; ++i) g.order_everywhere(g.req(i));
  g.world.run_for(3 * kSecond);
  for (std::size_t r = 1; r < 4; ++r) {
    EXPECT_EQ(g.hosts[r]->delivered.size(), 5u) << "replica " << r;
    EXPECT_EQ(g.hosts[r]->delivered, g.hosts[1]->delivered);
  }
}

TEST(Pbft, PrimaryIdentityFollowsView) {
  PbftGroup g;
  EXPECT_TRUE(g.hosts[0]->replica->is_primary());
  EXPECT_FALSE(g.hosts[1]->replica->is_primary());
}

TEST(Pbft, DeterministicAcrossRuns) {
  auto run = [] {
    PbftGroup g(4, 1, {}, 0, 99);
    for (int i = 0; i < 10; ++i) g.order_everywhere(g.req(i));
    g.world.run_for(3 * kSecond);
    std::vector<std::pair<SeqNr, Bytes>> d = g.hosts[2]->delivered;
    return d;
  };
  EXPECT_EQ(run(), run());
}

// ---- weighted voting (BFT-WV / WHEAT configuration) ----------------------

struct WeightedGroup : PbftGroup {
  // n=5, f=1, Vmax=2 on the two "fast" replicas, quorum weight 5 (WHEAT).
  WeightedGroup() : PbftGroup(5, 1, {2, 2, 1, 1, 1}, 5, 11) {}
};

TEST(PbftWeighted, OrdersWithWeightedQuorums) {
  WeightedGroup g;
  for (int i = 0; i < 5; ++i) g.order_everywhere(g.req(i));
  g.world.run_for(3 * kSecond);
  for (auto& h : g.hosts) {
    EXPECT_EQ(h->delivered.size(), 5u);
    EXPECT_EQ(h->delivered, g.hosts[0]->delivered);
  }
}

TEST(PbftWeighted, SurvivesLightReplicaCrash) {
  WeightedGroup g;
  g.world.net().set_node_down(g.hosts[4]->id(), true);  // weight-1 crash
  g.order_everywhere(g.req(1));
  g.world.run_for(3 * kSecond);
  EXPECT_EQ(g.hosts[0]->delivered.size(), 1u);
}

TEST(PbftWeighted, SurvivesHeavyReplicaCrash) {
  WeightedGroup g;
  g.world.net().set_node_down(g.hosts[1]->id(), true);  // weight-2 crash
  g.order_everywhere(g.req(1));
  g.world.run_for(5 * kSecond);
  // Remaining weight 2+1+1+1 = 5 = quorum: progress must continue.
  EXPECT_EQ(g.hosts[0]->delivered.size(), 1u);
}

// Byzantine-equivocation containment: a faulty non-primary replica sending
// garbage must not break agreement among correct replicas.
class GarbageSender : public ComponentHost {
 public:
  GarbageSender(World& w, Site s) : ComponentHost(w, w.allocate_id(), s) {}
  void on_message(NodeId, BytesView) override {}
  void spam(const std::vector<NodeId>& targets) {
    for (NodeId t : targets) {
      Writer w;
      w.u32(tags::kPbft);
      w.u8(1);          // PrePrepare type
      w.u64(0);         // view
      w.u64(1);         // seq
      w.bytes(Bytes{9, 9, 9});
      // no valid MAC appended -> must be rejected
      w.raw(Bytes(16, 0xee));
      send_to(t, w.data());
    }
  }
};

TEST(Pbft, ForgedPrePrepareRejected) {
  PbftGroup g;
  GarbageSender attacker(g.world, Site{Region::Virginia, 0});
  std::vector<NodeId> targets;
  for (auto& h : g.hosts) targets.push_back(h->id());
  attacker.spam(targets);
  g.world.run_for(kSecond);
  for (auto& h : g.hosts) EXPECT_TRUE(h->delivered.empty());

  // The group still works normally afterwards.
  g.order_everywhere(g.req(1));
  g.world.run_for(kSecond);
  for (auto& h : g.hosts) EXPECT_EQ(h->delivered.size(), 1u);
}

TEST(Pbft, EmptyAndUnknownMessagesDropped) {
  PbftGroup g;
  GarbageSender attacker(g.world, Site{Region::Virginia, 0});
  // Raw garbage without even a valid component tag.
  for (auto& h : g.hosts) {
    attacker.send_to(h->id(), Bytes{});
    attacker.send_to(h->id(), Bytes{0xff});
    attacker.send_to(h->id(), Bytes(100, 0xab));
  }
  g.world.run_for(kSecond);
  g.order_everywhere(g.req(1));
  g.world.run_for(kSecond);
  for (auto& h : g.hosts) EXPECT_EQ(h->delivered.size(), 1u);
}

}  // namespace
}  // namespace spider
