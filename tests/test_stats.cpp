#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "sim/stats.hpp"

namespace spider {
namespace {

TEST(LatencyStats, EmptyIsZero) {
  LatencyStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.median(), 0);
  EXPECT_EQ(s.p90(), 0);
  EXPECT_EQ(s.p99(), 0);
  EXPECT_EQ(s.p999(), 0);
}

TEST(LatencyStats, SingleSample) {
  LatencyStats s(LatencyStats::Mode::kExact);
  s.add(100);
  EXPECT_EQ(s.median(), 100);
  EXPECT_EQ(s.p90(), 100);
  EXPECT_EQ(s.min(), 100);
  EXPECT_EQ(s.max(), 100);
}

TEST(LatencyStats, MedianOfKnownSet) {
  LatencyStats s(LatencyStats::Mode::kExact);
  for (Duration v : {10, 20, 30, 40, 50}) s.add(v);
  EXPECT_EQ(s.median(), 30);
  EXPECT_EQ(s.percentile(0), 10);
  EXPECT_EQ(s.percentile(100), 50);
}

TEST(LatencyStats, PercentileInterpolates) {
  LatencyStats s(LatencyStats::Mode::kExact);
  s.add(0);
  s.add(100);
  EXPECT_EQ(s.median(), 50);
  EXPECT_EQ(s.percentile(90), 90);
}

TEST(LatencyStats, UnsortedInsertOrder) {
  LatencyStats s(LatencyStats::Mode::kExact);
  for (Duration v : {50, 10, 40, 20, 30}) s.add(v);
  EXPECT_EQ(s.median(), 30);
}

TEST(LatencyStats, Mean) {
  LatencyStats s;  // mean is exact in both modes (sum/count)
  for (Duration v : {1, 2, 3, 4}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
}

TEST(LatencyStats, P90OfHundred) {
  LatencyStats s(LatencyStats::Mode::kExact);
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_NEAR(static_cast<double>(s.p90()), 90.0, 1.0);
}

// ---- bucketed (default) mode: bounded memory, bounded error --------------

TEST(LatencyStats, BucketedSmallValuesExact) {
  // Values below 32 land in width-1 buckets, so small-N quantiles are exact
  // even without the exact-sample flag.
  LatencyStats s;
  for (Duration v : {1, 2, 3, 4, 5}) s.add(v);
  EXPECT_EQ(s.median(), 3);
  EXPECT_EQ(s.min(), 1);
  EXPECT_EQ(s.max(), 5);
}

TEST(LatencyStats, BucketedPercentileWithinErrorBound) {
  // Documented bound: relative error <= 2^-(kSubBits+1) = 3.125%.
  LatencyStats s;
  for (int i = 1; i <= 10'000; ++i) s.add(i);
  for (double p : {50.0, 90.0, 99.0, 99.9}) {
    const double exact = p / 100.0 * 10'000.0;
    const auto got = static_cast<double>(s.percentile(p));
    EXPECT_NEAR(got, exact, exact * 0.03125 + 1.0) << "p=" << p;
  }
  EXPECT_EQ(s.min(), 1);
  EXPECT_EQ(s.max(), 10'000);
  EXPECT_DOUBLE_EQ(s.mean(), 5000.5);  // sum/count: exact in bucketed mode
}

TEST(LatencyStats, BucketedClampsNegativeSamples) {
  LatencyStats s;
  s.add(-100);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.min(), 0);
  EXPECT_EQ(s.max(), 0);
}

TEST(LatencyStats, BucketedClearResets) {
  LatencyStats s;
  for (int i = 0; i < 100; ++i) s.add(1000 + i);
  s.clear();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.median(), 0);
  s.add(7);
  EXPECT_EQ(s.median(), 7);
}

TEST(LatencyStats, OutOfRangePercentileClamped) {
  // p outside [0, 100] used to compute a negative exact-mode rank whose
  // size_t cast indexed out of bounds; both modes now clamp.
  LatencyStats exact(LatencyStats::Mode::kExact);
  for (Duration v : {10, 20, 30}) exact.add(v);
  EXPECT_EQ(exact.percentile(-10), 10);
  EXPECT_EQ(exact.percentile(250), 30);

  LatencyStats bucketed;
  for (Duration v : {10, 20, 30}) bucketed.add(v);
  EXPECT_EQ(bucketed.percentile(-10), 10);
  EXPECT_EQ(bucketed.percentile(250), 30);
}

TEST(LatencyStats, EmptyBucketedPercentileIsZero) {
  LatencyStats s;  // default = bucketed
  EXPECT_EQ(s.percentile(-5), 0);
  EXPECT_EQ(s.percentile(50), 0);
  EXPECT_EQ(s.percentile(1000), 0);
}

TEST(TimeSeries, InvalidConstructionThrows) {
  EXPECT_THROW(TimeSeries(0), std::invalid_argument);    // divided by zero on add
  EXPECT_THROW(TimeSeries(-10), std::invalid_argument);
  EXPECT_THROW(TimeSeries(10, 0), std::invalid_argument);
}

TEST(TimeSeries, FarFutureTimestampStaysBounded) {
  // A single far-future sample used to resize the dense bucket vector to
  // gigabytes; sparse storage costs one node per touched bucket.
  TimeSeries ts(1000);
  ts.add(std::numeric_limits<Time>::max() - 1, 1.0);
  ts.add(0, 2.0);
  EXPECT_EQ(ts.bucket_nodes(), 2u);
  EXPECT_EQ(ts.dropped(), 0u);
  auto pts = ts.points();
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_EQ(pts[0].bucket_start, 0);
  EXPECT_DOUBLE_EQ(pts[0].average, 2.0);
}

TEST(TimeSeries, DistinctBucketCapDropsOverflow) {
  TimeSeries ts(10, /*max_buckets=*/4);
  for (int i = 0; i < 6; ++i) ts.add(i * 10, 1.0);
  EXPECT_EQ(ts.bucket_nodes(), 4u);
  EXPECT_EQ(ts.dropped(), 2u);
  ts.add(5, 7.0);  // existing buckets still accept samples at the cap
  EXPECT_EQ(ts.dropped(), 2u);
  EXPECT_EQ(ts.points().front().count, 2u);
}

TEST(TimeSeries, BucketsAverages) {
  TimeSeries ts(1000);
  ts.add(0, 10);
  ts.add(500, 20);
  ts.add(1500, 40);
  auto pts = ts.points();
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_EQ(pts[0].bucket_start, 0);
  EXPECT_DOUBLE_EQ(pts[0].average, 15.0);
  EXPECT_EQ(pts[0].count, 2u);
  EXPECT_EQ(pts[1].bucket_start, 1000);
  EXPECT_DOUBLE_EQ(pts[1].average, 40.0);
}

TEST(TimeSeries, SkipsEmptyBuckets) {
  TimeSeries ts(10);
  ts.add(5, 1);
  ts.add(95, 2);
  auto pts = ts.points();
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_EQ(pts[1].bucket_start, 90);
}

TEST(TimeSeries, NegativeTimeIgnored) {
  TimeSeries ts(10);
  ts.add(-5, 1);
  EXPECT_TRUE(ts.points().empty());
}

TEST(CpuWindow, Utilization) {
  CpuWindow w;
  w.begin(1000, 500);
  // 300us busy over 1000us elapsed -> 30%
  EXPECT_DOUBLE_EQ(w.utilization(2000, 800), 30.0);
  EXPECT_DOUBLE_EQ(w.utilization(1000, 800), 0.0);  // zero elapsed guard
}

TEST(CpuWindow, UtilizationClampedTo100) {
  // Overlapping windows (busy accrued before window_start was rebased) used
  // to report >100%; reports feed capacity models that assume a percentage.
  CpuWindow w;
  w.begin(1000, 500);
  EXPECT_DOUBLE_EQ(w.utilization(1100, 800), 100.0);  // busy 300 > elapsed 100
}

TEST(FormatMs, Formats) {
  EXPECT_EQ(format_ms(12345), "12.3 ms");
  EXPECT_EQ(format_ms(0), "0.0 ms");
}

}  // namespace
}  // namespace spider
