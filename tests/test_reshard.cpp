// Live range migration under traffic (ISSUE 6 tentpole).
//
// A migration is two ordered admin commands: MigrateOut cuts the range at
// the losing shard and certifies its state with the reply quorum, MigrateIn
// absorbs it at the gaining shard. From the cut onwards replicas answer
// foreign keys with versioned WrongShard redirects, which routers adopt
// before re-routing — including cancelling ops already parked in a
// subclient's retransmit loop (the stale-routing bug this PR fixes).
//
// The suite covers: a fault-free migration moving values and shard
// attribution; the stale-routing regression (an op retrying against a
// partitioned losing shard must complete after adopt_map); the weak-read
// retransmit backoff regression; MGET/MPUT fan-out racing a map bump; and
// a seed-swept chaos run (crashes, partitions, Byzantine windows) with a
// migration mid-schedule, checked for per-key linearizability and
// byte-identical seed replay.
#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "check/linearizer.hpp"
#include "shard/sharded_system.hpp"
#include "sim/fault_plan.hpp"
#include "sim/world.hpp"
#include "tests/support/chaos.hpp"
#include "tests/support/drive.hpp"

namespace spider {
namespace {

SpiderTopology reshard_core() {
  SpiderTopology t;
  t.exec_regions = {Region::Virginia};
  t.ka = 8;
  t.ke = 8;
  t.ag_win = 32;
  t.commit_capacity = 16;
  t.client_retry = kSecond;
  t.request_timeout = kSecond;
  t.view_change_timeout = 2 * kSecond;
  return t;
}

ShardedTopology reshard_topo(std::uint32_t shards) {
  ShardedTopology t;
  t.shards = shards;
  t.base = reshard_core();
  t.resharding = true;
  return t;
}

/// Starts a whole-range migration for `key` and drives until its done
/// callback fires; returns the callback's verdict.
bool run_migration(World& world, ShardedSpiderSystem& sys, const std::string& key,
                   std::uint32_t to_shard, Duration timeout = 60 * kSecond) {
  auto done = std::make_shared<int>(-1);
  sys.migrate_key_range(key, to_shard, [done](bool ok) { *done = ok ? 1 : 0; });
  drive::run_until(world, [&] { return *done != -1; }, timeout);
  return *done == 1;
}

// ---------------------------------------------------------------- fault-free

TEST(Reshard, LiveMigrationMovesRangeAndValues) {
  World world(3);
  ShardedSpiderSystem sys(world, reshard_topo(4));
  auto client = sys.make_client(Site{Region::Virginia, 0});
  HistoryRecorder hist(world);

  std::vector<std::string> keys;
  for (int i = 0; i < 8; ++i) keys.push_back("mig-" + std::to_string(i));
  for (std::size_t i = 0; i < keys.size(); ++i) {
    recorded_put_routed(hist, *client, 0, keys[i], "v" + std::to_string(i));
  }
  ASSERT_TRUE(drive::run_until(world, [&] { return hist.pending_count() == 0; }));

  // Pre-migration attribution matches the v1 table.
  const ShardMap before = sys.shard_map();
  for (const RecordedOp& op : hist.ops()) {
    EXPECT_EQ(op.shard, before.shard_of(op.key)) << op.key;
  }

  const std::string moved_key = keys.front();
  const std::uint32_t owner = before.shard_of(moved_key);
  const std::uint32_t target = (owner + 1) % sys.shard_count();
  ASSERT_TRUE(run_migration(world, sys, moved_key, target));
  EXPECT_EQ(sys.migrations_completed(), 1u);
  EXPECT_GT(sys.last_migration_pause(), 0);
  EXPECT_EQ(sys.shard_map().version(), 2u);
  EXPECT_EQ(sys.shard_map().shard_of(moved_key), target);

  // The pre-migration client still routes on the v1 table; redirect chasing
  // must complete every read and attribute it to the post-migration owner.
  EXPECT_EQ(client->map().version(), 1u);
  const std::size_t writes = hist.ops().size();
  for (const std::string& k : keys) recorded_strong_get_routed(hist, *client, 1, k);
  ASSERT_TRUE(drive::run_until(world, [&] { return hist.pending_count() == 0; }));

  const ShardMap& after = sys.shard_map();
  bool any_moved = false;
  for (std::size_t i = writes; i < hist.ops().size(); ++i) {
    const RecordedOp& op = hist.ops()[i];
    EXPECT_TRUE(op.ok) << op.key;
    EXPECT_EQ(to_string(op.result), "v" + op.key.substr(4)) << op.key;
    EXPECT_EQ(op.shard, after.shard_of(op.key)) << op.key;
    if (op.shard != before.shard_of(op.key)) any_moved = true;
  }
  EXPECT_TRUE(any_moved);  // the pool always hits the moved range (mig-0 did)
  EXPECT_GE(client->redirects(), 1u);
  EXPECT_EQ(client->maps_adopted(), 1u);
  EXPECT_EQ(client->map().version(), 2u);

  // No key was lost or duplicated by the cut/absorb pair.
  auto total = std::make_shared<std::uint64_t>(~0ull);
  client->size([total](std::uint64_t n, Duration) { *total = n; });
  ASSERT_TRUE(drive::run_until(world, [&] { return *total != ~0ull; }));
  EXPECT_EQ(*total, keys.size());
}

TEST(Reshard, MigrationRequiresReshardingTopology) {
  World world(1);
  ShardedTopology topo = reshard_topo(2);
  topo.resharding = false;
  ShardedSpiderSystem sys(world, topo);
  EXPECT_THROW(sys.migrate_key_range("k", 1, {}), std::logic_error);
}

TEST(Reshard, MigrationRejectsUnknownTargetAndOverlappingCalls) {
  World world(1);
  ShardedSpiderSystem sys(world, reshard_topo(2));
  EXPECT_THROW(sys.migrate_key_range("k", 7, {}), std::invalid_argument);

  const std::uint32_t owner = sys.shard_map().shard_of("k");
  sys.migrate_key_range("k", 1 - owner, {});
  EXPECT_TRUE(sys.migration_in_flight());
  EXPECT_THROW(sys.migrate_key_range("k", 1 - owner, {}), std::logic_error);
  drive::run_until(world, [&] { return !sys.migration_in_flight(); });
  EXPECT_EQ(sys.migrations_completed(), 1u);
}

// ------------------------------------------------- stale-routing regression

// The bug: a router op whose shard stops owning its key mid-flight used to
// retransmit against that shard forever — adopt_map updated the table but
// never touched ops already queued in a subclient. Staged deterministically:
// the client's link to the losing shard is cut, so its put can ONLY complete
// by being cancelled and re-routed to the gaining shard after adopt_map.
TEST(Reshard, StaleRoutingReroutesOnAdoptMap) {
  World world(5);
  ShardedSpiderSystem sys(world, reshard_topo(2));
  auto client = sys.make_client(Site{Region::Virginia, 0});

  const std::string key = "stale-key";
  const std::uint32_t owner = sys.shard_map().shard_of(key);
  const std::uint32_t target = 1 - owner;

  // Cut this client's subclient off from the losing shard's execution
  // group, both directions. The admin clients are separate nodes and keep
  // working, so the migration itself is unaffected.
  const NodeId sub = client->shard_client(owner).id();
  const std::vector<NodeId> members = client->shard_client(owner).group().members;
  world.net().set_link_filter([sub, members](NodeId from, NodeId to) {
    for (NodeId m : members) {
      if ((from == sub && to == m) || (from == m && to == sub)) return false;
    }
    return true;
  });

  auto out = std::make_shared<drive::KvOutcome>();
  client->put(key, to_bytes(std::string("rerouted")), [out](Bytes reply, Duration lat) {
    KvReply r = kv_decode_reply(reply);
    out->done = true;
    out->ok = r.ok;
    out->latency = lat;
  });
  world.run_until(world.now() + 5 * kSecond);
  ASSERT_FALSE(out->done);  // stuck: the op only retransmits into the cut link
  ASSERT_EQ(client->pending_ops(), 1u);

  ASSERT_TRUE(run_migration(world, sys, key, target));
  ASSERT_TRUE(client->adopt_map(sys.shard_map()));

  // With the fix the pending op is cancelled off the dead subclient and
  // re-submitted to the gaining shard; the link stays cut, so completion is
  // proof of the re-route (before the fix this times out).
  ASSERT_TRUE(drive::run_until(world, [&] { return out->done; }, 30 * kSecond));
  EXPECT_TRUE(out->ok);
  EXPECT_GE(client->reroutes(), 1u);

  world.net().set_link_filter(nullptr);
  drive::KvOutcome read = drive::blocking_strong_read(world, *client, key);
  ASSERT_TRUE(read.done);
  EXPECT_TRUE(read.ok);
  EXPECT_EQ(to_string(read.value), "rerouted");
}

// ---------------------------------------------- weak-read backoff regression

// The bug: the direct-path retransmit loop re-armed at the constant base
// interval, so a partitioned client hammered its execution group ~once per
// base interval for the whole outage. With capped exponential backoff
// (1+2+4+8+8+... seconds here) a 60-second outage sees ~9 retransmits, not
// ~50; the upper bound below fails against the constant-interval code.
TEST(Reshard, WeakReadRetransmitBacksOffUnderPartition) {
  World world(9);
  ShardedSpiderSystem sys(world, reshard_topo(2));
  auto client = sys.make_client(Site{Region::Virginia, 0});
  ASSERT_TRUE(drive::blocking_write(world, *client, "wk", "v0").ok);

  const std::uint32_t owner = sys.shard_map().shard_of("wk");
  const NodeId sub = client->shard_client(owner).id();
  world.net().set_link_filter([sub](NodeId from, NodeId to) {
    return from != sub && to != sub;
  });

  const std::uint64_t before = client->retries();
  auto out = std::make_shared<drive::KvOutcome>();
  client->weak_get("wk", [out](Bytes reply, Duration) {
    KvReply r = kv_decode_reply(reply);
    out->done = true;
    out->ok = r.ok;
    out->value = std::move(r.value);
  });
  world.run_until(world.now() + 60 * kSecond);
  ASSERT_FALSE(out->done);
  const std::uint64_t during = client->retries() - before;
  EXPECT_GE(during, 4u);   // the retransmit loop genuinely ran
  EXPECT_LE(during, 12u);  // constant-interval code produces ~50 here

  // The capped interval keeps reprobing: healing the partition completes
  // the read within one backoff ceiling.
  world.net().set_link_filter(nullptr);
  ASSERT_TRUE(drive::run_until(world, [&] { return out->done; }, 20 * kSecond));
  EXPECT_TRUE(out->ok);
  EXPECT_EQ(to_string(out->value), "v0");
}

// ------------------------------------------------ fan-out racing a map bump

// Sequential MPUT(all keys) -> MGET(all keys) rounds with a migration fired
// mid-run: map adoption lands before, between, and after per-shard parts
// depending on the round. Every round must read its own writes on every key
// regardless of which side of the cut served it, and attribution must track
// the table in force at completion.
TEST(Reshard, MgetMputFanOutSurvivesMapBump) {
  World world(11);
  ShardedSpiderSystem sys(world, reshard_topo(4));
  auto client = sys.make_client(Site{Region::Virginia, 0});

  const std::vector<std::string> keys = chaos::key_pool(6);
  const std::uint32_t owner = sys.shard_map().shard_of(keys[0]);
  const std::uint32_t target = (owner + 1) % sys.shard_count();

  auto migration_ok = std::make_shared<int>(-1);
  world.queue().schedule_at(4 * kSecond, [&sys, &keys, target, migration_ok] {
    sys.migrate_key_range(keys[0], target,
                          [migration_ok](bool ok) { *migration_ok = ok ? 1 : 0; });
  });

  constexpr int kRounds = 16;
  auto rounds_done = std::make_shared<int>(0);
  auto round_errors = std::make_shared<std::string>();
  // Each round chains mput -> mget -> next round off the event queue. The
  // recursion captures a raw pointer to the function object (owned by this
  // scope, which outlives every round) — capturing the shared_ptr would
  // make the closure own itself and leak.
  auto run_round = std::make_shared<std::function<void(int)>>();
  std::function<void(int)>* const run = run_round.get();
  *run_round = [&, rounds_done, round_errors, run](int n) {
    std::vector<std::pair<std::string, Bytes>> pairs;
    for (const std::string& k : keys) pairs.emplace_back(k, to_bytes("r" + std::to_string(n)));
    client->mput(pairs, [&, n, rounds_done, round_errors, run](
                            ShardedClient::MputResult res, Duration) {
      if (!res.ok) *round_errors += "round " + std::to_string(n) + ": mput failed; ";
      client->mget(keys, [&, n, rounds_done, round_errors, run](
                             std::vector<ShardedClient::MgetEntry> entries, Duration) {
        for (const ShardedClient::MgetEntry& e : entries) {
          if (!e.ok || to_string(e.value) != "r" + std::to_string(n)) {
            *round_errors += "round " + std::to_string(n) + ": " + e.key +
                             " read '" + to_string(e.value) + "'; ";
          }
          if (e.shard >= 4) {
            *round_errors += "round " + std::to_string(n) + ": " + e.key +
                             " attributed to shard " + std::to_string(e.shard) + "; ";
          }
        }
        ++*rounds_done;
        // Pace rounds so the 16-round run spans the t=4s migration: some
        // rounds complete wholly before the cut, some race it, some run
        // entirely on the new table.
        if (n + 1 < kRounds) {
          world.queue().schedule_at(world.now() + 600 * kMillisecond,
                                    [run, n] { (*run)(n + 1); });
        }
      });
    });
  };
  (*run_round)(0);

  ASSERT_TRUE(drive::run_until(
      world, [&] { return *rounds_done == kRounds && *migration_ok != -1; },
      300 * kSecond));
  EXPECT_EQ(*round_errors, "") << *round_errors;
  EXPECT_EQ(*migration_ok, 1);
  EXPECT_EQ(sys.migrations_completed(), 1u);
  EXPECT_GE(client->maps_adopted(), 1u);  // picked up organically via redirect
  EXPECT_EQ(client->map().version(), 2u);

  // Post-migration attribution matches the final table on every key.
  auto final_entries = std::make_shared<std::vector<ShardedClient::MgetEntry>>();
  auto final_done = std::make_shared<bool>(false);
  client->mget(keys, [final_entries, final_done](
                         std::vector<ShardedClient::MgetEntry> entries, Duration) {
    *final_entries = std::move(entries);
    *final_done = true;
  });
  ASSERT_TRUE(drive::run_until(world, [&] { return *final_done; }));
  for (const ShardedClient::MgetEntry& e : *final_entries) {
    EXPECT_EQ(e.shard, sys.shard_map().shard_of(e.key)) << e.key;
  }
}

// ------------------------------------------------------------- chaos sweep

struct ReshardChaosOutcome {
  bool completed = false;
  std::size_t pending = 0;
  std::size_t total_ops = 0;
  LinResult lin;
  bool no_lost_writes = true;
  std::string lost_diag;
  int migration_ok = -1;  // -1: never finished
  std::uint64_t migrations = 0;
  std::string fault_script;
  std::string history_dump;
  Bytes history;
};

/// One chaos scenario: 4 resharding shards, randomized crashes + partitions
/// + Byzantine windows from the seed, three recording routed clients, and a
/// whole-range migration fired mid-schedule. All clients route on the v1
/// table at the moment of the cut, so every completion on the moved range
/// after it exercises redirect adoption and re-routing.
ReshardChaosOutcome run_reshard_chaos(std::uint64_t seed) {
  World world(seed);
  HistoryRecorder hist(world);
  ShardedSpiderSystem sys(world, reshard_topo(4));
  FaultPlan plan(world);
  plan.on_crash = [&sys](NodeId n) { sys.crash_node(n); };
  plan.on_restart = [&sys](NodeId n) { sys.restart_node(n); };
  plan.on_byzantine = [&sys](NodeId n, const ByzantineFlags& f) { sys.set_byzantine(n, f); };

  std::vector<std::unique_ptr<ShardedClient>> clients;
  clients.push_back(sys.make_client(Site{Region::Virginia, 0}));
  clients.push_back(sys.make_client(Site{Region::Virginia, 1}));
  clients.push_back(sys.make_client(Site{Region::Virginia, 2}));

  FaultPlan::ChaosProfile profile;
  profile.crash_targets = sys.replica_ids();
  profile.start = 2 * kSecond;
  profile.horizon = 18 * kSecond;
  profile.actions = 5;
  profile.max_concurrent_crashes = 1;
  profile.byz_actions = 4;
  for (std::uint32_t s = 0; s < sys.shard_count(); ++s) {
    profile.byz_consensus_groups.push_back(sys.core(s).agreement_ids());
    profile.partition_groups.push_back(sys.core(s).agreement_ids());
    for (GroupId g : sys.core(s).group_ids()) {
      std::vector<NodeId> members;
      for (std::size_t i = 0; i < sys.core(s).group_size(g); ++i) {
        members.push_back(sys.core(s).exec(g, i).id());
      }
      profile.byz_exec_groups.push_back(members);
      profile.partition_groups.push_back(std::move(members));
    }
  }
  profile.max_byz_per_consensus_group = sys.topology().base.fa;
  profile.max_byz_per_exec_group = sys.topology().base.fe;
  plan.randomize(profile);

  const std::vector<std::string> keys = chaos::key_pool(6);
  chaos::WorkloadOptions opt;
  opt.ops_per_client = 10;
  opt.mean_gap = 900 * kMillisecond;
  std::vector<chaos::ClientHandle> handles;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    handles.push_back(chaos::ClientHandle::wrap_routed(hist, *clients[i], i));
  }
  chaos::schedule_workload(world, handles, keys, opt);

  // Fire the migration mid-chaos, at a fixed sim time so replay stays a
  // pure function of the seed.
  ReshardChaosOutcome out;
  const std::uint32_t owner = sys.shard_map().shard_of(keys[0]);
  const std::uint32_t target = (owner + 1) % sys.shard_count();
  world.queue().schedule_at(6 * kSecond, [&sys, &keys, &out, target] {
    sys.migrate_key_range(keys[0], target,
                          [&out](bool ok) { out.migration_ok = ok ? 1 : 0; });
  });

  out.fault_script = plan.describe();
  world.run_until(profile.horizon + kSecond);
  drive::run_until(
      world, [&] { return hist.pending_count() == 0 && out.migration_ok != -1; },
      150 * kSecond);

  chaos::ClientHandle reader = chaos::ClientHandle::wrap_routed(hist, *clients[0], 99);
  for (const std::string& k : keys) reader.strong_get(k);
  drive::run_until(world, [&] { return hist.pending_count() == 0; }, 60 * kSecond);

  out.pending = hist.pending_count();
  out.completed = out.pending == 0;
  out.total_ops = hist.ops().size();
  out.lin = check_kv_history(hist);
  out.migrations = sys.migrations_completed();

  // No acknowledged write may be lost across the cut: a key with an acked
  // put must be found by its final strong read, and any value read must
  // have been written (re-routing is at-least-once, never value-inventing).
  const auto& ops = hist.ops();
  for (const std::string& k : keys) {
    bool acked_put = false;
    for (const RecordedOp& op : ops) {
      if (op.kind == HistOp::Put && op.key == k && op.responded) acked_put = true;
    }
    const RecordedOp* final_read = nullptr;
    for (const RecordedOp& op : ops) {
      if (op.client == 99 && op.key == k) final_read = &op;
    }
    if (final_read == nullptr || !final_read->responded) continue;
    if (acked_put && !final_read->ok) {
      out.no_lost_writes = false;
      out.lost_diag += "key " + k + ": acked put but final read missed; ";
    }
    if (final_read->ok) {
      bool written = false;
      for (const RecordedOp& op : ops) {
        if (op.kind == HistOp::Put && op.key == k && op.arg == final_read->result) written = true;
      }
      if (!written) {
        out.no_lost_writes = false;
        out.lost_diag += "key " + k + ": final read returned a never-written value; ";
      }
    }
  }

  out.history_dump = hist.dump();
  out.history = hist.serialize();
  return out;
}

class ReshardChaosSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReshardChaosSweep, MigrationUnderChaosStaysLinearizable) {
  const std::uint64_t seed = GetParam();
  ReshardChaosOutcome out = run_reshard_chaos(seed);
  const bool failed = !out.completed || !out.lin.ok || !out.no_lost_writes ||
                      out.migration_ok != 1 || out.migrations != 1;
  if (failed) {
    std::string path = "chaos_failure_reshard_seed" + std::to_string(seed) + ".txt";
    std::ofstream f(path);
    f << "seed: " << seed << "\nmigration_ok: " << out.migration_ok
      << "\nlinearizable: " << out.lin.ok << " " << out.lin.error
      << "\nlost-writes: " << out.lost_diag << "\n\n== fault schedule ==\n"
      << out.fault_script << "\n== recorded history ==\n"
      << out.history_dump;
    ADD_FAILURE() << "reshard chaos scenario failed; artifact written to " << path
                  << " — reproduce with seed=" << seed;
  }
  EXPECT_TRUE(out.completed) << out.pending << " of " << out.total_ops << " ops never completed";
  EXPECT_TRUE(out.lin.ok) << out.lin.error;
  EXPECT_TRUE(out.no_lost_writes) << out.lost_diag;
  EXPECT_EQ(out.migration_ok, 1);
  EXPECT_EQ(out.migrations, 1u);
}

INSTANTIATE_TEST_SUITE_P(Reshard, ReshardChaosSweep, ::testing::Range<std::uint64_t>(1, 11),
                         [](const ::testing::TestParamInfo<std::uint64_t>& i) {
                           return "seed" + std::to_string(i.param);
                         });

TEST(ReshardDeterminism, SeedReplayIsByteIdentical) {
  ReshardChaosOutcome a = run_reshard_chaos(4);
  ReshardChaosOutcome b = run_reshard_chaos(4);
  EXPECT_EQ(a.fault_script, b.fault_script);
  EXPECT_EQ(a.history, b.history);
  EXPECT_FALSE(a.history.empty());

  ReshardChaosOutcome c = run_reshard_chaos(6);
  EXPECT_NE(c.history, a.history);
}

}  // namespace
}  // namespace spider
