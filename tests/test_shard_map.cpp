#include <gtest/gtest.h>

#include <set>

#include "shard/shard_map.hpp"

namespace spider {
namespace {

TEST(ShardMap, UniformCoversAllShards) {
  ShardMap m = ShardMap::uniform(4);
  EXPECT_EQ(m.shard_count(), 4u);
  EXPECT_EQ(m.version(), 1u);
  ASSERT_EQ(m.ranges().size(), 4u);
  EXPECT_EQ(m.ranges().front().start, 0u);

  // A spread of keys must hit every shard (uniform hash over 4 partitions).
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 256; ++i) {
    std::uint32_t s = m.shard_of("key-" + std::to_string(i));
    ASSERT_LT(s, 4u);
    seen.insert(s);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(ShardMap, SingleShardOwnsEverything) {
  ShardMap m = ShardMap::uniform(1);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(m.shard_of("k" + std::to_string(i)), 0u);
  }
}

TEST(ShardMap, RoutingIsDeterministic) {
  ShardMap a = ShardMap::uniform(8);
  ShardMap b = ShardMap::uniform(8);
  for (int i = 0; i < 128; ++i) {
    std::string key = "stable-" + std::to_string(i);
    EXPECT_EQ(a.shard_of(key), b.shard_of(key));
  }
}

TEST(ShardMap, HashBoundariesRouteByRange) {
  ShardMap m = ShardMap::uniform(2);
  std::uint64_t split = m.ranges()[1].start;
  EXPECT_EQ(m.shard_of_hash(0), 0u);
  EXPECT_EQ(m.shard_of_hash(split - 1), 0u);
  EXPECT_EQ(m.shard_of_hash(split), 1u);
  EXPECT_EQ(m.shard_of_hash(~std::uint64_t{0}), 1u);
}

TEST(ShardMap, ZeroShardsRejected) {
  EXPECT_THROW(ShardMap::uniform(0), std::invalid_argument);
}

TEST(ShardMap, SetRangesRebalances) {
  ShardMap m = ShardMap::uniform(2);
  // Move the split point: shard 1 now owns the top quarter only.
  std::uint64_t quarter = ~std::uint64_t{0} / 4;
  m.set_ranges({{0, 0}, {3 * quarter, 1}}, 2);
  EXPECT_EQ(m.version(), 2u);
  EXPECT_EQ(m.shard_of_hash(2 * quarter), 0u);  // previously shard 1's
  EXPECT_EQ(m.shard_of_hash(3 * quarter), 1u);
}

TEST(ShardMap, SetRangesValidation) {
  ShardMap m = ShardMap::uniform(2);
  EXPECT_THROW(m.set_ranges({}, 2), std::invalid_argument);                 // empty
  EXPECT_THROW(m.set_ranges({{5, 0}}, 2), std::invalid_argument);          // hole at 0
  EXPECT_THROW(m.set_ranges({{0, 0}, {0, 1}}, 2), std::invalid_argument);  // not increasing
  EXPECT_THROW(m.set_ranges({{0, 7}}, 2), std::invalid_argument);          // unknown shard
  EXPECT_THROW(m.set_ranges({{0, 0}}, 1), std::invalid_argument);          // stale version
}

TEST(ShardMap, SetRangesFullRingSingleShard) {
  // A rebalance may give one shard the whole ring; the others then own
  // nothing but remain valid routing targets for a later table.
  ShardMap m = ShardMap::uniform(4);
  m.set_ranges({{0, 2}}, 2);
  EXPECT_EQ(m.ranges().size(), 1u);
  EXPECT_EQ(m.shard_count(), 4u);  // shard count is not changed by ranges
  for (std::uint64_t h : {0ull, 1ull, ~0ull / 2, ~0ull}) {
    EXPECT_EQ(m.shard_of_hash(h), 2u) << h;
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(m.shard_of("k" + std::to_string(i)), 2u);
  }

  // And back out of the degenerate table with a newer version.
  m.set_ranges({{0, 0}, {~0ull / 2, 1}}, 3);
  EXPECT_EQ(m.shard_of_hash(0), 0u);
  EXPECT_EQ(m.shard_of_hash(~0ull), 1u);
}

TEST(ShardMap, AdjacentBoundaryKeysSplitExactlyAtRangeStart) {
  // Craft the boundary at a real key's hash: the key sits in the upper
  // range (starts are inclusive), and moving the boundary one hash value
  // up flips it to the lower range.
  ShardMap m = ShardMap::uniform(2);
  const std::string key = "boundary-key";
  std::uint64_t h = ShardMap::hash_key(key);
  ASSERT_GT(h, 0u);  // holds for this key; keeps start != 0 valid below

  m.set_ranges({{0, 0}, {h, 1}}, 2);
  EXPECT_EQ(m.shard_of(key), 1u);
  EXPECT_EQ(m.shard_of_hash(h - 1), 0u);  // the adjacent hash stays below

  m.set_ranges({{0, 0}, {h + 1, 1}}, 3);
  EXPECT_EQ(m.shard_of(key), 0u);
  EXPECT_EQ(m.shard_of_hash(h + 1), 1u);
}

TEST(ShardMap, SetRangesRejectsZeroWidthRange) {
  // Equal adjacent starts would make a zero-width (empty) range; the
  // strictly-increasing rule forbids it in any position.
  ShardMap m = ShardMap::uniform(3);
  EXPECT_THROW(m.set_ranges({{0, 0}, {5, 1}, {5, 2}}, 2), std::invalid_argument);
  EXPECT_THROW(m.set_ranges({{0, 0}, {0, 1}, {9, 2}}, 2), std::invalid_argument);
  // Version must not have been burned by the failed attempts.
  m.set_ranges({{0, 1}}, 2);
  EXPECT_EQ(m.version(), 2u);
}

TEST(ShardMap, EncodeDecodeRoundTrip) {
  ShardMap m = ShardMap::uniform(3);
  m.set_ranges({{0, 2}, {1000, 0}, {2000, 1}}, 5);
  Bytes wire = m.encode();
  Reader r(wire);
  ShardMap back = ShardMap::decode(r);
  EXPECT_EQ(back.version(), 5u);
  EXPECT_EQ(back.shard_count(), 3u);
  for (std::uint64_t h : {0ull, 999ull, 1000ull, 1999ull, 2000ull, ~0ull}) {
    EXPECT_EQ(back.shard_of_hash(h), m.shard_of_hash(h)) << h;
  }
}

TEST(ShardMap, DecodeRejectsMalformedTable) {
  ShardMap m = ShardMap::uniform(2);
  Bytes wire = m.encode();
  // Corrupt the first range start (offset: u64 version + u32 shards + u32
  // count = 16) so the table no longer covers the hash space from 0.
  wire[16] = 1;
  Reader r(wire);
  EXPECT_THROW(ShardMap::decode(r), std::invalid_argument);
}

}  // namespace
}  // namespace spider
