#include <gtest/gtest.h>

#include <set>

#include "shard/shard_map.hpp"

namespace spider {
namespace {

TEST(ShardMap, UniformCoversAllShards) {
  ShardMap m = ShardMap::uniform(4);
  EXPECT_EQ(m.shard_count(), 4u);
  EXPECT_EQ(m.version(), 1u);
  ASSERT_EQ(m.ranges().size(), 4u);
  EXPECT_EQ(m.ranges().front().start, 0u);

  // A spread of keys must hit every shard (uniform hash over 4 partitions).
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 256; ++i) {
    std::uint32_t s = m.shard_of("key-" + std::to_string(i));
    ASSERT_LT(s, 4u);
    seen.insert(s);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(ShardMap, SingleShardOwnsEverything) {
  ShardMap m = ShardMap::uniform(1);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(m.shard_of("k" + std::to_string(i)), 0u);
  }
}

TEST(ShardMap, RoutingIsDeterministic) {
  ShardMap a = ShardMap::uniform(8);
  ShardMap b = ShardMap::uniform(8);
  for (int i = 0; i < 128; ++i) {
    std::string key = "stable-" + std::to_string(i);
    EXPECT_EQ(a.shard_of(key), b.shard_of(key));
  }
}

TEST(ShardMap, HashBoundariesRouteByRange) {
  ShardMap m = ShardMap::uniform(2);
  std::uint64_t split = m.ranges()[1].start;
  EXPECT_EQ(m.shard_of_hash(0), 0u);
  EXPECT_EQ(m.shard_of_hash(split - 1), 0u);
  EXPECT_EQ(m.shard_of_hash(split), 1u);
  EXPECT_EQ(m.shard_of_hash(~std::uint64_t{0}), 1u);
}

TEST(ShardMap, ZeroShardsRejected) {
  EXPECT_THROW(ShardMap::uniform(0), std::invalid_argument);
}

TEST(ShardMap, SetRangesRebalances) {
  ShardMap m = ShardMap::uniform(2);
  // Move the split point: shard 1 now owns the top quarter only.
  std::uint64_t quarter = ~std::uint64_t{0} / 4;
  m.set_ranges({{0, 0}, {3 * quarter, 1}}, 2);
  EXPECT_EQ(m.version(), 2u);
  EXPECT_EQ(m.shard_of_hash(2 * quarter), 0u);  // previously shard 1's
  EXPECT_EQ(m.shard_of_hash(3 * quarter), 1u);
}

TEST(ShardMap, SetRangesValidation) {
  ShardMap m = ShardMap::uniform(2);
  EXPECT_THROW(m.set_ranges({}, 2), std::invalid_argument);                 // empty
  EXPECT_THROW(m.set_ranges({{5, 0}}, 2), std::invalid_argument);          // hole at 0
  EXPECT_THROW(m.set_ranges({{0, 0}, {0, 1}}, 2), std::invalid_argument);  // not increasing
  EXPECT_THROW(m.set_ranges({{0, 7}}, 2), std::invalid_argument);          // unknown shard
  EXPECT_THROW(m.set_ranges({{0, 0}}, 1), std::invalid_argument);          // stale version
}

TEST(ShardMap, SetRangesFullRingSingleShard) {
  // A rebalance may give one shard the whole ring; the others then own
  // nothing but remain valid routing targets for a later table.
  ShardMap m = ShardMap::uniform(4);
  m.set_ranges({{0, 2}}, 2);
  EXPECT_EQ(m.ranges().size(), 1u);
  EXPECT_EQ(m.shard_count(), 4u);  // shard count is not changed by ranges
  for (std::uint64_t h : {0ull, 1ull, ~0ull / 2, ~0ull}) {
    EXPECT_EQ(m.shard_of_hash(h), 2u) << h;
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(m.shard_of("k" + std::to_string(i)), 2u);
  }

  // And back out of the degenerate table with a newer version.
  m.set_ranges({{0, 0}, {~0ull / 2, 1}}, 3);
  EXPECT_EQ(m.shard_of_hash(0), 0u);
  EXPECT_EQ(m.shard_of_hash(~0ull), 1u);
}

TEST(ShardMap, AdjacentBoundaryKeysSplitExactlyAtRangeStart) {
  // Craft the boundary at a real key's hash: the key sits in the upper
  // range (starts are inclusive), and moving the boundary one hash value
  // up flips it to the lower range.
  ShardMap m = ShardMap::uniform(2);
  const std::string key = "boundary-key";
  std::uint64_t h = ShardMap::hash_key(key);
  ASSERT_GT(h, 0u);  // holds for this key; keeps start != 0 valid below

  m.set_ranges({{0, 0}, {h, 1}}, 2);
  EXPECT_EQ(m.shard_of(key), 1u);
  EXPECT_EQ(m.shard_of_hash(h - 1), 0u);  // the adjacent hash stays below

  m.set_ranges({{0, 0}, {h + 1, 1}}, 3);
  EXPECT_EQ(m.shard_of(key), 0u);
  EXPECT_EQ(m.shard_of_hash(h + 1), 1u);
}

TEST(ShardMap, SetRangesRejectsZeroWidthRange) {
  // Equal adjacent starts would make a zero-width (empty) range; the
  // strictly-increasing rule forbids it in any position.
  ShardMap m = ShardMap::uniform(3);
  EXPECT_THROW(m.set_ranges({{0, 0}, {5, 1}, {5, 2}}, 2), std::invalid_argument);
  EXPECT_THROW(m.set_ranges({{0, 0}, {0, 1}, {9, 2}}, 2), std::invalid_argument);
  // Version must not have been burned by the failed attempts.
  m.set_ranges({{0, 1}}, 2);
  EXPECT_EQ(m.version(), 2u);
}

TEST(ShardMap, EncodeDecodeRoundTrip) {
  ShardMap m = ShardMap::uniform(3);
  m.set_ranges({{0, 2}, {1000, 0}, {2000, 1}}, 5);
  Bytes wire = m.encode();
  Reader r(wire);
  ShardMap back = ShardMap::decode(r);
  EXPECT_EQ(back.version(), 5u);
  EXPECT_EQ(back.shard_count(), 3u);
  for (std::uint64_t h : {0ull, 999ull, 1000ull, 1999ull, 2000ull, ~0ull}) {
    EXPECT_EQ(back.shard_of_hash(h), m.shard_of_hash(h)) << h;
  }
}

TEST(ShardMap, DecodeRejectsMalformedTable) {
  ShardMap m = ShardMap::uniform(2);
  Bytes wire = m.encode();
  // Corrupt the first range start (offset: u64 version + u32 shards + u32
  // count = 16) so the table no longer covers the hash space from 0.
  wire[16] = 1;
  Reader r(wire);
  // SerdeError, not invalid_argument: decode feeds on untrusted bytes
  // (Byzantine WrongShard redirects carry maps), and the message-boundary
  // catch blocks only swallow SerdeError. Anything else would escape and
  // crash the client on a hostile reply.
  EXPECT_THROW(ShardMap::decode(r), SerdeError);
}

TEST(ShardMap, DecodeRejectsOverlappingAndUnsortedTables) {
  ShardMap m = ShardMap::uniform(3);
  m.set_ranges({{0, 0}, {1000, 1}, {2000, 2}}, 2);
  Bytes good = m.encode();

  // Duplicate adjacent starts (zero-width range). Layout after the 16-byte
  // header: count entries of [u64 start][u32 shard].
  {
    Bytes wire = good;
    std::size_t second_start = 16 + 12;  // entry 1's start field
    for (int i = 0; i < 8; ++i) wire[second_start + i] = 0;
    Reader r(wire);
    EXPECT_THROW(ShardMap::decode(r), SerdeError);
  }
  // Out-of-range owner shard.
  {
    Bytes wire = good;
    wire[16 + 8] = 9;  // entry 0's shard field
    Reader r(wire);
    EXPECT_THROW(ShardMap::decode(r), SerdeError);
  }
  // Zero shard count.
  {
    Bytes wire = good;
    for (int i = 0; i < 4; ++i) wire[8 + i] = 0;  // shards field after u64 version
    Reader r(wire);
    EXPECT_THROW(ShardMap::decode(r), SerdeError);
  }
  // Truncated table (count says more entries than bytes present).
  {
    Bytes wire = good;
    wire.resize(wire.size() - 4);
    Reader r(wire);
    EXPECT_THROW(ShardMap::decode(r), SerdeError);
  }
  // The unmodified encoding still decodes, so the corruptions above are what
  // the rejections reacted to.
  Reader r(good);
  ShardMap back = ShardMap::decode(r);
  EXPECT_EQ(back.version(), 2u);
}

TEST(ShardMapDelta, CodecRoundTripAndValidation) {
  ShardMapDelta d{/*base_version=*/3, /*new_version=*/4, /*lo=*/1000, /*hi=*/2000,
                  /*to_shard=*/1};
  Writer w;
  d.encode_into(w);
  Bytes wire = std::move(w).take();
  Reader r(wire);
  ShardMapDelta back = ShardMapDelta::decode(r);
  r.expect_done();
  EXPECT_EQ(back.base_version, 3u);
  EXPECT_EQ(back.new_version, 4u);
  EXPECT_EQ(back.lo, 1000u);
  EXPECT_EQ(back.hi, 2000u);
  EXPECT_EQ(back.to_shard, 1u);

  // Non-monotonic version bump.
  {
    Writer bad;
    ShardMapDelta{4, 4, 0, 10, 0}.encode_into(bad);
    Bytes b = std::move(bad).take();
    Reader br(b);
    EXPECT_THROW(ShardMapDelta::decode(br), SerdeError);
  }
  // Inverted range (hi != 0 means exclusive upper bound; lo must be below).
  {
    Writer bad;
    ShardMapDelta{1, 2, 50, 10, 0}.encode_into(bad);
    Bytes b = std::move(bad).take();
    Reader br(b);
    EXPECT_THROW(ShardMapDelta::decode(br), SerdeError);
  }
}

TEST(ShardMap, WithDeltaSplicesRange) {
  // 4 uniform shards; move the middle half of shard 1's range to shard 3.
  ShardMap m = ShardMap::uniform(4);
  std::uint64_t s1 = m.ranges()[1].start;
  std::uint64_t s2 = m.ranges()[2].start;
  std::uint64_t width = s2 - s1;
  std::uint64_t lo = s1 + width / 4;
  std::uint64_t hi = s1 + 3 * (width / 4);

  ShardMap next = m.with_delta(ShardMapDelta{m.version(), m.version() + 1, lo, hi, 3});
  EXPECT_EQ(next.version(), m.version() + 1);
  EXPECT_EQ(next.shard_count(), 4u);
  EXPECT_EQ(next.shard_of_hash(s1), 1u);       // head of the old range stays
  EXPECT_EQ(next.shard_of_hash(lo), 3u);       // moved slice
  EXPECT_EQ(next.shard_of_hash(hi - 1), 3u);
  EXPECT_EQ(next.shard_of_hash(hi), 1u);       // tail of the old range stays
  EXPECT_EQ(next.shard_of_hash(s2), 2u);       // neighbors untouched
  // The source map is unchanged (with_delta is const).
  EXPECT_EQ(m.shard_of_hash(lo), 1u);
}

TEST(ShardMap, WithDeltaMergesAdjacentSameOwnerRanges) {
  // Moving a whole existing range to its left neighbor's owner must merge
  // ranges instead of leaving a redundant boundary.
  ShardMap m = ShardMap::uniform(4);
  std::uint64_t s1 = m.ranges()[1].start;
  std::uint64_t s2 = m.ranges()[2].start;
  ShardMap next = m.with_delta(ShardMapDelta{m.version(), m.version() + 1, s1, s2, 0});
  EXPECT_EQ(next.shard_of_hash(s1), 0u);
  EXPECT_EQ(next.shard_of_hash(s2 - 1), 0u);
  EXPECT_EQ(next.shard_of_hash(s2), 2u);
  ASSERT_EQ(next.ranges().size(), 3u);  // [0 -> shard0], [s2 -> 2], [s3 -> 3]
  EXPECT_EQ(next.ranges()[0].start, 0u);
  EXPECT_EQ(next.ranges()[1].start, s2);
}

TEST(ShardMap, WithDeltaHiZeroMeansTopOfHashSpace) {
  ShardMap m = ShardMap::uniform(2);
  std::uint64_t split = m.ranges()[1].start;
  // Move everything from the split upwards (hi == 0 == top) to shard 0.
  ShardMap next = m.with_delta(ShardMapDelta{m.version(), m.version() + 1, split, 0, 0});
  EXPECT_EQ(next.shard_of_hash(split), 0u);
  EXPECT_EQ(next.shard_of_hash(~std::uint64_t{0}), 0u);
  ASSERT_EQ(next.ranges().size(), 1u);  // collapsed to one full-ring range
}

TEST(ShardMap, WithDeltaRejectsStaleBaseAndUnknownShard) {
  ShardMap m = ShardMap::uniform(2);
  std::uint64_t split = m.ranges()[1].start;
  // base_version must match the map being advanced.
  EXPECT_THROW(m.with_delta(ShardMapDelta{m.version() + 1, m.version() + 2, 0, split, 1}),
               std::invalid_argument);
  // new_version must move forward.
  EXPECT_THROW(m.with_delta(ShardMapDelta{m.version(), m.version(), 0, split, 1}),
               std::invalid_argument);
  // Target shard must exist in the deployment.
  EXPECT_THROW(m.with_delta(ShardMapDelta{m.version(), m.version() + 1, 0, split, 7}),
               std::invalid_argument);
}

TEST(ShardMap, SoleOwnerOf) {
  ShardMap m = ShardMap::uniform(4);
  std::uint64_t s1 = m.ranges()[1].start;
  std::uint64_t s2 = m.ranges()[2].start;
  std::uint32_t owner = 99;
  EXPECT_TRUE(m.sole_owner_of(s1, s2, &owner));
  EXPECT_EQ(owner, 1u);
  EXPECT_TRUE(m.sole_owner_of(s1 + 1, s2 - 1, &owner));
  EXPECT_EQ(owner, 1u);
  // Straddles the s2 boundary: two owners.
  EXPECT_FALSE(m.sole_owner_of(s1, s2 + 1, &owner));
  // hi == 0 (top): only the last shard's range qualifies.
  EXPECT_TRUE(m.sole_owner_of(m.ranges()[3].start, 0, &owner));
  EXPECT_EQ(owner, 3u);
  EXPECT_FALSE(m.sole_owner_of(s1, 0, &owner));
}

}  // namespace
}  // namespace spider
