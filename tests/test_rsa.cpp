#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "crypto/rsa.hpp"

namespace spider {
namespace {

// Shared 512-bit key pair: generated once to keep the suite fast.
const RsaKeyPair& test_keys() {
  static RsaKeyPair kp = [] {
    Rng rng(4242);
    return rsa_generate(rng, 512);
  }();
  return kp;
}

TEST(Rsa, KeyGenerationShape) {
  const RsaKeyPair& kp = test_keys();
  EXPECT_EQ(kp.pub.n.bit_length(), 512u);
  EXPECT_EQ(kp.pub.e.low_u64(), 65537u);
  EXPECT_EQ(kp.pub.modulus_bytes(), 64u);
  // n = p * q
  EXPECT_EQ(BigInt::cmp(BigInt::mul(kp.priv.p, kp.priv.q), kp.pub.n), 0);
}

TEST(Rsa, SignVerifyRoundTrip) {
  Bytes msg = to_bytes(std::string("attack at dawn"));
  Bytes sig = rsa_sign(test_keys().priv, msg);
  EXPECT_EQ(sig.size(), 64u);
  EXPECT_TRUE(rsa_verify(test_keys().pub, msg, sig));
}

TEST(Rsa, VerifyRejectsTamperedMessage) {
  Bytes msg = to_bytes(std::string("attack at dawn"));
  Bytes sig = rsa_sign(test_keys().priv, msg);
  Bytes tampered = to_bytes(std::string("attack at dusk"));
  EXPECT_FALSE(rsa_verify(test_keys().pub, tampered, sig));
}

TEST(Rsa, VerifyRejectsTamperedSignature) {
  Bytes msg = to_bytes(std::string("m"));
  Bytes sig = rsa_sign(test_keys().priv, msg);
  sig[10] ^= 0x01;
  EXPECT_FALSE(rsa_verify(test_keys().pub, msg, sig));
}

TEST(Rsa, VerifyRejectsWrongLength) {
  Bytes msg = to_bytes(std::string("m"));
  Bytes sig = rsa_sign(test_keys().priv, msg);
  sig.pop_back();
  EXPECT_FALSE(rsa_verify(test_keys().pub, msg, sig));
  sig.push_back(0);
  sig.push_back(0);
  EXPECT_FALSE(rsa_verify(test_keys().pub, msg, sig));
}

TEST(Rsa, VerifyRejectsSignatureGeModulus) {
  Bytes msg = to_bytes(std::string("m"));
  Bytes huge = test_keys().pub.n.to_bytes_be(64);  // == n, invalid
  EXPECT_FALSE(rsa_verify(test_keys().pub, msg, huge));
}

TEST(Rsa, SignatureDeterministic) {
  Bytes msg = to_bytes(std::string("deterministic"));
  EXPECT_EQ(rsa_sign(test_keys().priv, msg), rsa_sign(test_keys().priv, msg));
}

TEST(Rsa, DifferentMessagesDifferentSignatures) {
  EXPECT_NE(rsa_sign(test_keys().priv, to_bytes(std::string("a"))),
            rsa_sign(test_keys().priv, to_bytes(std::string("b"))));
}

TEST(Rsa, CrossKeyVerificationFails) {
  Rng rng(999);
  RsaKeyPair other = rsa_generate(rng, 512);
  Bytes msg = to_bytes(std::string("cross"));
  Bytes sig = rsa_sign(test_keys().priv, msg);
  EXPECT_FALSE(rsa_verify(other.pub, msg, sig));
}

TEST(Rsa, PublicKeyEncodeDecode) {
  Bytes enc = test_keys().pub.encode();
  RsaPublicKey dec = RsaPublicKey::decode(enc);
  EXPECT_EQ(BigInt::cmp(dec.n, test_keys().pub.n), 0);
  EXPECT_EQ(BigInt::cmp(dec.e, test_keys().pub.e), 0);
}

TEST(Rsa, DeterministicKeygenFromSeed) {
  Rng a(123), b(123);
  RsaKeyPair ka = rsa_generate(a, 512);
  RsaKeyPair kb = rsa_generate(b, 512);
  EXPECT_EQ(BigInt::cmp(ka.pub.n, kb.pub.n), 0);
}

TEST(Rsa, EmptyMessageSignable) {
  Bytes sig = rsa_sign(test_keys().priv, {});
  EXPECT_TRUE(rsa_verify(test_keys().pub, {}, sig));
}

TEST(Rsa, LargeMessageSignable) {
  Bytes msg(100000, 0x5a);
  Bytes sig = rsa_sign(test_keys().priv, msg);
  EXPECT_TRUE(rsa_verify(test_keys().pub, msg, sig));
  msg[50000] ^= 1;
  EXPECT_FALSE(rsa_verify(test_keys().pub, msg, sig));
}

TEST(Rsa, CrtMatchesPlainExponentiation) {
  // s == m^d mod n computed without CRT.
  Bytes msg = to_bytes(std::string("crt check"));
  Bytes sig = rsa_sign(test_keys().priv, msg);
  BigInt s = BigInt::from_bytes_be(sig);
  BigInt recovered = BigInt::powmod(s, test_keys().pub.e, test_keys().pub.n);
  // Re-signing via plain powmod of the padded block should give the same s.
  BigInt plain = BigInt::powmod(recovered, test_keys().priv.d, test_keys().priv.n);
  EXPECT_EQ(BigInt::cmp(plain, s), 0);
}

}  // namespace
}  // namespace spider
