// Adversarial decode tests for the TCP length-prefix framer — the byte
// stream it parses is controlled by a (potentially Byzantine) peer, so the
// decoder is held to the hardened-deserialization bar: structural
// violations surface SerdeError (the transport then closes the
// connection), truncation is detected, and no input can trigger a crash or
// an allocation proportional to a declared-but-never-sent length.
#include <gtest/gtest.h>

#include <string>

#include "net/tcp_framer.hpp"

namespace spider::net {
namespace {

Bytes le32(std::uint32_t v) {
  return Bytes{static_cast<std::uint8_t>(v), static_cast<std::uint8_t>(v >> 8),
               static_cast<std::uint8_t>(v >> 16), static_cast<std::uint8_t>(v >> 24)};
}

Bytes cat(std::initializer_list<Bytes> parts) {
  Bytes out;
  for (const Bytes& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

/// A full well-formed frame as the sender would emit it.
Bytes wire_frame(NodeId from, const std::string& payload) {
  Bytes head = frame_prologue(from, payload.size());
  Bytes body = to_bytes(payload);
  return cat({head, body});
}

TEST(TcpFramer, PrologueRoundTripsThroughDecoder) {
  FrameDecoder dec;
  dec.feed(wire_frame(42, "hello world"));
  auto f = dec.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->from, 42u);
  EXPECT_EQ(to_string(f->payload), "hello world");
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_FALSE(dec.mid_frame());
}

TEST(TcpFramer, EmptyPayloadFrameIsValid) {
  FrameDecoder dec;
  dec.feed(wire_frame(7, ""));
  auto f = dec.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->from, 7u);
  EXPECT_TRUE(f->payload.empty());
}

TEST(TcpFramer, ReassemblesFramesAcrossArbitrarySegmentation) {
  // TCP gives no message boundaries: deliver three frames one byte at a
  // time and expect exactly the three original messages.
  Bytes stream = cat({wire_frame(1, "alpha"), wire_frame(2, ""), wire_frame(3, "gamma!")});
  FrameDecoder dec;
  std::vector<Frame> got;
  for (std::uint8_t b : stream) {
    dec.feed(BytesView(&b, 1));
    while (auto f = dec.next()) got.push_back(std::move(*f));
  }
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].from, 1u);
  EXPECT_EQ(to_string(got[0].payload), "alpha");
  EXPECT_EQ(got[1].from, 2u);
  EXPECT_TRUE(got[1].payload.empty());
  EXPECT_EQ(got[2].from, 3u);
  EXPECT_EQ(to_string(got[2].payload), "gamma!");
  EXPECT_FALSE(dec.mid_frame());
}

TEST(TcpFramer, CoalescedFramesDecodeInOrder) {
  FrameDecoder dec;
  dec.feed(cat({wire_frame(5, "one"), wire_frame(5, "two"), wire_frame(5, "three")}));
  EXPECT_EQ(to_string(dec.next()->payload), "one");
  EXPECT_EQ(to_string(dec.next()->payload), "two");
  EXPECT_EQ(to_string(dec.next()->payload), "three");
  EXPECT_FALSE(dec.next().has_value());
}

// ---- truncation ----------------------------------------------------------

TEST(TcpFramer, TruncatedLengthPrefixIsMidFrameNotAFrame) {
  FrameDecoder dec;
  dec.feed(BytesView(le32(100).data(), 2));  // half a length word
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_TRUE(dec.mid_frame()) << "a partial header means a dirty close";
}

TEST(TcpFramer, MidFrameDisconnectNeverYieldsAPartialMessage) {
  Bytes full = wire_frame(9, "important-payload");
  FrameDecoder dec;
  dec.feed(BytesView(full.data(), full.size() - 5));  // peer dies 5 bytes early
  EXPECT_FALSE(dec.next().has_value()) << "partial frame must never surface";
  EXPECT_TRUE(dec.mid_frame());
  // The remaining bytes arriving later (e.g. from a retransmit view of the
  // same stream) complete the frame intact.
  dec.feed(BytesView(full.data() + full.size() - 5, 5));
  auto f = dec.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(to_string(f->payload), "important-payload");
}

// ---- structural violations ----------------------------------------------

TEST(TcpFramer, DeclaredLengthBelowHeaderIsRejected) {
  for (std::uint32_t len : {0u, 1u, 2u, 3u}) {
    FrameDecoder dec;
    EXPECT_THROW(dec.feed(cat({le32(len), le32(1)})), SerdeError)
        << "len=" << len << " cannot cover the sender id";
  }
}

TEST(TcpFramer, OversizedDeclaredLengthIsRejectedBeforeBuffering) {
  FrameDecoder dec(1024);  // small cap to make the bound observable
  // 4-byte header declaring ~4 GiB: must throw immediately, not wait for
  // (or allocate room for) a body that will never arrive.
  EXPECT_THROW(dec.feed(le32(0xfffffff0u)), SerdeError);
}

TEST(TcpFramer, OversizedLengthOnSecondFrameIsAlsoRejected) {
  FrameDecoder dec(1024);
  dec.feed(cat({wire_frame(1, "ok"), le32(1u << 20)}));
  EXPECT_EQ(to_string(dec.next()->payload), "ok");
  EXPECT_THROW(dec.next(), SerdeError) << "later headers get the same validation";
}

TEST(TcpFramer, GarbageStreamIsRejectedNotInterpreted) {
  // Arbitrary junk bytes: the first four decode to 0x5a5a5a5a, an absurd
  // declared length — the decoder rejects the stream on the spot instead
  // of waiting for gigabytes that will never arrive.
  FrameDecoder dec(4096);
  EXPECT_THROW(dec.feed(Bytes(64, 0x5a)), SerdeError);
}

TEST(TcpFramer, PendingFrameBuffersAtMostOneFrame) {
  // A peer that declares a maximum-size frame and then drips the body can
  // pin at most one frame's worth of memory, no matter how slowly it feeds.
  constexpr std::size_t kMax = 4096;
  FrameDecoder dec(kMax);
  dec.feed(le32(kMax));  // legal maximum-size declaration
  const Bytes drip(256, 0x11);
  std::size_t sent = 4;
  while (sent + drip.size() < kMax + 4) {  // stop short of completing it
    dec.feed(drip);
    sent += drip.size();
    EXPECT_FALSE(dec.next().has_value());
    EXPECT_LE(dec.buffered(), kMax + 4u) << "buffering exceeded one frame";
  }
}

TEST(TcpFramer, SenderRefusesToBuildOversizedFrame) {
  EXPECT_THROW(frame_prologue(1, 1024, /*max_frame=*/512), SerdeError);
  // At exactly the cap the frame is legal end to end.
  Bytes head = frame_prologue(1, 508, /*max_frame=*/512);
  FrameDecoder dec(512);
  dec.feed(head);
  dec.feed(Bytes(508, 0x11));
  auto f = dec.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->payload.size(), 508u);
}

TEST(TcpFramer, SteadyStateMemoryIsBoundedAcrossManyFrames) {
  // A long-lived connection must not accumulate memory: after each fully
  // consumed frame the internal buffer resets.
  FrameDecoder dec;
  for (int i = 0; i < 10'000; ++i) {
    dec.feed(wire_frame(3, "steady-state-message-" + std::to_string(i)));
    auto f = dec.next();
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(dec.buffered(), 0u);
  }
}

}  // namespace
}  // namespace spider::net
