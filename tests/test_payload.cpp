// Payload: refcounted immutable buffers with memoized digests — the
// zero-copy transport contract.
#include <gtest/gtest.h>

#include "common/payload.hpp"

namespace spider {
namespace {

Bytes some_bytes(std::size_t n, std::uint8_t salt = 0) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<std::uint8_t>(i * 31 + salt);
  return b;
}

TEST(Payload, ViewMatchesSourceBytes) {
  Bytes src = some_bytes(100);
  Payload p(src);
  ASSERT_EQ(p.size(), src.size());
  EXPECT_TRUE(bytes_equal(p.view(), src));
  EXPECT_TRUE(bytes_equal(p.to_bytes(), src));
}

TEST(Payload, FromWriterTakesBufferWithoutCopy) {
  Writer w(16);
  w.u32(0xdeadbeef);
  w.str("hello");
  Bytes expect = w.data();
  Payload p(std::move(w));
  EXPECT_TRUE(bytes_equal(p.view(), expect));
}

TEST(Payload, DigestIsMemoized) {
  Payload p(some_bytes(1000));
  Sha256Digest d1 = p.digest();
  Sha256Digest d2 = p.digest();
  EXPECT_EQ(d1, d2);
  EXPECT_EQ(p.digest_computations(), 1u) << "second digest() must hit the memo";
  EXPECT_EQ(d1, Sha256::hash(p.view())) << "memoized digest must be bit-identical";
}

TEST(Payload, SubWindowDigestsAreMemoizedIndependently) {
  Payload p(some_bytes(256));
  BytesView head = p.view().subspan(0, 64);
  BytesView tail = p.view().subspan(64);
  Sha256Digest dh = p.digest_of(head);
  Sha256Digest dt = p.digest_of(tail);
  EXPECT_EQ(p.digest_computations(), 2u);
  EXPECT_EQ(dh, p.digest_of(head));
  EXPECT_EQ(dt, p.digest_of(tail));
  EXPECT_EQ(p.digest_computations(), 2u) << "repeat sub-digests must hit the memo";
  EXPECT_EQ(dh, Sha256::hash(head));
  EXPECT_EQ(dt, Sha256::hash(tail));
}

TEST(Payload, SliceSharesBufferAndMemo) {
  Payload p(some_bytes(256));
  Payload s = p.slice(16, 100);
  EXPECT_TRUE(s.shares_buffer_with(p));
  EXPECT_TRUE(bytes_equal(s.view(), p.view().subspan(16, 100)));

  // A digest computed through the slice is visible through the parent.
  Sha256Digest d = s.digest();
  EXPECT_EQ(p.digest_computations(), 1u);
  EXPECT_EQ(d, p.digest_of(p.view().subspan(16, 100)));
  EXPECT_EQ(p.digest_computations(), 1u) << "parent must reuse the slice's memo entry";
}

TEST(Payload, SliceOfRoundTripsViews) {
  Payload p(some_bytes(128));
  BytesView sub = p.view().subspan(40, 30);
  ASSERT_TRUE(p.contains(sub));
  Payload s = p.slice_of(sub);
  EXPECT_TRUE(s.shares_buffer_with(p));
  EXPECT_TRUE(bytes_equal(s.view(), sub));

  Bytes other = some_bytes(10);
  EXPECT_FALSE(p.contains(other));
  EXPECT_THROW(p.slice_of(other), std::out_of_range);
  EXPECT_THROW(p.slice(100, 100), std::out_of_range);
}

TEST(Payload, DigestInvalidationMeansRebuilding) {
  // Payloads are immutable, so "invalidating" a memoized digest is done by
  // constructing a new Payload from the modified bytes: the new buffer
  // starts with an empty memo and must recompute, while the original's
  // memo stays valid for its unchanged bytes.
  Bytes src = some_bytes(200);
  Payload original(src);
  Sha256Digest d_orig = original.digest();

  src[7] ^= 0xff;  // "mutation" produces a different payload
  Payload rebuilt(src);
  Sha256Digest d_new = rebuilt.digest();
  EXPECT_NE(d_orig, d_new);
  EXPECT_EQ(rebuilt.digest_computations(), 1u) << "rebuilt payload must hash fresh bytes";
  EXPECT_EQ(original.digest(), d_orig);
  EXPECT_EQ(original.digest_computations(), 1u) << "original memo must survive the rebuild";
}

TEST(Payload, EmptyPayloadBehaves) {
  Payload p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.size(), 0u);
  EXPECT_EQ(p.digest(), Sha256::hash({}));
  EXPECT_FALSE(p.contains(BytesView{}));
}

TEST(Payload, RefcountKeepsBufferAliveAcrossOwnerDeath) {
  Payload s;
  {
    Payload p(some_bytes(64));
    s = p.slice(8, 16);
  }
  // p is gone; the slice still reads valid bytes.
  Bytes expect = some_bytes(64);
  EXPECT_TRUE(bytes_equal(s.view(), BytesView(expect).subspan(8, 16)));
}

}  // namespace
}  // namespace spider
