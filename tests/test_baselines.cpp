#include <gtest/gtest.h>

#include "baselines/bft_system.hpp"
#include "baselines/hft_system.hpp"
#include "sim/world.hpp"

namespace spider {
namespace {

std::vector<Site> geo_sites() {
  return {Site{Region::Virginia, 0}, Site{Region::Oregon, 0}, Site{Region::Ireland, 0},
          Site{Region::Tokyo, 0}};
}

template <typename MakeClient>
std::pair<KvReply, Duration> run_write(World& world, MakeClient& client, const std::string& key,
                                       const std::string& value,
                                       Duration timeout = 30 * kSecond) {
  KvReply out;
  Duration lat = -1;
  client.write(kv_put(key, to_bytes(value)), [&](Bytes result, Duration l) {
    out = kv_decode_reply(result);
    lat = l;
  });
  Time deadline = world.now() + timeout;
  while (lat < 0 && world.now() < deadline) world.queue().run_next();
  return {out, lat};
}

template <typename MakeClient>
std::pair<KvReply, Duration> run_weak_read(World& world, MakeClient& client,
                                           const std::string& key,
                                           Duration timeout = 30 * kSecond) {
  KvReply out;
  Duration lat = -1;
  client.weak_read(kv_get(key), [&](Bytes result, Duration l) {
    out = kv_decode_reply(result);
    lat = l;
  });
  Time deadline = world.now() + timeout;
  while (lat < 0 && world.now() < deadline) world.queue().run_next();
  return {out, lat};
}

// ----------------------------------------------------------------- BFT

TEST(BaselineBft, WriteCompletesOverWan) {
  World world(1);
  BftSystem sys(world, BftConfig{geo_sites()});
  auto client = sys.make_client(Site{Region::Virginia, 0});
  auto [reply, lat] = run_write(world, *client, "k", "v");
  ASSERT_TRUE(reply.ok);
  // Full consensus over wide-area links: order of a WAN round trip.
  EXPECT_GT(lat, 60 * kMillisecond);
  EXPECT_LT(lat, 400 * kMillisecond);
}

TEST(BaselineBft, StateConsistentAcrossReplicas) {
  World world(1);
  BftSystem sys(world, BftConfig{geo_sites()});
  auto client = sys.make_client(Site{Region::Oregon, 0});
  ASSERT_TRUE(run_write(world, *client, "k", "v").first.ok);
  world.run_for(2 * kSecond);
  for (std::size_t i = 0; i < sys.size(); ++i) {
    KvReply r = kv_decode_reply(sys.replica(i).app().execute_readonly(kv_get("k")));
    EXPECT_TRUE(r.ok) << i;
  }
}

TEST(BaselineBft, WeakReadNeedsWanQuorum) {
  World world(1);
  BftSystem sys(world, BftConfig{geo_sites()});
  auto client = sys.make_client(Site{Region::Virginia, 0});
  auto [reply, lat] = run_weak_read(world, *client, "nope");
  EXPECT_FALSE(reply.ok);
  // f+1 matching replies require at least the second-closest replica
  // (Oregon, 68 ms RTT) — weak reads are NOT local in flat BFT (Fig. 8b).
  EXPECT_GT(lat, 60 * kMillisecond);
}

TEST(BaselineBft, SequentialWritesSucceed) {
  World world(1);
  BftSystem sys(world, BftConfig{geo_sites()});
  auto client = sys.make_client(Site{Region::Tokyo, 0});
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(run_write(world, *client, "k" + std::to_string(i), "v").first.ok) << i;
  }
}

TEST(BaselineBft, CrashedFollowerTolerated) {
  World world(1);
  BftSystem sys(world, BftConfig{geo_sites()});
  world.net().set_node_down(sys.replica(3).id(), true);
  auto client = sys.make_client(Site{Region::Virginia, 0});
  EXPECT_TRUE(run_write(world, *client, "k", "v").first.ok);
}

TEST(BaselineBft, LeaderCrashCausesWanViewChange) {
  World world(1);
  BftConfig cfg{geo_sites()};
  cfg.request_timeout = kSecond;
  cfg.view_change_timeout = 2 * kSecond;
  BftSystem sys(world, cfg);
  world.net().set_node_down(sys.replica(0).id(), true);
  auto client = sys.make_client(Site{Region::Ireland, 0});
  auto [reply, lat] = run_write(world, *client, "k", "v");
  EXPECT_TRUE(reply.ok);
  EXPECT_GE(sys.replica(1).consensus().view(), 1u);
}

TEST(BaselineBft, Spider0EConfiguration) {
  // Spider-0E: the agreement group executes requests itself, placed in
  // Virginia AZs (paper Figure 9a).
  World world(1);
  std::vector<Site> azs = {Site{Region::Virginia, 0}, Site{Region::Virginia, 1},
                           Site{Region::Virginia, 2}, Site{Region::Virginia, 3}};
  BftSystem sys(world, BftConfig{azs});
  auto near = sys.make_client(Site{Region::Virginia, 0});
  auto far = sys.make_client(Site{Region::Tokyo, 0});
  auto [r1, lat_near] = run_write(world, *near, "a", "1");
  auto [r2, lat_far] = run_write(world, *far, "b", "2");
  ASSERT_TRUE(r1.ok);
  ASSERT_TRUE(r2.ok);
  EXPECT_LT(lat_near, 30 * kMillisecond);
  EXPECT_GT(lat_far, 150 * kMillisecond);  // dominated by client WAN RTT
}

// ----------------------------------------------------------------- BFT-WV

TEST(BaselineBftWv, WeightedVotingOrders) {
  World world(1);
  std::vector<Site> sites = geo_sites();
  sites.push_back(Site{Region::SaoPaulo, 0});
  BftConfig cfg{sites};
  cfg.weights = {2, 2, 1, 1, 1};  // WHEAT: Vmax on Virginia and Oregon
  cfg.quorum_weight = 5;
  BftSystem sys(world, cfg);
  auto client = sys.make_client(Site{Region::Virginia, 0});
  auto [reply, lat] = run_write(world, *client, "k", "v");
  ASSERT_TRUE(reply.ok);
  // Fast quorum V(2)+O(2)+I(1): not slower than plain BFT.
  EXPECT_LT(lat, 400 * kMillisecond);
}

// ----------------------------------------------------------------- HFT

TEST(BaselineHft, WriteCompletes) {
  World world(1);
  HftSystem sys(world, HftConfig{});
  auto client = sys.make_client(Site{Region::Virginia, 0});
  auto [reply, lat] = run_write(world, *client, "k", "v");
  ASSERT_TRUE(reply.ok);
  EXPECT_GT(lat, 30 * kMillisecond);   // wide-area accept exchange
  EXPECT_LT(lat, 500 * kMillisecond);
}

TEST(BaselineHft, AllSitesExecute) {
  World world(1);
  HftSystem sys(world, HftConfig{});
  auto client = sys.make_client(Site{Region::Ireland, 0});
  ASSERT_TRUE(run_write(world, *client, "k", "v").first.ok);
  world.run_for(2 * kSecond);
  for (std::uint32_t s = 0; s < sys.site_count(); ++s) {
    KvReply r = kv_decode_reply(sys.replica(s, 0).app().execute_readonly(kv_get("k")));
    EXPECT_TRUE(r.ok) << "site " << s;
  }
}

TEST(BaselineHft, WeakReadsAreLocal) {
  World world(1);
  HftSystem sys(world, HftConfig{});
  auto client = sys.make_client(Site{Region::Tokyo, 0});
  auto [reply, lat] = run_weak_read(world, *client, "nope");
  EXPECT_FALSE(reply.ok);
  EXPECT_LT(lat, 5 * kMillisecond);  // answered by the local site (Fig. 8b)
}

TEST(BaselineHft, RemoteSiteSlowerThanLeaderSite) {
  World world(1);
  HftSystem sys(world, HftConfig{});  // leader site Virginia
  auto va = sys.make_client(Site{Region::Virginia, 0});
  auto tk = sys.make_client(Site{Region::Tokyo, 0});
  auto [r1, lat_va] = run_write(world, *va, "a", "1");
  auto [r2, lat_tk] = run_write(world, *tk, "b", "2");
  ASSERT_TRUE(r1.ok);
  ASSERT_TRUE(r2.ok);
  EXPECT_LT(lat_va, lat_tk);
}

TEST(BaselineHft, SequentialWritesFromMultipleSites) {
  World world(1);
  HftSystem sys(world, HftConfig{});
  auto va = sys.make_client(Site{Region::Virginia, 0});
  auto ir = sys.make_client(Site{Region::Ireland, 0});
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(run_write(world, *va, "va" + std::to_string(i), "v").first.ok);
    ASSERT_TRUE(run_write(world, *ir, "ir" + std::to_string(i), "v").first.ok);
  }
  world.run_for(2 * kSecond);
  // Same total order everywhere: all sites executed all 6 writes.
  for (std::uint32_t s = 0; s < sys.site_count(); ++s) {
    EXPECT_EQ(sys.replica(s, 1).executed_seq(), 6u) << "site " << s;
  }
}

TEST(BaselineHft, ConcurrentSubmissionBothOrdered) {
  World world(1);
  HftSystem sys(world, HftConfig{});
  auto va = sys.make_client(Site{Region::Virginia, 0});
  auto tk = sys.make_client(Site{Region::Tokyo, 0});
  int done = 0;
  va->write(kv_put("a", to_bytes(std::string("1"))), [&](Bytes, Duration) { ++done; });
  tk->write(kv_put("b", to_bytes(std::string("2"))), [&](Bytes, Duration) { ++done; });
  Time deadline = world.now() + 30 * kSecond;
  while (done < 2 && world.now() < deadline) world.queue().run_next();
  EXPECT_EQ(done, 2);
}

}  // namespace
}  // namespace spider
