// Seed-swept chaos suite: random FaultPlans against four deployment
// shapes — Spider f=1, Spider f=2, the geo-replicated PBFT baseline, and a
// 2-shard sharded deployment — with every client operation recorded and
// the whole history checked for per-key linearizability (weak reads
// against the committed-prefix rule).
//
//   - Benign sweep: crashes + restarts, partitions, loss, delay spikes,
//     slow nodes. 16 seeds x 4 configs = 64 scenarios.
//   - Byzantine sweep: the benign faults *plus* scheduled active-adversary
//     windows (equivocating primaries, corrupt replies, dropped request
//     forwarding, muted / fully-isolated consensus replicas, forged
//     checkpoint certificates), hard-capped at ≤f Byzantine replicas per
//     consensus group and ≤fe per execution group. 8 seeds x 4 configs =
//     32 scenarios. Linearizability must hold under ANY such schedule; the
//     fe+1-corruptor canary below proves the checker would catch a breach.
//
// On failure each scenario writes chaos_failure_<config>_seed<N>.txt
// (fault schedule + full history, both human-readable and replayable)
// next to the test binary; CI uploads these as artifacts. Reproduce
// locally with the seed from the test name — scenarios are
// bit-deterministic (see SeedReplayIsByteIdentical) — or reload the
// artifact itself (see ArtifactRoundTripReplaysByteIdentically).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "baselines/bft_system.hpp"
#include "check/linearizer.hpp"
#include "obs/trace_export.hpp"
#include "common/hex.hpp"
#include "crypto/sha256.hpp"
#include "shard/sharded_system.hpp"
#include "sim/fault_plan.hpp"
#include "sim/world.hpp"
#include "spider/system.hpp"
#include "tests/support/chaos.hpp"
#include "tests/support/chaos_runner.hpp"
#include "tests/support/drive.hpp"

namespace spider {
namespace {

constexpr const char* kScriptHeader = "== fault script (replayable) ==";
constexpr const char* kHistoryHeader = "== history (replayable) ==";

/// Full failure-artifact text: human-readable context first, then the two
/// replayable sections an artifact loader extracts.
std::string artifact_text(ChaosConfig config, std::uint64_t seed, const ChaosOutcome& out) {
  std::ostringstream f;
  f << "config: " << config_name(config) << "\nseed: " << seed
    << "\ncompleted: " << out.completed << " (pending " << out.pending << "/" << out.total_ops
    << ")\nlinearizable: " << out.lin.ok << " " << out.lin.error
    << "\nlost-writes: " << out.lost_diag << "\n\n== fault schedule ==\n"
    << out.fault_script << "\n== recorded history ==\n"
    << out.history_dump << "\n"
    << kScriptHeader << "\n"
    << out.machine_script << kHistoryHeader << "\n"
    << out.history_text;
  return f.str();
}

/// Extracts the section between `header` and the next "== ... ==" line (or
/// end of text). Returns an empty string if the header is missing.
std::string artifact_section(const std::string& artifact, const std::string& header) {
  std::size_t at = artifact.find(header);
  if (at == std::string::npos) return {};
  at = artifact.find('\n', at);
  if (at == std::string::npos) return {};
  ++at;
  std::size_t end = artifact.find("\n== ", at);
  return artifact.substr(at, end == std::string::npos ? std::string::npos : end + 1 - at);
}

void write_failure_artifact(ChaosConfig config, std::uint64_t seed, const ChaosOutcome& out,
                            bool byzantine) {
  std::string stem = std::string("chaos_failure_") + (byzantine ? "byz_" : "") +
                     config_name(config) + "_seed" + std::to_string(seed);
  std::string path = stem + ".txt";
  std::ofstream f(path);
  f << artifact_text(config, seed, out);
  std::string trace_note;
  if (!out.flight_trace.empty()) {
    std::string trace_path = stem + "_trace.json";
    std::ofstream tf(trace_path);
    tf << out.flight_trace;
    trace_note = "; flight-recorder trace in " + trace_path;
  }
  ADD_FAILURE() << "chaos scenario failed; artifact written to " << path << trace_note
                << " — reproduce with config=" << config_name(config) << " seed=" << seed
                << (byzantine ? " (byzantine sweep)" : "");
}

class ChaosSweep : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(ChaosSweep, LinearizableAndNoAckedWriteLost) {
  ChaosConfig config = static_cast<ChaosConfig>(std::get<0>(GetParam()));
  std::uint64_t seed = std::get<1>(GetParam());
  ChaosOutcome out = run_chaos(config, seed);
  if (!out.completed || !out.lin.ok || !out.no_lost_writes) {
    write_failure_artifact(config, seed, out, /*byzantine=*/false);
  }
  EXPECT_TRUE(out.completed) << out.pending << " of " << out.total_ops << " ops never completed";
  EXPECT_TRUE(out.lin.ok) << out.lin.error;
  EXPECT_TRUE(out.no_lost_writes) << out.lost_diag;
}

std::string chaos_param_name(const ::testing::TestParamInfo<std::tuple<int, std::uint64_t>>& i) {
  return std::string(config_name(static_cast<ChaosConfig>(std::get<0>(i.param)))) + "_seed" +
         std::to_string(std::get<1>(i.param));
}

INSTANTIATE_TEST_SUITE_P(Chaos, ChaosSweep,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Range<std::uint64_t>(1, 17)),
                         chaos_param_name);

// ---------------------------------------------------------------------------
// Byzantine sweep: same checked-chaos methodology with active adversaries
// scheduled on top of the benign faults — linearizability and no-lost-writes
// must hold under ANY ≤f-per-role Byzantine schedule.
// ---------------------------------------------------------------------------

class ByzChaosSweep : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(ByzChaosSweep, LinearizableUnderActiveAdversaries) {
  ChaosConfig config = static_cast<ChaosConfig>(std::get<0>(GetParam()));
  std::uint64_t seed = std::get<1>(GetParam());
  ChaosOutcome out = run_chaos(config, seed, /*byzantine=*/true);
  if (!out.completed || !out.lin.ok || !out.no_lost_writes) {
    write_failure_artifact(config, seed, out, /*byzantine=*/true);
  }
  EXPECT_TRUE(out.completed) << out.pending << " of " << out.total_ops << " ops never completed";
  EXPECT_TRUE(out.lin.ok) << out.lin.error;
  EXPECT_TRUE(out.no_lost_writes) << out.lost_diag;
}

INSTANTIATE_TEST_SUITE_P(Chaos, ByzChaosSweep,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Range<std::uint64_t>(101, 109)),
                         chaos_param_name);

TEST(ChaosDeterminism, SeedReplayIsByteIdentical) {
  ChaosOutcome a = run_chaos(ChaosConfig::SpiderF1, 7);
  ChaosOutcome b = run_chaos(ChaosConfig::SpiderF1, 7);
  EXPECT_EQ(a.fault_script, b.fault_script);
  EXPECT_EQ(a.history, b.history);
  EXPECT_FALSE(a.history.empty());
  // The flight-recorder trace is part of the deterministic surface: every
  // event is sim-time-stamped and RNG-free, so a seed replay reproduces
  // the exported JSON byte for byte.
  EXPECT_EQ(a.flight_trace, b.flight_trace);
  EXPECT_FALSE(a.flight_trace.empty());

  ChaosOutcome c = run_chaos(ChaosConfig::SpiderF1, 8);
  EXPECT_NE(c.history, a.history);
}

TEST(ChaosDeterminism, ByzantineSeedReplayIsByteIdentical) {
  ChaosOutcome a = run_chaos(ChaosConfig::SpiderF1, 103, /*byzantine=*/true);
  ChaosOutcome b = run_chaos(ChaosConfig::SpiderF1, 103, /*byzantine=*/true);
  EXPECT_EQ(a.fault_script, b.fault_script);
  EXPECT_EQ(a.machine_script, b.machine_script);
  EXPECT_EQ(a.history, b.history);
  EXPECT_FALSE(a.history.empty());
  // The schedule genuinely contains Byzantine actions.
  EXPECT_NE(a.machine_script.find("byz "), std::string::npos) << a.machine_script;

  ChaosOutcome c = run_chaos(ChaosConfig::SpiderF1, 104, /*byzantine=*/true);
  EXPECT_NE(c.history, a.history);
}

// ---------------------------------------------------------------------------
// Fast-path equivalence: the zero-copy transport / flat-heap scheduler /
// memoized-digest pipeline must be *observationally identical* to the
// pre-optimisation implementation. The goldens below are SHA-256 digests of
// (machine fault script, recorded history) captured from the naive-copy
// implementation at the same seeds; any divergence in event order, RNG
// consumption, wire bytes or simulated timestamps changes them.
// ---------------------------------------------------------------------------

TEST(ChaosDeterminism, FastPathMatchesPreOptimizationGoldens) {
  struct Golden {
    ChaosConfig config;
    std::uint64_t seed;
    bool byzantine;
    const char* script_sha;
    const char* history_sha;
  };
  const Golden goldens[] = {
      {ChaosConfig::SpiderF1, 7, false,
       "a17347e98364e2e8e56a1ccb559aaaf3519aff5e27c519d9a0be4724cb84d4a2",
       "81479ff0304795bc452e7fa52b0d246bafaa4856bce77236f6b43ec175a09dbe"},
      {ChaosConfig::SpiderF2, 3, false,
       "a86fc42376d861975983dc6f3b77c871ad1b7e707367c4f678bf51e188116c89",
       "4e2150d0fcdce76bb449ceb4ab9626312645b7b7c2752c823ac7d70da298fe3c"},
      {ChaosConfig::PbftBaseline, 11, false,
       "c54a204ddcd512967101bf9171a1dc1c8cc7c83df9a34a868bd020c950c92a83",
       "696c6044c47e2164220503d5559b943945e3a35afdba35b46946d87a42623ed4"},
      {ChaosConfig::Sharded2, 5, false,
       "76c314389a3059f239a69f3117cbb48aa4fa3c0b1d0d6fae862837548c44a2d9",
       "25b6f0e81bd18c87e2726bcebf11870bef0139ae6cd8beed8e6a915bf2769a4b"},
      {ChaosConfig::SpiderF1, 103, true,
       "10a18b944bd6c01b8cf9df18ab86b5ac13b207f637a55f3ab83ec8f4933239b8",
       "a8dfef510d5b96e2d4afedfa439a7f49ab386347074f0cada46ce08acb4c50bc"},
      {ChaosConfig::Sharded2, 107, true,
       "6ff10948605e10c9fef061ad57925c8bf22f30aabce5a53ff676b9b7c5c0b07f",
       "16433f29f2d246e7978507b1dbebd8094c1b5f884e07c2abf0f5d1671f94b97b"},
  };
  for (const Golden& g : goldens) {
    ChaosOutcome out = run_chaos(g.config, g.seed, g.byzantine);
    EXPECT_EQ(to_hex(sha256(to_bytes(out.machine_script))), g.script_sha)
        << "fault script diverged from the pre-optimisation implementation at "
        << config_name(g.config) << " seed " << g.seed;
    EXPECT_EQ(to_hex(sha256(out.history)), g.history_sha)
        << "recorded history diverged from the pre-optimisation implementation at "
        << config_name(g.config) << " seed " << g.seed;
  }
}

// ---------------------------------------------------------------------------
// Artifact round trip: a failure artifact is not write-only — its
// replayable sections reload into a FaultPlan + history and replay
// byte-identically.
// ---------------------------------------------------------------------------

TEST(ChaosArtifacts, ArtifactRoundTripReplaysByteIdentically) {
  ChaosOutcome a = run_chaos(ChaosConfig::SpiderF1, 105, /*byzantine=*/true);

  // Dump the artifact to disk exactly like a failing scenario would...
  const std::string path = "chaos_artifact_roundtrip.txt";
  {
    std::ofstream f(path);
    f << artifact_text(ChaosConfig::SpiderF1, 105, a);
  }
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string artifact = buf.str();

  // ...reload both replayable sections...
  const std::string script = artifact_section(artifact, kScriptHeader);
  const std::string history_text = artifact_section(artifact, kHistoryHeader);
  ASSERT_FALSE(script.empty());
  ASSERT_FALSE(history_text.empty());
  EXPECT_EQ(script, a.machine_script);

  // ...the history parses back to the recorded bytes...
  std::vector<RecordedOp> ops = parse_history_text(history_text);
  EXPECT_EQ(serialize_ops(ops), a.history);

  // ...and replaying the reloaded schedule (instead of randomize())
  // reproduces the run byte for byte: same fault firings, same history.
  ChaosOutcome b = run_chaos(ChaosConfig::SpiderF1, 105, /*byzantine=*/true, &script);
  EXPECT_EQ(b.fault_script, a.fault_script);
  EXPECT_EQ(b.history, a.history);
}

TEST(ChaosArtifacts, FlightRecorderTraceIsWellFormed) {
  ChaosOutcome out = run_chaos(ChaosConfig::SpiderF1, 9);
  ASSERT_FALSE(out.flight_trace.empty());
  const std::string& t = out.flight_trace;
  // Chrome trace-event envelope, loadable by chrome://tracing and Perfetto.
  EXPECT_EQ(t.rfind("{\"displayTimeUnit\"", 0), 0u) << t.substr(0, 80);
  EXPECT_NE(t.find("\"traceEvents\":["), std::string::npos);
  EXPECT_EQ(t.substr(t.size() - 3), "]}\n");
  // Track metadata and at least one protocol-layer event made the window.
  EXPECT_NE(t.find("process_name"), std::string::npos);
  EXPECT_NE(t.find("\"cat\":\"request\""), std::string::npos);
  // Balanced braces — cheap structural check without a JSON parser.
  std::ptrdiff_t depth = 0;
  for (char ch : t) {
    if (ch == '{') ++depth;
    if (ch == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  // Every kept event falls inside the exported window.
  ChaosOutcome again = run_chaos(ChaosConfig::SpiderF1, 9);
  EXPECT_EQ(out.flight_trace, again.flight_trace);
}

// ---------------------------------------------------------------------------
// Canary: the Byzantine sweep is only meaningful if the checker would
// actually catch Byzantine damage. Beyond the threat model — fe+1
// corruptors in one execution group, enough to win the client's vote —
// the recorded history MUST be flagged; at the fe boundary it must not.
// ---------------------------------------------------------------------------

SpiderTopology canary_topo() {
  SpiderTopology topo;
  topo.exec_regions = {Region::Virginia, Region::Tokyo};
  topo.ka = 8;
  topo.ke = 8;
  topo.ag_win = 32;
  topo.commit_capacity = 16;
  topo.client_retry = kSecond;
  return topo;
}

TEST(ByzantineCanary, FePlusOneCorruptorsProduceFlaggedHistory) {
  World world(77);
  SpiderSystem sys(world, canary_topo());
  HistoryRecorder hist(world);
  auto client = sys.make_client(Site{Region::Virginia, 0});
  GroupId g = client->group().group;

  ByzantineFlags corrupt;
  corrupt.corrupt_replies = true;
  ASSERT_TRUE(sys.set_byzantine(sys.exec(g, 0).id(), corrupt));
  ASSERT_TRUE(sys.set_byzantine(sys.exec(g, 1).id(), corrupt));

  recorded_put(hist, *client, 0, "k", "honest");
  drive::run_until(world, [&] { return hist.pending_count() == 0; }, 30 * kSecond);
  recorded_strong_get(hist, *client, 0, "k");
  bool done = drive::run_until(world, [&] { return hist.pending_count() == 0; }, 30 * kSecond);
  ASSERT_TRUE(done) << hist.dump();

  // fe+1 = 2 matching corrupted replies win the vote: the client observed
  // a never-written value, and the checker flags it.
  LinResult lin = check_kv_history(hist);
  EXPECT_FALSE(lin.ok) << "checker accepted a corrupted read:\n" << hist.dump();
}

TEST(ByzantineCanary, FeCorruptorsAreOutvotedAndHistoryStaysClean) {
  World world(78);
  SpiderSystem sys(world, canary_topo());
  HistoryRecorder hist(world);
  auto client = sys.make_client(Site{Region::Virginia, 0});
  GroupId g = client->group().group;

  ByzantineFlags corrupt;
  corrupt.corrupt_replies = true;
  ASSERT_TRUE(sys.set_byzantine(sys.exec(g, 0).id(), corrupt));

  recorded_put(hist, *client, 0, "k", "honest");
  drive::run_until(world, [&] { return hist.pending_count() == 0; }, 30 * kSecond);
  recorded_strong_get(hist, *client, 0, "k");
  recorded_weak_get(hist, *client, 0, "k");
  bool done = drive::run_until(world, [&] { return hist.pending_count() == 0; }, 30 * kSecond);
  ASSERT_TRUE(done) << hist.dump();

  LinResult lin = check_kv_history(hist);
  EXPECT_TRUE(lin.ok) << lin.error << "\n" << hist.dump();
}

}  // namespace
}  // namespace spider
