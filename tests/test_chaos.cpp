// Seed-swept chaos suite: random FaultPlans (crashes + restarts,
// partitions, loss, delay spikes, slow nodes) against four deployment
// shapes — Spider f=1, Spider f=2, the geo-replicated PBFT baseline, and a
// 2-shard sharded deployment — with every client operation recorded and
// the whole history checked for per-key linearizability (weak reads
// against the committed-prefix rule). 16 seeds x 4 configs = 64 scenarios.
//
// On failure each scenario writes chaos_failure_<config>_seed<N>.txt
// (fault schedule + full history) next to the test binary; CI uploads
// these as artifacts. Reproduce locally with the seed from the test name —
// scenarios are bit-deterministic (see SeedReplayIsByteIdentical).
#include <gtest/gtest.h>

#include <fstream>

#include "baselines/bft_system.hpp"
#include "check/linearizer.hpp"
#include "shard/sharded_system.hpp"
#include "sim/fault_plan.hpp"
#include "sim/world.hpp"
#include "spider/system.hpp"
#include "tests/support/chaos.hpp"
#include "tests/support/drive.hpp"

namespace spider {
namespace {

enum class ChaosConfig : int { SpiderF1 = 0, SpiderF2 = 1, PbftBaseline = 2, Sharded2 = 3 };

const char* config_name(ChaosConfig c) {
  switch (c) {
    case ChaosConfig::SpiderF1: return "spider_f1";
    case ChaosConfig::SpiderF2: return "spider_f2";
    case ChaosConfig::PbftBaseline: return "pbft_baseline";
    case ChaosConfig::Sharded2: return "sharded_2";
  }
  return "?";
}

struct ChaosOutcome {
  bool completed = false;      // every op (incl. final reads) got a reply
  std::size_t pending = 0;
  std::size_t total_ops = 0;
  LinResult lin;
  bool no_lost_writes = true;
  std::string lost_diag;
  std::string fault_script;
  std::string history_dump;
  Bytes history;
};

/// Runs the common chaos phases once the config-specific setup produced
/// client handles, fault targets and partition groups.
struct ScenarioParts {
  std::vector<chaos::ClientHandle> handles;
  chaos::ClientHandle reader;  // used for the final per-key strong reads
  std::vector<NodeId> crash_targets;
  std::vector<std::vector<NodeId>> partition_groups;
  std::uint32_t max_concurrent_crashes = 1;
  std::size_t ops_per_client = 10;
};

ChaosOutcome drive_chaos(World& world, HistoryRecorder& hist, FaultPlan& plan,
                         ScenarioParts parts) {
  FaultPlan::ChaosProfile profile;
  profile.crash_targets = std::move(parts.crash_targets);
  profile.partition_groups = std::move(parts.partition_groups);
  profile.start = 2 * kSecond;
  profile.horizon = 18 * kSecond;
  profile.actions = 5;
  profile.max_concurrent_crashes = parts.max_concurrent_crashes;
  plan.randomize(profile);

  chaos::WorkloadOptions opt;
  opt.ops_per_client = parts.ops_per_client;
  opt.mean_gap = 900 * kMillisecond;
  std::vector<std::string> keys = chaos::key_pool(6);
  chaos::schedule_workload(world, parts.handles, keys, opt);

  ChaosOutcome out;
  out.fault_script = plan.describe();

  // Chaos phase: every fault ends by the horizon (restarts included).
  world.run_until(profile.horizon + kSecond);
  // Recovery phase: all in-flight operations must complete (clients retry
  // forever; a recovered system answers them all).
  drive::run_until(world, [&] { return hist.pending_count() == 0; }, 150 * kSecond);

  // Verification phase: a final strong read per key pins the outcome of
  // every acknowledged write into the checked history.
  for (const std::string& k : keys) parts.reader.strong_get(k);
  drive::run_until(world, [&] { return hist.pending_count() == 0; }, 60 * kSecond);

  out.pending = hist.pending_count();
  out.completed = out.pending == 0;
  out.total_ops = hist.ops().size();
  out.lin = check_kv_history(hist);

  // "No acknowledged write is lost", checked directly: the workload never
  // deletes, so a key with at least one acked Put must be found by its
  // final strong read, and any value read must have been written.
  const auto& ops = hist.ops();
  for (const std::string& k : keys) {
    bool acked_put = false;
    for (const RecordedOp& op : ops) {
      if (op.kind == HistOp::Put && op.key == k && op.responded) acked_put = true;
    }
    const RecordedOp* final_read = nullptr;
    for (const RecordedOp& op : ops) {
      if (op.client == 99 && op.key == k) final_read = &op;
    }
    if (final_read == nullptr || !final_read->responded) continue;  // caught by `completed`
    if (acked_put && !final_read->ok) {
      out.no_lost_writes = false;
      out.lost_diag += "key " + k + ": acked put but final read missed; ";
    }
    if (final_read->ok) {
      bool written = false;
      for (const RecordedOp& op : ops) {
        if (op.kind == HistOp::Put && op.key == k && op.arg == final_read->result) {
          written = true;
        }
      }
      if (!written) {
        out.no_lost_writes = false;
        out.lost_diag += "key " + k + ": final read returned a never-written value; ";
      }
    }
  }

  out.history_dump = hist.dump();
  out.history = hist.serialize();
  return out;
}

ChaosOutcome run_chaos(ChaosConfig config, std::uint64_t seed) {
  World world(seed);
  HistoryRecorder hist(world);

  switch (config) {
    case ChaosConfig::SpiderF1:
    case ChaosConfig::SpiderF2: {
      SpiderTopology topo;
      topo.ka = 8;
      topo.ke = 8;
      topo.ag_win = 32;
      topo.commit_capacity = 16;
      topo.client_retry = kSecond;
      topo.request_timeout = kSecond;
      topo.view_change_timeout = 2 * kSecond;
      if (config == ChaosConfig::SpiderF2) {
        topo.fa = 2;
        topo.fe = 2;
        topo.exec_regions = {Region::Virginia, Region::Oregon};
      } else {
        topo.exec_regions = {Region::Virginia, Region::Tokyo};
      }
      SpiderSystem sys(world, topo);
      FaultPlan plan(world);
      plan.on_crash = [&sys](NodeId n) { sys.crash_node(n); };
      plan.on_restart = [&sys](NodeId n) { sys.restart_node(n); };

      std::vector<std::unique_ptr<SpiderClient>> clients;
      clients.push_back(sys.make_client(Site{Region::Virginia, 0}));
      clients.push_back(sys.make_client(Site{topo.exec_regions.back(), 0}));
      clients.push_back(sys.make_client(Site{Region::Oregon, 1}));

      ScenarioParts parts;
      for (std::size_t i = 0; i < clients.size(); ++i) {
        parts.handles.push_back(chaos::ClientHandle::wrap(hist, *clients[i], i));
      }
      parts.reader = chaos::ClientHandle::wrap(hist, *clients[0], 99);
      parts.crash_targets = sys.replica_ids();
      parts.partition_groups.push_back(sys.agreement_ids());
      for (GroupId g : sys.group_ids()) {
        std::vector<NodeId> members;
        for (std::size_t i = 0; i < sys.group_size(g); ++i) members.push_back(sys.exec(g, i).id());
        parts.partition_groups.push_back(std::move(members));
      }
      parts.max_concurrent_crashes = config == ChaosConfig::SpiderF2 ? 2 : 1;
      return drive_chaos(world, hist, plan, std::move(parts));
    }

    case ChaosConfig::PbftBaseline: {
      BftConfig cfg;
      cfg.sites = {Site{Region::Virginia, 0}, Site{Region::Oregon, 0}, Site{Region::Ireland, 0},
                   Site{Region::Tokyo, 0}};
      cfg.checkpoint_interval = 8;
      cfg.request_timeout = 2 * kSecond;
      cfg.view_change_timeout = 3 * kSecond;
      BftSystem sys(world, cfg);
      FaultPlan plan(world);
      plan.on_crash = [&sys](NodeId n) { sys.crash_node(n); };
      plan.on_restart = [&sys](NodeId n) { sys.restart_node(n); };

      std::vector<std::unique_ptr<SpiderClient>> clients;
      clients.push_back(sys.make_client(Site{Region::Virginia, 1}));
      clients.push_back(sys.make_client(Site{Region::Tokyo, 1}));

      ScenarioParts parts;
      for (std::size_t i = 0; i < clients.size(); ++i) {
        parts.handles.push_back(chaos::ClientHandle::wrap(hist, *clients[i], i));
      }
      parts.reader = chaos::ClientHandle::wrap(hist, *clients[0], 99);
      parts.crash_targets = sys.replica_ids();
      for (NodeId n : sys.replica_ids()) parts.partition_groups.push_back({n});
      parts.ops_per_client = 8;  // WAN consensus: each op takes ~2 RTTs
      return drive_chaos(world, hist, plan, std::move(parts));
    }

    case ChaosConfig::Sharded2: {
      ShardedTopology topo;
      topo.shards = 2;
      topo.base.exec_regions = {Region::Virginia};
      topo.base.ka = 8;
      topo.base.ke = 8;
      topo.base.ag_win = 32;
      topo.base.commit_capacity = 16;
      topo.base.client_retry = kSecond;
      topo.base.request_timeout = kSecond;
      topo.base.view_change_timeout = 2 * kSecond;
      ShardedSpiderSystem sys(world, topo);
      FaultPlan plan(world);
      plan.on_crash = [&sys](NodeId n) { sys.crash_node(n); };
      plan.on_restart = [&sys](NodeId n) { sys.restart_node(n); };

      std::vector<std::unique_ptr<ShardedClient>> clients;
      clients.push_back(sys.make_client(Site{Region::Virginia, 0}));
      clients.push_back(sys.make_client(Site{Region::Virginia, 1}));

      ScenarioParts parts;
      for (std::size_t i = 0; i < clients.size(); ++i) {
        parts.handles.push_back(chaos::ClientHandle::wrap(hist, *clients[i], i));
      }
      parts.reader = chaos::ClientHandle::wrap(hist, *clients[0], 99);
      parts.crash_targets = sys.replica_ids();
      for (std::uint32_t s = 0; s < sys.shard_count(); ++s) {
        parts.partition_groups.push_back(sys.core(s).agreement_ids());
        for (GroupId g : sys.core(s).group_ids()) {
          std::vector<NodeId> members;
          for (std::size_t i = 0; i < sys.core(s).group_size(g); ++i) {
            members.push_back(sys.core(s).exec(g, i).id());
          }
          parts.partition_groups.push_back(std::move(members));
        }
      }
      return drive_chaos(world, hist, plan, std::move(parts));
    }
  }
  return {};
}

void write_failure_artifact(ChaosConfig config, std::uint64_t seed, const ChaosOutcome& out) {
  std::string path = std::string("chaos_failure_") + config_name(config) + "_seed" +
                     std::to_string(seed) + ".txt";
  std::ofstream f(path);
  f << "config: " << config_name(config) << "\nseed: " << seed
    << "\ncompleted: " << out.completed << " (pending " << out.pending << "/" << out.total_ops
    << ")\nlinearizable: " << out.lin.ok << " " << out.lin.error
    << "\nlost-writes: " << out.lost_diag << "\n\n== fault schedule ==\n"
    << out.fault_script << "\n== recorded history ==\n"
    << out.history_dump;
  ADD_FAILURE() << "chaos scenario failed; artifact written to " << path
                << " — reproduce with config=" << config_name(config) << " seed=" << seed;
}

class ChaosSweep : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(ChaosSweep, LinearizableAndNoAckedWriteLost) {
  ChaosConfig config = static_cast<ChaosConfig>(std::get<0>(GetParam()));
  std::uint64_t seed = std::get<1>(GetParam());
  ChaosOutcome out = run_chaos(config, seed);
  if (!out.completed || !out.lin.ok || !out.no_lost_writes) {
    write_failure_artifact(config, seed, out);
  }
  EXPECT_TRUE(out.completed) << out.pending << " of " << out.total_ops << " ops never completed";
  EXPECT_TRUE(out.lin.ok) << out.lin.error;
  EXPECT_TRUE(out.no_lost_writes) << out.lost_diag;
}

std::string chaos_param_name(const ::testing::TestParamInfo<std::tuple<int, std::uint64_t>>& i) {
  return std::string(config_name(static_cast<ChaosConfig>(std::get<0>(i.param)))) + "_seed" +
         std::to_string(std::get<1>(i.param));
}

INSTANTIATE_TEST_SUITE_P(Chaos, ChaosSweep,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Range<std::uint64_t>(1, 17)),
                         chaos_param_name);

TEST(ChaosDeterminism, SeedReplayIsByteIdentical) {
  ChaosOutcome a = run_chaos(ChaosConfig::SpiderF1, 7);
  ChaosOutcome b = run_chaos(ChaosConfig::SpiderF1, 7);
  EXPECT_EQ(a.fault_script, b.fault_script);
  EXPECT_EQ(a.history, b.history);
  EXPECT_FALSE(a.history.empty());

  ChaosOutcome c = run_chaos(ChaosConfig::SpiderF1, 8);
  EXPECT_NE(c.history, a.history);
}

}  // namespace
}  // namespace spider
