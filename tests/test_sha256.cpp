#include <gtest/gtest.h>

#include "common/hex.hpp"
#include "crypto/sha256.hpp"

namespace spider {
namespace {

std::string hash_hex(const std::string& input) {
  Bytes in = to_bytes(input);
  return to_hex(sha256(in));
}

// NIST / well-known test vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(hash_hex(""), "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hash_hex("abc"), "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hash_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, LongMillionA) {
  Bytes in(1'000'000, 'a');
  EXPECT_EQ(to_hex(sha256(in)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, QuickBrownFox) {
  EXPECT_EQ(hash_hex("The quick brown fox jumps over the lazy dog"),
            "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  std::string msg = "hello world, this is an incremental hashing test spanning blocks";
  Bytes in = to_bytes(msg);

  Sha256 ctx;
  // Feed in awkward chunk sizes.
  std::size_t pos = 0;
  std::size_t chunk = 1;
  while (pos < in.size()) {
    std::size_t take = std::min(chunk, in.size() - pos);
    ctx.update(BytesView(in.data() + pos, take));
    pos += take;
    chunk = chunk * 2 + 1;
  }
  Sha256Digest inc = ctx.finish();
  Sha256Digest one = Sha256::hash(in);
  EXPECT_EQ(inc, one);
}

TEST(Sha256, ResetReuse) {
  Sha256 ctx;
  ctx.update(to_bytes(std::string("garbage to be discarded")));
  (void)ctx.finish();
  ctx.reset();
  ctx.update(to_bytes(std::string("abc")));
  Sha256Digest d = ctx.finish();
  EXPECT_EQ(to_hex(BytesView(d.data(), d.size())),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, DigestPrefixStable) {
  Sha256Digest d = Sha256::hash(to_bytes(std::string("abc")));
  EXPECT_EQ(digest_prefix(d), digest_prefix(d));
  Sha256Digest d2 = Sha256::hash(to_bytes(std::string("abd")));
  EXPECT_NE(digest_prefix(d), digest_prefix(d2));
}

class Sha256BoundarySweep : public ::testing::TestWithParam<std::size_t> {};

// Hash inputs around the 64-byte block boundary; verify incremental ==
// one-shot for each size (padding edge cases).
TEST_P(Sha256BoundarySweep, BlockBoundaries) {
  std::size_t n = GetParam();
  Bytes in(n);
  for (std::size_t i = 0; i < n; ++i) in[i] = static_cast<std::uint8_t>(i);

  Sha256 ctx;
  std::size_t half = n / 2;
  ctx.update(BytesView(in.data(), half));
  ctx.update(BytesView(in.data() + half, n - half));
  EXPECT_EQ(ctx.finish(), Sha256::hash(in));
}

INSTANTIATE_TEST_SUITE_P(Boundaries, Sha256BoundarySweep,
                         ::testing::Values(0, 1, 54, 55, 56, 57, 63, 64, 65, 119, 120, 127, 128,
                                           129, 1000));

}  // namespace
}  // namespace spider
