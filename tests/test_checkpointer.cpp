#include <gtest/gtest.h>

#include <set>

#include "sim/world.hpp"
#include "spider/checkpointer.hpp"

namespace spider {
namespace {

/// Group of 3 hosts (f=1) each with a checkpoint component. The trusted
/// set is shared and extensible, mirroring how the real replicas register
/// members of newly added groups (add_checkpoint_peers).
struct CkptFixture {
  World world{1};
  std::vector<std::unique_ptr<ComponentHost>> hosts;
  std::vector<std::unique_ptr<Checkpointer>> cps;
  std::vector<std::vector<std::pair<SeqNr, Bytes>>> stable;
  std::shared_ptr<std::set<NodeId>> trusted = std::make_shared<std::set<NodeId>>();

  explicit CkptFixture(std::uint32_t n = 3, std::uint32_t f = 1) {
    std::vector<NodeId> ids;
    for (std::uint32_t i = 0; i < n; ++i) {
      hosts.push_back(std::make_unique<ComponentHost>(
          world, world.allocate_id(), Site{Region::Virginia, static_cast<std::uint8_t>(i % 3)}));
      ids.push_back(hosts.back()->id());
      trusted->insert(hosts.back()->id());
    }
    stable.resize(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      std::size_t idx = i;
      cps.push_back(std::make_unique<Checkpointer>(
          *hosts[i], tags::kCheckpoint, ids, f,
          [this, idx](SeqNr s, BytesView state) {
            stable[idx].emplace_back(s, to_bytes(state));
          },
          [t = trusted](NodeId id) { return t->count(id) > 0; }));
    }
  }

  static Bytes state(int v) {
    Writer w;
    w.u32(static_cast<std::uint32_t>(v));
    w.str("checkpoint-state");
    return std::move(w).take();
  }
};

TEST(Checkpointer, StableAfterFPlusOneMatching) {
  CkptFixture f;
  Bytes st = CkptFixture::state(1);
  f.cps[0]->gen_cp(10, st);
  f.cps[1]->gen_cp(10, st);  // f+1 = 2 matching
  f.world.run_for(kSecond);
  ASSERT_EQ(f.stable[0].size(), 1u);
  EXPECT_EQ(f.stable[0][0].first, 10u);
  EXPECT_EQ(f.stable[0][0].second, st);
  // The third replica also created nothing itself but observes 2 matching
  // checkpoint messages and pulls the state (CP-Liveness).
  ASSERT_EQ(f.stable[2].size(), 1u);
  EXPECT_EQ(f.stable[2][0].second, st);
}

TEST(Checkpointer, SingleReplicaCheckpointNotStable) {
  CkptFixture f;
  f.cps[0]->gen_cp(10, CkptFixture::state(1));
  f.world.run_for(kSecond);
  for (auto& s : f.stable) EXPECT_TRUE(s.empty());  // CP-Safety: need f+1
}

TEST(Checkpointer, MismatchedStatesDoNotCombine) {
  CkptFixture f;
  f.cps[0]->gen_cp(10, CkptFixture::state(1));
  f.cps[1]->gen_cp(10, CkptFixture::state(2));  // diverging snapshot
  f.world.run_for(kSecond);
  for (auto& s : f.stable) EXPECT_TRUE(s.empty());
  // A third matching vote resolves it.
  f.cps[2]->gen_cp(10, CkptFixture::state(1));
  f.world.run_for(kSecond);
  EXPECT_EQ(f.stable[0].size(), 1u);
  EXPECT_EQ(f.stable[0][0].second, CkptFixture::state(1));
}

TEST(Checkpointer, NewerCheckpointSupersedesOlder) {
  CkptFixture f;
  Bytes st10 = CkptFixture::state(10);
  Bytes st20 = CkptFixture::state(20);
  f.cps[0]->gen_cp(10, st10);
  f.cps[1]->gen_cp(10, st10);
  f.world.run_for(kSecond);
  f.cps[0]->gen_cp(20, st20);
  f.cps[1]->gen_cp(20, st20);
  f.world.run_for(kSecond);
  ASSERT_EQ(f.stable[0].size(), 2u);
  EXPECT_EQ(f.stable[0][1].first, 20u);
  // Old checkpoints arriving late are ignored (monotonically increasing).
  f.cps[2]->gen_cp(10, st10);
  f.world.run_for(kSecond);
  EXPECT_EQ(f.stable[2].back().first, 20u);
}

TEST(Checkpointer, FetchFromGroupPeer) {
  CkptFixture f;
  Bytes st = CkptFixture::state(7);
  f.cps[0]->gen_cp(30, st);
  f.cps[1]->gen_cp(30, st);
  f.world.run_for(kSecond);
  ASSERT_EQ(f.stable[2].size(), 1u);  // replica 2 already pulled it

  // A fourth, freshly joining host can fetch it too — once the existing
  // replicas trust it (in the real system: registered via the registry /
  // add_checkpoint_peers).
  auto host = std::make_unique<ComponentHost>(f.world, f.world.allocate_id(),
                                              Site{Region::Virginia, 0});
  f.trusted->insert(host->id());
  std::vector<NodeId> group;
  for (auto& h : f.hosts) group.push_back(h->id());
  group.push_back(host->id());
  std::vector<std::pair<SeqNr, Bytes>> got;
  std::vector<NodeId> trusted_group = group;
  Checkpointer joiner(
      *host, tags::kCheckpoint, group, 1,
      [&](SeqNr s, BytesView state) { got.emplace_back(s, to_bytes(state)); },
      [trusted_group](NodeId n) {
        return std::find(trusted_group.begin(), trusted_group.end(), n) != trusted_group.end();
      });
  joiner.fetch_cp(30);
  f.world.run_for(2 * kSecond);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].first, 30u);
  EXPECT_EQ(got[0].second, st);
}

TEST(Checkpointer, UntrustedFetcherIsIgnored) {
  // A node outside the trusted set can neither pull state nor force the
  // group into on-demand snapshots (Fetch is dropped up front).
  CkptFixture f;
  Bytes st = CkptFixture::state(7);
  f.cps[0]->gen_cp(30, st);
  f.cps[1]->gen_cp(30, st);
  f.world.run_for(kSecond);

  auto outsider = std::make_unique<ComponentHost>(f.world, f.world.allocate_id(),
                                                  Site{Region::Virginia, 0});
  std::vector<NodeId> group;
  for (auto& h : f.hosts) group.push_back(h->id());
  group.push_back(outsider->id());
  std::vector<std::pair<SeqNr, Bytes>> got;
  Checkpointer thief(
      *outsider, tags::kCheckpoint, group, 1,
      [&](SeqNr s, BytesView state) { got.emplace_back(s, to_bytes(state)); });
  thief.fetch_cp(30);
  f.world.run_for(2 * kSecond);
  EXPECT_TRUE(got.empty());
}

TEST(Checkpointer, FetchRetriesUntilAvailable) {
  CkptFixture f;
  f.cps[2]->fetch_cp(10);  // nothing exists yet
  f.world.run_for(kSecond);
  EXPECT_TRUE(f.stable[2].empty());
  // Checkpoint appears later; the retry timer picks it up.
  Bytes st = CkptFixture::state(3);
  f.cps[0]->gen_cp(10, st);
  f.cps[1]->gen_cp(10, st);
  f.world.run_for(3 * kSecond);
  ASSERT_FALSE(f.stable[2].empty());
}

TEST(Checkpointer, ForgedStateRejected) {
  // An attacker replays a State message with a proof that does not verify
  // (signatures from untrusted nodes).
  CkptFixture f;
  ComponentHost evil(f.world, f.world.allocate_id(), Site{Region::Virginia, 0});

  Bytes fake_state = CkptFixture::state(666);
  Sha256Digest h = Sha256::hash(fake_state);
  Writer body;
  body.u8(1);  // Checkpoint type
  body.u64(50);
  body.raw(BytesView(h.data(), h.size()));
  Writer dom;
  dom.u32(tags::kCheckpoint);
  dom.raw(body.data());
  // Signed by the attacker (twice) — not by group members.
  Bytes sig = f.world.crypto().sign(evil.id(), dom.data());

  Writer proof;
  proof.u32(2);
  proof.u32(evil.id());
  proof.bytes(sig);
  proof.u32(evil.id() + 1000);
  proof.bytes(sig);

  Writer msg;
  msg.u8(3);  // State type
  msg.u64(50);
  msg.bytes(fake_state);
  msg.bytes(proof.data());
  Writer wire;
  wire.u32(tags::kCheckpoint);
  wire.raw(msg.data());
  for (auto& hpt : f.hosts) evil.send_to(hpt->id(), wire.data());

  f.world.run_for(kSecond);
  for (auto& s : f.stable) EXPECT_TRUE(s.empty());
}

TEST(Checkpointer, ForgedCheckpointMessageRejected) {
  CkptFixture f;
  ComponentHost evil(f.world, f.world.allocate_id(), Site{Region::Virginia, 0});
  // Not a group member: its Checkpoint messages must be ignored entirely,
  // even with a valid signature of its own key.
  Bytes st = CkptFixture::state(9);
  Sha256Digest h = Sha256::hash(st);
  Writer body;
  body.u8(1);
  body.u64(10);
  body.raw(BytesView(h.data(), h.size()));
  Writer dom;
  dom.u32(tags::kCheckpoint);
  dom.raw(body.data());
  Bytes sig = f.world.crypto().sign(evil.id(), dom.data());
  Bytes wire_body = body.data();
  wire_body.insert(wire_body.end(), sig.begin(), sig.end());
  Writer wire;
  wire.u32(tags::kCheckpoint);
  wire.raw(wire_body);
  for (auto& hpt : f.hosts) evil.send_to(hpt->id(), wire.data());

  // One honest vote + the forged one must NOT stabilize.
  f.cps[0]->gen_cp(10, st);
  f.world.run_for(kSecond);
  for (auto& s : f.stable) EXPECT_TRUE(s.empty());
}

TEST(Checkpointer, LastStableTracksDeliveries) {
  CkptFixture f;
  EXPECT_EQ(f.cps[0]->last_stable(), 0u);
  Bytes st = CkptFixture::state(1);
  f.cps[0]->gen_cp(8, st);
  f.cps[1]->gen_cp(8, st);
  f.world.run_for(kSecond);
  EXPECT_EQ(f.cps[0]->last_stable(), 8u);
  EXPECT_EQ(f.cps[2]->last_stable(), 8u);
}

}  // namespace
}  // namespace spider
