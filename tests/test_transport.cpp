// Transport conformance battery: the delivery contract documented in
// net/transport.hpp, run against BOTH backends — the deterministic sim
// (SimNetwork) and the real-socket epoll backend (LoopbackTransport).
// Whatever protocol code may assume about message delivery is pinned here;
// a backend that cannot pass this battery cannot host the protocol stack.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/loopback_transport.hpp"
#include "net/transport.hpp"
#include "sim/world.hpp"

namespace spider {
namespace {

constexpr Site kVirginiaA{Region::Virginia, 0};
constexpr Site kVirginiaB{Region::Virginia, 1};
constexpr Site kIreland{Region::Ireland, 0};

Payload make_payload(std::string s) { return Payload(to_bytes(s)); }

std::string as_string(const Payload& p) { return to_string(p.view()); }

/// Bare endpoint that records everything delivered to it.
class RecordingEndpoint final : public TransportEndpoint {
 public:
  RecordingEndpoint(NodeId id, Site site) : id_(id), site_(site) {}

  [[nodiscard]] NodeId id() const override { return id_; }
  [[nodiscard]] Site site() const override { return site_; }
  void deliver(NodeId from, Payload data) override {
    received.emplace_back(from, std::move(data));
  }

  [[nodiscard]] std::vector<std::string> messages_from(NodeId from) const {
    std::vector<std::string> out;
    for (const auto& [f, p] : received) {
      if (f == from) out.push_back(as_string(p));
    }
    return out;
  }

  std::vector<std::pair<NodeId, Payload>> received;

 private:
  NodeId id_;
  Site site_;
};

/// One backend under test: exposes the Transport and a way to let traffic
/// settle. The sim settles by running virtual time; the socket backend by
/// pumping the reactor against the wall clock.
class Backend {
 public:
  virtual ~Backend() = default;
  virtual Transport& transport() = 0;
  /// Pumps the backend until `pred()` holds or the budget is exhausted.
  virtual bool settle(const std::function<bool()>& pred) = 0;
  /// Convenience: pump for a while with no particular goal (used to show
  /// that something does NOT arrive).
  virtual void settle_quiet() = 0;
  /// The sim delivers the same refcounted buffer it was handed; the socket
  /// backend necessarily reconstructs payloads from stream bytes.
  [[nodiscard]] virtual bool delivers_shared_buffers() const = 0;
};

class SimBackend final : public Backend {
 public:
  SimBackend() : world_(12345) {}

  Transport& transport() override { return world_.net(); }

  bool settle(const std::function<bool()>& pred) override {
    for (int i = 0; i < 2000 && !pred(); ++i) world_.run_for(10 * kMillisecond);
    return pred();
  }

  void settle_quiet() override { world_.run_for(5 * kSecond); }

  [[nodiscard]] bool delivers_shared_buffers() const override { return true; }

 private:
  World world_;
};

class LoopbackBackend final : public Backend {
 public:
  Transport& transport() override { return net_; }

  bool settle(const std::function<bool()>& pred) override {
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (!pred() && std::chrono::steady_clock::now() < deadline) net_.poll(1);
    return pred();
  }

  void settle_quiet() override {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(200);
    while (std::chrono::steady_clock::now() < deadline) net_.poll(1);
  }

  [[nodiscard]] bool delivers_shared_buffers() const override { return false; }

  net::LoopbackTransport& loopback() { return net_; }

 private:
  net::LoopbackTransport net_;
};

enum class BackendKind { kSim, kLoopback };

std::unique_ptr<Backend> make_backend(BackendKind kind) {
  if (kind == BackendKind::kSim) return std::make_unique<SimBackend>();
  return std::make_unique<LoopbackBackend>();
}

class TransportConformance : public ::testing::TestWithParam<BackendKind> {
 protected:
  void SetUp() override { backend_ = make_backend(GetParam()); }

  Transport& net() { return backend_->transport(); }
  Backend& backend() { return *backend_; }

 private:
  std::unique_ptr<Backend> backend_;
};

// ---- basic delivery ------------------------------------------------------

TEST_P(TransportConformance, DeliversBothTrafficClasses) {
  RecordingEndpoint a(1, kVirginiaA), b(2, kVirginiaB);
  net().attach(&a);
  net().attach(&b);

  net().send(1, 2, make_payload("ordered"), TrafficClass::kOrdered);
  net().send(1, 2, make_payload("unordered"), TrafficClass::kUnordered);

  ASSERT_TRUE(backend().settle([&] { return b.received.size() == 2; }))
      << "both classes must reach an attached endpoint";
  std::vector<std::string> got;
  for (auto& [from, p] : b.received) {
    EXPECT_EQ(from, 1u);
    got.push_back(as_string(p));
  }
  EXPECT_TRUE((got == std::vector<std::string>{"ordered", "unordered"}) ||
              (got == std::vector<std::string>{"unordered", "ordered"}))
      << "cross-class order is unspecified, content must survive intact";

  net().detach(1);
  net().detach(2);
}

TEST_P(TransportConformance, OrderedTrafficIsFifoPerSenderPair) {
  RecordingEndpoint a(1, kVirginiaA), b(2, kVirginiaB), c(3, kVirginiaA);
  net().attach(&a);
  net().attach(&b);
  net().attach(&c);

  constexpr int kN = 200;
  for (int i = 0; i < kN; ++i) {
    net().send(1, 3, make_payload("a" + std::to_string(i)), TrafficClass::kOrdered);
    net().send(2, 3, make_payload("b" + std::to_string(i)), TrafficClass::kOrdered);
  }

  ASSERT_TRUE(backend().settle([&] { return c.received.size() == 2 * kN; }));
  std::vector<std::string> from_a = c.messages_from(1);
  std::vector<std::string> from_b = c.messages_from(2);
  ASSERT_EQ(from_a.size(), static_cast<std::size_t>(kN));
  ASSERT_EQ(from_b.size(), static_cast<std::size_t>(kN));
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(from_a[static_cast<std::size_t>(i)], "a" + std::to_string(i))
        << "FIFO violated on (1 -> 3) at index " << i;
    EXPECT_EQ(from_b[static_cast<std::size_t>(i)], "b" + std::to_string(i))
        << "FIFO violated on (2 -> 3) at index " << i;
  }

  net().detach(1);
  net().detach(2);
  net().detach(3);
}

TEST_P(TransportConformance, MulticastSharesOnePayloadAcrossDestinations) {
  RecordingEndpoint src(1, kVirginiaA);
  std::vector<std::unique_ptr<RecordingEndpoint>> dests;
  net().attach(&src);
  constexpr int kFanout = 8;
  for (int i = 0; i < kFanout; ++i) {
    dests.push_back(std::make_unique<RecordingEndpoint>(
        static_cast<NodeId>(10 + i), i % 2 == 0 ? kVirginiaB : kIreland));
    net().attach(dests.back().get());
  }

  // One refcounted buffer, sent to every destination — the transport must
  // neither copy it on send nor mutate it.
  Payload shared = make_payload("multicast-body");
  for (auto& d : dests) net().send(1, d->id(), shared, TrafficClass::kOrdered);

  ASSERT_TRUE(backend().settle([&] {
    for (auto& d : dests) {
      if (d->received.size() != 1) return false;
    }
    return true;
  }));
  for (auto& d : dests) {
    EXPECT_EQ(as_string(d->received[0].second), "multicast-body");
    if (backend().delivers_shared_buffers()) {
      EXPECT_TRUE(d->received[0].second.shares_buffer_with(shared))
          << "sim multicast must deliver the same refcounted buffer";
    }
  }
  EXPECT_EQ(as_string(shared), "multicast-body") << "payload was mutated in transit";

  net().detach(1);
  for (auto& d : dests) net().detach(d->id());
}

// ---- attachment lifecycle ------------------------------------------------

TEST_P(TransportConformance, SendToUnknownIdIsDroppedSilently) {
  RecordingEndpoint a(1, kVirginiaA);
  net().attach(&a);
  net().send(1, 99, make_payload("void"), TrafficClass::kOrdered);
  net().send(1, 99, make_payload("void"), TrafficClass::kUnordered);
  backend().settle_quiet();  // must not crash, nothing to observe
  net().detach(1);
}

TEST_P(TransportConformance, DetachDropsInflightAndReattachIsNewIncarnation) {
  RecordingEndpoint a(1, kVirginiaA);
  auto b = std::make_unique<RecordingEndpoint>(2, kVirginiaB);
  net().attach(&a);
  net().attach(b.get());

  // Establish the channel, then race a burst against a detach.
  net().send(1, 2, make_payload("warmup"), TrafficClass::kOrdered);
  ASSERT_TRUE(backend().settle([&] { return b->received.size() == 1; }));

  for (int i = 0; i < 50; ++i) {
    net().send(1, 2, make_payload("inflight" + std::to_string(i)), TrafficClass::kOrdered);
  }
  net().detach(2);  // drops everything still traveling
  const std::size_t got_before = b->received.size();

  // New incarnation under the same id: old in-flight traffic must not
  // resurface in it.
  auto b2 = std::make_unique<RecordingEndpoint>(2, kVirginiaB);
  net().attach(b2.get());
  backend().settle_quiet();
  EXPECT_TRUE(b2->received.empty())
      << "messages sent to the old incarnation leaked into the new one";

  // The new incarnation is reachable.
  net().send(1, 2, make_payload("fresh"), TrafficClass::kOrdered);
  ASSERT_TRUE(backend().settle([&] { return !b2->received.empty(); }));
  EXPECT_EQ(as_string(b2->received[0].second), "fresh");
  EXPECT_EQ(b->received.size(), got_before) << "old incarnation kept receiving";

  net().detach(1);
  net().detach(2);
}

// ---- crash faults --------------------------------------------------------

TEST_P(TransportConformance, DownNodeNeitherSendsNorReceives) {
  RecordingEndpoint a(1, kVirginiaA), b(2, kVirginiaB);
  net().attach(&a);
  net().attach(&b);

  net().set_node_down(2, true);
  EXPECT_TRUE(net().is_down(2));
  net().send(1, 2, make_payload("to-down"), TrafficClass::kOrdered);
  net().send(1, 2, make_payload("to-down-udp"), TrafficClass::kUnordered);
  net().set_node_down(1, true);
  net().send(1, 2, make_payload("from-down"), TrafficClass::kOrdered);
  backend().settle_quiet();
  EXPECT_TRUE(b.received.empty()) << "a down node must not receive";

  // Back up: traffic flows again.
  net().set_node_down(1, false);
  net().set_node_down(2, false);
  net().send(1, 2, make_payload("recovered"), TrafficClass::kOrdered);
  ASSERT_TRUE(backend().settle([&] { return !b.received.empty(); }));
  EXPECT_EQ(as_string(b.received[0].second), "recovered");

  net().detach(1);
  net().detach(2);
}

// ---- accounting ----------------------------------------------------------

TEST_P(TransportConformance, WanLanAccountingFollowsRegions) {
  RecordingEndpoint a(1, kVirginiaA), b(2, kVirginiaB), c(3, kIreland);
  net().attach(&a);
  net().attach(&b);
  net().attach(&c);
  net().reset_stats();

  const Payload lan_msg = make_payload("xx");          // Virginia -> Virginia
  const Payload wan_msg = make_payload("yyyy");        // Virginia -> Ireland
  net().send(1, 2, lan_msg, TrafficClass::kOrdered);
  net().send(1, 3, wan_msg, TrafficClass::kOrdered);

  ASSERT_TRUE(backend().settle(
      [&] { return b.received.size() == 1 && c.received.size() == 1; }));

  EXPECT_EQ(net().stats().lan_msgs, 1u);
  EXPECT_EQ(net().stats().wan_msgs, 1u);
  EXPECT_EQ(net().stats().lan_bytes, lan_msg.size());
  EXPECT_EQ(net().stats().wan_bytes, wan_msg.size());
  EXPECT_EQ(net().node_stats(1).sent_lan_bytes, lan_msg.size());
  EXPECT_EQ(net().node_stats(1).sent_wan_bytes, wan_msg.size());

  net().detach(1);
  net().detach(2);
  net().detach(3);
}

INSTANTIATE_TEST_SUITE_P(Backends, TransportConformance,
                         ::testing::Values(BackendKind::kSim, BackendKind::kLoopback),
                         [](const ::testing::TestParamInfo<BackendKind>& info) {
                           return info.param == BackendKind::kSim ? "Sim" : "Loopback";
                         });

// ---- loopback-only behaviours -------------------------------------------
// Socket mechanics the sim has no analogue for: reconnect after the
// listener vanishes mid-stream, and bounded buffering under backpressure.

TEST(LoopbackTransport, ReconnectsAfterPeerRestartWithBackoff) {
  LoopbackBackend backend;
  net::LoopbackTransport& net = backend.loopback();

  RecordingEndpoint a(1, kVirginiaA);
  auto b = std::make_unique<RecordingEndpoint>(2, kVirginiaB);
  net.attach(&a);
  net.attach(b.get());

  net.send(1, 2, make_payload("first"), TrafficClass::kOrdered);
  ASSERT_TRUE(backend.settle([&] { return b->received.size() == 1; }));

  // Restart the destination: detach closes its listener and the
  // established connection; the next send must transparently build a fresh
  // connection to the new incarnation's port.
  net.detach(2);
  auto b2 = std::make_unique<RecordingEndpoint>(2, kVirginiaB);
  net.attach(b2.get());

  net.send(1, 2, make_payload("second"), TrafficClass::kOrdered);
  ASSERT_TRUE(backend.settle([&] { return !b2->received.empty(); }))
      << "sender never re-established the connection";
  EXPECT_EQ(as_string(b2->received[0].second), "second");
  EXPECT_GE(net.counters().tcp_connects, 2u);

  net.detach(1);
  net.detach(2);
}

TEST(LoopbackTransport, BackpressureDropsInsteadOfBufferingUnbounded) {
  net::LoopbackTransport::Config cfg;
  cfg.max_queue_bytes = 64 * 1024;  // tiny cap so the test fills it instantly
  net::LoopbackTransport net(cfg);

  RecordingEndpoint a(1, kVirginiaA), b(2, kVirginiaB);
  net.attach(&a);
  net.attach(&b);

  // Never poll, so nothing drains: the user-space queue must cap out and
  // start dropping rather than grow.
  const Payload big(Bytes(16 * 1024, 0xab));
  for (int i = 0; i < 64; ++i) net.send(1, 2, big, TrafficClass::kOrdered);
  EXPECT_GT(net.counters().dropped_backpressure, 0u);

  net.detach(1);
  net.detach(2);
}

TEST(LoopbackTransport, ShutdownWithLiveConnectionsLeaksNothing) {
  // Exercised under ASan/LSan in CI: construct, create traffic on both
  // channels, destroy while connections are established and queues busy.
  auto net = std::make_unique<net::LoopbackTransport>();
  RecordingEndpoint a(1, kVirginiaA), b(2, kVirginiaB);
  net->attach(&a);
  net->attach(&b);
  net->send(1, 2, make_payload("tcp"), TrafficClass::kOrdered);
  net->send(1, 2, make_payload("udp"), TrafficClass::kUnordered);
  net->poll(1);
  net.reset();  // destructor must close every fd and free every queue
}

}  // namespace
}  // namespace spider
