// Consistency-semantics tests matching the paper's Appendix A.7.9:
// weak-read staleness windows, strong-read placeholders (Lemma A.35),
// client failover between execution groups, and linearizability of
// interleaved multi-client histories (E-Safety II).
#include <gtest/gtest.h>

#include "sim/world.hpp"
#include "spider/system.hpp"
#include "tests/support/drive.hpp"

namespace spider {
namespace {

SpiderTopology topo_small() {
  SpiderTopology t;
  t.exec_regions = {Region::Virginia, Region::Tokyo};
  t.ka = 4;
  t.ke = 4;
  t.ag_win = 16;
  t.commit_capacity = 8;
  t.client_retry = kSecond;
  return t;
}

struct Fx {
  World world;
  SpiderSystem sys;
  explicit Fx(SpiderTopology t = topo_small(), std::uint64_t seed = 3) : world(seed), sys(world, std::move(t)) {}

  // Thin wrappers over the shared deadline-bounded drive helpers.
  KvReply write(SpiderClient& c, const std::string& k, const std::string& v) {
    drive::KvOutcome out = drive::blocking_write(world, c, k, v, 30 * kSecond);
    return KvReply{out.ok, std::move(out.value)};
  }
  KvReply weak(SpiderClient& c, const std::string& k) {
    drive::KvOutcome out = drive::blocking_weak_read(world, c, k, 30 * kSecond);
    return KvReply{out.ok, std::move(out.value)};
  }
  KvReply strong(SpiderClient& c, const std::string& k) {
    drive::KvOutcome out = drive::blocking_strong_read(world, c, k, 30 * kSecond);
    return KvReply{out.ok, std::move(out.value)};
  }
};

TEST(SpiderSemantics, WeakReadsMayBeStaleButConverge) {
  Fx f;
  auto writer = f.sys.make_client(Site{Region::Virginia, 0});
  auto reader = f.sys.make_client(Site{Region::Tokyo, 0});
  ASSERT_TRUE(f.write(*writer, "x", "new").ok);

  // Immediately after the Virginia write completes, the Tokyo group may not
  // have processed the Execute yet: a weak read is allowed to miss it
  // (one-copy serializability, not linearizability).
  KvReply immediate = f.weak(*reader, "x");
  // Either outcome is legal; what must NOT happen is a wrong value.
  if (immediate.ok) {
    EXPECT_EQ(to_string(immediate.value), "new");
  }

  // After propagation, the value is visible (convergence).
  f.world.run_for(2 * kSecond);
  KvReply later = f.weak(*reader, "x");
  EXPECT_TRUE(later.ok);
  EXPECT_EQ(to_string(later.value), "new");
}

TEST(SpiderSemantics, StrongReadNeverStale) {
  Fx f;
  auto writer = f.sys.make_client(Site{Region::Virginia, 0});
  auto reader = f.sys.make_client(Site{Region::Tokyo, 0});
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(f.write(*writer, "x", std::to_string(i)).ok);
    // Strong reads are ordered after the write: always the latest value.
    KvReply r = f.strong(*reader, "x");
    ASSERT_TRUE(r.ok) << i;
    EXPECT_EQ(to_string(r.value), std::to_string(i));
  }
}

TEST(SpiderSemantics, StrongReadPlaceholdersKeepGroupsAligned) {
  Fx f;
  auto writer = f.sys.make_client(Site{Region::Virginia, 0});
  auto tokyo_reader = f.sys.make_client(Site{Region::Tokyo, 0});
  ASSERT_TRUE(f.write(*writer, "k", "v").ok);
  ASSERT_TRUE(f.strong(*tokyo_reader, "k").ok);  // ordered, executed in Tokyo only
  ASSERT_TRUE(f.write(*writer, "k2", "v2").ok);  // later write: all groups
  f.world.run_for(2 * kSecond);

  // Lemma A.35: all groups consumed the same sequence numbers (the read's
  // placeholder advanced Virginia too), so the later write landed at the
  // same position everywhere and states converge.
  GroupId va = f.sys.nearest_group(Region::Virginia);
  GroupId tk = f.sys.nearest_group(Region::Tokyo);
  EXPECT_EQ(f.sys.exec(va, 0).executed_seq(), f.sys.exec(tk, 0).executed_seq());
  EXPECT_EQ(to_string(kv_decode_reply(
                          f.sys.exec(va, 0).app().execute_readonly(kv_get("k2"))).value),
            "v2");
}

TEST(SpiderSemantics, ClientFailoverToAnotherGroup) {
  Fx f;
  auto client = f.sys.make_client(Site{Region::Tokyo, 0});
  GroupId tokyo = client->group().group;
  ASSERT_TRUE(f.write(*client, "pre", "1").ok);

  // More than fe replicas of the Tokyo group become unavailable: the
  // client switches to a different execution group and continues (§3.1).
  for (std::size_t i = 0; i < 2; ++i) {
    f.world.net().set_node_down(f.sys.exec(tokyo, i).id(), true);
  }
  GroupId va = f.sys.nearest_group(Region::Virginia);
  client->switch_group(f.sys.group_info(va));
  KvReply w = f.write(*client, "post", "2");
  EXPECT_TRUE(w.ok);
  KvReply r = f.weak(*client, "pre");  // state is global: the old write is there
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(to_string(r.value), "1");
}

TEST(SpiderSemantics, InterleavedClientsLinearizable) {
  Fx f;
  auto a = f.sys.make_client(Site{Region::Virginia, 0});
  auto b = f.sys.make_client(Site{Region::Tokyo, 0});

  // a and b alternate increments on the same key via read-modify-write at
  // the application level is not possible with a blind KV store, so we
  // check the weaker but still strict property: after any prefix of
  // completed writes, a strong read returns the value of the *last*
  // completed write (real-time order respected — E-Safety II).
  ASSERT_TRUE(f.write(*a, "x", "a1").ok);
  ASSERT_TRUE(f.write(*b, "x", "b1").ok);
  EXPECT_EQ(to_string(f.strong(*a, "x").value), "b1");
  ASSERT_TRUE(f.write(*a, "x", "a2").ok);
  EXPECT_EQ(to_string(f.strong(*b, "x").value), "a2");
}

TEST(SpiderSemantics, RetriedWriteExecutedAtMostOnce) {
  // E-Validity II: a client retry (same counter) must not double-execute.
  Fx f;
  auto client = f.sys.make_client(Site{Region::Virginia, 0});
  ASSERT_TRUE(f.write(*client, "ctr", "1").ok);
  SeqNr before = f.sys.exec(f.sys.nearest_group(Region::Virginia), 0).executed_seq();

  // Manually re-deliver the previous request wire by bumping the retry
  // timer: simplest equivalent is issuing an identical op and verifying the
  // sequence number advanced exactly once per op.
  ASSERT_TRUE(f.write(*client, "ctr", "1").ok);
  SeqNr after = f.sys.exec(f.sys.nearest_group(Region::Virginia), 0).executed_seq();
  EXPECT_EQ(after, before + 1);  // one op -> exactly one slot
}

TEST(SpiderSemantics, WeakReadsServedDuringAgreementOutage) {
  // Paper §3.1: if > fa agreement replicas are unresponsive, ordering
  // stalls but weakly consistent reads keep working in every region.
  Fx f;
  auto client = f.sys.make_client(Site{Region::Tokyo, 0});
  ASSERT_TRUE(f.write(*client, "k", "v").ok);
  f.world.run_for(kSecond);

  for (std::size_t i = 0; i < f.sys.agreement_size(); ++i) {
    f.world.net().set_node_down(f.sys.agreement(i).id(), true);
  }
  KvReply r = f.weak(*client, "k");
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(to_string(r.value), "v");
}

}  // namespace
}  // namespace spider
