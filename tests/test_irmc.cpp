#include <gtest/gtest.h>

#include "irmc/rc.hpp"
#include "irmc/sc.hpp"
#include "sim/world.hpp"

namespace spider {
namespace {

/// 4 senders in Virginia, 3 receivers in Tokyo — the paper's Figure 9
/// wide-area channel setup (fs = fr = 1).
struct ChannelFixture {
  World world;
  std::vector<std::unique_ptr<ComponentHost>> sender_hosts;
  std::vector<std::unique_ptr<ComponentHost>> receiver_hosts;
  std::vector<std::unique_ptr<IrmcSenderEndpoint>> senders;
  std::vector<std::unique_ptr<IrmcReceiverEndpoint>> receivers;
  IrmcConfig cfg;

  explicit ChannelFixture(IrmcKind kind, std::uint32_t ns = 4, std::uint32_t nr = 3,
                          Position capacity = 8, std::uint64_t seed = 1)
      : world(seed) {
    for (std::uint32_t i = 0; i < ns; ++i) {
      sender_hosts.push_back(std::make_unique<ComponentHost>(
          world, world.allocate_id(), Site{Region::Virginia, static_cast<std::uint8_t>(i % 4)}));
      cfg.senders.push_back(sender_hosts.back()->id());
    }
    for (std::uint32_t i = 0; i < nr; ++i) {
      receiver_hosts.push_back(std::make_unique<ComponentHost>(
          world, world.allocate_id(), Site{Region::Tokyo, static_cast<std::uint8_t>(i % 3)}));
      cfg.receivers.push_back(receiver_hosts.back()->id());
    }
    cfg.fs = 1;
    cfg.fr = 1;
    cfg.capacity = capacity;
    cfg.channel_tag = tags::kIrmc | 7;
    cfg.progress_interval = 30 * kMillisecond;
    cfg.collector_timeout = 150 * kMillisecond;
    for (auto& h : sender_hosts) senders.push_back(make_irmc_sender(kind, *h, cfg));
    for (auto& h : receiver_hosts) receivers.push_back(make_irmc_receiver(kind, *h, cfg));
  }

  void send_from_all(Subchannel sc, Position p, const Bytes& m) {
    for (auto& s : senders) s->send(sc, p, m, {});
  }

  static Bytes msg(int i) {
    Writer w;
    w.u32(static_cast<std::uint32_t>(i));
    w.str("payload");
    return std::move(w).take();
  }
};

class IrmcSuite : public ::testing::TestWithParam<IrmcKind> {};

TEST_P(IrmcSuite, DeliversAfterQuorumOfIdenticalSends) {
  ChannelFixture f(GetParam());
  Bytes m = f.msg(1);
  f.send_from_all(5, 1, m);

  std::vector<Bytes> got(f.receivers.size());
  for (std::size_t i = 0; i < f.receivers.size(); ++i) {
    f.receivers[i]->receive(5, 1, [&, i](RecvResult res) {
      ASSERT_FALSE(res.too_old);
      got[i] = res.message.to_bytes();
    });
  }
  f.world.run_for(kSecond);
  for (auto& g : got) EXPECT_EQ(g, m);
}

TEST_P(IrmcSuite, ReceiveBeforeSendAlsoDelivers) {
  ChannelFixture f(GetParam());
  Bytes m = f.msg(2);
  Bytes got;
  f.receivers[0]->receive(1, 1, [&](RecvResult res) {
    ASSERT_FALSE(res.too_old);
    got = res.message.to_bytes();
  });
  f.world.run_for(10 * kMillisecond);
  f.send_from_all(1, 1, m);
  f.world.run_for(kSecond);
  EXPECT_EQ(got, m);
}

TEST_P(IrmcSuite, FsPlusOneSendersSuffice) {
  ChannelFixture f(GetParam());
  Bytes m = f.msg(3);
  f.senders[0]->send(9, 1, m, {});
  f.senders[1]->send(9, 1, m, {});  // fs+1 = 2

  bool delivered = false;
  f.receivers[0]->receive(9, 1, [&](RecvResult res) { delivered = !res.too_old; });
  f.world.run_for(kSecond);
  EXPECT_TRUE(delivered);
}

TEST_P(IrmcSuite, SingleSenderCannotPassMessage) {
  ChannelFixture f(GetParam());
  f.senders[0]->send(9, 1, f.msg(4), {});  // only fs senders vouch

  bool delivered = false;
  f.receivers[0]->receive(9, 1, [&](RecvResult) { delivered = true; });
  f.world.run_for(kSecond);
  EXPECT_FALSE(delivered);  // IRMC-Correctness I
}

TEST_P(IrmcSuite, ConflictingContentsNeedTheirOwnQuorum) {
  ChannelFixture f(GetParam());
  Bytes a = f.msg(100), b = f.msg(200);
  f.senders[0]->send(2, 1, a, {});
  f.senders[1]->send(2, 1, b, {});

  Bytes got;
  bool delivered = false;
  f.receivers[0]->receive(2, 1, [&](RecvResult res) {
    delivered = true;
    got = res.message.to_bytes();
  });
  f.world.run_for(500 * kMillisecond);
  EXPECT_FALSE(delivered);  // one vote each: no quorum

  f.senders[2]->send(2, 1, a, {});  // second vote for a
  f.world.run_for(kSecond);
  EXPECT_TRUE(delivered);
  EXPECT_EQ(got, a);
}

TEST_P(IrmcSuite, SubchannelsAreIndependent) {
  ChannelFixture f(GetParam());
  Bytes ma = f.msg(1), mb = f.msg(2);
  f.send_from_all(1, 1, ma);
  f.send_from_all(2, 1, mb);

  Bytes got_a, got_b;
  f.receivers[0]->receive(1, 1, [&](RecvResult r) { got_a = r.message.to_bytes(); });
  f.receivers[0]->receive(2, 1, [&](RecvResult r) { got_b = r.message.to_bytes(); });
  f.world.run_for(kSecond);
  EXPECT_EQ(got_a, ma);
  EXPECT_EQ(got_b, mb);
}

TEST_P(IrmcSuite, SequentialPositionsDeliverInOrder) {
  ChannelFixture f(GetParam());
  const int n = 5;
  for (int p = 1; p <= n; ++p) f.send_from_all(3, static_cast<Position>(p), f.msg(p));

  std::vector<int> order;
  std::function<void(Position)> chain = [&](Position p) {
    if (p > n) return;
    f.receivers[0]->receive(3, p, [&, p](RecvResult res) {
      ASSERT_FALSE(res.too_old);
      Reader r(res.message);
      order.push_back(static_cast<int>(r.u32()));
      chain(p + 1);
    });
  };
  chain(1);
  f.world.run_for(2 * kSecond);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST_P(IrmcSuite, SendBeyondWindowBlocksUntilReceiversMove) {
  ChannelFixture f(GetParam(), 4, 3, /*capacity=*/4);
  // Fill the window: positions 1..4 are in, 5 must block.
  for (int p = 1; p <= 4; ++p) f.send_from_all(1, static_cast<Position>(p), f.msg(p));
  bool send5_done = false;
  f.senders[0]->send(1, 5, f.msg(5), [&](bool too_old, Position) {
    EXPECT_FALSE(too_old);
    send5_done = true;
  });
  f.world.run_for(500 * kMillisecond);
  EXPECT_FALSE(send5_done);  // blocked above the window

  // fr+1 receivers consume and move the window forward.
  f.receivers[0]->move_window(1, 2);
  f.receivers[1]->move_window(1, 2);
  f.world.run_for(kSecond);
  EXPECT_TRUE(send5_done);  // IRMC-Liveness II
  EXPECT_EQ(f.senders[0]->window_start(1), 2u);
}

TEST_P(IrmcSuite, SingleReceiverCannotMoveSenderWindow) {
  ChannelFixture f(GetParam());
  f.receivers[0]->move_window(4, 10);  // only fr receivers
  f.world.run_for(kSecond);
  EXPECT_EQ(f.senders[0]->window_start(4), 1u);

  f.receivers[1]->move_window(4, 10);  // now fr+1
  f.world.run_for(kSecond);
  EXPECT_EQ(f.senders[0]->window_start(4), 10u);
}

TEST_P(IrmcSuite, TooOldSendDroppedImmediately) {
  ChannelFixture f(GetParam());
  f.receivers[0]->move_window(1, 20);
  f.receivers[1]->move_window(1, 20);
  f.world.run_for(kSecond);

  bool too_old = false;
  Position ws = 0;
  f.senders[0]->send(1, 3, f.msg(3), [&](bool old, Position w) {
    too_old = old;
    ws = w;
  });
  EXPECT_TRUE(too_old);
  EXPECT_EQ(ws, 20u);
}

TEST_P(IrmcSuite, SenderMovesForceReceiverWindowAndTooOld) {
  ChannelFixture f(GetParam());
  bool got_too_old = false;
  Position new_start = 0;
  f.receivers[0]->receive(6, 1, [&](RecvResult res) {
    got_too_old = res.too_old;
    new_start = res.window_start;
  });

  // fs+1 senders request the subchannel window to start at 5 (e.g. the
  // client already sent a newer request).
  f.senders[0]->move_window(6, 5);
  f.senders[1]->move_window(6, 5);
  f.world.run_for(kSecond);

  EXPECT_TRUE(got_too_old);  // IRMC-Correctness II / Liveness III
  EXPECT_EQ(new_start, 5u);
  EXPECT_EQ(f.receivers[0]->window_start(6), 5u);
}

TEST_P(IrmcSuite, OneSenderCannotMoveReceiverWindow) {
  ChannelFixture f(GetParam());
  f.senders[0]->move_window(6, 50);
  f.world.run_for(kSecond);
  EXPECT_EQ(f.receivers[0]->window_start(6), 1u);
}

TEST_P(IrmcSuite, LateReceiveAfterWindowMovedReturnsTooOld) {
  ChannelFixture f(GetParam());
  f.senders[0]->move_window(1, 7);
  f.senders[1]->move_window(1, 7);
  f.world.run_for(kSecond);

  RecvResult out;
  f.receivers[0]->receive(1, 2, [&](RecvResult res) { out = res; });
  EXPECT_TRUE(out.too_old);
  EXPECT_EQ(out.window_start, 7u);
}

TEST_P(IrmcSuite, RedeliveryToMultiplePendingReceivers) {
  ChannelFixture f(GetParam());
  int delivered = 0;
  for (auto& r : f.receivers) {
    r->receive(1, 1, [&](RecvResult res) {
      if (!res.too_old) ++delivered;
    });
  }
  f.send_from_all(1, 1, f.msg(1));
  f.world.run_for(kSecond);
  EXPECT_EQ(delivered, 3);  // IRMC-Liveness I: all correct receivers
}

TEST_P(IrmcSuite, DeterministicAcrossRuns) {
  auto run = [&] {
    ChannelFixture f(GetParam(), 4, 3, 8, 77);
    std::vector<Time> times;
    for (int p = 1; p <= 3; ++p) f.send_from_all(1, static_cast<Position>(p), f.msg(p));
    for (int p = 1; p <= 3; ++p) {
      f.receivers[0]->receive(1, static_cast<Position>(p),
                              [&](RecvResult) { times.push_back(f.world.now()); });
    }
    f.world.run_for(kSecond);
    return times;
  };
  EXPECT_EQ(run(), run());
}

TEST_P(IrmcSuite, CrashedSenderMinorityHarmless) {
  ChannelFixture f(GetParam());
  f.world.net().set_node_down(f.sender_hosts[0]->id(), true);
  Bytes m = f.msg(9);
  for (std::size_t i = 1; i < f.senders.size(); ++i) f.senders[i]->send(1, 1, m, {});
  Bytes got;
  f.receivers[0]->receive(1, 1, [&](RecvResult r) { got = r.message.to_bytes(); });
  f.world.run_for(kSecond);
  EXPECT_EQ(got, m);
}

INSTANTIATE_TEST_SUITE_P(Kinds, IrmcSuite,
                         ::testing::Values(IrmcKind::ReceiverCollect, IrmcKind::SenderCollect),
                         [](const ::testing::TestParamInfo<IrmcKind>& info) {
                           return info.param == IrmcKind::ReceiverCollect ? "RC" : "SC";
                         });

// ------------------------------------------------------------ RC-specific

TEST(IrmcRc, ForgedSendRejected) {
  ChannelFixture f(IrmcKind::ReceiverCollect);
  // An attacker (not in the sender group) replays a Send-shaped frame with
  // a bogus signature; and a group member with a wrong signature.
  ComponentHost attacker(f.world, f.world.allocate_id(), Site{Region::Virginia, 0});
  irmc::SendMsg msg{1, 1, f.msg(1)};
  Bytes body = msg.encode();
  Bytes fake_sig(f.world.crypto().signature_size(), 0x42);
  Bytes wire = body;
  wire.insert(wire.end(), fake_sig.begin(), fake_sig.end());
  Writer w;
  w.u32(f.cfg.channel_tag);
  w.raw(wire);
  for (NodeId r : f.cfg.receivers) attacker.send_to(r, w.data());

  bool delivered = false;
  f.receivers[0]->receive(1, 1, [&](RecvResult) { delivered = true; });
  f.world.run_for(kSecond);
  EXPECT_FALSE(delivered);
}

// ------------------------------------------------------------ SC-specific

TEST(IrmcSc, WanTrafficFarBelowRc) {
  // Payload-dominated regime as in the paper's Figure 9d (256 B - 16 KiB).
  auto wan_bytes = [](IrmcKind kind) {
    ChannelFixture f(kind, 4, 3, 16, 5);
    Bytes payload(4096, 0x5c);
    for (int p = 1; p <= 10; ++p) f.send_from_all(1, static_cast<Position>(p), payload);
    f.world.run_for(600 * kMillisecond);
    return f.world.net().stats().wan_bytes;
  };
  std::uint64_t rc = wan_bytes(IrmcKind::ReceiverCollect);
  std::uint64_t sc = wan_bytes(IrmcKind::SenderCollect);
  // RC ships each payload ns x nr times; SC ships roughly nr certificates.
  EXPECT_LT(sc * 2, rc);
}

TEST(IrmcSc, UsesLanForShareExchange) {
  ChannelFixture f(IrmcKind::SenderCollect);
  f.send_from_all(1, 1, f.msg(1));
  f.world.run_for(kSecond);
  EXPECT_GT(f.world.net().stats().lan_bytes, 0u);  // SigShares within region
}

TEST(IrmcSc, CollectorSwitchOnSilentCollector) {
  ChannelFixture f(IrmcKind::SenderCollect);
  // Receiver 0's default collector is sender 0; make sender 0 unable to
  // reach receiver 0 (but senders still exchange shares via LAN).
  NodeId s0 = f.sender_hosts[0]->id();
  NodeId r0 = f.receiver_hosts[0]->id();
  f.world.net().set_link_filter([&, s0, r0](NodeId from, NodeId to) {
    return !(from == s0 && to == r0);
  });

  Bytes got;
  f.receivers[0]->receive(1, 1, [&](RecvResult res) { got = res.message.to_bytes(); });
  Bytes m = f.msg(1);
  f.send_from_all(1, 1, m);
  // Progress messages from other senders reveal the gap; after the timeout
  // receiver 0 selects a new collector and obtains the certificate.
  f.world.run_for(3 * kSecond);
  EXPECT_EQ(got, m);
  auto* rcv = dynamic_cast<ScReceiver*>(f.receivers[0].get());
  ASSERT_NE(rcv, nullptr);
  EXPECT_NE(rcv->collector(1), 0u);
}

TEST(IrmcSc, ForgedCertificateRejected) {
  ChannelFixture f(IrmcKind::SenderCollect);
  // Sender 0 crafts a certificate for content no other sender vouched for:
  // it has only its own share, so it pads with a duplicated/forged share.
  ComponentHost& evil = *f.sender_hosts[0];
  Bytes payload = f.msg(666);
  irmc::SigShareMsg share{1, 1, Sha256::hash(payload)};
  Writer sw;
  sw.u32(f.cfg.channel_tag);
  sw.raw(share.encode());
  Bytes share_auth = std::move(sw).take();
  Bytes own_sig = f.world.crypto().sign(evil.id(), share_auth);

  irmc::CertificateMsg cert{1, 1, payload, {{0, own_sig}, {1, own_sig}}};  // forged share for idx 1
  Bytes body = cert.encode();
  Writer aw;
  aw.u32(f.cfg.channel_tag);
  aw.raw(body);
  Bytes cert_sig = f.world.crypto().sign(evil.id(), aw.data());
  Bytes wire = body;
  wire.insert(wire.end(), cert_sig.begin(), cert_sig.end());
  Writer fw;
  fw.u32(f.cfg.channel_tag);
  fw.raw(wire);
  for (NodeId r : f.cfg.receivers) evil.send_to(r, fw.data());

  bool delivered = false;
  f.receivers[0]->receive(1, 1, [&](RecvResult) { delivered = true; });
  f.world.run_for(kSecond);
  EXPECT_FALSE(delivered);  // share for index 1 does not verify
}

}  // namespace
}  // namespace spider
